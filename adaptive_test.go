package adcache_test

import (
	"fmt"
	"testing"

	"adcache"
	"adcache/internal/harness"
	"adcache/internal/workload"
)

// These integration tests assert the paper's qualitative claims end-to-end
// on small workloads: the controller moves the boundary in the right
// direction per workload, result caches survive compaction, and admission
// control bounds scan pollution.

func adaptRunner(t *testing.T, strategy adcache.Strategy) *harness.Runner {
	t.Helper()
	r, err := harness.NewRunner(harness.Config{
		NumKeys: 8000, ValueSize: 100, CacheFrac: 0.10,
		Strategy: strategy, Seed: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { r.Close() })
	return r
}

func TestControllerMovesBoundaryPerWorkload(t *testing.T) {
	if testing.Short() {
		t.Skip("adaptation runs are slow")
	}
	// Point-lookup phase: boundary should sit mostly on the range side.
	r := adaptRunner(t, adcache.StrategyAdCache)
	if err := r.Warm(workload.MixPointLookup, 20_000); err != nil {
		t.Fatal(err)
	}
	if ratio := r.DB.AdCache().CurrentParams().RangeRatio; ratio < 0.5 {
		t.Fatalf("point workload learned range ratio %.2f, want > 0.5", ratio)
	}
	// Shift to short scans: the boundary must migrate to the block side
	// (the paper's "converts the entire range cache into a block cache").
	if err := r.Warm(workload.MixShortScan, 30_000); err != nil {
		t.Fatal(err)
	}
	if ratio := r.DB.AdCache().CurrentParams().RangeRatio; ratio > 0.5 {
		t.Fatalf("scan workload kept range ratio %.2f, want < 0.5", ratio)
	}
}

func TestRangeCacheSurvivesCompactionBlockCacheDoesNot(t *testing.T) {
	if testing.Short() {
		t.Skip("adaptation runs are slow")
	}
	// Warm both caches under reads, then write heavily to force
	// compactions, then measure how each cache serves the same reads.
	readMix := workload.Mix{GetPct: 50, ShortScanPct: 50}
	measure := func(strategy adcache.Strategy) (before, after float64) {
		r := adaptRunner(t, strategy)
		if err := r.Warm(readMix, 10_000); err != nil {
			t.Fatal(err)
		}
		res1, err := r.Run(readMix, 5_000)
		if err != nil {
			t.Fatal(err)
		}
		// Write churn: rewrite much of the key space.
		if err := r.Warm(workload.Mix{WritePct: 100}, 12_000); err != nil {
			t.Fatal(err)
		}
		m := r.DB.LSM().Metrics()
		if m.Compactions == 0 {
			t.Fatal("write churn caused no compactions; test premise broken")
		}
		res2, err := r.Run(readMix, 5_000)
		if err != nil {
			t.Fatal(err)
		}
		return res1.HitRate, res2.HitRate
	}

	blockBefore, blockAfter := measure(adcache.StrategyBlock)
	rangeBefore, rangeAfter := measure(adcache.StrategyRange)

	blockDrop := blockBefore - blockAfter
	rangeDrop := rangeBefore - rangeAfter
	// The result cache is compaction-immune; the block cache loses its
	// file-offset-keyed entries. Allow noise but require the asymmetry.
	if blockDrop < rangeDrop-0.02 {
		t.Fatalf("compaction hurt block cache (%.3f→%.3f) less than range cache (%.3f→%.3f)",
			blockBefore, blockAfter, rangeBefore, rangeAfter)
	}
}

func TestPartialAdmissionBoundsLongScanFootprint(t *testing.T) {
	if testing.Short() {
		t.Skip("adaptation runs are slow")
	}
	// One long scan into a warmed AdCache range cache must admit at most
	// its partial quota, not all 64 entries.
	r := adaptRunner(t, adcache.StrategyAdCache)
	if err := r.Warm(workload.MixPointLookup, 15_000); err != nil {
		t.Fatal(err)
	}
	ad := r.DB.AdCache()
	p := ad.CurrentParams()
	if p.ScanA >= workload.LongScanLen {
		t.Skipf("learned a=%d admits whole long scans; nothing to bound", p.ScanA)
	}
	entriesBefore := ad.Range().Len()
	if _, err := r.DB.Scan(workload.Key(4000), workload.LongScanLen); err != nil {
		t.Fatal(err)
	}
	added := ad.Range().Len() - entriesBefore
	expect := p.ScanA + int(p.ScanB*float64(workload.LongScanLen-p.ScanA)) + 2
	if added > expect {
		t.Fatalf("one long scan added %d entries, partial admission bound ≈%d", added, expect)
	}
}

func TestAdmissionFiltersOneOffKeys(t *testing.T) {
	if testing.Short() {
		t.Skip("adaptation runs are slow")
	}
	r := adaptRunner(t, adcache.StrategyAdCache)
	// Zipfian points establish frequency mass and a nonzero threshold.
	if err := r.Warm(workload.MixPointLookup, 15_000); err != nil {
		t.Fatal(err)
	}
	ad := r.DB.AdCache()
	if ad.CurrentParams().PointThreshold <= 0 {
		t.Skip("learned threshold is zero; nothing to verify")
	}
	before := ad.Range().Len()
	// One-off cold keys (read once each) should mostly be rejected.
	for i := 0; i < 200; i++ {
		if _, _, err := r.DB.Get(workload.Key(7000 + i*3)); err != nil {
			t.Fatal(err)
		}
	}
	added := ad.Range().Len() - before
	if added > 150 {
		t.Fatalf("admission admitted %d of 200 one-off keys", added)
	}
}

func TestSixStrategiesProduceDistinctIOBehaviour(t *testing.T) {
	if testing.Short() {
		t.Skip("comparison runs are slow")
	}
	// A coarse sanity matrix: on a balanced mix, block-structured caches
	// must beat the no-scan KV cache, and every cache must beat no cache.
	reads := map[adcache.Strategy]float64{}
	for _, s := range []adcache.Strategy{adcache.StrategyNone, adcache.StrategyKV, adcache.StrategyBlock} {
		r := adaptRunner(t, s)
		if err := r.Warm(workload.MixBalanced, 10_000); err != nil {
			t.Fatal(err)
		}
		res, err := r.Run(workload.MixBalanced, 10_000)
		if err != nil {
			t.Fatal(err)
		}
		reads[s] = res.ReadsPerOp()
	}
	if reads[adcache.StrategyBlock] >= reads[adcache.StrategyNone] {
		t.Fatalf("block cache did not reduce reads: %v", reads)
	}
	if reads[adcache.StrategyKV] >= reads[adcache.StrategyNone] {
		t.Fatalf("kv cache did not reduce reads: %v", reads)
	}
	if reads[adcache.StrategyBlock] >= reads[adcache.StrategyKV] {
		t.Fatalf("block cache should beat kv cache on a scan-bearing mix: %v", reads)
	}
	_ = fmt.Sprintf("%v", reads)
}
