module adcache

go 1.22
