// Package adcache is the public API of the AdCache reproduction: an
// LSM-tree key-value store (a scaled-down RocksDB analogue built from
// scratch) whose cache layer is pluggable between the paper's baselines —
// block cache, KV cache, Range Cache (LRU / LeCaR / Cacheus) — and AdCache
// itself, the reinforcement-learning-driven hybrid with admission control.
//
// Quickstart:
//
//	db, err := adcache.Open(adcache.Options{
//		CacheBytes: 4 << 20,
//		Strategy:   adcache.StrategyAdCache,
//	})
//	if err != nil { ... }
//	defer db.Close()
//	db.Put([]byte("k"), []byte("v"))
//	v, ok, err := db.Get([]byte("k"))
//	kvs, err := db.Scan([]byte("a"), 16)
package adcache

import (
	"fmt"
	"strings"
	"sync"
	"sync/atomic"

	"adcache/internal/core"
	"adcache/internal/lsm"
	"adcache/internal/metrics"
	"adcache/internal/trace"
	"adcache/internal/vfs"
	"adcache/internal/workload"
)

// Strategy selects the cache scheme, mirroring the paper's evaluation
// lineup (§5.1).
type Strategy int

// The evaluated cache strategies. StrategyAdCache is the zero value, so an
// Options literal that only sets CacheBytes gets the paper's system.
const (
	// StrategyAdCache is the paper's system (the default).
	StrategyAdCache Strategy = iota
	// StrategyBlock is RocksDB's default block cache.
	StrategyBlock
	// StrategyKV caches point-lookup results only ("KV Cache").
	StrategyKV
	// StrategyRange is Range Cache with LRU eviction.
	StrategyRange
	// StrategyRangeLeCaR is Range Cache with LeCaR eviction.
	StrategyRangeLeCaR
	// StrategyRangeCacheus is Range Cache with Cacheus eviction.
	StrategyRangeCacheus
	// StrategyNone disables caching entirely (the no-cache baseline of the
	// I/O model). It must be selected explicitly.
	StrategyNone
)

// String names the strategy as in the paper's figures.
func (s Strategy) String() string {
	switch s {
	case StrategyNone:
		return "NoCache"
	case StrategyBlock:
		return "BlockCache"
	case StrategyKV:
		return "KVCache"
	case StrategyRange:
		return "RangeCache"
	case StrategyRangeLeCaR:
		return "RangeCache+LeCaR"
	case StrategyRangeCacheus:
		return "RangeCache+Cacheus"
	case StrategyAdCache:
		return "AdCache"
	default:
		return fmt.Sprintf("Strategy(%d)", int(s))
	}
}

// Compression aliases the engine's per-block SSTable codec.
type Compression = lsm.Compression

// The supported SSTable block codecs.
const (
	// CompressionNone stores blocks raw (the default).
	CompressionNone = lsm.CompressionNone
	// CompressionFlate deflate-compresses blocks that shrink.
	CompressionFlate = lsm.CompressionFlate
)

// Strategies lists every scheme in evaluation order.
func Strategies() []Strategy {
	return []Strategy{
		StrategyBlock, StrategyKV, StrategyRange,
		StrategyRangeLeCaR, StrategyRangeCacheus, StrategyAdCache,
	}
}

// Options configures Open.
type Options struct {
	// Dir is the database directory (default "db").
	Dir string
	// FS is the backing file system; nil selects a fresh in-memory FS.
	FS vfs.FS
	// CacheBytes is the total cache budget (all strategies share one
	// number, like the paper's fixed memory budget).
	CacheBytes int64
	// Strategy picks the cache scheme (default StrategyAdCache when
	// CacheBytes > 0, else StrategyNone).
	Strategy Strategy
	// AdCache optionally overrides the AdCache configuration; Capacity is
	// filled from CacheBytes.
	AdCache core.Config
	// UnifiedMemory extends the adaptive arbiter across the memtables
	// (StrategyAdCache only): CacheBytes becomes one budget shared by the
	// active/immutable memtables, the block cache, and the range cache,
	// and the agent moves bytes across all three as the read/write mix
	// drifts. Shorthand for AdCache.MemtableArbitration = true.
	UnifiedMemory bool
	// RangeShards optionally shards result caches by key range (§4.4).
	RangeShards []string
	// Compression selects per-block SSTable compression (CompressionNone or
	// CompressionFlate, default none). With flate the block cache holds
	// compressed images and its budget charges physical bytes.
	Compression Compression
	// BgIOBytesPerSec rate-limits background flush and compaction writes
	// (token bucket; 0 = unlimited), keeping background I/O from starving
	// foreground reads on a real disk.
	BgIOBytesPerSec int64
	// LSM optionally overrides engine options; FS/Dir/Strategy fields are
	// managed by Open.
	LSM *lsm.Options
	// Trace, when non-nil, records every operation (§3.1: "workload logs
	// can be collected for pretraining"). Feed the file to
	// cmd/adcache-pretrain -trace.
	Trace *trace.Writer
}

// DB is an LSM-tree key-value store with a pluggable cache strategy.
type DB struct {
	inner    *lsm.DB
	strategy lsm.CacheStrategy
	ad       *core.AdCache // non-nil only for StrategyAdCache
	kind     Strategy
	reg      *metrics.Registry

	traceMu   sync.Mutex
	trace     *trace.Writer
	traceErrs atomic.Int64
}

// recordTrace appends op to the trace log, if tracing is enabled. Trace
// write errors never reach the data path (tracing is advisory) but are
// counted, so a silently failing trace shows up in /stats and /metrics.
func (d *DB) recordTrace(op workload.Op) {
	if d.trace == nil {
		return
	}
	d.traceMu.Lock()
	err := d.trace.Record(op)
	d.traceMu.Unlock()
	if err != nil {
		d.traceErrs.Add(1)
	}
}

// Open creates or opens a database.
func Open(opts Options) (*DB, error) {
	if opts.Dir == "" {
		opts.Dir = "db"
	}
	if opts.FS == nil {
		opts.FS = vfs.NewMem()
	}

	var strategy lsm.CacheStrategy
	var ad *core.AdCache
	switch opts.Strategy {
	case StrategyNone:
		strategy = lsm.NoCache{}
	case StrategyBlock:
		strategy = core.NewBlockOnly(opts.CacheBytes)
	case StrategyKV:
		strategy = core.NewKVOnly(opts.CacheBytes)
	case StrategyRange:
		strategy = core.NewRangeOnly(opts.CacheBytes, "lru", opts.RangeShards)
	case StrategyRangeLeCaR:
		strategy = core.NewRangeOnly(opts.CacheBytes, "lecar", opts.RangeShards)
	case StrategyRangeCacheus:
		strategy = core.NewRangeOnly(opts.CacheBytes, "cacheus", opts.RangeShards)
	case StrategyAdCache:
		cfg := opts.AdCache
		cfg.Capacity = opts.CacheBytes
		if opts.UnifiedMemory {
			cfg.MemtableArbitration = true
		}
		if len(opts.RangeShards) > 0 && len(cfg.SplitKeys) == 0 {
			cfg.SplitKeys = opts.RangeShards
		}
		var err error
		ad, err = core.New(cfg)
		if err != nil {
			return nil, err
		}
		strategy = ad
	default:
		return nil, fmt.Errorf("adcache: unknown strategy %v", opts.Strategy)
	}

	lsmOpts := lsm.DefaultOptions(opts.Dir)
	if opts.LSM != nil {
		lsmOpts = *opts.LSM
		lsmOpts.Dir = opts.Dir
	}
	lsmOpts.FS = opts.FS
	lsmOpts.Strategy = strategy
	if opts.Compression != lsm.CompressionNone {
		lsmOpts.Compression = opts.Compression
	}
	if opts.BgIOBytesPerSec > 0 {
		lsmOpts.BgIOBytesPerSec = opts.BgIOBytesPerSec
	}

	// One registry per DB: the engine, the cache strategy, and the public
	// layer all export onto it (per-DB rather than global because one
	// process routinely opens many stores — the experiment harness does).
	reg := lsmOpts.MetricsRegistry
	if reg == nil {
		reg = metrics.NewRegistry()
		lsmOpts.MetricsRegistry = reg
	}

	inner, err := lsm.Open(lsmOpts)
	if err != nil {
		if ad != nil {
			ad.Close()
		}
		return nil, err
	}
	if ad != nil {
		ad.Bind(inner)
	}
	d := &DB{inner: inner, strategy: strategy, ad: ad, kind: opts.Strategy, reg: reg, trace: opts.Trace}
	d.registerMetrics(reg)
	return d, nil
}

// Put stores key=value.
func (d *DB) Put(key, value []byte) error {
	d.recordTrace(workload.Op{Kind: workload.OpPut, Key: key})
	return d.inner.Put(key, value)
}

// Delete removes key.
func (d *DB) Delete(key []byte) error {
	d.recordTrace(workload.Op{Kind: workload.OpDelete, Key: key})
	return d.inner.Delete(key)
}

// Get returns the value for key. ok is false when the key does not exist.
func (d *DB) Get(key []byte) (value []byte, ok bool, err error) {
	d.recordTrace(workload.Op{Kind: workload.OpGet, Key: key})
	return d.inner.Get(key)
}

// Scan returns up to n live key-value pairs with key >= start, in order.
func (d *DB) Scan(start []byte, n int) ([]lsm.KV, error) {
	d.recordTrace(workload.Op{Kind: workload.OpScan, Key: start, ScanLen: n})
	return d.inner.Scan(start, n)
}

// ScanRange returns up to limit live pairs with start <= key < end (nil end
// means unbounded above; limit <= 0 means bounded by end only).
func (d *DB) ScanRange(start, end []byte, limit int) ([]lsm.KV, error) {
	scanLen := limit
	if scanLen < 0 {
		scanLen = 0 // bounded by end only
	}
	d.recordTrace(workload.Op{Kind: workload.OpScanRange, Key: start, End: end, ScanLen: scanLen})
	return d.inner.ScanRange(start, end, limit)
}

// NewIter returns a forward iterator over a consistent snapshot of the
// store. The snapshot pins its files against compaction until Close.
// Iterators read through the block cache but bypass result caches.
func (d *DB) NewIter() (*lsm.Iterator, error) { return d.inner.NewIter() }

// NewBatch returns an empty write batch; commit it with Apply.
func (d *DB) NewBatch() *lsm.Batch { return lsm.NewBatch() }

// Apply atomically commits a batch of writes.
func (d *DB) Apply(b *lsm.Batch) error { return d.inner.Apply(b) }

// Flush forces the memtable to disk.
func (d *DB) Flush() error { return d.inner.Flush() }

// Compact forces compactions until the tree shape is satisfied.
func (d *DB) Compact() error { return d.inner.Compact() }

// Resume exits read-only degraded mode (entered when background
// flush/compaction errors exhaust their retries): it clears the error
// state and synchronously re-drives the backlog, so a nil return means
// the tree is healthy and writes flow again. Resuming a healthy DB is a
// no-op. /v1/health reports the degraded state this undoes.
func (d *DB) Resume() error { return d.inner.Resume() }

// Close stops background tuning and closes the store.
func (d *DB) Close() error {
	if d.ad != nil {
		d.ad.Close()
	}
	return d.inner.Close()
}

// Strategy reports the configured cache strategy.
func (d *DB) Strategy() Strategy { return d.kind }

// AdCache returns the AdCache controller when Strategy is StrategyAdCache,
// else nil — used to inspect learned parameters and window traces.
func (d *DB) AdCache() *core.AdCache { return d.ad }

// LSM exposes the underlying engine for metrics and tooling.
func (d *DB) LSM() *lsm.DB { return d.inner }

// SSTReads reports cumulative SST block reads issued by queries — the
// paper's headline I/O metric (compaction and recovery I/O excluded).
func (d *DB) SSTReads() int64 { return d.inner.QueryBlockReads() }

// CacheCounters aggregates the counters of whichever caches the configured
// strategy runs. Fields for absent caches stay zero. It is an alias of the
// engine-level shape: every strategy reports through the same interface
// method, so no layer type-switches on concrete strategies.
type CacheCounters = lsm.CacheCounters

// CacheCounters snapshots the strategy's cache counters.
func (d *DB) CacheCounters() CacheCounters { return d.strategy.Counters() }

// ParseStrategy maps a strategy name — the String() form or a short
// lower-case alias as accepted by the command-line tools — onto a Strategy.
func ParseStrategy(name string) (Strategy, error) {
	switch strings.ToLower(name) {
	case "adcache":
		return StrategyAdCache, nil
	case "block", "blockcache":
		return StrategyBlock, nil
	case "kv", "kvcache":
		return StrategyKV, nil
	case "range", "rangecache":
		return StrategyRange, nil
	case "lecar", "rangecache+lecar":
		return StrategyRangeLeCaR, nil
	case "cacheus", "rangecache+cacheus":
		return StrategyRangeCacheus, nil
	case "none", "nocache":
		return StrategyNone, nil
	}
	return 0, fmt.Errorf("adcache: unknown strategy %q", name)
}
