package client

import (
	"context"
	"fmt"
	"net"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"adcache"
	"adcache/internal/cluster"
	"adcache/internal/cluster/chaos"
	"adcache/internal/server"
)

// TestE2EChaosCluster is the capstone chaos run: three real nodes on
// chaos listeners, concurrent writers and hedged readers through the
// resilient client, and a seeded, scripted fault timeline — brownout,
// client-side partition, node kill/restart, dropped acks — with manager
// moves (one doomed, one real) layered on top. The contract under all of
// it:
//
//   - zero lost acked writes: every value the client acked reads back at
//     least as new after the dust settles;
//   - bounded retries: the client paces itself with backoff and breakers
//     instead of retry-storming;
//   - breaker recovery: the killed node's breaker opens while it is down
//     and re-closes after restart;
//   - a move toward a dead node aborts for free; a move after recovery
//     completes and the fleet converges on its epoch.
func TestE2EChaosCluster(t *testing.T) {
	const (
		shards    = 8
		seed      = 1337
		chaosToke = "chaos-migration-token"
	)

	// Real listeners wrapped in chaos kill switches.
	ids := []string{"n1", "n2", "n3"}
	listeners := map[string]*chaos.Listener{}
	nodes := make([]cluster.Node, 0, len(ids))
	for _, id := range ids {
		raw, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		defer raw.Close()
		listeners[id] = chaos.NewListener(raw)
		nodes = append(nodes, cluster.Node{ID: id, Addr: raw.Addr().String()})
	}
	initial, err := cluster.InitialMap(nodes, shards)
	if err != nil {
		t.Fatal(err)
	}
	addrOf := map[string]string{}
	for _, n := range nodes {
		addrOf[n.ID] = n.Addr
	}

	views := map[string]*cluster.NodeView{}
	for _, id := range ids {
		db, err := adcache.Open(adcache.Options{CacheBytes: 1 << 20})
		if err != nil {
			t.Fatal(err)
		}
		defer db.Close()
		view, err := cluster.NewNodeView(id, initial)
		if err != nil {
			t.Fatal(err)
		}
		views[id] = view
		hs := &http.Server{Handler: server.New(db,
			server.WithCluster(view), server.WithNodeID(id), server.WithInternalToken(chaosToke))}
		go hs.Serve(listeners[id])
		defer hs.Close()
	}

	// One seeded table shared by the client transport: same seed, same
	// fault sequence for a given request order.
	table := chaos.NewTable(seed)
	c, err := New([]string{nodes[0].Addr},
		WithHTTPClient(&http.Client{Transport: &chaos.Transport{Table: table, Source: "cli"}}),
		WithMaxRetries(500),
		WithRetryBackoff(2*time.Millisecond),
		WithBackoffCap(40*time.Millisecond),
		WithJitterSeed(seed),
		WithBreaker(5, 60*time.Millisecond),
		WithHedgedReads(15*time.Millisecond),
		WithRequestTimeout(2*time.Second),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	var (
		mu    sync.Mutex
		acked = map[string]string{}
		seq   atomic.Int64
		gets  atomic.Int64
	)
	ctx, cancel := context.WithCancel(context.Background())
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for ctx.Err() == nil {
				// Per-writer key spaces with per-key monotonic sequence
				// values: the readback check can tell "newer than acked"
				// (a dropped ack that committed — fine) from loss.
				n := seq.Add(1)
				k := fmt.Sprintf("cz-w%d-%06d", w, n%128)
				v := fmt.Sprintf("w%d-%d", w, n)
				if err := c.PutCtx(ctx, []byte(k), []byte(v)); err != nil {
					if ctx.Err() == nil {
						errs <- fmt.Errorf("put %s: %w", k, err)
					}
					return
				}
				mu.Lock()
				acked[k] = v
				mu.Unlock()
			}
		}(w)
	}
	for r := 0; r < 2; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for ctx.Err() == nil {
				mu.Lock()
				var k string
				for k = range acked {
					break
				}
				mu.Unlock()
				if k == "" {
					time.Sleep(time.Millisecond)
					continue
				}
				if _, _, err := c.GetCtx(ctx, []byte(k)); err != nil && ctx.Err() == nil {
					errs <- fmt.Errorf("get %s: %w", k, err)
					return
				}
				gets.Add(1)
			}
		}()
	}

	mgr, err := cluster.NewManager(initial, cluster.ManagerOptions{
		InternalToken: chaosToke,
		ProbeTimeout:  500 * time.Millisecond,
		Logf:          t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	shardOfN1 := initial.OwnedBy("n1")[0]

	// The scripted fault timeline. Each phase holds long enough for the
	// client's retry budget (backoff cap 40ms) to ride through it.
	script := &chaos.Script{
		Logf: t.Logf,
		Steps: []chaos.Step{
			{Name: "healthy", Duration: 250 * time.Millisecond},
			{Name: "brownout-n2", Duration: 350 * time.Millisecond, Enter: func() {
				table.Set(addrOf["n2"], chaos.Rule{Latency: 20 * time.Millisecond, Jitter: 10 * time.Millisecond, SlowProb: 0.7})
			}},
			{Name: "partition-cli-n1", Duration: 300 * time.Millisecond, Enter: func() {
				table.Heal()
				table.SetPair("cli", addrOf["n1"], chaos.Rule{Partition: true})
			}},
			{Name: "kill-n3", Duration: 300 * time.Millisecond, Enter: func() {
				table.Heal()
				listeners["n3"].Kill()
				// A move toward the dead node must abort before fencing:
				// no epoch consumed, no revert, live traffic untouched.
				if err := mgr.MoveShard(context.Background(), shardOfN1, "n3"); err == nil ||
					!strings.Contains(err.Error(), "not ready") {
					errs <- fmt.Errorf("move to killed node = %v, want 'not ready' abort", err)
				}
				if got := mgr.Current().Epoch; got != initial.Epoch {
					errs <- fmt.Errorf("aborted move consumed epoch %d", got)
				}
			}},
			{Name: "restart-n3", Duration: 400 * time.Millisecond, Enter: func() {
				listeners["n3"].Restart()
			}},
			{Name: "move-under-load", Duration: 300 * time.Millisecond, Enter: func() {
				// The real move, mid-traffic, over the healed network.
				if err := mgr.MoveShard(context.Background(), shardOfN1, "n2"); err != nil {
					errs <- fmt.Errorf("post-recovery move: %w", err)
				}
			}},
			{Name: "drop-acks-n1", Duration: 300 * time.Millisecond, Enter: func() {
				table.Set(addrOf["n1"], chaos.Rule{DropResponseProb: 0.5})
			}},
			{Name: "heal", Duration: 300 * time.Millisecond, Enter: func() {
				table.Heal()
			}},
		},
	}
	script.Run(ctx)

	cancel()
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Errorf("chaos run error: %v", err)
	}

	mu.Lock()
	ledger := make(map[string]string, len(acked))
	for k, v := range acked {
		ledger[k] = v
	}
	mu.Unlock()
	if len(ledger) == 0 {
		t.Fatal("no writes acked; the run exercised nothing")
	}

	// The move completed and the fleet converged on its epoch.
	cur := mgr.Current()
	if cur.Owner[shardOfN1] != "n2" || cur.Epoch != initial.Epoch+1 {
		t.Fatalf("post-move map = epoch %d owner[%d]=%q, want epoch %d on n2",
			cur.Epoch, shardOfN1, cur.Owner[shardOfN1], initial.Epoch+1)
	}
	for _, id := range ids {
		if got := views[id].Epoch(); got != cur.Epoch {
			t.Fatalf("node %s epoch = %d, want %d", id, got, cur.Epoch)
		}
	}

	// Zero lost acked writes: every ledger entry reads back with its acked
	// value or newer (a dropped ack that committed is newer, not lost).
	for k, v := range ledger {
		got, ok, err := c.Get([]byte(k))
		if err != nil {
			t.Fatalf("readback %s: %v", k, err)
		}
		if !ok {
			t.Fatalf("acked write %s lost", k)
		}
		if string(got) != v && writerSeq(t, string(got)) < writerSeq(t, v) {
			t.Fatalf("readback %s = %q, older than acked %q", k, got, v)
		}
	}

	st := c.Stats()
	totalOps := int64(len(ledger)) + gets.Load()
	t.Logf("acked=%d gets=%d retryable=%d terminal=%d breakerOpens=%d breakerCloses=%d hedges=%d hedgeWins=%d",
		len(ledger), gets.Load(), st.RetryableErrors, st.TerminalErrors,
		st.BreakerOpens, st.BreakerCloses, st.HedgedReads, st.HedgeWins)

	// The faults were felt — and retries stayed bounded. A client that
	// retry-storms (no backoff, no breaker) would rack up orders of
	// magnitude more retryable errors than operations in these windows.
	if st.RetryableErrors == 0 {
		t.Error("no retryable errors recorded; the chaos phases injected nothing")
	}
	if st.RetryableErrors > 100*totalOps {
		t.Errorf("retry storm: %d retryable errors for %d ops", st.RetryableErrors, totalOps)
	}
	// Breaker lifecycle: opened for the killed node, re-closed after its
	// restart (live traffic re-probed it).
	if st.BreakerOpens < 1 {
		t.Error("breaker never opened across a node kill")
	}
	if st.BreakerCloses < 1 {
		t.Error("breaker never re-closed after the node restarted")
	}
	if got := c.BreakerState(addrOf["n3"]); got != "closed" {
		t.Errorf("n3 breaker = %q after recovery, want closed", got)
	}
	// Hedged reads fired during the brownout.
	if st.HedgedReads == 0 {
		t.Error("no hedged reads fired despite a scripted brownout")
	}
}
