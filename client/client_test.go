package client

import (
	"bytes"
	"fmt"
	"net/http/httptest"
	"strings"
	"testing"

	"adcache"
	"adcache/internal/cluster"
	"adcache/internal/server"
)

// newNode opens a DB and serves it over real HTTP, optionally cluster-
// configured with view.
func newNode(t *testing.T, view *cluster.NodeView) (*httptest.Server, *adcache.DB, string) {
	t.Helper()
	db, err := adcache.Open(adcache.Options{CacheBytes: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	opts := []server.Option{}
	if view != nil {
		opts = append(opts, server.WithCluster(view))
	}
	srv := httptest.NewServer(server.New(db, opts...))
	t.Cleanup(func() {
		srv.Close()
		db.Close()
	})
	return srv, db, strings.TrimPrefix(srv.URL, "http://")
}

func TestSingleNodeMode(t *testing.T) {
	_, _, addr := newNode(t, nil)
	c, err := New([]string{addr})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if c.Epoch() != 0 {
		t.Fatalf("single-node epoch = %d", c.Epoch())
	}
	if err := c.Put([]byte("k"), []byte("v")); err != nil {
		t.Fatal(err)
	}
	v, ok, err := c.Get([]byte("k"))
	if err != nil || !ok || string(v) != "v" {
		t.Fatalf("Get = %q %v %v", v, ok, err)
	}
	if _, ok, err := c.Get([]byte("missing")); err != nil || ok {
		t.Fatalf("missing Get = %v %v", ok, err)
	}
	if err := c.Delete([]byte("k")); err != nil {
		t.Fatal(err)
	}
	if _, ok, _ := c.Get([]byte("k")); ok {
		t.Fatal("deleted key still visible")
	}
}

// twoNodeCluster stands up two cluster-configured nodes sharing a 4-slot
// map and returns their views and DBs keyed by node ID.
func twoNodeCluster(t *testing.T) (addrs map[string]string, views map[string]*cluster.NodeView, dbs map[string]*adcache.DB, m *cluster.ShardMap) {
	t.Helper()
	addrs = map[string]string{}
	views = map[string]*cluster.NodeView{}
	dbs = map[string]*adcache.DB{}
	// Addresses aren't known until the servers exist, and the servers
	// need views. Build with placeholder addrs — the client only uses
	// addrs from the map, so patch them in before any client connects.
	seed := &cluster.ShardMap{
		Epoch:  1,
		Shards: 4,
		Nodes:  []cluster.Node{{ID: "a", Addr: "pending"}, {ID: "b", Addr: "pending"}},
		Owner:  []string{"a", "a", "b", "b"},
	}
	for _, id := range []string{"a", "b"} {
		view, err := cluster.NewNodeView(id, seed)
		if err != nil {
			t.Fatal(err)
		}
		_, db, addr := newNode(t, view)
		addrs[id] = addr
		views[id] = view
		dbs[id] = db
	}
	m = seed.Clone()
	m.Epoch = 2
	m.Nodes = []cluster.Node{{ID: "a", Addr: addrs["a"]}, {ID: "b", Addr: addrs["b"]}}
	for _, v := range views {
		if err := v.Apply(m); err != nil {
			t.Fatal(err)
		}
	}
	return addrs, views, dbs, m
}

// keysForSlots returns one key per requested slot.
func keyForSlot(t *testing.T, slot, shards int) []byte {
	t.Helper()
	for i := 0; ; i++ {
		k := []byte(fmt.Sprintf("key%06d", i))
		if cluster.ShardOf(k, shards) == slot {
			return k
		}
	}
}

func TestClusterRouting(t *testing.T) {
	addrs, _, dbs, _ := twoNodeCluster(t)
	c, err := New([]string{addrs["a"]})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if c.Epoch() != 2 {
		t.Fatalf("bootstrap epoch = %d", c.Epoch())
	}

	kA := keyForSlot(t, 0, 4) // owned by a
	kB := keyForSlot(t, 3, 4) // owned by b
	if err := c.Put(kA, []byte("va")); err != nil {
		t.Fatal(err)
	}
	if err := c.Put(kB, []byte("vb")); err != nil {
		t.Fatal(err)
	}
	// Each write landed on the owning node's local store.
	if _, ok, _ := dbs["a"].Get(kA); !ok {
		t.Fatal("kA not on node a")
	}
	if _, ok, _ := dbs["b"].Get(kB); !ok {
		t.Fatal("kB not on node b")
	}
	if _, ok, _ := dbs["a"].Get(kB); ok {
		t.Fatal("kB leaked onto node a")
	}
	v, ok, err := c.Get(kB)
	if err != nil || !ok || string(v) != "vb" {
		t.Fatalf("Get kB = %q %v %v", v, ok, err)
	}
	if st := c.Stats(); st.WrongShardRetries != 0 {
		t.Fatalf("unexpected retries: %+v", st)
	}
}

func TestClusterBatchGroupsPerNode(t *testing.T) {
	addrs, _, dbs, _ := twoNodeCluster(t)
	c, err := New([]string{addrs["b"]})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	var ops []Op
	var keys [][]byte
	for slot := 0; slot < 4; slot++ {
		k := keyForSlot(t, slot, 4)
		keys = append(keys, k)
		ops = append(ops, Op{Kind: OpPut, Key: k, Value: []byte(fmt.Sprintf("v%d", slot))})
	}
	if err := c.Batch(ops); err != nil {
		t.Fatal(err)
	}
	for slot, k := range keys {
		v, ok, err := c.Get(k)
		if err != nil || !ok || string(v) != fmt.Sprintf("v%d", slot) {
			t.Fatalf("slot %d: %q %v %v", slot, v, ok, err)
		}
	}
	// Slots 0,1 on a; 2,3 on b — strictly partitioned.
	for slot, k := range keys {
		owner := "a"
		if slot >= 2 {
			owner = "b"
		}
		if _, ok, _ := dbs[owner].Get(k); !ok {
			t.Fatalf("slot %d missing on node %s", slot, owner)
		}
	}
	// Batched deletes ride the same path.
	if err := c.Batch([]Op{{Kind: OpDelete, Key: keys[0]}, {Kind: OpDelete, Key: keys[3]}}); err != nil {
		t.Fatal(err)
	}
	if _, ok, _ := c.Get(keys[0]); ok {
		t.Fatal("deleted key visible")
	}
}

func TestClusterScanMerges(t *testing.T) {
	addrs, _, _, _ := twoNodeCluster(t)
	c, err := New([]string{addrs["a"]})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	var want []string
	for i := 0; i < 20; i++ {
		k := fmt.Sprintf("scan%04d", i)
		if err := c.Put([]byte(k), []byte("v")); err != nil {
			t.Fatal(err)
		}
		want = append(want, k)
	}
	kvs, err := c.Scan([]byte("scan"), []byte("scao"), 20)
	if err != nil {
		t.Fatal(err)
	}
	if len(kvs) != 20 {
		t.Fatalf("scan returned %d, want 20", len(kvs))
	}
	for i, kv := range kvs {
		if string(kv.Key) != want[i] {
			t.Fatalf("kvs[%d] = %q, want %q", i, kv.Key, want[i])
		}
		if i > 0 && bytes.Compare(kvs[i-1].Key, kv.Key) >= 0 {
			t.Fatal("merged scan out of order")
		}
	}
	// Limit respected across the merge.
	kvs, err = c.Scan([]byte("scan"), nil, 7)
	if err != nil || len(kvs) != 7 {
		t.Fatalf("limited scan = %d %v", len(kvs), err)
	}
}

// TestWrongShardRefresh: a shard moves behind the client's back; the next
// request gets WRONG_SHARD, refreshes, retries, and succeeds invisibly.
func TestWrongShardRefresh(t *testing.T) {
	addrs, views, dbs, m := twoNodeCluster(t)
	c, err := New([]string{addrs["a"]})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	k := keyForSlot(t, 0, 4) // on node a under epoch 2
	if err := c.Put(k, []byte("before")); err != nil {
		t.Fatal(err)
	}

	// Move slot 0 a→b the way the manager would: fence a, copy, publish b.
	next, err := m.WithMove(0, "b")
	if err != nil {
		t.Fatal(err)
	}
	if err := views["a"].Apply(next); err != nil {
		t.Fatal(err)
	}
	v, ok, err := dbs["a"].Get(k)
	if err != nil || !ok {
		t.Fatal("source data missing")
	}
	if err := dbs["b"].Put(k, v); err != nil {
		t.Fatal(err)
	}
	if err := views["b"].Apply(next); err != nil {
		t.Fatal(err)
	}

	// Client still holds epoch 2 and routes to a; the fence bounces it.
	got, ok, err := c.Get(k)
	if err != nil || !ok || string(got) != "before" {
		t.Fatalf("Get after move = %q %v %v", got, ok, err)
	}
	st := c.Stats()
	if st.WrongShardRetries == 0 {
		t.Fatal("expected at least one WRONG_SHARD retry")
	}
	if st.Epoch != 3 {
		t.Fatalf("client epoch = %d, want 3", st.Epoch)
	}
	// Writes now land on b.
	if err := c.Put(k, []byte("after")); err != nil {
		t.Fatal(err)
	}
	if v, ok, _ := dbs["b"].Get(k); !ok || string(v) != "after" {
		t.Fatalf("post-move write on b = %q %v", v, ok)
	}
}

// TestBatchRetriesOnlyFailedGroups: when one group of a mixed batch is
// rejected with WRONG_SHARD, only that group's ops are re-routed and
// re-sent on retry — the group another node has already acked must not
// be applied a second time.
func TestBatchRetriesOnlyFailedGroups(t *testing.T) {
	addrs, views, dbs, m := twoNodeCluster(t)
	c, err := New([]string{addrs["a"]})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	kA := keyForSlot(t, 0, 4) // on node a
	kB := keyForSlot(t, 3, 4) // on node b under the client's (stale) epoch 2

	// Move slot 3 b→a behind the client's back: fence b, publish a.
	next, err := m.WithMove(3, "a")
	if err != nil {
		t.Fatal(err)
	}
	if err := views["b"].Apply(next); err != nil {
		t.Fatal(err)
	}
	if err := views["a"].Apply(next); err != nil {
		t.Fatal(err)
	}

	// The a-group acks on attempt one; the b-group bounces WRONG_SHARD,
	// refreshes, and re-routes to a on attempt two.
	if err := c.Batch([]Op{
		{Kind: OpPut, Key: kA, Value: []byte("va")},
		{Kind: OpPut, Key: kB, Value: []byte("vb")},
	}); err != nil {
		t.Fatal(err)
	}
	if _, ok, _ := dbs["a"].Get(kA); !ok {
		t.Fatal("kA missing on node a")
	}
	if v, ok, _ := dbs["a"].Get(kB); !ok || string(v) != "vb" {
		t.Fatalf("kB on new owner = %q %v", v, ok)
	}
	if st := c.Stats(); st.WrongShardRetries == 0 {
		t.Fatal("expected a WRONG_SHARD batch retry")
	}
	// The acked group was not re-sent: node a observed exactly one write
	// on kA's slot. (A client re-sending the whole batch would re-apply
	// kA on the retry and double this count.)
	h := dbs["a"].Registry().Histogram(`http_shard_write_nanos{shard="0"}`, "")
	if got := h.Snapshot().Count; got != 1 {
		t.Fatalf("slot-0 writes on node a = %d, want exactly 1 (acked group re-sent?)", got)
	}
}

// TestBinaryClient: WithBinary changes only the encoding. Batches and
// scans behave identically to the JSON client — same routing and
// per-node partitioning — and raw (non-UTF-8) values survive the round
// trip byte-exact, which JSON cannot promise.
func TestBinaryClient(t *testing.T) {
	addrs, _, dbs, _ := twoNodeCluster(t)
	c, err := New([]string{addrs["a"]}, WithBinary())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	raw := []byte{0x00, 0x01, 0xfe, 0xff, '"', '\\', '\n'}
	var ops []Op
	var keys [][]byte
	for slot := 0; slot < 4; slot++ {
		k := keyForSlot(t, slot, 4)
		keys = append(keys, k)
		ops = append(ops, Op{Kind: OpPut, Key: k, Value: []byte(fmt.Sprintf("v%d", slot))})
	}
	ops = append(ops,
		Op{Kind: OpPut, Key: []byte("bin/raw"), Value: raw},
		Op{Kind: OpPut, Key: []byte("bin/gone"), Value: []byte("x")},
		Op{Kind: OpDelete, Key: []byte("bin/gone")})
	if err := c.Batch(ops); err != nil {
		t.Fatal(err)
	}

	// Same partitioning as the JSON batch test: slots 0,1 on a; 2,3 on b.
	for slot, k := range keys {
		owner := "a"
		if slot >= 2 {
			owner = "b"
		}
		if v, ok, _ := dbs[owner].Get(k); !ok || string(v) != fmt.Sprintf("v%d", slot) {
			t.Fatalf("slot %d on node %s = %q %v", slot, owner, v, ok)
		}
	}
	if _, ok, _ := c.Get([]byte("bin/gone")); ok {
		t.Fatal("deleted key visible")
	}
	if v, ok, err := c.Get([]byte("bin/raw")); err != nil || !ok || !bytes.Equal(v, raw) {
		t.Fatalf("raw Get = %q %v %v, want %q", v, ok, err, raw)
	}

	// The binary merged scan returns global key order and exact bytes.
	kvs, err := c.Scan([]byte("bin/"), []byte("bin0"), 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(kvs) != 1 || string(kvs[0].Key) != "bin/raw" || !bytes.Equal(kvs[0].Value, raw) {
		t.Fatalf("binary scan = %+v, want the one raw entry", kvs)
	}
	all, err := c.Scan([]byte("key"), nil, 100)
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != len(keys) {
		t.Fatalf("scan len = %d, want %d", len(all), len(keys))
	}
	for i := 1; i < len(all); i++ {
		if bytes.Compare(all[i-1].Key, all[i].Key) >= 0 {
			t.Fatal("binary merged scan out of order")
		}
	}
	// Limit respected mid-merge.
	if few, err := c.Scan([]byte("key"), nil, 2); err != nil || len(few) != 2 {
		t.Fatalf("limited binary scan = %d %v", len(few), err)
	}

	// A JSON client over the same cluster agrees on the UTF-8-clean keys.
	jc, err := New([]string{addrs["b"]})
	if err != nil {
		t.Fatal(err)
	}
	defer jc.Close()
	jall, err := jc.Scan([]byte("key"), nil, 100)
	if err != nil {
		t.Fatal(err)
	}
	if len(jall) != len(all) {
		t.Fatalf("JSON client scan len = %d, binary %d", len(jall), len(all))
	}
	for i := range all {
		if !bytes.Equal(jall[i].Key, all[i].Key) || !bytes.Equal(jall[i].Value, all[i].Value) {
			t.Fatalf("entry %d: json %q=%q vs binary %q=%q",
				i, jall[i].Key, jall[i].Value, all[i].Key, all[i].Value)
		}
	}
}

func TestNewErrors(t *testing.T) {
	if _, err := New(nil); err == nil {
		t.Fatal("empty seeds accepted")
	}
	if _, err := New([]string{"127.0.0.1:1"}); err == nil {
		t.Fatal("unreachable seed accepted")
	}
}
