// Package client is the supported Go client for an adcache cluster (or a
// single adcached node): it speaks the versioned /v1 wire API, caches the
// cluster's shard map, routes every key to its owning node, batches
// multi-key operations per node and dispatches them concurrently over
// pooled keep-alive connections, and transparently refreshes its map and
// retries when a node answers WRONG_SHARD — the signal that a shard moved.
//
//	c, err := client.New([]string{"127.0.0.1:8081", "127.0.0.1:8082"})
//	...
//	err = c.Put([]byte("k"), []byte("v"))
//	v, ok, err := c.Get([]byte("k"))
//
// Against a node started without cluster flags the client runs in
// single-node mode: no map, every request to the one seed address.
//
// Consistency contract: a rebalance fences the old owner before the new
// owner accepts a key, so an acked write is never lost across a shard
// move; during the move itself requests to the moving shard retry with
// backoff (bounded by WithMaxRetries) until the new owner holds both the
// map and the data. Multi-node Batch is atomic per node, not across
// nodes. Scan fans out to every node and merges, so results spanning a
// concurrent rebalance are eventually consistent.
package client

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/url"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"adcache/internal/api"
	"adcache/internal/api/wire"
	"adcache/internal/cluster"
)

// KV is one scan result.
type KV struct {
	Key   []byte
	Value []byte
}

// OpKind selects a batch operation.
type OpKind string

// The batch operation kinds.
const (
	OpPut    OpKind = "put"
	OpDelete OpKind = "delete"
)

// Op is one operation in a Batch.
type Op struct {
	Kind  OpKind
	Key   []byte
	Value []byte
}

// Stats is a point-in-time snapshot of the client's routing behavior —
// the observable the cluster tests assert on (bounded retries, zero
// unexpected errors).
type Stats struct {
	// Epoch is the client's current shard-map epoch (0 in single-node mode).
	Epoch uint64
	// WrongShardRetries counts requests re-sent after a WRONG_SHARD answer.
	WrongShardRetries int64
	// MapRefreshes counts shard-map fetches after the initial bootstrap.
	MapRefreshes int64
	// RetryableErrors counts attempts that failed retryably — transport
	// errors, per-attempt timeouts, open breakers — and were retried.
	RetryableErrors int64
	// TerminalErrors counts calls that ended in a terminal error (an
	// envelope other than WRONG_SHARD/NOT_FOUND, the caller's context
	// ending, or a response body that died mid-read once the caller's
	// context was already gone).
	TerminalErrors int64
	// BreakerOpens and BreakerCloses count per-node circuit-breaker
	// transitions; a close after an open is the recovery signal chaos
	// tests assert on.
	BreakerOpens  int64
	BreakerCloses int64
	// HedgedReads counts hedge requests launched (WithHedgedReads);
	// HedgeWins counts hedges that answered before the primary.
	HedgedReads int64
	HedgeWins   int64
}

// Option configures New.
type Option func(*Client)

// WithHTTPClient substitutes the underlying *http.Client (tests,
// custom transports). The default pools 64 keep-alive connections per
// node so concurrent requests to one node pipeline instead of
// re-dialing.
func WithHTTPClient(h *http.Client) Option { return func(c *Client) { c.httpc = h } }

// WithMaxRetries bounds per-request WRONG_SHARD/transport retries
// (default 20 — enough to ride out one shard migration).
func WithMaxRetries(n int) Option { return func(c *Client) { c.maxRetries = n } }

// WithRetryBackoff sets the per-attempt backoff base (default 5ms). The
// k-th retry waits a full-jitter draw from [0, min(cap, base·2^(k-1))];
// the cap defaults to 20×base (see WithBackoffCap).
func WithRetryBackoff(d time.Duration) Option { return func(c *Client) { c.backoff = d } }

// WithBackoffCap caps the exponential backoff ceiling (default 20×base).
func WithBackoffCap(d time.Duration) Option { return func(c *Client) { c.backoffCap = d } }

// WithRequestTimeout puts a deadline on each individual attempt (0 —
// the default — relies on the http.Client's overall timeout only). With
// it, a hung node costs one attempt's timeout, not the whole call
// budget; the deadline covers reading the response body, so size it for
// scans too.
func WithRequestTimeout(d time.Duration) Option { return func(c *Client) { c.reqTimeout = d } }

// WithJitterSeed seeds the backoff/jitter PRNG so retry schedules
// replay run-to-run (0 = seed from the clock).
func WithJitterSeed(seed int64) Option { return func(c *Client) { c.jitterSeed = seed } }

// WithBreaker tunes the per-node circuit breaker: it opens after
// threshold consecutive transport failures to one node and half-open
// probes after cooldown (defaults 5 and 200ms). An open breaker never
// fails a call terminally — attempts against it are skipped and
// retried elsewhere in time, so a dead node stops eating connect
// timeouts and a recovering one is rediscovered by a single probe.
func WithBreaker(threshold int, cooldown time.Duration) Option {
	return func(c *Client) { c.breakerThreshold, c.breakerCooldown = threshold, cooldown }
}

// WithHedgedReads arms read hedging: a Get or scan-open that has not
// answered within delay is raced against a second identical request on
// another pooled connection; the first usable answer wins. Reads only —
// writes are never hedged. This converts a brownout node's tail (slow
// with probability p) into p² at the cost of bounded duplicate reads.
func WithHedgedReads(delay time.Duration) Option { return func(c *Client) { c.hedgeDelay = delay } }

// WithBinary switches the bulk data plane to the length-prefixed binary
// framing: batches POST application/x-adcache-bin bodies and scans ask
// for the binary entry stream via Accept. Semantics are identical to
// the JSON default — same routing, retries, and error envelopes — minus
// the JSON encode/decode cost, and values round-trip as raw bytes
// (arbitrary binary survives; JSON degrades invalid UTF-8 to U+FFFD).
// Requires servers that speak the codec; older servers answer 400.
func WithBinary() Option { return func(c *Client) { c.binary = true } }

// Client is a shard-map-caching, routing, retrying cluster client. Safe
// for concurrent use.
type Client struct {
	httpc      *http.Client
	seeds      []string
	maxRetries int
	backoff    time.Duration
	backoffCap time.Duration
	reqTimeout time.Duration
	hedgeDelay time.Duration
	jitterSeed int64
	binary     bool

	breakerThreshold int
	breakerCooldown  time.Duration

	rngMu sync.Mutex
	rng   *rand.Rand

	brMu     sync.Mutex
	breakers map[string]*breaker

	cur atomic.Pointer[cluster.ShardMap] // nil in single-node mode

	retries       atomic.Int64
	refreshes     atomic.Int64
	retryableErrs atomic.Int64
	terminalErrs  atomic.Int64
	breakerOpens  atomic.Int64
	breakerCloses atomic.Int64
	hedges        atomic.Int64
	hedgeWins     atomic.Int64
}

// New connects to a cluster through one or more seed addresses
// ("host:port"). It bootstraps the shard map from the first seed that
// serves /v1/shardmap; if every seed reports it is not
// cluster-configured, the client degrades to single-node mode against
// the first seed.
func New(seeds []string, opts ...Option) (*Client, error) {
	if len(seeds) == 0 {
		return nil, errors.New("client: no seed addresses")
	}
	c := &Client{
		seeds:            append([]string(nil), seeds...),
		maxRetries:       20,
		backoff:          5 * time.Millisecond,
		breakerThreshold: 5,
		breakerCooldown:  200 * time.Millisecond,
		breakers:         map[string]*breaker{},
	}
	for _, o := range opts {
		o(c)
	}
	if c.backoffCap <= 0 {
		c.backoffCap = 20 * c.backoff
	}
	c.rng = seededRNG(c.jitterSeed)
	if c.httpc == nil {
		tr := http.DefaultTransport.(*http.Transport).Clone()
		tr.MaxIdleConns = 256
		tr.MaxIdleConnsPerHost = 64
		c.httpc = &http.Client{Transport: tr, Timeout: 30 * time.Second}
	}
	var lastErr error
	for _, seed := range c.seeds {
		m, err := c.fetchMap(context.Background(), seed)
		if err == nil {
			c.cur.Store(m)
			return c, nil
		}
		var env *api.Envelope
		if errors.As(err, &env) && env.Code == api.CodeNotFound {
			return c, nil // single-node mode
		}
		lastErr = err
	}
	return nil, fmt.Errorf("client: bootstrap failed against all seeds: %w", lastErr)
}

// Close releases pooled connections.
func (c *Client) Close() { c.httpc.CloseIdleConnections() }

// Epoch returns the cached shard-map epoch (0 in single-node mode).
func (c *Client) Epoch() uint64 {
	if m := c.cur.Load(); m != nil {
		return m.Epoch
	}
	return 0
}

// Stats returns a snapshot of the client's routing counters.
func (c *Client) Stats() Stats {
	return Stats{
		Epoch:             c.Epoch(),
		WrongShardRetries: c.retries.Load(),
		MapRefreshes:      c.refreshes.Load(),
		RetryableErrors:   c.retryableErrs.Load(),
		TerminalErrors:    c.terminalErrs.Load(),
		BreakerOpens:      c.breakerOpens.Load(),
		BreakerCloses:     c.breakerCloses.Load(),
		HedgedReads:       c.hedges.Load(),
		HedgeWins:         c.hedgeWins.Load(),
	}
}

// fetchMap GETs /v1/shardmap from addr.
func (c *Client) fetchMap(ctx context.Context, addr string) (*cluster.ShardMap, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, "http://"+addr+"/v1/shardmap", nil)
	if err != nil {
		return nil, err
	}
	resp, err := c.httpc.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, decodeEnvelope(resp)
	}
	var m cluster.ShardMap
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		return nil, err
	}
	return &m, nil
}

// refreshFrom adopts addr's map if it is newer than the cached one.
// Epochs only move forward — a node still holding an older map cannot
// regress the client.
func (c *Client) refreshFrom(ctx context.Context, addr string) {
	m, err := c.fetchMap(ctx, addr)
	if err != nil {
		return
	}
	c.refreshes.Add(1)
	for {
		cur := c.cur.Load()
		if cur != nil && m.Epoch <= cur.Epoch {
			return
		}
		if c.cur.CompareAndSwap(cur, m) {
			return
		}
	}
}

// Refresh force-fetches the shard map from every known node, keeping the
// highest epoch.
func (c *Client) Refresh(ctx context.Context) {
	for _, addr := range c.addrs() {
		c.refreshFrom(ctx, addr)
	}
}

// addrs returns every routable node address (map nodes, or the seeds).
func (c *Client) addrs() []string {
	if m := c.cur.Load(); m != nil {
		out := make([]string, len(m.Nodes))
		for i, n := range m.Nodes {
			out[i] = n.Addr
		}
		return out
	}
	return c.seeds[:1]
}

// route returns the address owning key under the cached map.
func (c *Client) route(key []byte) string {
	m := c.cur.Load()
	if m == nil {
		return c.seeds[0]
	}
	owner := m.OwnerOf(key)
	if n, ok := m.NodeByID(owner); ok {
		return n.Addr
	}
	return c.seeds[0]
}

// decodeEnvelope turns a non-2xx response into an *api.Envelope error
// (synthesizing one when the body is not an envelope).
func decodeEnvelope(resp *http.Response) error {
	body, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
	var env api.Envelope
	if err := json.Unmarshal(body, &env); err == nil && env.Code != "" {
		return &env
	}
	return &api.Envelope{
		Code:    api.CodeInternal,
		Message: fmt.Sprintf("%s: %s", resp.Status, bytes.TrimSpace(body)),
	}
}

// do executes one keyed request with WRONG_SHARD/transport retries.
// build makes the request for the currently routed address; handle
// consumes a 2xx response; hedge marks the request idempotent and
// eligible for hedged execution (WithHedgedReads). Retryable failures
// (transport errors, per-attempt timeouts, open breakers, WRONG_SHARD)
// back off with full jitter and go again; terminal answers (any other
// envelope, or the caller's context ending) return immediately.
func (c *Client) do(ctx context.Context, key []byte, hedge bool, build func(addr string) (*http.Request, error), handle func(*http.Response) error) error {
	var lastErr error
	for attempt := 0; attempt <= c.maxRetries; attempt++ {
		if attempt > 0 {
			if err := c.sleep(ctx, attempt); err != nil {
				c.terminalErrs.Add(1)
				return fmt.Errorf("client: request abandoned after %d attempts: %w", attempt, err)
			}
		}
		if err := ctx.Err(); err != nil {
			c.terminalErrs.Add(1)
			return err
		}
		addr := c.route(key)
		if !c.breakerFor(addr).allow(time.Now(), c.breakerCooldown) {
			// The node is believed down: skip dialing it, back off, and
			// let a half-open probe test it. A retryable non-event, not a
			// user-visible failure — if the map moves the key elsewhere
			// meanwhile, the next attempt routes there.
			c.retryableErrs.Add(1)
			lastErr = fmt.Errorf("%w (%s)", ErrBreakerOpen, addr)
			continue
		}
		resp, release, err := c.roundTrip(ctx, addr, build, hedge)
		if err != nil {
			if ctx.Err() == nil {
				c.noteTransport(addr, false)
			} else {
				// The caller's context ended mid-attempt: that says
				// nothing about the node's health, so release any probe
				// slot without charging the breaker — repeated short
				// caller deadlines must not open it.
				c.breakerFor(addr).abandonProbe()
			}
			if !IsRetryable(err) {
				c.terminalErrs.Add(1)
				return err
			}
			c.retryableErrs.Add(1)
			lastErr = err
			continue
		}
		c.noteTransport(addr, true)
		c.noteEpochHeader(ctx, resp, addr)
		if resp.StatusCode/100 == 2 {
			herr := handle(resp)
			resp.Body.Close()
			release()
			if herr == nil {
				return nil
			}
			// A 2xx whose body died mid-read (connection reset,
			// truncated stream, the attempt deadline firing while
			// streaming) is a transport-class failure, not an answer:
			// retry idempotent reads; writes never error in handle, so
			// the terminal path below is reached only once the caller's
			// own context has ended.
			if hedge && ctx.Err() == nil {
				c.retryableErrs.Add(1)
				lastErr = herr
				continue
			}
			c.terminalErrs.Add(1)
			return herr
		}
		envErr := decodeEnvelope(resp)
		resp.Body.Close()
		release()
		var env *api.Envelope
		if errors.As(envErr, &env) && env.Code == api.CodeWrongShard {
			c.retries.Add(1)
			lastErr = envErr
			// The rejecting node is ahead of us: adopt its map and go
			// again immediately. A node *behind* us (mid-publish) just
			// needs time — fall through to the backoff.
			if env.Epoch > c.Epoch() {
				c.refreshFrom(ctx, addr)
			}
			continue
		}
		if env == nil || env.Code != api.CodeNotFound {
			c.terminalErrs.Add(1) // NOT_FOUND is an answer, not an error
		}
		return envErr
	}
	return fmt.Errorf("client: retries exhausted for key %q: %w", key, lastErr)
}

// sleep waits the attempt-th jittered backoff, or returns the caller's
// context error immediately once it ends — no post-cancel attempts.
func (c *Client) sleep(ctx context.Context, attempt int) error {
	d := c.backoffJitter(attempt)
	if d <= 0 {
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

// noteEpochHeader watches response routing headers for evidence of a
// newer map and refreshes passively.
func (c *Client) noteEpochHeader(ctx context.Context, resp *http.Response, addr string) {
	raw := resp.Header.Get(api.HeaderEpoch)
	if raw == "" {
		return
	}
	e, err := strconv.ParseUint(raw, 10, 64)
	if err != nil {
		return
	}
	if cur := c.Epoch(); cur != 0 && e > cur {
		c.refreshFrom(ctx, addr)
	}
}

// epochHeaderValue renders an epoch for the routing header.
func epochHeaderValue(e uint64) string { return strconv.FormatUint(e, 10) }

func (c *Client) keyURL(addr string, key []byte) string {
	return "http://" + addr + "/v1/kv/" + url.PathEscape(string(key))
}

// Get fetches key. ok is false when the key does not exist.
func (c *Client) Get(key []byte) (value []byte, ok bool, err error) {
	return c.GetCtx(context.Background(), key)
}

// GetCtx is Get with a context.
func (c *Client) GetCtx(ctx context.Context, key []byte) (value []byte, ok bool, err error) {
	err = c.do(ctx, key, true,
		func(addr string) (*http.Request, error) {
			return http.NewRequestWithContext(ctx, http.MethodGet, c.keyURL(addr, key), nil)
		},
		func(resp *http.Response) error {
			b, err := io.ReadAll(resp.Body)
			if err != nil {
				return err
			}
			value, ok = b, true
			return nil
		})
	var env *api.Envelope
	if errors.As(err, &env) && env.Code == api.CodeNotFound {
		return nil, false, nil
	}
	if err != nil {
		return nil, false, err
	}
	return value, ok, nil
}

// Put writes key=value. A nil error means the write is acked by the
// shard's owning node.
func (c *Client) Put(key, value []byte) error {
	return c.PutCtx(context.Background(), key, value)
}

// PutCtx is Put with a context.
func (c *Client) PutCtx(ctx context.Context, key, value []byte) error {
	return c.do(ctx, key, false,
		func(addr string) (*http.Request, error) {
			return http.NewRequestWithContext(ctx, http.MethodPut, c.keyURL(addr, key), bytes.NewReader(value))
		},
		func(*http.Response) error { return nil })
}

// Delete removes key (idempotent).
func (c *Client) Delete(key []byte) error {
	return c.DeleteCtx(context.Background(), key)
}

// DeleteCtx is Delete with a context.
func (c *Client) DeleteCtx(ctx context.Context, key []byte) error {
	return c.do(ctx, key, false,
		func(addr string) (*http.Request, error) {
			return http.NewRequestWithContext(ctx, http.MethodDelete, c.keyURL(addr, key), nil)
		},
		func(*http.Response) error { return nil })
}

// Scan returns up to n entries with key >= start (and < end when end is
// non-empty), merged across every node in key order.
func (c *Client) Scan(start, end []byte, n int) ([]KV, error) {
	return c.ScanCtx(context.Background(), start, end, n)
}

// ScanCtx is Scan with a context. The merge is incremental: every
// node's response is decoded entry-by-entry as it streams in (JSON
// array or binary entry stream, per WithBinary) and merge-sorted on the
// fly, so the client holds at most one pending entry per node plus the
// n results — never a node's full response — and cancels the underlying
// requests as soon as n entries are merged.
func (c *Client) ScanCtx(ctx context.Context, start, end []byte, n int) ([]KV, error) {
	if n <= 0 {
		n = 16
	}
	addrs := c.addrs()
	// A child context so returning (n reached, or any stream error)
	// aborts every stream still in flight.
	sctx, cancel := context.WithCancel(ctx)
	defer cancel()
	streams := make([]*scanStream, len(addrs))
	errs := make([]error, len(addrs))
	var wg sync.WaitGroup
	for i, addr := range addrs {
		wg.Add(1)
		go func(i int, addr string) {
			defer wg.Done()
			streams[i], errs[i] = c.openScan(sctx, addr, start, end, n)
		}(i, addr)
	}
	wg.Wait()
	defer func() {
		for _, st := range streams {
			if st != nil {
				st.resp.Body.Close()
				if st.release != nil {
					st.release()
				}
			}
		}
	}()
	for i, err := range errs {
		if err != nil {
			return nil, err
		}
		if streams[i].err != nil {
			return nil, streams[i].err
		}
	}
	// Shards partition the keyspace, so streams never carry duplicate
	// keys: plain min-select over the stream heads yields global order.
	out := make([]KV, 0, n)
	for len(out) < n {
		best := -1
		for i, st := range streams {
			if st.exhausted {
				continue
			}
			if best == -1 || bytes.Compare(st.key, streams[best].key) < 0 {
				best = i
			}
		}
		if best == -1 {
			break
		}
		st := streams[best]
		out = append(out, KV{Key: st.key, Value: st.value})
		st.advance()
		if st.err != nil {
			return nil, st.err
		}
	}
	return out, nil
}

// scanStream is one node's scan response, decoded incrementally. key
// and value hold the current (not-yet-consumed) entry, owned by the
// stream's consumer once handed out — advance always builds fresh
// slices.
type scanStream struct {
	resp      *http.Response
	release   func()                                // cancels the attempt contexts; call after Body.Close
	pull      func() (key, value []byte, err error) // io.EOF at clean end
	key       []byte
	value     []byte
	err       error
	exhausted bool
}

// advance loads the next entry, marking the stream exhausted at a clean
// end and recording any decode/transport error (a truncated stream —
// the server died mid-scan — surfaces here, never as silent shortness).
func (s *scanStream) advance() {
	k, v, err := s.pull()
	if err != nil {
		s.exhausted = true
		if err != io.EOF {
			s.err = err
		}
		return
	}
	s.key, s.value = k, v
}

// openScan starts one node's scan and primes its first entry. The open
// is hedged when WithHedgedReads is armed — a scan is an idempotent
// read, so racing a second open against a slow node is safe.
func (c *Client) openScan(ctx context.Context, addr string, start, end []byte, n int) (*scanStream, error) {
	q := url.Values{}
	q.Set("start", string(start))
	if len(end) > 0 {
		q.Set("end", string(end))
	}
	q.Set("n", strconv.Itoa(n))
	build := func(addr string) (*http.Request, error) {
		req, err := http.NewRequestWithContext(ctx, http.MethodGet,
			"http://"+addr+"/v1/scan?"+q.Encode(), nil)
		if err != nil {
			return nil, err
		}
		if c.binary {
			req.Header.Set("Accept", wire.ContentType)
		}
		return req, nil
	}
	if !c.breakerFor(addr).allow(time.Now(), c.breakerCooldown) {
		return nil, fmt.Errorf("%w (%s)", ErrBreakerOpen, addr)
	}
	resp, release, err := c.roundTrip(ctx, addr, build, true)
	if err != nil {
		if ctx.Err() == nil {
			c.noteTransport(addr, false)
		} else {
			// Caller (or sibling-stream) cancellation, not node health.
			c.breakerFor(addr).abandonProbe()
		}
		return nil, err
	}
	c.noteTransport(addr, true)
	if resp.StatusCode != http.StatusOK {
		defer release()
		defer resp.Body.Close()
		return nil, decodeEnvelope(resp)
	}
	st := &scanStream{resp: resp, release: release}
	if resp.Header.Get("Content-Type") == wire.ContentType {
		// Binary entry stream: the decoder's slices are scratch reused
		// by the next frame, so copy out before handing them upward.
		// Copies are carved from a chunked arena — two allocations per
		// entry would make the scan hot path GC-bound.
		dec := &wire.StreamDecoder{}
		dec.Reset(resp.Body)
		var arena []byte
		carve := func(b []byte) []byte {
			if len(b) > len(arena) {
				sz := 64 << 10
				if len(b) > sz {
					sz = len(b)
				}
				arena = make([]byte, sz)
			}
			out := arena[:len(b):len(b)]
			arena = arena[len(b):]
			copy(out, b)
			return out
		}
		st.pull = func() ([]byte, []byte, error) {
			k, v, err := dec.Next()
			if err != nil {
				return nil, nil, err
			}
			return carve(k), carve(v), nil
		}
	} else {
		// JSON array, element-at-a-time: Token consumes the brackets,
		// Decode one entry per pull.
		dec := json.NewDecoder(resp.Body)
		if _, err := dec.Token(); err != nil { // opening [
			resp.Body.Close()
			release()
			return nil, err
		}
		st.pull = func() ([]byte, []byte, error) {
			if !dec.More() {
				if _, err := dec.Token(); err != nil { // closing ]
					return nil, nil, err
				}
				return nil, nil, io.EOF
			}
			var e api.ScanEntry
			if err := dec.Decode(&e); err != nil {
				return nil, nil, err
			}
			return []byte(e.Key), []byte(e.Value), nil
		}
	}
	st.advance()
	return st, nil
}

// Batch applies ops, grouped by owning node and dispatched concurrently.
// Each node's group is atomic on that node; cross-node batches are not
// atomic as a whole. Only failed groups are retried — re-routed under a
// refreshed map after WRONG_SHARD, re-sent as-is after a transport
// failure. A group its node has acked is never re-sent; a group whose
// ack was lost may be re-sent (puts and deletes are idempotent
// last-write-wins), so each group applies at-least-once and an acked
// batch is never lost.
func (c *Client) Batch(ops []Op) error {
	return c.BatchCtx(context.Background(), ops)
}

// BatchCtx is Batch with a context.
func (c *Client) BatchCtx(ctx context.Context, ops []Op) error {
	if len(ops) == 0 {
		return nil
	}
	pending := ops
	var lastErr error
	for attempt := 0; attempt <= c.maxRetries; attempt++ {
		if attempt > 0 {
			if err := c.sleep(ctx, attempt); err != nil {
				c.terminalErrs.Add(1)
				return fmt.Errorf("client: batch abandoned (%d ops unacked): %w", len(pending), err)
			}
		}
		if err := ctx.Err(); err != nil {
			c.terminalErrs.Add(1)
			return err
		}
		groups := map[string][]Op{}
		for _, op := range pending {
			addr := c.route(op.Key)
			groups[addr] = append(groups[addr], op)
		}
		retry, retryErr, fatal := c.sendGroups(ctx, groups)
		if fatal != nil {
			return fatal
		}
		if len(retry) == 0 {
			return nil
		}
		pending, lastErr = retry, retryErr
		c.retries.Add(1)
	}
	return fmt.Errorf("client: batch retries exhausted (%d ops unacked): %w", len(pending), lastErr)
}

// sendGroups posts each node's group concurrently. Failed groups come
// back in retry: WRONG_SHARD groups re-route under the map that was
// already refreshed; transport-failed groups re-send as-is — the node
// may or may not have applied them (a dropped ack means it did), and
// idempotent last-write-wins ops make the re-send safe. Terminal
// failures (other envelopes, the caller's context ending) are fatal.
// Acked groups are consumed here and never returned.
func (c *Client) sendGroups(ctx context.Context, groups map[string][]Op) (retry []Op, retryErr, fatal error) {
	type result struct {
		addr string
		ops  []Op
		err  error
	}
	results := make(chan result, len(groups))
	for addr, group := range groups {
		go func(addr string, group []Op) {
			results <- result{addr, group, c.postBatch(ctx, addr, group)}
		}(addr, group)
	}
	for range groups {
		r := <-results
		if r.err == nil {
			continue
		}
		var env *api.Envelope
		if errors.As(r.err, &env) && env.Code == api.CodeWrongShard {
			if env.Epoch > c.Epoch() {
				c.refreshFrom(ctx, r.addr)
			}
			retry = append(retry, r.ops...)
			retryErr = r.err
			continue
		}
		if IsRetryable(r.err) {
			c.retryableErrs.Add(1)
			retry = append(retry, r.ops...)
			retryErr = r.err
			continue
		}
		c.terminalErrs.Add(1)
		fatal = r.err // keep draining; the channel is buffered
	}
	if fatal != nil {
		return nil, nil, fatal
	}
	return retry, retryErr, nil
}

func (c *Client) postBatch(ctx context.Context, addr string, group []Op) error {
	var body []byte
	contentType := "application/json"
	if c.binary {
		contentType = wire.ContentType
		var buf []byte
		bp := wire.GetBuf()
		// The buffer is pooled; it outlives Do because bytes.Reader's
		// GetBody (for transport retries) re-slices it, so release only
		// after the round trip fully completes.
		defer func() { *bp = buf; wire.PutBuf(bp) }()
		buf = wire.AppendBatchHeader((*bp)[:0], len(group))
		for _, op := range group {
			switch op.Kind {
			case OpDelete:
				buf = wire.AppendDelete(buf, op.Key)
			case OpPut:
				buf = wire.AppendPut(buf, op.Key, op.Value)
			default:
				return fmt.Errorf("client: unknown batch op kind %q", op.Kind)
			}
		}
		body = buf
	} else {
		jops := make([]api.BatchOp, len(group))
		for i, op := range group {
			jops[i] = api.BatchOp{Op: string(op.Kind), Key: string(op.Key), Value: string(op.Value)}
		}
		b, err := json.Marshal(jops)
		if err != nil {
			return err
		}
		body = b
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost,
		"http://"+addr+"/v1/batch", bytes.NewReader(body))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", contentType)
	actx := ctx
	if c.reqTimeout > 0 {
		var cancel context.CancelFunc
		actx, cancel = context.WithTimeout(ctx, c.reqTimeout)
		defer cancel()
		req = req.WithContext(actx)
	}
	// The breaker check sits immediately before the dial so that every
	// path past a successful allow() reports an outcome — an early
	// return between allow() and Do would strand a half-open probe slot
	// and permanently blacklist the node.
	if !c.breakerFor(addr).allow(time.Now(), c.breakerCooldown) {
		return fmt.Errorf("%w (%s)", ErrBreakerOpen, addr)
	}
	resp, err := c.httpc.Do(req)
	if err != nil {
		if actx.Err() != nil && ctx.Err() == nil {
			err = fmt.Errorf("%w: %w", ErrAttemptTimeout, err)
		}
		if ctx.Err() == nil {
			c.noteTransport(addr, false)
		} else {
			c.breakerFor(addr).abandonProbe()
		}
		return err
	}
	c.noteTransport(addr, true)
	defer resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		return decodeEnvelope(resp)
	}
	return nil
}
