package client

import (
	"context"
	"errors"
	"fmt"
	"net"
	"net/http"
	"runtime"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"adcache"
	"adcache/internal/api"
	"adcache/internal/cluster/chaos"
	"adcache/internal/server"
)

// startChaosNode serves a real single-node adcache server on a chaos
// Listener (so tests can Kill/Restart it), optionally wrapping the
// handler, and returns the listener and address.
func startChaosNode(t *testing.T, wrap func(http.Handler) http.Handler) (*chaos.Listener, string) {
	t.Helper()
	db, err := adcache.Open(adcache.Options{CacheBytes: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	raw, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ln := chaos.NewListener(raw)
	var h http.Handler = server.New(db)
	if wrap != nil {
		h = wrap(h)
	}
	hs := &http.Server{Handler: h}
	go hs.Serve(ln)
	t.Cleanup(func() { hs.Close() })
	return ln, raw.Addr().String()
}

func TestIsRetryableClassification(t *testing.T) {
	cases := []struct {
		name string
		err  error
		want bool
	}{
		{"nil", nil, false},
		{"canceled", context.Canceled, false},
		{"deadline", context.DeadlineExceeded, false},
		{"wrapped-canceled", &chaosWrap{context.Canceled}, false},
		{"wrong-shard", &api.Envelope{Code: api.CodeWrongShard}, true},
		{"not-found", &api.Envelope{Code: api.CodeNotFound}, false},
		{"internal", &api.Envelope{Code: api.CodeInternal}, false},
		{"breaker-open", ErrBreakerOpen, true},
		{"transport", errors.New("connection refused"), true},
		{"injected", &chaos.ErrInjected{Kind: "reset", Dst: "x"}, true},
		// A per-attempt timeout wraps the attempt context's
		// DeadlineExceeded but must classify retryable — the sentinel
		// outranks the (terminal) caller-context check.
		{"attempt-timeout", fmt.Errorf("%w: %w", ErrAttemptTimeout, context.DeadlineExceeded), true},
	}
	for _, tc := range cases {
		if got := IsRetryable(tc.err); got != tc.want {
			t.Errorf("IsRetryable(%s) = %v, want %v", tc.name, got, tc.want)
		}
	}
}

type chaosWrap struct{ err error }

func (w *chaosWrap) Error() string { return "wrap: " + w.err.Error() }
func (w *chaosWrap) Unwrap() error { return w.err }

func TestBackoffJitterBounds(t *testing.T) {
	c := &Client{backoff: 10 * time.Millisecond, backoffCap: 80 * time.Millisecond, rng: seededRNG(42)}
	for attempt := 1; attempt <= 10; attempt++ {
		ceil := c.backoff << (attempt - 1)
		if ceil > c.backoffCap || ceil <= 0 {
			ceil = c.backoffCap
		}
		for i := 0; i < 100; i++ {
			d := c.backoffJitter(attempt)
			if d < 0 || d > ceil {
				t.Fatalf("attempt %d: jitter %v outside [0, %v]", attempt, d, ceil)
			}
		}
	}
	// Same seed, same schedule.
	a := &Client{backoff: time.Millisecond, backoffCap: 20 * time.Millisecond, rng: seededRNG(7)}
	b := &Client{backoff: time.Millisecond, backoffCap: 20 * time.Millisecond, rng: seededRNG(7)}
	for i := 1; i < 20; i++ {
		if da, db := a.backoffJitter(i), b.backoffJitter(i); da != db {
			t.Fatalf("seeded schedules diverged at draw %d: %v vs %v", i, da, db)
		}
	}
}

func TestBreakerLifecycle(t *testing.T) {
	b := &breaker{}
	now := time.Now()
	cooldown := 100 * time.Millisecond

	// Closed: failures accumulate, threshold opens.
	for i := 0; i < 2; i++ {
		if !b.allow(now, cooldown) {
			t.Fatal("closed breaker denied a request")
		}
		opened, _ := b.record(false, 3, now)
		if opened {
			t.Fatalf("opened after %d failures, threshold 3", i+1)
		}
	}
	if !b.allow(now, cooldown) {
		t.Fatal("closed breaker denied a request")
	}
	if opened, _ := b.record(false, 3, now); !opened {
		t.Fatal("did not open at threshold")
	}
	// Open: denies until cooldown.
	if b.allow(now.Add(50*time.Millisecond), cooldown) {
		t.Fatal("open breaker admitted a request inside cooldown")
	}
	// Cooldown over: exactly one half-open probe at a time.
	probeTime := now.Add(cooldown)
	if !b.allow(probeTime, cooldown) {
		t.Fatal("no half-open probe after cooldown")
	}
	if b.allow(probeTime, cooldown) {
		t.Fatal("second concurrent probe admitted in half-open")
	}
	// Probe failure re-opens for another cooldown.
	if opened, _ := b.record(false, 3, probeTime); !opened {
		t.Fatal("failed probe did not re-open")
	}
	if b.allow(probeTime.Add(10*time.Millisecond), cooldown) {
		t.Fatal("re-opened breaker admitted a request")
	}
	// Successful probe closes.
	probe2 := probeTime.Add(cooldown)
	if !b.allow(probe2, cooldown) {
		t.Fatal("no second probe")
	}
	if _, closed := b.record(true, 3, probe2); !closed {
		t.Fatal("successful probe did not close")
	}
	if !b.allow(probe2, cooldown) {
		t.Fatal("closed breaker denied a request")
	}
}

// TestBreakerOpensAndRecovers drives the breaker through a real node
// kill/restart: the breaker must open while the node is dead (and the
// call fail retryably after the retry budget) and re-close once the node
// is back.
func TestBreakerOpensAndRecovers(t *testing.T) {
	ln, addr := startChaosNode(t, nil)
	c, err := New([]string{addr},
		WithMaxRetries(6),
		WithRetryBackoff(2*time.Millisecond),
		WithBreaker(2, 30*time.Millisecond),
		WithJitterSeed(7))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Put([]byte("k"), []byte("v1")); err != nil {
		t.Fatal(err)
	}

	ln.Kill()
	if err := c.Put([]byte("k"), []byte("v2")); err == nil {
		t.Fatal("put succeeded against a killed node")
	}
	if got := c.BreakerState(addr); got != "open" {
		t.Fatalf("breaker state after kill = %q, want open", got)
	}
	st := c.Stats()
	if st.BreakerOpens == 0 || st.RetryableErrors == 0 {
		t.Fatalf("stats after kill: opens=%d retryable=%d, want both > 0", st.BreakerOpens, st.RetryableErrors)
	}

	ln.Restart()
	deadline := time.Now().Add(5 * time.Second)
	for {
		if err = c.Put([]byte("k"), []byte("v3")); err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("put never recovered after restart: %v", err)
		}
	}
	if got := c.BreakerState(addr); got != "closed" {
		t.Fatalf("breaker state after recovery = %q, want closed", got)
	}
	if st := c.Stats(); st.BreakerCloses == 0 {
		t.Fatalf("breaker never recorded a close: %+v", st)
	}
	v, ok, err := c.Get([]byte("k"))
	if err != nil || !ok || string(v) != "v3" {
		t.Fatalf("readback after recovery = %q %v %v", v, ok, err)
	}
}

// TestHedgedReadCutsTail: with hedging armed, a Get whose primary
// attempt hits a slow path must be rescued by the hedge well before the
// slow response would have arrived.
func TestHedgedReadCutsTail(t *testing.T) {
	var slowGets atomic.Int64
	slowFirstGet := func(next http.Handler) http.Handler {
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			if r.Method == http.MethodGet && len(r.URL.Path) > len("/v1/kv/") && r.URL.Path[:len("/v1/kv/")] == "/v1/kv/" {
				if slowGets.Add(1) == 1 {
					time.Sleep(500 * time.Millisecond)
				}
			}
			next.ServeHTTP(w, r)
		})
	}
	_, addr := startChaosNode(t, slowFirstGet)
	c, err := New([]string{addr}, WithHedgedReads(25*time.Millisecond), WithJitterSeed(1))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Put([]byte("k"), []byte("v")); err != nil {
		t.Fatal(err)
	}

	t0 := time.Now()
	v, ok, err := c.Get([]byte("k"))
	elapsed := time.Since(t0)
	if err != nil || !ok || string(v) != "v" {
		t.Fatalf("Get = %q %v %v", v, ok, err)
	}
	if elapsed >= 400*time.Millisecond {
		t.Fatalf("hedged Get took %v — hedge did not rescue the slow primary", elapsed)
	}
	st := c.Stats()
	if st.HedgedReads == 0 || st.HedgeWins == 0 {
		t.Fatalf("stats: hedges=%d wins=%d, want both > 0", st.HedgedReads, st.HedgeWins)
	}
}

// countingRT counts transport attempts so tests can prove the retry
// loop stops sending after the caller's context ends.
type countingRT struct {
	base http.RoundTripper
	n    atomic.Int64
}

func (c *countingRT) RoundTrip(r *http.Request) (*http.Response, error) {
	c.n.Add(1)
	return c.base.RoundTrip(r)
}

// TestCancelStopsRetriesPromptly is the context-propagation regression
// test: once the caller's context ends, the retry loop must exit on the
// next iteration — no burning the remaining (huge) retry budget with
// zero-length sleeps and post-cancel sends.
func TestCancelStopsRetriesPromptly(t *testing.T) {
	ln, addr := startChaosNode(t, nil)
	rt := &countingRT{base: http.DefaultTransport}
	c, err := New([]string{addr},
		WithHTTPClient(&http.Client{Transport: rt}),
		WithMaxRetries(100000),
		WithRetryBackoff(time.Millisecond),
		WithJitterSeed(2))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Put([]byte("k"), []byte("v")); err != nil {
		t.Fatal(err)
	}

	ln.Kill()
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Millisecond)
	defer cancel()
	t0 := time.Now()
	err = c.PutCtx(ctx, []byte("k"), []byte("v2"))
	elapsed := time.Since(t0)
	if err == nil {
		t.Fatal("put succeeded against a killed node")
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("error = %v, want context.DeadlineExceeded in the chain", err)
	}
	if elapsed > 2*time.Second {
		t.Fatalf("PutCtx held %v past a 60ms deadline", elapsed)
	}
	attempts := rt.n.Load()
	if attempts > 100 {
		t.Fatalf("%d transport attempts for a 60ms deadline — retries ran past cancellation", attempts)
	}
	// And the same for a batch.
	ctx2, cancel2 := context.WithTimeout(context.Background(), 60*time.Millisecond)
	defer cancel2()
	before := rt.n.Load()
	err = c.BatchCtx(ctx2, []Op{{Kind: OpPut, Key: []byte("k"), Value: []byte("v3")}})
	if err == nil {
		t.Fatal("batch succeeded against a killed node")
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("batch error = %v, want context.DeadlineExceeded in the chain", err)
	}
	if sent := rt.n.Load() - before; sent > 100 {
		t.Fatalf("%d batch transport attempts for a 60ms deadline", sent)
	}
}

// TestScanCancelNoGoroutineLeak: cancelling a scan mid-fan-out (one
// node's open hung on injected latency) must return promptly and leave
// no goroutines behind.
func TestScanCancelNoGoroutineLeak(t *testing.T) {
	addrs, _, dbs, m := twoNodeCluster(t)
	if err := dbs["a"].Put([]byte(keyForSlot(t, 0, m.Shards)), []byte("v")); err != nil {
		t.Fatal(err)
	}
	table := chaos.NewTable(11)
	tr := http.DefaultTransport.(*http.Transport).Clone()
	c, err := New([]string{addrs["a"]},
		WithHTTPClient(&http.Client{Transport: &chaos.Transport{Base: tr, Table: table, Source: "cli"}}),
		WithJitterSeed(4))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	before := runtime.NumGoroutine()
	table.Set(addrs["b"], chaos.Rule{Latency: 30 * time.Second})
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	t0 := time.Now()
	if _, err := c.ScanCtx(ctx, nil, nil, 100); err == nil {
		t.Fatal("scan succeeded with one node hung past the deadline")
	}
	if elapsed := time.Since(t0); elapsed > 5*time.Second {
		t.Fatalf("scan held %v past a 50ms deadline", elapsed)
	}
	table.Heal()
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > before+2 && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if g := runtime.NumGoroutine(); g > before+2 {
		t.Fatalf("goroutines: %d before scan, %d after cancel — leak", before, g)
	}
}

// TestBatchResendsAfterDroppedAck: a batch whose ack is dropped after
// the server committed must be re-sent (at-least-once) and succeed once
// the network heals — never reported lost, never fatal.
func TestBatchResendsAfterDroppedAck(t *testing.T) {
	_, addr := startChaosNode(t, nil)
	table := chaos.NewTable(5)
	tr := http.DefaultTransport.(*http.Transport).Clone()
	c, err := New([]string{addr},
		WithHTTPClient(&http.Client{Transport: &chaos.Transport{Base: tr, Table: table, Source: "cli"}}),
		WithMaxRetries(200),
		WithRetryBackoff(2*time.Millisecond),
		WithBreaker(5, 20*time.Millisecond),
		WithJitterSeed(3))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	table.Set(addr, chaos.Rule{DropResponseProb: 1})
	done := make(chan error, 1)
	go func() {
		done <- c.Batch([]Op{{Kind: OpPut, Key: []byte("bk"), Value: []byte("bv")}})
	}()
	time.Sleep(40 * time.Millisecond)
	table.Heal()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("batch failed despite heal: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("batch never completed after heal")
	}
	v, ok, err := c.Get([]byte("bk"))
	if err != nil || !ok || string(v) != "bv" {
		t.Fatalf("readback = %q %v %v", v, ok, err)
	}
	if st := c.Stats(); st.RetryableErrors == 0 {
		t.Fatalf("no retryable errors recorded across dropped acks: %+v", st)
	}
}

// TestRequestTimeoutRetriesHungNode is the WithRequestTimeout contract
// test: a node that hangs past the per-attempt deadline costs one
// attempt's timeout, after which the call retries and succeeds — it must
// not be misread as the caller's own deadline and fail terminally.
func TestRequestTimeoutRetriesHungNode(t *testing.T) {
	var kvHangs, batchHangs atomic.Int64
	hangFirst := func(next http.Handler) http.Handler {
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			if (strings.HasPrefix(r.URL.Path, "/v1/kv/") && kvHangs.Add(1) == 1) ||
				(r.URL.Path == "/v1/batch" && batchHangs.Add(1) == 1) {
				time.Sleep(3 * time.Second) // well past the attempt timeout
			}
			next.ServeHTTP(w, r)
		})
	}
	_, addr := startChaosNode(t, hangFirst)
	c, err := New([]string{addr},
		WithRequestTimeout(50*time.Millisecond),
		WithMaxRetries(5),
		WithRetryBackoff(2*time.Millisecond),
		WithJitterSeed(9))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	t0 := time.Now()
	if err := c.Put([]byte("k"), []byte("v")); err != nil {
		t.Fatalf("put against a once-hung node failed terminally: %v", err)
	}
	if elapsed := time.Since(t0); elapsed > 2*time.Second {
		t.Fatalf("put took %v — waited out the hung attempt instead of retrying", elapsed)
	}
	t0 = time.Now()
	if err := c.Batch([]Op{{Kind: OpPut, Key: []byte("bk"), Value: []byte("bv")}}); err != nil {
		t.Fatalf("batch against a once-hung node failed terminally: %v", err)
	}
	if elapsed := time.Since(t0); elapsed > 2*time.Second {
		t.Fatalf("batch took %v — waited out the hung attempt instead of retrying", elapsed)
	}
	st := c.Stats()
	if st.RetryableErrors < 2 {
		t.Fatalf("retryable errors = %d, want >= 2 (one per hung attempt): %+v", st.RetryableErrors, st)
	}
	if st.TerminalErrors != 0 {
		t.Fatalf("terminal errors = %d, want 0: %+v", st.TerminalErrors, st)
	}
	v, ok, err := c.Get([]byte("bk"))
	if err != nil || !ok || string(v) != "bv" {
		t.Fatalf("readback = %q %v %v", v, ok, err)
	}
}

// TestCallerCancelDoesNotTripBreaker: a healthy-but-slow node hit with
// repeated short caller deadlines must not accumulate breaker failures —
// the caller giving up says nothing about the node, and a spuriously
// open breaker would fail other callers with ErrBreakerOpen.
func TestCallerCancelDoesNotTripBreaker(t *testing.T) {
	slowKV := func(next http.Handler) http.Handler {
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			if strings.HasPrefix(r.URL.Path, "/v1/kv/") {
				time.Sleep(80 * time.Millisecond)
			}
			next.ServeHTTP(w, r)
		})
	}
	_, addr := startChaosNode(t, slowKV)
	c, err := New([]string{addr},
		WithBreaker(2, 10*time.Second), // trips easily, recovers slowly
		WithJitterSeed(11))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	for i := 0; i < 5; i++ {
		ctx, cancel := context.WithTimeout(context.Background(), 15*time.Millisecond)
		if err := c.PutCtx(ctx, []byte("k"), []byte("v")); err == nil {
			t.Fatal("put beat a deadline shorter than the node's latency")
		}
		cancel()
	}
	if got := c.BreakerState(addr); got != "closed" {
		t.Fatalf("breaker state after caller cancellations = %q, want closed", got)
	}
	if st := c.Stats(); st.BreakerOpens != 0 {
		t.Fatalf("breaker opened %d times off caller deadlines: %+v", st.BreakerOpens, st)
	}
	// The node is healthy: a patient caller succeeds immediately.
	if err := c.Put([]byte("k"), []byte("v")); err != nil {
		t.Fatalf("patient put against healthy node failed: %v", err)
	}
}
