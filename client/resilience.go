package client

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"net/http"
	"sync"
	"time"

	"adcache/internal/api"
)

// This file is the client's resilience layer: typed error classification,
// capped-exponential backoff with full jitter, per-node circuit breakers
// with half-open probing, and hedged reads. The routing/retry loop in
// client.go consumes these pieces; none of them change the consistency
// contract — they change how fast and how politely the client rides out
// a slow, partitioned, or dead node.

// ErrBreakerOpen is the per-attempt error recorded while a node's circuit
// breaker is open: the client skipped dialing the node entirely. It is
// retryable — the retry loop backs off and probes again — and shows up in
// a returned "retries exhausted" error chain when a node stays dead past
// the retry budget.
var ErrBreakerOpen = errors.New("client: circuit breaker open")

// ErrAttemptTimeout marks a request ended by the per-attempt deadline
// (WithRequestTimeout) while the caller's own context was still live.
// The raw failure wraps the *attempt* context's DeadlineExceeded —
// indistinguishable by errors.Is from the caller's deadline ending, which
// is terminal — so roundTrip/postBatch tag it with this sentinel at the
// only place the two contexts can be told apart. It is retryable by
// definition: the whole point of a per-attempt timeout is that a hung
// node costs one attempt's budget, not the call.
var ErrAttemptTimeout = errors.New("client: per-attempt timeout")

// IsRetryable classifies a client-visible failure: true for failures that
// can heal on their own (transport errors, per-attempt timeouts, an open
// breaker, and WRONG_SHARD — a map refresh away from succeeding), false
// for terminal answers from a live node (NOT_FOUND, BAD_*, INTERNAL, ...)
// and for the caller's own context ending. The client's retry loops use
// exactly this predicate, so a caller inspecting a returned error sees
// the same taxonomy the loop acted on.
func IsRetryable(err error) bool {
	if err == nil {
		return false
	}
	// Checked before the context errors: an attempt timeout wraps the
	// attempt context's DeadlineExceeded, but it is the node that was
	// slow, not the caller that gave up.
	if errors.Is(err, ErrAttemptTimeout) {
		return true
	}
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return false
	}
	var env *api.Envelope
	if errors.As(err, &env) {
		return env.Code == api.CodeWrongShard
	}
	// Everything else is transport-level: dial failures, resets, injected
	// chaos faults.
	return true
}

// backoffJitter computes the attempt-th retry delay: full jitter over a
// capped exponential — uniform in [0, min(cap, base·2^(attempt-1))].
// Full jitter (the AWS architecture-blog scheme) beats equal or no jitter
// under contention: when a fenced shard or restarted node comes back,
// retriers spread over the whole window instead of stampeding in sync.
// The draw comes from the client's seeded PRNG so tests and benches can
// replay identical schedules.
func (c *Client) backoffJitter(attempt int) time.Duration {
	ceil := c.backoff
	for i := 1; i < attempt; i++ {
		ceil *= 2
		if ceil >= c.backoffCap {
			ceil = c.backoffCap
			break
		}
	}
	if ceil > c.backoffCap {
		ceil = c.backoffCap
	}
	if ceil <= 0 {
		return 0
	}
	c.rngMu.Lock()
	d := time.Duration(c.rng.Int63n(int64(ceil) + 1))
	c.rngMu.Unlock()
	return d
}

// breakerState is a node breaker's mode.
type breakerState int

const (
	breakerClosed breakerState = iota
	breakerOpen
	breakerHalfOpen
)

func (s breakerState) String() string {
	switch s {
	case breakerClosed:
		return "closed"
	case breakerOpen:
		return "open"
	case breakerHalfOpen:
		return "half-open"
	}
	return "unknown"
}

// breaker is one node's circuit breaker. Closed: requests flow, counting
// consecutive transport failures. Open (after threshold consecutive
// failures): requests to the node are skipped without dialing until
// cooldown passes. Half-open: exactly one in-flight probe is allowed; its
// success closes the breaker, its failure re-opens it for another
// cooldown. Only transport-level failures trip it — a node answering
// WRONG_SHARD or NOT_FOUND is alive and well.
type breaker struct {
	mu       sync.Mutex
	state    breakerState
	fails    int
	openedAt time.Time
	probing  bool
}

// allow reports whether a request to this node may proceed now. In
// half-open it admits a single probe at a time.
func (b *breaker) allow(now time.Time, cooldown time.Duration) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case breakerClosed:
		return true
	case breakerOpen:
		if now.Sub(b.openedAt) < cooldown {
			return false
		}
		b.state = breakerHalfOpen
		b.probing = true
		return true
	default: // half-open
		if b.probing {
			return false
		}
		b.probing = true
		return true
	}
}

// record reports an attempt's transport outcome. Returns (opened, closed)
// transition flags for the client's stats counters.
func (b *breaker) record(success bool, threshold int, now time.Time) (opened, closed bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.probing = false
	if success {
		if b.state != breakerClosed {
			closed = true
		}
		b.state = breakerClosed
		b.fails = 0
		return
	}
	b.fails++
	if b.state == breakerHalfOpen || (b.state == breakerClosed && b.fails >= threshold) {
		if b.state != breakerOpen {
			opened = true
		}
		b.state = breakerOpen
		b.openedAt = now
	}
	return
}

// abandonProbe releases a probe slot claimed by allow() without
// recording an outcome — for attempts whose result says nothing about
// the node's health (the caller's context ended mid-request, the request
// could not even be built). Without it a half-open breaker whose probe
// was abandoned would stay probing forever, blacklisting the node.
func (b *breaker) abandonProbe() {
	b.mu.Lock()
	b.probing = false
	b.mu.Unlock()
}

// breakerFor returns (lazily creating) addr's breaker.
func (c *Client) breakerFor(addr string) *breaker {
	c.brMu.Lock()
	defer c.brMu.Unlock()
	b, ok := c.breakers[addr]
	if !ok {
		b = &breaker{}
		c.breakers[addr] = b
	}
	return b
}

// BreakerState reports addr's breaker mode ("closed", "open",
// "half-open") — the observability hook chaos tests assert recovery on.
func (c *Client) BreakerState(addr string) string {
	c.brMu.Lock()
	b, ok := c.breakers[addr]
	c.brMu.Unlock()
	if !ok {
		return breakerClosed.String()
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state.String()
}

// noteTransport feeds one attempt's transport outcome into addr's breaker
// and the stats counters.
func (c *Client) noteTransport(addr string, success bool) {
	opened, closed := c.breakerFor(addr).record(success, c.breakerThreshold, time.Now())
	if opened {
		c.breakerOpens.Add(1)
	}
	if closed {
		c.breakerCloses.Add(1)
	}
}

// attemptResult is one hedged sub-request's outcome.
type attemptResult struct {
	resp   *http.Response
	err    error
	hedged bool // true when this was the second (hedge) request
}

// roundTrip executes one logical attempt against addr: the request runs
// under a per-attempt deadline (WithRequestTimeout), and — when read
// hedging is enabled and this is an idempotent read — a second identical
// request is launched on another pooled connection if the first has not
// answered within the hedge delay, first usable answer wins. The returned
// release func MUST be called once the response body is fully consumed
// (it cancels the per-attempt contexts); it is non-nil iff err is nil.
func (c *Client) roundTrip(ctx context.Context, addr string, build func(addr string) (*http.Request, error), hedge bool) (*http.Response, func(), error) {
	results := make(chan attemptResult, 2)
	var cancels []context.CancelFunc
	var cancelsMu sync.Mutex
	launch := func(hedged bool) error {
		req, err := build(addr)
		if err != nil {
			return err
		}
		actx := ctx
		var acancel context.CancelFunc
		if c.reqTimeout > 0 {
			actx, acancel = context.WithTimeout(ctx, c.reqTimeout)
		} else {
			actx, acancel = context.WithCancel(ctx)
		}
		cancelsMu.Lock()
		cancels = append(cancels, acancel)
		cancelsMu.Unlock()
		req = req.WithContext(actx)
		if e := c.Epoch(); e > 0 {
			req.Header.Set(api.HeaderEpoch, epochHeaderValue(e))
		}
		go func() {
			resp, err := c.httpc.Do(req)
			if err != nil && actx.Err() != nil && ctx.Err() == nil {
				// The attempt's context ended but the caller's did not:
				// this is WithRequestTimeout firing on a hung node (the
				// only way the two diverge before a winner is picked).
				// Tag it so IsRetryable sees a retryable attempt
				// timeout, not the caller's own deadline.
				err = fmt.Errorf("%w: %w", ErrAttemptTimeout, err)
			}
			results <- attemptResult{resp: resp, err: err, hedged: hedged}
		}()
		return nil
	}
	// cancelAll cancels every launched attempt's context. The winner's
	// body must be consumed before this runs, so it is handed to the
	// caller as the release func rather than deferred here.
	cancelAll := func() {
		cancelsMu.Lock()
		cs := append([]context.CancelFunc(nil), cancels...)
		cancelsMu.Unlock()
		for _, cf := range cs {
			cf()
		}
	}

	if err := launch(false); err != nil {
		return nil, nil, err
	}
	var hedgeC <-chan time.Time
	if hedge && c.hedgeDelay > 0 {
		t := time.NewTimer(c.hedgeDelay)
		defer t.Stop()
		hedgeC = t.C
	}
	launched, got := 1, 0
	var firstErr error
	for {
		select {
		case <-hedgeC:
			hedgeC = nil
			c.hedges.Add(1)
			if err := launch(true); err == nil {
				launched++
			}
		case r := <-results:
			got++
			if r.err == nil {
				if r.hedged {
					c.hedgeWins.Add(1)
				}
				// Winner. Losers are cancelled once the caller releases;
				// any straggler result is drained and closed so its
				// connection returns to the pool.
				remaining := launched - got
				if remaining > 0 {
					go func(n int) {
						for i := 0; i < n; i++ {
							if lr := <-results; lr.resp != nil {
								lr.resp.Body.Close()
							}
						}
					}(remaining)
				}
				return r.resp, cancelAll, nil
			}
			if firstErr == nil {
				firstErr = r.err
			}
			if got == launched {
				// Every launched attempt failed. A hedge still pending on
				// its timer would hit the same address the primary just
				// failed against — the outer retry loop's backoff is the
				// better path, so fail the attempt now.
				cancelAll()
				return nil, nil, firstErr
			}
		}
	}
}

// seededRNG builds the client's jitter source.
func seededRNG(seed int64) *rand.Rand {
	if seed == 0 {
		seed = time.Now().UnixNano()
	}
	return rand.New(rand.NewSource(seed))
}
