package client

import (
	"context"
	"fmt"
	"net"
	"net/http"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"adcache"
	"adcache/internal/cluster"
	"adcache/internal/server"
)

// writerSeq extracts the monotonic sequence number from a "w<id>-<n>" value.
func writerSeq(t *testing.T, v string) int64 {
	t.Helper()
	var w, n int64
	if _, err := fmt.Sscanf(v, "w%d-%d", &w, &n); err != nil {
		t.Fatalf("malformed value %q: %v", v, err)
	}
	return n
}

// TestE2EClusterMove is the end-to-end consistency check the sharding
// design promises: three real nodes on real sockets, a client writing and
// reading through the public library, and a manager-driven shard move in
// the middle of the traffic. Every write the client acked before, during,
// or after the move must read back correctly afterwards, with all
// WRONG_SHARD handling absorbed inside the client.
func TestE2EClusterMove(t *testing.T) {
	const shards = 8
	// Shared migration secret for nodes and manager (loopback-only test).
	const e2eToken = "e2e-migration-token"

	// Real listeners first: the shard map carries addresses, and nodes
	// need the map before they serve.
	ids := []string{"n1", "n2", "n3"}
	listeners := map[string]net.Listener{}
	nodes := make([]cluster.Node, 0, len(ids))
	for _, id := range ids {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		defer ln.Close()
		listeners[id] = ln
		nodes = append(nodes, cluster.Node{ID: id, Addr: ln.Addr().String()})
	}
	initial, err := cluster.InitialMap(nodes, shards)
	if err != nil {
		t.Fatal(err)
	}

	views := map[string]*cluster.NodeView{}
	for _, id := range ids {
		db, err := adcache.Open(adcache.Options{CacheBytes: 1 << 20})
		if err != nil {
			t.Fatal(err)
		}
		defer db.Close()
		view, err := cluster.NewNodeView(id, initial)
		if err != nil {
			t.Fatal(err)
		}
		views[id] = view
		// Write coalescing on: the e2e consistency contract (no lost
		// acked writes across fenced moves) must hold with grouped
		// cross-request commits exactly as with per-request commits.
		hs := &http.Server{Handler: server.New(db,
			server.WithCluster(view), server.WithNodeID(id), server.WithInternalToken(e2eToken),
			server.WithWriteCoalescing(150*time.Microsecond, 64))}
		go hs.Serve(listeners[id])
		defer hs.Close()
	}

	c, err := New([]string{nodes[0].Addr})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	// Concurrent writers keep acked values in a shared ledger; readers
	// hammer previously-acked keys throughout, including mid-move.
	var (
		mu    sync.Mutex
		acked = map[string]string{}
		seq   atomic.Int64
	)
	ctx, cancel := context.WithCancel(context.Background())
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for ctx.Err() == nil {
				// Keys are partitioned per writer: with a shared key, two
				// concurrent acks can land in the opposite order server-side
				// vs ledger-side, which is last-write-wins, not data loss.
				n := seq.Add(1)
				k := fmt.Sprintf("e2e-w%d-%06d", w, n%128)
				v := fmt.Sprintf("w%d-%d", w, n)
				if err := c.PutCtx(ctx, []byte(k), []byte(v)); err != nil {
					if ctx.Err() == nil {
						errs <- fmt.Errorf("put %s: %w", k, err)
					}
					return
				}
				// Only record after the ack: the ledger is exactly the
				// set of durability promises the cluster has made.
				mu.Lock()
				acked[k] = v
				mu.Unlock()
			}
		}(w)
	}
	for r := 0; r < 2; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for ctx.Err() == nil {
				mu.Lock()
				var k string
				for k = range acked {
					break
				}
				mu.Unlock()
				if k == "" {
					time.Sleep(time.Millisecond)
					continue
				}
				if _, _, err := c.GetCtx(ctx, []byte(k)); err != nil && ctx.Err() == nil {
					errs <- fmt.Errorf("get %s: %w", k, err)
					return
				}
			}
		}()
	}

	// Let traffic build, then force two moves through the real manager
	// protocol while writes are in flight.
	time.Sleep(150 * time.Millisecond)
	mgr, err := cluster.NewManager(initial, cluster.ManagerOptions{
		InternalToken: e2eToken,
		Logf:          t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, move := range []struct {
		shard int
		to    string
	}{{0, "n2"}, {1, "n3"}} {
		if err := mgr.MoveShard(context.Background(), move.shard, move.to); err != nil {
			t.Fatalf("move %d: %v", i, err)
		}
		time.Sleep(100 * time.Millisecond)
	}

	// Drain traffic.
	time.Sleep(150 * time.Millisecond)
	cancel()
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Errorf("client error during move: %v", err)
	}

	cur := mgr.Current()
	if cur.Epoch != initial.Epoch+2 {
		t.Fatalf("manager epoch = %d, want %d", cur.Epoch, initial.Epoch+2)
	}
	if cur.Owner[0] != "n2" || cur.Owner[1] != "n3" {
		t.Fatalf("owners after moves = %v", cur.Owner[:2])
	}
	for _, id := range ids {
		if got := views[id].Epoch(); got != cur.Epoch {
			t.Fatalf("node %s epoch = %d, want %d", id, got, cur.Epoch)
		}
	}

	// The core assertion: zero lost acked writes. Read every ledger entry
	// back through the client against the post-move topology.
	mu.Lock()
	ledger := make(map[string]string, len(acked))
	for k, v := range acked {
		ledger[k] = v
	}
	mu.Unlock()
	if len(ledger) == 0 {
		t.Fatal("no writes were acked; test exercised nothing")
	}
	for k, v := range ledger {
		got, ok, err := c.Get([]byte(k))
		if err != nil {
			t.Fatalf("readback %s: %v", k, err)
		}
		if !ok {
			t.Fatalf("acked write %s lost after move", k)
		}
		// Per-writer values are "w<id>-<n>" with n strictly increasing per
		// key. A write cancelled mid-ack may still have landed, so the
		// stored value may be NEWER than the last acked one — that's
		// last-write-wins, not loss. Older (or cross-writer) is loss.
		if string(got) != v && writerSeq(t, string(got)) < writerSeq(t, v) {
			t.Fatalf("readback %s = %q, older than acked %q", k, got, v)
		}
	}

	// Retries happened (the move fenced live traffic) but stayed bounded:
	// well under one retry budget per operation means no retry storms.
	st := c.Stats()
	t.Logf("ledger=%d ops, wrongShardRetries=%d mapRefreshes=%d epoch=%d",
		len(ledger), st.WrongShardRetries, st.MapRefreshes, st.Epoch)
	if st.Epoch != cur.Epoch {
		t.Fatalf("client epoch = %d, want %d", st.Epoch, cur.Epoch)
	}
	if st.WrongShardRetries > int64(len(ledger))*2+100 {
		t.Fatalf("retry storm: %d retries for %d acked writes", st.WrongShardRetries, len(ledger))
	}
}
