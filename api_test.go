package adcache_test

import (
	"bytes"
	"fmt"
	"testing"

	"adcache"
	"adcache/internal/lsm"
	"adcache/internal/vfs"
)

func openAPI(t *testing.T, strategy adcache.Strategy) *adcache.DB {
	t.Helper()
	db, err := adcache.Open(adcache.Options{
		CacheBytes: 1 << 20,
		Strategy:   strategy,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	return db
}

func TestAPIAllStrategiesBasicOps(t *testing.T) {
	for _, s := range adcache.Strategies() {
		s := s
		t.Run(s.String(), func(t *testing.T) {
			db := openAPI(t, s)
			for i := 0; i < 500; i++ {
				if err := db.Put([]byte(fmt.Sprintf("key%04d", i)), []byte(fmt.Sprintf("val%04d", i))); err != nil {
					t.Fatal(err)
				}
			}
			if err := db.Flush(); err != nil {
				t.Fatal(err)
			}
			// Reads repeated so result caches serve the second round.
			for round := 0; round < 2; round++ {
				for i := 0; i < 500; i += 25 {
					v, ok, err := db.Get([]byte(fmt.Sprintf("key%04d", i)))
					if err != nil || !ok || !bytes.Equal(v, []byte(fmt.Sprintf("val%04d", i))) {
						t.Fatalf("round %d Get(%d) = %q ok=%v err=%v", round, i, v, ok, err)
					}
				}
				kvs, err := db.Scan([]byte("key0100"), 10)
				if err != nil || len(kvs) != 10 {
					t.Fatalf("round %d Scan = %d entries err=%v", round, len(kvs), err)
				}
				for j, kv := range kvs {
					want := fmt.Sprintf("key%04d", 100+j)
					if string(kv.Key) != want {
						t.Fatalf("Scan[%d] = %s, want %s", j, kv.Key, want)
					}
				}
			}
			// Updates and deletes stay coherent through every cache.
			if err := db.Put([]byte("key0100"), []byte("updated")); err != nil {
				t.Fatal(err)
			}
			if v, ok, _ := db.Get([]byte("key0100")); !ok || string(v) != "updated" {
				t.Fatalf("after update Get = %q ok=%v", v, ok)
			}
			if err := db.Delete([]byte("key0101")); err != nil {
				t.Fatal(err)
			}
			if _, ok, _ := db.Get([]byte("key0101")); ok {
				t.Fatal("deleted key visible")
			}
			kvs, err := db.Scan([]byte("key0100"), 3)
			if err != nil {
				t.Fatal(err)
			}
			want := []string{"updated", "val0102", "val0103"}
			for j, kv := range kvs {
				if string(kv.Value) != want[j] {
					t.Fatalf("post-mutation Scan[%d] = %q, want %q", j, kv.Value, want[j])
				}
			}
		})
	}
}

func TestAPIStrategyRouting(t *testing.T) {
	db := openAPI(t, adcache.StrategyAdCache)
	if db.Strategy() != adcache.StrategyAdCache {
		t.Fatalf("Strategy = %v", db.Strategy())
	}
	if db.AdCache() == nil {
		t.Fatal("AdCache() nil for the AdCache strategy")
	}
	blockDB := openAPI(t, adcache.StrategyBlock)
	if blockDB.AdCache() != nil {
		t.Fatal("AdCache() non-nil for the block strategy")
	}
}

func TestAPIDefaultStrategyIsAdCache(t *testing.T) {
	db, err := adcache.Open(adcache.Options{CacheBytes: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	if db.Strategy() != adcache.StrategyAdCache {
		t.Fatalf("default strategy = %v", db.Strategy())
	}
}

func TestAPICacheCounters(t *testing.T) {
	db := openAPI(t, adcache.StrategyRange)
	for i := 0; i < 200; i++ {
		db.Put([]byte(fmt.Sprintf("key%04d", i)), []byte("v"))
	}
	db.Flush()
	db.Get([]byte("key0001"))
	db.Get([]byte("key0001"))
	c := db.CacheCounters()
	if c.RangeGetHits == 0 {
		t.Fatalf("counters = %+v", c)
	}
}

func TestAPIPersistenceAcrossReopen(t *testing.T) {
	fs := vfs.NewMem()
	lsmOpts := lsm.DefaultOptions("db")
	open := func() *adcache.DB {
		db, err := adcache.Open(adcache.Options{
			FS: fs, CacheBytes: 1 << 20, Strategy: adcache.StrategyBlock, LSM: &lsmOpts,
		})
		if err != nil {
			t.Fatal(err)
		}
		return db
	}
	db := open()
	for i := 0; i < 1000; i++ {
		db.Put([]byte(fmt.Sprintf("key%04d", i)), []byte(fmt.Sprintf("val%04d", i)))
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	db2 := open()
	defer db2.Close()
	for i := 0; i < 1000; i += 111 {
		v, ok, err := db2.Get([]byte(fmt.Sprintf("key%04d", i)))
		if err != nil || !ok || string(v) != fmt.Sprintf("val%04d", i) {
			t.Fatalf("after reopen Get(%d) = %q ok=%v err=%v", i, v, ok, err)
		}
	}
}

func TestAPISSTReadsGrowOnMisses(t *testing.T) {
	db := openAPI(t, adcache.StrategyNone)
	for i := 0; i < 2000; i++ {
		db.Put([]byte(fmt.Sprintf("key%05d", i)), bytes.Repeat([]byte("x"), 100))
	}
	db.Flush()
	before := db.SSTReads()
	for i := 0; i < 100; i++ {
		db.Get([]byte(fmt.Sprintf("key%05d", i*17)))
	}
	if db.SSTReads() == before {
		t.Fatal("uncached reads did not count SST reads")
	}
}
