// Command adcached serves a store over HTTP (see internal/server for the
// endpoint reference).
//
// Usage:
//
//	adcached -dir /var/lib/adcache -addr :8080 -cache 268435456
//	curl -X PUT -d 'value' localhost:8080/kv/mykey
//	curl localhost:8080/kv/mykey
//	curl 'localhost:8080/scan?start=my&n=10'
//	curl localhost:8080/stats
package main

import (
	"flag"
	"fmt"
	"net/http"
	"os"

	"adcache"
	"adcache/internal/lsm"
	"adcache/internal/server"
	"adcache/internal/vfs"
)

func main() {
	var (
		dir      = flag.String("dir", "adcached-db", "database directory")
		addr     = flag.String("addr", ":8080", "listen address")
		cache    = flag.Int64("cache", 64<<20, "cache budget in bytes")
		strategy = flag.String("strategy", "adcache", "cache strategy: adcache|block|kv|range|lecar|cacheus|none")
	)
	flag.Parse()

	strat := map[string]adcache.Strategy{
		"adcache": adcache.StrategyAdCache,
		"block":   adcache.StrategyBlock,
		"kv":      adcache.StrategyKV,
		"range":   adcache.StrategyRange,
		"lecar":   adcache.StrategyRangeLeCaR,
		"cacheus": adcache.StrategyRangeCacheus,
		"none":    adcache.StrategyNone,
	}[*strategy]

	lsmOpts := lsm.DefaultOptions(*dir)
	db, err := adcache.Open(adcache.Options{
		Dir:        *dir,
		FS:         vfs.NewOS(),
		CacheBytes: *cache,
		Strategy:   strat,
		LSM:        &lsmOpts,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "adcached:", err)
		os.Exit(1)
	}
	defer db.Close()

	fmt.Printf("adcached: serving %s (%s strategy, %d MiB cache) on %s\n",
		*dir, db.Strategy(), *cache>>20, *addr)
	if err := http.ListenAndServe(*addr, server.Handler(db)); err != nil {
		fmt.Fprintln(os.Stderr, "adcached:", err)
		os.Exit(1)
	}
}
