// Command adcached serves a store over the versioned /v1 HTTP API (see
// internal/server for the endpoint reference, API.md for the wire
// format), either as a single node or as one member of a sharded
// cluster.
//
// Single node:
//
//	adcached -dir /var/lib/adcache -addr :8080 -cache 268435456
//	curl -X PUT -d 'value' localhost:8080/v1/kv/mykey
//	curl localhost:8080/v1/kv/mykey
//	curl 'localhost:8080/v1/scan?start=my&n=10'
//	curl localhost:8080/v1/stats
//
// Cluster of three (run each in its own terminal, then point the client
// package — or curl — at any of them):
//
//	adcached -node a -addr :8081 -peers a=127.0.0.1:8081,b=127.0.0.1:8082,c=127.0.0.1:8083 -cluster-token s3cret -dir /tmp/node-a
//	adcached -node b -addr :8082 -peers a=127.0.0.1:8081,b=127.0.0.1:8082,c=127.0.0.1:8083 -cluster-token s3cret -dir /tmp/node-b
//	adcached -node c -addr :8083 -peers a=127.0.0.1:8081,b=127.0.0.1:8082,c=127.0.0.1:8083 -cluster-token s3cret -dir /tmp/node-c -manage
//
// Every member computes the identical epoch-1 round-robin shard map from
// the sorted -peers list, so the cluster needs no bootstrap coordinator.
// -cluster-token is the shared secret authenticating shard-migration
// traffic; it must be identical on every node. Exactly one member should
// run with -manage: it hosts the shard manager, which polls every node's
// per-shard latency histograms and rebalances hot shards by publishing
// higher map epochs.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"adcache"
	"adcache/internal/cluster"
	"adcache/internal/lsm"
	"adcache/internal/server"
	"adcache/internal/vfs"
)

func main() {
	var (
		dir      = flag.String("dir", "adcached-db", "database directory")
		addr     = flag.String("addr", ":8080", "listen address")
		cache    = flag.Int64("cache", 64<<20, "cache budget in bytes")
		strategy = flag.String("strategy", "adcache", "cache strategy: adcache|block|kv|range|lecar|cacheus|none")
		readonly = flag.Bool("readonly", false, "reject writes; serve reads and observability only")
		maxBody  = flag.Int64("maxbody", 0, "request body size cap in bytes (default 64 MiB)")
		maxReqs  = flag.Int("maxinflight", 0, "bound on concurrent data-plane requests (0 = unlimited)")

		coalesce   = flag.Bool("coalesce", false, "coalesce concurrent writes (singles and batches) into grouped commits")
		coalWindow = flag.Duration("coalesce-window", 100*time.Microsecond, "max extra latency a write waits to join a group (0 = group only already-queued writes)")
		coalOps    = flag.Int("coalesce-ops", 128, "max ops per coalesced group")

		drainWait = flag.Duration("drain-timeout", 10*time.Second, "max time to drain in-flight requests on SIGINT/SIGTERM before forcing shutdown")

		pprofOn   = flag.Bool("pprof", false, "serve profiling endpoints under /debug/pprof/")
		mutexFrac = flag.Int("mutexprofilefraction", 0, "runtime.SetMutexProfileFraction for /debug/pprof/mutex (0 = off)")
		blockRate = flag.Int("blockprofilerate", 0, "runtime.SetBlockProfileRate for /debug/pprof/block (0 = off)")

		nodeID   = flag.String("node", "", "cluster node ID (enables cluster mode with -peers)")
		peers    = flag.String("peers", "", "cluster members as id=host:port,id=host:port")
		shards   = flag.Int("shards", cluster.DefaultShards, "cluster hash-slot count (fixed for the cluster's lifetime)")
		token    = flag.String("cluster-token", "", "shared secret authenticating shard-migration traffic; must match on every node (required in cluster mode)")
		manage   = flag.Bool("manage", false, "run the shard manager in this process")
		interval = flag.Duration("manage-interval", 2*time.Second, "shard-manager poll period")
	)
	flag.Parse()

	strat, err := adcache.ParseStrategy(*strategy)
	if err != nil {
		fatal(err)
	}

	lsmOpts := lsm.DefaultOptions(*dir)
	db, err := adcache.Open(adcache.Options{
		Dir:        *dir,
		FS:         vfs.NewOS(),
		CacheBytes: *cache,
		Strategy:   strat,
		LSM:        &lsmOpts,
	})
	if err != nil {
		fatal(err)
	}

	drain := &server.DrainState{}
	opts := []server.Option{server.WithDrainState(drain)}
	if *readonly {
		opts = append(opts, server.WithReadOnly())
	}
	if *maxBody > 0 {
		opts = append(opts, server.WithMaxBodyBytes(*maxBody))
	}
	if *maxReqs > 0 {
		opts = append(opts, server.WithConcurrencyLimit(*maxReqs))
	}
	if *coalesce {
		opts = append(opts, server.WithWriteCoalescing(*coalWindow, *coalOps))
	}
	if *pprofOn {
		opts = append(opts, server.WithPprof())
	}
	if *mutexFrac > 0 {
		runtime.SetMutexProfileFraction(*mutexFrac)
	}
	if *blockRate > 0 {
		runtime.SetBlockProfileRate(*blockRate)
	}

	if (*nodeID == "") != (*peers == "") {
		fatal(fmt.Errorf("cluster mode needs both -node and -peers"))
	}
	if *nodeID != "" {
		if *token == "" {
			fatal(fmt.Errorf("cluster mode requires -cluster-token (shared migration secret, identical on every node)"))
		}
		nodes, err := cluster.ParsePeers(*peers)
		if err != nil {
			fatal(err)
		}
		initial, err := cluster.InitialMap(nodes, *shards)
		if err != nil {
			fatal(err)
		}
		view, err := cluster.NewNodeView(*nodeID, initial)
		if err != nil {
			fatal(err)
		}
		opts = append(opts, server.WithCluster(view), server.WithInternalToken(*token))
		fmt.Printf("adcached: node %q in %d-node cluster, %d hash slots, owning %v\n",
			*nodeID, len(nodes), initial.Shards, initial.OwnedBy(*nodeID))
		if *manage {
			mgr, err := cluster.NewManager(initial, cluster.ManagerOptions{
				Interval:      *interval,
				InternalToken: *token,
				Logf:          log.Printf,
			})
			if err != nil {
				fatal(err)
			}
			go mgr.Run(context.Background())
			fmt.Printf("adcached: shard manager running (poll %s)\n", *interval)
		}
	} else if *manage {
		fatal(fmt.Errorf("-manage requires cluster mode (-node and -peers)"))
	}

	mode := "read-write"
	if *readonly {
		mode = "read-only"
	}
	fmt.Printf("adcached: serving %s (%s strategy, %d MiB cache, %s) on %s\n",
		*dir, db.Strategy(), *cache>>20, mode, *addr)
	fmt.Printf("adcached: API under %s/v1/ (legacy aliases deprecated); observability at %s/v1/stats, %s/v1/health, %s/metrics, %s/debug/vars\n",
		*addr, *addr, *addr, *addr, *addr)

	// Graceful shutdown: on SIGINT/SIGTERM flip /v1/health to draining
	// (503 readiness, so balancers and the shard manager stop sending new
	// work), stop accepting, let in-flight requests finish up to
	// -drain-timeout, then close the DB cleanly — every acked write is on
	// disk before the process exits.
	hs := &http.Server{Addr: *addr, Handler: server.New(db, opts...)}
	drained := make(chan struct{})
	go func() {
		defer close(drained)
		sig := make(chan os.Signal, 1)
		signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
		s := <-sig
		fmt.Printf("adcached: %s: draining (up to %s) before shutdown\n", s, *drainWait)
		drain.StartDrain()
		ctx, cancel := context.WithTimeout(context.Background(), *drainWait)
		defer cancel()
		if err := hs.Shutdown(ctx); err != nil {
			fmt.Fprintln(os.Stderr, "adcached: drain deadline exceeded, forcing close:", err)
			hs.Close()
		}
	}()
	if err := hs.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
		fatal(err)
	}
	<-drained
	if err := db.Close(); err != nil {
		fatal(err)
	}
	fmt.Println("adcached: clean shutdown")
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "adcached:", err)
	os.Exit(1)
}
