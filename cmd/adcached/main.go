// Command adcached serves a store over HTTP (see internal/server for the
// endpoint reference).
//
// Usage:
//
//	adcached -dir /var/lib/adcache -addr :8080 -cache 268435456
//	curl -X PUT -d 'value' localhost:8080/kv/mykey
//	curl localhost:8080/kv/mykey
//	curl 'localhost:8080/scan?start=my&n=10'
//	curl localhost:8080/stats
package main

import (
	"flag"
	"fmt"
	"net/http"
	"os"

	"adcache"
	"adcache/internal/lsm"
	"adcache/internal/server"
	"adcache/internal/vfs"
)

func main() {
	var (
		dir      = flag.String("dir", "adcached-db", "database directory")
		addr     = flag.String("addr", ":8080", "listen address")
		cache    = flag.Int64("cache", 64<<20, "cache budget in bytes")
		strategy = flag.String("strategy", "adcache", "cache strategy: adcache|block|kv|range|lecar|cacheus|none")
		readonly = flag.Bool("readonly", false, "reject writes; serve reads and observability only")
		maxBody  = flag.Int64("maxbody", 0, "request body size cap in bytes (default 64 MiB)")
	)
	flag.Parse()

	strat, err := adcache.ParseStrategy(*strategy)
	if err != nil {
		fmt.Fprintln(os.Stderr, "adcached:", err)
		os.Exit(1)
	}

	lsmOpts := lsm.DefaultOptions(*dir)
	db, err := adcache.Open(adcache.Options{
		Dir:        *dir,
		FS:         vfs.NewOS(),
		CacheBytes: *cache,
		Strategy:   strat,
		LSM:        &lsmOpts,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "adcached:", err)
		os.Exit(1)
	}
	defer db.Close()

	mode := "read-write"
	if *readonly {
		mode = "read-only"
	}
	fmt.Printf("adcached: serving %s (%s strategy, %d MiB cache, %s) on %s\n",
		*dir, db.Strategy(), *cache>>20, mode, *addr)
	fmt.Printf("adcached: observability at %s/stats (JSON), %s/metrics (Prometheus), %s/debug/vars (expvar)\n",
		*addr, *addr, *addr)
	handler := server.NewHandler(db, server.Options{ReadOnly: *readonly, MaxBodyBytes: *maxBody})
	if err := http.ListenAndServe(*addr, handler); err != nil {
		fmt.Fprintln(os.Stderr, "adcached:", err)
		os.Exit(1)
	}
}
