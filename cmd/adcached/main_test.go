package main

import (
	"bytes"
	"fmt"
	"net"
	"net/http"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"
)

// TestGracefulShutdown runs the real binary end to end: serve, write,
// SIGTERM, and verify the process drains, closes the DB cleanly, and the
// acked write survives a restart.
func TestGracefulShutdown(t *testing.T) {
	dir := t.TempDir()
	bin := filepath.Join(dir, "adcached-test-bin")
	if out, err := exec.Command("go", "build", "-o", bin, ".").CombinedOutput(); err != nil {
		t.Fatalf("build: %v\n%s", err, out)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()
	dbDir := filepath.Join(dir, "db")

	run := func() (*exec.Cmd, *bytes.Buffer) {
		cmd := exec.Command(bin, "-dir", dbDir, "-addr", addr, "-drain-timeout", "5s")
		var out bytes.Buffer
		cmd.Stdout, cmd.Stderr = &out, &out
		if err := cmd.Start(); err != nil {
			t.Fatalf("start: %v", err)
		}
		deadline := time.Now().Add(10 * time.Second)
		for {
			resp, err := http.Get("http://" + addr + "/v1/health")
			if err == nil {
				resp.Body.Close()
				if resp.StatusCode == http.StatusOK {
					return cmd, &out
				}
			}
			if time.Now().After(deadline) {
				cmd.Process.Kill()
				t.Fatalf("node never became healthy; output:\n%s", out.String())
			}
			time.Sleep(20 * time.Millisecond)
		}
	}
	stop := func(cmd *exec.Cmd, out *bytes.Buffer) {
		t.Helper()
		if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
			t.Fatalf("signal: %v", err)
		}
		done := make(chan error, 1)
		go func() { done <- cmd.Wait() }()
		select {
		case err := <-done:
			if err != nil {
				t.Fatalf("exit after SIGTERM: %v\n%s", err, out.String())
			}
		case <-time.After(15 * time.Second):
			cmd.Process.Kill()
			t.Fatalf("process did not exit after SIGTERM; output:\n%s", out.String())
		}
		if !strings.Contains(out.String(), "clean shutdown") {
			t.Fatalf("no clean-shutdown line in output:\n%s", out.String())
		}
	}

	cmd, out := run()
	req, _ := http.NewRequest(http.MethodPut, "http://"+addr+"/v1/kv/gk", strings.NewReader("gv"))
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		t.Fatalf("put = %d", resp.StatusCode)
	}
	stop(cmd, out)

	// The acked write must survive the clean close and be readable after
	// a restart from the same directory.
	cmd, out = run()
	resp, err = http.Get(fmt.Sprintf("http://%s/v1/kv/gk", addr))
	if err != nil {
		t.Fatal(err)
	}
	var body bytes.Buffer
	body.ReadFrom(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || body.String() != "gv" {
		t.Fatalf("readback after restart = %d %q, want 200 \"gv\"", resp.StatusCode, body.String())
	}
	stop(cmd, out)
}
