// Command adcache-pretrain trains the actor-critic model on the synthetic
// representative workloads of §3.6 and saves the weights to disk. The saved
// model is loaded at runtime via core.Config.ModelFS/ModelPath (or the
// harness's process-level cache), avoiding per-deployment warm-up.
//
// Usage:
//
//	adcache-pretrain -out models/adcache          # writes .actor/.critic
//	adcache-pretrain -out m -epochs 30 -maxscan 128
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"adcache/internal/core"
	"adcache/internal/rl"
	"adcache/internal/trace"
	"adcache/internal/vfs"
)

func main() {
	var (
		out       = flag.String("out", "models/adcache", "output path prefix (two files: .actor, .critic)")
		epochs    = flag.Int("epochs", 15, "supervised pretraining epochs")
		maxScan   = flag.Int("maxscan", 128, "scan-length normalisation (must match runtime MaxScanLen)")
		seed      = flag.Int64("seed", 7, "data/exploration seed")
		traceFile = flag.String("trace", "", "pretrain from a recorded workload trace instead of synthetic mixes")
		window    = flag.Int("window", 1000, "trace window size in operations")
		show      = flag.Int("show", 4, "print this many sample state→action rows of the trained policy (0 disables)")
	)
	flag.Parse()

	if dir := filepath.Dir(*out); dir != "." {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			fmt.Fprintln(os.Stderr, "adcache-pretrain:", err)
			os.Exit(1)
		}
	}

	cfg := rl.DefaultConfig()
	cfg.Seed = *seed
	agent := rl.New(cfg)

	var states [][]float32
	var targets []rl.Action
	if *traceFile != "" {
		f, err := vfs.NewOS().Open(*traceFile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "adcache-pretrain:", err)
			os.Exit(1)
		}
		ops, err := trace.ReadAll(f)
		f.Close()
		if err != nil {
			fmt.Fprintln(os.Stderr, "adcache-pretrain:", err)
			os.Exit(1)
		}
		windows := trace.Windows(ops, *window)
		states, targets = core.PretrainDataFromWindows(windows, *maxScan, *seed)
		fmt.Printf("trace: %d ops -> %d windows\n", len(ops), len(windows))
	} else {
		states, targets = core.SyntheticPretrainData(*maxScan, *seed)
	}
	if len(states) == 0 {
		fmt.Fprintln(os.Stderr, "adcache-pretrain: no training data")
		os.Exit(1)
	}
	loss := agent.PretrainSupervised(states, targets, *epochs, 1e-3)
	if err := agent.Save(vfs.NewOS(), *out); err != nil {
		fmt.Fprintln(os.Stderr, "adcache-pretrain:", err)
		os.Exit(1)
	}
	fmt.Printf("pretrained on %d states for %d epochs (final loss %.6f)\n", len(states), *epochs, loss)
	fmt.Printf("model: %d parameters, %.0f KB weights\n", agent.NumParams(), float64(agent.MemoryBytes())/1024)

	// Policy exposition: what the trained actor does on a spread of training
	// states (noiseless means) next to the supervision targets.
	if *show > 0 && len(states) > 0 {
		n := *show
		if n > len(states) {
			n = len(states)
		}
		step := len(states) / n
		fmt.Printf("%-8s %-28s %-36s %s\n", "sample", "state[point scan write len]",
			"policy[ratio thresh a b]", "target[ratio thresh a b]")
		for i := 0; i < n; i++ {
			s := states[i*step]
			got := agent.Mean(s)
			want := targets[i*step]
			fmt.Printf("%-8d %4.2f %4.2f %4.2f %4.2f          %5.2f %5.2f %5.2f %5.2f          %5.2f %5.2f %5.2f %5.2f\n",
				i*step, s[0], s[1], s[2], s[3],
				got.RangeRatio, got.PointThreshold, got.ScanA, got.ScanB,
				want.RangeRatio, want.PointThreshold, want.ScanA, want.ScanB)
		}
	}
	fmt.Printf("saved %s.actor and %s.critic\n", *out, *out)
}
