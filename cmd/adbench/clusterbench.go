package main

import (
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"net"
	"net/http"
	"os"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"adcache"
	"adcache/client"
	"adcache/internal/cluster"
	"adcache/internal/metrics"
	"adcache/internal/server"
)

// The cluster benchmark reproduces the shard manager's headline scenario:
// a naive static shard map concentrates a workload's hot key range on one
// node, the fleet's tail latency is dominated by that node's queueing,
// and the latency-driven manager detects the hot shards from per-slot
// histogram windows and spreads them — measured as fleet p99 before vs
// after, with the client riding the map changes without surfacing errors.
//
// Each in-process node serves real HTTP on a loopback listener with a
// bounded data-plane concurrency and a fixed per-request service time
// (server.WithServiceTime) modeling nodes backed by slower media. That
// makes finite node capacity the genuine bottleneck: the hot node's
// requests queue on its concurrency slots, the queueing delay lands in
// the per-shard histograms the manager polls, and spreading the hot
// slots removes it.

// clusterPhase is one measured load window.
type clusterPhase struct {
	Ops          int64   `json:"ops"`
	Seconds      float64 `json:"seconds"`
	QPS          float64 `json:"qps"`
	ReadP50Ms    float64 `json:"read_p50_ms"`
	ReadP99Ms    float64 `json:"read_p99_ms"`
	WriteP99Ms   float64 `json:"write_p99_ms"`
	Errors       int64   `json:"errors"`
	NodeOpsShare []int64 `json:"node_ops_share"` // per node, this window's keyed ops
}

// clusterBenchOut is the committed BENCH_CLUSTER.json artifact.
type clusterBenchOut struct {
	Nodes              int     `json:"nodes"`
	Shards             int     `json:"shards"`
	HotShards          []int   `json:"hot_shards"`
	Keys               int     `json:"keys"`
	HotKeys            int     `json:"hot_keys"`
	HotFraction        float64 `json:"hot_fraction"`
	ReadFraction       float64 `json:"read_fraction"`
	Workers            int     `json:"workers"`
	PerNodeConcurrency int     `json:"per_node_concurrency"`
	ServiceTimeMs      float64 `json:"service_time_ms"`

	Before clusterPhase `json:"before"`
	After  clusterPhase `json:"after"`

	Moves             int     `json:"moves"`
	EpochBefore       uint64  `json:"epoch_before"`
	EpochAfter        uint64  `json:"epoch_after"`
	WrongShardRetries int64   `json:"wrong_shard_retries"`
	ReadP99Improve    float64 `json:"read_p99_improvement_pct"`
}

// benchNode is one in-process cluster member.
type benchNode struct {
	id       string
	addr     string
	db       *adcache.DB
	view     *cluster.NodeView
	srv      *http.Server
	keyedOps func() int64
}

func runClusterBench(nKeys, nOps int, asJSON bool, path string) error {
	const (
		nNodes   = 3
		nShards  = cluster.DefaultShards
		hotFrac  = 0.85
		readFrac = 0.90
		// Worker count sits between one node's capacity (6 service slots)
		// and the fleet's (18): a balanced fleet absorbs the load
		// queue-free even through random worker pile-ups, while one node
		// carrying the hot shards is oversubscribed and queues — so the
		// measured p50/p99 gap is exactly the misplacement cost the
		// manager removes.
		workers     = 10
		perNodeConc = 6
		valueSize   = 128
		// Per-request service cost; with perNodeConc slots a node's
		// capacity is perNodeConc/serviceTime = 300 ops/s, so one node
		// carrying 85% of the fleet load saturates and queues tens of
		// milliseconds deep. The time is spent sleeping, not computing,
		// keeping the CPU cold, and it is sized so the queueing signal
		// dwarfs scheduler jitter even on single-core CI runners.
		serviceTime = 20 * time.Millisecond
		// Shared migration secret for the in-process fleet — loopback
		// only, so a fixed value is fine here.
		benchToken = "adbench-cluster-token"
	)
	hotShards := []int{0, 1, 2, 3, 4, 5}
	if nKeys <= 0 {
		nKeys = 8192
	}
	if nOps <= 0 {
		nOps = 4000
	}

	// --- Listeners first: the shard map needs real addresses. ---
	ids := []string{"a", "b", "c"}
	listeners := make([]net.Listener, nNodes)
	nodes := make([]cluster.Node, nNodes)
	for i := range listeners {
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return err
		}
		listeners[i] = l
		nodes[i] = cluster.Node{ID: ids[i], Addr: l.Addr().String()}
	}

	// --- The naive static map: every hot slot on node a, the cold rest
	// round-robin over b and c. ---
	initial, err := cluster.InitialMap(nodes, nShards)
	if err != nil {
		return err
	}
	isHot := map[int]bool{}
	for _, s := range hotShards {
		isHot[s] = true
	}
	cold := 0
	for s := 0; s < nShards; s++ {
		if isHot[s] {
			initial.Owner[s] = "a"
		} else {
			initial.Owner[s] = ids[1+cold%2] // b, c alternating
			cold++
		}
	}

	// --- Nodes: DB + cluster view + HTTP server on the listener. ---
	members := make([]*benchNode, nNodes)
	for i, n := range nodes {
		db, err := adcache.Open(adcache.Options{CacheBytes: 32 << 20})
		if err != nil {
			return err
		}
		view, err := cluster.NewNodeView(n.ID, initial)
		if err != nil {
			return err
		}
		h := server.New(db,
			server.WithCluster(view),
			server.WithInternalToken(benchToken),
			server.WithConcurrencyLimit(perNodeConc),
			server.WithServiceTime(serviceTime))
		srv := &http.Server{Handler: h}
		go srv.Serve(listeners[i])
		reg := db.Registry()
		kvOps := reg.Counter(`http_requests_total{route="kv"}`, "")
		batchOps := reg.Counter(`http_requests_total{route="batch"}`, "")
		members[i] = &benchNode{
			id: n.ID, addr: n.Addr, db: db, view: view, srv: srv,
			keyedOps: func() int64 { return kvOps.Value() + batchOps.Value() },
		}
	}
	defer func() {
		for _, m := range members {
			m.srv.Close()
			m.db.Close()
		}
	}()

	// --- Client + preload. Hot keys are the keys hashing into the hot
	// slots; the key space is enumerated until both pools are full. ---
	seeds := make([]string, nNodes)
	for i, n := range nodes {
		seeds[i] = n.Addr
	}
	cl, err := client.New(seeds)
	if err != nil {
		return err
	}
	defer cl.Close()

	var hotKeys, coldKeys [][]byte
	for i := 0; len(hotKeys)+len(coldKeys) < nKeys; i++ {
		k := []byte(fmt.Sprintf("user%08d", i))
		if isHot[cluster.ShardOf(k, nShards)] {
			hotKeys = append(hotKeys, k)
		} else {
			coldKeys = append(coldKeys, k)
		}
	}
	val := make([]byte, valueSize)
	for i := range val {
		val[i] = byte('a' + i%26)
	}
	preload := func(keys [][]byte) error {
		for off := 0; off < len(keys); off += 256 {
			end := off + 256
			if end > len(keys) {
				end = len(keys)
			}
			ops := make([]client.Op, 0, end-off)
			for _, k := range keys[off:end] {
				ops = append(ops, client.Op{Kind: client.OpPut, Key: k, Value: val})
			}
			if err := cl.Batch(ops); err != nil {
				return err
			}
		}
		return nil
	}
	if err := preload(hotKeys); err != nil {
		return err
	}
	if err := preload(coldKeys); err != nil {
		return err
	}

	// --- Load phase runner: workers hammer the cluster, latencies land
	// in fresh histograms per phase. ---
	runPhase := func(ops int) clusterPhase {
		readH, writeH := &metrics.Histogram{}, &metrics.Histogram{}
		var done, errs atomic.Int64
		startOps := make([]int64, nNodes)
		for i, m := range members {
			startOps[i] = m.keyedOps()
		}
		var wg sync.WaitGroup
		t0 := time.Now()
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(seed int64) {
				defer wg.Done()
				rng := rand.New(rand.NewSource(seed))
				for done.Add(1) <= int64(ops) {
					var k []byte
					if rng.Float64() < hotFrac {
						k = hotKeys[rng.Intn(len(hotKeys))]
					} else {
						k = coldKeys[rng.Intn(len(coldKeys))]
					}
					op0 := time.Now()
					if rng.Float64() < readFrac {
						_, _, err := cl.Get(k)
						readH.ObserveSince(op0)
						if err != nil {
							errs.Add(1)
						}
					} else {
						err := cl.Put(k, val)
						writeH.ObserveSince(op0)
						if err != nil {
							errs.Add(1)
						}
					}
				}
			}(int64(w) + 1)
		}
		wg.Wait()
		elapsed := time.Since(t0)
		r, wr := readH.Snapshot(), writeH.Snapshot()
		share := make([]int64, nNodes)
		for i, m := range members {
			share[i] = m.keyedOps() - startOps[i]
		}
		return clusterPhase{
			Ops:          r.Count + wr.Count,
			Seconds:      elapsed.Seconds(),
			QPS:          float64(r.Count+wr.Count) / elapsed.Seconds(),
			ReadP50Ms:    r.Quantile(0.50) / 1e6,
			ReadP99Ms:    r.Quantile(0.99) / 1e6,
			WriteP99Ms:   wr.Quantile(0.99) / 1e6,
			Errors:       errs.Load(),
			NodeOpsShare: share,
		}
	}

	fmt.Printf("cluster bench: %d nodes × %d slots, %d keys (%d hot in slots %v), %d workers, conc %d/node, service %v\n",
		nNodes, nShards, nKeys, len(hotKeys), hotShards, workers, perNodeConc, serviceTime)

	// Phase 1: static naive map, no manager.
	before := runPhase(nOps)
	fmt.Printf("  before: qps=%.0f read p50=%.2fms p99=%.2fms write p99=%.2fms node-ops=%v errors=%d\n",
		before.QPS, before.ReadP50Ms, before.ReadP99Ms, before.WriteP99Ms, before.NodeOpsShare, before.Errors)

	// Transition: shard manager online under live load until it stops
	// finding profitable moves.
	mgr, err := cluster.NewManager(initial, cluster.ManagerOptions{
		// Long windows average out load randomness; the cooldown spans
		// several of them because per-shard latency includes queueing
		// delay, so right after a move the draining backlog still reads
		// hot — deciding again before it clears overshoots.
		Interval:       500 * time.Millisecond,
		Cooldown:       1500 * time.Millisecond,
		MinWindowOps:   60,
		ImbalanceRatio: 1.6,
		InternalToken:  benchToken,
		Logf: func(f string, a ...any) {
			fmt.Fprintf(os.Stderr, "  "+f+"\n", a...)
		},
	})
	if err != nil {
		return err
	}
	ctx, cancel := context.WithCancel(context.Background())
	go mgr.Run(ctx)
	transStop := make(chan struct{})
	var transWG sync.WaitGroup
	transWG.Add(1)
	go func() { // background load so the manager has windows to act on
		defer transWG.Done()
		rng := rand.New(rand.NewSource(99))
		for {
			select {
			case <-transStop:
				return
			default:
			}
			k := hotKeys[rng.Intn(len(hotKeys))]
			if rng.Float64() >= hotFrac {
				k = coldKeys[rng.Intn(len(coldKeys))]
			}
			cl.Get(k)
		}
	}()
	// More transition load — enough that manager windows cross
	// MinWindowOps, but deliberately BELOW fleet capacity (18 slots) and
	// above hot-node capacity (6): the overloaded node queues and reads
	// hot while a balanced fleet runs queue-free and reads even, so the
	// manager converges instead of chasing queue-amplified noise.
	for w := 0; w < 8; w++ {
		transWG.Add(1)
		go func(seed int64) {
			defer transWG.Done()
			rng := rand.New(rand.NewSource(seed))
			for {
				select {
				case <-transStop:
					return
				default:
				}
				if rng.Float64() < hotFrac {
					cl.Get(hotKeys[rng.Intn(len(hotKeys))])
				} else {
					cl.Get(coldKeys[rng.Intn(len(coldKeys))])
				}
			}
		}(100 + int64(w))
	}
	deadline := time.Now().Add(25 * time.Second)
	lastMoves, lastChange := 0, time.Now()
	for time.Now().Before(deadline) {
		time.Sleep(100 * time.Millisecond)
		if m := mgr.Moves(); m != lastMoves {
			lastMoves, lastChange = m, time.Now()
		} else if m > 0 && time.Since(lastChange) > 3500*time.Millisecond {
			break // converged: no profitable move for several windows
		}
	}
	close(transStop)
	transWG.Wait()
	cancel()

	finalMap := mgr.Current()
	owners := map[string][]int{}
	for _, s := range hotShards {
		owners[finalMap.Owner[s]] = append(owners[finalMap.Owner[s]], s)
	}
	var ownerDesc []string
	for id, ss := range owners {
		ownerDesc = append(ownerDesc, fmt.Sprintf("%s:%v", id, ss))
	}
	sort.Strings(ownerDesc)
	fmt.Printf("  rebalance: %d moves, epoch %d→%d, hot slots now %v\n",
		mgr.Moves(), initial.Epoch, finalMap.Epoch, ownerDesc)

	// Phase 2: same load, rebalanced map.
	after := runPhase(nOps)
	fmt.Printf("  after:  qps=%.0f read p50=%.2fms p99=%.2fms write p99=%.2fms node-ops=%v errors=%d\n",
		after.QPS, after.ReadP50Ms, after.ReadP99Ms, after.WriteP99Ms, after.NodeOpsShare, after.Errors)

	improve := 0.0
	if before.ReadP99Ms > 0 {
		improve = 100 * (before.ReadP99Ms - after.ReadP99Ms) / before.ReadP99Ms
	}
	verdict := "better"
	if improve < 0 {
		verdict = "worse"
	}
	st := cl.Stats()
	fmt.Printf("  fleet read p99: %.2fms → %.2fms (%.1f%% %s), wrong-shard retries=%d\n",
		before.ReadP99Ms, after.ReadP99Ms, improve, verdict, st.WrongShardRetries)

	if before.Errors+after.Errors > 0 {
		return fmt.Errorf("cluster bench: %d user-visible errors in measured phases",
			before.Errors+after.Errors)
	}
	if mgr.Moves() == 0 {
		return fmt.Errorf("cluster bench: shard manager made no moves")
	}
	if improve <= 0 {
		return fmt.Errorf("cluster bench: rebalance did not improve fleet read p99 (%.2fms → %.2fms)",
			before.ReadP99Ms, after.ReadP99Ms)
	}

	if asJSON {
		out := clusterBenchOut{
			Nodes: nNodes, Shards: nShards, HotShards: hotShards,
			Keys: nKeys, HotKeys: len(hotKeys), HotFraction: hotFrac,
			ReadFraction: readFrac, Workers: workers, PerNodeConcurrency: perNodeConc,
			ServiceTimeMs: serviceTime.Seconds() * 1000,
			Before:        before, After: after,
			Moves: mgr.Moves(), EpochBefore: initial.Epoch, EpochAfter: finalMap.Epoch,
			WrongShardRetries: st.WrongShardRetries,
			ReadP99Improve:    improve,
		}
		b, err := json.MarshalIndent(out, "", "  ")
		if err != nil {
			return err
		}
		b = append(b, '\n')
		if err := os.WriteFile(path, b, 0o644); err != nil {
			return err
		}
		fmt.Printf("  wrote %s\n", path)
	}
	return nil
}
