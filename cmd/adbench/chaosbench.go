package main

import (
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"net"
	"net/http"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"adcache"
	"adcache/client"
	"adcache/internal/cluster"
	"adcache/internal/cluster/chaos"
	"adcache/internal/metrics"
	"adcache/internal/server"
)

// The chaos benchmark is the robustness headline: a three-node fleet with
// the shard manager online, concurrent writers and hedged readers through
// the resilient client, and a seeded scripted fault timeline — healthy
// baseline, single-node brownout, node kill and restart, dropped acks —
// measured per phase and held to hard gates:
//
//   - zero acked-write loss: every write the client acked reads back at
//     least as new after the network heals;
//   - error rate ≤ 1%: retries, breakers, and hedging absorb the faults
//     instead of surfacing them;
//   - read p99 during the single-node brownout ≤ 3× the healthy read
//     p99: hedged reads route around the slow node's tail;
//   - breaker lifecycle observed: the killed node's breaker opens while
//     it is down and re-closes after restart.
//
// Every random decision — workload and faults — draws from seeded PRNGs,
// so a given seed replays the same run.

// chaosPhaseOut is one scripted phase's measured window.
type chaosPhaseOut struct {
	Name       string  `json:"name"`
	Seconds    float64 `json:"seconds"`
	Ops        int64   `json:"ops"`
	QPS        float64 `json:"qps"`
	ReadP50Ms  float64 `json:"read_p50_ms"`
	ReadP99Ms  float64 `json:"read_p99_ms"`
	WriteP99Ms float64 `json:"write_p99_ms"`
	Errors     int64   `json:"errors"`
}

// chaosGates is the pass/fail record committed with the numbers.
type chaosGates struct {
	ZeroAckedWriteLoss bool `json:"zero_acked_write_loss"`
	ErrorRateLE1Pct    bool `json:"error_rate_le_1pct"`
	BrownoutP99LE3x    bool `json:"brownout_read_p99_le_3x_healthy"`
	BreakerReclosed    bool `json:"breaker_reclosed"`
}

// chaosBenchOut is the committed BENCH_CHAOS.json artifact.
type chaosBenchOut struct {
	Seed          int64   `json:"seed"`
	Nodes         int     `json:"nodes"`
	Shards        int     `json:"shards"`
	Workers       int     `json:"workers"`
	Keys          int     `json:"keys"`
	ReadFraction  float64 `json:"read_fraction"`
	ServiceTimeMs float64 `json:"service_time_ms"`

	Phases []chaosPhaseOut `json:"phases"`

	HealthyReadP99Ms  float64 `json:"healthy_read_p99_ms"`
	BrownoutReadP99Ms float64 `json:"brownout_read_p99_ms"`
	BrownoutTailRatio float64 `json:"brownout_tail_ratio"`

	AckedWrites     int64 `json:"acked_writes"`
	LostAckedWrites int64 `json:"lost_acked_writes"`
	TotalOps        int64 `json:"total_ops"`
	Errors          int64 `json:"errors"`

	RetryableErrors   int64  `json:"retryable_errors"`
	BreakerOpens      int64  `json:"breaker_opens"`
	BreakerCloses     int64  `json:"breaker_closes"`
	BreakerFinalState string `json:"breaker_final_state"`
	HedgedReads       int64  `json:"hedged_reads"`
	HedgeWins         int64  `json:"hedge_wins"`

	Gates chaosGates `json:"gates"`
}

// chaosPhaseAgg accumulates one phase's samples while the run is live.
type chaosPhaseAgg struct {
	readH, writeH metrics.Histogram
	errs          atomic.Int64
	start, end    time.Time
}

func runChaosBench(seed int64, asJSON bool, path string) error {
	const (
		nNodes   = 3
		nShards  = cluster.DefaultShards
		workers  = 8
		nKeys    = 2048
		readFrac = 0.90
		// Every data request costs serviceTime server-side, so the healthy
		// tail is set by a known floor rather than scheduler noise, and the
		// brownout gate (≤ 3× healthy) has a stable denominator.
		serviceTime = 8 * time.Millisecond
		valueSize   = 128
		benchToken  = "adbench-chaos-token"
		// The brownout: a minority of requests to one node stall far past
		// the 3× budget, so an unhedged client CANNOT pass the tail gate —
		// the hedge (fired well inside the budget, usually landing on a
		// fast draw) is what keeps p99 bounded.
		brownLatency = 100 * time.Millisecond
		brownProb    = 0.12
		hedgeDelay   = 10 * time.Millisecond
	)
	if seed == 0 {
		seed = 1337
	}

	// --- Fleet: three nodes on chaos listeners. ---
	ids := []string{"a", "b", "c"}
	listeners := make([]*chaos.Listener, nNodes)
	nodes := make([]cluster.Node, nNodes)
	for i := range listeners {
		raw, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return err
		}
		listeners[i] = chaos.NewListener(raw)
		nodes[i] = cluster.Node{ID: ids[i], Addr: raw.Addr().String()}
	}
	initial, err := cluster.InitialMap(nodes, nShards)
	if err != nil {
		return err
	}
	addrOf := map[string]string{}
	for _, n := range nodes {
		addrOf[n.ID] = n.Addr
	}
	type member struct {
		db  *adcache.DB
		srv *http.Server
	}
	members := make([]member, nNodes)
	for i, n := range nodes {
		db, err := adcache.Open(adcache.Options{CacheBytes: 32 << 20})
		if err != nil {
			return err
		}
		view, err := cluster.NewNodeView(n.ID, initial)
		if err != nil {
			return err
		}
		srv := &http.Server{Handler: server.New(db,
			server.WithCluster(view),
			server.WithNodeID(n.ID),
			server.WithInternalToken(benchToken),
			server.WithServiceTime(serviceTime))}
		go srv.Serve(listeners[i])
		members[i] = member{db: db, srv: srv}
	}
	defer func() {
		for _, m := range members {
			m.srv.Close()
			m.db.Close()
		}
	}()

	// --- Client behind the seeded fault table. ---
	table := chaos.NewTable(seed)
	seeds := make([]string, nNodes)
	for i, n := range nodes {
		seeds[i] = n.Addr
	}
	cl, err := client.New(seeds,
		client.WithHTTPClient(&http.Client{Transport: &chaos.Transport{Table: table, Source: "bench"}}),
		client.WithMaxRetries(500),
		client.WithRetryBackoff(2*time.Millisecond),
		client.WithBackoffCap(50*time.Millisecond),
		client.WithJitterSeed(seed),
		client.WithBreaker(5, 100*time.Millisecond),
		client.WithHedgedReads(hedgeDelay),
		client.WithRequestTimeout(2*time.Second),
	)
	if err != nil {
		return err
	}
	defer cl.Close()

	// --- Preload: the whole key pool, with parseable seq-0 values so the
	// readback check can order any stored value it meets. ---
	keys := make([][]byte, nKeys)
	for i := range keys {
		keys[i] = []byte(fmt.Sprintf("user%08d", i))
	}
	// pad brings every value up to valueSize behind the parseable
	// "w<writer>-<seq>" header, so writes carry realistic payloads.
	pad := make([]byte, valueSize)
	for i := range pad {
		pad[i] = byte('a' + i%26)
	}
	mkVal := func(w int, seq int64) []byte {
		v := fmt.Sprintf("w%d-%d.", w, seq)
		if len(v) < valueSize {
			v += string(pad[:valueSize-len(v)])
		}
		return []byte(v)
	}
	for off := 0; off < nKeys; off += 256 {
		end := off + 256
		if end > nKeys {
			end = nKeys
		}
		ops := make([]client.Op, 0, end-off)
		for w, k := range keys[off:end] {
			ops = append(ops, client.Op{Kind: client.OpPut, Key: k, Value: mkVal((off+w)%workers, 0)})
		}
		if err := cl.Batch(ops); err != nil {
			return err
		}
	}

	// --- Manager online for the whole run: its probes and polls ride the
	// same faults (a killed node is skipped, not fatal). ---
	mgr, err := cluster.NewManager(initial, cluster.ManagerOptions{
		Interval:      500 * time.Millisecond,
		InternalToken: benchToken,
		Logf: func(f string, a ...any) {
			fmt.Fprintf(os.Stderr, "  "+f+"\n", a...)
		},
	})
	if err != nil {
		return err
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go mgr.Run(ctx)

	// --- The scripted timeline. phaseIdx routes each op's sample to the
	// phase it STARTED in, so a kill-phase op completing after the restart
	// still charges the kill. ---
	phaseNames := []string{"healthy", "brownout-b", "kill-c", "restart-c", "drop-acks-a", "heal"}
	aggs := make([]*chaosPhaseAgg, len(phaseNames))
	for i := range aggs {
		aggs[i] = &chaosPhaseAgg{}
	}
	idxOf := map[string]int32{}
	for i, n := range phaseNames {
		idxOf[n] = int32(i)
	}
	var phaseIdx atomic.Int32
	phaseIdx.Store(-1)
	script := &chaos.Script{
		Logf: func(f string, a ...any) { fmt.Fprintf(os.Stderr, "  "+f+"\n", a...) },
		OnPhase: func(name string) {
			now := time.Now()
			if cur := phaseIdx.Load(); cur >= 0 {
				aggs[cur].end = now
			}
			i := idxOf[name]
			aggs[i].start = now
			phaseIdx.Store(i)
		},
		Steps: []chaos.Step{
			{Name: "healthy", Duration: 3 * time.Second},
			{Name: "brownout-b", Duration: 3 * time.Second, Enter: func() {
				table.Set(addrOf["b"], chaos.Rule{Latency: brownLatency, Jitter: 20 * time.Millisecond, SlowProb: brownProb})
			}},
			{Name: "kill-c", Duration: 2 * time.Second, Enter: func() {
				table.Heal()
				listeners[2].Kill()
			}},
			{Name: "restart-c", Duration: 2 * time.Second, Enter: func() {
				listeners[2].Restart()
			}},
			{Name: "drop-acks-a", Duration: 1500 * time.Millisecond, Enter: func() {
				table.Set(addrOf["a"], chaos.Rule{DropResponseProb: 0.4})
			}},
			{Name: "heal", Duration: time.Second, Enter: func() {
				table.Heal()
			}},
		},
	}

	// --- Workers: mixed read/write load. Write keys are partitioned per
	// worker with per-key monotonic seqs, so the ledger can tell a
	// committed-but-unacked newer value (fine) from a lost ack (loss). ---
	var (
		mu           sync.Mutex
		acked        = map[string]string{}
		wseq         = make([]atomic.Int64, workers)
		wg           sync.WaitGroup
		teardownErrs atomic.Int64
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed + int64(w)))
			// This worker's write partition: every workers-th key.
			var mine [][]byte
			for i := w; i < nKeys; i += workers {
				mine = append(mine, keys[i])
			}
			for ctx.Err() == nil {
				i := phaseIdx.Load()
				if i < 0 {
					time.Sleep(time.Millisecond)
					continue
				}
				agg := aggs[i]
				t0 := time.Now()
				if rng.Float64() < readFrac {
					_, _, err := cl.GetCtx(ctx, keys[rng.Intn(nKeys)])
					agg.readH.ObserveSince(t0)
					if err != nil {
						if ctx.Err() != nil {
							teardownErrs.Add(1)
							return
						}
						agg.errs.Add(1)
					}
				} else {
					k := mine[rng.Intn(len(mine))]
					v := string(mkVal(w, wseq[w].Add(1)))
					err := cl.PutCtx(ctx, k, []byte(v))
					agg.writeH.ObserveSince(t0)
					if err != nil {
						if ctx.Err() != nil {
							teardownErrs.Add(1)
							return
						}
						agg.errs.Add(1)
						continue
					}
					mu.Lock()
					acked[string(k)] = v
					mu.Unlock()
				}
			}
		}(w)
	}

	fmt.Printf("chaos bench: %d nodes × %d slots, %d keys, %d workers, service %v, seed %d\n",
		nNodes, nShards, nKeys, workers, serviceTime, seed)
	script.Run(ctx)
	if cur := phaseIdx.Load(); cur >= 0 && aggs[cur].end.IsZero() {
		aggs[cur].end = time.Now()
	}
	cancel()
	wg.Wait()

	// --- Per-phase results. ---
	var (
		phases             []chaosPhaseOut
		totalOps, totalErr int64
	)
	for i, name := range phaseNames {
		a := aggs[i]
		r, wr := a.readH.Snapshot(), a.writeH.Snapshot()
		secs := a.end.Sub(a.start).Seconds()
		p := chaosPhaseOut{
			Name:       name,
			Seconds:    secs,
			Ops:        r.Count + wr.Count,
			ReadP50Ms:  r.Quantile(0.50) / 1e6,
			ReadP99Ms:  r.Quantile(0.99) / 1e6,
			WriteP99Ms: wr.Quantile(0.99) / 1e6,
			Errors:     a.errs.Load(),
		}
		if secs > 0 {
			p.QPS = float64(p.Ops) / secs
		}
		phases = append(phases, p)
		totalOps += p.Ops
		totalErr += p.Errors
		fmt.Printf("  %-12s %5.1fs ops=%-6d qps=%-6.0f read p50=%6.2fms p99=%7.2fms write p99=%7.2fms errors=%d\n",
			p.Name, p.Seconds, p.Ops, p.QPS, p.ReadP50Ms, p.ReadP99Ms, p.WriteP99Ms, p.Errors)
	}

	// --- Readback: every acked write survives, at least as new. ---
	mu.Lock()
	ledger := make(map[string]string, len(acked))
	for k, v := range acked {
		ledger[k] = v
	}
	mu.Unlock()
	var lost int64
	for k, v := range ledger {
		got, ok, err := cl.Get([]byte(k))
		if err != nil || !ok {
			lost++
			continue
		}
		var gw, gn, aw, an int64
		if _, err := fmt.Sscanf(string(got), "w%d-%d", &gw, &gn); err != nil {
			lost++
			continue
		}
		fmt.Sscanf(v, "w%d-%d", &aw, &an)
		// Same key ⇒ same writer ⇒ seqs are comparable; a newer stored seq
		// is a committed-but-unacked write, not loss.
		if gw != aw || gn < an {
			lost++
		}
	}

	st := cl.Stats()
	breakerC := cl.BreakerState(addrOf["c"])
	healthyP99 := phases[0].ReadP99Ms
	brownP99 := phases[1].ReadP99Ms
	ratio := 0.0
	if healthyP99 > 0 {
		ratio = brownP99 / healthyP99
	}
	errRate := 0.0
	if totalOps > 0 {
		errRate = float64(totalErr) / float64(totalOps)
	}
	gates := chaosGates{
		ZeroAckedWriteLoss: lost == 0 && len(ledger) > 0,
		ErrorRateLE1Pct:    errRate <= 0.01,
		BrownoutP99LE3x:    healthyP99 > 0 && brownP99 <= 3*healthyP99,
		BreakerReclosed:    st.BreakerOpens >= 1 && st.BreakerCloses >= 1 && breakerC == "closed",
	}
	fmt.Printf("  acked=%d lost=%d errors=%d/%d (%.3f%%) brownout tail %.2fms vs healthy %.2fms (%.2fx)\n",
		len(ledger), lost, totalErr, totalOps, 100*errRate, brownP99, healthyP99, ratio)
	fmt.Printf("  retryable=%d breakerOpens=%d breakerCloses=%d breaker(c)=%s hedges=%d hedgeWins=%d\n",
		st.RetryableErrors, st.BreakerOpens, st.BreakerCloses, breakerC, st.HedgedReads, st.HedgeWins)
	fmt.Printf("  gates: zero-acked-loss=%v error-rate<=1%%=%v brownout-p99<=3x=%v breaker-reclosed=%v\n",
		gates.ZeroAckedWriteLoss, gates.ErrorRateLE1Pct, gates.BrownoutP99LE3x, gates.BreakerReclosed)

	if asJSON {
		out := chaosBenchOut{
			Seed: seed, Nodes: nNodes, Shards: nShards, Workers: workers, Keys: nKeys,
			ReadFraction: readFrac, ServiceTimeMs: serviceTime.Seconds() * 1000,
			Phases:            phases,
			HealthyReadP99Ms:  healthyP99,
			BrownoutReadP99Ms: brownP99,
			BrownoutTailRatio: ratio,
			AckedWrites:       int64(len(ledger)),
			LostAckedWrites:   lost,
			TotalOps:          totalOps,
			Errors:            totalErr,
			RetryableErrors:   st.RetryableErrors,
			BreakerOpens:      st.BreakerOpens,
			BreakerCloses:     st.BreakerCloses,
			BreakerFinalState: breakerC,
			HedgedReads:       st.HedgedReads,
			HedgeWins:         st.HedgeWins,
			Gates:             gates,
		}
		b, err := json.MarshalIndent(out, "", "  ")
		if err != nil {
			return err
		}
		b = append(b, '\n')
		if err := os.WriteFile(path, b, 0o644); err != nil {
			return err
		}
		fmt.Printf("  wrote %s\n", path)
	}

	// Hard gates: a failed gate fails the bench (non-zero exit).
	if !gates.ZeroAckedWriteLoss {
		return fmt.Errorf("chaos bench: %d of %d acked writes lost", lost, len(ledger))
	}
	if !gates.ErrorRateLE1Pct {
		return fmt.Errorf("chaos bench: error rate %.3f%% exceeds 1%%", 100*errRate)
	}
	if !gates.BrownoutP99LE3x {
		return fmt.Errorf("chaos bench: brownout read p99 %.2fms > 3× healthy %.2fms", brownP99, healthyP99)
	}
	if !gates.BreakerReclosed {
		return fmt.Errorf("chaos bench: breaker lifecycle not observed (opens=%d closes=%d state=%s)",
			st.BreakerOpens, st.BreakerCloses, breakerC)
	}
	return nil
}
