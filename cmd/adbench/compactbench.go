package main

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"time"

	"adcache/internal/lsm"
	"adcache/internal/metrics"
	"adcache/internal/vfs"
)

// compactionRun is one row of the compaction benchmark: the same write-heavy
// workload executed at one CompactionParallelism setting.
type compactionRun struct {
	Parallelism    int     `json:"parallelism"`
	WallSeconds    float64 `json:"wall_seconds"`
	WriteMBps      float64 `json:"write_mbps"`
	Compactions    int64   `json:"compactions"`
	Subcompactions int64   `json:"subcompactions"`
	InputMB        float64 `json:"compaction_input_mb"`
	CompactSeconds float64 `json:"compact_seconds"`
	// CompactMBps is compaction throughput: input bytes merged per second of
	// compaction-loop busy time (compactions serialise on one loop, so busy
	// time is directly comparable across parallelism settings).
	CompactMBps    float64 `json:"compact_mbps"`
	StallSeconds   float64 `json:"stall_seconds"`
	StallSlowdowns int64   `json:"stall_slowdowns"`
	StallStops     int64   `json:"stall_stops"`
}

// compactionReport is the BENCH_COMPACTION.json schema, committed alongside
// compaction-path changes so the parallel-subcompaction speedup is
// reviewable in diffs.
type compactionReport struct {
	GeneratedAt string          `json:"generated_at"`
	GoVersion   string          `json:"go_version"`
	GOMAXPROCS  int             `json:"gomaxprocs"`
	Keys        int             `json:"keys"`
	ValueSize   int             `json:"value_size"`
	Runs        []compactionRun `json:"runs"`
	// Speedup is parallel compaction throughput over serial.
	Speedup float64 `json:"compact_speedup"`
	// StallRatio is parallel stall time over serial (lower is better).
	StallRatio float64 `json:"stall_ratio"`
}

// runCompactionBench drives a random-order write-heavy load — the worst case
// for leveled compaction — once with serial compaction and once with the
// parallel subcompaction pool, and reports compaction throughput and write
// stall time for both.
//
// The store runs on a simulated device (MemFS behind a LatencyFS modelling
// ~30 µs access at 1 GiB/s, an NVMe-class profile) so results are
// machine-independent and capture the effect parallel subcompactions exist
// for: shards overlap device waits with merge compute, so the speedup shows
// even on a single core.
func runCompactionBench(keys int, asJSON bool, outPath string) error {
	const valueSize = 256
	const parallel = 4

	run := func(parallelism int) (compactionRun, error) {
		reg := metrics.NewRegistry()
		opts := lsm.DefaultOptions("benchdb")
		opts.FS = vfs.NewLatency(vfs.NewMem(), 30*time.Microsecond, 1<<30)
		opts.MetricsRegistry = reg
		opts.CompactionParallelism = parallelism
		// Scaled down so the run compacts dozens of times, with a roomy L1 so
		// the work is dominated by wide L0→L1 merges — the compactions
		// subcompactions exist for — rather than single-file trickles into
		// deeper levels.
		opts.MemTableSize = 512 << 10
		opts.TargetFileSize = 64 << 10
		opts.L1TargetSize = 4 << 20

		db, err := lsm.Open(opts)
		if err != nil {
			return compactionRun{}, err
		}
		defer db.Close()

		value := make([]byte, valueSize)
		rng := rand.New(rand.NewSource(1))
		rng.Read(value)
		perm := rng.Perm(keys)

		start := time.Now()
		for _, i := range perm {
			if err := db.Put([]byte(fmt.Sprintf("key%010d", i)), value); err != nil {
				return compactionRun{}, err
			}
		}
		if err := db.Flush(); err != nil {
			return compactionRun{}, err
		}
		if err := db.Compact(); err != nil {
			return compactionRun{}, err
		}
		wall := time.Since(start)

		m := db.Metrics()
		compactNanos := reg.Histogram("lsm_compact_nanos", "").Snapshot().Sum
		stallNanos := reg.Histogram("lsm_stall_nanos", "").Snapshot().Sum
		r := compactionRun{
			Parallelism:    parallelism,
			WallSeconds:    wall.Seconds(),
			WriteMBps:      float64(m.UserBytes) / 1e6 / wall.Seconds(),
			Compactions:    m.Compactions,
			Subcompactions: m.Subcompactions,
			InputMB:        float64(m.CompactedBytes) / 1e6,
			CompactSeconds: float64(compactNanos) / 1e9,
			StallSeconds:   float64(stallNanos) / 1e9,
			StallSlowdowns: m.StallSlowdowns,
			StallStops:     m.StallStops,
		}
		if compactNanos > 0 {
			r.CompactMBps = float64(m.CompactedBytes) / 1e6 / (float64(compactNanos) / 1e9)
		}
		return r, nil
	}

	report := compactionReport{
		GeneratedAt: time.Now().UTC().Format(time.RFC3339),
		GoVersion:   runtime.Version(),
		GOMAXPROCS:  runtime.GOMAXPROCS(0),
		Keys:        keys,
		ValueSize:   valueSize,
	}
	for _, p := range []int{1, parallel} {
		r, err := run(p)
		if err != nil {
			return fmt.Errorf("parallelism=%d: %w", p, err)
		}
		report.Runs = append(report.Runs, r)
		fmt.Fprintf(os.Stderr,
			"  parallelism=%d wall=%6.2fs write=%6.1f MB/s compact=%6.1f MB/s (%d compactions, %d shards, %.1f MB in %.2fs) stall=%.3fs\n",
			r.Parallelism, r.WallSeconds, r.WriteMBps, r.CompactMBps,
			r.Compactions, r.Subcompactions, r.InputMB, r.CompactSeconds, r.StallSeconds)
	}
	serial, par := report.Runs[0], report.Runs[1]
	if serial.CompactMBps > 0 {
		report.Speedup = par.CompactMBps / serial.CompactMBps
	}
	if serial.StallSeconds > 0 {
		report.StallRatio = par.StallSeconds / serial.StallSeconds
	}
	fmt.Fprintf(os.Stderr, "  compact speedup %.2fx, stall ratio %.2f (parallelism %d vs 1)\n",
		report.Speedup, report.StallRatio, par.Parallelism)

	if !asJSON {
		return nil
	}
	buf, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	buf = append(buf, '\n')
	if err := os.WriteFile(outPath, buf, 0o644); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "wrote %s\n", outPath)
	return nil
}
