package main

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"testing"
	"time"

	"adcache/internal/core"
	"adcache/internal/lsm"
	"adcache/internal/vfs"
)

// readPathResult is one benchmark row of the read-path trajectory file.
type readPathResult struct {
	Name        string  `json:"name"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	Iterations  int     `json:"iterations"`
}

// readPathReport is the BENCH_READPATH.json schema. The file is committed
// alongside read-path changes so the allocation trajectory of the hot paths
// is reviewable in diffs.
type readPathReport struct {
	GeneratedAt string           `json:"generated_at"`
	GoVersion   string           `json:"go_version"`
	Keys        int              `json:"keys"`
	ValueSize   int              `json:"value_size"`
	Benchmarks  []readPathResult `json:"benchmarks"`
}

func rpKey(i int) []byte { return []byte(fmt.Sprintf("key%08d", i)) }
func rpVal(i int) []byte { return []byte(fmt.Sprintf("value%08d", i)) }

// rpDB builds a flushed, compacted in-memory store with n keys.
func rpDB(n int, strategy lsm.CacheStrategy) (*lsm.DB, error) {
	opts := lsm.DefaultOptions("benchdb")
	opts.FS = vfs.NewMem()
	opts.Strategy = strategy
	db, err := lsm.Open(opts)
	if err != nil {
		return nil, err
	}
	for i := 0; i < n; i++ {
		if err := db.Put(rpKey(i), rpVal(i)); err != nil {
			db.Close()
			return nil, err
		}
	}
	if err := db.Flush(); err != nil {
		db.Close()
		return nil, err
	}
	if err := db.Compact(); err != nil {
		db.Close()
		return nil, err
	}
	return db, nil
}

// runReadPath runs the read-path micro-benchmarks via testing.Benchmark and
// either prints a table or writes the JSON trajectory file.
func runReadPath(n int, asJSON bool, outPath string) error {
	type bench struct {
		name string
		prep func() (*lsm.DB, error)
		run  func(db *lsm.DB, b *testing.B)
	}
	benches := []bench{
		{
			name: "get_uncached",
			prep: func() (*lsm.DB, error) { return rpDB(n, nil) },
			run: func(db *lsm.DB, b *testing.B) {
				rng := rand.New(rand.NewSource(1))
				for i := 0; i < b.N; i++ {
					if _, ok, err := db.Get(rpKey(rng.Intn(n))); err != nil || !ok {
						b.Fatal("get failed")
					}
				}
			},
		},
		{
			name: "get_cached",
			prep: func() (*lsm.DB, error) {
				db, err := rpDB(n, core.NewBlockOnly(256<<20))
				if err != nil {
					return nil, err
				}
				// One pass pulls every block into the cache.
				for i := 0; i < n; i += 50 {
					if _, ok, err := db.Get(rpKey(i)); err != nil || !ok {
						db.Close()
						return nil, fmt.Errorf("warm-up get failed")
					}
				}
				return db, nil
			},
			run: func(db *lsm.DB, b *testing.B) {
				rng := rand.New(rand.NewSource(1))
				for i := 0; i < b.N; i++ {
					if _, ok, err := db.Get(rpKey(rng.Intn(n))); err != nil || !ok {
						b.Fatal("get failed")
					}
				}
			},
		},
		{
			name: "get_bloom_negative",
			prep: func() (*lsm.DB, error) { return rpDB(n, nil) },
			run: func(db *lsm.DB, b *testing.B) {
				for i := 0; i < b.N; i++ {
					absent := append(rpKey(i%n), 'x')
					if _, ok, _ := db.Get(absent); ok {
						b.Fatal("phantom key")
					}
				}
			},
		},
		{
			name: "scan16_cached",
			prep: func() (*lsm.DB, error) { return rpDB(n, core.NewBlockOnly(256<<20)) },
			run: func(db *lsm.DB, b *testing.B) {
				rng := rand.New(rand.NewSource(1))
				for i := 0; i < b.N; i++ {
					kvs, err := db.Scan(rpKey(rng.Intn(n-16)), 16)
					if err != nil || len(kvs) != 16 {
						b.Fatal("scan failed")
					}
				}
			},
		},
		{
			name: "iterate_full",
			prep: func() (*lsm.DB, error) { return rpDB(n, nil) },
			run: func(db *lsm.DB, b *testing.B) {
				for i := 0; i < b.N; i++ {
					it, err := db.NewIter()
					if err != nil {
						b.Fatal(err)
					}
					got := 0
					for ok := it.First(); ok; ok = it.Next() {
						got++
					}
					it.Close()
					if got != n {
						b.Fatalf("iterated %d of %d", got, n)
					}
				}
			},
		},
	}

	report := readPathReport{
		GeneratedAt: time.Now().UTC().Format(time.RFC3339),
		GoVersion:   runtime.Version(),
		Keys:        n,
		ValueSize:   len(rpVal(0)),
	}
	for _, bm := range benches {
		db, err := bm.prep()
		if err != nil {
			return fmt.Errorf("%s: %w", bm.name, err)
		}
		run := bm.run
		r := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			run(db, b)
		})
		db.Close()
		res := readPathResult{
			Name:        bm.name,
			NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
			BytesPerOp:  r.AllocedBytesPerOp(),
			AllocsPerOp: r.AllocsPerOp(),
			Iterations:  r.N,
		}
		report.Benchmarks = append(report.Benchmarks, res)
		fmt.Fprintf(os.Stderr, "  %-20s %12.1f ns/op %8d B/op %6d allocs/op  (n=%d)\n",
			res.Name, res.NsPerOp, res.BytesPerOp, res.AllocsPerOp, res.Iterations)
	}

	if !asJSON {
		return nil
	}
	buf, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	buf = append(buf, '\n')
	if err := os.WriteFile(outPath, buf, 0o644); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "wrote %s\n", outPath)
	return nil
}
