package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"runtime"
	"time"

	"adcache/internal/core"
	"adcache/internal/lsm"
	"adcache/internal/vfs"
)

// diskBenchRow is one codec's measurements in BENCH_DISK.json.
type diskBenchRow struct {
	Compression string `json:"compression"`

	// Physical footprint after flush+compact.
	SSTBytes     int64 `json:"sst_bytes"`
	OnDiskBytes  int64 `json:"on_disk_bytes"`
	SSTableCount int   `json:"sstable_count"`

	// Read experiment: uniform random gets against a cache smaller than the
	// working set.
	ReadOps        int     `json:"read_ops"`
	ReadNsPerOp    float64 `json:"read_ns_per_op"`
	CacheHitRate   float64 `json:"cache_hit_rate"`
	SSTReads       int64   `json:"sst_reads"`
	CacheCapacity  int64   `json:"cache_capacity_bytes"`
	CachePhysical  int64   `json:"cache_physical_bytes"`
	CacheLogical   int64   `json:"cache_logical_bytes"`
	BgIOStallNanos int64   `json:"bg_io_stall_nanos"`
}

// diskBenchReport is the BENCH_DISK.json schema: the same workload on a real
// directory through OSFS, once per codec, so the compression ratio and the
// physical-byte cache charging are reviewable in diffs.
type diskBenchReport struct {
	GeneratedAt   string         `json:"generated_at"`
	GoVersion     string         `json:"go_version"`
	Keys          int            `json:"keys"`
	ValueSize     int            `json:"value_size"`
	Rows          []diskBenchRow `json:"rows"`
	DiskReduction float64        `json:"disk_reduction"`  // 1 - flate/none on-disk bytes
	HitRateUplift float64        `json:"hit_rate_uplift"` // flate - none hit rate
	CacheInBudget bool           `json:"cache_in_budget"` // physical bytes <= capacity, both codecs
	BudgetStretch float64        `json:"budget_stretch"`  // flate logical/physical cached bytes
}

// diskValue is a semi-compressible 256-byte value: structured fields plus an
// incompressible random payload, the shape real records have. Fully random
// values would defeat any codec; fully repetitive ones would flatter it.
func diskValue(i int, rng *rand.Rand) []byte {
	var b bytes.Buffer
	fmt.Fprintf(&b, "user%08d;status=active;region=us-east-1;counter=%012d;payload=", i, i*7)
	random := make([]byte, 48)
	rng.Read(random)
	b.Write(random)
	for b.Len() < 256 {
		b.WriteString("........")
	}
	return b.Bytes()[:256]
}

// dirBytes sums the sizes of every file in dir on the real file system.
func dirBytes(dir string) (int64, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return 0, err
	}
	var total int64
	for _, e := range entries {
		info, err := e.Info()
		if err != nil {
			return 0, err
		}
		total += info.Size()
	}
	return total, nil
}

// runDiskCase builds a store on a real directory with the given codec,
// then runs the uniform-read experiment against a cache that cannot hold the
// working set.
func runDiskCase(n int, compression lsm.Compression) (diskBenchRow, error) {
	row := diskBenchRow{Compression: compression.String()}
	dir, err := os.MkdirTemp("", "adbench-disk-*")
	if err != nil {
		return row, err
	}
	defer os.RemoveAll(dir)
	dbDir := filepath.Join(dir, "db")

	const cacheBytes = 4 << 20
	strategy := core.NewBlockOnly(cacheBytes)
	opts := lsm.DefaultOptions(dbDir)
	opts.FS = vfs.NewOS()
	opts.Strategy = strategy
	opts.Compression = compression
	opts.MemTableSize = 4 << 20
	opts.TargetFileSize = 2 << 20
	opts.InlineCompaction = true
	opts.BgIOBytesPerSec = 256 << 20 // generous: observable stall counter, negligible slowdown
	db, err := lsm.Open(opts)
	if err != nil {
		return row, err
	}
	defer db.Close()

	rng := rand.New(rand.NewSource(7))
	for i := 0; i < n; i++ {
		if err := db.Put(rpKey(i), diskValue(i, rng)); err != nil {
			return row, err
		}
	}
	if err := db.Flush(); err != nil {
		return row, err
	}
	if err := db.Compact(); err != nil {
		return row, err
	}

	m := db.Metrics()
	row.SSTBytes = int64(m.TotalBytes)
	row.SSTableCount = m.SortedRuns
	row.BgIOStallNanos = m.BgIOStallNanos
	if row.OnDiskBytes, err = dirBytes(dbDir); err != nil {
		return row, err
	}

	// Read experiment: uniform gets over the whole keyspace. The fixed cache
	// budget holds a larger fraction of the (physically charged) compressed
	// blocks, so the codec's hit-rate effect is directly visible.
	readRng := rand.New(rand.NewSource(11))
	ops := n
	start := time.Now()
	for i := 0; i < ops; i++ {
		if _, ok, err := db.Get(rpKey(readRng.Intn(n))); err != nil || !ok {
			return row, fmt.Errorf("get failed: ok=%v err=%v", ok, err)
		}
	}
	elapsed := time.Since(start)

	c := strategy.Counters()
	row.ReadOps = ops
	row.ReadNsPerOp = float64(elapsed.Nanoseconds()) / float64(ops)
	if total := c.BlockHits + c.BlockMisses; total > 0 {
		row.CacheHitRate = float64(c.BlockHits) / float64(total)
	}
	row.SSTReads = db.QueryBlockReads()
	row.CacheCapacity = c.BlockCapacity
	row.CachePhysical = c.BlockUsed
	row.CacheLogical = c.BlockLogicalUsed
	return row, nil
}

// runDiskBench runs the on-disk experiment for both codecs and prints a
// table or writes BENCH_DISK.json.
func runDiskBench(n int, asJSON bool, outPath string) error {
	report := diskBenchReport{
		GeneratedAt: time.Now().UTC().Format(time.RFC3339),
		GoVersion:   runtime.Version(),
		Keys:        n,
		ValueSize:   256,
	}
	var none, flate diskBenchRow
	var err error
	if none, err = runDiskCase(n, lsm.CompressionNone); err != nil {
		return fmt.Errorf("none: %w", err)
	}
	if flate, err = runDiskCase(n, lsm.CompressionFlate); err != nil {
		return fmt.Errorf("flate: %w", err)
	}
	report.Rows = []diskBenchRow{none, flate}
	if none.OnDiskBytes > 0 {
		report.DiskReduction = 1 - float64(flate.OnDiskBytes)/float64(none.OnDiskBytes)
	}
	report.HitRateUplift = flate.CacheHitRate - none.CacheHitRate
	report.CacheInBudget = none.CachePhysical <= none.CacheCapacity &&
		flate.CachePhysical <= flate.CacheCapacity
	if flate.CachePhysical > 0 {
		report.BudgetStretch = float64(flate.CacheLogical) / float64(flate.CachePhysical)
	}

	for _, r := range report.Rows {
		fmt.Fprintf(os.Stderr,
			"  %-6s %8.1f MiB on disk  %8.1f MiB sst  hit %.3f  %10.1f ns/get  cache %5.1f/%5.1f MiB phys (%.1f MiB logical)\n",
			r.Compression,
			float64(r.OnDiskBytes)/(1<<20), float64(r.SSTBytes)/(1<<20),
			r.CacheHitRate, r.ReadNsPerOp,
			float64(r.CachePhysical)/(1<<20), float64(r.CacheCapacity)/(1<<20),
			float64(r.CacheLogical)/(1<<20))
	}
	fmt.Fprintf(os.Stderr, "  disk reduction %.1f%%  hit-rate uplift %+.3f  budget stretch %.2fx  in budget: %v\n",
		report.DiskReduction*100, report.HitRateUplift, report.BudgetStretch, report.CacheInBudget)

	if report.DiskReduction < 0.25 {
		return fmt.Errorf("flate reduced on-disk bytes by only %.1f%% (< 25%%)", report.DiskReduction*100)
	}
	if !report.CacheInBudget {
		return fmt.Errorf("block cache exceeded its physical byte budget")
	}

	if !asJSON {
		return nil
	}
	buf, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	buf = append(buf, '\n')
	if err := os.WriteFile(outPath, buf, 0o644); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "wrote %s\n", outPath)
	return nil
}
