package main

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"net"
	"net/http"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"adcache"
	"adcache/client"
	"adcache/internal/lsm"
	"adcache/internal/metrics"
	"adcache/internal/server"
	"adcache/internal/vfs"
)

// The wire benchmark measures the data plane itself: one node on a real
// on-disk store (OSFS, real fsyncs, no simulated service time), a
// scan-heavy mixed workload driven through the public client over real
// loopback HTTP, and three configurations of the same server:
//
//	json          the default JSON framing, per-request commits
//	bin           the binary wire codec (WithBinary client)
//	bin+coalesce  the codec plus server-side write coalescing
//
// The workload is deliberately scan-heavy (50% scans of 64 entries at
// ~512B values) because bulk entry transfer is where the JSON encode/
// escape/decode tax is paid per byte; gets and single puts carry raw
// bodies either way and measure the fixed per-request overhead, and
// batches exercise the body codec. The committed BENCH_WIRE.json is the
// artifact; the run fails if the codec+coalescing configuration does
// not sustain at least 2x the JSON throughput at equal-or-better read
// p99, or if any configuration surfaces a single client-visible error.

// wirePhase is one configuration's measured window.
type wirePhase struct {
	Ops            int64   `json:"ops"`
	Seconds        float64 `json:"seconds"`
	QPS            float64 `json:"qps"`
	ReadP50Ms      float64 `json:"read_p50_ms"`
	ReadP99Ms      float64 `json:"read_p99_ms"`
	WriteP99Ms     float64 `json:"write_p99_ms"`
	EntriesScanned int64   `json:"entries_scanned"`
	Errors         int64   `json:"errors"`
}

// wireConfig names one measured server/client configuration.
type wireConfig struct {
	Name     string    `json:"name"`
	Binary   bool      `json:"binary"`
	Coalesce bool      `json:"coalesce"`
	Phase    wirePhase `json:"phase"`
}

// wireBenchOut is the committed BENCH_WIRE.json artifact.
type wireBenchOut struct {
	Keys      int     `json:"keys"`
	ValueSize int     `json:"value_size"`
	Workers   int     `json:"workers"`
	Ops       int     `json:"ops_per_config"`
	ScanN     int     `json:"scan_n"`
	BatchN    int     `json:"batch_n"`
	MixScan   float64 `json:"mix_scan"`
	MixGet    float64 `json:"mix_get"`
	MixPut    float64 `json:"mix_put"`
	MixBatch  float64 `json:"mix_batch"`

	Configs []wireConfig `json:"configs"`

	SpeedupQPS    float64 `json:"speedup_qps_bin_coalesce_vs_json"`
	ReadP99Ratio  float64 `json:"read_p99_ratio_bin_coalesce_vs_json"`
	BinSpeedupQPS float64 `json:"speedup_qps_bin_vs_json"`
}

func runWireBench(nKeys, nOps int, asJSON bool, path string) error {
	const (
		workers    = 16
		valueSize  = 512
		scanN      = 64
		batchN     = 8
		mixScan    = 0.50
		mixGet     = 0.20
		mixPut     = 0.10 // remainder (0.20) is batch
		coalWin    = 200 * time.Microsecond
		coalOps    = 128
		wireRounds = 3
	)
	if nKeys <= 0 {
		nKeys = 20_000
	}
	if nOps <= 0 {
		nOps = 8_000
	}

	val := make([]byte, valueSize)
	for i := range val {
		val[i] = byte('a' + i%26)
	}
	key := func(i int) []byte { return []byte(fmt.Sprintf("user%08d", i)) }

	// setup stands up one fresh on-disk node (store + server + client),
	// preloads the key space, and returns the pieces plus a teardown.
	type wireNode struct {
		db *adcache.DB
		cl *client.Client
	}
	setup := func(binary, coalesce bool) (*wireNode, func(), error) {
		dir, err := os.MkdirTemp("", "adbench-wire-*")
		if err != nil {
			return nil, nil, err
		}
		cleanup := []func(){func() { os.RemoveAll(dir) }}
		teardown := func() {
			for i := len(cleanup) - 1; i >= 0; i-- {
				cleanup[i]()
			}
		}
		// A memtable big enough to hold the whole run's writes: every
		// write still pays the real WAL append + fsync (that is the cost
		// coalescing amortizes), but no measured window randomly absorbs
		// a flush or compaction — on a single-core runner that background
		// work is pure cross-configuration noise.
		lsmOpts := lsm.DefaultOptions(dir)
		lsmOpts.MemTableSize = 256 << 20
		// The plain block-LRU strategy: the bench compares wire/commit
		// configurations, and the adaptive strategy's online tuning both
		// costs CPU and varies run to run — a fixed strategy keeps the
		// cache layer identical and deterministic across configurations.
		db, err := adcache.Open(adcache.Options{
			Dir:        dir,
			FS:         vfs.NewOS(),
			CacheBytes: 64 << 20,
			Strategy:   adcache.StrategyBlock,
			LSM:        &lsmOpts,
		})
		if err != nil {
			teardown()
			return nil, nil, err
		}
		cleanup = append(cleanup, func() { db.Close() })

		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			teardown()
			return nil, nil, err
		}
		opts := []server.Option{}
		if coalesce {
			opts = append(opts, server.WithWriteCoalescing(coalWin, coalOps))
		}
		srv := &http.Server{Handler: server.New(db, opts...)}
		go srv.Serve(ln)
		cleanup = append(cleanup, func() { srv.Close() })

		copts := []client.Option{}
		if binary {
			copts = append(copts, client.WithBinary())
		}
		cl, err := client.New([]string{ln.Addr().String()}, copts...)
		if err != nil {
			teardown()
			return nil, nil, err
		}
		cleanup = append(cleanup, cl.Close)

		// Preload the whole key space so gets and scans hit real data,
		// then flush so no measured window absorbs the preload's pending
		// memtable work at an arbitrary point.
		for off := 0; off < nKeys; off += 256 {
			end := off + 256
			if end > nKeys {
				end = nKeys
			}
			ops := make([]client.Op, 0, end-off)
			for i := off; i < end; i++ {
				ops = append(ops, client.Op{Kind: client.OpPut, Key: key(i), Value: val})
			}
			if err := cl.Batch(ops); err != nil {
				teardown()
				return nil, nil, err
			}
		}
		if err := db.Flush(); err != nil {
			teardown()
			return nil, nil, err
		}
		return &wireNode{db: db, cl: cl}, teardown, nil
	}

	// window drives ops mixed ops through cl; measured windows record
	// latencies, warmup windows discard them.
	window := func(cl *client.Client, ops int, readH, writeH *metrics.Histogram, scanned, errs *atomic.Int64) time.Duration {
		var done atomic.Int64
		var wg sync.WaitGroup
		t0 := time.Now()
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(seed int64) {
				defer wg.Done()
				rng := rand.New(rand.NewSource(seed))
				for done.Add(1) <= int64(ops) {
					roll := rng.Float64()
					op0 := time.Now()
					switch {
					case roll < mixScan:
						kvs, err := cl.Scan(key(rng.Intn(nKeys)), nil, scanN)
						readH.ObserveSince(op0)
						scanned.Add(int64(len(kvs)))
						if err != nil {
							errs.Add(1)
						}
					case roll < mixScan+mixGet:
						_, _, err := cl.Get(key(rng.Intn(nKeys)))
						readH.ObserveSince(op0)
						if err != nil {
							errs.Add(1)
						}
					case roll < mixScan+mixGet+mixPut:
						err := cl.Put(key(rng.Intn(nKeys)), val)
						writeH.ObserveSince(op0)
						if err != nil {
							errs.Add(1)
						}
					default:
						ops := make([]client.Op, batchN)
						for i := range ops {
							ops[i] = client.Op{Kind: client.OpPut, Key: key(rng.Intn(nKeys)), Value: val}
						}
						err := cl.Batch(ops)
						writeH.ObserveSince(op0)
						if err != nil {
							errs.Add(1)
						}
					}
				}
			}(int64(w) + 1)
		}
		wg.Wait()
		return time.Since(t0)
	}

	fmt.Printf("wire bench: 1 node on OSFS, %d keys × %dB, %d workers, %d ops × %d rounds/config (scan%.0f%%·n%d get%.0f%% put%.0f%% batch%.0f%%·%d)\n",
		nKeys, valueSize, workers, nOps, wireRounds, mixScan*100, scanN, mixGet*100, mixPut*100,
		(1-mixScan-mixGet-mixPut)*100, batchN)

	configs := []wireConfig{
		{Name: "json"},
		{Name: "bin", Binary: true},
		{Name: "bin+coalesce", Binary: true, Coalesce: true},
	}

	// Every measured window gets a fresh node: set up, warm up, measure
	// once, tear down. Reusing a node across windows is not fair — the
	// oversized memtable accumulates one stale version per overwrite, so
	// scans slow down a few percent every window a node survives — and a
	// node kept alive while another is measured taxes it with background
	// CPU on a single-core runner. Rounds are round-major
	// (json, bin, bin+coalesce, repeat) so a multi-second noise burst
	// (CPU steal, disk stall) lands across configurations instead of
	// inside one configuration's whole set. Noise is strictly additive,
	// so each configuration keeps its fastest window as the estimate of
	// sustainable throughput. Errors from every window count — the
	// zero-error gate has no retry.
	for round := 0; round < wireRounds; round++ {
		for i := range configs {
			c := &configs[i]
			node, teardown, err := setup(c.Binary, c.Coalesce)
			if err != nil {
				return fmt.Errorf("wire bench %s: %w", c.Name, err)
			}
			// Warmup: connections dialed, caches touched, pools primed.
			var wscanned, werrs atomic.Int64
			window(node.cl, nOps/4, &metrics.Histogram{}, &metrics.Histogram{}, &wscanned, &werrs)
			readH, writeH := &metrics.Histogram{}, &metrics.Histogram{}
			var scanned, errs atomic.Int64
			elapsed := window(node.cl, nOps, readH, writeH, &scanned, &errs)
			teardown()
			r, wr := readH.Snapshot(), writeH.Snapshot()
			p := wirePhase{
				Ops:            r.Count + wr.Count,
				Seconds:        elapsed.Seconds(),
				QPS:            float64(r.Count+wr.Count) / elapsed.Seconds(),
				ReadP50Ms:      r.Quantile(0.50) / 1e6,
				ReadP99Ms:      r.Quantile(0.99) / 1e6,
				WriteP99Ms:     wr.Quantile(0.99) / 1e6,
				EntriesScanned: scanned.Load(),
				Errors:         errs.Load() + werrs.Load(),
			}
			fmt.Printf("  round %d %-12s qps=%6.0f read p50=%.2fms p99=%.2fms errors=%d\n",
				round+1, c.Name, p.QPS, p.ReadP50Ms, p.ReadP99Ms, p.Errors)
			errors := c.Phase.Errors + p.Errors
			if p.QPS > c.Phase.QPS {
				c.Phase = p
			}
			c.Phase.Errors = errors
		}
	}
	for _, c := range configs {
		fmt.Printf("  %-12s best qps=%6.0f read p50=%.2fms p99=%.2fms write p99=%.2fms scanned=%d errors=%d\n",
			c.Name, c.Phase.QPS, c.Phase.ReadP50Ms, c.Phase.ReadP99Ms, c.Phase.WriteP99Ms,
			c.Phase.EntriesScanned, c.Phase.Errors)
	}

	jsonP, binP, bcP := configs[0].Phase, configs[1].Phase, configs[2].Phase
	speedup := bcP.QPS / jsonP.QPS
	p99Ratio := 0.0
	if jsonP.ReadP99Ms > 0 {
		p99Ratio = bcP.ReadP99Ms / jsonP.ReadP99Ms
	}
	fmt.Printf("  bin+coalesce vs json: %.2fx qps, read p99 %.2fms vs %.2fms (%.2fx)\n",
		speedup, bcP.ReadP99Ms, jsonP.ReadP99Ms, p99Ratio)

	if n := jsonP.Errors + binP.Errors + bcP.Errors; n > 0 {
		return fmt.Errorf("wire bench: %d client-visible errors", n)
	}
	if speedup < 2.0 {
		return fmt.Errorf("wire bench: bin+coalesce %.0f qps is only %.2fx json's %.0f qps (want >= 2x)",
			bcP.QPS, speedup, jsonP.QPS)
	}
	if bcP.ReadP99Ms > jsonP.ReadP99Ms {
		return fmt.Errorf("wire bench: bin+coalesce read p99 %.2fms worse than json %.2fms",
			bcP.ReadP99Ms, jsonP.ReadP99Ms)
	}

	if asJSON {
		out := wireBenchOut{
			Keys: nKeys, ValueSize: valueSize, Workers: workers, Ops: nOps,
			ScanN: scanN, BatchN: batchN,
			MixScan: mixScan, MixGet: mixGet, MixPut: mixPut,
			MixBatch:      1 - mixScan - mixGet - mixPut,
			Configs:       configs,
			SpeedupQPS:    speedup,
			ReadP99Ratio:  p99Ratio,
			BinSpeedupQPS: binP.QPS / jsonP.QPS,
		}
		b, err := json.MarshalIndent(out, "", "  ")
		if err != nil {
			return err
		}
		b = append(b, '\n')
		if err := os.WriteFile(path, b, 0o644); err != nil {
			return err
		}
		fmt.Printf("  wrote %s\n", path)
	}
	return nil
}
