package main

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"sort"
	"time"

	"adcache"
	"adcache/internal/core"
	"adcache/internal/lsm"
	"adcache/internal/workload"
)

// Simulated-time I/O model for the memory benchmark. Runs use
// InlineCompaction + SyncTuning so the operation stream is deterministic;
// throughput is then scored in simulated time rather than wall time, making
// the committed artifact machine-speed independent: every SST block a query
// reads costs memReadCostNs, every byte of flush/compaction I/O costs the
// same per-byte rate (read+write charged separately via the engine's
// cumulative counters), and every operation pays a fixed CPU cost.
const (
	memReadCostNs = 100_000 // one 4 KiB SST block read (SSD-class)
	memOpCostNs   = 2_000   // per-operation CPU cost floor
)

// memPhaseRow is one (configuration, phase) cell in BENCH_MEMORY.json.
type memPhaseRow struct {
	Phase string `json:"phase"`
	Ops   int    `json:"ops"`
	// SimQPS is ops / simulated phase time (see the cost model above).
	SimQPS float64 `json:"sim_qps"`
	// QueryBlockReads and BgIOBytes are the phase's deltas of the two
	// simulated cost drivers.
	QueryBlockReads int64 `json:"query_block_reads"`
	BgIOBytes       int64 `json:"bg_io_bytes"`
	// GetP99SimNs is the 99th-percentile simulated per-Get cost (point
	// lookups only; 0 in phases that issue no gets).
	GetP99SimNs int64 `json:"get_p99_sim_ns"`
	// MemRatio and the budget ledger at phase end show where the arbiter
	// (or the static split) has the memory parked.
	MemRatio float64       `json:"mem_ratio"`
	Budgets  []core.Budget `json:"budgets,omitempty"`
}

// memConfigRow is one configuration's full run.
type memConfigRow struct {
	Name string `json:"name"`
	// Unified marks the RL-arbitrated configuration; static rows pin
	// MemFrac of the budget in the memtable and hand the rest to the
	// (non-arbitrating) adaptive cache.
	Unified bool          `json:"unified"`
	MemFrac float64       `json:"mem_frac,omitempty"`
	Phases  []memPhaseRow `json:"phases"`
	// AggregateSimQPS is total ops / total simulated time across phases —
	// the headline comparison metric.
	AggregateSimQPS float64 `json:"aggregate_sim_qps"`
	WriteAmp        float64 `json:"write_amp"`
	Errors          int     `json:"errors"`
}

// memBenchReport is the BENCH_MEMORY.json schema.
type memBenchReport struct {
	GeneratedAt string         `json:"generated_at"`
	GoVersion   string         `json:"go_version"`
	Keys        int            `json:"keys"`
	ValueSize   int            `json:"value_size"`
	OpsPerPhase int            `json:"ops_per_phase"`
	BudgetBytes int64          `json:"budget_bytes"`
	ReadCostNs  int64          `json:"read_cost_ns"`
	OpCostNs    int64          `json:"op_cost_ns"`
	Rows        []memConfigRow `json:"rows"`
	// Gate results (enforced at artifact scale, ops_per_phase >= 20000).
	UnifiedAggregateSimQPS float64 `json:"unified_aggregate_sim_qps"`
	BestStaticSimQPS       float64 `json:"best_static_sim_qps"`
	BestStaticName         string  `json:"best_static_name"`
	SpeedupVsBestStatic    float64 `json:"speedup_vs_best_static"`
	UnifiedReadP99SimNs    int64   `json:"unified_read_p99_sim_ns"`
	BestStaticReadP99SimNs int64   `json:"best_static_read_p99_sim_ns"`
	GatesEnforced          bool    `json:"gates_enforced"`
}

// memBgIOBytes sums the engine's cumulative background I/O: bytes written
// by flushes, read by compactions, and written by compactions.
func memBgIOBytes(m lsm.Metrics) int64 {
	return m.FlushedBytes + m.CompactedBytes + m.CompactionOutBytes
}

// runMemCase drives the three-phase schedule against one configuration.
// budget is the total memory budget B; for the unified row the arbiter
// moves B across memtables and caches, for static rows memFrac*B is pinned
// in the memtable and (1-memFrac)*B given to the caches.
func runMemCase(name string, unified bool, memFrac float64, keys, valueSize, opsPerPhase int, budget int64) (memConfigRow, error) {
	row := memConfigRow{Name: name, Unified: unified, MemFrac: memFrac}

	lsmOpts := lsm.DefaultOptions("")
	lsmOpts.InlineCompaction = true
	lsmOpts.TargetFileSize = 1 << 20
	cfg := core.Config{SyncTuning: true, PretrainSynthetic: true}
	cacheBytes := budget
	if unified {
		// The arbiter owns the whole budget; the static threshold is
		// irrelevant once Bind pushes the first allocation.
		lsmOpts.MemTableSize = budget / 4
	} else {
		mem := int64(float64(budget) * memFrac)
		lsmOpts.MemTableSize = mem
		cacheBytes = budget - mem
	}

	db, err := adcache.Open(adcache.Options{
		CacheBytes:    cacheBytes,
		Strategy:      adcache.StrategyAdCache,
		UnifiedMemory: unified,
		AdCache:       cfg,
		LSM:           &lsmOpts,
	})
	if err != nil {
		return row, err
	}
	defer db.Close()

	gen := workload.NewGenerator(workload.Config{NumKeys: keys, ValueSize: valueSize, Seed: 1})
	for i := 0; i < keys; i++ {
		if err := db.Put(workload.Key(i), gen.InitialValue(i)); err != nil {
			return row, err
		}
	}
	if err := db.Flush(); err != nil {
		return row, err
	}

	sched := workload.NewSchedule(gen, workload.MemoryPhases(), opsPerPhase)
	var (
		cur       memPhaseRow
		getCosts  []int64
		baseReads = db.SSTReads()
		baseBg    = memBgIOBytes(db.LSM().Metrics())
	)
	flush := func() {
		if cur.Ops == 0 {
			return
		}
		reads := db.SSTReads()
		bg := memBgIOBytes(db.LSM().Metrics())
		cur.QueryBlockReads = reads - baseReads
		cur.BgIOBytes = bg - baseBg
		baseReads, baseBg = reads, bg
		simNs := cur.QueryBlockReads*memReadCostNs +
			cur.BgIOBytes*memReadCostNs/int64(lsmOpts.BlockSize) +
			int64(cur.Ops)*memOpCostNs
		cur.SimQPS = float64(cur.Ops) / (float64(simNs) / 1e9)
		if len(getCosts) > 0 {
			sort.Slice(getCosts, func(i, j int) bool { return getCosts[i] < getCosts[j] })
			cur.GetP99SimNs = getCosts[(len(getCosts)-1)*99/100]
		}
		m := db.Metrics()
		if m.AdCache != nil {
			cur.MemRatio = m.AdCache.Params.MemRatio
			cur.Budgets = m.AdCache.Budgets
		}
		row.Phases = append(row.Phases, cur)
	}
	for {
		op, phase, ok := sched.Next()
		if !ok {
			break
		}
		if cur.Phase != phase.Name {
			flush()
			cur = memPhaseRow{Phase: phase.Name}
			getCosts = getCosts[:0]
		}
		cur.Ops++
		switch op.Kind {
		case workload.OpGet:
			before := db.SSTReads()
			_, _, err = db.Get(op.Key)
			getCosts = append(getCosts, memOpCostNs+(db.SSTReads()-before)*memReadCostNs)
		case workload.OpScan:
			_, err = db.Scan(op.Key, op.ScanLen)
		default:
			err = db.Put(op.Key, op.Value)
		}
		if err != nil {
			row.Errors++
			err = nil
		}
	}
	flush()

	var totalOps int
	var totalSimNs float64
	for _, p := range row.Phases {
		totalOps += p.Ops
		totalSimNs += float64(p.Ops) / p.SimQPS * 1e9
	}
	if totalSimNs > 0 {
		row.AggregateSimQPS = float64(totalOps) / (totalSimNs / 1e9)
	}
	row.WriteAmp = db.Metrics().Engine.WriteAmplification()
	return row, nil
}

// phaseP99 extracts a configuration's read-heavy-phase Get p99.
func phaseP99(row memConfigRow, phase string) int64 {
	for _, p := range row.Phases {
		if p.Phase == phase {
			return p.GetP99SimNs
		}
	}
	return 0
}

// runMemBench runs the unified-memory experiment: the RL-arbitrated
// configuration against a grid of static memtable/cache splits of the same
// total budget, on the write-heavy → read-heavy → scan-heavy schedule.
// At artifact scale (>= 20000 ops/phase) it hard-fails unless unified beats
// every static split on aggregate simulated-time throughput with read-heavy
// Get p99 no worse than the best static split (5% tolerance) and zero
// errors; below that scale (CI smoke) only the zero-error gate applies.
func runMemBench(keys, valueSize, opsPerPhase int, asJSON bool, outPath string) error {
	if keys <= 0 {
		keys = 30_000
	}
	if valueSize <= 0 {
		valueSize = 400
	}
	if opsPerPhase <= 0 {
		opsPerPhase = 25_000
	}
	budget := int64(keys) * int64(valueSize) / 2

	report := memBenchReport{
		GeneratedAt: time.Now().UTC().Format(time.RFC3339),
		GoVersion:   runtime.Version(),
		Keys:        keys,
		ValueSize:   valueSize,
		OpsPerPhase: opsPerPhase,
		BudgetBytes: budget,
		ReadCostNs:  memReadCostNs,
		OpCostNs:    memOpCostNs,
	}

	cases := []struct {
		name    string
		unified bool
		frac    float64
	}{
		{"unified", true, 0},
		{"static-mem05", false, 0.05},
		{"static-mem15", false, 0.15},
		{"static-mem30", false, 0.30},
		{"static-mem50", false, 0.50},
	}
	for _, c := range cases {
		start := time.Now()
		row, err := runMemCase(c.name, c.unified, c.frac, keys, valueSize, opsPerPhase, budget)
		if err != nil {
			return fmt.Errorf("%s: %w", c.name, err)
		}
		report.Rows = append(report.Rows, row)
		fmt.Fprintf(os.Stderr, "  %-14s agg %9.0f sim-qps  wa %.2f  errors %d  (%s)\n",
			row.Name, row.AggregateSimQPS, row.WriteAmp, row.Errors, time.Since(start).Round(time.Millisecond))
		for _, p := range row.Phases {
			fmt.Fprintf(os.Stderr, "      %-12s %9.0f sim-qps  reads %8d  bgMiB %7.1f  getP99 %7.2fms  mem %.2f\n",
				p.Phase, p.SimQPS, p.QueryBlockReads, float64(p.BgIOBytes)/(1<<20),
				float64(p.GetP99SimNs)/1e6, p.MemRatio)
		}
	}

	unified := report.Rows[0]
	report.UnifiedAggregateSimQPS = unified.AggregateSimQPS
	report.UnifiedReadP99SimNs = phaseP99(unified, "read-heavy")
	var errors int
	for _, r := range report.Rows {
		errors += r.Errors
	}
	for _, r := range report.Rows[1:] {
		if r.AggregateSimQPS > report.BestStaticSimQPS {
			report.BestStaticSimQPS = r.AggregateSimQPS
			report.BestStaticName = r.Name
		}
		p99 := phaseP99(r, "read-heavy")
		if report.BestStaticReadP99SimNs == 0 || p99 < report.BestStaticReadP99SimNs {
			report.BestStaticReadP99SimNs = p99
		}
	}
	if report.BestStaticSimQPS > 0 {
		report.SpeedupVsBestStatic = report.UnifiedAggregateSimQPS / report.BestStaticSimQPS
	}
	report.GatesEnforced = opsPerPhase >= 20_000

	fmt.Fprintf(os.Stderr, "  unified %.0f vs best static %.0f (%s): %.2fx  p99 %0.2fms vs %0.2fms  errors %d\n",
		report.UnifiedAggregateSimQPS, report.BestStaticSimQPS, report.BestStaticName,
		report.SpeedupVsBestStatic,
		float64(report.UnifiedReadP99SimNs)/1e6, float64(report.BestStaticReadP99SimNs)/1e6, errors)

	if asJSON {
		buf, err := json.MarshalIndent(report, "", "  ")
		if err != nil {
			return err
		}
		buf = append(buf, '\n')
		if err := os.WriteFile(outPath, buf, 0o644); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "wrote %s\n", outPath)
	}

	if errors > 0 {
		return fmt.Errorf("%d operation errors", errors)
	}
	if report.GatesEnforced {
		for _, r := range report.Rows[1:] {
			if report.UnifiedAggregateSimQPS <= r.AggregateSimQPS {
				return fmt.Errorf("unified aggregate sim-qps %.0f does not beat %s (%.0f)",
					report.UnifiedAggregateSimQPS, r.Name, r.AggregateSimQPS)
			}
		}
		if float64(report.UnifiedReadP99SimNs) > float64(report.BestStaticReadP99SimNs)*1.05 {
			return fmt.Errorf("unified read-heavy get p99 %dns worse than best static %dns (+5%% tolerance)",
				report.UnifiedReadP99SimNs, report.BestStaticReadP99SimNs)
		}
	}
	return nil
}
