// Command adbench regenerates the paper's tables and figures against the
// from-scratch LSM engine and all six cache strategies.
//
// Usage:
//
//	adbench -exp fig7                 # one experiment at default scale
//	adbench -exp all -scale quick     # everything, small
//	adbench -exp fig8 -keys 100000 -ops 200000
//
// Experiments: fig1 fig6 fig7 fig8 (includes Table 4) fig9 fig10 fig11a
// fig11b table2 all.
//
// With -strategy, adbench instead runs a single latency benchmark against
// that cache strategy and prints the engine's latency histogram summary
// (Get/Scan/commit/flush/compaction percentiles from the metrics registry):
//
//	adbench -strategy adcache -scale quick
//
// With -readpath, adbench runs the read-path micro-benchmarks (uncached,
// cached and bloom-negative Get, short cached scans, full iteration) and,
// with -json, writes ns/op, B/op and allocs/op to -out (default
// BENCH_READPATH.json) — the committed allocation-trajectory artifact:
//
//	adbench -readpath -json
//
// With -compaction, adbench runs the compaction benchmark — the same
// random-order write-heavy load with serial and parallel subcompactions —
// and, with -json, writes throughput and stall figures to -out (default
// BENCH_COMPACTION.json):
//
//	adbench -compaction -json
//
// With -disk, adbench runs the on-disk persistence benchmark on a real
// temporary directory through OSFS — the same workload once per block codec
// (none, flate) — and, with -json, writes the compression ratio, cache
// hit-rate uplift and physical-byte budget check to -out (default
// BENCH_DISK.json):
//
//	adbench -disk -json
//
// With -cluster, adbench stands up a 3-node sharded cluster in-process —
// every hot hash slot deliberately placed on one node — measures fleet
// read p50/p99 through the public client, lets the latency-driven shard
// manager rebalance under live load, and measures again. With -json it
// writes the before/after phases, the move count and the p99 improvement
// to -out (default BENCH_CLUSTER.json); it exits non-zero if any
// user-visible client error occurs or the rebalance does not improve
// fleet read p99:
//
//	adbench -cluster -json
//
// With -wire, adbench benchmarks the data plane itself: a single node
// on a real on-disk store behind real loopback HTTP, a scan-heavy mixed
// workload through the public client, measured under the default JSON
// framing, the binary wire codec, and the codec plus server-side write
// coalescing. With -json it writes the three phases and the speedup to
// -out (default BENCH_WIRE.json); it exits non-zero unless the
// codec+coalescing configuration sustains at least 2x the JSON
// throughput at equal-or-better read p99 with zero client errors:
//
//	adbench -wire -json
//
// With -memory, adbench runs the unified-memory experiment: the
// RL-arbitrated single budget (memtables + block cache + range cache)
// against a grid of static memtable/cache splits of the same total budget,
// over a write-heavy → read-heavy → scan-heavy phase schedule, scored in
// simulated time (deterministic InlineCompaction + SyncTuning runs). With
// -json it writes per-phase throughput, budget trajectories and the gate
// results to -out (default BENCH_MEMORY.json); at artifact scale it exits
// non-zero unless unified beats every static split on phase-aggregate
// simulated-time throughput with read-heavy Get p99 no worse than the best
// static split and zero errors:
//
//	adbench -memory -json
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"adcache"
	"adcache/internal/harness"
	"adcache/internal/workload"
)

func main() {
	var (
		exp      = flag.String("exp", "all", "experiment: fig1|fig6|fig7|fig8|fig9|fig10|fig11a|fig11b|table2|ablations|scaling|all")
		scale    = flag.String("scale", "default", "scale preset: quick|default")
		keys     = flag.Int("keys", 0, "override key-space size")
		values   = flag.Int("values", 0, "override value size in bytes")
		ops      = flag.Int("ops", 0, "override measured ops (and warm-up ops)")
		seed     = flag.Int64("seed", 0, "override workload seed")
		csvDir   = flag.String("csv", "", "also write raw results as CSV into this directory")
		strategy = flag.String("strategy", "", "run a latency benchmark with this strategy (adcache|block|kv|range|lecar|cacheus|none) and print the histogram table")
		readpath = flag.Bool("readpath", false, "run the read-path micro-benchmarks (ns/op, B/op, allocs/op)")
		compact  = flag.Bool("compaction", false, "run the compaction benchmark (serial vs parallel subcompactions)")
		disk     = flag.Bool("disk", false, "run the on-disk persistence benchmark (none vs flate block compression on OSFS)")
		clusterB = flag.Bool("cluster", false, "run the 3-node cluster benchmark (fleet p99 before/after a latency-driven rebalance)")
		wireB    = flag.Bool("wire", false, "run the data-plane benchmark (JSON vs binary codec vs codec+write-coalescing over real HTTP)")
		memB     = flag.Bool("memory", false, "run the unified-memory benchmark (RL-arbitrated budget vs static memtable/cache splits over a three-phase schedule)")
		chaosB   = flag.Bool("chaos", false, "run the chaos benchmark (3-node fleet + manager under a seeded fault timeline, held to hard resilience gates)")
		asJSON   = flag.Bool("json", false, "with -readpath, -compaction, -disk, -cluster, -wire, -memory or -chaos, write results as JSON")
		out      = flag.String("out", "", "with -json, output file (default BENCH_READPATH.json / BENCH_COMPACTION.json / BENCH_DISK.json / BENCH_CLUSTER.json / BENCH_WIRE.json / BENCH_MEMORY.json / BENCH_CHAOS.json)")
	)
	flag.Parse()

	if *chaosB {
		path := *out
		if path == "" {
			path = "BENCH_CHAOS.json"
		}
		if err := runChaosBench(*seed, *asJSON, path); err != nil {
			fmt.Fprintln(os.Stderr, "adbench:", err)
			os.Exit(1)
		}
		return
	}

	if *memB {
		path := *out
		if path == "" {
			path = "BENCH_MEMORY.json"
		}
		if err := runMemBench(*keys, *values, *ops, *asJSON, path); err != nil {
			fmt.Fprintln(os.Stderr, "adbench:", err)
			os.Exit(1)
		}
		return
	}

	if *wireB {
		path := *out
		if path == "" {
			path = "BENCH_WIRE.json"
		}
		if err := runWireBench(*keys, *ops, *asJSON, path); err != nil {
			fmt.Fprintln(os.Stderr, "adbench:", err)
			os.Exit(1)
		}
		return
	}

	if *clusterB {
		path := *out
		if path == "" {
			path = "BENCH_CLUSTER.json"
		}
		if err := runClusterBench(*keys, *ops, *asJSON, path); err != nil {
			fmt.Fprintln(os.Stderr, "adbench:", err)
			os.Exit(1)
		}
		return
	}

	if *compact {
		n := 200_000
		if *keys > 0 {
			n = *keys
		}
		path := *out
		if path == "" {
			path = "BENCH_COMPACTION.json"
		}
		if err := runCompactionBench(n, *asJSON, path); err != nil {
			fmt.Fprintln(os.Stderr, "adbench:", err)
			os.Exit(1)
		}
		return
	}

	if *disk {
		n := 100_000
		if *keys > 0 {
			n = *keys
		}
		path := *out
		if path == "" {
			path = "BENCH_DISK.json"
		}
		if err := runDiskBench(n, *asJSON, path); err != nil {
			fmt.Fprintln(os.Stderr, "adbench:", err)
			os.Exit(1)
		}
		return
	}

	if *readpath {
		n := 50_000
		if *keys > 0 {
			n = *keys
		}
		path := *out
		if path == "" {
			path = "BENCH_READPATH.json"
		}
		if err := runReadPath(n, *asJSON, path); err != nil {
			fmt.Fprintln(os.Stderr, "adbench:", err)
			os.Exit(1)
		}
		return
	}

	sc := harness.DefaultScale()
	if *scale == "quick" {
		sc = harness.QuickScale()
	}
	if *keys > 0 {
		sc.NumKeys = *keys
	}
	if *values > 0 {
		sc.ValueSize = *values
	}
	if *ops > 0 {
		sc.MeasureOps = *ops
		sc.WarmOps = *ops
		sc.PhaseOps = *ops
	}
	if *seed != 0 {
		sc.Seed = *seed
	}

	if *strategy != "" {
		if err := runLatency(*strategy, sc); err != nil {
			fmt.Fprintln(os.Stderr, "adbench:", err)
			os.Exit(1)
		}
		return
	}

	run := func(name string) error {
		start := time.Now()
		fmt.Printf("== %s (keys=%d values=%dB ops=%d) ==\n", name, sc.NumKeys, sc.ValueSize, sc.MeasureOps)
		var err error
		switch name {
		case "fig1":
			var cells []harness.Cell
			if cells, err = harness.RunFig1(sc); err == nil {
				fmt.Print(harness.FormatFig1(cells))
			}
		case "fig6":
			var rows []harness.Fig6Row
			if rows, err = harness.RunFig6(sc); err == nil {
				fmt.Print(harness.FormatFig6(rows))
			}
		case "fig7":
			var cells []harness.Cell
			progress := func(c harness.Cell) {
				fmt.Fprintf(os.Stderr, "  %-12s cache=%4.0f%% %-20s hit=%.3f reads/op=%.2f\n",
					c.Workload, c.CacheFrac*100, c.Strategy, c.Result.HitRate, c.Result.ReadsPerOp())
			}
			if cells, err = harness.RunFig7(sc, progress); err == nil {
				fmt.Print(harness.FormatFig7(cells))
				err = writeCSV(*csvDir, "fig7.csv", func(w *os.File) error {
					return harness.WriteCellsCSV(w, cells)
				})
			}
		case "fig8":
			var prs []harness.PhaseResult
			progress := func(pr harness.PhaseResult) {
				fmt.Fprintf(os.Stderr, "  phase %s %-20s qps=%.0f hit=%.3f\n",
					pr.Phase, pr.Strategy, pr.Result.QPS, pr.Result.HitRate)
			}
			if prs, err = harness.RunFig8(sc, progress); err == nil {
				fmt.Print(harness.FormatFig8(prs))
				err = writeCSV(*csvDir, "fig8.csv", func(w *os.File) error {
					return harness.WritePhasesCSV(w, prs)
				})
			}
		case "fig9":
			var cells []harness.Cell
			progress := func(c harness.Cell) {
				fmt.Fprintf(os.Stderr, "  skew=%.1f %-20s hit=%.3f\n", c.Skew, c.Strategy, c.Result.HitRate)
			}
			if cells, err = harness.RunFig9(sc, progress); err == nil {
				fmt.Print(harness.FormatFig9(cells))
				err = writeCSV(*csvDir, "fig9.csv", func(w *os.File) error {
					return harness.WriteCellsCSV(w, cells)
				})
			}
		case "fig10":
			var wp, ap []harness.Fig10Series
			var pp harness.Fig10Series
			if wp, ap, pp, err = harness.RunFig10(sc); err == nil {
				fmt.Print(harness.FormatFig10(wp, ap, pp))
				err = writeCSV(*csvDir, "fig10.csv", func(w *os.File) error {
					all := append(append([]harness.Fig10Series{}, wp...), ap...)
					all = append(all, pp)
					return harness.WriteTraceCSV(w, all)
				})
			}
		case "fig11a":
			var pts []harness.Fig11aPoint
			progress := func(p harness.Fig11aPoint) {
				fmt.Fprintf(os.Stderr, "  clients=%d per-client=%.0f\n", p.Clients, p.PerClientQPS)
			}
			if pts, err = harness.RunFig11a(sc, progress); err == nil {
				fmt.Print(harness.FormatFig11a(pts))
			}
		case "fig11b":
			var series []harness.AblationSeries
			if series, err = harness.RunFig11b(sc, nil); err == nil {
				fmt.Print(harness.FormatFig11b(series))
			}
		case "table2":
			fmt.Print(harness.FormatTable2(harness.RunTable2()))
		case "scaling":
			var rows []harness.ScalingRow
			progress := func(r harness.ScalingRow) {
				fmt.Fprintf(os.Stderr, "  keys=%d %-12s %.3f→%.3f\n", r.NumKeys, r.Strategy, r.HitBefore, r.HitAfter)
			}
			if rows, err = harness.RunScaling(nil, progress); err == nil {
				fmt.Print(harness.FormatScaling(rows))
			}
		case "ablations":
			var rows []harness.AblationRow
			progress := func(r harness.AblationRow) {
				fmt.Fprintf(os.Stderr, "  %s/%s hit=%.3f\n", r.Study, r.Variant, r.Result.HitRate)
			}
			if rows, err = harness.RunAblations(sc, progress); err == nil {
				fmt.Print(harness.FormatAblations(rows))
			}
		default:
			return fmt.Errorf("unknown experiment %q", name)
		}
		if err != nil {
			return err
		}
		fmt.Printf("(%s took %s)\n\n", name, time.Since(start).Round(time.Millisecond))
		return nil
	}

	if *csvDir != "" {
		if err := os.MkdirAll(*csvDir, 0o755); err != nil {
			fmt.Fprintln(os.Stderr, "adbench:", err)
			os.Exit(1)
		}
	}

	names := []string{*exp}
	if *exp == "all" {
		names = []string{"table2", "fig1", "fig6", "fig7", "fig8", "fig9", "fig10", "fig11a", "fig11b", "ablations"}
	}
	for _, name := range names {
		if err := run(name); err != nil {
			fmt.Fprintln(os.Stderr, "adbench:", err)
			os.Exit(1)
		}
	}
}

// runLatency loads a store, drives a balanced mixed workload against the
// chosen strategy, and prints the latency histogram summary table — the
// smoke-test face of the metrics subsystem (CI greps its p99 column).
func runLatency(name string, sc harness.Scale) error {
	strat, err := adcache.ParseStrategy(name)
	if err != nil {
		return err
	}
	cacheBytes := int64(sc.NumKeys*sc.ValueSize) / 10
	db, err := adcache.Open(adcache.Options{CacheBytes: cacheBytes, Strategy: strat})
	if err != nil {
		return err
	}
	defer db.Close()

	start := time.Now()
	gen := workload.NewGenerator(workload.Config{
		NumKeys: sc.NumKeys, ValueSize: sc.ValueSize, Seed: sc.Seed,
	})
	for i := 0; i < sc.NumKeys; i++ {
		if err := db.Put(workload.Key(i), gen.InitialValue(i)); err != nil {
			return err
		}
	}
	if err := db.Flush(); err != nil {
		return err
	}
	for i := 0; i < sc.MeasureOps; i++ {
		op := gen.Next(workload.MixBalanced)
		switch op.Kind {
		case workload.OpGet:
			_, _, err = db.Get(op.Key)
		case workload.OpScan:
			_, err = db.Scan(op.Key, op.ScanLen)
		default:
			err = db.Put(op.Key, op.Value)
		}
		if err != nil {
			return err
		}
	}

	m := db.Metrics()
	fmt.Printf("== latency %s (keys=%d values=%dB ops=%d cache=%dB) ==\n",
		m.Strategy, sc.NumKeys, sc.ValueSize, sc.MeasureOps, cacheBytes)
	db.Registry().WriteHistogramTable(os.Stdout)
	fmt.Printf("sst_reads=%d block_cache_hits=%d compactions=%d write_amp=%.2f\n",
		m.SSTReads, m.BlockCacheHits, m.Engine.Compactions, m.Engine.WriteAmplification())
	if m.AdCache != nil {
		t := m.AdCache.Tuning
		fmt.Printf("adcache windows=%d range_ratio=%.3f actor_lr=%.2g reward=%.4f\n",
			t.Windows, m.AdCache.Params.RangeRatio, t.ActorLR, t.Reward)
	}
	fmt.Printf("(latency run took %s)\n", time.Since(start).Round(time.Millisecond))
	return nil
}

// writeCSV writes one CSV artifact when -csv is set.
func writeCSV(dir, name string, write func(*os.File) error) error {
	if dir == "" {
		return nil
	}
	f, err := os.Create(dir + "/" + name)
	if err != nil {
		return err
	}
	defer f.Close()
	return write(f)
}
