// Command lsmtool inspects and exercises an on-disk database built by this
// engine.
//
// Usage:
//
//	lsmtool -dir /tmp/db stats
//	lsmtool -dir /tmp/db metrics        # Prometheus text dump of the registry
//	lsmtool -dir /tmp/db put k v
//	lsmtool -dir /tmp/db get k
//	lsmtool -dir /tmp/db scan k 10
//	lsmtool -dir /tmp/db fill 10000     # load synthetic keys
//	lsmtool -dir /tmp/db compact
//	lsmtool -dir /tmp/db check          # verify checksums & invariants
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"

	"adcache"
	"adcache/internal/lsm"
	"adcache/internal/vfs"
	"adcache/internal/workload"
)

func main() {
	var (
		dir   = flag.String("dir", "db", "database directory")
		cache = flag.Int64("cache", 8<<20, "cache bytes (AdCache strategy)")
	)
	flag.Parse()
	args := flag.Args()
	if len(args) == 0 {
		fmt.Fprintln(os.Stderr, "usage: lsmtool -dir DIR stats|metrics|put|get|scan|fill|compact|check ...")
		os.Exit(2)
	}

	lsmOpts := lsm.DefaultOptions(*dir)
	db, err := adcache.Open(adcache.Options{
		Dir:        *dir,
		FS:         vfs.NewOS(),
		CacheBytes: *cache,
		Strategy:   adcache.StrategyAdCache,
		LSM:        &lsmOpts,
	})
	if err != nil {
		fatal(err)
	}
	defer db.Close()

	switch args[0] {
	case "stats":
		m := db.LSM().Metrics()
		fmt.Printf("levels (files): %v\n", m.LevelFiles)
		fmt.Printf("levels (bytes): %v\n", m.LevelBytes)
		fmt.Printf("sorted runs:    %d\n", m.SortedRuns)
		fmt.Printf("entries:        %d (+%d in memtable)\n", m.TotalEntries, m.MemTableEntries)
		fmt.Printf("total bytes:    %d\n", m.TotalBytes)
		fmt.Printf("flushes:        %d, compactions: %d\n", m.Flushes, m.Compactions)
		fmt.Printf("sst reads:      %d (query path)\n", db.SSTReads())
	case "metrics":
		// Full registry in Prometheus text form — pipe-friendly for diffing
		// against a live server's /metrics.
		if err := db.Registry().WritePrometheus(os.Stdout); err != nil {
			fatal(err)
		}
	case "put":
		need(args, 3)
		if err := db.Put([]byte(args[1]), []byte(args[2])); err != nil {
			fatal(err)
		}
		if err := db.Flush(); err != nil {
			fatal(err)
		}
	case "get":
		need(args, 2)
		v, ok, err := db.Get([]byte(args[1]))
		if err != nil {
			fatal(err)
		}
		if !ok {
			fmt.Println("(not found)")
			return
		}
		fmt.Printf("%s\n", v)
	case "scan":
		need(args, 3)
		n, err := strconv.Atoi(args[2])
		if err != nil {
			fatal(err)
		}
		kvs, err := db.Scan([]byte(args[1]), n)
		if err != nil {
			fatal(err)
		}
		for _, kv := range kvs {
			fmt.Printf("%s = %s\n", kv.Key, kv.Value)
		}
	case "fill":
		need(args, 2)
		n, err := strconv.Atoi(args[1])
		if err != nil {
			fatal(err)
		}
		gen := workload.NewGenerator(workload.Config{NumKeys: n})
		for i := 0; i < n; i++ {
			if err := db.Put(workload.Key(i), gen.InitialValue(i)); err != nil {
				fatal(err)
			}
		}
		if err := db.Flush(); err != nil {
			fatal(err)
		}
		fmt.Printf("loaded %d keys\n", n)
	case "compact":
		if err := db.Compact(); err != nil {
			fatal(err)
		}
		fmt.Println(db.LSM().String())
	case "check":
		rep, err := db.LSM().VerifyIntegrity()
		if err != nil {
			fatal(err)
		}
		fmt.Printf("ok: %d files, %d entries, ~%d blocks verified\n",
			rep.Files, rep.Entries, rep.BlocksChecked)
	default:
		fatal(fmt.Errorf("unknown subcommand %q", args[0]))
	}
}

func need(args []string, n int) {
	if len(args) < n {
		fatal(fmt.Errorf("%s: expected %d args", args[0], n-1))
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "lsmtool:", err)
	os.Exit(1)
}
