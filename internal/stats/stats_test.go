package stats

import (
	"math"
	"sync"
	"testing"
	"testing/quick"
)

func TestWindowAccumulationAndReset(t *testing.T) {
	var c Collector
	c.RecordPoint(true)
	c.RecordPoint(false)
	c.RecordScan(16, true)
	c.RecordScan(64, false)
	c.RecordWrite()
	c.RecordBlockReads(7)
	c.RecordBlockHits(3)
	c.RecordPointAdmission(true)
	c.RecordPointAdmission(false)
	c.RecordScanAdmission(16, 16)
	c.RecordScanAdmission(8, 64)
	c.RecordScanAdmission(0, 64)

	w := c.EndWindow()
	if w.Points != 2 || w.Scans != 2 || w.Writes != 1 {
		t.Fatalf("op counts = %+v", w)
	}
	if w.ScanLenSum != 80 || w.AvgScanLen() != 40 {
		t.Fatalf("scan lengths = %d avg %f", w.ScanLenSum, w.AvgScanLen())
	}
	if w.BlockReads != 7 || w.BlockHits != 3 {
		t.Fatalf("io = %+v", w)
	}
	if w.RangeGetHits != 1 || w.RangeScanHits != 1 {
		t.Fatalf("hits = %+v", w)
	}
	if w.PointAdmits != 1 || w.PointRejects != 1 {
		t.Fatalf("point admissions = %+v", w)
	}
	if w.ScanFullAdmits != 1 || w.ScanPartAdmits != 1 {
		t.Fatalf("scan admissions = %+v", w)
	}
	if w.Ops() != 5 {
		t.Fatalf("Ops = %d", w.Ops())
	}

	// Counters reset after the window closes.
	w2 := c.EndWindow()
	if w2.Ops() != 0 || w2.BlockReads != 0 {
		t.Fatalf("second window not empty: %+v", w2)
	}
	if c.Windows() != 2 {
		t.Fatalf("Windows = %d", c.Windows())
	}
}

func TestIOModelMatchesPaperFormula(t *testing.T) {
	s := Shape{Levels: 3, R0Max: 8, EntriesPerBlock: 4, BloomFPR: 0.01}
	// IO_point = 1 + FPR.
	if got := s.IOPoint(); math.Abs(got-1.01) > 1e-9 {
		t.Fatalf("IOPoint = %f", got)
	}
	// Fallback runs estimate: r = L - 1 + r0max/2 = 3 - 1 + 4 = 6.
	if got := s.SortedRuns(); got != 6 {
		t.Fatalf("SortedRuns = %f", got)
	}
	// IO_scan(l=16) = 16/4 + 6 = 10.
	if got := s.IOScan(16); math.Abs(got-10) > 1e-9 {
		t.Fatalf("IOScan(16) = %f", got)
	}
	// Live run count overrides the estimate.
	s.Runs = 2
	if got := s.IOScan(16); math.Abs(got-6) > 1e-9 {
		t.Fatalf("IOScan with live runs = %f", got)
	}
}

func TestIOEstimateAndHitRate(t *testing.T) {
	s := Shape{Levels: 2, Runs: 2, EntriesPerBlock: 8, BloomFPR: 0}
	w := Window{Points: 100, Scans: 10, ScanLenSum: 160} // avg scan len 16
	// IO_est = 100*1 + 10*(16/8 + 2) = 100 + 40 = 140.
	if got := s.IOEstimate(w); math.Abs(got-140) > 1e-9 {
		t.Fatalf("IOEstimate = %f", got)
	}
	w.BlockReads = 70
	if got := s.HitRateEstimate(w); math.Abs(got-0.5) > 1e-9 {
		t.Fatalf("HitRateEstimate = %f", got)
	}
	// More reads than the estimate clamps to 0, not negative.
	w.BlockReads = 1000
	if got := s.HitRateEstimate(w); got != 0 {
		t.Fatalf("clamped HitRateEstimate = %f", got)
	}
	// No traffic → 0.
	if got := s.HitRateEstimate(Window{}); got != 0 {
		t.Fatalf("empty HitRateEstimate = %f", got)
	}
}

func TestHitRateBounds(t *testing.T) {
	f := func(points, scans, scanLen, reads uint16) bool {
		s := Shape{Levels: 3, R0Max: 8, EntriesPerBlock: 16, BloomFPR: 0.01}
		w := Window{
			Points:     int64(points),
			Scans:      int64(scans),
			ScanLenSum: int64(scanLen),
			BlockReads: int64(reads),
		}
		h := s.HitRateEstimate(w)
		return h >= 0 && h <= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestConcurrentRecording(t *testing.T) {
	var c Collector
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				c.RecordPoint(i%2 == 0)
				c.RecordScan(16, false)
				c.RecordWrite()
				c.RecordBlockReads(1)
			}
		}()
	}
	wg.Wait()
	w := c.EndWindow()
	if w.Points != 8000 || w.Scans != 8000 || w.Writes != 8000 || w.BlockReads != 8000 {
		t.Fatalf("counts = %+v", w)
	}
}
