// Package stats implements the paper's Stats Collector: per-window workload
// counters and the I/O-based reward model of §3.5. The estimated no-cache
// I/O count
//
//	IO_estimate = p·(1+FPR) + s·(l/B) + s·(L + r0max/2 − 1)
//
// normalises measured block misses into an estimated hit rate
// h_estimate = 1 − IO_miss/IO_estimate, usable for both block and result
// caches without observing the true no-cache I/O.
package stats

import (
	"sync"
	"sync/atomic"
)

// Collector accumulates one window of workload statistics. All Record*
// methods are safe for concurrent use.
type Collector struct {
	points     atomic.Int64
	scans      atomic.Int64
	writes     atomic.Int64
	scanLenSum atomic.Int64
	blockReads atomic.Int64 // measured block I/O after cache misses (IO_miss)

	rangeGetHits   atomic.Int64
	rangeScanHits  atomic.Int64
	blockHits      atomic.Int64
	pointAdmits    atomic.Int64
	pointRejects   atomic.Int64
	scanFullAdmits atomic.Int64
	scanPartAdmits atomic.Int64

	mu           sync.Mutex
	totalWindows int64
}

// Window is an immutable snapshot of one window's counters.
type Window struct {
	Points     int64
	Scans      int64
	Writes     int64
	ScanLenSum int64
	BlockReads int64

	RangeGetHits   int64
	RangeScanHits  int64
	BlockHits      int64
	PointAdmits    int64
	PointRejects   int64
	ScanFullAdmits int64
	ScanPartAdmits int64
}

// Ops returns the total operation count in the window.
func (w Window) Ops() int64 { return w.Points + w.Scans + w.Writes }

// AvgScanLen returns the mean scan length l, or 0 with no scans.
func (w Window) AvgScanLen() float64 {
	if w.Scans == 0 {
		return 0
	}
	return float64(w.ScanLenSum) / float64(w.Scans)
}

// RecordPoint counts a point lookup. rangeHit reports that the result cache
// served it.
func (c *Collector) RecordPoint(rangeHit bool) {
	c.points.Add(1)
	if rangeHit {
		c.rangeGetHits.Add(1)
	}
}

// RecordScan counts a range scan of the given length.
func (c *Collector) RecordScan(length int, rangeHit bool) {
	c.scans.Add(1)
	c.scanLenSum.Add(int64(length))
	if rangeHit {
		c.rangeScanHits.Add(1)
	}
}

// RecordWrite counts a put or delete.
func (c *Collector) RecordWrite() { c.writes.Add(1) }

// RecordBlockReads counts block I/Os issued by one operation.
func (c *Collector) RecordBlockReads(n int) {
	if n > 0 {
		c.blockReads.Add(int64(n))
	}
}

// RecordBlockHits counts block-cache hits.
func (c *Collector) RecordBlockHits(n int) {
	if n > 0 {
		c.blockHits.Add(int64(n))
	}
}

// RecordPointAdmission counts an admission-control decision for a point
// result.
func (c *Collector) RecordPointAdmission(admitted bool) {
	if admitted {
		c.pointAdmits.Add(1)
	} else {
		c.pointRejects.Add(1)
	}
}

// RecordScanAdmission counts a scan admission: full, partial or none.
func (c *Collector) RecordScanAdmission(admitted, total int) {
	switch {
	case admitted >= total && total > 0:
		c.scanFullAdmits.Add(1)
	case admitted > 0:
		c.scanPartAdmits.Add(1)
	}
}

// EndWindow atomically snapshots and resets the counters.
func (c *Collector) EndWindow() Window {
	c.mu.Lock()
	defer c.mu.Unlock()
	w := Window{
		Points:         c.points.Swap(0),
		Scans:          c.scans.Swap(0),
		Writes:         c.writes.Swap(0),
		ScanLenSum:     c.scanLenSum.Swap(0),
		BlockReads:     c.blockReads.Swap(0),
		RangeGetHits:   c.rangeGetHits.Swap(0),
		RangeScanHits:  c.rangeScanHits.Swap(0),
		BlockHits:      c.blockHits.Swap(0),
		PointAdmits:    c.pointAdmits.Swap(0),
		PointRejects:   c.pointRejects.Swap(0),
		ScanFullAdmits: c.scanFullAdmits.Swap(0),
		ScanPartAdmits: c.scanPartAdmits.Swap(0),
	}
	c.totalWindows++
	return w
}

// Windows reports how many windows have closed.
func (c *Collector) Windows() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.totalWindows
}

// Shape carries the LSM-tree parameters of the I/O model (Table 1).
type Shape struct {
	// Levels is L, the number of levels holding data.
	Levels int
	// Runs is r, the number of sorted runs. When observable it should be
	// the live count; 0 falls back to the paper's estimate
	// r = L − 1 + r0max/2.
	Runs int
	// R0Max is the maximum number of L0 runs (the write-stall trigger),
	// used by the fallback estimate of r.
	R0Max int
	// EntriesPerBlock is B.
	EntriesPerBlock float64
	// BloomFPR is the Bloom filter false-positive rate.
	BloomFPR float64
}

// IOPoint returns the estimated I/Os per point lookup: 1 + FPR.
func (s Shape) IOPoint() float64 { return 1 + s.BloomFPR }

// SortedRuns returns r: the live count when known, else the paper's
// estimate L − 1 + r0max/2.
func (s Shape) SortedRuns() float64 {
	if s.Runs > 0 {
		return float64(s.Runs)
	}
	r := float64(s.Levels) - 1 + float64(s.R0Max)/2
	if r < 1 {
		r = 1
	}
	return r
}

// IOScan returns the estimated I/Os per scan of length l: l/B + r, the
// per-run seek cost plus the block traversal cost (§3.5).
func (s Shape) IOScan(l float64) float64 {
	b := s.EntriesPerBlock
	if b <= 0 {
		b = 1
	}
	return l/b + s.SortedRuns()
}

// IOEstimate returns the estimated total block I/Os the window would have
// issued with no cache at all.
func (s Shape) IOEstimate(w Window) float64 {
	return float64(w.Points)*s.IOPoint() + float64(w.Scans)*s.IOScan(w.AvgScanLen())
}

// HitRateEstimate returns h_estimate = 1 − IO_miss/IO_estimate, clamped to
// [0, 1]. With no read traffic it returns 0.
func (s Shape) HitRateEstimate(w Window) float64 {
	est := s.IOEstimate(w)
	if est <= 0 {
		return 0
	}
	h := 1 - float64(w.BlockReads)/est
	if h < 0 {
		return 0
	}
	if h > 1 {
		return 1
	}
	return h
}
