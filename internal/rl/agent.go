// Package rl implements AdCache's Policy Decision Controller: a lightweight
// actor-critic agent over a continuous, low-dimensional action space
// (§3.5). The actor is a 2×256 MLP emitting sigmoid-bounded action means;
// exploration adds Gaussian noise; the critic is a value baseline. Rewards
// arrive pre-computed by the caller (the smoothed relative change of the
// estimated hit rate), and the actor's learning rate adapts as
// lr ← lr·(1 − reward), growing after workload shifts and decaying during
// stable phases.
package rl

import (
	"math"
	"math/rand"

	"adcache/internal/nn"
	"adcache/internal/vfs"
)

// Dimensions of the control problem.
const (
	// StateDim is the workload/cache feature vector length. Feature 12 is
	// the block cache's physical/logical byte ratio (1.0 when blocks are
	// uncompressed or the cache is empty), so budget arbitration observes
	// what its byte budget actually buys in decoded data. Features 13-17
	// are the write-side observations of the unified memory arbiter:
	// current memtable share, memtable fill fraction, immutable-queue
	// depth, flush+stall rate, and windowed write amplification.
	StateDim = 18
	// ActionDim covers: range-cache ratio, point admission threshold,
	// scan partial-admission a (normalised), scan partial-admission b,
	// memtable budget share (unified memory arbitration).
	ActionDim = 5
	// HiddenDim matches the paper's 256-unit hidden layers.
	HiddenDim = 256
)

// Action is the decoded controller output, all components in [0, 1].
type Action struct {
	// RangeRatio is the fraction of the cache budget given to the range
	// cache (the rest goes to the block cache).
	RangeRatio float64
	// PointThreshold is the normalised frequency-score threshold for point
	// admission (scaled by the strategy).
	PointThreshold float64
	// ScanA is the full-admission length threshold, normalised to [0,1] of
	// the strategy's maximum scan length.
	ScanA float64
	// ScanB is the partial-admission aggressiveness b.
	ScanB float64
	// MemRatio is the normalised memtable share of the unified memory
	// budget; the strategy maps it onto its configured [min, max] band.
	// Ignored unless memtable arbitration is enabled.
	MemRatio float64
}

func (a Action) vector() []float32 {
	return []float32{
		float32(a.RangeRatio), float32(a.PointThreshold),
		float32(a.ScanA), float32(a.ScanB), float32(a.MemRatio),
	}
}

func actionFrom(v []float32) Action {
	return Action{
		RangeRatio:     float64(v[0]),
		PointThreshold: float64(v[1]),
		ScanA:          float64(v[2]),
		ScanB:          float64(v[3]),
		MemRatio:       float64(v[4]),
	}
}

// Config tunes the agent.
type Config struct {
	// ActorLR and CriticLR are initial learning rates (paper: 1e-3 both).
	ActorLR  float64
	CriticLR float64
	// Gamma is the discount factor.
	Gamma float64
	// ExploreStd is the Gaussian exploration noise applied to action means.
	ExploreStd float64
	// RatioExploreStd overrides the noise on the budget-moving actions
	// (range ratio and memtable ratio): boundary moves evict cache entries
	// or force flushes, so jitter there is costlier than on admission
	// thresholds (defaults to ExploreStd/2).
	RatioExploreStd float64
	// Seed drives weight init and exploration noise.
	Seed int64
	// Frozen disables learning (pretrained-only deployment).
	Frozen bool
}

// DefaultConfig returns the paper's settings.
func DefaultConfig() Config {
	return Config{ActorLR: 1e-3, CriticLR: 1e-3, Gamma: 0.9, ExploreStd: 0.08, Seed: 1}
}

// Agent is the actor-critic controller. Not safe for concurrent use; the
// background tuning goroutine owns it.
type Agent struct {
	cfg    Config
	actor  *nn.MLP
	critic *nn.MLP
	rng    *rand.Rand

	actorLR float64

	havePrev   bool
	prevState  []float32
	prevAction []float32

	steps int64

	// Last-update training losses, for tuning exposition: the critic's TD
	// squared error and the actor's policy-gradient surrogate −A·logπ(a|s).
	lastCriticLoss float64
	lastActorLoss  float64
}

// New returns an agent with freshly initialised networks.
func New(cfg Config) *Agent {
	if cfg.ActorLR <= 0 {
		cfg.ActorLR = 1e-3
	}
	if cfg.CriticLR <= 0 {
		cfg.CriticLR = 1e-3
	}
	if cfg.Gamma <= 0 {
		cfg.Gamma = 0.9
	}
	if cfg.ExploreStd <= 0 {
		cfg.ExploreStd = 0.08
	}
	if cfg.RatioExploreStd <= 0 {
		cfg.RatioExploreStd = cfg.ExploreStd / 2
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	return &Agent{
		cfg:     cfg,
		actor:   nn.NewMLP([]int{StateDim, HiddenDim, HiddenDim, ActionDim}, nn.ReLU, nn.Sigmoid, rng),
		critic:  nn.NewMLP([]int{StateDim, HiddenDim, HiddenDim, 1}, nn.ReLU, nn.Linear, rng),
		rng:     rng,
		actorLR: cfg.ActorLR,
	}
}

// noiseStd returns the exploration standard deviation for action dim i.
// Both budget-moving dims (range ratio, memtable ratio) use the damped
// RatioExploreStd: jitter there evicts cache entries or forces flushes,
// unlike jitter on admission thresholds.
func (a *Agent) noiseStd(i int) float64 {
	if i == 0 || i == 4 {
		return a.cfg.RatioExploreStd
	}
	return a.cfg.ExploreStd
}

// Act returns the action for state, including exploration noise unless the
// agent is frozen. It records the (state, action) pair for the next Update.
func (a *Agent) Act(state []float32) Action {
	mu := a.actor.Forward(state)
	act := make([]float32, ActionDim)
	for i := range act {
		v := float64(mu[i])
		if !a.cfg.Frozen {
			v += a.rng.NormFloat64() * a.noiseStd(i)
		}
		act[i] = float32(clamp01(v))
	}
	a.prevState = append(a.prevState[:0], state...)
	a.prevAction = append(a.prevAction[:0], act...)
	a.havePrev = true
	return actionFrom(act)
}

// Update performs one actor-critic step. reward is the return signal for
// the previous action — the smoothed estimated hit rate, so the critic
// learns the discounted long-term hit rate the paper says the agent
// optimises. lrDelta is the paper's §3.5 relative hit-rate change
// Δh_smoothed/h_smoothed, which drives only the adaptive learning rate
// (lr ← lr·(1 − lrDelta)): negative after a workload shift → more
// exploration; positive when stable → convergence. newState is the state
// that followed the action.
//
// (Deviation note, recorded in DESIGN.md: the paper feeds Δh/h as the RL
// reward itself. That signal telescopes to ≈ log-growth of the hit rate and
// carries almost no gradient at steady state, which is workable over the
// paper's 50M-op phases but not at this reproduction's scale; using the
// smoothed hit-rate level as the critic target preserves the optimisation
// objective — long-term hit rate — while converging within hundreds of
// windows.)
func (a *Agent) Update(reward, lrDelta float64, newState []float32) {
	if a.cfg.Frozen || !a.havePrev {
		return
	}
	a.steps++

	// Adaptive learning rate (§3.5), exactly as published.
	a.actorLR *= 1 - lrDelta
	a.actorLR = clampF(a.actorLR, 1e-5, 1e-2)

	// Critic: TD(0) toward r + γV(s').
	vNext := float64(a.critic.Forward(newState)[0])
	target := reward + a.cfg.Gamma*vNext
	vPrev := float64(a.critic.Forward(a.prevState)[0])
	tdErr := target - vPrev // advantage estimate
	a.lastCriticLoss = tdErr * tdErr
	// dLoss/dV = V − target  (squared error).
	a.critic.Backward([]float32{float32(vPrev - target)})
	a.critic.StepAdam(a.cfg.CriticLR)

	// Actor: Gaussian policy gradient on the means.
	// logπ(a|s) = −(a−μ)²/2σ²; ∂logπ/∂μ = (a−μ)/σ².
	// Ascend advantage·logπ → descend loss with dL/dμ = −A·(a−μ)/σ².
	mu := a.actor.Forward(a.prevState)
	grad := make([]float32, ActionDim)
	var logPi float64
	for i := range grad {
		std := a.noiseStd(i)
		diff := float64(a.prevAction[i]) - float64(mu[i])
		logPi -= diff * diff / (2 * std * std)
		g := -tdErr * diff / (std * std)
		grad[i] = float32(clampF(g, -10, 10))
	}
	a.lastActorLoss = -tdErr * logPi
	a.actor.Backward(grad)
	a.actor.StepAdam(a.actorLR)
}

// Losses reports the actor and critic losses of the most recent Update —
// the auditable learning signal the metrics layer exposes per window. Like
// every Agent method it must be called from the tuning goroutine.
func (a *Agent) Losses() (actor, critic float64) {
	return a.lastActorLoss, a.lastCriticLoss
}

// ActorLR reports the current adaptive learning rate.
func (a *Agent) ActorLR() float64 { return a.actorLR }

// Steps reports how many updates have run.
func (a *Agent) Steps() int64 { return a.steps }

// Mean returns the actor's noiseless action for state, without recording it.
func (a *Agent) Mean(state []float32) Action {
	out := a.actor.Forward(state)
	v := make([]float32, ActionDim)
	copy(v, out)
	return actionFrom(v)
}

// NumParams reports total parameters across both networks.
func (a *Agent) NumParams() int { return a.actor.NumParams() + a.critic.NumParams() }

// MemoryBytes reports parameter memory (Table 2's model row).
func (a *Agent) MemoryBytes() int { return a.actor.MemoryBytes() + a.critic.MemoryBytes() }

// TrainingMemoryBytes reports parameter+gradient+optimizer memory.
func (a *Agent) TrainingMemoryBytes() int {
	return a.actor.TrainingMemoryBytes() + a.critic.TrainingMemoryBytes()
}

// Save persists the actor and critic weights (pretraining artifacts, §3.6).
func (a *Agent) Save(fs vfs.FS, prefix string) error {
	if err := a.actor.Save(fs, prefix+".actor"); err != nil {
		return err
	}
	return a.critic.Save(fs, prefix+".critic")
}

// Load restores previously saved weights.
func (a *Agent) Load(fs vfs.FS, prefix string) error {
	if err := a.actor.Load(fs, prefix+".actor"); err != nil {
		return err
	}
	return a.critic.Load(fs, prefix+".critic")
}

// PretrainUnsupervised runs the same actor-critic process as online
// deployment against an offline environment (§3.6's unsupervised setting):
// env receives the sampled action and the current state, and returns the
// reward plus the next state. Returns the mean reward over the final tenth
// of the run.
func (a *Agent) PretrainUnsupervised(env func(Action, []float32) (float64, []float32), state []float32, steps int) float64 {
	var tail float64
	tailStart := steps - steps/10
	if tailStart < 1 {
		tailStart = 1
	}
	for i := 0; i < steps; i++ {
		act := a.Act(state)
		reward, next := env(act, state)
		a.Update(reward, reward, next)
		state = next
		if i >= tailStart {
			tail += reward
		}
	}
	n := steps - tailStart
	if n <= 0 {
		return 0
	}
	return tail / float64(n)
}

// PretrainSupervised fits the actor to (state, target action) pairs with
// squared-error loss (§3.6's supervised setting), returning the final mean
// loss.
func (a *Agent) PretrainSupervised(states [][]float32, targets []Action, epochs int, lr float64) float64 {
	if lr <= 0 {
		lr = 1e-3
	}
	var lastLoss float64
	for epoch := 0; epoch < epochs; epoch++ {
		var sum float64
		for i := range states {
			out := a.actor.Forward(states[i])
			tv := targets[i].vector()
			grad := make([]float32, ActionDim)
			for j := range grad {
				d := out[j] - tv[j]
				grad[j] = d
				sum += float64(d) * float64(d)
			}
			a.actor.Backward(grad)
			a.actor.StepAdam(lr)
		}
		lastLoss = sum / float64(len(states)*ActionDim)
	}
	return lastLoss
}

func clamp01(v float64) float64 { return clampF(v, 0, 1) }

func clampF(v, lo, hi float64) float64 {
	switch {
	case v < lo:
		return lo
	case v > hi:
		return hi
	case math.IsNaN(v):
		return lo
	default:
		return v
	}
}
