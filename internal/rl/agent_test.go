package rl

import (
	"math"
	"testing"

	"adcache/internal/vfs"
)

func constState() []float32 { return make([]float32, StateDim) }

func TestActBounded(t *testing.T) {
	a := New(DefaultConfig())
	for i := 0; i < 100; i++ {
		act := a.Act(constState())
		for _, v := range []float64{act.RangeRatio, act.PointThreshold, act.ScanA, act.ScanB} {
			if v < 0 || v > 1 {
				t.Fatalf("action component %f outside [0,1]", v)
			}
		}
	}
}

func TestFrozenAgentIsDeterministicAndUnchanging(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Frozen = true
	a := New(cfg)
	s := constState()
	first := a.Act(s)
	for i := 0; i < 10; i++ {
		a.Update(0.5, 0.5, s) // must be a no-op
		got := a.Act(s)
		if got != first {
			t.Fatalf("frozen agent changed output: %+v vs %+v", got, first)
		}
	}
	if a.Steps() != 0 {
		t.Fatalf("frozen agent recorded %d steps", a.Steps())
	}
}

// TestConvergesToRewardPeak runs a bandit environment whose reward peaks at
// RangeRatio = 0.85 and checks the policy mean migrates toward it.
func TestConvergesToRewardPeak(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Seed = 7
	a := New(cfg)
	s := constState()
	initial := math.Abs(a.Mean(s).RangeRatio - 0.85)
	for i := 0; i < 3000; i++ {
		act := a.Act(s)
		reward := 0.2 - math.Abs(act.RangeRatio-0.85) // positive near the peak
		a.Update(reward, reward, s)
	}
	final := math.Abs(a.Mean(s).RangeRatio - 0.85)
	if final > initial && final > 0.15 {
		t.Fatalf("policy did not approach peak: initial dist %.3f, final %.3f", initial, final)
	}
	if final > 0.3 {
		t.Fatalf("policy too far from peak: %.3f", final)
	}
}

func TestAdaptiveLearningRate(t *testing.T) {
	a := New(DefaultConfig())
	s := constState()
	a.Act(s)
	lr0 := a.ActorLR()
	a.Update(0.5, 0.5, s) // positive lrDelta → decay
	if a.ActorLR() >= lr0 {
		t.Fatalf("lr did not decay on positive reward: %g -> %g", lr0, a.ActorLR())
	}
	a.Act(s)
	lrBefore := a.ActorLR()
	a.Update(-0.5, -0.5, s) // negative lrDelta (workload shift) → grow
	if a.ActorLR() <= lrBefore {
		t.Fatalf("lr did not grow on negative reward: %g -> %g", lrBefore, a.ActorLR())
	}
	// Bounds hold under extreme rewards.
	for i := 0; i < 20; i++ {
		a.Act(s)
		a.Update(-10, -10, s)
	}
	if a.ActorLR() > 1e-2 {
		t.Fatalf("lr exceeded upper bound: %g", a.ActorLR())
	}
	for i := 0; i < 200; i++ {
		a.Act(s)
		a.Update(0.99, 0.99, s)
	}
	if a.ActorLR() < 1e-5 {
		t.Fatalf("lr fell below lower bound: %g", a.ActorLR())
	}
}

func TestMemoryAccountingTable2(t *testing.T) {
	a := New(DefaultConfig())
	if n := a.NumParams(); n < 120_000 || n > 160_000 {
		t.Fatalf("NumParams = %d, want ≈140K (paper Table 2)", n)
	}
	if b := a.MemoryBytes(); b < 450_000 || b > 650_000 {
		t.Fatalf("MemoryBytes = %d, want ≈550KB", b)
	}
	if tb := a.TrainingMemoryBytes(); tb != 4*a.MemoryBytes() {
		t.Fatalf("TrainingMemoryBytes = %d, want 4× weights", tb)
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	fs := vfs.NewMem()
	a := New(DefaultConfig())
	s := constState()
	want := a.Mean(s)
	if err := a.Save(fs, "models/agent"); err != nil {
		t.Fatalf("Save: %v", err)
	}
	cfg := DefaultConfig()
	cfg.Seed = 999
	b := New(cfg)
	if err := b.Load(fs, "models/agent"); err != nil {
		t.Fatalf("Load: %v", err)
	}
	got := b.Mean(s)
	if math.Abs(got.RangeRatio-want.RangeRatio) > 1e-6 {
		t.Fatalf("loaded agent differs: %+v vs %+v", got, want)
	}
}

func TestPretrainSupervised(t *testing.T) {
	a := New(DefaultConfig())
	states := make([][]float32, 0, 32)
	targets := make([]Action, 0, 32)
	for i := 0; i < 32; i++ {
		s := make([]float32, StateDim)
		s[0] = float32(i) / 32 // scan ratio feature, say
		states = append(states, s)
		// Teach: high scan ratio → low range ratio.
		targets = append(targets, Action{RangeRatio: 1 - float64(i)/32, PointThreshold: 0.1, ScanA: 0.3, ScanB: 0.5})
	}
	loss := a.PretrainSupervised(states, targets, 300, 1e-3)
	if loss > 0.01 {
		t.Fatalf("pretraining loss = %f, want < 0.01", loss)
	}
	// Check generalisation direction: low-scan state → higher range ratio
	// than high-scan state.
	low := a.Mean(states[1]).RangeRatio
	high := a.Mean(states[30]).RangeRatio
	if low <= high {
		t.Fatalf("pretrained policy not monotone: low=%f high=%f", low, high)
	}
}

func TestPretrainUnsupervised(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Seed = 11
	a := New(cfg)
	// Offline environment: reward peaks when ScanB ≈ 0.3.
	env := func(act Action, s []float32) (float64, []float32) {
		return 0.3 - math.Abs(act.ScanB-0.3), s
	}
	mean := a.PretrainUnsupervised(env, constState(), 2500)
	final := a.Mean(constState()).ScanB
	if math.Abs(final-0.3) > 0.25 {
		t.Fatalf("unsupervised pretraining did not approach the peak: b=%.3f (tail reward %.3f)", final, mean)
	}
}
