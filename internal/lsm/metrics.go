package lsm

import (
	"fmt"

	"adcache/internal/metrics"
)

// dbMetrics holds the engine's hot-path histograms. Latencies are recorded
// in nanoseconds (the `_nanos` suffix drives duration formatting in summary
// tables); write-group size is a plain magnitude.
type dbMetrics struct {
	getNanos        *metrics.Histogram
	scanNanos       *metrics.Histogram
	commitNanos     *metrics.Histogram
	commitWait      *metrics.Histogram
	stallNanos      *metrics.Histogram
	flushNanos      *metrics.Histogram
	compactNanos    *metrics.Histogram
	subcompactNanos *metrics.Histogram
	writeGroupOps   *metrics.Histogram
}

// registerMetrics publishes the engine's observability surface into reg:
// latency histograms for the hot paths, counter bridges over the engine's
// cumulative counters, and gauges over live tree shape. Called once from
// Open; scrape-time funcs take d.mu themselves, so they must only run
// outside engine callbacks (HTTP scrape or tool dumps), which is the only
// way the registry is exposed.
func (d *DB) registerMetrics(reg *metrics.Registry) {
	d.metrics = dbMetrics{
		getNanos:        reg.Histogram("lsm_get_nanos", "point-lookup latency"),
		scanNanos:       reg.Histogram("lsm_scan_nanos", "range-scan latency"),
		commitNanos:     reg.Histogram("lsm_commit_nanos", "write commit latency including group wait"),
		commitWait:      reg.Histogram("lsm_commit_wait_nanos", "time spent waiting to join or lead a write group"),
		stallNanos:      reg.Histogram("lsm_stall_nanos", "write-stall time per stalled commit (backpressure)"),
		flushNanos:      reg.Histogram("lsm_flush_nanos", "memtable flush duration"),
		compactNanos:    reg.Histogram("lsm_compact_nanos", "compaction duration"),
		subcompactNanos: reg.Histogram("lsm_subcompact_nanos", "per-subcompaction shard merge duration"),
		writeGroupOps:   reg.Histogram("lsm_write_group_ops", "operations coalesced per write group"),
	}

	counters := []struct {
		name, help string
		fn         func(m Metrics) int64
	}{
		{"lsm_flushes_total", "memtable flushes", func(m Metrics) int64 { return m.Flushes }},
		{"lsm_compactions_total", "compactions run", func(m Metrics) int64 { return m.Compactions }},
		{"lsm_subcompactions_total", "subcompaction shard merges executed", func(m Metrics) int64 { return m.Subcompactions }},
		{"lsm_stall_slowdowns_total", "write slowdown stalls", func(m Metrics) int64 { return m.StallSlowdowns }},
		{"lsm_stall_stops_total", "write stop stalls", func(m Metrics) int64 { return m.StallStops }},
		{"lsm_write_groups_total", "write groups committed", func(m Metrics) int64 { return m.WriteGroups }},
		{"lsm_flushed_bytes_total", "bytes written by flushes", func(m Metrics) int64 { return m.FlushedBytes }},
		{"lsm_compacted_bytes_total", "bytes read as compaction inputs", func(m Metrics) int64 { return m.CompactedBytes }},
		{"lsm_compaction_out_bytes_total", "bytes written as compaction outputs", func(m Metrics) int64 { return m.CompactionOutBytes }},
		{"lsm_user_bytes_total", "user key+value bytes accepted", func(m Metrics) int64 { return m.UserBytes }},
		{"lsm_bg_retries_total", "background flush/compaction retry attempts", func(m Metrics) int64 { return m.BgRetries }},
		{"lsm_resumes_total", "recoveries from read-only degraded mode", func(m Metrics) int64 { return m.Resumes }},
		{"lsm_wal_remove_errors_total", "non-fatal failures deleting retired WAL files", func(m Metrics) int64 { return m.WALRemoveErrors }},
		{"lsm_bg_io_stall_nanos_total", "time background writers spent throttled by the I/O rate limit", func(m Metrics) int64 { return m.BgIOStallNanos }},
	}
	for _, c := range counters {
		fn := c.fn
		reg.CounterFunc(c.name, c.help, func() int64 { return fn(d.Metrics()) })
	}
	reg.CounterFunc("lsm_query_block_reads_total",
		"SST blocks read from disk by queries (the paper's SST-reads metric)",
		d.QueryBlockReads)
	reg.CounterFunc("lsm_query_block_hits_total",
		"block-cache hits on the query path", d.QueryBlockHits)

	gauges := []struct {
		name, help string
		fn         func(m Metrics) float64
	}{
		{"lsm_memtable_bytes", "active memtable size", func(m Metrics) float64 { return float64(m.MemTableBytes) }},
		{"lsm_imm_memtables", "sealed memtables awaiting flush", func(m Metrics) float64 { return float64(m.ImmMemTables) }},
		{"lsm_imm_memtable_bytes", "bytes pinned by sealed memtables awaiting flush", func(m Metrics) float64 { return float64(m.ImmMemTableBytes) }},
		{"lsm_memtable_budget_bytes", "dynamic unified-memory memtable budget (0 = static sizing)", func(m Metrics) float64 { return float64(m.MemTableBudget) }},
		{"lsm_memtable_target_bytes", "flush threshold currently in force for the active memtable", func(m Metrics) float64 { return float64(m.MemTableTarget) }},
		{"lsm_sorted_runs", "sorted runs in the tree", func(m Metrics) float64 { return float64(m.SortedRuns) }},
		{"lsm_total_entries", "entries across all SSTables", func(m Metrics) float64 { return float64(m.TotalEntries) }},
		{"lsm_total_bytes", "bytes across all SSTables", func(m Metrics) float64 { return float64(m.TotalBytes) }},
		{"lsm_write_amplification", "SSTable bytes written per user byte", Metrics.WriteAmplification},
		{"lsm_bg_state", "error-handler mode (0 healthy, 1 retrying, 2 read-only)", func(m Metrics) float64 { return float64(m.bgStateNum) }},
	}
	for _, g := range gauges {
		fn := g.fn
		reg.GaugeFunc(g.name, g.help, func() float64 { return fn(d.Metrics()) })
	}
	for level := 0; level < d.opts.NumLevels; level++ {
		l := level
		// Per-level write-amplification counters: input bytes drawn from the
		// level vs output bytes written into it by compactions.
		reg.CounterFunc(fmt.Sprintf("lsm_compaction_input_bytes_total{level=%q}", fmt.Sprint(l)),
			"compaction input bytes read from this level", func() int64 {
				d.mu.RLock()
				defer d.mu.RUnlock()
				return d.levelCompactIn[l]
			})
		reg.CounterFunc(fmt.Sprintf("lsm_compaction_output_bytes_total{level=%q}", fmt.Sprint(l)),
			"compaction output bytes written into this level", func() int64 {
				d.mu.RLock()
				defer d.mu.RUnlock()
				return d.levelCompactOut[l]
			})
		reg.GaugeFunc(fmt.Sprintf("lsm_level_files{level=%q}", fmt.Sprint(l)),
			"SSTable files per level", func() float64 {
				d.mu.RLock()
				defer d.mu.RUnlock()
				return float64(len(d.version.Levels[l]))
			})
		reg.GaugeFunc(fmt.Sprintf("lsm_level_bytes{level=%q}", fmt.Sprint(l)),
			"SSTable bytes per level", func() float64 {
				d.mu.RLock()
				defer d.mu.RUnlock()
				return float64(d.version.SizeOfLevel(l))
			})
	}
}

// MetricsRegistry returns the registry this DB publishes into.
func (d *DB) MetricsRegistry() *metrics.Registry { return d.reg }
