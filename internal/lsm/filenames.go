package lsm

import (
	"fmt"
	"strconv"
	"strings"
)

func sstPath(dir string, fileNum uint64) string {
	return fmt.Sprintf("%s/%06d.sst", dir, fileNum)
}

func walPath(dir string, walNum uint64) string {
	return fmt.Sprintf("%s/%06d.log", dir, walNum)
}

// parseFileName recognises the engine's file names. typ is "sst", "log" or
// "" for unknown names.
func parseFileName(name string) (typ string, num uint64) {
	switch {
	case strings.HasSuffix(name, ".sst"):
		typ = "sst"
	case strings.HasSuffix(name, ".log"):
		typ = "log"
	default:
		return "", 0
	}
	base := name[:len(name)-4]
	n, err := strconv.ParseUint(base, 10, 64)
	if err != nil {
		return "", 0
	}
	return typ, n
}
