package lsm

import "adcache/internal/sstable"

// KV is a key-value pair returned by scans and exchanged with cache
// strategies.
type KV struct {
	Key   []byte
	Value []byte
}

// ScanEntry is one element of a scan result as reported to the strategy,
// carrying contiguity context the range cache needs.
type ScanEntry struct {
	Key   []byte
	Value []byte
}

// CacheCounters aggregates the counters of whichever caches a strategy
// runs. Fields for absent caches stay zero, so one shape serves every
// strategy — the engine and its tools never type-switch on concrete
// strategy types.
type CacheCounters struct {
	BlockHits      int64
	BlockMisses    int64
	BlockEvictions int64
	// BlockUsed is the block cache's physical (resident) byte occupancy;
	// BlockLogicalUsed is what those blocks decode to. The two coincide
	// without compression; their ratio is the cache's effective compression
	// factor, one of the RL agent's state features.
	BlockUsed        int64
	BlockLogicalUsed int64
	BlockCapacity    int64

	RangeGetHits    int64
	RangeGetMisses  int64
	RangeScanHits   int64
	RangeScanMisses int64
	RangePartials   int64
	RangeEvictions  int64
	RangeUsed       int64
	RangeCapacity   int64
	RangeEntries    int

	KVHits      int64
	KVMisses    int64
	KVEvictions int64
}

// CacheStrategy is the integration point between the engine and a caching
// scheme, realising the paper's query-handling and cache-fill paths
// (Figure 5). All methods must be safe for concurrent use.
//
// Query handling: the DB consults GetCached/ScanCached before probing the
// MemTable; SSTable block reads flow through BlockCache(). Cache fill: after
// a disk-served query the DB reports the result via OnPointResult /
// OnScanResult so the strategy can admit it. Writes are reported via OnWrite
// so result caches stay coherent.
//
// Concurrency contract under the background write path:
//   - GetCached/ScanCached/OnPointResult/OnScanResult run under the DB's
//     read lock, so any number may execute simultaneously on different
//     goroutines.
//   - OnWrite runs under the DB's exclusive lock (inside a write group's
//     apply), mutually excluding the read-side callbacks above — the
//     coherence guarantee result caches rely on.
//   - OnCompaction and block-cache fills driven by compaction prefetch run
//     on the background flush/compaction goroutine with no DB lock held,
//     concurrently with all of the above.
type CacheStrategy interface {
	// GetCached returns a cached value for key. found distinguishes a
	// cached "key absent" answer (ok=true, found=false) from a cache miss
	// (ok=false).
	GetCached(key []byte) (value []byte, found, ok bool)

	// ScanCached returns the first n pairs starting at start if the cache
	// can prove it has the full contiguous prefix; ok=false otherwise.
	ScanCached(start []byte, n int) ([]KV, bool)

	// OnPointResult reports a completed point lookup that the cache did not
	// serve. value is nil when the key does not exist; blockReads is the
	// number of SST blocks fetched from disk for this lookup.
	OnPointResult(key, value []byte, blockReads int)

	// OnScanResult reports a completed scan of the given result entries.
	// blockReads is the number of SST blocks fetched from disk.
	OnScanResult(start []byte, entries []ScanEntry, blockReads int)

	// OnWrite reports a Put (deleted=false) or Delete (deleted=true) so
	// result caches can update or invalidate.
	OnWrite(key, value []byte, deleted bool)

	// BlockCache returns the block cache SSTable readers should use, or nil.
	BlockCache() sstable.BlockCache

	// ScanBlockFillQuota bounds how many blocks a scan of scanLen keys may
	// insert into the block cache (§3.4: partial admission "can also be
	// applied to the block cache"). limited=false means unlimited.
	ScanBlockFillQuota(scanLen int) (quota int64, limited bool)

	// OnCompaction reports that a compaction replaced oldFiles with
	// newFiles, letting strategies account invalidation.
	OnCompaction(oldFiles, newFiles []uint64)

	// Counters snapshots the strategy's cache counters — the unified
	// observability surface every strategy provides.
	Counters() CacheCounters
}

// NoCache is a CacheStrategy that caches nothing; it yields the engine's
// uncached baseline.
type NoCache struct{}

// GetCached implements CacheStrategy.
func (NoCache) GetCached([]byte) ([]byte, bool, bool) { return nil, false, false }

// ScanCached implements CacheStrategy.
func (NoCache) ScanCached([]byte, int) ([]KV, bool) { return nil, false }

// OnPointResult implements CacheStrategy.
func (NoCache) OnPointResult([]byte, []byte, int) {}

// OnScanResult implements CacheStrategy.
func (NoCache) OnScanResult([]byte, []ScanEntry, int) {}

// OnWrite implements CacheStrategy.
func (NoCache) OnWrite([]byte, []byte, bool) {}

// BlockCache implements CacheStrategy.
func (NoCache) BlockCache() sstable.BlockCache { return nil }

// ScanBlockFillQuota implements CacheStrategy.
func (NoCache) ScanBlockFillQuota(int) (int64, bool) { return 0, false }

// OnCompaction implements CacheStrategy.
func (NoCache) OnCompaction([]uint64, []uint64) {}

// Counters implements CacheStrategy: the uncached baseline has none.
func (NoCache) Counters() CacheCounters { return CacheCounters{} }
