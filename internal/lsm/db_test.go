package lsm

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"

	"adcache/internal/cache/blockcache"
	"adcache/internal/sstable"
	"adcache/internal/vfs"
)

func testOptions(fs vfs.FS) Options {
	opts := DefaultOptions("testdb")
	opts.FS = fs
	opts.MemTableSize = 16 << 10 // small to force flushes
	opts.L1TargetSize = 64 << 10
	opts.TargetFileSize = 32 << 10
	return opts
}

func mustOpen(t *testing.T, opts Options) *DB {
	t.Helper()
	db, err := Open(opts)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	return db
}

func key(i int) []byte { return []byte(fmt.Sprintf("key%08d", i)) }
func val(i int) []byte { return []byte(fmt.Sprintf("value%08d", i)) }

func TestPutGet(t *testing.T) {
	db := mustOpen(t, testOptions(vfs.NewMem()))
	defer db.Close()
	for i := 0; i < 100; i++ {
		if err := db.Put(key(i), val(i)); err != nil {
			t.Fatalf("Put: %v", err)
		}
	}
	for i := 0; i < 100; i++ {
		v, ok, err := db.Get(key(i))
		if err != nil || !ok {
			t.Fatalf("Get(%s): ok=%v err=%v", key(i), ok, err)
		}
		if !bytes.Equal(v, val(i)) {
			t.Fatalf("Get(%s) = %q, want %q", key(i), v, val(i))
		}
	}
	if _, ok, _ := db.Get([]byte("missing")); ok {
		t.Fatal("Get(missing) reported found")
	}
}

func TestGetAfterFlush(t *testing.T) {
	db := mustOpen(t, testOptions(vfs.NewMem()))
	defer db.Close()
	const n = 2000
	for i := 0; i < n; i++ {
		if err := db.Put(key(i), val(i)); err != nil {
			t.Fatalf("Put: %v", err)
		}
	}
	if err := db.Flush(); err != nil {
		t.Fatalf("Flush: %v", err)
	}
	m := db.Metrics()
	if m.Flushes == 0 {
		t.Fatal("expected at least one flush")
	}
	for i := 0; i < n; i += 17 {
		v, ok, err := db.Get(key(i))
		if err != nil || !ok || !bytes.Equal(v, val(i)) {
			t.Fatalf("Get(%s) after flush = %q ok=%v err=%v", key(i), v, ok, err)
		}
	}
}

func TestOverwriteAndDelete(t *testing.T) {
	db := mustOpen(t, testOptions(vfs.NewMem()))
	defer db.Close()
	k := []byte("k")
	if err := db.Put(k, []byte("v1")); err != nil {
		t.Fatal(err)
	}
	if err := db.Put(k, []byte("v2")); err != nil {
		t.Fatal(err)
	}
	if v, ok, _ := db.Get(k); !ok || string(v) != "v2" {
		t.Fatalf("Get after overwrite = %q ok=%v", v, ok)
	}
	if err := db.Flush(); err != nil {
		t.Fatal(err)
	}
	if v, ok, _ := db.Get(k); !ok || string(v) != "v2" {
		t.Fatalf("Get after flush = %q ok=%v", v, ok)
	}
	if err := db.Delete(k); err != nil {
		t.Fatal(err)
	}
	if _, ok, _ := db.Get(k); ok {
		t.Fatal("Get after delete reported found")
	}
	if err := db.Flush(); err != nil {
		t.Fatal(err)
	}
	if _, ok, _ := db.Get(k); ok {
		t.Fatal("Get after delete+flush reported found")
	}
}

func TestScan(t *testing.T) {
	db := mustOpen(t, testOptions(vfs.NewMem()))
	defer db.Close()
	const n = 3000
	for i := 0; i < n; i++ {
		if err := db.Put(key(i), val(i)); err != nil {
			t.Fatal(err)
		}
	}
	// Spot-check scans starting at several positions, spanning memtable and
	// multiple levels.
	for _, start := range []int{0, 1, 500, 1234, n - 10} {
		want := 16
		kvs, err := db.Scan(key(start), want)
		if err != nil {
			t.Fatalf("Scan: %v", err)
		}
		if len(kvs) != want && start+want <= n {
			t.Fatalf("Scan(%d) returned %d entries, want %d", start, len(kvs), want)
		}
		for j, kv := range kvs {
			if !bytes.Equal(kv.Key, key(start+j)) {
				t.Fatalf("Scan(%d)[%d].Key = %s, want %s", start, j, kv.Key, key(start+j))
			}
			if !bytes.Equal(kv.Value, val(start+j)) {
				t.Fatalf("Scan(%d)[%d].Value mismatch", start, j)
			}
		}
	}
}

func TestScanSkipsDeleted(t *testing.T) {
	db := mustOpen(t, testOptions(vfs.NewMem()))
	defer db.Close()
	for i := 0; i < 100; i++ {
		if err := db.Put(key(i), val(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.Flush(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i += 2 {
		if err := db.Delete(key(i)); err != nil {
			t.Fatal(err)
		}
	}
	kvs, err := db.Scan(key(0), 10)
	if err != nil {
		t.Fatal(err)
	}
	for j, kv := range kvs {
		if !bytes.Equal(kv.Key, key(2*j+1)) {
			t.Fatalf("Scan[%d].Key = %s, want %s", j, kv.Key, key(2*j+1))
		}
	}
}

func TestCompactionShapesTree(t *testing.T) {
	db := mustOpen(t, testOptions(vfs.NewMem()))
	defer db.Close()
	rng := rand.New(rand.NewSource(42))
	const n = 20000
	for i := 0; i < n; i++ {
		k := rng.Intn(5000)
		if err := db.Put(key(k), val(i)); err != nil {
			t.Fatal(err)
		}
	}
	m := db.Metrics()
	if m.Compactions == 0 {
		t.Fatal("expected compactions to run")
	}
	if m.L0Files >= db.opts.L0StopTrigger {
		t.Fatalf("L0 has %d files, exceeding stop trigger", m.L0Files)
	}
	// Values must reflect the last write of each key.
	latest := map[int]int{}
	rng = rand.New(rand.NewSource(42))
	for i := 0; i < n; i++ {
		latest[rng.Intn(5000)] = i
	}
	for k, i := range latest {
		v, ok, err := db.Get(key(k))
		if err != nil || !ok {
			t.Fatalf("Get(%s): ok=%v err=%v", key(k), ok, err)
		}
		if !bytes.Equal(v, val(i)) {
			t.Fatalf("Get(%s) = %q, want %q", key(k), v, val(i))
		}
	}
}

func TestRecovery(t *testing.T) {
	fs := vfs.NewMem()
	opts := testOptions(fs)
	db := mustOpen(t, opts)
	const n = 5000
	for i := 0; i < n; i++ {
		if err := db.Put(key(i), val(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	db2 := mustOpen(t, opts)
	defer db2.Close()
	for i := 0; i < n; i += 31 {
		v, ok, err := db2.Get(key(i))
		if err != nil || !ok || !bytes.Equal(v, val(i)) {
			t.Fatalf("Get(%s) after reopen = %q ok=%v err=%v", key(i), v, ok, err)
		}
	}
}

func TestRecoveryWithoutClose(t *testing.T) {
	// Simulates a crash: the DB is abandoned without Close; the WAL must
	// restore the unflushed tail.
	fs := vfs.NewMem()
	opts := testOptions(fs)
	db := mustOpen(t, opts)
	for i := 0; i < 100; i++ {
		if err := db.Put(key(i), val(i)); err != nil {
			t.Fatal(err)
		}
	}
	// No Close. Reopen from the same FS.
	db2 := mustOpen(t, opts)
	defer db2.Close()
	for i := 0; i < 100; i++ {
		v, ok, err := db2.Get(key(i))
		if err != nil || !ok || !bytes.Equal(v, val(i)) {
			t.Fatalf("Get(%s) after crash-reopen = %q ok=%v err=%v", key(i), v, ok, err)
		}
	}
}

func TestRecoverySurvivesSecondCrash(t *testing.T) {
	// A crash right after recovery must not lose the replayed writes:
	// Open retires the old logs, so it must first persist the recovered
	// memtable as an L0 table. Without that, abandoning the second
	// instance before any flush dropped every pre-crash write.
	fs := vfs.NewMem()
	opts := testOptions(fs)
	db := mustOpen(t, opts)
	for i := 0; i < 100; i++ {
		if err := db.Put(key(i), val(i)); err != nil {
			t.Fatal(err)
		}
	}
	// Crash #1: abandon without Close, reopen, verify, then crash again
	// immediately — no writes, no Flush, no Close.
	db2 := mustOpen(t, opts)
	if _, ok, err := db2.Get(key(0)); err != nil || !ok {
		t.Fatalf("Get after first crash: ok=%v err=%v", ok, err)
	}
	if db2.Metrics().Flushes == 0 {
		t.Fatal("recovery did not flush the replayed memtable")
	}
	// Crash #2: reopen again from the same FS.
	db3 := mustOpen(t, opts)
	defer db3.Close()
	for i := 0; i < 100; i++ {
		v, ok, err := db3.Get(key(i))
		if err != nil || !ok || !bytes.Equal(v, val(i)) {
			t.Fatalf("Get(%s) after second crash = %q ok=%v err=%v", key(i), v, ok, err)
		}
	}
}

func TestIOStatsCountBlockReads(t *testing.T) {
	db := mustOpen(t, testOptions(vfs.NewMem()))
	defer db.Close()
	for i := 0; i < 5000; i++ {
		if err := db.Put(key(i), val(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.Flush(); err != nil {
		t.Fatal(err)
	}
	before := db.IOStats()
	if _, ok, _ := db.Get(key(123)); !ok {
		t.Fatal("Get failed")
	}
	after := db.IOStats()
	if delta := after.Sub(before); delta.ReadOps == 0 {
		t.Fatal("Get from disk did not register block reads")
	}
}

func TestConcurrentReadersAndWriter(t *testing.T) {
	db := mustOpen(t, testOptions(vfs.NewMem()))
	defer db.Close()
	for i := 0; i < 2000; i++ {
		if err := db.Put(key(i), val(i)); err != nil {
			t.Fatal(err)
		}
	}
	done := make(chan error, 4)
	for g := 0; g < 3; g++ {
		go func(seed int64) {
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < 2000; i++ {
				k := rng.Intn(2000)
				if _, ok, err := db.Get(key(k)); err != nil || !ok {
					done <- fmt.Errorf("Get(%d): ok=%v err=%v", k, ok, err)
					return
				}
				if rng.Intn(10) == 0 {
					if _, err := db.Scan(key(k), 8); err != nil {
						done <- fmt.Errorf("Scan: %v", err)
						return
					}
				}
			}
			done <- nil
		}(int64(g))
	}
	go func() {
		for i := 0; i < 2000; i++ {
			if err := db.Put(key(i%2000), val(i+10000)); err != nil {
				done <- err
				return
			}
		}
		done <- nil
	}()
	for i := 0; i < 4; i++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}

func TestScanRange(t *testing.T) {
	db := mustOpen(t, testOptions(vfs.NewMem()))
	defer db.Close()
	for i := 0; i < 1000; i++ {
		if err := db.Put(key(i), val(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.Flush(); err != nil {
		t.Fatal(err)
	}
	// Bounded range, unbounded count.
	kvs, err := db.ScanRange(key(10), key(20), 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(kvs) != 10 {
		t.Fatalf("ScanRange returned %d entries, want 10", len(kvs))
	}
	for j, kv := range kvs {
		if !bytes.Equal(kv.Key, key(10+j)) {
			t.Fatalf("entry %d = %s", j, kv.Key)
		}
	}
	// Count bound tighter than the range.
	kvs, err = db.ScanRange(key(10), key(20), 3)
	if err != nil || len(kvs) != 3 {
		t.Fatalf("limited ScanRange = %d entries err=%v", len(kvs), err)
	}
	// nil end behaves like Scan.
	kvs, err = db.ScanRange(key(995), nil, 100)
	if err != nil || len(kvs) != 5 {
		t.Fatalf("unbounded-end ScanRange = %d entries err=%v", len(kvs), err)
	}
	// Empty range.
	kvs, err = db.ScanRange(key(20), key(20), 0)
	if err != nil || len(kvs) != 0 {
		t.Fatalf("empty range = %d entries err=%v", len(kvs), err)
	}
}

func TestIteratorFullTraversal(t *testing.T) {
	db := mustOpen(t, testOptions(vfs.NewMem()))
	defer db.Close()
	const n = 3000
	for i := 0; i < n; i++ {
		if err := db.Put(key(i), val(i)); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < n; i += 3 {
		if err := db.Delete(key(i)); err != nil {
			t.Fatal(err)
		}
	}
	it, err := db.NewIter()
	if err != nil {
		t.Fatal(err)
	}
	defer it.Close()
	count := 0
	prev := ""
	for ok := it.First(); ok; ok = it.Next() {
		k := string(it.Key())
		if k <= prev {
			t.Fatalf("keys out of order: %q after %q", k, prev)
		}
		prev = k
		count++
	}
	if err := it.Err(); err != nil {
		t.Fatal(err)
	}
	want := n - (n+2)/3
	if count != want {
		t.Fatalf("iterated %d live keys, want %d", count, want)
	}
}

func TestIteratorSnapshotIsolation(t *testing.T) {
	db := mustOpen(t, testOptions(vfs.NewMem()))
	defer db.Close()
	for i := 0; i < 100; i++ {
		if err := db.Put(key(i), val(i)); err != nil {
			t.Fatal(err)
		}
	}
	it, err := db.NewIter()
	if err != nil {
		t.Fatal(err)
	}
	defer it.Close()
	// Writes after iterator creation are invisible to it.
	if err := db.Put(key(50), []byte("changed")); err != nil {
		t.Fatal(err)
	}
	if err := db.Put(key(200), val(200)); err != nil {
		t.Fatal(err)
	}
	if !it.SeekGE(key(50)) {
		t.Fatal("SeekGE failed")
	}
	if string(it.Value()) != string(val(50)) {
		t.Fatalf("snapshot saw new value %q", it.Value())
	}
	count := 0
	for ok := it.First(); ok; ok = it.Next() {
		count++
	}
	if count != 100 {
		t.Fatalf("snapshot sees %d keys, want 100", count)
	}
}

func TestIteratorSurvivesCompaction(t *testing.T) {
	db := mustOpen(t, testOptions(vfs.NewMem()))
	defer db.Close()
	for i := 0; i < 3000; i++ {
		if err := db.Put(key(i), val(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.Flush(); err != nil {
		t.Fatal(err)
	}
	it, err := db.NewIter()
	if err != nil {
		t.Fatal(err)
	}
	defer it.Close()
	if !it.First() {
		t.Fatal("First failed")
	}
	// Rewrite everything, forcing flushes and compactions that delete the
	// files the iterator is reading. The version pin must keep them alive.
	for i := 0; i < 3000; i++ {
		if err := db.Put(key(i), []byte("new")); err != nil {
			t.Fatal(err)
		}
	}
	count := 1
	for it.Next() {
		if string(it.Value()) == "new" {
			t.Fatal("snapshot saw post-iterator write")
		}
		count++
	}
	if err := it.Err(); err != nil {
		t.Fatal(err)
	}
	if count != 3000 {
		t.Fatalf("iterated %d keys, want 3000", count)
	}
}

func TestIteratorCloseReleasesFiles(t *testing.T) {
	fs := vfs.NewMem()
	db := mustOpen(t, testOptions(fs))
	defer db.Close()
	for i := 0; i < 3000; i++ {
		if err := db.Put(key(i), val(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.Flush(); err != nil {
		t.Fatal(err)
	}
	it, err := db.NewIter()
	if err != nil {
		t.Fatal(err)
	}
	it.First()
	// Rewriting triggers compactions; with the iterator open, obsolete
	// files must linger, and Close must let the GC reclaim them.
	for i := 0; i < 3000; i++ {
		if err := db.Put(key(i), []byte("new")); err != nil {
			t.Fatal(err)
		}
	}
	db.verMu.Lock()
	zombiesBefore := len(db.zombies)
	db.verMu.Unlock()
	if zombiesBefore == 0 {
		t.Skip("no zombies accumulated; compaction pattern changed")
	}
	it.Close()
	db.verMu.Lock()
	zombiesAfter := len(db.zombies)
	db.verMu.Unlock()
	if zombiesAfter >= zombiesBefore {
		t.Fatalf("Close did not release zombie files: %d -> %d", zombiesBefore, zombiesAfter)
	}
}

func TestBatchAtomicVisibility(t *testing.T) {
	db := mustOpen(t, testOptions(vfs.NewMem()))
	defer db.Close()
	b := NewBatch()
	for i := 0; i < 100; i++ {
		b.Put(key(i), val(i))
	}
	b.Delete(key(50))
	if b.Len() != 101 {
		t.Fatalf("Len = %d", b.Len())
	}
	if err := db.Apply(b); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		v, ok, _ := db.Get(key(i))
		if i == 50 {
			if ok {
				t.Fatal("deleted-in-batch key visible")
			}
			continue
		}
		if !ok || !bytes.Equal(v, val(i)) {
			t.Fatalf("Get(%d) = %q ok=%v", i, v, ok)
		}
	}
	// Reuse after Reset.
	b.Reset()
	if b.Len() != 0 {
		t.Fatal("Reset did not clear")
	}
	b.Put(key(200), val(200))
	if err := db.Apply(b); err != nil {
		t.Fatal(err)
	}
	if _, ok, _ := db.Get(key(200)); !ok {
		t.Fatal("write after reuse missing")
	}
}

func TestBatchSurvivesRecovery(t *testing.T) {
	fs := vfs.NewMem()
	opts := testOptions(fs)
	db := mustOpen(t, opts)
	b := NewBatch()
	for i := 0; i < 500; i++ {
		b.Put(key(i), val(i))
	}
	if err := db.Apply(b); err != nil {
		t.Fatal(err)
	}
	// Crash without Close; the batch must replay from the WAL.
	db2 := mustOpen(t, opts)
	defer db2.Close()
	for i := 0; i < 500; i += 37 {
		v, ok, _ := db2.Get(key(i))
		if !ok || !bytes.Equal(v, val(i)) {
			t.Fatalf("Get(%d) after crash = %q ok=%v", i, v, ok)
		}
	}
}

func TestEmptyBatchIsNoOp(t *testing.T) {
	db := mustOpen(t, testOptions(vfs.NewMem()))
	defer db.Close()
	if err := db.Apply(NewBatch()); err != nil {
		t.Fatal(err)
	}
}

func TestVerifyIntegrityCleanTree(t *testing.T) {
	db := mustOpen(t, testOptions(vfs.NewMem()))
	defer db.Close()
	rng := rand.New(rand.NewSource(9))
	for i := 0; i < 15000; i++ {
		if err := db.Put(key(rng.Intn(4000)), val(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.Flush(); err != nil {
		t.Fatal(err)
	}
	rep, err := db.VerifyIntegrity()
	if err != nil {
		t.Fatalf("VerifyIntegrity: %v", err)
	}
	if rep.Files == 0 || rep.Entries == 0 {
		t.Fatalf("report = %+v", rep)
	}
}

func TestVerifyIntegrityDetectsCorruption(t *testing.T) {
	fs := vfs.NewMem()
	db := mustOpen(t, testOptions(fs))
	defer db.Close()
	for i := 0; i < 5000; i++ {
		if err := db.Put(key(i), val(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.Flush(); err != nil {
		t.Fatal(err)
	}
	// Flip a byte inside the first data block of some SST file.
	names, err := fs.List("testdb")
	if err != nil {
		t.Fatal(err)
	}
	corrupted := false
	for _, name := range names {
		if len(name) > 4 && name[len(name)-4:] == ".sst" {
			f, err := fs.Open("testdb/" + name)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := f.WriteAt([]byte{0xAA, 0xBB, 0xCC}, 100); err != nil {
				t.Fatal(err)
			}
			corrupted = true
			break
		}
	}
	if !corrupted {
		t.Fatal("no sst file found to corrupt")
	}
	// The reader for the corrupted file may be cached with pinned index; a
	// data-block read must still fail its checksum.
	if _, err := db.VerifyIntegrity(); err == nil {
		t.Fatal("corruption not detected")
	}
}

// TestCompactionInvalidatesBlockCache pins the paper's core premise: after
// compactions rewrite files, previously cached blocks are dead weight (the
// hit rate collapses until re-warmed), while the range cache keeps serving.
func TestCompactionInvalidatesBlockCache(t *testing.T) {
	bc := blockcache.New(1 << 20)
	strategy := &blockOnlyStrategy{cache: bc}
	opts := testOptions(vfs.NewMem())
	opts.Strategy = strategy
	db := mustOpen(t, opts)
	defer db.Close()

	for i := 0; i < 3000; i++ {
		if err := db.Put(key(i), val(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.Flush(); err != nil {
		t.Fatal(err)
	}
	// Warm the block cache.
	for i := 0; i < 3000; i++ {
		if _, ok, _ := db.Get(key(i)); !ok {
			t.Fatal("warm read failed")
		}
	}
	warmReads := db.QueryBlockReads()
	// Re-read: almost everything should be cached.
	for i := 0; i < 3000; i++ {
		db.Get(key(i))
	}
	cachedReads := db.QueryBlockReads() - warmReads
	if cachedReads > 200 {
		t.Fatalf("warm cache still missed %d reads", cachedReads)
	}
	// Rewrite enough data to force compactions that replace the files.
	before := db.Metrics().Compactions
	for i := 0; i < 3000; i++ {
		if err := db.Put(key(i), val(i+100000)); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.Flush(); err != nil {
		t.Fatal(err)
	}
	if db.Metrics().Compactions == before {
		t.Skip("no compaction triggered; premise untestable at this size")
	}
	// The same reads now miss once per block of the rewritten tree: cached
	// blocks are keyed by dead files.
	blocks := int64(db.Metrics().TotalBytes) / int64(db.opts.BlockSize)
	mark := db.QueryBlockReads()
	for i := 0; i < 3000; i++ {
		db.Get(key(i))
	}
	invalidatedReads := db.QueryBlockReads() - mark
	if invalidatedReads < blocks/2 {
		t.Fatalf("compaction did not invalidate: %d misses for a %d-block tree", invalidatedReads, blocks)
	}
	if invalidatedReads < 5*(cachedReads+1) {
		t.Fatalf("post-compaction misses (%d) not clearly above warm-cache misses (%d)", invalidatedReads, cachedReads)
	}
}

// blockOnlyStrategy is a minimal block-cache-only strategy for engine tests
// (avoids importing internal/core, which would cycle).
type blockOnlyStrategy struct {
	NoCache
	cache *blockcache.Cache
}

func (s *blockOnlyStrategy) BlockCache() sstable.BlockCache { return s.cache }

func TestWriteAmplificationTracked(t *testing.T) {
	db := mustOpen(t, testOptions(vfs.NewMem()))
	defer db.Close()
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 20000; i++ {
		if err := db.Put(key(rng.Intn(4000)), val(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.Flush(); err != nil {
		t.Fatal(err)
	}
	m := db.Metrics()
	if m.UserBytes == 0 || m.FlushedBytes == 0 {
		t.Fatalf("byte accounting missing: %+v", m)
	}
	wa := m.WriteAmplification()
	// Flushing alone gives WA ≈ 1; leveled compaction multiplies it.
	if wa <= 1 {
		t.Fatalf("write amplification = %.2f, want > 1 with compactions (%d compactions)", wa, m.Compactions)
	}
	if wa > 50 {
		t.Fatalf("write amplification = %.2f, implausibly high", wa)
	}
}
