package lsm

import (
	"errors"
	"fmt"
	"time"

	"adcache/internal/block"
	"adcache/internal/keys"
	"adcache/internal/manifest"
	"adcache/internal/sstable"
	"adcache/internal/vfs"
)

// This file is the engine's background error handler — the analogue of
// RocksDB's ErrorHandler/auto-resume machinery. Background flush and
// compaction failures are classified and either retried with capped
// exponential backoff (transient I/O, out-of-space, paranoid-check rejects)
// or parked in an explicit read-only degraded mode (corruption of durable
// state) that DB.Resume exits. The pre-existing behaviour — one transient
// error poisoning a sticky bgErr until a manual Flush — is gone.

// ErrReadOnly is returned by writes while the DB is in read-only degraded
// mode. The triggering error is attached; errors.Is(err, ErrReadOnly) holds.
var ErrReadOnly = errors.New("lsm: database is read-only after a background corruption error; call Resume")

// BgErrorKind classifies a background failure for the retry policy.
type BgErrorKind int

const (
	// BgNone: no background error.
	BgNone BgErrorKind = iota
	// BgTransient: an I/O failure with nothing corrupt installed in the
	// tree (failed create/write/sync, or a paranoid-check reject whose
	// output was discarded). Retried with backoff.
	BgTransient
	// BgNoSpace: the device is full. Retried with backoff — space frees up
	// when compactions or the operator delete data.
	BgNoSpace
	// BgCorruption: durable state failed a checksum or structural check.
	// Retrying cannot help; the DB degrades to read-only until Resume.
	BgCorruption
)

// String names the kind for metrics and logs.
func (k BgErrorKind) String() string {
	switch k {
	case BgNone:
		return "none"
	case BgTransient:
		return "transient"
	case BgNoSpace:
		return "no-space"
	case BgCorruption:
		return "corruption"
	}
	return "unknown"
}

// bgState is the error handler's mode. Guarded by d.mu.
type bgState int32

const (
	bgHealthy bgState = iota
	bgRetrying
	bgReadOnly
)

func (s bgState) String() string {
	switch s {
	case bgHealthy:
		return "healthy"
	case bgRetrying:
		return "retrying"
	case bgReadOnly:
		return "read-only"
	}
	return "unknown"
}

// paranoidError marks a flush/compaction output that failed its pre-install
// verification. The bad table was deleted before this error was raised, so
// nothing durable is corrupt — the write is retried, not escalated.
type paranoidError struct {
	fileNum uint64
	err     error
}

func (e *paranoidError) Error() string {
	return fmt.Sprintf("lsm: paranoid check rejected table %06d: %v", e.fileNum, e.err)
}

func (e *paranoidError) Unwrap() error { return e.err }

// classifyBgError maps a background failure onto the retry policy. The
// paranoid marker is checked first: its cause wraps a corruption error, but
// the corrupt bytes never entered the tree, so it stays retryable.
func classifyBgError(err error) BgErrorKind {
	var pe *paranoidError
	if errors.As(err, &pe) {
		return BgTransient
	}
	if errors.Is(err, sstable.ErrCorrupt) || errors.Is(err, block.ErrCorrupt) {
		return BgCorruption
	}
	if errors.Is(err, vfs.ErrNoSpace) {
		return BgNoSpace
	}
	return BgTransient
}

// logf reports handler events through Options.Logf, if installed.
func (d *DB) logf(format string, args ...any) {
	if d.opts.Logf != nil {
		d.opts.Logf(format, args...)
	}
}

// backoffDelay computes the capped exponential delay before retry attempt
// (1-based).
func backoffDelay(base, cap time.Duration, attempt int) time.Duration {
	d := base
	for i := 1; i < attempt; i++ {
		d *= 2
		if d >= cap {
			return cap
		}
	}
	if d > cap {
		return cap
	}
	return d
}

// noteBgError records a background failure and decides its fate: retry
// (with the delay to wait) or park read-only. Called by the flush worker and
// by foreground Flush/Compact on error in background mode.
func (d *DB) noteBgError(err error) (retry bool, delay time.Duration) {
	kind := classifyBgError(err)
	d.mu.Lock()
	defer d.mu.Unlock()
	d.bgCause = err
	d.bgKind = kind
	if kind == BgCorruption {
		d.bgState = bgReadOnly
		// Wake stalled writers so they fail fast with ErrReadOnly instead
		// of blocking on backpressure that will never lift.
		d.bgCond.Broadcast()
		d.logf("lsm: corruption in background work, entering read-only mode: %v", err)
		return false, 0
	}
	d.bgAttempt++
	d.bgRetries++
	if d.opts.BgMaxRetries > 0 && d.bgAttempt >= d.opts.BgMaxRetries {
		d.bgState = bgReadOnly
		d.bgCond.Broadcast()
		d.logf("lsm: background error persisted through %d retries, entering read-only mode: %v", d.bgAttempt, err)
		return false, 0
	}
	d.bgState = bgRetrying
	delay = backoffDelay(d.opts.BgRetryBase, d.opts.BgRetryMaxDelay, d.bgAttempt)
	d.logf("lsm: background %s error (attempt %d, retry in %v): %v", kind, d.bgAttempt, delay, err)
	return true, delay
}

// clearBgError resets the handler after successful background work.
// Read-only mode is sticky: only Resume exits it.
func (d *DB) clearBgError() {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.bgState == bgReadOnly {
		return
	}
	if d.bgState == bgRetrying {
		d.logf("lsm: background error cleared after %d attempts", d.bgAttempt)
	}
	d.bgState = bgHealthy
	d.bgCause = nil
	d.bgKind = BgNone
	d.bgAttempt = 0
}

// readOnlyErrLocked builds the fail-fast write error. Caller holds d.mu.
func (d *DB) readOnlyErrLocked() error {
	if d.bgCause != nil {
		return fmt.Errorf("%w (cause: %v)", ErrReadOnly, d.bgCause)
	}
	return ErrReadOnly
}

// Resume exits read-only degraded mode: it clears the background error
// state, synchronously re-drives the flush/compaction backlog so the caller
// learns whether the tree is healthy again, and restarts background
// scheduling. Resuming a healthy DB is a no-op drain. If the backlog still
// fails, the error is re-classified (the DB may re-enter read-only) and
// returned.
func (d *DB) Resume() error {
	if d.closing.Load() {
		return ErrClosed
	}
	d.mu.Lock()
	if d.closed {
		d.mu.Unlock()
		return ErrClosed
	}
	if d.bgState == bgReadOnly {
		d.resumes++
		d.logf("lsm: resuming from read-only mode (was: %v)", d.bgCause)
	}
	d.bgState = bgHealthy
	d.bgCause = nil
	d.bgKind = BgNone
	d.bgAttempt = 0
	d.bgCond.Broadcast()
	d.mu.Unlock()

	if err := d.drainAndCompact(!d.opts.DisableAutoCompaction); err != nil {
		if !d.opts.InlineCompaction {
			d.noteBgError(err)
			d.notifyWorker()
		}
		return err
	}
	if !d.opts.InlineCompaction {
		d.notifyWorker()
	}
	return nil
}

// verifyNewTable re-reads a just-written, not-yet-installed table and
// checks it end to end: block checksums (every read re-verifies CRCs), key
// ordering, entry count and manifest bounds. Options.ParanoidChecks runs it
// on every flush/compaction output before the version install, so a bad
// write surfaces as a retried error instead of persisted corruption.
func (d *DB) verifyNewTable(meta *manifest.FileMeta) error {
	f, err := d.fs.Open(sstPath(d.opts.Dir, meta.FileNum))
	if err != nil {
		return err
	}
	defer f.Close()
	// A fresh uncached reader: the table cache must not learn about (or
	// pin) a file that may be rejected and deleted.
	r, err := sstable.NewReader(f, sstable.ReaderOptions{FileNum: meta.FileNum})
	if err != nil {
		return err
	}
	it, err := r.NewIterNoCache()
	if err != nil {
		return err
	}
	defer it.Close()
	var prev keys.InternalKey
	var count uint64
	for ok := it.First(); ok; ok = it.Next() {
		ik := it.Key()
		if prev != nil && keys.Compare(prev, ik) >= 0 {
			return fmt.Errorf("keys out of order (%s >= %s)", prev, ik)
		}
		if count == 0 && keys.Compare(ik, meta.Smallest) != 0 {
			return fmt.Errorf("first key %s != meta smallest %s", ik, meta.Smallest)
		}
		prev = append(prev[:0], ik...)
		count++
	}
	if err := it.Err(); err != nil {
		return err
	}
	if count != meta.NumEntries {
		return fmt.Errorf("%d entries, meta says %d", count, meta.NumEntries)
	}
	if count > 0 && keys.Compare(prev, meta.Largest) != 0 {
		return fmt.Errorf("last key %s != meta largest %s", prev, meta.Largest)
	}
	return nil
}

// paranoidCheck verifies meta when ParanoidChecks is on. On failure the bad
// file is deleted and a retryable paranoidError is returned.
func (d *DB) paranoidCheck(meta *manifest.FileMeta) error {
	if !d.opts.ParanoidChecks {
		return nil
	}
	if err := d.verifyNewTable(meta); err != nil {
		path := sstPath(d.opts.Dir, meta.FileNum)
		if d.fs.Exists(path) {
			d.fs.Remove(path)
		}
		return &paranoidError{fileNum: meta.FileNum, err: err}
	}
	return nil
}
