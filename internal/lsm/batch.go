package lsm

import (
	"adcache/internal/keys"
)

// Batch accumulates writes to be applied atomically: either every operation
// in the batch becomes durable and visible, or (on a crash mid-commit) the
// WAL's torn-tail handling discards the incomplete suffix and recovery
// keeps none of the later records beyond the first corruption — operations
// within a batch are assigned consecutive sequence numbers and appended as
// one run.
type Batch struct {
	ops []batchOp
}

type batchOp struct {
	kind  keys.Kind
	key   []byte
	value []byte
}

// NewBatch returns an empty batch.
func NewBatch() *Batch { return &Batch{} }

// Put queues key=value.
func (b *Batch) Put(key, value []byte) {
	b.ops = append(b.ops, batchOp{
		kind:  keys.KindSet,
		key:   append([]byte(nil), key...),
		value: append([]byte(nil), value...),
	})
}

// Delete queues a deletion of key.
func (b *Batch) Delete(key []byte) {
	b.ops = append(b.ops, batchOp{
		kind: keys.KindDelete,
		key:  append([]byte(nil), key...),
	})
}

// Len reports the number of queued operations.
func (b *Batch) Len() int { return len(b.ops) }

// Reset clears the batch for reuse.
func (b *Batch) Reset() { b.ops = b.ops[:0] }

// Apply commits the batch through the group-commit pipeline: the batch's
// operations receive consecutive sequence numbers within whichever write
// group commits them. The batch may be Reset and reused afterwards.
func (d *DB) Apply(b *Batch) error {
	if len(b.ops) == 0 {
		return nil
	}
	// The pipeline retains ops until the group commits; copy the slice
	// header's backing so Reset-and-refill cannot race a slow group.
	return d.commit(append([]batchOp(nil), b.ops...))
}
