package lsm

import (
	"adcache/internal/keys"
	"adcache/internal/wal"
)

// Batch accumulates writes to be applied atomically: either every operation
// in the batch becomes durable and visible, or (on a crash mid-commit) the
// WAL's torn-tail handling discards the incomplete suffix and recovery
// keeps none of the later records beyond the first corruption — operations
// within a batch are assigned consecutive sequence numbers and appended as
// one run.
type Batch struct {
	ops []batchOp
}

type batchOp struct {
	kind  keys.Kind
	key   []byte
	value []byte
}

// NewBatch returns an empty batch.
func NewBatch() *Batch { return &Batch{} }

// Put queues key=value.
func (b *Batch) Put(key, value []byte) {
	b.ops = append(b.ops, batchOp{
		kind:  keys.KindSet,
		key:   append([]byte(nil), key...),
		value: append([]byte(nil), value...),
	})
}

// Delete queues a deletion of key.
func (b *Batch) Delete(key []byte) {
	b.ops = append(b.ops, batchOp{
		kind: keys.KindDelete,
		key:  append([]byte(nil), key...),
	})
}

// Len reports the number of queued operations.
func (b *Batch) Len() int { return len(b.ops) }

// Reset clears the batch for reuse.
func (b *Batch) Reset() { b.ops = b.ops[:0] }

// Apply commits the batch. The batch may be Reset and reused afterwards.
func (d *DB) Apply(b *Batch) error {
	if len(b.ops) == 0 {
		return nil
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return ErrClosed
	}
	if n := len(d.version.Levels[0]); n >= d.opts.L0StopTrigger {
		d.stallStops++
	} else if n >= d.opts.L0CompactTrigger {
		d.stallSlowdowns++
	}

	// WAL first: all records land before any becomes visible in the
	// memtable, so a crash between records replays a prefix whose
	// operations are individually intact; visibility is all-or-nothing
	// because the memtable inserts below happen after every append
	// succeeded.
	startSeq := d.lastSeq + 1
	for i, op := range b.ops {
		rec := wal.Record{Seq: startSeq + uint64(i), Kind: op.kind, Key: op.key, Value: op.value}
		if err := d.log.Append(rec); err != nil {
			return err
		}
	}
	d.lastSeq += uint64(len(b.ops))

	for i, op := range b.ops {
		d.mem.Set(keys.Make(op.key, startSeq+uint64(i), op.kind), op.value)
		d.userBytes += int64(len(op.key) + len(op.value))
		d.strategy.OnWrite(op.key, op.value, op.kind == keys.KindDelete)
	}

	if d.mem.ApproximateSize() >= d.opts.MemTableSize {
		return d.flushLocked()
	}
	return nil
}
