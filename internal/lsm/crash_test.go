package lsm

import (
	"fmt"
	"math/rand"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"adcache/internal/vfs"
)

// This file is the crash-consistency harness: a deterministic crash-point
// sweep (kill the device after every Nth FS operation, reopen, check the
// durability contract) plus seeded randomized crash/reopen stress. The
// contract under test: every write acknowledged after a WAL sync survives,
// batches are all-or-nothing, and recovery never errors or reports an
// inconsistent tree, no matter where the crash lands.

const crashKeyPool = 40

// crashOpts is the sweep's engine configuration: tiny tables so a short
// workload crosses many flush/compaction/manifest windows, inline compaction
// so the FS operation sequence is a deterministic function of the workload.
// dir parameterizes the database directory so the same harness runs on MemFS
// ("crashdb") and on a real directory via OSFS.
func crashOpts(fs vfs.FS, dir string) Options {
	opts := DefaultOptions(dir)
	opts.FS = fs
	opts.MemTableSize = 4 << 10
	opts.L1TargetSize = 8 << 10
	opts.TargetFileSize = 4 << 10
	opts.InlineCompaction = true
	opts.Seed = 42
	return opts
}

// crashOp returns the j-th scripted workload operation: overwrites and
// deletes over a fixed key pool, with values fat enough to force flushes.
func crashOp(j int) (del bool, k, v []byte) {
	k = key(j % crashKeyPool)
	if j%13 == 12 {
		return true, k, nil
	}
	return false, k, []byte(fmt.Sprintf("val%08d-%s", j, strings.Repeat("x", 100)))
}

const crashWorkloadOps = 150

// runCrashWorkload opens a DB on fs and applies the scripted workload,
// tracking the model of acknowledged state. failedAt is the index of the op
// that observed the crash (-1 if none, -2 if Open itself crashed). The model
// contains only acked ops: op failedAt may or may not have applied.
func runCrashWorkload(fs vfs.FS, dir string) (model map[string]string, failedAt int) {
	model = map[string]string{}
	db, err := Open(crashOpts(fs, dir))
	if err != nil {
		return model, -2
	}
	for j := 0; j < crashWorkloadOps; j++ {
		del, k, v := crashOp(j)
		if del {
			err = db.Delete(k)
		} else {
			err = db.Put(k, v)
		}
		if err != nil {
			db.Close() // device is gone; errors here are expected
			return model, j
		}
		if del {
			delete(model, string(k))
		} else {
			model[string(k)] = string(v)
		}
	}
	db.Close() // may crash mid-close; everything acked is already synced
	return model, -1
}

// verifyCrashRecovery reopens the post-crash file system and asserts the
// durability contract against the acked model. The op in flight at the crash
// (if any) is allowed to have either fully applied or not at all — never
// half-applied, which the integrity check and value comparison would catch.
func verifyCrashRecovery(t *testing.T, fs vfs.FS, dir string, model map[string]string, failedAt int) {
	t.Helper()
	db, err := Open(crashOpts(fs, dir))
	if err != nil {
		t.Fatalf("reopen after crash: %v", err)
	}
	defer db.Close()
	if _, err := db.VerifyIntegrity(); err != nil {
		t.Fatalf("integrity after crash: %v", err)
	}
	var exemptKey string
	var exemptDel bool
	var exemptVal string
	if failedAt >= 0 {
		del, k, v := crashOp(failedAt)
		exemptKey, exemptDel, exemptVal = string(k), del, string(v)
	}
	for i := 0; i < crashKeyPool; i++ {
		k := key(i)
		got, ok, err := db.Get(k)
		if err != nil {
			t.Fatalf("Get(%s) after crash: %v", k, err)
		}
		want, inModel := model[string(k)]
		if string(k) == exemptKey {
			oldOK := (inModel && ok && string(got) == want) || (!inModel && !ok)
			newOK := (!exemptDel && ok && string(got) == exemptVal) || (exemptDel && !ok)
			if !oldOK && !newOK {
				t.Fatalf("in-flight key %s half-applied: got %q ok=%v (old: %q in=%v, attempted del=%v val=%q)",
					k, got, ok, want, inModel, exemptDel, exemptVal)
			}
			continue
		}
		if inModel != ok {
			t.Fatalf("key %s: present=%v, acked model says present=%v", k, ok, inModel)
		}
		if ok && string(got) != want {
			t.Fatalf("key %s: got %q, acked %q", k, got, want)
		}
	}
}

// countCrashWorkloadOps runs the workload uninterrupted to learn how many FS
// operations the full run performs — the sweep's domain.
func countCrashWorkloadOps(t *testing.T) int64 {
	t.Helper()
	cfs := vfs.NewCrash(vfs.NewMem())
	if _, failedAt := runCrashWorkload(cfs, "crashdb"); failedAt != -1 {
		t.Fatalf("unarmed workload reported crash at op %d", failedAt)
	}
	total := cfs.OpCount()
	if total < 100 {
		t.Fatalf("workload performed only %d FS ops; sweep would be trivial", total)
	}
	return total
}

// TestCrashPointSweep kills the simulated device after every Nth durable FS
// operation of the scripted workload — covering WAL appends and syncs,
// SSTable writes, manifest tmp/sync/rename windows and WAL retirement — and
// verifies recovery at each point.
func TestCrashPointSweep(t *testing.T) {
	total := countCrashWorkloadOps(t)
	step := int64(1)
	if max := int64(400); total > max {
		step = total / max
	}
	t.Logf("sweeping %d crash points (every %d of %d FS ops)", total/step, step, total)
	for p := int64(0); p <= total; p += step {
		cfs := vfs.NewCrash(vfs.NewMem())
		cfs.ArmCrash(p)
		model, failedAt := runCrashWorkload(cfs, "crashdb")
		if p < total && !cfs.Crashed() {
			t.Fatalf("crash point %d: workload completed without hitting the crash", p)
		}
		recovered := cfs.Crash(vfs.CrashOptions{})
		verifyCrashRecovery(t, recovered, "crashdb", model, failedAt)
	}
}

// TestCrashPointSweepTornTail repeats the sweep with torn tails: the crash
// keeps a sector-aligned prefix of each file's unsynced bytes, so recovery
// must also cope with partially persisted records past the durable point.
func TestCrashPointSweepTornTail(t *testing.T) {
	total := countCrashWorkloadOps(t)
	step := int64(1)
	if max := int64(150); total > max {
		step = total / max
	}
	for p := int64(0); p <= total; p += step {
		cfs := vfs.NewCrash(vfs.NewMem())
		cfs.ArmCrash(p)
		model, failedAt := runCrashWorkload(cfs, "crashdb")
		recovered := cfs.Crash(vfs.CrashOptions{
			Seed:         p,
			KeepTornTail: true,
			SectorSize:   512,
		})
		verifyCrashRecovery(t, recovered, "crashdb", model, failedAt)
	}
}

// TestWALTornTailRecovery is the targeted regression for the torn-WAL-tail
// window: acked writes followed by a crash that tears the log's unsynced
// tail mid-record. Reopen must replay every acked write and stop cleanly at
// the tear.
func TestWALTornTailRecovery(t *testing.T) {
	for seed := int64(0); seed < 8; seed++ {
		cfs := vfs.NewCrash(vfs.NewMem())
		model, failedAt := runCrashWorkload(cfs, "crashdb")
		if failedAt != -1 {
			t.Fatalf("seed %d: unarmed workload crashed at %d", seed, failedAt)
		}
		// Tear at a random sector boundary of whatever was unsynced at the
		// end; with per-group WAL sync the acked model must survive intact.
		recovered := cfs.Crash(vfs.CrashOptions{Seed: seed, KeepTornTail: true, SectorSize: 512})
		verifyCrashRecovery(t, recovered, "crashdb", model, -1)
	}
}

// crashStress drives repeated crash/reopen cycles against one evolving file
// system: each cycle opens the survivor of the previous crash, applies a
// random workload until the device dies (or the workload ends), crashes with
// randomized torn/kept tails, then reopens and checks the acked model.
//
// With osDir empty the evolving disk is MemFS-backed. A non-empty osDir runs
// every cycle against the real file system instead: CrashFS wraps OSFS
// root-scoped to osDir, and each post-crash image is materialised back onto
// the directory so the next cycle (and the verification reopen, which then
// exercises OSFS reads and memory maps) starts from exactly what survived.
func crashStress(t *testing.T, inline bool, cycles int, seed int64, osDir string) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	dir := "crashdb"
	var fs vfs.FS = vfs.NewMem()
	if osDir != "" {
		dir = osDir
		fs = vfs.NewOS()
	}
	model := map[string]string{}
	crashes := 0
	for cycle := 0; cycle < cycles; cycle++ {
		cfs := vfs.NewCrash(fs)
		if osDir != "" {
			cfs.SetRoot(dir)
		}
		cfs.ArmCrash(int64(rng.Intn(400) + 1))
		opts := crashOpts(cfs, dir)
		opts.InlineCompaction = inline
		if !inline {
			// A dead device never heals: escalate to read-only quickly so
			// writers fail fast instead of stalling behind a flush that
			// cannot complete.
			opts.BgMaxRetries = 2
			opts.BgRetryBase = time.Millisecond
			opts.BgRetryMaxDelay = 2 * time.Millisecond
		}
		exemptKey := ""
		exemptDel := false
		exemptVal := ""
		db, err := Open(opts)
		if err == nil {
			nops := rng.Intn(120) + 20
			for j := 0; j < nops; j++ {
				k := key(rng.Intn(crashKeyPool))
				if rng.Intn(8) == 0 {
					if err := db.Delete(k); err != nil {
						exemptKey, exemptDel = string(k), true
						break
					}
					delete(model, string(k))
				} else {
					v := fmt.Sprintf("cyc%04d-op%04d-%s", cycle, j, strings.Repeat("v", 60))
					if err := db.Put(k, []byte(v)); err != nil {
						exemptKey, exemptDel, exemptVal = string(k), false, v
						break
					}
					model[string(k)] = v
				}
			}
			db.Close()
		}
		if cfs.Crashed() {
			crashes++
		}
		img := cfs.Crash(vfs.CrashOptions{
			Seed:         seed ^ int64(cycle),
			KeepTornTail: cycle%2 == 0,
			SectorSize:   512,
			KeepAllProb:  0.3,
		})
		if osDir != "" {
			materializeOS(t, img, dir)
			fs = vfs.NewOS()
		} else {
			fs = img
		}

		// Reopen the survivor and check the acked model; the single
		// in-flight op may have landed either way.
		db2, err := Open(crashOpts(fs, dir))
		if err != nil {
			t.Fatalf("cycle %d: reopen after crash: %v", cycle, err)
		}
		if _, err := db2.VerifyIntegrity(); err != nil {
			db2.Close()
			t.Fatalf("cycle %d: integrity after crash: %v", cycle, err)
		}
		for i := 0; i < crashKeyPool; i++ {
			k := key(i)
			got, ok, err := db2.Get(k)
			if err != nil {
				db2.Close()
				t.Fatalf("cycle %d: Get(%s): %v", cycle, k, err)
			}
			want, inModel := model[string(k)]
			if string(k) == exemptKey {
				oldOK := (inModel && ok && string(got) == want) || (!inModel && !ok)
				newOK := (!exemptDel && ok && string(got) == exemptVal) || (exemptDel && !ok)
				if !oldOK && !newOK {
					db2.Close()
					t.Fatalf("cycle %d: in-flight key %s half-applied: got %q ok=%v", cycle, k, got, ok)
				}
				// The crash resolved the ambiguity; adopt the durable truth.
				if ok {
					model[string(k)] = string(got)
				} else {
					delete(model, string(k))
				}
				continue
			}
			if inModel != ok || (ok && string(got) != want) {
				db2.Close()
				t.Fatalf("cycle %d: key %s: got %q ok=%v, acked %q in=%v", cycle, k, got, ok, want, inModel)
			}
		}
		if err := db2.Close(); err != nil {
			t.Fatalf("cycle %d: close verifier: %v", cycle, err)
		}
	}
	if crashes < cycles/2 {
		t.Fatalf("only %d/%d cycles actually crashed; arm range too large", crashes, cycles)
	}
}

// TestCrashStressRandomizedInline: 200 seeded crash/reopen cycles against
// the deterministic inline engine.
func TestCrashStressRandomizedInline(t *testing.T) {
	crashStress(t, true, 200, 0x5eed, "")
}

// TestCrashStressRandomizedBackground: the same stress against the
// concurrent engine — background flush/compaction, group commit, the error
// handler escalating the dead device to read-only mode.
func TestCrashStressRandomizedBackground(t *testing.T) {
	crashStress(t, false, 50, 0xbeef, "")
}

// materializeOS replays a post-crash disk image onto the real directory:
// everything currently there is removed, then the image's files are written,
// synced and closed, so the directory holds exactly what survived the cut.
func materializeOS(t *testing.T, img *vfs.MemFS, dir string) {
	t.Helper()
	osfs := vfs.NewOS()
	if names, err := osfs.List(dir); err == nil {
		for _, n := range names {
			if err := osfs.Remove(filepath.Join(dir, n)); err != nil {
				t.Fatal(err)
			}
		}
	}
	for _, name := range img.AllFiles() {
		src, err := img.Open(name)
		if err != nil {
			t.Fatal(err)
		}
		size, err := src.Size()
		if err != nil {
			t.Fatal(err)
		}
		data := make([]byte, size)
		if size > 0 {
			if _, err := src.ReadAt(data, 0); err != nil {
				t.Fatal(err)
			}
		}
		src.Close()
		dst, err := osfs.Create(name)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := dst.Write(data); err != nil {
			t.Fatal(err)
		}
		if err := dst.Sync(); err != nil {
			t.Fatal(err)
		}
		if err := dst.Close(); err != nil {
			t.Fatal(err)
		}
	}
}

// TestCrashPointSweepOSFS runs the crash-point sweep on the real file
// system: CrashFS over OSFS in a fresh temp directory per point, with the
// crash-time enumeration root-scoped to the database directory. Short mode
// sweeps a thinner grid; CI runs the short variant.
func TestCrashPointSweepOSFS(t *testing.T) {
	probeDir := filepath.Join(t.TempDir(), "crashdb")
	probe := vfs.NewCrash(vfs.NewOS())
	probe.SetRoot(probeDir)
	if _, failedAt := runCrashWorkload(probe, probeDir); failedAt != -1 {
		t.Fatalf("unarmed workload reported crash at op %d", failedAt)
	}
	total := probe.OpCount()
	points := int64(60)
	if testing.Short() {
		points = 12
	}
	step := total / points
	if step == 0 {
		step = 1
	}
	t.Logf("sweeping %d OSFS crash points (every %d of %d FS ops)", total/step, step, total)
	for p := int64(0); p <= total; p += step {
		dir := filepath.Join(t.TempDir(), "crashdb")
		cfs := vfs.NewCrash(vfs.NewOS())
		cfs.SetRoot(dir)
		cfs.ArmCrash(p)
		model, failedAt := runCrashWorkload(cfs, dir)
		if p < total && !cfs.Crashed() {
			t.Fatalf("crash point %d: workload completed without hitting the crash", p)
		}
		recovered := cfs.Crash(vfs.CrashOptions{Seed: p, KeepTornTail: p%2 == 0, SectorSize: 512})
		verifyCrashRecovery(t, recovered, dir, model, failedAt)
	}
}

// TestCrashStressRandomizedOSFS: seeded crash/reopen stress where every
// cycle runs on a real directory through OSFS, including the verification
// reopen (which reads the recovered tables through the memory-map path).
func TestCrashStressRandomizedOSFS(t *testing.T) {
	cycles := 25
	if testing.Short() {
		cycles = 6
	}
	crashStress(t, true, cycles, 0x05f5, filepath.Join(t.TempDir(), "crashdb"))
}

// TestManifestCrashWindowLSM crashes inside every FS operation of a single
// flush — the window that includes the manifest tmp write, sync, rename and
// WAL retirement — and checks the flush is all-or-nothing across reopen.
func TestManifestCrashWindowLSM(t *testing.T) {
	// Count the ops of: open, 60 acked puts, Flush.
	prep := func(fs vfs.FS) (*DB, map[string]string, error) {
		opts := crashOpts(fs, "crashdb")
		opts.MemTableSize = 1 << 20 // no incidental seals: Flush is the window
		db, err := Open(opts)
		if err != nil {
			return nil, nil, err
		}
		model := map[string]string{}
		for j := 0; j < 60; j++ {
			_, k, v := crashOp(j * 2) // even ops only: no deletes
			if err := db.Put(k, v); err != nil {
				db.Close()
				return nil, nil, err
			}
			model[string(k)] = string(v)
		}
		return db, model, nil
	}
	probe := vfs.NewCrash(vfs.NewMem())
	db, _, err := prep(probe)
	if err != nil {
		t.Fatalf("probe prep: %v", err)
	}
	before := probe.OpCount()
	if err := db.Flush(); err != nil {
		t.Fatalf("probe flush: %v", err)
	}
	flushOps := probe.OpCount() - before
	db.Close()
	if flushOps < 3 {
		t.Fatalf("flush performed only %d FS ops", flushOps)
	}

	for p := int64(0); p <= flushOps; p++ {
		cfs := vfs.NewCrash(vfs.NewMem())
		db, model, err := prep(cfs)
		if err != nil {
			t.Fatalf("crash point %d: prep failed before arming: %v", p, err)
		}
		cfs.ArmCrash(p) // relative: p more ops succeed, then the device dies
		db.Flush()      // may fail at any internal op
		db.Close()
		recovered := cfs.Crash(vfs.CrashOptions{Seed: p, KeepTornTail: p%2 == 0, SectorSize: 512})
		verifyCrashRecovery(t, recovered, "crashdb", model, -1)
	}
}
