package lsm

import "adcache/internal/manifest"

// versionHandle reference-counts a Version so that in-flight reads can pin
// the file set they iterate while compactions install newer versions.
// Obsolete files are deleted only once no live handle references them.
type versionHandle struct {
	v    *manifest.Version
	refs int // guarded by DB.verMu
}

// acquireVersion pins the current version for a read operation.
func (d *DB) acquireVersion() *versionHandle {
	d.verMu.Lock()
	h := d.current
	h.refs++
	d.verMu.Unlock()
	return h
}

// releaseVersion unpins h, garbage-collecting obsolete files when the last
// reference to a superseded version drops.
func (d *DB) releaseVersion(h *versionHandle) {
	d.verMu.Lock()
	h.refs--
	if h.refs == 0 && h != d.current {
		delete(d.live, h)
		d.gcFilesLocked()
	}
	d.verMu.Unlock()
}

// installVersion publishes v as the current version. obsolete lists file
// numbers no longer part of any future version; they are deleted as soon as
// no pinned version references them. Caller holds d.mu.
func (d *DB) installVersion(v *manifest.Version, obsolete []uint64) {
	d.verMu.Lock()
	old := d.current
	h := &versionHandle{v: v, refs: 1} // the "current" reference
	d.current = h
	d.live[h] = struct{}{}
	d.version = v
	for _, fn := range obsolete {
		d.zombies[fn] = true
	}
	if old != nil {
		old.refs--
		if old.refs == 0 {
			delete(d.live, old)
		}
	}
	d.gcFilesLocked()
	d.verMu.Unlock()

	info := ShapeInfo{
		NonEmptyLevels: v.NumNonEmptyLevels(),
		SortedRuns:     v.NumSortedRuns(),
		L0Files:        len(v.Levels[0]),
	}
	for _, level := range v.Levels {
		for _, f := range level {
			info.TotalEntries += f.NumEntries
			info.TotalBytes += f.Size
		}
	}
	d.shapeInfo.Store(info)
}

// gcFilesLocked deletes zombie files referenced by no live version.
// Caller holds d.verMu.
func (d *DB) gcFilesLocked() {
	if len(d.zombies) == 0 {
		return
	}
	referenced := make(map[uint64]bool)
	for h := range d.live {
		for _, level := range h.v.Levels {
			for _, f := range level {
				referenced[f.FileNum] = true
			}
		}
	}
	for fn := range d.zombies {
		if referenced[fn] {
			continue
		}
		delete(d.zombies, fn)
		d.tc.evict(fn)
		// Deferred, not deleted: the on-disk manifest may still reference
		// this file. Physical removal happens after the next successful
		// manifest save (deleteObsoleteFiles) — a crash in between must
		// recover from a manifest whose whole file set is still present.
		d.deletable = append(d.deletable, fn)
	}
}

// deleteObsoleteFiles physically removes files queued by the version GC.
// Called only after a manifest that no longer references them has been
// durably saved; anything queued afterwards waits for the next save (or, if
// the process dies first, for the orphan sweep on reopen).
func (d *DB) deleteObsoleteFiles() {
	d.verMu.Lock()
	pending := d.deletable
	d.deletable = nil
	d.verMu.Unlock()
	for _, fn := range pending {
		// Removal failures are harmless (the file may already be gone);
		// the next reopen's orphan sweep retries.
		_ = d.fs.Remove(sstPath(d.opts.Dir, fn))
	}
}
