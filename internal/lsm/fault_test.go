package lsm

import (
	"bytes"
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"testing"

	"adcache/internal/sstable"
	"adcache/internal/vfs"
)

// TestWALWriteFailureSurfacesError checks that an injected WAL write failure
// is reported to the caller instead of being swallowed.
func TestWALWriteFailureSurfacesError(t *testing.T) {
	ffs := vfs.NewFault(vfs.NewMem())
	opts := testOptions(ffs)
	db := mustOpen(t, opts)
	defer db.Close()

	if err := db.Put(key(1), val(1)); err != nil {
		t.Fatal(err)
	}
	ffs.FailAfterWrites(0)
	if err := db.Put(key(2), val(2)); err == nil {
		t.Fatal("Put succeeded despite WAL write failure")
	}
	ffs.Reset()
	// The store remains usable once the fault clears.
	if err := db.Put(key(3), val(3)); err != nil {
		t.Fatalf("Put after fault cleared: %v", err)
	}
	if v, ok, _ := db.Get(key(1)); !ok || !bytes.Equal(v, val(1)) {
		t.Fatal("pre-fault write lost")
	}
}

// TestFlushCreateFailure checks flush failures propagate and do not corrupt
// the in-memory state.
func TestFlushCreateFailure(t *testing.T) {
	ffs := vfs.NewFault(vfs.NewMem())
	opts := testOptions(ffs)
	db := mustOpen(t, opts)
	defer db.Close()
	for i := 0; i < 50; i++ {
		if err := db.Put(key(i), val(i)); err != nil {
			t.Fatal(err)
		}
	}
	ffs.FailCreates(1)
	if err := db.Flush(); err == nil {
		t.Fatal("Flush succeeded despite create failure")
	}
	ffs.Reset()
	// Data still readable from the memtable, and a retried flush works.
	for i := 0; i < 50; i += 7 {
		if v, ok, _ := db.Get(key(i)); !ok || !bytes.Equal(v, val(i)) {
			t.Fatalf("Get(%d) after failed flush", i)
		}
	}
	if err := db.Flush(); err != nil {
		t.Fatalf("retried Flush: %v", err)
	}
	for i := 0; i < 50; i += 7 {
		if v, ok, _ := db.Get(key(i)); !ok || !bytes.Equal(v, val(i)) {
			t.Fatalf("Get(%d) after retried flush", i)
		}
	}
}

// TestReadFailureSurfaces checks injected read errors reach Get callers.
func TestReadFailureSurfaces(t *testing.T) {
	ffs := vfs.NewFault(vfs.NewMem())
	opts := testOptions(ffs)
	db := mustOpen(t, opts)
	defer db.Close()
	for i := 0; i < 2000; i++ {
		if err := db.Put(key(i), val(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.Flush(); err != nil {
		t.Fatal(err)
	}
	ffs.SetFailReads(true)
	// Some key must require a table read (memtable is empty after flush).
	_, _, err := db.Get(key(123))
	ffs.SetFailReads(false)
	if err == nil {
		t.Fatal("Get succeeded despite read failure")
	}
	if _, ok, err := db.Get(key(123)); err != nil || !ok {
		t.Fatalf("Get after fault cleared: ok=%v err=%v", ok, err)
	}
}

// TestRandomizedModelCheck drives random operations against the DB and a
// map model, with periodic flushes, compactions and reopens, verifying
// point and range reads agree throughout.
func TestRandomizedModelCheck(t *testing.T) {
	for seed := int64(1); seed <= 3; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			fs := vfs.NewMem()
			opts := testOptions(fs)
			opts.MemTableSize = 4 << 10 // frequent flushes
			db := mustOpen(t, opts)
			model := map[string]string{}
			rng := rand.New(rand.NewSource(seed))

			modelScan := func(start string, n int) []KV {
				var ks []string
				for k := range model {
					if k >= start {
						ks = append(ks, k)
					}
				}
				sort.Strings(ks)
				if len(ks) > n {
					ks = ks[:n]
				}
				out := make([]KV, len(ks))
				for i, k := range ks {
					out[i] = KV{Key: []byte(k), Value: []byte(model[k])}
				}
				return out
			}

			for op := 0; op < 3000; op++ {
				k := fmt.Sprintf("key%04d", rng.Intn(400))
				switch rng.Intn(10) {
				case 0, 1, 2, 3:
					v := fmt.Sprintf("val%08d", op)
					if err := db.Put([]byte(k), []byte(v)); err != nil {
						t.Fatal(err)
					}
					model[k] = v
				case 4:
					if err := db.Delete([]byte(k)); err != nil {
						t.Fatal(err)
					}
					delete(model, k)
				case 5, 6:
					v, ok, err := db.Get([]byte(k))
					if err != nil {
						t.Fatal(err)
					}
					want, wantOK := model[k]
					if ok != wantOK || (ok && string(v) != want) {
						t.Fatalf("op %d: Get(%s) = %q,%v want %q,%v", op, k, v, ok, want, wantOK)
					}
				case 7, 8:
					n := 1 + rng.Intn(10)
					got, err := db.Scan([]byte(k), n)
					if err != nil {
						t.Fatal(err)
					}
					want := modelScan(k, n)
					if len(got) != len(want) {
						t.Fatalf("op %d: Scan(%s,%d) len %d want %d", op, k, n, len(got), len(want))
					}
					for i := range got {
						if !bytes.Equal(got[i].Key, want[i].Key) || !bytes.Equal(got[i].Value, want[i].Value) {
							t.Fatalf("op %d: Scan mismatch at %d: %s=%s want %s=%s",
								op, i, got[i].Key, got[i].Value, want[i].Key, want[i].Value)
						}
					}
				case 9:
					if op%500 == 499 {
						// Reopen: everything must survive.
						if err := db.Close(); err != nil {
							t.Fatal(err)
						}
						db = mustOpen(t, opts)
					} else if rng.Intn(2) == 0 {
						if err := db.Flush(); err != nil {
							t.Fatal(err)
						}
					} else {
						if err := db.Compact(); err != nil {
							t.Fatal(err)
						}
					}
				}
			}
			db.Close()
		})
	}
}

// TestPrefetchOnCompactionWarmsCache verifies the Leaper-style option
// repopulates the block cache after compactions.
func TestPrefetchOnCompactionWarmsCache(t *testing.T) {
	run := func(prefetch int) int {
		fs := vfs.NewMem()
		opts := testOptions(fs)
		opts.PrefetchOnCompaction = prefetch
		strategy := &countingStrategy{}
		opts.Strategy = strategy
		db := mustOpen(t, opts)
		defer db.Close()
		for i := 0; i < 20000; i++ {
			if err := db.Put(key(i%4000), val(i)); err != nil {
				t.Fatal(err)
			}
		}
		return strategy.cache.inserts()
	}
	cold := run(0)
	warm := run(8)
	if warm <= cold {
		t.Fatalf("prefetch did not add cache inserts: %d vs %d", warm, cold)
	}
}

// countingStrategy is a minimal strategy with a counting block cache.
type countingStrategy struct {
	NoCache
	cache countingBlockCache
}

func (s *countingStrategy) BlockCache() sstable.BlockCache { return &s.cache }

// countingBlockCache counts inserts; it stores nothing.
type countingBlockCache struct {
	mu sync.Mutex
	n  int
}

func (c *countingBlockCache) Get(uint64, uint64) ([]byte, bool) { return nil, false }

func (c *countingBlockCache) Insert(_, _ uint64, _ []byte, _ int, _ bool) {
	c.mu.Lock()
	c.n++
	c.mu.Unlock()
}

func (c *countingBlockCache) inserts() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.n
}
