// Package lsm implements the leveled LSM-tree storage engine the AdCache
// reproduction runs on: a scaled-down analogue of the RocksDB configuration
// used by the paper (1-leveling with size ratio 10, 4 KiB blocks, Bloom
// filters at 10 bits/key, L0 slowdown/stop triggers).
//
// The engine exposes the paper's Figure 5 integration points through the
// CacheStrategy interface: result caches are consulted before the MemTable,
// block reads flow through a pluggable block cache, and completed queries
// and writes are reported back to the strategy for admission and coherence.
package lsm

import (
	"bytes"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"adcache/internal/compaction"
	"adcache/internal/keys"
	"adcache/internal/manifest"
	"adcache/internal/memtable"
	"adcache/internal/metrics"
	"adcache/internal/sstable"
	"adcache/internal/vfs"
	"adcache/internal/wal"
)

// ErrClosed is returned by operations on a closed DB.
var ErrClosed = errors.New("lsm: database closed")

// immTable is a sealed (immutable) memtable queued for background flush,
// paired with the WAL that made it durable. The WAL file is deleted only
// after the memtable's SSTable is installed in a persisted version, so a
// crash at any point between seal and flush recovers every write.
type immTable struct {
	mem    *memtable.MemTable
	walNum uint64
	// bytes caches ApproximateSize at seal time: the memtable is frozen, so
	// the commit path can charge the immutable queue against the memtable
	// budget without taking per-memtable locks.
	bytes int64
}

// DB is an LSM-tree key-value store. It is safe for concurrent use by
// multiple goroutines. Concurrent writers coalesce into write groups — one
// WAL append run and one memtable apply per group (RocksDB-style group
// commit). Full memtables are sealed onto an immutable queue and flushed,
// then compacted, by a background worker; the paper's L0 slowdown/stop
// triggers act as real write backpressure (delaying or blocking writers)
// rather than as inline compaction latency. Options.InlineCompaction
// restores the synchronous pre-concurrency behaviour for deterministic
// experiments.
//
// Lock ordering: commitMu → compactMu → mu → verMu. A goroutine may only
// acquire a lock that is to the right of every lock it already holds.
type DB struct {
	opts     Options
	fs       *vfs.CountingFS
	strategy CacheStrategy
	store    *manifest.Store
	tc       *tableCache

	// ioLimit paces background flush/compaction writes
	// (Options.BgIOBytesPerSec); nil when unlimited.
	ioLimit *ioLimiter

	// reg/metrics are the observability layer: hot-path histograms plus
	// scrape-time bridges over the counters below (see metrics.go).
	reg     *metrics.Registry
	metrics dbMetrics

	// commitMu serialises write groups: its holder is the group leader and
	// the only goroutine touching the WAL writer and seqAlloc.
	commitMu sync.Mutex
	seqAlloc uint64 // last allocated sequence; advances even when a group fails

	// pendMu guards the queue of writers waiting to be committed; the next
	// leader drains the whole queue into a single group.
	pendMu  sync.Mutex
	pending []*commitWaiter

	// compactMu serialises version-changing background work — memtable
	// flushes and compactions — between the background worker and the
	// foreground Flush/Compact barriers. roundRobin (the compaction
	// cursor, mutated by the picker) is guarded by it.
	compactMu  sync.Mutex
	roundRobin map[int][]byte

	mu      sync.RWMutex
	mem     *memtable.MemTable
	imm     []*immTable       // sealed memtables awaiting flush, oldest first
	version *manifest.Version // latest version; mutations under mu
	lastSeq uint64            // published only after the group's memtable apply
	closed  bool

	// Background error handler state (see errhandler.go). Guarded by mu.
	// bgState is healthy, retrying (transient failure, backoff in
	// progress) or read-only (corruption; writes fail fast until Resume).
	bgState   bgState
	bgKind    BgErrorKind
	bgCause   error
	bgAttempt int   // consecutive failures, drives the backoff
	bgRetries int64 // cumulative retry attempts (lsm_bg_retries_total)
	resumes   int64 // Resume calls that exited read-only mode

	// bgCond (on mu) wakes stalled writers when the background worker
	// retires an immutable memtable or shrinks L0.
	bgCond *sync.Cond

	// closing flips before Close takes any lock, so stalled writers and
	// new operations bail out promptly instead of racing the teardown.
	closing atomic.Bool

	// Background worker lifecycle (nil / unused with InlineCompaction).
	bgWork chan struct{}
	quit   chan struct{}
	wg     sync.WaitGroup

	// Version pinning (see version_ref.go).
	verMu   sync.Mutex
	current *versionHandle
	live    map[*versionHandle]struct{}
	zombies map[uint64]bool
	// deletable holds obsolete file numbers whose physical deletion waits
	// for the next durable manifest save: deleting them earlier would let a
	// crash land with a manifest referencing missing files. Guarded by verMu.
	deletable []uint64

	nextFileNum atomic.Uint64
	walNum      uint64 // active log; written under commitMu+mu, read under either
	log         *wal.Writer

	// shapeInfo is a lock-free snapshot of tree-shape figures, refreshed on
	// every version install. Cache strategies read it from inside engine
	// callbacks (where taking d.mu would deadlock).
	shapeInfo atomic.Value // ShapeInfo

	// memBudget is the dynamic byte budget for active + immutable memtables,
	// set by a unified-memory arbiter via SetMemTableBudget. 0 means no
	// arbiter: the static Options.MemTableSize threshold applies. Atomic so
	// strategies can move it from inside engine callbacks (which may run
	// under d.mu).
	memBudget atomic.Int64

	// writeInfo is a lock-free snapshot of write-side state (memtable fill,
	// imm queue, flush/stall/amplification counters), refreshed whenever the
	// underlying counters change under d.mu. Like shapeInfo it exists so
	// cache strategies can observe the write side from inside callbacks.
	writeInfo atomic.Value // WriteSideInfo

	// Query-path I/O counters (atomic): block reads and block-cache hits
	// attributable to Get/Scan only, excluding flush/compaction/recovery
	// I/O — the paper's "SST reads" metric.
	queryBlockReads atomic.Int64
	queryBlockHits  atomic.Int64

	// obsoleteEntries is bumped by compactions dropping shadowed versions
	// and tombstones; atomic because compaction merges run outside mu.
	obsoleteEntries atomic.Int64

	// readPool recycles per-operation read scratch (seek-key buffers, block
	// and merge iterators, the scan iterator stack) so warm Get/Scan calls
	// allocate nothing beyond their results.
	readPool sync.Pool

	// Counters (guarded by mu).
	walRemoveErrors int64 // failed WAL deletions after successful flushes
	flushes         int64
	compactions     int64
	subcompactions  int64 // shard merges executed (== compactions when serial)
	stallSlowdowns  int64
	stallStops      int64
	writeGroups     int64
	memSeed         int64
	compactedBytes  int64   // bytes read as compaction inputs
	compactionOut   int64   // bytes written as compaction outputs
	levelCompactIn  []int64 // compaction input bytes drawn from each level
	levelCompactOut []int64 // compaction output bytes written into each level
	flushedBytes    int64
	userBytes       int64
}

// Open opens (creating if necessary) the database described by opts.
func Open(opts Options) (*DB, error) {
	opts = opts.withDefaults()
	fs := vfs.NewCounting(opts.FS)
	if err := fs.MkdirAll(opts.Dir); err != nil {
		return nil, err
	}
	strategy := opts.Strategy
	if strategy == nil {
		strategy = NoCache{}
	}
	reg := opts.MetricsRegistry
	if reg == nil {
		reg = metrics.NewRegistry()
	}
	db := &DB{
		opts:            opts,
		fs:              fs,
		strategy:        strategy,
		store:           manifest.NewStore(fs, opts.Dir),
		roundRobin:      make(map[int][]byte),
		memSeed:         opts.Seed,
		reg:             reg,
		ioLimit:         newIOLimiter(opts.BgIOBytesPerSec),
		levelCompactIn:  make([]int64, opts.NumLevels),
		levelCompactOut: make([]int64, opts.NumLevels),
	}
	db.registerMetrics(reg)
	db.readPool.New = func() any { return new(readState) }
	db.bgCond = sync.NewCond(&db.mu)
	db.tc = newTableCache(fs, opts.Dir, strategy.BlockCache())
	db.mem = memtable.New(db.nextMemSeedLocked())
	db.live = make(map[*versionHandle]struct{})
	db.zombies = make(map[uint64]bool)

	st, found, err := db.store.Load()
	if err != nil {
		return nil, err
	}
	var oldWALs []uint64
	if found {
		db.installVersion(st.Version, nil)
		db.lastSeq = st.LastSeq
		db.nextFileNum.Store(st.NextFileNum)
		oldWALs = st.WALNums
		if err := db.replayWALs(oldWALs); err != nil {
			return nil, err
		}
		if err := db.flushRecovered(); err != nil {
			return nil, err
		}
	} else {
		db.installVersion(manifest.NewVersion(opts.NumLevels), nil)
		db.nextFileNum.Store(1)
	}
	if err := db.startWAL(oldWALs); err != nil {
		return nil, err
	}
	db.removeOrphans()
	db.seqAlloc = db.lastSeq
	db.refreshWriteInfoLocked() // single-threaded: no other goroutine yet
	if !opts.InlineCompaction {
		db.bgWork = make(chan struct{}, 1)
		db.quit = make(chan struct{})
		db.wg.Add(1)
		go db.flushWorker()
		// Recovery may have rebuilt a tree that already violates its shape
		// invariants (e.g. a tall L0 from replayed flushes); start working
		// on it now rather than after the first seal.
		db.notifyWorker()
	}
	return db, nil
}

// nextMemSeedLocked returns the next deterministic skiplist seed.
// Caller holds d.mu (or is single-threaded during Open).
func (d *DB) nextMemSeedLocked() int64 {
	d.memSeed++
	return d.memSeed
}

// replayWALs rebuilds the memtable from every live log, oldest first: the
// logs of sealed-but-unflushed memtables, then the active log at the crash.
func (d *DB) replayWALs(nums []uint64) error {
	for _, num := range nums {
		if num == 0 {
			continue
		}
		path := walPath(d.opts.Dir, num)
		if !d.fs.Exists(path) {
			continue
		}
		f, err := d.fs.Open(path)
		if err != nil {
			return err
		}
		maxSeq, err := wal.Replay(f, func(rec wal.Record) error {
			d.mem.Set(keys.Make(rec.Key, rec.Seq, rec.Kind), rec.Value)
			return nil
		})
		if err != nil {
			return err
		}
		if maxSeq > d.lastSeq {
			d.lastSeq = maxSeq
		}
	}
	return nil
}

// flushRecovered persists the memtable rebuilt by replayWALs as an L0
// table. It must run before startWAL retires the replayed logs: without
// it the recovered entries exist only in memory while the manifest stops
// listing the logs that held them, so a second crash before the next
// flush would lose every acknowledged write from before the first crash.
// Single-threaded (no other goroutine exists yet); the version installed
// here is persisted by startWAL's manifest save.
func (d *DB) flushRecovered() error {
	if d.mem.Empty() {
		return nil
	}
	start := time.Now()
	meta, err := d.writeMemTable(d.mem)
	if err != nil {
		return err
	}
	d.metrics.flushNanos.ObserveSince(start)
	nv := d.version.Clone()
	nv.Levels[0] = append([]*manifest.FileMeta{meta}, nv.Levels[0]...)
	d.installVersion(nv, nil)
	d.flushes++
	d.flushedBytes += int64(meta.Size)
	d.mem = memtable.New(d.nextMemSeedLocked())
	return nil
}

// startWAL opens a fresh active log during Open and retires the replayed
// ones. Single-threaded (no other goroutine exists yet).
func (d *DB) startWAL(oldNums []uint64) error {
	num := d.nextFileNum.Add(1) - 1
	f, err := d.fs.Create(walPath(d.opts.Dir, num))
	if err != nil {
		return err
	}
	d.walNum = num
	d.log = wal.NewWriter(f)
	if err := d.saveManifestLocked(); err != nil {
		return err
	}
	for _, old := range oldNums {
		if old == 0 || old == num || !d.fs.Exists(walPath(d.opts.Dir, old)) {
			continue
		}
		// Same contract as flushImm: the replayed records are durably in the
		// tree, so a failed deletion of a retired log is cosmetic — log it and
		// let the next Open's orphan sweep retry.
		if err := d.fs.Remove(walPath(d.opts.Dir, old)); err != nil {
			d.logf("lsm: removing replayed wal %06d failed (will retry on reopen): %v", old, err)
			d.walRemoveErrors++
		}
	}
	return nil
}

// removeOrphans deletes files in the database directory that the freshly
// persisted manifest does not reference: SSTs from flushes or compactions
// that crashed before their version install, WALs already folded into
// flushed tables, and leftover MANIFEST.tmp from an interrupted save.
// Without this, every crash leaks its in-flight files forever. Best-effort;
// runs single-threaded at the end of Open, after the manifest save, so the
// live set is exact.
func (d *DB) removeOrphans() {
	names, err := d.fs.List(d.opts.Dir)
	if err != nil {
		return
	}
	liveSST := make(map[uint64]bool)
	for _, level := range d.version.Levels {
		for _, f := range level {
			liveSST[f.FileNum] = true
		}
	}
	for _, name := range names {
		full := d.opts.Dir + "/" + name
		if name == "MANIFEST.tmp" {
			d.logf("lsm: removing leftover manifest temp %s", full)
			d.fs.Remove(full)
			continue
		}
		typ, num := parseFileName(name)
		switch typ {
		case "sst":
			if !liveSST[num] {
				d.logf("lsm: removing orphan table %s", full)
				d.fs.Remove(full)
			}
		case "log":
			// The only live log at this point in Open is the fresh active
			// one; every other log was either replayed and flushed above or
			// belongs to no manifest.
			if num != d.walNum {
				d.logf("lsm: removing orphan wal %s", full)
				d.fs.Remove(full)
			}
		}
	}
}

// saveManifestLocked persists the current state. The manifest lists every
// live log oldest-first (one per queued immutable memtable, then the active
// log) so recovery can replay all of them in order. Caller holds d.mu.
func (d *DB) saveManifestLocked() error {
	walNums := make([]uint64, 0, len(d.imm)+1)
	for _, im := range d.imm {
		walNums = append(walNums, im.walNum)
	}
	walNums = append(walNums, d.walNum)
	if err := d.store.Save(manifest.State{
		NextFileNum: d.nextFileNum.Load(),
		LastSeq:     d.lastSeq,
		WALNum:      d.walNum,
		WALNums:     walNums,
		Version:     d.version,
	}); err != nil {
		return err
	}
	// The saved manifest references none of the deferred-obsolete files
	// (they left d.version before this save); now they can really go.
	d.deleteObsoleteFiles()
	return nil
}

// Put stores key=value.
func (d *DB) Put(key, value []byte) error {
	return d.commit([]batchOp{{
		kind:  keys.KindSet,
		key:   append([]byte(nil), key...),
		value: append([]byte(nil), value...),
	}})
}

// Delete removes key.
func (d *DB) Delete(key []byte) error {
	return d.commit([]batchOp{{
		kind: keys.KindDelete,
		key:  append([]byte(nil), key...),
	}})
}

// Get returns the value for key, following the paper's query-handling path:
// range/result cache → MemTable → block cache → disk.
func (d *DB) Get(key []byte) ([]byte, bool, error) {
	start := time.Now()
	defer d.metrics.getNanos.ObserveSince(start)

	// 1. Result cache.
	if v, found, ok := d.strategy.GetCached(key); ok {
		return v, found, nil
	}

	// The read lock is held across table reads AND the admission callback:
	// writers update result caches under the write lock (OnWrite), so
	// admitting inside the read critical section guarantees a stale result
	// can never overwrite a newer write in the cache.
	d.mu.RLock()
	defer d.mu.RUnlock()
	if d.closed {
		return nil, false, ErrClosed
	}
	mem := d.mem
	imm := d.imm
	h := d.acquireVersion()
	seq := d.lastSeq
	defer d.releaseVersion(h)
	version := h.v

	// The pooled readState supplies every piece of per-operation scratch —
	// the memtable search key, the SSTable seek key and the block iterator —
	// so a warm lookup allocates only the returned value copy.
	rs := d.getReadState()
	defer d.putReadState(rs)

	// 2. MemTable, then sealed memtables newest-first. One search key is
	// built once and reused across the whole memtable queue.
	rs.seekBuf = keys.AppendSearch(rs.seekBuf[:0], key, seq)
	search := keys.InternalKey(rs.seekBuf)
	if v, deleted, ok := mem.GetSeek(search, key); ok {
		if deleted {
			return nil, false, nil
		}
		// Served from memory: no disk involved, nothing to admit (the
		// cache-fill path only captures disk-served results, Figure 5).
		return v, true, nil
	}
	for i := len(imm) - 1; i >= 0; i-- {
		if v, deleted, ok := imm[i].mem.GetSeek(search, key); ok {
			if deleted {
				return nil, false, nil
			}
			return v, true, nil
		}
	}

	// 3. SSTables through the block cache.
	value, found, err := d.getFromTables(version, key, seq, &rs.stats)
	if err != nil {
		return nil, false, err
	}
	d.queryBlockReads.Add(rs.stats.BlockMisses)
	d.queryBlockHits.Add(rs.stats.BlockHits)
	d.strategy.OnPointResult(key, value, int(rs.stats.BlockMisses))
	return value, found, nil
}

func (d *DB) getFromTables(v *manifest.Version, key []byte, seq uint64, stats *sstable.ReadStats) ([]byte, bool, error) {
	// L0: newest file first.
	for _, f := range v.Levels[0] {
		if !f.ContainsUser(key) {
			continue
		}
		r, err := d.tc.get(f.FileNum)
		if err != nil {
			return nil, false, err
		}
		val, deleted, ok, err := r.Get(key, seq, stats)
		if err != nil {
			return nil, false, err
		}
		if ok {
			if deleted {
				return nil, false, nil
			}
			return val, true, nil
		}
	}
	// L1+: at most one file per level can contain the key.
	for level := 1; level < len(v.Levels); level++ {
		f := findFile(v.Levels[level], key)
		if f == nil {
			continue
		}
		r, err := d.tc.get(f.FileNum)
		if err != nil {
			return nil, false, err
		}
		val, deleted, ok, err := r.Get(key, seq, stats)
		if err != nil {
			return nil, false, err
		}
		if ok {
			if deleted {
				return nil, false, nil
			}
			return val, true, nil
		}
	}
	return nil, false, nil
}

// findFile binary-searches a sorted non-overlapping level for the file
// containing key.
func findFile(files []*manifest.FileMeta, key []byte) *manifest.FileMeta {
	lo, hi := 0, len(files)
	for lo < hi {
		mid := (lo + hi) / 2
		if string(files[mid].Largest.UserKey()) < string(key) {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(files) && files[lo].ContainsUser(key) {
		return files[lo]
	}
	return nil
}

// Scan returns up to n live key-value pairs with key >= start, in key order.
func (d *DB) Scan(start []byte, n int) ([]KV, error) {
	return d.scan(start, nil, n)
}

// ScanRange returns up to limit live pairs with start <= key < end.
// A nil end means no upper bound; limit <= 0 means no count bound (the scan
// still ends at end). The result flows through the same cache paths as Scan.
func (d *DB) ScanRange(start, end []byte, limit int) ([]KV, error) {
	if limit <= 0 {
		limit = int(^uint(0) >> 1) // unbounded count; end bounds the scan
	}
	return d.scan(start, end, limit)
}

func (d *DB) scan(start, end []byte, n int) ([]KV, error) {
	if n <= 0 {
		return nil, nil
	}
	begin := time.Now()
	defer d.metrics.scanNanos.ObserveSince(begin)
	// 1. Result cache. With an end bound the cached answer is complete only
	// if it provably reaches end: contiguous entries cover [start, last],
	// so an entry at or past end proves every live key in [start, end) is
	// included.
	if kvs, ok := d.strategy.ScanCached(start, n); ok {
		if end == nil {
			return kvs, nil
		}
		for i, kv := range kvs {
			if bytes.Compare(kv.Key, end) >= 0 {
				return kvs[:i], nil
			}
		}
		// All cached entries fall below end: completeness unknown, fall
		// through to the tree.
	}

	// As in Get, the read lock covers the scan and its admission so cache
	// contents can never regress behind a concurrent write.
	d.mu.RLock()
	defer d.mu.RUnlock()
	if d.closed {
		return nil, ErrClosed
	}
	mem := d.mem
	imm := d.imm
	h := d.acquireVersion()
	seq := d.lastSeq
	defer d.releaseVersion(h)
	version := h.v

	rs := d.getReadState()
	defer d.putReadState(rs)
	stats := &rs.stats
	if quota, limited := d.strategy.ScanBlockFillQuota(n); limited {
		stats.LimitScanFill = true
		stats.ScanFillBudget = quota
	}
	iters := append(rs.iters, mem.NewIter())
	for i := len(imm) - 1; i >= 0; i-- {
		iters = append(iters, imm[i].mem.NewIter())
	}
	for _, f := range version.Levels[0] {
		if string(f.Largest.UserKey()) < string(start) {
			continue
		}
		r, err := d.tc.get(f.FileNum)
		if err != nil {
			rs.iters = iters
			return nil, err
		}
		iters = append(iters, rs.sstIter(r))
	}
	for level := 1; level < len(version.Levels); level++ {
		files := version.Overlapping(level, start, nil)
		if len(files) == 0 {
			continue
		}
		iters = append(iters, rs.levelIterFor(d.tc, files))
	}
	rs.iters = iters

	rs.merge.setIters(iters)
	vi := &rs.vi
	vi.init(&rs.merge, seq)
	var out []KV
	// Results are copied into one contiguous arena per scan instead of two
	// fresh allocations per returned pair; the arena is handed out with the
	// results (never pooled), so retaining them is safe.
	var arena []byte
	entries := make([]ScanEntry, 0, min(n, 1024))
	for ok := vi.SeekGE(start); ok && len(out) < n; ok = vi.Next() {
		if vi.Deleted() {
			continue
		}
		if end != nil && bytes.Compare(vi.UserKey(), end) >= 0 {
			break
		}
		kOff := len(arena)
		arena = append(arena, vi.UserKey()...)
		vOff := len(arena)
		arena = append(arena, vi.Value()...)
		k, v := arena[kOff:vOff:vOff], arena[vOff:len(arena):len(arena)]
		out = append(out, KV{Key: k, Value: v})
		entries = append(entries, ScanEntry{Key: k, Value: v})
	}
	if err := vi.Err(); err != nil {
		return nil, err
	}
	d.queryBlockReads.Add(stats.BlockMisses)
	d.queryBlockHits.Add(stats.BlockHits)
	d.strategy.OnScanResult(start, entries, int(stats.BlockMisses))
	return out, nil
}

// ShapeInfo is the lock-free subset of Metrics used by cache strategies to
// parameterise the I/O-estimate model while running inside engine callbacks.
type ShapeInfo struct {
	NonEmptyLevels int
	SortedRuns     int
	L0Files        int
	TotalEntries   uint64
	TotalBytes     uint64
}

// ShapeInfo returns the latest tree-shape snapshot without locking.
func (d *DB) ShapeInfo() ShapeInfo {
	v, _ := d.shapeInfo.Load().(ShapeInfo)
	return v
}

// QueryBlockReads reports cumulative SST block reads issued by Get/Scan —
// the paper's "SST reads" metric (flush, compaction and recovery I/O are
// excluded).
func (d *DB) QueryBlockReads() int64 { return d.queryBlockReads.Load() }

// QueryBlockHits reports cumulative block-cache hits on the query path.
func (d *DB) QueryBlockHits() int64 { return d.queryBlockHits.Load() }

// Flush persists every write accepted so far: it seals the active memtable
// and synchronously drains the immutable queue (plus any triggered
// compactions). It is a full barrier with respect to writes that completed
// before the call; writes racing Flush may or may not be included.
func (d *DB) Flush() error {
	if d.closing.Load() {
		return ErrClosed
	}
	d.commitMu.Lock()
	d.mu.Lock()
	if d.closed {
		d.mu.Unlock()
		d.commitMu.Unlock()
		return ErrClosed
	}
	if d.bgState == bgReadOnly {
		err := d.readOnlyErrLocked()
		d.mu.Unlock()
		d.commitMu.Unlock()
		return err
	}
	hadWork := !d.mem.Empty() || len(d.imm) > 0
	var err error
	if hadWork {
		err = d.sealMemTableLocked()
	}
	d.mu.Unlock()
	d.commitMu.Unlock()
	if err != nil || !hadWork {
		return err
	}
	if err := d.drainAndCompact(!d.opts.DisableAutoCompaction); err != nil {
		return d.foregroundBgError(err)
	}
	// A successful synchronous flush also clears any transient background
	// failure: the queue is drained and the tree is consistent again.
	d.clearBgError()
	return nil
}

// Compact drains pending flushes and runs compactions until the tree
// satisfies its shape invariants.
func (d *DB) Compact() error {
	if d.closing.Load() {
		return ErrClosed
	}
	d.mu.RLock()
	readOnly := d.bgState == bgReadOnly
	var roErr error
	if readOnly {
		roErr = d.readOnlyErrLocked()
	}
	d.mu.RUnlock()
	if readOnly {
		return roErr
	}
	if err := d.drainAndCompact(true); err != nil {
		return d.foregroundBgError(err)
	}
	d.clearBgError()
	return nil
}

// foregroundBgError feeds a failed foreground Flush/Compact into the error
// handler (background mode only: inline mode reports errors synchronously to
// the writer and keeps no sticky state) and returns the error unchanged. A
// transient failure leaves the worker scheduled to retry, so the DB
// self-heals even when the failing call was a manual one.
func (d *DB) foregroundBgError(err error) error {
	if d.opts.InlineCompaction {
		return err
	}
	if retry, _ := d.noteBgError(err); retry {
		d.notifyWorker()
	}
	return err
}

// Close stops background work, closes the log and persists the manifest.
// Sealed-but-unflushed memtables are not flushed; their WALs stay on disk
// and are replayed on the next Open. Close is idempotent, and writes racing
// Close either commit fully or return ErrClosed.
func (d *DB) Close() error {
	d.closing.Store(true)
	// Wake writers stalled on backpressure so they can observe closing and
	// release commitMu.
	d.mu.Lock()
	d.bgCond.Broadcast()
	d.mu.Unlock()

	d.commitMu.Lock()
	defer d.commitMu.Unlock()
	d.mu.Lock()
	if d.closed {
		d.mu.Unlock()
		return nil
	}
	d.closed = true
	d.bgCond.Broadcast()
	d.mu.Unlock()

	if d.quit != nil {
		close(d.quit)
		d.wg.Wait()
	}

	d.mu.Lock()
	defer d.mu.Unlock()
	if err := d.log.Close(); err != nil {
		return err
	}
	return d.saveManifestLocked()
}

// IOStats returns cumulative file I/O counters; ReadOps equals the paper's
// "SST reads" (one ReadAt per block).
func (d *DB) IOStats() vfs.StatsSnapshot { return d.fs.Stats.Snapshot() }

// Metrics summarises engine state for stats collection and tools.
type Metrics struct {
	LevelFiles      []int
	LevelBytes      []uint64
	L0Files         int
	NonEmptyLevels  int
	SortedRuns      int
	TotalEntries    uint64
	TotalBytes      uint64
	MemTableEntries int
	MemTableBytes   int64
	ImmMemTables    int
	// ImmMemTableBytes is the physical bytes pinned by the sealed queue;
	// MemTableBudget the dynamic unified-memory budget (0 = static sizing);
	// MemTableTarget the flush threshold currently in force.
	ImmMemTableBytes int64
	MemTableBudget   int64
	MemTableTarget   int64
	Flushes          int64
	Compactions      int64
	// Subcompactions counts shard merges: equal to Compactions when every
	// compaction ran serially, larger when range-partitioned shards ran.
	Subcompactions     int64
	StallSlowdowns     int64
	StallStops         int64
	WriteGroups        int64
	CompactedBytes     int64
	CompactionOutBytes int64
	// LevelCompactionInBytes[l] is the cumulative compaction input bytes
	// drawn from level l; LevelCompactionOutBytes[l] the output bytes
	// written into it. Their per-level ratio is the compaction
	// write-amplification profile of the tree.
	LevelCompactionInBytes  []int64
	LevelCompactionOutBytes []int64
	FlushedBytes            int64
	UserBytes               int64
	LastSeq                 uint64
	// Error-handler state: BgState is "healthy", "retrying" or
	// "read-only"; BgErrorKind classifies the failure ("none",
	// "transient", "no-space", "corruption"); BgLastError is the latest
	// background failure text ("" when healthy).
	BgState     string
	BgErrorKind string
	BgLastError string
	// BgRetries counts background retry attempts; Resumes counts Resume
	// calls that exited read-only mode; WALRemoveErrors counts WAL
	// deletions that failed after a successful flush (non-fatal).
	BgRetries       int64
	Resumes         int64
	WALRemoveErrors int64
	// BgIOStallNanos is cumulative time background flush/compaction writers
	// spent throttled by the Options.BgIOBytesPerSec token bucket.
	BgIOStallNanos int64
	// bgStateNum is the numeric form of BgState for the lsm_bg_state gauge
	// (0 healthy, 1 retrying, 2 read-only).
	bgStateNum int
}

// WriteAmplification reports total bytes written to SSTables (flush +
// compaction outputs) per user byte, the standard LSM write-amplification
// measure. Zero before any writes.
func (m Metrics) WriteAmplification() float64 {
	if m.UserBytes == 0 {
		return 0
	}
	return float64(m.FlushedBytes+m.CompactionOutBytes) / float64(m.UserBytes)
}

// Metrics returns a point-in-time engine summary.
func (d *DB) Metrics() Metrics {
	d.mu.RLock()
	defer d.mu.RUnlock()
	m := Metrics{
		LevelFiles:              make([]int, len(d.version.Levels)),
		LevelBytes:              make([]uint64, len(d.version.Levels)),
		L0Files:                 len(d.version.Levels[0]),
		NonEmptyLevels:          d.version.NumNonEmptyLevels(),
		SortedRuns:              d.version.NumSortedRuns(),
		MemTableEntries:         d.mem.Count(),
		MemTableBytes:           d.mem.ApproximateSize(),
		ImmMemTables:            len(d.imm),
		ImmMemTableBytes:        d.immBytesLocked(),
		MemTableBudget:          d.memBudget.Load(),
		MemTableTarget:          d.activeMemTargetLocked(),
		Flushes:                 d.flushes,
		Compactions:             d.compactions,
		Subcompactions:          d.subcompactions,
		StallSlowdowns:          d.stallSlowdowns,
		StallStops:              d.stallStops,
		WriteGroups:             d.writeGroups,
		CompactedBytes:          d.compactedBytes,
		CompactionOutBytes:      d.compactionOut,
		LevelCompactionInBytes:  append([]int64(nil), d.levelCompactIn...),
		LevelCompactionOutBytes: append([]int64(nil), d.levelCompactOut...),
		FlushedBytes:            d.flushedBytes,
		UserBytes:               d.userBytes,
		LastSeq:                 d.lastSeq,
		BgState:                 d.bgState.String(),
		bgStateNum:              int(d.bgState),
		BgErrorKind:             d.bgKind.String(),
		BgRetries:               d.bgRetries,
		Resumes:                 d.resumes,
		WALRemoveErrors:         d.walRemoveErrors,
		BgIOStallNanos:          d.ioLimit.StallNanos(),
	}
	if d.bgCause != nil {
		m.BgLastError = d.bgCause.Error()
	}
	for i, level := range d.version.Levels {
		m.LevelFiles[i] = len(level)
		m.LevelBytes[i] = d.version.SizeOfLevel(i)
		for _, f := range level {
			m.TotalEntries += f.NumEntries
			m.TotalBytes += f.Size
		}
	}
	return m
}

// Options returns the effective options the DB runs with.
func (d *DB) Options() Options { return d.opts }

func (d *DB) String() string {
	m := d.Metrics()
	return fmt.Sprintf("lsm.DB{levels=%v runs=%d entries=%d bytes=%d}",
		m.LevelFiles, m.SortedRuns, m.TotalEntries, m.TotalBytes)
}

// pickerConfig adapts Options to the compaction picker.
func (d *DB) pickerConfig() compaction.Config {
	return compaction.Config{
		L0Trigger:    d.opts.L0CompactTrigger,
		L1TargetSize: d.opts.L1TargetSize,
		SizeRatio:    d.opts.LevelSizeRatio,
		NumLevels:    d.opts.NumLevels,
	}
}
