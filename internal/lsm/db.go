// Package lsm implements the leveled LSM-tree storage engine the AdCache
// reproduction runs on: a scaled-down analogue of the RocksDB configuration
// used by the paper (1-leveling with size ratio 10, 4 KiB blocks, Bloom
// filters at 10 bits/key, L0 slowdown/stop triggers).
//
// The engine exposes the paper's Figure 5 integration points through the
// CacheStrategy interface: result caches are consulted before the MemTable,
// block reads flow through a pluggable block cache, and completed queries
// and writes are reported back to the strategy for admission and coherence.
package lsm

import (
	"bytes"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"adcache/internal/compaction"
	"adcache/internal/keys"
	"adcache/internal/manifest"
	"adcache/internal/memtable"
	"adcache/internal/sstable"
	"adcache/internal/vfs"
	"adcache/internal/wal"
)

// ErrClosed is returned by operations on a closed DB.
var ErrClosed = errors.New("lsm: database closed")

// DB is an LSM-tree key-value store. It is safe for concurrent use by
// multiple goroutines; writes are serialised internally.
type DB struct {
	opts     Options
	fs       *vfs.CountingFS
	strategy CacheStrategy
	store    *manifest.Store
	tc       *tableCache

	mu      sync.RWMutex
	mem     *memtable.MemTable
	version *manifest.Version // latest version; mutations under mu
	lastSeq uint64

	// Version pinning (see version_ref.go).
	verMu       sync.Mutex
	current     *versionHandle
	live        map[*versionHandle]struct{}
	zombies     map[uint64]bool
	nextFileNum uint64
	walNum      uint64
	log         *wal.Writer
	roundRobin  map[int][]byte
	closed      bool

	// shapeInfo is a lock-free snapshot of tree-shape figures, refreshed on
	// every version install. Cache strategies read it from inside engine
	// callbacks (where taking d.mu would deadlock).
	shapeInfo atomic.Value // ShapeInfo

	// Query-path I/O counters (atomic): block reads and block-cache hits
	// attributable to Get/Scan only, excluding flush/compaction/recovery
	// I/O — the paper's "SST reads" metric.
	queryBlockReads atomic.Int64
	queryBlockHits  atomic.Int64

	// Counters (guarded by mu).
	flushes         int64
	compactions     int64
	stallSlowdowns  int64
	stallStops      int64
	memSeed         int64
	compactedBytes  int64 // bytes read as compaction inputs
	compactionOut   int64 // bytes written as compaction outputs
	flushedBytes    int64
	userBytes       int64
	obsoleteEntries int64
}

// Open opens (creating if necessary) the database described by opts.
func Open(opts Options) (*DB, error) {
	opts = opts.withDefaults()
	fs := vfs.NewCounting(opts.FS)
	if err := fs.MkdirAll(opts.Dir); err != nil {
		return nil, err
	}
	strategy := opts.Strategy
	if strategy == nil {
		strategy = NoCache{}
	}
	db := &DB{
		opts:       opts,
		fs:         fs,
		strategy:   strategy,
		store:      manifest.NewStore(fs, opts.Dir),
		roundRobin: make(map[int][]byte),
		memSeed:    opts.Seed,
	}
	db.tc = newTableCache(fs, opts.Dir, strategy.BlockCache())
	db.mem = memtable.New(db.nextMemSeed())
	db.live = make(map[*versionHandle]struct{})
	db.zombies = make(map[uint64]bool)

	st, found, err := db.store.Load()
	if err != nil {
		return nil, err
	}
	if found {
		db.installVersion(st.Version, nil)
		db.lastSeq = st.LastSeq
		db.nextFileNum = st.NextFileNum
		db.walNum = st.WALNum
		if err := db.replayWAL(); err != nil {
			return nil, err
		}
	} else {
		db.installVersion(manifest.NewVersion(opts.NumLevels), nil)
		db.nextFileNum = 1
	}
	if err := db.rotateWAL(); err != nil {
		return nil, err
	}
	return db, nil
}

func (d *DB) nextMemSeed() int64 {
	d.memSeed++
	return d.memSeed
}

func (d *DB) replayWAL() error {
	if d.walNum == 0 {
		return nil
	}
	path := walPath(d.opts.Dir, d.walNum)
	if !d.fs.Exists(path) {
		return nil
	}
	f, err := d.fs.Open(path)
	if err != nil {
		return err
	}
	maxSeq, err := wal.Replay(f, func(rec wal.Record) error {
		d.mem.Set(keys.Make(rec.Key, rec.Seq, rec.Kind), rec.Value)
		return nil
	})
	if err != nil {
		return err
	}
	if maxSeq > d.lastSeq {
		d.lastSeq = maxSeq
	}
	return nil
}

// rotateWAL starts a fresh log and removes the previous one. Caller holds no
// lock (during Open) or the write lock (during flush).
func (d *DB) rotateWAL() error {
	oldNum := d.walNum
	d.walNum = d.nextFileNum
	d.nextFileNum++
	f, err := d.fs.Create(walPath(d.opts.Dir, d.walNum))
	if err != nil {
		return err
	}
	if d.log != nil {
		if err := d.log.Close(); err != nil {
			return err
		}
	}
	d.log = wal.NewWriter(f)
	if err := d.saveManifest(); err != nil {
		return err
	}
	if oldNum != 0 && d.fs.Exists(walPath(d.opts.Dir, oldNum)) {
		if err := d.fs.Remove(walPath(d.opts.Dir, oldNum)); err != nil {
			return err
		}
	}
	return nil
}

func (d *DB) saveManifest() error {
	return d.store.Save(manifest.State{
		NextFileNum: d.nextFileNum,
		LastSeq:     d.lastSeq,
		WALNum:      d.walNum,
		Version:     d.version,
	})
}

// Put stores key=value.
func (d *DB) Put(key, value []byte) error {
	return d.write(key, value, keys.KindSet)
}

// Delete removes key.
func (d *DB) Delete(key []byte) error {
	return d.write(key, nil, keys.KindDelete)
}

func (d *DB) write(key, value []byte, kind keys.Kind) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return ErrClosed
	}
	// Stall accounting mirrors the paper's RocksDB configuration (slowdown
	// at L0CompactTrigger, stop at L0StopTrigger). Compaction runs inline,
	// so the stall manifests as compaction latency in this write.
	if n := len(d.version.Levels[0]); n >= d.opts.L0StopTrigger {
		d.stallStops++
	} else if n >= d.opts.L0CompactTrigger {
		d.stallSlowdowns++
	}

	d.lastSeq++
	seq := d.lastSeq
	if err := d.log.Append(wal.Record{Seq: seq, Kind: kind, Key: key, Value: value}); err != nil {
		return err
	}
	keyCopy := append([]byte(nil), key...)
	valCopy := append([]byte(nil), value...)
	d.mem.Set(keys.Make(keyCopy, seq, kind), valCopy)
	d.userBytes += int64(len(key) + len(value))

	d.strategy.OnWrite(keyCopy, valCopy, kind == keys.KindDelete)

	if d.mem.ApproximateSize() >= d.opts.MemTableSize {
		if err := d.flushLocked(); err != nil {
			return err
		}
	}
	return nil
}

// Get returns the value for key, following the paper's query-handling path:
// range/result cache → MemTable → block cache → disk.
func (d *DB) Get(key []byte) ([]byte, bool, error) {
	// 1. Result cache.
	if v, found, ok := d.strategy.GetCached(key); ok {
		return v, found, nil
	}

	// The read lock is held across table reads AND the admission callback:
	// writers update result caches under the write lock (OnWrite), so
	// admitting inside the read critical section guarantees a stale result
	// can never overwrite a newer write in the cache.
	d.mu.RLock()
	defer d.mu.RUnlock()
	if d.closed {
		return nil, false, ErrClosed
	}
	mem := d.mem
	h := d.acquireVersion()
	seq := d.lastSeq
	defer d.releaseVersion(h)
	version := h.v

	// 2. MemTable.
	if v, deleted, ok := mem.Get(key, seq); ok {
		if deleted {
			return nil, false, nil
		}
		// Served from memory: no disk involved, nothing to admit (the
		// cache-fill path only captures disk-served results, Figure 5).
		return v, true, nil
	}

	// 3. SSTables through the block cache.
	var stats sstable.ReadStats
	value, found, err := d.getFromTables(version, key, seq, &stats)
	if err != nil {
		return nil, false, err
	}
	d.queryBlockReads.Add(stats.BlockMisses)
	d.queryBlockHits.Add(stats.BlockHits)
	d.strategy.OnPointResult(key, value, int(stats.BlockMisses))
	return value, found, nil
}

func (d *DB) getFromTables(v *manifest.Version, key []byte, seq uint64, stats *sstable.ReadStats) ([]byte, bool, error) {
	// L0: newest file first.
	for _, f := range v.Levels[0] {
		if !f.ContainsUser(key) {
			continue
		}
		r, err := d.tc.get(f.FileNum)
		if err != nil {
			return nil, false, err
		}
		val, deleted, ok, err := r.Get(key, seq, stats)
		if err != nil {
			return nil, false, err
		}
		if ok {
			if deleted {
				return nil, false, nil
			}
			return val, true, nil
		}
	}
	// L1+: at most one file per level can contain the key.
	for level := 1; level < len(v.Levels); level++ {
		f := findFile(v.Levels[level], key)
		if f == nil {
			continue
		}
		r, err := d.tc.get(f.FileNum)
		if err != nil {
			return nil, false, err
		}
		val, deleted, ok, err := r.Get(key, seq, stats)
		if err != nil {
			return nil, false, err
		}
		if ok {
			if deleted {
				return nil, false, nil
			}
			return val, true, nil
		}
	}
	return nil, false, nil
}

// findFile binary-searches a sorted non-overlapping level for the file
// containing key.
func findFile(files []*manifest.FileMeta, key []byte) *manifest.FileMeta {
	lo, hi := 0, len(files)
	for lo < hi {
		mid := (lo + hi) / 2
		if string(files[mid].Largest.UserKey()) < string(key) {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(files) && files[lo].ContainsUser(key) {
		return files[lo]
	}
	return nil
}

// Scan returns up to n live key-value pairs with key >= start, in key order.
func (d *DB) Scan(start []byte, n int) ([]KV, error) {
	return d.scan(start, nil, n)
}

// ScanRange returns up to limit live pairs with start <= key < end.
// A nil end means no upper bound; limit <= 0 means no count bound (the scan
// still ends at end). The result flows through the same cache paths as Scan.
func (d *DB) ScanRange(start, end []byte, limit int) ([]KV, error) {
	if limit <= 0 {
		limit = int(^uint(0) >> 1) // unbounded count; end bounds the scan
	}
	return d.scan(start, end, limit)
}

func (d *DB) scan(start, end []byte, n int) ([]KV, error) {
	if n <= 0 {
		return nil, nil
	}
	// 1. Result cache. With an end bound the cached answer is complete only
	// if it provably reaches end: contiguous entries cover [start, last],
	// so an entry at or past end proves every live key in [start, end) is
	// included.
	if kvs, ok := d.strategy.ScanCached(start, n); ok {
		if end == nil {
			return kvs, nil
		}
		for i, kv := range kvs {
			if bytes.Compare(kv.Key, end) >= 0 {
				return kvs[:i], nil
			}
		}
		// All cached entries fall below end: completeness unknown, fall
		// through to the tree.
	}

	// As in Get, the read lock covers the scan and its admission so cache
	// contents can never regress behind a concurrent write.
	d.mu.RLock()
	defer d.mu.RUnlock()
	if d.closed {
		return nil, ErrClosed
	}
	mem := d.mem
	h := d.acquireVersion()
	seq := d.lastSeq
	defer d.releaseVersion(h)
	version := h.v

	var stats sstable.ReadStats
	if quota, limited := d.strategy.ScanBlockFillQuota(n); limited {
		stats.LimitScanFill = true
		stats.ScanFillBudget = quota
	}
	iters := []internalIterator{mem.NewIter()}
	for _, f := range version.Levels[0] {
		if string(f.Largest.UserKey()) < string(start) {
			continue
		}
		r, err := d.tc.get(f.FileNum)
		if err != nil {
			return nil, err
		}
		it, err := r.NewIter(&stats)
		if err != nil {
			return nil, err
		}
		iters = append(iters, it)
	}
	for level := 1; level < len(version.Levels); level++ {
		files := version.Overlapping(level, start, nil)
		if len(files) == 0 {
			continue
		}
		iters = append(iters, newLevelIter(d.tc, files, &stats))
	}

	vi := newVisibleIter(newMergingIter(iters...), seq)
	var out []KV
	entries := make([]ScanEntry, 0, min(n, 1024))
	for ok := vi.SeekGE(start); ok && len(out) < n; ok = vi.Next() {
		if vi.Deleted() {
			continue
		}
		if end != nil && bytes.Compare(vi.UserKey(), end) >= 0 {
			break
		}
		k := append([]byte(nil), vi.UserKey()...)
		v := append([]byte(nil), vi.Value()...)
		out = append(out, KV{Key: k, Value: v})
		entries = append(entries, ScanEntry{Key: k, Value: v})
	}
	if err := vi.Err(); err != nil {
		return nil, err
	}
	d.queryBlockReads.Add(stats.BlockMisses)
	d.queryBlockHits.Add(stats.BlockHits)
	d.strategy.OnScanResult(start, entries, int(stats.BlockMisses))
	return out, nil
}

// ShapeInfo is the lock-free subset of Metrics used by cache strategies to
// parameterise the I/O-estimate model while running inside engine callbacks.
type ShapeInfo struct {
	NonEmptyLevels int
	SortedRuns     int
	L0Files        int
	TotalEntries   uint64
	TotalBytes     uint64
}

// ShapeInfo returns the latest tree-shape snapshot without locking.
func (d *DB) ShapeInfo() ShapeInfo {
	v, _ := d.shapeInfo.Load().(ShapeInfo)
	return v
}

// QueryBlockReads reports cumulative SST block reads issued by Get/Scan —
// the paper's "SST reads" metric (flush, compaction and recovery I/O are
// excluded).
func (d *DB) QueryBlockReads() int64 { return d.queryBlockReads.Load() }

// QueryBlockHits reports cumulative block-cache hits on the query path.
func (d *DB) QueryBlockHits() int64 { return d.queryBlockHits.Load() }

// Flush forces the memtable to disk.
func (d *DB) Flush() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return ErrClosed
	}
	return d.flushLocked()
}

// Compact forces compactions until the tree satisfies its shape invariants.
func (d *DB) Compact() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return ErrClosed
	}
	return d.maybeCompactLocked()
}

// Close flushes state and closes the DB.
func (d *DB) Close() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return nil
	}
	d.closed = true
	if err := d.log.Close(); err != nil {
		return err
	}
	return d.saveManifest()
}

// IOStats returns cumulative file I/O counters; ReadOps equals the paper's
// "SST reads" (one ReadAt per block).
func (d *DB) IOStats() vfs.StatsSnapshot { return d.fs.Stats.Snapshot() }

// Metrics summarises engine state for stats collection and tools.
type Metrics struct {
	LevelFiles         []int
	LevelBytes         []uint64
	L0Files            int
	NonEmptyLevels     int
	SortedRuns         int
	TotalEntries       uint64
	TotalBytes         uint64
	MemTableEntries    int
	MemTableBytes      int64
	Flushes            int64
	Compactions        int64
	StallSlowdowns     int64
	StallStops         int64
	CompactedBytes     int64
	CompactionOutBytes int64
	FlushedBytes       int64
	UserBytes          int64
	LastSeq            uint64
}

// WriteAmplification reports total bytes written to SSTables (flush +
// compaction outputs) per user byte, the standard LSM write-amplification
// measure. Zero before any writes.
func (m Metrics) WriteAmplification() float64 {
	if m.UserBytes == 0 {
		return 0
	}
	return float64(m.FlushedBytes+m.CompactionOutBytes) / float64(m.UserBytes)
}

// Metrics returns a point-in-time engine summary.
func (d *DB) Metrics() Metrics {
	d.mu.RLock()
	defer d.mu.RUnlock()
	m := Metrics{
		LevelFiles:         make([]int, len(d.version.Levels)),
		LevelBytes:         make([]uint64, len(d.version.Levels)),
		L0Files:            len(d.version.Levels[0]),
		NonEmptyLevels:     d.version.NumNonEmptyLevels(),
		SortedRuns:         d.version.NumSortedRuns(),
		MemTableEntries:    d.mem.Count(),
		MemTableBytes:      d.mem.ApproximateSize(),
		Flushes:            d.flushes,
		Compactions:        d.compactions,
		StallSlowdowns:     d.stallSlowdowns,
		StallStops:         d.stallStops,
		CompactedBytes:     d.compactedBytes,
		CompactionOutBytes: d.compactionOut,
		FlushedBytes:       d.flushedBytes,
		UserBytes:          d.userBytes,
		LastSeq:            d.lastSeq,
	}
	for i, level := range d.version.Levels {
		m.LevelFiles[i] = len(level)
		m.LevelBytes[i] = d.version.SizeOfLevel(i)
		for _, f := range level {
			m.TotalEntries += f.NumEntries
			m.TotalBytes += f.Size
		}
	}
	return m
}

// Options returns the effective options the DB runs with.
func (d *DB) Options() Options { return d.opts }

func (d *DB) String() string {
	m := d.Metrics()
	return fmt.Sprintf("lsm.DB{levels=%v runs=%d entries=%d bytes=%d}",
		m.LevelFiles, m.SortedRuns, m.TotalEntries, m.TotalBytes)
}

// pickerConfig adapts Options to the compaction picker.
func (d *DB) pickerConfig() compaction.Config {
	return compaction.Config{
		L0Trigger:    d.opts.L0CompactTrigger,
		L1TargetSize: d.opts.L1TargetSize,
		SizeRatio:    d.opts.LevelSizeRatio,
		NumLevels:    d.opts.NumLevels,
	}
}
