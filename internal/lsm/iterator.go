package lsm

import (
	"bytes"
	"container/heap"

	"adcache/internal/keys"
	"adcache/internal/manifest"
	"adcache/internal/sstable"
)

// internalIterator is the common shape of memtable, sstable and level
// iterators.
type internalIterator interface {
	First() bool
	Seek(target keys.InternalKey) bool
	Next() bool
	Valid() bool
	Key() keys.InternalKey
	Value() []byte
	Err() error
}

// levelIter iterates one non-overlapping level (L1+), opening file iterators
// lazily as the scan crosses file boundaries.
type levelIter struct {
	tc    *tableCache
	files []*manifest.FileMeta
	stats *sstable.ReadStats

	idx  int // current file index
	iter *sstable.Iter
	err  error
}

func newLevelIter(tc *tableCache, files []*manifest.FileMeta, stats *sstable.ReadStats) *levelIter {
	return &levelIter{tc: tc, files: files, stats: stats, idx: -1}
}

func (l *levelIter) openFile(idx int) bool {
	l.idx = idx
	l.iter = nil
	if idx >= len(l.files) {
		return false
	}
	r, err := l.tc.get(l.files[idx].FileNum)
	if err != nil {
		l.err = err
		return false
	}
	it, err := r.NewIter(l.stats)
	if err != nil {
		l.err = err
		return false
	}
	l.iter = it
	return true
}

func (l *levelIter) First() bool {
	if !l.openFile(0) {
		return false
	}
	if l.iter.First() {
		return true
	}
	return l.Next()
}

func (l *levelIter) Seek(target keys.InternalKey) bool {
	// Binary search for the first file whose largest key >= target.
	lo, hi := 0, len(l.files)
	for lo < hi {
		mid := (lo + hi) / 2
		if keys.Compare(l.files[mid].Largest, target) < 0 {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if !l.openFile(lo) {
		return false
	}
	if l.iter.Seek(target) {
		return true
	}
	return l.Next()
}

func (l *levelIter) Next() bool {
	if l.err != nil {
		return false
	}
	if l.iter != nil && l.iter.Next() {
		return true
	}
	for {
		if !l.openFile(l.idx + 1) {
			return false
		}
		if l.iter.First() {
			return true
		}
		if l.err != nil || l.iter.Err() != nil {
			return false
		}
	}
}

func (l *levelIter) Valid() bool { return l.iter != nil && l.iter.Valid() }

func (l *levelIter) Key() keys.InternalKey { return l.iter.Key() }

func (l *levelIter) Value() []byte { return l.iter.Value() }

func (l *levelIter) Err() error {
	if l.err != nil {
		return l.err
	}
	if l.iter != nil {
		return l.iter.Err()
	}
	return nil
}

// mergingIter merges several internalIterators into one stream ordered by
// internal key. Internal keys are globally unique (sequence numbers are
// unique), so no tie-breaking across sources is needed.
type mergingIter struct {
	iters []internalIterator
	h     iterHeap
	init  bool
}

type iterHeap []internalIterator

func (h iterHeap) Len() int { return len(h) }
func (h iterHeap) Less(i, j int) bool {
	return keys.Compare(h[i].Key(), h[j].Key()) < 0
}
func (h iterHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *iterHeap) Push(x any)   { *h = append(*h, x.(internalIterator)) }
func (h *iterHeap) Pop() any {
	old := *h
	n := len(old)
	it := old[n-1]
	*h = old[:n-1]
	return it
}

func newMergingIter(iters ...internalIterator) *mergingIter {
	return &mergingIter{iters: iters}
}

func (m *mergingIter) reset(position func(internalIterator) bool) bool {
	m.h = m.h[:0]
	for _, it := range m.iters {
		if position(it) {
			m.h = append(m.h, it)
		}
	}
	heap.Init(&m.h)
	m.init = true
	return len(m.h) > 0
}

func (m *mergingIter) First() bool {
	return m.reset(func(it internalIterator) bool { return it.First() })
}

func (m *mergingIter) Seek(target keys.InternalKey) bool {
	return m.reset(func(it internalIterator) bool { return it.Seek(target) })
}

func (m *mergingIter) Next() bool {
	if !m.init || len(m.h) == 0 {
		return false
	}
	top := m.h[0]
	if top.Next() {
		heap.Fix(&m.h, 0)
	} else {
		heap.Pop(&m.h)
	}
	return len(m.h) > 0
}

func (m *mergingIter) Valid() bool { return m.init && len(m.h) > 0 }

func (m *mergingIter) Key() keys.InternalKey { return m.h[0].Key() }

func (m *mergingIter) Value() []byte { return m.h[0].Value() }

func (m *mergingIter) Err() error {
	for _, it := range m.iters {
		if err := it.Err(); err != nil {
			return err
		}
	}
	return nil
}

// visibleIter filters a merged internal stream down to the newest visible
// version of each user key at snapshot seq, skipping shadowed versions.
// Tombstones are surfaced (Deleted()=true) so callers can skip dead keys.
type visibleIter struct {
	it      internalIterator
	seq     uint64
	userKey []byte
	value   []byte
	deleted bool
	valid   bool
}

func newVisibleIter(it internalIterator, seq uint64) *visibleIter {
	return &visibleIter{it: it, seq: seq}
}

// SeekGE positions at the newest visible version of the first user key
// >= target.
func (v *visibleIter) SeekGE(target []byte) bool {
	if !v.it.Seek(keys.MakeSearch(target, v.seq)) {
		v.valid = false
		return false
	}
	return v.settle()
}

// First positions at the first user key.
func (v *visibleIter) First() bool {
	if !v.it.First() {
		v.valid = false
		return false
	}
	return v.settle()
}

// settle finds the newest visible version at or after the current position.
func (v *visibleIter) settle() bool {
	for {
		if !v.it.Valid() {
			v.valid = false
			return false
		}
		ik := v.it.Key()
		if ik.Seq() > v.seq {
			// Invisible (newer than snapshot): skip this version.
			if !v.it.Next() {
				v.valid = false
				return false
			}
			continue
		}
		v.userKey = append(v.userKey[:0], ik.UserKey()...)
		v.value = v.it.Value()
		v.deleted = ik.Kind() == keys.KindDelete
		v.valid = true
		return true
	}
}

// Next advances to the next distinct user key.
func (v *visibleIter) Next() bool {
	if !v.valid {
		return false
	}
	// Skip remaining (older) versions of the current user key.
	for {
		if !v.it.Next() {
			v.valid = false
			return false
		}
		if !bytes.Equal(v.it.Key().UserKey(), v.userKey) {
			break
		}
	}
	return v.settle()
}

// Valid reports whether positioned at an entry.
func (v *visibleIter) Valid() bool { return v.valid }

// UserKey returns the current user key (stable until next move).
func (v *visibleIter) UserKey() []byte { return v.userKey }

// Value returns the current value.
func (v *visibleIter) Value() []byte { return v.value }

// Deleted reports whether the current entry is a tombstone.
func (v *visibleIter) Deleted() bool { return v.deleted }

// Err propagates the underlying iterator error.
func (v *visibleIter) Err() error { return v.it.Err() }
