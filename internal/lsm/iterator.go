package lsm

import (
	"bytes"

	"adcache/internal/keys"
	"adcache/internal/manifest"
	"adcache/internal/sstable"
)

// internalIterator is the common shape of memtable, sstable and level
// iterators.
type internalIterator interface {
	First() bool
	Seek(target keys.InternalKey) bool
	Next() bool
	Valid() bool
	Key() keys.InternalKey
	Value() []byte
	Err() error
}

// levelIter iterates one non-overlapping level (L1+), opening file iterators
// lazily as the scan crosses file boundaries. It embeds one sstable.Iter by
// value and re-initialises it per file, so crossing a file boundary performs
// no allocation.
type levelIter struct {
	tc    *tableCache
	files []*manifest.FileMeta
	stats *sstable.ReadStats

	idx    int // current file index
	iter   sstable.Iter
	iterOK bool // iter is initialised on files[idx]
	err    error
}

func newLevelIter(tc *tableCache, files []*manifest.FileMeta, stats *sstable.ReadStats) *levelIter {
	l := new(levelIter)
	l.init(tc, files, stats)
	return l
}

// init points the levelIter at a level, replacing any previous state while
// retaining the embedded iterator's buffers (the engine pools levelIters).
func (l *levelIter) init(tc *tableCache, files []*manifest.FileMeta, stats *sstable.ReadStats) {
	l.tc = tc
	l.files = files
	l.stats = stats
	l.idx = -1
	l.iterOK = false
	l.err = nil
}

func (l *levelIter) openFile(idx int) bool {
	l.idx = idx
	l.iterOK = false
	if idx >= len(l.files) {
		return false
	}
	r, err := l.tc.get(l.files[idx].FileNum)
	if err != nil {
		l.err = err
		return false
	}
	l.iter.Init(r, l.stats)
	l.iterOK = true
	return true
}

func (l *levelIter) First() bool {
	if !l.openFile(0) {
		return false
	}
	if l.iter.First() {
		return true
	}
	return l.Next()
}

func (l *levelIter) Seek(target keys.InternalKey) bool {
	// Binary search for the first file whose largest key >= target.
	lo, hi := 0, len(l.files)
	for lo < hi {
		mid := (lo + hi) / 2
		if keys.Compare(l.files[mid].Largest, target) < 0 {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if !l.openFile(lo) {
		return false
	}
	if l.iter.Seek(target) {
		return true
	}
	return l.Next()
}

func (l *levelIter) Next() bool {
	if l.err != nil {
		return false
	}
	if l.iterOK && l.iter.Next() {
		return true
	}
	if l.iterOK && l.iter.Err() != nil {
		// Latch corruption from the exhausted file before Init clears it.
		l.err = l.iter.Err()
		return false
	}
	for {
		if !l.openFile(l.idx + 1) {
			return false
		}
		if l.iter.First() {
			return true
		}
		if l.err != nil || l.iter.Err() != nil {
			return false
		}
	}
}

func (l *levelIter) Valid() bool { return l.iterOK && l.iter.Valid() }

func (l *levelIter) Key() keys.InternalKey { return l.iter.Key() }

func (l *levelIter) Value() []byte { return l.iter.Value() }

func (l *levelIter) Err() error {
	if l.err != nil {
		return l.err
	}
	if l.iterOK {
		return l.iter.Err()
	}
	return nil
}

// mergeChild is one source in the merge heap. It caches the child's current
// key so heap comparisons are direct slice compares instead of virtual
// Key() calls through the interface.
type mergeChild struct {
	it  internalIterator
	key keys.InternalKey
}

// mergingIter merges several internalIterators into one stream ordered by
// internal key. Internal keys are globally unique (sequence numbers are
// unique), so no tie-breaking across sources is needed.
//
// The heap is a concrete slice min-heap over mergeChild — no container/heap,
// so nothing is boxed through `any` and sift operations move small structs.
type mergingIter struct {
	iters []internalIterator
	h     []mergeChild
	init  bool
}

func newMergingIter(iters ...internalIterator) *mergingIter {
	return &mergingIter{iters: iters}
}

// setIters re-targets a pooled mergingIter at a new source slice, dropping
// every child reference the previous operation left in the heap's backing
// array so pooling never extends iterator lifetimes.
func (m *mergingIter) setIters(iters []internalIterator) {
	m.iters = iters
	full := m.h[:cap(m.h)]
	for i := range full {
		full[i] = mergeChild{}
	}
	m.h = m.h[:0]
	m.init = false
}

func (m *mergingIter) less(a, b int) bool {
	return keys.Compare(m.h[a].key, m.h[b].key) < 0
}

// siftDown restores the heap property from position i downward.
func (m *mergingIter) siftDown(i int) {
	n := len(m.h)
	for {
		left := 2*i + 1
		if left >= n {
			return
		}
		small := left
		if right := left + 1; right < n && m.less(right, left) {
			small = right
		}
		if !m.less(small, i) {
			return
		}
		m.h[i], m.h[small] = m.h[small], m.h[i]
		i = small
	}
}

func (m *mergingIter) reset(position func(internalIterator) bool) bool {
	m.h = m.h[:0]
	for _, it := range m.iters {
		if position(it) {
			m.h = append(m.h, mergeChild{it: it, key: it.Key()})
		}
	}
	for i := len(m.h)/2 - 1; i >= 0; i-- {
		m.siftDown(i)
	}
	m.init = true
	return len(m.h) > 0
}

func (m *mergingIter) First() bool {
	return m.reset(func(it internalIterator) bool { return it.First() })
}

func (m *mergingIter) Seek(target keys.InternalKey) bool {
	return m.reset(func(it internalIterator) bool { return it.Seek(target) })
}

func (m *mergingIter) Next() bool {
	if !m.init || len(m.h) == 0 {
		return false
	}
	top := &m.h[0]
	if top.it.Next() {
		top.key = top.it.Key()
		m.siftDown(0)
	} else {
		n := len(m.h) - 1
		m.h[0] = m.h[n]
		m.h[n] = mergeChild{} // release the retired child for GC
		m.h = m.h[:n]
		if n > 1 {
			m.siftDown(0)
		}
	}
	return len(m.h) > 0
}

func (m *mergingIter) Valid() bool { return m.init && len(m.h) > 0 }

func (m *mergingIter) Key() keys.InternalKey { return m.h[0].key }

func (m *mergingIter) Value() []byte { return m.h[0].it.Value() }

func (m *mergingIter) Err() error {
	for _, it := range m.iters {
		if err := it.Err(); err != nil {
			return err
		}
	}
	return nil
}

// visibleIter filters a merged internal stream down to the newest visible
// version of each user key at snapshot seq, skipping shadowed versions.
// Tombstones are surfaced (Deleted()=true) so callers can skip dead keys.
type visibleIter struct {
	it      internalIterator
	seq     uint64
	userKey []byte
	value   []byte
	seekBuf []byte // scratch for SeekGE search keys, reused across seeks
	deleted bool
	valid   bool
}

func newVisibleIter(it internalIterator, seq uint64) *visibleIter {
	v := new(visibleIter)
	v.init(it, seq)
	return v
}

// init re-targets a pooled visibleIter, retaining its scratch buffers.
func (v *visibleIter) init(it internalIterator, seq uint64) {
	v.it = it
	v.seq = seq
	v.userKey = v.userKey[:0]
	v.value = nil
	v.deleted = false
	v.valid = false
}

// SeekGE positions at the newest visible version of the first user key
// >= target.
func (v *visibleIter) SeekGE(target []byte) bool {
	v.seekBuf = keys.AppendSearch(v.seekBuf[:0], target, v.seq)
	if !v.it.Seek(v.seekBuf) {
		v.valid = false
		return false
	}
	return v.settle()
}

// First positions at the first user key.
func (v *visibleIter) First() bool {
	if !v.it.First() {
		v.valid = false
		return false
	}
	return v.settle()
}

// settle finds the newest visible version at or after the current position.
func (v *visibleIter) settle() bool {
	for {
		if !v.it.Valid() {
			v.valid = false
			return false
		}
		ik := v.it.Key()
		if ik.Seq() > v.seq {
			// Invisible (newer than snapshot): skip this version.
			if !v.it.Next() {
				v.valid = false
				return false
			}
			continue
		}
		v.userKey = append(v.userKey[:0], ik.UserKey()...)
		v.value = v.it.Value()
		v.deleted = ik.Kind() == keys.KindDelete
		v.valid = true
		return true
	}
}

// Next advances to the next distinct user key.
func (v *visibleIter) Next() bool {
	if !v.valid {
		return false
	}
	// Skip remaining (older) versions of the current user key.
	for {
		if !v.it.Next() {
			v.valid = false
			return false
		}
		if !bytes.Equal(v.it.Key().UserKey(), v.userKey) {
			break
		}
	}
	return v.settle()
}

// Valid reports whether positioned at an entry.
func (v *visibleIter) Valid() bool { return v.valid }

// UserKey returns the current user key (stable until next move).
func (v *visibleIter) UserKey() []byte { return v.userKey }

// Value returns the current value.
func (v *visibleIter) Value() []byte { return v.value }

// Deleted reports whether the current entry is a tombstone.
func (v *visibleIter) Deleted() bool { return v.deleted }

// Err propagates the underlying iterator error.
func (v *visibleIter) Err() error { return v.it.Err() }
