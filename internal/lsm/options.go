package lsm

import (
	"runtime"
	"time"

	"adcache/internal/metrics"
	"adcache/internal/sstable"
	"adcache/internal/vfs"
)

// Compression aliases the SSTable block codec so callers configure Options
// without importing the sstable package.
type Compression = sstable.Compression

// Re-exported compression codecs.
const (
	CompressionNone  = sstable.CompressionNone
	CompressionFlate = sstable.CompressionFlate
)

// Options configures a DB. The zero value is usable after withDefaults;
// callers normally start from DefaultOptions.
type Options struct {
	// FS is the file system holding the database. Defaults to a fresh
	// in-memory file system.
	FS vfs.FS
	// Dir is the database directory.
	Dir string

	// MemTableSize is the flush threshold in bytes. It is the static
	// threshold; a cache strategy driving unified memory arbitration can
	// override it dynamically via DB.SetMemTableBudget.
	MemTableSize int64
	// MinMemTableSize floors the dynamic flush threshold when a memtable
	// budget is set (DB.SetMemTableBudget): however small the arbiter's
	// allocation, the active memtable may always grow to this size, so a
	// shrinking budget degrades to frequent small flushes instead of
	// livelocking the write path. Default 32 KiB.
	MinMemTableSize int64
	// BlockSize is the SSTable data-block size (paper: 4 KiB).
	BlockSize int
	// BitsPerKey is the Bloom filter budget (paper: 10); 0 disables.
	BitsPerKey int
	// Compression selects per-block SSTable compression
	// (sstable.CompressionNone or sstable.CompressionFlate). Default none:
	// the physical and logical layouts coincide, as before this option
	// existed. With flate, the block cache holds compressed images and its
	// budget charges physical bytes.
	Compression sstable.Compression
	// BgIOBytesPerSec rate-limits flush and compaction writes with a token
	// bucket so background work cannot starve foreground reads on a real
	// disk (RocksDB's rate_limiter analogue). 0 disables the limit.
	BgIOBytesPerSec int64
	// TargetFileSize is the SSTable size compactions aim for
	// (paper: 4 MiB; scaled down by default here).
	TargetFileSize int64
	// NumLevels bounds the tree depth.
	NumLevels int
	// LevelSizeRatio is the size ratio between adjacent levels (paper: 10).
	LevelSizeRatio int
	// L1TargetSize is the byte budget of L1; level i target is
	// L1TargetSize * ratio^(i-1).
	L1TargetSize int64
	// L0CompactTrigger compacts L0 when it holds this many files
	// (paper: write slowdown at 4).
	L0CompactTrigger int
	// L0StopTrigger is the hard L0 file cap (paper: write stop at 8).
	L0StopTrigger int

	// MaxImmutableMemTables bounds the queue of sealed memtables awaiting
	// background flush. Writers stall once the queue is full (RocksDB's
	// max_write_buffer_number analogue). Ignored with InlineCompaction.
	MaxImmutableMemTables int
	// L0SlowdownDelay is the per-write-group delay applied while L0 holds
	// at least L0CompactTrigger files (the paper's write slowdown),
	// giving background compaction room to catch up. Ignored with
	// InlineCompaction (there the stall IS the inline compaction).
	L0SlowdownDelay time.Duration

	// CompactionParallelism bounds the worker pool that executes one
	// compaction as range-partitioned subcompactions (RocksDB's
	// max_subcompactions analogue): the plan's keyspace is cut into at most
	// this many byte-balanced shards which merge and write outputs
	// concurrently, and the results install as one atomic version edit.
	// 1 runs the serial path unchanged. 0 (the default) resolves to
	// min(GOMAXPROCS, 4) — or to 1 under InlineCompaction, where
	// deterministic experiments need a machine-independent file layout.
	CompactionParallelism int

	// DisableWALSync skips the per-write-group WAL fsync. Writes are then
	// durable only up to the last seal/flush boundary: a crash may lose
	// the unsynced WAL tail. Off by default — one sync per write group is
	// the fsync group commit exists to amortise.
	DisableWALSync bool

	// ParanoidChecks re-reads and fully verifies every flush and
	// compaction output table (checksums, key order, entry count, bounds)
	// before installing it in a version. A bad write is deleted and
	// surfaces as a retryable background error instead of persisted
	// corruption. Costs one extra read pass per table written.
	ParanoidChecks bool

	// BgRetryBase is the first retry delay after a transient background
	// flush/compaction failure; successive failures double it up to
	// BgRetryMaxDelay. Defaults: 5ms base, 1s cap.
	BgRetryBase     time.Duration
	BgRetryMaxDelay time.Duration
	// BgMaxRetries caps consecutive transient-failure retries; when
	// exceeded the DB degrades to read-only (Resume exits). 0 retries
	// forever at the capped delay, matching RocksDB's auto-resume.
	BgMaxRetries int

	// Logf, when non-nil, receives error-handler and recovery events
	// (background failures, retries, mode transitions, orphan cleanup).
	Logf func(format string, args ...any)

	// Strategy receives cache callbacks; nil disables all caching.
	Strategy CacheStrategy

	// MetricsRegistry receives the engine's latency histograms, counters
	// and tree-shape gauges. Nil creates a private registry, so metrics
	// collection is always on (it costs two clock reads per operation) and
	// multiple DBs in one process never collide.
	MetricsRegistry *metrics.Registry

	// InlineCompaction runs flushes and compactions synchronously on the
	// writer's goroutine, the pre-concurrency behaviour: every flush point
	// and compaction is a deterministic function of the operation stream.
	// Experiments use it (with core.Config.SyncTuning) so runs are
	// machine-speed independent; production leaves it off and gets a
	// background flush/compaction worker with real write backpressure.
	InlineCompaction bool

	// DisableAutoCompaction turns off flush-triggered compaction
	// (tests and tools only).
	DisableAutoCompaction bool
	// PrefetchOnCompaction, when positive, re-populates the block cache
	// after each compaction by reading up to this many blocks from every
	// output file — the mitigation Leaper (VLDB'20) applies to
	// compaction-induced cache invalidation. Off by default, matching
	// RocksDB; the ablation benches compare both settings.
	PrefetchOnCompaction int
	// Seed makes memtable skiplists deterministic.
	Seed int64
}

// DefaultOptions returns the scaled-down analogue of the paper's RocksDB
// configuration.
func DefaultOptions(dir string) Options {
	return Options{
		Dir:              dir,
		MemTableSize:     1 << 20, // 1 MiB
		BlockSize:        4096,
		BitsPerKey:       10,
		TargetFileSize:   256 << 10, // 256 KiB (paper: 4 MiB at 100 GB scale)
		NumLevels:        7,
		LevelSizeRatio:   10,
		L1TargetSize:     1 << 20, // 1 MiB
		L0CompactTrigger: 4,
		L0StopTrigger:    8,
		Seed:             1,
	}
}

func (o Options) withDefaults() Options {
	if o.FS == nil {
		o.FS = vfs.NewMem()
	}
	if o.Dir == "" {
		o.Dir = "db"
	}
	if o.MemTableSize <= 0 {
		o.MemTableSize = 1 << 20
	}
	if o.MinMemTableSize <= 0 {
		o.MinMemTableSize = 32 << 10
	}
	if o.BlockSize <= 0 {
		o.BlockSize = 4096
	}
	if o.TargetFileSize <= 0 {
		o.TargetFileSize = 256 << 10
	}
	if o.NumLevels <= 0 {
		o.NumLevels = 7
	}
	if o.LevelSizeRatio <= 0 {
		o.LevelSizeRatio = 10
	}
	if o.L1TargetSize <= 0 {
		o.L1TargetSize = 1 << 20
	}
	if o.L0CompactTrigger <= 0 {
		o.L0CompactTrigger = 4
	}
	if o.L0StopTrigger <= 0 {
		o.L0StopTrigger = 2 * o.L0CompactTrigger
	}
	if o.MaxImmutableMemTables <= 0 {
		o.MaxImmutableMemTables = 2
	}
	if o.L0SlowdownDelay <= 0 {
		o.L0SlowdownDelay = 100 * time.Microsecond
	}
	if o.CompactionParallelism <= 0 {
		if o.InlineCompaction {
			o.CompactionParallelism = 1
		} else {
			o.CompactionParallelism = min(runtime.GOMAXPROCS(0), 4)
		}
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	return o
}

// targetSize returns the byte budget for level (1-based levels; level 0 is
// file-count driven).
func (o *Options) targetSize(level int) int64 {
	size := o.L1TargetSize
	for i := 1; i < level; i++ {
		size *= int64(o.LevelSizeRatio)
	}
	return size
}
