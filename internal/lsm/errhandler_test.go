package lsm

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"adcache/internal/block"
	"adcache/internal/sstable"
	"adcache/internal/vfs"
)

// Tests for the background error handler: classification, backoff,
// self-healing retries of transient faults, corruption-triggered read-only
// degraded mode, Resume, and paranoid pre-install verification.

func TestClassifyBgError(t *testing.T) {
	cases := []struct {
		err  error
		want BgErrorKind
	}{
		{errors.New("plain io failure"), BgTransient},
		{vfs.ErrInjected, BgTransient},
		{fmt.Errorf("wrap: %w", vfs.ErrNoSpace), BgNoSpace},
		{fmt.Errorf("wrap: %w", sstable.ErrCorrupt), BgCorruption},
		{fmt.Errorf("wrap: %w", block.ErrCorrupt), BgCorruption},
		// A paranoid reject wraps a corruption error, but the bad table was
		// discarded before install: it must stay retryable.
		{&paranoidError{fileNum: 7, err: fmt.Errorf("x: %w", sstable.ErrCorrupt)}, BgTransient},
	}
	for _, c := range cases {
		if got := classifyBgError(c.err); got != c.want {
			t.Errorf("classify(%v) = %v, want %v", c.err, got, c.want)
		}
	}
}

func TestBackoffDelay(t *testing.T) {
	base, cap := 5*time.Millisecond, 40*time.Millisecond
	want := []time.Duration{5, 10, 20, 40, 40, 40}
	for i, w := range want {
		if got := backoffDelay(base, cap, i+1); got != w*time.Millisecond {
			t.Errorf("attempt %d: %v, want %v", i+1, got, w*time.Millisecond)
		}
	}
	if got := backoffDelay(time.Second, 100*time.Millisecond, 1); got != 100*time.Millisecond {
		t.Errorf("base above cap: %v", got)
	}
}

// waitForMetrics polls the DB until cond holds or the deadline passes.
func waitForMetrics(t *testing.T, db *DB, what string, cond func(Metrics) bool) Metrics {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		m := db.Metrics()
		if cond(m) {
			return m
		}
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s; metrics: state=%s kind=%s retries=%d flushes=%d lastErr=%q",
				what, m.BgState, m.BgErrorKind, m.BgRetries, m.Flushes, m.BgLastError)
		}
		time.Sleep(time.Millisecond)
	}
}

func fastRetryOpts(fs vfs.FS) Options {
	opts := testOptions(fs)
	opts.BgRetryBase = time.Millisecond
	opts.BgRetryMaxDelay = 4 * time.Millisecond
	return opts
}

// fillMemTable writes keys from base until the active memtable seals, which
// queues a background flush.
// fillMemTable writes until the active memtable rotates exactly once: the
// commit that crosses the flush threshold seals it, leaving a fresh (empty
// or near-empty) active memtable. Detecting the seal directly keeps the
// helper independent of the memtable's per-entry charge model.
func fillMemTable(t *testing.T, db *DB, base int) {
	t.Helper()
	for i := 0; ; i++ {
		if err := db.Put(key(base+i), val(base+i)); err != nil {
			t.Fatalf("Put(%d): %v", base+i, err)
		}
		db.mu.RLock()
		sealed := len(db.imm) > 0 || db.mem.Empty()
		db.mu.RUnlock()
		if sealed {
			return
		}
	}
}

// TestBgTransientSelfHeals injects one failing SSTable create into the
// background flush: the worker must classify it transient, retry with
// backoff, and converge to a healthy state with the flush completed — no
// manual intervention, no failed foreground writes.
func TestBgTransientSelfHeals(t *testing.T) {
	fault := vfs.NewFault(vfs.NewMem())
	db := mustOpen(t, fastRetryOpts(fault))
	defer db.Close()

	fault.Target(".sst")
	fault.FailCreates(1)
	fillMemTable(t, db, 0)

	m := waitForMetrics(t, db, "self-heal", func(m Metrics) bool {
		return m.Flushes >= 1 && m.BgState == "healthy" && m.ImmMemTables == 0
	})
	if m.BgRetries < 1 {
		t.Fatalf("BgRetries = %d, want >= 1 (the injected failure must be visible)", m.BgRetries)
	}
	if v, ok, err := db.Get(key(3)); err != nil || !ok || string(v) != string(val(3)) {
		t.Fatalf("data after self-heal: %q ok=%v err=%v", v, ok, err)
	}
}

// TestBgMaxRetriesEscalatesToReadOnly: a persistent transient fault exhausts
// BgMaxRetries, the DB degrades to read-only (writes fail fast with
// ErrReadOnly), and clearing the fault plus Resume restores service.
func TestBgMaxRetriesEscalatesToReadOnly(t *testing.T) {
	fault := vfs.NewFault(vfs.NewMem())
	opts := fastRetryOpts(fault)
	opts.BgMaxRetries = 2
	db := mustOpen(t, opts)
	defer db.Close()

	fault.Target(".sst")
	fault.FailCreates(1000)
	fillMemTable(t, db, 0)

	waitForMetrics(t, db, "read-only escalation", func(m Metrics) bool {
		return m.BgState == "read-only"
	})
	if err := db.Put(key(99999), val(1)); !errors.Is(err, ErrReadOnly) {
		t.Fatalf("Put in read-only mode: %v, want ErrReadOnly", err)
	}
	if err := db.Flush(); !errors.Is(err, ErrReadOnly) {
		t.Fatalf("Flush in read-only mode: %v, want ErrReadOnly", err)
	}
	// Reads still work: the tree is intact, only background writes failed.
	if v, ok, err := db.Get(key(3)); err != nil || !ok || string(v) != string(val(3)) {
		t.Fatalf("read in read-only mode: %q ok=%v err=%v", v, ok, err)
	}

	fault.Reset()
	if err := db.Resume(); err != nil {
		t.Fatalf("Resume: %v", err)
	}
	m := waitForMetrics(t, db, "post-resume health", func(m Metrics) bool {
		return m.BgState == "healthy" && m.Flushes >= 1 && m.ImmMemTables == 0
	})
	if m.Resumes != 1 {
		t.Fatalf("Resumes = %d, want 1", m.Resumes)
	}
	if err := db.Put(key(99999), val(1)); err != nil {
		t.Fatalf("Put after Resume: %v", err)
	}
}

// corruptSSTInPlace flips one byte in the middle of the given file and
// returns a function that restores it. MemFS hands out shared file objects,
// so the change is visible to already-open readers.
func corruptSSTInPlace(t *testing.T, fs vfs.FS, path string) (restore func()) {
	t.Helper()
	f, err := fs.Open(path)
	if err != nil {
		t.Fatalf("open %s: %v", path, err)
	}
	size, err := f.Size()
	if err != nil || size == 0 {
		t.Fatalf("size %s: %d %v", path, size, err)
	}
	off := size / 2
	orig := make([]byte, 1)
	if _, err := f.ReadAt(orig, off); err != nil {
		t.Fatalf("read %s: %v", path, err)
	}
	if _, err := f.WriteAt([]byte{orig[0] ^ 0xFF}, off); err != nil {
		t.Fatalf("corrupt %s: %v", path, err)
	}
	return func() {
		if _, err := f.WriteAt(orig, off); err != nil {
			t.Fatalf("restore %s: %v", path, err)
		}
	}
}

// TestBgCorruptionParksReadOnlyAndResumeRecovers: compaction reading a
// corrupted durable SSTable must park the DB read-only (retrying cannot fix
// durable corruption); restoring the bytes and calling Resume recovers.
func TestBgCorruptionParksReadOnlyAndResumeRecovers(t *testing.T) {
	fs := vfs.NewMem()
	opts := testOptions(fs)
	opts.DisableAutoCompaction = true // stage L0 deterministically
	opts.BgRetryBase = time.Millisecond
	db := mustOpen(t, opts)
	defer db.Close()

	for round := 0; round < 2; round++ {
		for i := 0; i < 400; i++ {
			if err := db.Put(key(i), val(i+round*10000)); err != nil {
				t.Fatalf("Put: %v", err)
			}
		}
		if err := db.Flush(); err != nil {
			t.Fatalf("Flush: %v", err)
		}
	}
	names, err := fs.List("testdb")
	if err != nil {
		t.Fatalf("List: %v", err)
	}
	var sst string
	for _, n := range names {
		if typ, _ := parseFileName(n); typ == "sst" {
			sst = "testdb/" + n
			break
		}
	}
	if sst == "" {
		t.Fatal("no sstable on disk after flushes")
	}

	restore := corruptSSTInPlace(t, fs, sst)
	err = db.Compact()
	if err == nil {
		t.Fatal("Compact over corrupted table succeeded")
	}
	if !errors.Is(err, sstable.ErrCorrupt) && !errors.Is(err, block.ErrCorrupt) {
		t.Fatalf("Compact error %v, want a corruption error", err)
	}
	m := db.Metrics()
	if m.BgState != "read-only" || m.BgErrorKind != "corruption" {
		t.Fatalf("after corruption: state=%s kind=%s", m.BgState, m.BgErrorKind)
	}
	if err := db.Put(key(0), val(0)); !errors.Is(err, ErrReadOnly) {
		t.Fatalf("Put in read-only mode: %v, want ErrReadOnly", err)
	}

	restore()
	if err := db.Resume(); err != nil {
		t.Fatalf("Resume after restoring bytes: %v", err)
	}
	m = db.Metrics()
	if m.BgState != "healthy" || m.Resumes != 1 {
		t.Fatalf("after Resume: state=%s resumes=%d", m.BgState, m.Resumes)
	}
	if err := db.Put(key(0), val(42)); err != nil {
		t.Fatalf("Put after Resume: %v", err)
	}
	if _, err := db.VerifyIntegrity(); err != nil {
		t.Fatalf("integrity after Resume: %v", err)
	}
}

// TestParanoidChecksRejectAndRetry: a silently corrupted flush output must
// be caught by the pre-install verification, deleted, and rewritten — the
// corruption never reaches the tree and the DB stays healthy.
func TestParanoidChecksRejectAndRetry(t *testing.T) {
	fault := vfs.NewFault(vfs.NewMem())
	opts := fastRetryOpts(fault)
	opts.ParanoidChecks = true
	db := mustOpen(t, opts)
	defer db.Close()

	fault.Target(".sst")
	fault.CorruptWrites(1)
	fillMemTable(t, db, 0)

	m := waitForMetrics(t, db, "paranoid reject + rewrite", func(m Metrics) bool {
		return m.Flushes >= 1 && m.BgState == "healthy" && m.ImmMemTables == 0
	})
	if m.BgRetries < 1 {
		t.Fatalf("BgRetries = %d, want >= 1 (the rejected table must be visible)", m.BgRetries)
	}
	if _, err := db.VerifyIntegrity(); err != nil {
		t.Fatalf("integrity after paranoid retry: %v", err)
	}
	if v, ok, err := db.Get(key(3)); err != nil || !ok || string(v) != string(val(3)) {
		t.Fatalf("data after paranoid retry: %q ok=%v err=%v", v, ok, err)
	}
}

// TestParanoidChecksInline: with inline compaction there is no background
// retry loop — the paranoid reject surfaces to the caller, and the next
// attempt (fault exhausted) succeeds.
func TestParanoidChecksInline(t *testing.T) {
	fault := vfs.NewFault(vfs.NewMem())
	opts := testOptions(fault)
	opts.InlineCompaction = true
	opts.ParanoidChecks = true
	db := mustOpen(t, opts)
	defer db.Close()

	for i := 0; i < 100; i++ {
		if err := db.Put(key(i), val(i)); err != nil {
			t.Fatalf("Put: %v", err)
		}
	}
	fault.Target(".sst")
	fault.CorruptWrites(1)
	err := db.Flush()
	var pe *paranoidError
	if !errors.As(err, &pe) {
		t.Fatalf("Flush with corrupting device: %v, want paranoid reject", err)
	}
	if err := db.Flush(); err != nil {
		t.Fatalf("retry Flush: %v", err)
	}
	if _, err := db.VerifyIntegrity(); err != nil {
		t.Fatalf("integrity: %v", err)
	}
}

// TestWALRemoveFailureNonFatal: failing to delete a retired WAL after a
// durably complete flush is cosmetic — the flush succeeds, a counter ticks,
// and the next reopen's orphan sweep collects the leftover file.
func TestWALRemoveFailureNonFatal(t *testing.T) {
	fault := vfs.NewFault(vfs.NewMem())
	opts := testOptions(fault)
	opts.InlineCompaction = true
	db := mustOpen(t, opts)

	for i := 0; i < 50; i++ {
		if err := db.Put(key(i), val(i)); err != nil {
			t.Fatalf("Put: %v", err)
		}
	}
	fault.Target(".log")
	fault.FailRemoves(1)
	if err := db.Flush(); err != nil {
		t.Fatalf("Flush with failing WAL remove: %v", err)
	}
	m := db.Metrics()
	if m.WALRemoveErrors != 1 {
		t.Fatalf("WALRemoveErrors = %d, want 1", m.WALRemoveErrors)
	}
	if m.BgState != "healthy" {
		t.Fatalf("BgState = %s after cosmetic failure", m.BgState)
	}
	countLogs := func() int {
		names, err := fault.List("testdb")
		if err != nil {
			t.Fatalf("List: %v", err)
		}
		n := 0
		for _, name := range names {
			if typ, _ := parseFileName(name); typ == "log" {
				n++
			}
		}
		return n
	}
	if got := countLogs(); got != 2 {
		t.Fatalf("log files after failed remove = %d, want 2 (active + leftover)", got)
	}
	if err := db.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	fault.Reset()
	db = mustOpen(t, opts)
	defer db.Close()
	if got := countLogs(); got != 1 {
		t.Fatalf("log files after reopen = %d, want 1 (orphan sweep)", got)
	}
	if v, ok, err := db.Get(key(3)); err != nil || !ok || string(v) != string(val(3)) {
		t.Fatalf("data after reopen: %q ok=%v err=%v", v, ok, err)
	}
}

// TestMixedFaultAvailability is the fixed-seed randomized smoke: a device
// that fails a small fraction of all operations. Foreground writes may fail,
// but the engine must keep serving, self-heal its background work once the
// faults stop, and retain every acknowledged write.
func TestMixedFaultAvailability(t *testing.T) {
	fault := vfs.NewFault(vfs.NewMem())
	opts := fastRetryOpts(fault)
	db := mustOpen(t, opts)
	defer db.Close()

	fault.FailProbability(0xfa017, 0.002)
	acked := map[string]string{}
	ambiguous := map[string]bool{}
	failed := 0
	for i := 0; i < 3000; i++ {
		k := key(i % 64)
		v := val(i)
		if err := db.Put(k, v); err != nil {
			// The op may still have committed (e.g. the group's WAL sync
			// succeeded and a later seal step failed): the key's state is
			// unknown until the next acked write to it.
			ambiguous[string(k)] = true
			delete(acked, string(k))
			failed++
			continue
		}
		// A successful Put is the key's newest version: its state is known
		// again even if an earlier op on it failed.
		delete(ambiguous, string(k))
		acked[string(k)] = string(v)
	}
	if failed == 0 {
		t.Log("no injected foreground failures this seed; availability still verified")
	}

	fault.Reset()
	if err := db.Flush(); err != nil {
		t.Fatalf("Flush after faults cleared: %v", err)
	}
	m := waitForMetrics(t, db, "post-fault health", func(m Metrics) bool {
		return m.BgState == "healthy" && m.ImmMemTables == 0
	})
	t.Logf("foreground failures: %d, background retries: %d", failed, m.BgRetries)
	for k, want := range acked {
		v, ok, err := db.Get([]byte(k))
		if err != nil || !ok || string(v) != want {
			t.Fatalf("acked key %s lost: %q ok=%v err=%v", k, v, ok, err)
		}
	}
	if _, err := db.VerifyIntegrity(); err != nil {
		t.Fatalf("integrity: %v", err)
	}
}
