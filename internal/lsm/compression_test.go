package lsm

import (
	"bytes"
	"fmt"
	"testing"
	"time"

	"adcache/internal/cache/blockcache"
	"adcache/internal/vfs"
)

// compressibleValue returns a value with a repetitive body plus a unique
// tag — the shape real payloads have, and one flate visibly shrinks.
func compressibleValue(i int) []byte {
	return append([]byte(fmt.Sprintf("val%08d-", i)), bytes.Repeat([]byte("abcdefgh"), 24)...)
}

// TestDBCompressionRoundTrip writes, flushes, compacts and reopens a
// flate-compressed store and demands the same answers as an uncompressed
// one, with physically smaller tables.
func TestDBCompressionRoundTrip(t *testing.T) {
	const n = 1200
	run := func(compression Compression) (*DB, vfs.FS) {
		fs := vfs.NewMem()
		opts := DefaultOptions("db")
		opts.FS = fs
		opts.MemTableSize = 32 << 10
		opts.TargetFileSize = 16 << 10
		opts.InlineCompaction = true
		opts.Compression = compression
		db, err := Open(opts)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < n; i++ {
			if err := db.Put(key(i), compressibleValue(i)); err != nil {
				t.Fatal(err)
			}
		}
		if err := db.Flush(); err != nil {
			t.Fatal(err)
		}
		if err := db.Compact(); err != nil {
			t.Fatal(err)
		}
		return db, fs
	}
	dbNone, _ := run(CompressionNone)
	defer dbNone.Close()
	dbFlate, flateFS := run(CompressionFlate)

	sizeNone := dbNone.Metrics().TotalBytes
	sizeFlate := dbFlate.Metrics().TotalBytes
	if sizeFlate >= sizeNone {
		t.Fatalf("flate tables (%d bytes) not smaller than uncompressed (%d bytes)",
			sizeFlate, sizeNone)
	}

	check := func(db *DB, label string) {
		t.Helper()
		for _, i := range []int{0, 1, n / 3, n - 1} {
			v, ok, err := db.Get(key(i))
			if err != nil || !ok || !bytes.Equal(v, compressibleValue(i)) {
				t.Fatalf("%s: Get(%d) = %q ok=%v err=%v", label, i, v, ok, err)
			}
		}
		kvs, err := db.Scan(key(100), 50)
		if err != nil || len(kvs) != 50 {
			t.Fatalf("%s: Scan = %d entries, %v", label, len(kvs), err)
		}
		for j, kv := range kvs {
			if !bytes.Equal(kv.Key, key(100+j)) || !bytes.Equal(kv.Value, compressibleValue(100+j)) {
				t.Fatalf("%s: scan entry %d = %s", label, j, kv.Key)
			}
		}
	}
	check(dbNone, "none")
	check(dbFlate, "flate")

	// Reopen the compressed store: recovery reads the same trailers.
	if err := dbFlate.Close(); err != nil {
		t.Fatal(err)
	}
	opts := DefaultOptions("db")
	opts.FS = flateFS
	opts.Compression = CompressionFlate
	opts.InlineCompaction = true
	reopened, err := Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	defer reopened.Close()
	if _, err := reopened.VerifyIntegrity(); err != nil {
		t.Fatalf("integrity after reopen: %v", err)
	}
	check(reopened, "reopened")
}

// TestDBCompressionWithBlockCache runs the compressed store with a real
// block-cache strategy and checks physical-byte charging end to end: the
// cache's resident bytes stay below what the blocks decode to.
func TestDBCompressionWithBlockCache(t *testing.T) {
	bc := blockcache.New(1 << 20)
	strategy := &blockOnlyStrategy{cache: bc}
	opts := DefaultOptions("db")
	opts.FS = vfs.NewMem()
	opts.MemTableSize = 32 << 10
	opts.InlineCompaction = true
	opts.Compression = CompressionFlate
	opts.Strategy = strategy
	db, err := Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	const n = 800
	for i := 0; i < n; i++ {
		if err := db.Put(key(i), compressibleValue(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.Flush(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		if v, ok, err := db.Get(key(i)); err != nil || !ok || !bytes.Equal(v, compressibleValue(i)) {
			t.Fatalf("Get(%d): ok=%v err=%v", i, ok, err)
		}
	}
	physical, logical := bc.Stats().Used, bc.LogicalUsed()
	if physical == 0 || logical == 0 {
		t.Fatalf("cache not populated: physical=%d logical=%d", physical, logical)
	}
	if physical >= logical {
		t.Fatalf("physical bytes %d not below logical %d for compressed blocks",
			physical, logical)
	}
}

func TestIOLimiterAccumulatesStall(t *testing.T) {
	var nilLimiter *ioLimiter
	nilLimiter.wait(1 << 30) // must be a no-op, not a panic
	if nilLimiter.StallNanos() != 0 {
		t.Fatal("nil limiter reported stall")
	}

	l := newIOLimiter(1 << 20) // 1 MiB/s
	start := time.Now()
	l.wait(1 << 20) // drains the initial second of budget
	l.wait(512 << 10)
	elapsed := time.Since(start)
	if stall := l.StallNanos(); stall == 0 {
		t.Fatal("overdraft did not accumulate stall time")
	} else if elapsed < time.Duration(stall)/2 {
		t.Fatalf("reported %v stall but only %v elapsed", time.Duration(stall), elapsed)
	}
}

// TestBgIORateLimitThrottlesFlush opens a store with a tight background
// budget and checks that flushing reports stall time in Metrics.
func TestBgIORateLimitThrottlesFlush(t *testing.T) {
	opts := DefaultOptions("db")
	opts.FS = vfs.NewMem()
	opts.MemTableSize = 8 << 20 // no incidental flushes: Flush below is the write
	opts.InlineCompaction = true
	// The bucket holds a one-second burst (2 MiB); flushing ~2.8 MiB must
	// overdraft it and sleep the difference off.
	opts.BgIOBytesPerSec = 2 << 20
	db, err := Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	value := bytes.Repeat([]byte("x"), 2048)
	for i := 0; i < 1400; i++ {
		if err := db.Put(key(i), value); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.Flush(); err != nil {
		t.Fatal(err)
	}
	if stall := db.Metrics().BgIOStallNanos; stall == 0 {
		t.Fatal("background writes were never throttled")
	}
}
