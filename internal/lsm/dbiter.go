package lsm

import (
	"adcache/internal/sstable"
)

// Iterator is a forward iterator over the live keys of a consistent
// snapshot of the database. It pins the version it was created against, so
// concurrent flushes and compactions cannot invalidate it; Close releases
// the pin. Iterators read blocks through the block cache but bypass result
// caches (result caches serve materialised query results, not streams) —
// the same division RocksDB draws for its row cache.
//
// Iterators are not safe for concurrent use.
type Iterator struct {
	db     *DB
	handle *versionHandle
	vi     *visibleIter
	stats  sstable.ReadStats
	closed bool
}

// NewIter returns an iterator over a snapshot of the database taken now.
func (d *DB) NewIter() (*Iterator, error) {
	d.mu.RLock()
	if d.closed {
		d.mu.RUnlock()
		return nil, ErrClosed
	}
	mem := d.mem
	imm := d.imm
	h := d.acquireVersion()
	seq := d.lastSeq
	d.mu.RUnlock()

	it := &Iterator{db: d, handle: h}
	iters := []internalIterator{mem.NewIter()}
	for i := len(imm) - 1; i >= 0; i-- {
		iters = append(iters, imm[i].mem.NewIter())
	}
	for _, f := range h.v.Levels[0] {
		r, err := d.tc.get(f.FileNum)
		if err != nil {
			d.releaseVersion(h)
			return nil, err
		}
		fileIter, err := r.NewIter(&it.stats)
		if err != nil {
			d.releaseVersion(h)
			return nil, err
		}
		iters = append(iters, fileIter)
	}
	for level := 1; level < len(h.v.Levels); level++ {
		if len(h.v.Levels[level]) == 0 {
			continue
		}
		iters = append(iters, newLevelIter(d.tc, h.v.Levels[level], &it.stats))
	}
	it.vi = newVisibleIter(newMergingIter(iters...), seq)
	return it, nil
}

// First positions at the smallest live key.
func (it *Iterator) First() bool {
	if it.closed {
		return false
	}
	return it.skipDeleted(it.vi.First())
}

// SeekGE positions at the first live key >= target.
func (it *Iterator) SeekGE(target []byte) bool {
	if it.closed {
		return false
	}
	return it.skipDeleted(it.vi.SeekGE(target))
}

// Next advances to the next live key.
func (it *Iterator) Next() bool {
	if it.closed {
		return false
	}
	return it.skipDeleted(it.vi.Next())
}

// skipDeleted moves past tombstones.
func (it *Iterator) skipDeleted(ok bool) bool {
	for ok && it.vi.Deleted() {
		ok = it.vi.Next()
	}
	return ok
}

// Valid reports whether the iterator is positioned at a live entry.
func (it *Iterator) Valid() bool { return !it.closed && it.vi.Valid() }

// Key returns the current user key; stable until the next positioning call.
func (it *Iterator) Key() []byte { return it.vi.UserKey() }

// Value returns the current value; stable until the next positioning call.
func (it *Iterator) Value() []byte { return it.vi.Value() }

// Err returns the first error the iterator encountered.
func (it *Iterator) Err() error { return it.vi.Err() }

// BlockReads reports how many SST blocks this iterator fetched from disk.
func (it *Iterator) BlockReads() int64 { return it.stats.BlockMisses }

// Close releases the snapshot pin. It is safe to call twice.
func (it *Iterator) Close() {
	if it.closed {
		return
	}
	it.closed = true
	it.db.releaseVersion(it.handle)
}
