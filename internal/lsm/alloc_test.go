package lsm

import (
	"testing"

	"adcache/internal/cache/blockcache"
	"adcache/internal/vfs"
)

// allocDB builds a flushed, compacted store with n keys so allocation
// measurements exercise the SSTable read path rather than the memtable.
func allocDB(t *testing.T, strategy CacheStrategy, n int) *DB {
	t.Helper()
	opts := DefaultOptions("allocdb")
	opts.FS = vfs.NewMem()
	opts.Strategy = strategy
	db, err := Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	for i := 0; i < n; i++ {
		if err := db.Put(key(i), val(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := db.Compact(); err != nil {
		t.Fatal(err)
	}
	return db
}

// TestAllocsCachedGet locks in the zero-allocation read path: once the
// target block is in the block cache, a point lookup's only allocation is
// the value copy returned to the caller.
func TestAllocsCachedGet(t *testing.T) {
	db := allocDB(t, &blockOnlyStrategy{cache: blockcache.New(32 << 20)}, 20_000)
	k := key(12345)
	if _, ok, err := db.Get(k); err != nil || !ok {
		t.Fatalf("warm-up Get: ok=%v err=%v", ok, err)
	}
	allocs := testing.AllocsPerRun(200, func() {
		if _, ok, _ := db.Get(k); !ok {
			t.Fatal("key vanished")
		}
	})
	// Under -race sync.Pool drops puts at random, so the pooled readState is
	// reallocated on some iterations; only the race-free bound is strict.
	if !raceEnabled && allocs > 1 {
		t.Fatalf("cached Get allocates %.1f objects/op, want <= 1 (the value copy)", allocs)
	}
}

// TestAllocsBloomNegativeGet asserts that a lookup rejected by every
// table's Bloom filter completes without allocating at all.
func TestAllocsBloomNegativeGet(t *testing.T) {
	db := allocDB(t, NoCache{}, 20_000)
	// In range (so files are probed) but absent (so every filter rejects).
	absent := append(key(12345), 'x')
	if _, ok, err := db.Get(absent); err != nil || ok {
		t.Fatalf("warm-up Get: ok=%v err=%v", ok, err)
	}
	allocs := testing.AllocsPerRun(200, func() {
		if _, ok, _ := db.Get(absent); ok {
			t.Fatal("phantom key")
		}
	})
	if !raceEnabled && allocs > 0 {
		t.Fatalf("bloom-negative Get allocates %.1f objects/op, want 0", allocs)
	}
}

// TestAllocsWarmScan16 bounds the steady-state cost of a short scan with
// all blocks cached: one result arena plus the result slices, independent
// of entry count (the pre-refactor path allocated per entry: ~69/op).
func TestAllocsWarmScan16(t *testing.T) {
	db := allocDB(t, &blockOnlyStrategy{cache: blockcache.New(32 << 20)}, 20_000)
	start := key(5000)
	if kvs, err := db.Scan(start, 16); err != nil || len(kvs) != 16 {
		t.Fatalf("warm-up Scan: len=%d err=%v", len(kvs), err)
	}
	allocs := testing.AllocsPerRun(100, func() {
		kvs, err := db.Scan(start, 16)
		if err != nil || len(kvs) != 16 {
			t.Fatal("scan failed")
		}
	})
	if !raceEnabled && allocs > 20 {
		t.Fatalf("warm Scan(16) allocates %.1f objects/op, want <= 20", allocs)
	}
}
