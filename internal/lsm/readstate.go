package lsm

import (
	"adcache/internal/manifest"
	"adcache/internal/sstable"
)

// readState is the pooled per-operation scratch for the read hot paths
// (Get and scan). Pooling it keeps steady-state point lookups and warm
// scans free of per-operation allocations: the seek-key buffers, the
// block iterator, the merge heap, and the iterator stack all retain their
// backing storage between operations.
//
// A readState is used by one goroutine for one operation and returned to
// the pool before the operation's results are handed out (results never
// alias readState memory).
type readState struct {
	stats   sstable.ReadStats
	seekBuf []byte // search-key scratch for the memtable probes
	iters   []internalIterator
	merge   mergingIter
	vi      visibleIter

	// Reusable table and level iterators, handed out per scan in order.
	sstIters []*sstable.Iter
	sstUsed  int
	lvlIters []*levelIter
	lvlUsed  int
}

// getReadState fetches a readState from the pool, reset for a new operation.
func (d *DB) getReadState() *readState {
	rs := d.readPool.Get().(*readState)
	rs.stats.Reset()
	rs.iters = rs.iters[:0]
	rs.sstUsed, rs.lvlUsed = 0, 0
	return rs
}

// putReadState drops references to engine objects (memtables, readers,
// version-pinned files) so the pool never keeps them alive, then returns
// the scratch to the pool.
func (d *DB) putReadState(rs *readState) {
	for i := range rs.iters {
		rs.iters[i] = nil
	}
	rs.iters = rs.iters[:0]
	rs.merge.setIters(nil)
	rs.vi.init(nil, 0)
	for _, it := range rs.sstIters[:rs.sstUsed] {
		it.Close()
	}
	for _, l := range rs.lvlIters[:rs.lvlUsed] {
		l.init(nil, nil, nil)
	}
	d.readPool.Put(rs)
}

// sstIter returns a pooled table iterator initialised over r.
func (rs *readState) sstIter(r *sstable.Reader) *sstable.Iter {
	if rs.sstUsed == len(rs.sstIters) {
		rs.sstIters = append(rs.sstIters, new(sstable.Iter))
	}
	it := rs.sstIters[rs.sstUsed]
	rs.sstUsed++
	it.Init(r, &rs.stats)
	return it
}

// levelIterFor returns a pooled level iterator initialised over files.
func (rs *readState) levelIterFor(tc *tableCache, files []*manifest.FileMeta) *levelIter {
	if rs.lvlUsed == len(rs.lvlIters) {
		rs.lvlIters = append(rs.lvlIters, new(levelIter))
	}
	l := rs.lvlIters[rs.lvlUsed]
	rs.lvlUsed++
	l.init(tc, files, &rs.stats)
	return l
}
