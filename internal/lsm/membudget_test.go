package lsm

import (
	"fmt"
	"testing"

	"adcache/internal/vfs"
)

func budgetOpts() Options {
	opts := DefaultOptions("db")
	opts.FS = vfs.NewMem()
	opts.InlineCompaction = true
	opts.MemTableSize = 1 << 20
	opts.MinMemTableSize = 8 << 10
	return opts
}

func bput(t *testing.T, db *DB, i int) {
	t.Helper()
	k := []byte(fmt.Sprintf("key%06d", i))
	v := make([]byte, 256)
	if err := db.Put(k, v); err != nil {
		t.Fatalf("Put(%d): %v", i, err)
	}
}

// TestMemTableBudgetShrinkAtRotation: shrinking the budget below the
// active memtable's current size never truncates it — the data stays
// readable, and the memtable seals (rotation) at the next write group,
// after which the active target tracks the smaller budget.
func TestMemTableBudgetShrinkAtRotation(t *testing.T) {
	db := mustOpen(t, budgetOpts())
	defer db.Close()

	db.SetMemTableBudget(1 << 20)
	for i := 0; i < 100; i++ {
		bput(t, db, i)
	}
	m := db.Metrics()
	if m.Flushes != 0 {
		t.Fatalf("flushed under a roomy budget: %d flushes", m.Flushes)
	}
	grown := m.MemTableBytes
	if grown == 0 {
		t.Fatal("memtable empty after 100 puts")
	}

	// Shrink far below the current fill. Nothing happens until the next
	// write group: the in-flight memtable must not be touched.
	db.SetMemTableBudget(16 << 10)
	if got := db.Metrics().MemTableBytes; got != grown {
		t.Fatalf("shrink truncated the in-flight memtable: %d -> %d bytes", grown, got)
	}

	// The next write observes size >= target and seals; inline compaction
	// flushes synchronously.
	bput(t, db, 100)
	m = db.Metrics()
	if m.Flushes == 0 {
		t.Fatal("no rotation after the post-shrink write group")
	}
	if m.MemTableBytes >= grown {
		t.Fatalf("active memtable did not rotate: %d bytes", m.MemTableBytes)
	}
	if m.MemTableTarget > 16<<10 {
		t.Fatalf("active target %d exceeds the shrunk budget", m.MemTableTarget)
	}

	// Every write — before and after the shrink — stays readable.
	for i := 0; i <= 100; i++ {
		k := []byte(fmt.Sprintf("key%06d", i))
		if _, ok, err := db.Get(k); err != nil || !ok {
			t.Fatalf("Get(%d) after shrink: ok=%v err=%v", i, ok, err)
		}
	}
}

// TestMemTableBudgetFloor: a budget below MinMemTableSize degrades to
// frequent small flushes at the floor, never a zero-size livelock, and
// clearing the budget restores static sizing.
func TestMemTableBudgetFloor(t *testing.T) {
	opts := budgetOpts()
	db := mustOpen(t, opts)
	defer db.Close()

	db.SetMemTableBudget(1) // absurdly small
	for i := 0; i < 200; i++ {
		bput(t, db, i)
	}
	m := db.Metrics()
	if m.Flushes == 0 {
		t.Fatal("tiny budget never flushed")
	}
	if m.MemTableTarget != opts.MinMemTableSize {
		t.Fatalf("target %d, want floor %d", m.MemTableTarget, opts.MinMemTableSize)
	}
	for i := 0; i < 200; i++ {
		k := []byte(fmt.Sprintf("key%06d", i))
		if _, ok, err := db.Get(k); err != nil || !ok {
			t.Fatalf("Get(%d): ok=%v err=%v", i, ok, err)
		}
	}

	// Back to static sizing.
	db.SetMemTableBudget(0)
	if got := db.Metrics().MemTableTarget; got != opts.MemTableSize {
		t.Fatalf("static target %d, want %d", got, opts.MemTableSize)
	}
}

// TestWriteSideInfoSnapshot: the lock-free write-side snapshot tracks the
// commit path's counters and the imm queue without taking d.mu.
func TestWriteSideInfoSnapshot(t *testing.T) {
	db := mustOpen(t, budgetOpts())
	defer db.Close()

	if info := db.WriteSideInfo(); info.MemTarget == 0 {
		t.Fatal("initial snapshot missing (MemTarget == 0)")
	}
	db.SetMemTableBudget(32 << 10)
	for i := 0; i < 500; i++ {
		bput(t, db, i)
	}
	info := db.WriteSideInfo()
	if info.UserBytes == 0 {
		t.Fatal("UserBytes not tracked")
	}
	if info.Flushes == 0 || info.FlushedBytes == 0 {
		t.Fatalf("flush counters not tracked: %+v", info)
	}
	if info.MemTarget > 32<<10 {
		t.Fatalf("MemTarget %d exceeds budget", info.MemTarget)
	}
	if info.MaxImm != db.opts.MaxImmutableMemTables {
		t.Fatalf("MaxImm = %d, want %d", info.MaxImm, db.opts.MaxImmutableMemTables)
	}
	m := db.Metrics()
	if info.FlushedBytes != m.FlushedBytes || info.UserBytes != m.UserBytes {
		t.Fatalf("snapshot diverges from Metrics: %+v vs %+v", info, m)
	}
}
