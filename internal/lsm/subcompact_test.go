package lsm

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"

	"adcache/internal/vfs"
)

// subcompactOptions is a configuration that forces deep, multi-file
// compactions so the range splitter produces several shards: tiny memtables
// and output files, deterministic inline compaction triggers.
func subcompactOptions(fs vfs.FS, parallelism int) Options {
	opts := DefaultOptions("testdb")
	opts.FS = fs
	opts.InlineCompaction = true
	opts.CompactionParallelism = parallelism
	opts.MemTableSize = 8 << 10
	opts.TargetFileSize = 8 << 10
	opts.L1TargetSize = 16 << 10
	return opts
}

// applySubcompactWorkload drives a seeded stream of overwrites and deletes
// wide enough that every run compacts several times, and returns the model
// of the live contents.
func applySubcompactWorkload(t *testing.T, db *DB) map[string]string {
	t.Helper()
	model := map[string]string{}
	rng := rand.New(rand.NewSource(42))
	for op := 0; op < 6000; op++ {
		k := fmt.Sprintf("key%05d", rng.Intn(2000))
		if rng.Intn(10) == 0 {
			if err := db.Delete([]byte(k)); err != nil {
				t.Fatal(err)
			}
			delete(model, k)
		} else {
			v := fmt.Sprintf("value%08d-%08d", op, rng.Intn(1<<30))
			if err := db.Put([]byte(k), []byte(v)); err != nil {
				t.Fatal(err)
			}
			model[k] = v
		}
	}
	return model
}

func dumpAll(t *testing.T, db *DB) []KV {
	t.Helper()
	kvs, err := db.Scan(nil, 1<<30)
	if err != nil {
		t.Fatal(err)
	}
	return kvs
}

// TestSubcompactionEquivalence checks that the same workload produces
// identical logical contents at parallelism 1, 2 and 8, that every run
// passes the integrity check (sorted, non-overlapping levels), and that the
// parallel runs actually executed multi-shard compactions.
func TestSubcompactionEquivalence(t *testing.T) {
	type result struct {
		kvs            []KV
		compactions    int64
		subcompactions int64
	}
	run := func(parallelism int) result {
		db := mustOpen(t, subcompactOptions(vfs.NewMem(), parallelism))
		defer db.Close()
		model := applySubcompactWorkload(t, db)
		if err := db.Compact(); err != nil {
			t.Fatalf("parallelism=%d: Compact: %v", parallelism, err)
		}
		kvs := dumpAll(t, db)
		if len(kvs) != len(model) {
			t.Fatalf("parallelism=%d: dump has %d keys, model %d",
				parallelism, len(kvs), len(model))
		}
		for _, kv := range kvs {
			if model[string(kv.Key)] != string(kv.Value) {
				t.Fatalf("parallelism=%d: %s = %q, model %q",
					parallelism, kv.Key, kv.Value, model[string(kv.Key)])
			}
		}
		if _, err := db.VerifyIntegrity(); err != nil {
			t.Fatalf("parallelism=%d: VerifyIntegrity: %v", parallelism, err)
		}
		m := db.Metrics()
		return result{kvs, m.Compactions, m.Subcompactions}
	}

	serial := run(1)
	if serial.compactions == 0 {
		t.Fatal("workload did not trigger any compaction")
	}
	if serial.subcompactions != serial.compactions {
		t.Fatalf("serial run: %d subcompactions for %d compactions, want equal",
			serial.subcompactions, serial.compactions)
	}
	for _, p := range []int{2, 8} {
		par := run(p)
		if len(par.kvs) != len(serial.kvs) {
			t.Fatalf("parallelism=%d: %d keys, serial %d", p, len(par.kvs), len(serial.kvs))
		}
		for i := range par.kvs {
			if !bytes.Equal(par.kvs[i].Key, serial.kvs[i].Key) ||
				!bytes.Equal(par.kvs[i].Value, serial.kvs[i].Value) {
				t.Fatalf("parallelism=%d: entry %d: %s=%s, serial %s=%s", p, i,
					par.kvs[i].Key, par.kvs[i].Value, serial.kvs[i].Key, serial.kvs[i].Value)
			}
		}
		if par.subcompactions <= par.compactions {
			t.Fatalf("parallelism=%d: %d subcompactions for %d compactions — no compaction split",
				p, par.subcompactions, par.compactions)
		}
	}
}

// TestSerialCompactionDeterministic checks that parallelism 1 under
// InlineCompaction remains byte-for-byte deterministic: two runs of the same
// workload leave identical files on disk. This is the property the parallel
// default is gated on (and why InlineCompaction defaults to parallelism 1).
func TestSerialCompactionDeterministic(t *testing.T) {
	snapshot := func() map[string][]byte {
		fs := vfs.NewMem()
		db := mustOpen(t, subcompactOptions(fs, 1))
		applySubcompactWorkload(t, db)
		if err := db.Compact(); err != nil {
			t.Fatal(err)
		}
		if err := db.Close(); err != nil {
			t.Fatal(err)
		}
		names, err := fs.List("testdb")
		if err != nil {
			t.Fatal(err)
		}
		files := map[string][]byte{}
		for _, name := range names {
			f, err := fs.Open("testdb/" + name)
			if err != nil {
				t.Fatal(err)
			}
			size, _ := f.Size()
			buf := make([]byte, size)
			if _, err := f.ReadAt(buf, 0); err != nil && size > 0 {
				t.Fatal(err)
			}
			f.Close()
			files[name] = buf
		}
		return files
	}
	a, b := snapshot(), snapshot()
	if len(a) != len(b) {
		t.Fatalf("runs left different file sets: %d vs %d files", len(a), len(b))
	}
	for name, data := range a {
		other, ok := b[name]
		if !ok {
			t.Fatalf("file %s missing from second run", name)
		}
		if !bytes.Equal(data, other) {
			t.Fatalf("file %s differs between runs (%d vs %d bytes)", name, len(data), len(other))
		}
	}
}

// TestSubcompactionFaultLeavesNoOrphans injects a write failure mid-
// compaction and checks that (a) the error surfaces, (b) the failing shard's
// siblings are cancelled and every partial output file is deleted — the disk
// holds only files referenced by the installed version — and (c) after the
// fault clears the same compaction succeeds with intact contents.
func TestSubcompactionFaultLeavesNoOrphans(t *testing.T) {
	ffs := vfs.NewFault(vfs.NewMem())
	opts := subcompactOptions(ffs, 4)
	opts.DisableAutoCompaction = true
	db := mustOpen(t, opts)
	defer db.Close()

	model := map[string]string{}
	rng := rand.New(rand.NewSource(7))
	for op := 0; op < 4000; op++ {
		k := fmt.Sprintf("key%05d", rng.Intn(1500))
		v := fmt.Sprintf("value%08d", op)
		if err := db.Put([]byte(k), []byte(v)); err != nil {
			t.Fatal(err)
		}
		model[k] = v
	}
	if err := db.Flush(); err != nil {
		t.Fatal(err)
	}

	ffs.FailAfterWrites(2)
	err := db.Compact()
	ffs.Reset()
	if err == nil {
		t.Fatal("Compact succeeded despite injected write failure")
	}
	if err == errCompactionAborted {
		t.Fatal("Compact reported the sibling-abort sentinel instead of the root cause")
	}

	// Every .sst on disk must be referenced by the current version: the
	// failed compaction installed nothing and deleted all partial outputs.
	referenced := map[uint64]bool{}
	db.mu.RLock()
	for _, level := range db.version.Levels {
		for _, f := range level {
			referenced[f.FileNum] = true
		}
	}
	db.mu.RUnlock()
	names, lerr := ffs.List(opts.Dir)
	if lerr != nil {
		t.Fatal(lerr)
	}
	for _, name := range names {
		typ, num := parseFileName(name)
		if typ == "sst" && !referenced[num] {
			t.Fatalf("orphan SST %s left behind by failed compaction", name)
		}
	}

	// The fault cleared: the retried compaction succeeds and loses nothing.
	if err := db.Compact(); err != nil {
		t.Fatalf("Compact after fault cleared: %v", err)
	}
	kvs := dumpAll(t, db)
	if len(kvs) != len(model) {
		t.Fatalf("retried compaction: %d keys, model %d", len(kvs), len(model))
	}
	for _, kv := range kvs {
		if model[string(kv.Key)] != string(kv.Value) {
			t.Fatalf("retried compaction: %s = %q, model %q", kv.Key, kv.Value, model[string(kv.Key)])
		}
	}
	if _, err := db.VerifyIntegrity(); err != nil {
		t.Fatalf("VerifyIntegrity after retry: %v", err)
	}
}
