package lsm

import (
	"fmt"
	"math/rand"
	"testing"

	"adcache/internal/vfs"
)

func benchDB(b *testing.B, n int) *DB {
	b.Helper()
	opts := DefaultOptions("benchdb")
	opts.FS = vfs.NewMem()
	db, err := Open(opts)
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { db.Close() })
	for i := 0; i < n; i++ {
		if err := db.Put(key(i), val(i)); err != nil {
			b.Fatal(err)
		}
	}
	if err := db.Flush(); err != nil {
		b.Fatal(err)
	}
	if err := db.Compact(); err != nil {
		b.Fatal(err)
	}
	return db
}

func BenchmarkDBPut(b *testing.B) {
	opts := DefaultOptions("benchdb")
	opts.FS = vfs.NewMem()
	db, err := Open(opts)
	if err != nil {
		b.Fatal(err)
	}
	defer db.Close()
	value := val(0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := db.Put(key(i%100_000), value); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDBGetUncached(b *testing.B) {
	db := benchDB(b, 50_000)
	rng := rand.New(rand.NewSource(1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok, err := db.Get(key(rng.Intn(50_000))); err != nil || !ok {
			b.Fatal("get failed")
		}
	}
	b.ReportMetric(float64(db.QueryBlockReads())/float64(b.N), "blockreads/op")
}

func BenchmarkDBGetBloomNegative(b *testing.B) {
	db := benchDB(b, 50_000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok, _ := db.Get([]byte(fmt.Sprintf("absent%012d", i))); ok {
			b.Fatal("phantom key")
		}
	}
}

func BenchmarkDBScan16(b *testing.B) {
	db := benchDB(b, 50_000)
	rng := rand.New(rand.NewSource(1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := db.Scan(key(rng.Intn(49_000)), 16); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDBBatchCommit(b *testing.B) {
	opts := DefaultOptions("benchdb")
	opts.FS = vfs.NewMem()
	db, err := Open(opts)
	if err != nil {
		b.Fatal(err)
	}
	defer db.Close()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		batch := NewBatch()
		for j := 0; j < 16; j++ {
			batch.Put(key((i*16+j)%100_000), val(j))
		}
		if err := db.Apply(batch); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDBIterate(b *testing.B) {
	db := benchDB(b, 20_000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		it, err := db.NewIter()
		if err != nil {
			b.Fatal(err)
		}
		n := 0
		for ok := it.First(); ok; ok = it.Next() {
			n++
		}
		it.Close()
		if n != 20_000 {
			b.Fatalf("iterated %d", n)
		}
	}
}
