package lsm

import (
	"fmt"
	"math/rand"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"adcache/internal/cache/blockcache"
	"adcache/internal/vfs"
)

func benchDB(b *testing.B, n int) *DB { return benchDBStrategy(b, n, nil) }

func benchDBStrategy(b *testing.B, n int, strategy CacheStrategy) *DB {
	b.Helper()
	opts := DefaultOptions("benchdb")
	opts.FS = vfs.NewMem()
	opts.Strategy = strategy
	db, err := Open(opts)
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { db.Close() })
	for i := 0; i < n; i++ {
		if err := db.Put(key(i), val(i)); err != nil {
			b.Fatal(err)
		}
	}
	if err := db.Flush(); err != nil {
		b.Fatal(err)
	}
	if err := db.Compact(); err != nil {
		b.Fatal(err)
	}
	return db
}

func BenchmarkDBPut(b *testing.B) {
	opts := DefaultOptions("benchdb")
	opts.FS = vfs.NewMem()
	db, err := Open(opts)
	if err != nil {
		b.Fatal(err)
	}
	defer db.Close()
	value := val(0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := db.Put(key(i%100_000), value); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDBGetUncached(b *testing.B) {
	db := benchDB(b, 50_000)
	rng := rand.New(rand.NewSource(1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok, err := db.Get(key(rng.Intn(50_000))); err != nil || !ok {
			b.Fatal("get failed")
		}
	}
	b.ReportMetric(float64(db.QueryBlockReads())/float64(b.N), "blockreads/op")
}

// BenchmarkDBGetCached measures the steady-state point lookup with every
// block in the block cache — the path the zero-allocation work targets.
func BenchmarkDBGetCached(b *testing.B) {
	db := benchDBStrategy(b, 50_000, &blockOnlyStrategy{cache: blockcache.New(64 << 20)})
	// One pass over the keyspace pulls every block into the cache.
	for i := 0; i < 50_000; i += 50 {
		if _, ok, err := db.Get(key(i)); err != nil || !ok {
			b.Fatal("warm-up get failed")
		}
	}
	rng := rand.New(rand.NewSource(1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok, err := db.Get(key(rng.Intn(50_000))); err != nil || !ok {
			b.Fatal("get failed")
		}
	}
	b.ReportMetric(float64(db.QueryBlockReads())/float64(b.N), "blockreads/op")
}

func BenchmarkDBGetBloomNegative(b *testing.B) {
	db := benchDB(b, 50_000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok, _ := db.Get([]byte(fmt.Sprintf("absent%012d", i))); ok {
			b.Fatal("phantom key")
		}
	}
}

func BenchmarkDBScan16(b *testing.B) {
	db := benchDB(b, 50_000)
	rng := rand.New(rand.NewSource(1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := db.Scan(key(rng.Intn(49_000)), 16); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDBBatchCommit(b *testing.B) {
	opts := DefaultOptions("benchdb")
	opts.FS = vfs.NewMem()
	db, err := Open(opts)
	if err != nil {
		b.Fatal(err)
	}
	defer db.Close()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		batch := NewBatch()
		for j := 0; j < 16; j++ {
			batch.Put(key((i*16+j)%100_000), val(j))
		}
		if err := db.Apply(batch); err != nil {
			b.Fatal(err)
		}
	}
}

// slowFS models SSTable write latency on top of the in-memory FS: closing
// an .sst file sleeps for the configured delay (one device write burst per
// table). WAL and manifest files stay fast, so the commit path is identical
// in both modes and only the flush/compaction overlap differs — the effect
// the background write path exists to exploit.
type slowFS struct {
	vfs.FS
	delay time.Duration
}

func (s slowFS) Create(name string) (vfs.File, error) {
	f, err := s.FS.Create(name)
	if err != nil || !strings.HasSuffix(name, ".sst") {
		return f, err
	}
	return slowFile{f, s.delay}, nil
}

type slowFile struct {
	vfs.File
	delay time.Duration
}

func (f slowFile) Close() error {
	time.Sleep(f.delay)
	return f.File.Close()
}

// benchParallelMixed drives a mixed Get/Put workload from at least four
// concurrent goroutines (b.SetParallelism(4) guarantees 4×GOMAXPROCS
// workers) against a pre-loaded store, comparing the background write path
// with the pre-refactor inline-flush behaviour (InlineCompaction).
func benchParallelMixed(b *testing.B, inline bool, writePct int) {
	b.Helper()
	const n = 50_000
	opts := DefaultOptions("benchdb")
	opts.FS = slowFS{vfs.NewMem(), 5 * time.Millisecond}
	opts.MemTableSize = 256 << 10 // flush often enough for I/O to matter
	opts.InlineCompaction = inline
	db, err := Open(opts)
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { db.Close() })
	for i := 0; i < n; i++ {
		if err := db.Put(key(i), val(i)); err != nil {
			b.Fatal(err)
		}
	}
	if err := db.Flush(); err != nil {
		b.Fatal(err)
	}
	if err := db.Compact(); err != nil {
		b.Fatal(err)
	}
	var seed atomic.Int64
	b.SetParallelism(4)
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		rng := rand.New(rand.NewSource(seed.Add(1)))
		for pb.Next() {
			k := rng.Intn(n)
			if rng.Intn(100) < writePct {
				if err := db.Put(key(k), val(k)); err != nil {
					b.Error(err)
					return
				}
			} else {
				if _, _, err := db.Get(key(k)); err != nil {
					b.Error(err)
					return
				}
			}
		}
	})
	b.StopTimer()
	b.ReportMetric(float64(db.Metrics().WriteGroups), "write-groups")
}

func BenchmarkParallelMixedBackground(b *testing.B) { benchParallelMixed(b, false, 25) }

func BenchmarkParallelMixedInline(b *testing.B) { benchParallelMixed(b, true, 25) }

func BenchmarkParallelPutBackground(b *testing.B) { benchParallelMixed(b, false, 100) }

func BenchmarkParallelPutInline(b *testing.B) { benchParallelMixed(b, true, 100) }

func BenchmarkParallelGet(b *testing.B) { benchParallelMixed(b, false, 0) }

func BenchmarkDBIterate(b *testing.B) {
	db := benchDB(b, 20_000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		it, err := db.NewIter()
		if err != nil {
			b.Fatal(err)
		}
		n := 0
		for ok := it.First(); ok; ok = it.Next() {
			n++
		}
		it.Close()
		if n != 20_000 {
			b.Fatalf("iterated %d", n)
		}
	}
}
