package lsm

import (
	"testing"

	"adcache/internal/sstable"
	"adcache/internal/vfs"
)

// TestPrefetchClosesIterators is the regression test for the prefetch
// iterator leak: every iterator prefetchOutputs creates must be closed, on
// the success path and when the budget cuts iteration short. A leaked
// iterator pins the reader's pooled block state past the prefetch.
func TestPrefetchClosesIterators(t *testing.T) {
	var done []*sstable.Iter
	prefetchIterDone = func(it *sstable.Iter) { done = append(done, it) }
	defer func() { prefetchIterDone = nil }()

	opts := subcompactOptions(vfs.NewMem(), 1)
	opts.PrefetchOnCompaction = 4
	strategy := &countingStrategy{}
	opts.Strategy = strategy
	db := mustOpen(t, opts)
	defer db.Close()

	applySubcompactWorkload(t, db)
	if err := db.Compact(); err != nil {
		t.Fatal(err)
	}
	if db.Metrics().Compactions == 0 {
		t.Fatal("workload did not trigger any compaction")
	}
	if len(done) == 0 {
		t.Fatal("prefetch ran no iterators despite PrefetchOnCompaction > 0")
	}
	for i, it := range done {
		if !it.Closed() {
			t.Fatalf("prefetch iterator %d of %d released without Close", i, len(done))
		}
	}
}

// TestPrefetchClosesIteratorOnError checks the close contract holds on the
// error path too: a read fault mid-prefetch surfaces the error AND releases
// the iterator.
func TestPrefetchClosesIteratorOnError(t *testing.T) {
	var done []*sstable.Iter
	prefetchIterDone = func(it *sstable.Iter) { done = append(done, it) }
	defer func() { prefetchIterDone = nil }()

	ffs := vfs.NewFault(vfs.NewMem())
	opts := subcompactOptions(ffs, 1)
	opts.PrefetchOnCompaction = 4
	opts.DisableAutoCompaction = true
	strategy := &countingStrategy{}
	opts.Strategy = strategy
	db := mustOpen(t, opts)
	defer db.Close()

	for i := 0; i < 500; i++ {
		if err := db.Put(key(i), val(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.Flush(); err != nil {
		t.Fatal(err)
	}
	db.mu.RLock()
	outputs := append(db.version.Levels[0][:0:0], db.version.Levels[0]...)
	for _, level := range db.version.Levels[1:] {
		outputs = append(outputs, level...)
	}
	db.mu.RUnlock()
	if len(outputs) == 0 {
		t.Fatal("flush produced no tables")
	}
	// Open every table reader before arming the fault, so the failure lands
	// on the prefetch's block reads rather than on the table open.
	for _, f := range outputs {
		if _, err := db.tc.get(f.FileNum); err != nil {
			t.Fatalf("warm-up open of %06d: %v", f.FileNum, err)
		}
	}

	ffs.SetFailReads(true)
	err := db.prefetchOutputs(outputs)
	ffs.SetFailReads(false)
	if err == nil {
		t.Fatal("prefetch succeeded despite injected read failure")
	}
	if len(done) == 0 {
		t.Fatal("failing prefetch released no iterator")
	}
	for _, it := range done {
		if !it.Closed() {
			t.Fatal("prefetch iterator leaked on the error path")
		}
	}
}
