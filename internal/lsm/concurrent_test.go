package lsm

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"

	"adcache/internal/vfs"
)

// TestConcurrentWritersReadersBackground hammers the background write path:
// several writer goroutines (keeping the flush worker busy sealing,
// flushing and compacting) race several readers and a scanner. Afterwards
// every key must hold the value of some writer — torn or lost writes fail.
func TestConcurrentWritersReadersBackground(t *testing.T) {
	db := mustOpen(t, testOptions(vfs.NewMem()))
	defer db.Close()

	const (
		writers = 4
		readers = 3
		keys    = 500
		rounds  = 400
	)
	for i := 0; i < keys; i++ {
		if err := db.Put(key(i), val(i)); err != nil {
			t.Fatal(err)
		}
	}

	var wg sync.WaitGroup
	errs := make(chan error, writers+readers+1)
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			for i := 0; i < rounds; i++ {
				k := rng.Intn(keys)
				if err := db.Put(key(k), val(k+1000*(w+1))); err != nil {
					errs <- fmt.Errorf("writer %d: %v", w, err)
					return
				}
			}
		}(w)
	}
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(100 + r)))
			for i := 0; i < rounds; i++ {
				k := rng.Intn(keys)
				v, ok, err := db.Get(key(k))
				if err != nil {
					errs <- fmt.Errorf("reader %d: %v", r, err)
					return
				}
				if !ok {
					errs <- fmt.Errorf("reader %d: key %d missing", r, k)
					return
				}
				if !bytes.HasPrefix(v, []byte("value")) {
					errs <- fmt.Errorf("reader %d: torn value %q", r, v)
					return
				}
			}
		}(r)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 40; i++ {
			kvs, err := db.Scan(key(0), 64)
			if err != nil {
				errs <- fmt.Errorf("scanner: %v", err)
				return
			}
			for j := 1; j < len(kvs); j++ {
				if bytes.Compare(kvs[j-1].Key, kvs[j].Key) >= 0 {
					errs <- fmt.Errorf("scanner: unsorted result at %d", j)
					return
				}
			}
		}
	}()
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	// Every key must resolve to one writer's (or the loader's) value.
	for i := 0; i < keys; i++ {
		v, ok, err := db.Get(key(i))
		if err != nil || !ok {
			t.Fatalf("post Get(%d): ok=%v err=%v", i, ok, err)
		}
		valid := bytes.Equal(v, val(i))
		for w := 0; w < writers && !valid; w++ {
			valid = bytes.Equal(v, val(i+1000*(w+1)))
		}
		if !valid {
			t.Fatalf("key %d holds foreign value %q", i, v)
		}
	}
	m := db.Metrics()
	if m.Flushes == 0 {
		t.Fatal("background worker never flushed")
	}
}

// TestGroupCommitBatchIsOneGroup pins the deterministic half of the group
// commit contract: one Apply is exactly one write group (one WAL append run,
// one memtable apply), regardless of batch size.
func TestGroupCommitBatchIsOneGroup(t *testing.T) {
	db := mustOpen(t, testOptions(vfs.NewMem()))
	defer db.Close()
	b := NewBatch()
	for i := 0; i < 100; i++ {
		b.Put(key(i), val(i))
	}
	if err := db.Apply(b); err != nil {
		t.Fatal(err)
	}
	if got := db.Metrics().WriteGroups; got != 1 {
		t.Fatalf("WriteGroups = %d after one batch, want 1", got)
	}
	if err := db.Put(key(200), val(200)); err != nil {
		t.Fatal(err)
	}
	if got := db.Metrics().WriteGroups; got != 2 {
		t.Fatalf("WriteGroups = %d after batch+put, want 2", got)
	}
}

// TestGroupCommitCoalescesConcurrentWriters checks that contending writers
// share groups: with G goroutines issuing W sequential puts each, the group
// count can only stay at G*W if no two commits ever overlapped. Coalescing
// is scheduler-dependent, so the test only requires that the accounting
// stays within its hard bounds and reports the observed ratio.
func TestGroupCommitCoalescesConcurrentWriters(t *testing.T) {
	db := mustOpen(t, testOptions(vfs.NewMem()))
	defer db.Close()
	const goroutines, perG = 8, 300
	var wg sync.WaitGroup
	var failures atomic.Int64
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				if err := db.Put(key(g*perG+i), val(i)); err != nil {
					failures.Add(1)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	if failures.Load() != 0 {
		t.Fatal("concurrent puts failed")
	}
	total := int64(goroutines * perG)
	groups := db.Metrics().WriteGroups
	if groups < 1 || groups > total {
		t.Fatalf("WriteGroups = %d, want within [1, %d]", groups, total)
	}
	t.Logf("group commit: %d ops in %d groups (%.2f ops/group)",
		total, groups, float64(total)/float64(groups))
	for g := 0; g < goroutines; g++ {
		for i := 0; i < perG; i += 37 {
			if _, ok, err := db.Get(key(g*perG + i)); err != nil || !ok {
				t.Fatalf("Get(%d,%d): ok=%v err=%v", g, i, ok, err)
			}
		}
	}
}

// TestCloseRacesInFlightWrites closes the DB while writers are mid-commit.
// Each write must either commit fully (nil error) or fail with ErrClosed —
// and every acknowledged write must survive reopening.
func TestCloseRacesInFlightWrites(t *testing.T) {
	fs := vfs.NewMem()
	db := mustOpen(t, testOptions(fs))

	const writers = 6
	acked := make([][]int, writers)
	var wg sync.WaitGroup
	errs := make(chan error, writers)
	start := make(chan struct{})
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			<-start
			for i := 0; ; i++ {
				err := db.Put(key(w*100000+i), val(i))
				if err == nil {
					acked[w] = append(acked[w], i)
					continue
				}
				if errors.Is(err, ErrClosed) {
					return
				}
				errs <- fmt.Errorf("writer %d: %v", w, err)
				return
			}
		}(w)
	}
	close(start)
	// Let the writers get going, then yank the DB out from under them.
	for db.Metrics().LastSeq < 50 {
		runtime.Gosched()
	}
	if err := db.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}

	db2 := mustOpen(t, testOptions(fs))
	defer db2.Close()
	for w := 0; w < writers; w++ {
		for _, i := range acked[w] {
			if _, ok, err := db2.Get(key(w*100000 + i)); err != nil || !ok {
				t.Fatalf("acknowledged write (%d,%d) lost: ok=%v err=%v", w, i, ok, err)
			}
		}
	}
}

// TestCloseRacesFlushAndCompact exercises Close against the foreground
// barriers and the background worker at once.
func TestCloseRacesFlushAndCompact(t *testing.T) {
	for round := 0; round < 5; round++ {
		db := mustOpen(t, testOptions(vfs.NewMem()))
		var wg sync.WaitGroup
		wg.Add(3)
		go func() {
			defer wg.Done()
			for i := 0; ; i++ {
				if err := db.Put(key(i), val(i)); errors.Is(err, ErrClosed) {
					return
				}
			}
		}()
		go func() {
			defer wg.Done()
			for {
				if err := db.Flush(); errors.Is(err, ErrClosed) {
					return
				}
			}
		}()
		go func() {
			defer wg.Done()
			for {
				if err := db.Compact(); errors.Is(err, ErrClosed) {
					return
				}
			}
		}()
		for db.Metrics().LastSeq < 100 {
			runtime.Gosched()
		}
		if err := db.Close(); err != nil {
			t.Fatalf("round %d Close: %v", round, err)
		}
		wg.Wait()
	}
}

// TestBackpressureBoundsState verifies the stall triggers really bound
// engine state under sustained write pressure: the immutable queue never
// exceeds its cap and L0 never exceeds the stop trigger, with writers far
// outpacing a deliberately loaded worker.
func TestBackpressureBoundsState(t *testing.T) {
	opts := testOptions(vfs.NewMem())
	opts.MemTableSize = 4 << 10 // seal constantly
	db := mustOpen(t, opts)
	defer db.Close()

	var wg, monWG sync.WaitGroup
	stop := make(chan struct{})
	var violated atomic.Int64
	monWG.Add(1)
	go func() {
		defer monWG.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			m := db.Metrics()
			if m.ImmMemTables > db.Options().MaxImmutableMemTables {
				violated.Add(1)
			}
			if m.L0Files > db.Options().L0StopTrigger {
				violated.Add(1)
			}
			runtime.Gosched()
		}
	}()
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 800; i++ {
				if err := db.Put(key(g*10000+i), bytes.Repeat([]byte{byte(g)}, 64)); err != nil {
					t.Errorf("put: %v", err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(stop)
	monWG.Wait()
	if violated.Load() != 0 {
		t.Fatalf("backpressure bounds violated %d times", violated.Load())
	}
	m := db.Metrics()
	if m.Flushes == 0 {
		t.Fatal("no background flushes under write pressure")
	}
}

// TestIteratorSurvivesBackgroundChurn walks iterators while background
// flushes and compactions continuously rewrite the tree underneath them.
// Snapshot pinning must keep every walk sorted and error-free.
func TestIteratorSurvivesBackgroundChurn(t *testing.T) {
	db := mustOpen(t, testOptions(vfs.NewMem()))
	defer db.Close()
	for i := 0; i < 1000; i++ {
		if err := db.Put(key(i), val(i)); err != nil {
			t.Fatal(err)
		}
	}
	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		rng := rand.New(rand.NewSource(7))
		for {
			select {
			case <-stop:
				return
			default:
			}
			k := rng.Intn(1000)
			if err := db.Put(key(k), val(k+5000)); err != nil {
				return
			}
		}
	}()
	for round := 0; round < 10; round++ {
		it, err := db.NewIter()
		if err != nil {
			t.Fatal(err)
		}
		var prev []byte
		n := 0
		for ok := it.First(); ok; ok = it.Next() {
			if prev != nil && bytes.Compare(prev, it.Key()) >= 0 {
				t.Fatalf("round %d: unsorted iterator", round)
			}
			prev = append(prev[:0], it.Key()...)
			n++
		}
		if err := it.Err(); err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		if n != 1000 {
			t.Fatalf("round %d: iterator saw %d keys, want 1000", round, n)
		}
		it.Close()
	}
	close(stop)
	wg.Wait()
}

// TestInlineCompactionMatchesSeedSemantics checks the deterministic mode:
// with InlineCompaction every flush and compaction happens synchronously on
// the writing goroutine, so the tree shape after a fixed op stream is a pure
// function of that stream (two identical runs agree exactly).
func TestInlineCompactionMatchesSeedSemantics(t *testing.T) {
	run := func() (Metrics, []KV) {
		opts := testOptions(vfs.NewMem())
		opts.InlineCompaction = true
		db := mustOpen(t, opts)
		defer db.Close()
		rng := rand.New(rand.NewSource(42))
		for i := 0; i < 5000; i++ {
			k := rng.Intn(1200)
			if err := db.Put(key(k), val(i)); err != nil {
				t.Fatal(err)
			}
		}
		kvs, err := db.Scan(key(0), 2000)
		if err != nil {
			t.Fatal(err)
		}
		return db.Metrics(), kvs
	}
	m1, kv1 := run()
	m2, kv2 := run()
	if m1.Flushes != m2.Flushes || m1.Compactions != m2.Compactions ||
		m1.WriteGroups != m2.WriteGroups || m1.TotalBytes != m2.TotalBytes {
		t.Fatalf("inline runs diverged: %+v vs %+v", m1, m2)
	}
	if m1.ImmMemTables != 0 {
		t.Fatalf("inline mode left %d immutable memtables queued", m1.ImmMemTables)
	}
	if len(kv1) != len(kv2) {
		t.Fatalf("scan lengths diverged: %d vs %d", len(kv1), len(kv2))
	}
	for i := range kv1 {
		if !bytes.Equal(kv1[i].Key, kv2[i].Key) || !bytes.Equal(kv1[i].Value, kv2[i].Value) {
			t.Fatalf("scan diverged at %d", i)
		}
	}
}

// TestRecoveryWithQueuedImmutables seals memtables without letting the
// worker flush them (white-box: seal directly, no worker notification),
// then closes and reopens: the manifest's WAL list must replay every sealed
// memtable plus the active log, in order.
func TestRecoveryWithQueuedImmutables(t *testing.T) {
	fs := vfs.NewMem()
	opts := testOptions(fs)
	opts.MemTableSize = 1 << 20    // never seals on its own
	opts.MaxImmutableMemTables = 4 // room for both hand-sealed memtables
	db := mustOpen(t, opts)
	seal := func() {
		db.commitMu.Lock()
		db.mu.Lock()
		if err := db.sealMemTableLocked(); err != nil {
			db.mu.Unlock()
			db.commitMu.Unlock()
			t.Fatal(err)
		}
		db.mu.Unlock()
		db.commitMu.Unlock()
	}
	for i := 0; i < 100; i++ {
		if err := db.Put(key(i), val(i)); err != nil {
			t.Fatal(err)
		}
	}
	seal()
	for i := 100; i < 200; i++ {
		if err := db.Put(key(i), val(i+1000)); err != nil {
			t.Fatal(err)
		}
	}
	seal()
	for i := 0; i < 100; i += 2 { // overwrite half of the first batch
		if err := db.Put(key(i), val(i+2000)); err != nil {
			t.Fatal(err)
		}
	}
	if got := db.Metrics().ImmMemTables; got != 2 {
		t.Fatalf("ImmMemTables = %d before close, want 2", got)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	db2 := mustOpen(t, opts)
	defer db2.Close()
	for i := 0; i < 200; i++ {
		want := val(i)
		switch {
		case i < 100 && i%2 == 0:
			want = val(i + 2000)
		case i >= 100:
			want = val(i + 1000)
		}
		v, ok, err := db2.Get(key(i))
		if err != nil || !ok {
			t.Fatalf("Get(%d) after reopen: ok=%v err=%v", i, ok, err)
		}
		if !bytes.Equal(v, want) {
			t.Fatalf("Get(%d) = %q, want %q", i, v, want)
		}
	}
}

// TestConcurrentBatchAppliesAtomic interleaves batches from multiple
// goroutines; every batch must be all-or-nothing even when the pipeline
// groups several batches into one commit.
func TestConcurrentBatchAppliesAtomic(t *testing.T) {
	db := mustOpen(t, testOptions(vfs.NewMem()))
	defer db.Close()
	const goroutines, batches = 4, 50
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < batches; i++ {
				b := NewBatch()
				base := (g*batches + i) * 10
				for j := 0; j < 10; j++ {
					b.Put(key(base+j), val(base))
				}
				if err := db.Apply(b); err != nil {
					t.Errorf("apply: %v", err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	for gb := 0; gb < goroutines*batches; gb++ {
		base := gb * 10
		for j := 0; j < 10; j++ {
			v, ok, err := db.Get(key(base + j))
			if err != nil || !ok {
				t.Fatalf("Get(%d): ok=%v err=%v", base+j, ok, err)
			}
			if !bytes.Equal(v, val(base)) {
				t.Fatalf("batch %d torn: key %d = %q", gb, base+j, v)
			}
		}
	}
}
