package lsm

import (
	"time"

	"adcache/internal/keys"
	"adcache/internal/memtable"
	"adcache/internal/wal"
)

// This file implements the write-group commit pipeline (RocksDB-style group
// commit) and the write-path backpressure that replaces inline compaction.
//
// Writers enqueue themselves on d.pending, then contend for commitMu. The
// winner becomes the group leader: it drains the whole queue, performs one
// WAL append run and one memtable apply for every queued operation, and
// wakes the followers with the shared result. A writer that finds its commit
// already completed by an earlier leader returns without doing any work —
// that coalescing is what turns N contending writers into one fsync.

// commitWaiter carries one writer's operations through a group commit.
type commitWaiter struct {
	ops  []batchOp
	err  error
	done chan struct{}
}

// commit batches ops into the next write group and blocks until the group
// that includes them commits (or fails as a unit).
func (d *DB) commit(ops []batchOp) error {
	if len(ops) == 0 {
		return nil
	}
	if d.closing.Load() {
		return ErrClosed
	}
	start := time.Now()
	defer d.metrics.commitNanos.ObserveSince(start)

	w := &commitWaiter{ops: ops, done: make(chan struct{})}
	d.pendMu.Lock()
	d.pending = append(d.pending, w)
	d.pendMu.Unlock()

	d.commitMu.Lock()
	// Everything up to acquiring commitMu is time spent waiting on other
	// groups (the group-commit queueing delay).
	d.metrics.commitWait.ObserveSince(start)
	select {
	case <-w.done:
		// An earlier leader already committed us as a follower.
		d.commitMu.Unlock()
		return w.err
	default:
	}
	// We are the leader: take everything queued so far as one group.
	d.pendMu.Lock()
	group := d.pending
	d.pending = nil
	d.pendMu.Unlock()

	err := d.commitGroup(group)
	for _, g := range group {
		g.err = err
		close(g.done)
	}
	d.commitMu.Unlock()
	return err
}

// commitGroup writes one group: backpressure, one WAL append run, one
// memtable apply, then a seal if the memtable filled up. The whole group
// shares a single outcome. Caller holds commitMu.
func (d *DB) commitGroup(group []*commitWaiter) error {
	if d.closing.Load() {
		return ErrClosed
	}
	if !d.opts.InlineCompaction {
		if err := d.waitForWriteRoom(); err != nil {
			return err
		}
	}

	total := 0
	for _, g := range group {
		total += len(g.ops)
	}
	d.metrics.writeGroupOps.Observe(int64(total))
	// Sequence numbers advance even if the WAL append fails part-way: some
	// records may have reached the log, and a later successful commit must
	// not reuse their sequence numbers.
	startSeq := d.seqAlloc + 1
	d.seqAlloc += uint64(total)

	// One append run for the whole group. All records land in the WAL
	// before any becomes visible, so a crash mid-group replays a prefix of
	// intact records and visibility below is all-or-nothing.
	seq := startSeq
	for _, g := range group {
		for _, op := range g.ops {
			rec := wal.Record{Seq: seq, Kind: op.kind, Key: op.key, Value: op.value}
			if err := d.log.Append(rec); err != nil {
				return err
			}
			seq++
		}
	}
	// One sync per group — the fsync the whole group-commit design exists
	// to amortise. Once it returns, every acknowledged write in the group
	// survives a crash (the durability contract the crash-point sweep
	// verifies). DisableWALSync trades that for throughput: a crash may
	// then lose the unsynced WAL tail.
	if !d.opts.DisableWALSync {
		if err := d.log.Sync(); err != nil {
			return err
		}
	}

	d.mu.Lock()
	if d.closed {
		d.mu.Unlock()
		return ErrClosed
	}
	if d.opts.InlineCompaction {
		// Count-only stall accounting, mirroring the pre-concurrency
		// engine: the stall manifests as inline compaction latency below.
		if n := len(d.version.Levels[0]); n >= d.opts.L0StopTrigger {
			d.stallStops++
		} else if n >= d.opts.L0CompactTrigger {
			d.stallSlowdowns++
		}
	}
	seq = startSeq
	for _, g := range group {
		for _, op := range g.ops {
			d.mem.Set(keys.Make(op.key, seq, op.kind), op.value)
			d.userBytes += int64(len(op.key) + len(op.value))
			// Write-through cache coherence happens inside the exclusive
			// section, as in the single-threaded engine: no reader can
			// observe the cache behind the tree.
			d.strategy.OnWrite(op.key, op.value, op.kind == keys.KindDelete)
			seq++
		}
	}
	d.lastSeq = startSeq + uint64(total) - 1
	d.writeGroups++

	var sealErr error
	// The flush threshold is dynamic when a unified-memory arbiter has set
	// a budget (SetMemTableBudget): active target = budget − immutable
	// bytes, floored. Checked only here — a budget shrink never truncates
	// the in-flight memtable, it just seals it at the next write group.
	full := d.mem.ApproximateSize() >= d.activeMemTargetLocked()
	if full {
		sealErr = d.sealMemTableLocked()
	}
	d.refreshWriteInfoLocked()
	d.mu.Unlock()
	if sealErr != nil {
		return sealErr
	}
	if !full {
		return nil
	}
	if d.opts.InlineCompaction {
		return d.drainAndCompact(!d.opts.DisableAutoCompaction)
	}
	d.notifyWorker()
	return nil
}

// waitForWriteRoom applies write backpressure in background mode. It blocks
// while the immutable-memtable queue is full or L0 has hit its stop trigger,
// and applies the paper's slowdown delay while L0 sits between the compact
// and stop triggers. Caller holds commitMu.
func (d *DB) waitForWriteRoom() error {
	start := time.Now()
	d.mu.Lock()
	stalled := false
	for {
		if d.closing.Load() || d.closed {
			d.mu.Unlock()
			return ErrClosed
		}
		if d.bgState == bgReadOnly {
			// Degraded mode: fail fast instead of stalling on backpressure
			// that background work will never relieve. Transient background
			// failures (bgRetrying) do NOT fail writes — the worker is
			// retrying, and if it cannot keep up the ordinary imm-queue/L0
			// backpressure below applies.
			err := d.readOnlyErrLocked()
			d.mu.Unlock()
			return err
		}
		immFull := len(d.imm) >= d.opts.MaxImmutableMemTables
		// With auto-compaction off nothing shrinks L0, so the stop trigger
		// would deadlock writers; the flush worker still drains the
		// immutable queue, so that bound continues to apply.
		l0Stop := !d.opts.DisableAutoCompaction &&
			len(d.version.Levels[0]) >= d.opts.L0StopTrigger
		if !immFull && !l0Stop {
			break
		}
		if !stalled {
			d.stallStops++
			stalled = true
		}
		// Make sure the worker knows there is pressure to relieve: a tall
		// L0 inherited from a reopen has no seal notification behind it.
		d.notifyWorker()
		d.bgCond.Wait()
	}
	slowdown := !d.opts.DisableAutoCompaction &&
		len(d.version.Levels[0]) >= d.opts.L0CompactTrigger
	if slowdown {
		d.stallSlowdowns++
	}
	d.mu.Unlock()
	if slowdown {
		time.Sleep(d.opts.L0SlowdownDelay)
	}
	if stalled || slowdown {
		d.metrics.stallNanos.ObserveSince(start)
	}
	return nil
}

// sealMemTableLocked moves the full memtable onto the immutable queue and
// starts a fresh memtable + WAL. The new WAL file is created before any
// state changes, so a creation failure leaves the DB fully intact. Caller
// holds commitMu and d.mu.
func (d *DB) sealMemTableLocked() error {
	if d.mem.Empty() {
		return nil
	}
	num := d.nextFileNum.Add(1) - 1
	f, err := d.fs.Create(walPath(d.opts.Dir, num))
	if err != nil {
		return err
	}
	d.imm = append(d.imm, &immTable{mem: d.mem, walNum: d.walNum, bytes: d.mem.ApproximateSize()})
	oldLog := d.log
	d.walNum = num
	d.log = wal.NewWriter(f)
	d.mem = memtable.New(d.nextMemSeedLocked())
	if err := oldLog.Close(); err != nil {
		return err
	}
	return d.saveManifestLocked()
}

// notifyWorker nudges the flush worker; the buffered channel coalesces
// bursts of notifications into one wake-up.
func (d *DB) notifyWorker() {
	select {
	case d.bgWork <- struct{}{}:
	default:
	}
}
