package lsm

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"adcache/internal/vfs"
)

// TestResumeUnderConcurrentWriters drives Resume while writer goroutines
// are hammering the DB: writers must fail fast with ErrReadOnly during
// degraded mode (never hang, never silently drop), concurrent Resume
// calls must be safe, and after recovery every acknowledged write — each
// key is written exactly once — must read back exactly once with its
// acked value. This is the /v1/health "degraded" lifecycle as the engine
// sees it: park, operator resume, service restored mid-traffic.
func TestResumeUnderConcurrentWriters(t *testing.T) {
	fault := vfs.NewFault(vfs.NewMem())
	opts := fastRetryOpts(fault)
	opts.BgMaxRetries = 2
	db := mustOpen(t, opts)
	defer db.Close()

	// Park the DB read-only: a persistent create fault exhausts the
	// background retry budget.
	fault.Target(".sst")
	fault.FailCreates(1000)
	fillMemTable(t, db, 0)
	waitForMetrics(t, db, "read-only escalation", func(m Metrics) bool {
		return m.BgState == "read-only"
	})

	const writers = 8
	var (
		wg           sync.WaitGroup
		mu           sync.Mutex
		acked        = make(map[string]string) // unique keys: written at most once each
		okWrites     atomic.Int64
		readOnlyErrs atomic.Int64
		unexpected   error // first non-ErrReadOnly failure, guarded by mu
		stop         = make(chan struct{})
	)
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				k := fmt.Sprintf("w%d-%06d", w, i)
				v := fmt.Sprintf("v%d-%06d", w, i)
				switch err := db.Put([]byte(k), []byte(v)); {
				case err == nil:
					mu.Lock()
					acked[k] = v
					mu.Unlock()
					okWrites.Add(1)
				case errors.Is(err, ErrReadOnly):
					readOnlyErrs.Add(1)
					time.Sleep(100 * time.Microsecond) // don't spin the scheduler flat
				default:
					mu.Lock()
					if unexpected == nil {
						unexpected = err
					}
					mu.Unlock()
					return
				}
			}
		}(w)
	}

	// Let the writers observe the parked state, then heal the device and
	// resume from several goroutines at once — operators and health-check
	// automation may both call it; racing Resumes must be safe.
	deadline := time.Now().Add(10 * time.Second)
	for readOnlyErrs.Load() < int64(writers) && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if readOnlyErrs.Load() == 0 {
		t.Fatal("no writer observed ErrReadOnly while parked")
	}
	fault.Reset()
	var resumeOK atomic.Int64
	var rwg sync.WaitGroup
	for i := 0; i < 3; i++ {
		rwg.Add(1)
		go func() {
			defer rwg.Done()
			if err := db.Resume(); err == nil {
				resumeOK.Add(1)
			}
		}()
	}
	rwg.Wait()
	if resumeOK.Load() == 0 {
		t.Fatal("no Resume call succeeded after the fault was cleared")
	}

	// Writers must make real progress post-resume before we stop them.
	base := okWrites.Load()
	for okWrites.Load() < base+2000 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	close(stop)
	wg.Wait()
	mu.Lock()
	failErr := unexpected
	mu.Unlock()
	if failErr != nil {
		t.Fatalf("writer got a non-ErrReadOnly failure: %v", failErr)
	}
	if got := okWrites.Load(); got < base+2000 {
		t.Fatalf("writers made no progress after Resume: %d acked post-resume", got-base)
	}

	m := waitForMetrics(t, db, "post-resume health", func(m Metrics) bool {
		return m.BgState == "healthy" && m.ImmMemTables == 0
	})
	if m.Resumes < 1 {
		t.Fatalf("Resumes = %d, want >= 1", m.Resumes)
	}
	t.Logf("acked=%d readonly-rejections=%d resumes=%d", okWrites.Load(), readOnlyErrs.Load(), m.Resumes)

	// Every acked write survived, exactly as acked — each key was written
	// once, so any mismatch is a lost or duplicated/corrupted ack.
	mu.Lock()
	defer mu.Unlock()
	for k, want := range acked {
		v, ok, err := db.Get([]byte(k))
		if err != nil || !ok || string(v) != want {
			t.Fatalf("acked key %s = %q ok=%v err=%v, want %q", k, v, ok, err, want)
		}
	}
	if _, err := db.VerifyIntegrity(); err != nil {
		t.Fatalf("integrity after resume under load: %v", err)
	}
}
