package lsm

import (
	"time"

	"adcache/internal/keys"
	"adcache/internal/manifest"
	"adcache/internal/memtable"
	"adcache/internal/sstable"
)

// flushWorker is the background flush/compaction goroutine (absent with
// Options.InlineCompaction). Each wake-up drains the immutable-memtable
// queue, compacting after every flush so L0 never accumulates past its
// trigger between flushes — the stall triggers then only fire when writers
// genuinely outpace this worker.
func (d *DB) flushWorker() {
	defer d.wg.Done()
	for {
		select {
		case <-d.quit:
			return
		case <-d.bgWork:
		}
		for {
			select {
			case <-d.quit:
				return
			default:
			}
			d.mu.RLock()
			hasImm := len(d.imm) > 0
			broken := d.bgErr != nil
			d.mu.RUnlock()
			if !hasImm || broken {
				break
			}
			d.compactMu.Lock()
			err := d.flushImm()
			if err == nil && !d.opts.DisableAutoCompaction {
				err = d.compactLoop()
			}
			d.compactMu.Unlock()
			if err != nil {
				// Record the failure and wake stalled writers so they
				// surface it instead of blocking forever. A later
				// successful foreground Flush clears it.
				d.mu.Lock()
				d.bgErr = err
				d.bgCond.Broadcast()
				d.mu.Unlock()
				break
			}
		}
	}
}

// drainAndCompact synchronously flushes every queued immutable memtable and
// (optionally) compacts until the tree satisfies its shape invariants. It is
// the foreground counterpart of the worker's inner loop, used by Flush,
// Compact and the inline-compaction write path.
func (d *DB) drainAndCompact(compact bool) error {
	d.compactMu.Lock()
	defer d.compactMu.Unlock()
	for {
		d.mu.RLock()
		n := len(d.imm)
		d.mu.RUnlock()
		if n == 0 {
			break
		}
		if err := d.flushImm(); err != nil {
			return err
		}
		// Compact between flushes, like the worker, so a queued backlog
		// can never push L0 past its stop trigger.
		if compact {
			if err := d.compactLoop(); err != nil {
				return err
			}
		}
	}
	if compact {
		return d.compactLoop()
	}
	return nil
}

// flushImm writes the oldest immutable memtable to a new L0 table, installs
// it, and retires the memtable's WAL. No-op when the queue is empty. Caller
// holds compactMu; d.mu is taken only around the version install, so reads
// and commits proceed during the SSTable write.
func (d *DB) flushImm() error {
	d.mu.RLock()
	var im *immTable
	if len(d.imm) > 0 {
		im = d.imm[0]
	}
	d.mu.RUnlock()
	if im == nil {
		return nil
	}
	start := time.Now()
	defer d.metrics.flushNanos.ObserveSince(start)

	meta, err := d.writeMemTable(im.mem)
	if err != nil {
		return err
	}

	d.mu.Lock()
	nv := d.version.Clone()
	// L0 is ordered newest-first.
	nv.Levels[0] = append([]*manifest.FileMeta{meta}, nv.Levels[0]...)
	d.installVersion(nv, nil)
	d.flushes++
	d.flushedBytes += int64(meta.Size)
	d.imm = d.imm[1:]
	saveErr := d.saveManifestLocked()
	d.bgCond.Broadcast()
	d.mu.Unlock()
	if saveErr != nil {
		return saveErr
	}

	// The manifest no longer lists this WAL; its contents live in the
	// flushed table. A crash before this Remove just replays it redundantly
	// (every record is shadowed by an identical one already on disk).
	if im.walNum != 0 && d.fs.Exists(walPath(d.opts.Dir, im.walNum)) {
		if err := d.fs.Remove(walPath(d.opts.Dir, im.walNum)); err != nil {
			return err
		}
	}
	return nil
}

// writeMemTable persists mem as an sstable and returns its metadata.
// Safe without d.mu: the file number comes from an atomic counter and the
// memtable is immutable.
func (d *DB) writeMemTable(mem *memtable.MemTable) (*manifest.FileMeta, error) {
	fileNum := d.nextFileNum.Add(1) - 1
	f, err := d.fs.Create(sstPath(d.opts.Dir, fileNum))
	if err != nil {
		return nil, err
	}
	w := sstable.NewWriter(f, sstable.WriterOptions{
		BlockSize:  d.opts.BlockSize,
		BitsPerKey: d.opts.BitsPerKey,
	})
	it := mem.NewIter()
	for ok := it.First(); ok; ok = it.Next() {
		if err := w.Add(it.Key(), it.Value()); err != nil {
			f.Close()
			return nil, err
		}
	}
	meta, err := w.Finish()
	if err != nil {
		f.Close()
		return nil, err
	}
	if err := f.Close(); err != nil {
		return nil, err
	}
	return &manifest.FileMeta{
		FileNum:    fileNum,
		Size:       meta.Size,
		NumEntries: meta.NumEntries,
		Smallest:   append(keys.InternalKey(nil), meta.Smallest...),
		Largest:    append(keys.InternalKey(nil), meta.Largest...),
	}, nil
}
