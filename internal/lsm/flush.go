package lsm

import (
	"time"

	"adcache/internal/keys"
	"adcache/internal/manifest"
	"adcache/internal/memtable"
	"adcache/internal/sstable"
)

// flushWorker is the background flush/compaction goroutine (absent with
// Options.InlineCompaction). Each wake-up drains the immutable-memtable
// queue, compacting after every flush so L0 never accumulates past its
// trigger between flushes — the stall triggers then only fire when writers
// genuinely outpace this worker. Failures feed the error handler: transient
// ones are retried here with capped exponential backoff, corruption parks
// the DB in read-only mode until Resume (see errhandler.go).
func (d *DB) flushWorker() {
	defer d.wg.Done()
	for {
		select {
		case <-d.quit:
			return
		case <-d.bgWork:
		}
		if !d.bgDrain() {
			return
		}
	}
}

// bgDrain runs the worker's inner loop: flush, compact, retry on transient
// failure, park on corruption. Returns false when the DB is closing.
func (d *DB) bgDrain() bool {
	for {
		select {
		case <-d.quit:
			return false
		default:
		}
		d.mu.RLock()
		hasImm := len(d.imm) > 0
		// L0 can exceed its triggers with an empty immutable queue — e.g.
		// reopening after a crash that left a tall L0. The worker must
		// compact in that state too, or writers stalled on the L0 stop
		// trigger would wait for a flush that never comes.
		needCompact := !d.opts.DisableAutoCompaction &&
			len(d.version.Levels[0]) >= d.opts.L0CompactTrigger
		parked := d.bgState == bgReadOnly
		d.mu.RUnlock()
		if parked || (!hasImm && !needCompact) {
			return true
		}
		d.compactMu.Lock()
		err := d.flushImm()
		if err == nil && !d.opts.DisableAutoCompaction {
			err = d.compactLoop()
		}
		d.compactMu.Unlock()
		if err == nil {
			d.clearBgError()
			continue
		}
		retry, delay := d.noteBgError(err)
		if !retry {
			// Read-only: the handler already woke stalled writers so they
			// fail fast. The worker idles until Resume re-notifies it.
			return true
		}
		select {
		case <-d.quit:
			return false
		case <-time.After(delay):
		}
	}
}

// drainAndCompact synchronously flushes every queued immutable memtable and
// (optionally) compacts until the tree satisfies its shape invariants. It is
// the foreground counterpart of the worker's inner loop, used by Flush,
// Compact and the inline-compaction write path.
func (d *DB) drainAndCompact(compact bool) error {
	d.compactMu.Lock()
	defer d.compactMu.Unlock()
	for {
		d.mu.RLock()
		n := len(d.imm)
		d.mu.RUnlock()
		if n == 0 {
			break
		}
		if err := d.flushImm(); err != nil {
			return err
		}
		// Compact between flushes, like the worker, so a queued backlog
		// can never push L0 past its stop trigger.
		if compact {
			if err := d.compactLoop(); err != nil {
				return err
			}
		}
	}
	if compact {
		return d.compactLoop()
	}
	return nil
}

// flushImm writes the oldest immutable memtable to a new L0 table, installs
// it, and retires the memtable's WAL. No-op when the queue is empty. Caller
// holds compactMu; d.mu is taken only around the version install, so reads
// and commits proceed during the SSTable write.
func (d *DB) flushImm() error {
	d.mu.RLock()
	var im *immTable
	if len(d.imm) > 0 {
		im = d.imm[0]
	}
	d.mu.RUnlock()
	if im == nil {
		return nil
	}
	start := time.Now()
	defer d.metrics.flushNanos.ObserveSince(start)

	meta, err := d.writeMemTable(im.mem)
	if err != nil {
		return err
	}

	d.mu.Lock()
	nv := d.version.Clone()
	// L0 is ordered newest-first.
	nv.Levels[0] = append([]*manifest.FileMeta{meta}, nv.Levels[0]...)
	d.installVersion(nv, nil)
	d.flushes++
	d.flushedBytes += int64(meta.Size)
	d.imm = d.imm[1:]
	d.refreshWriteInfoLocked()
	saveErr := d.saveManifestLocked()
	d.bgCond.Broadcast()
	d.mu.Unlock()
	if saveErr != nil {
		return saveErr
	}

	// The manifest no longer lists this WAL; its contents live in the
	// flushed table. A crash before this Remove just replays it redundantly
	// (every record is shadowed by an identical one already on disk) — and
	// for exactly that reason a FAILED remove is not a flush failure: the
	// flush is durably complete, the leftover log is harmless garbage that
	// the next Open's orphan sweep retries. Poisoning the background state
	// here would turn a cosmetic deletion hiccup into a write outage.
	if im.walNum != 0 && d.fs.Exists(walPath(d.opts.Dir, im.walNum)) {
		if err := d.fs.Remove(walPath(d.opts.Dir, im.walNum)); err != nil {
			d.logf("lsm: removing flushed wal %06d failed (will retry on reopen): %v", im.walNum, err)
			d.mu.Lock()
			d.walRemoveErrors++
			d.mu.Unlock()
		}
	}
	return nil
}

// writeMemTable persists mem as an sstable and returns its metadata.
// Safe without d.mu: the file number comes from an atomic counter and the
// memtable is immutable.
func (d *DB) writeMemTable(mem *memtable.MemTable) (*manifest.FileMeta, error) {
	fileNum := d.nextFileNum.Add(1) - 1
	f, err := d.fs.Create(sstPath(d.opts.Dir, fileNum))
	if err != nil {
		return nil, err
	}
	// Flush output pays the background I/O budget (no-op when unlimited).
	f = limitFile(f, d.ioLimit)
	w := sstable.NewWriter(f, sstable.WriterOptions{
		BlockSize:   d.opts.BlockSize,
		BitsPerKey:  d.opts.BitsPerKey,
		Compression: d.opts.Compression,
	})
	it := mem.NewIter()
	for ok := it.First(); ok; ok = it.Next() {
		if err := w.Add(it.Key(), it.Value()); err != nil {
			f.Close()
			return nil, err
		}
	}
	meta, err := w.Finish()
	if err != nil {
		f.Close()
		return nil, err
	}
	if err := f.Close(); err != nil {
		return nil, err
	}
	fm := &manifest.FileMeta{
		FileNum:    fileNum,
		Size:       meta.Size,
		NumEntries: meta.NumEntries,
		Smallest:   append(keys.InternalKey(nil), meta.Smallest...),
		Largest:    append(keys.InternalKey(nil), meta.Largest...),
	}
	// ParanoidChecks: re-read and verify the table before anything can
	// reference it; a bad write is deleted and retried instead of installed.
	if err := d.paranoidCheck(fm); err != nil {
		return nil, err
	}
	return fm, nil
}
