package lsm

import (
	"adcache/internal/keys"
	"adcache/internal/manifest"
	"adcache/internal/memtable"
	"adcache/internal/sstable"
)

// flushLocked writes the memtable to a new L0 table and rotates the WAL.
// Flush and any triggered compactions run inline on the writer's goroutine,
// which is how the L0 slowdown/stop triggers manifest as write stalls.
// Caller holds d.mu.
func (d *DB) flushLocked() error {
	if d.mem.Empty() {
		return nil
	}
	meta, fileNum, err := d.writeMemTable(d.mem)
	if err != nil {
		return err
	}
	nv := d.version.Clone()
	// L0 is ordered newest-first.
	nv.Levels[0] = append([]*manifest.FileMeta{meta}, nv.Levels[0]...)
	d.installVersion(nv, nil)
	d.flushes++
	d.flushedBytes += int64(meta.Size)
	d.mem = memtable.New(d.nextMemSeed())
	if err := d.rotateWAL(); err != nil {
		return err
	}
	_ = fileNum
	if !d.opts.DisableAutoCompaction {
		return d.maybeCompactLocked()
	}
	return nil
}

// writeMemTable persists mem as an sstable and returns its metadata.
func (d *DB) writeMemTable(mem *memtable.MemTable) (*manifest.FileMeta, uint64, error) {
	fileNum := d.nextFileNum
	d.nextFileNum++
	f, err := d.fs.Create(sstPath(d.opts.Dir, fileNum))
	if err != nil {
		return nil, 0, err
	}
	w := sstable.NewWriter(f, sstable.WriterOptions{
		BlockSize:  d.opts.BlockSize,
		BitsPerKey: d.opts.BitsPerKey,
	})
	it := mem.NewIter()
	for ok := it.First(); ok; ok = it.Next() {
		if err := w.Add(it.Key(), it.Value()); err != nil {
			f.Close()
			return nil, 0, err
		}
	}
	meta, err := w.Finish()
	if err != nil {
		f.Close()
		return nil, 0, err
	}
	if err := f.Close(); err != nil {
		return nil, 0, err
	}
	return &manifest.FileMeta{
		FileNum:    fileNum,
		Size:       meta.Size,
		NumEntries: meta.NumEntries,
		Smallest:   append(keys.InternalKey(nil), meta.Smallest...),
		Largest:    append(keys.InternalKey(nil), meta.Largest...),
	}, fileNum, nil
}
