package lsm

import (
	"sync"
	"sync/atomic"
	"time"

	"adcache/internal/vfs"
)

// ioLimiter is a token-bucket rate limiter for background (flush and
// compaction) writes, the RocksDB rate_limiter analogue. On a real disk
// unthrottled background work competes with foreground reads for device
// bandwidth; bounding it trades compaction latency for stable read tails.
//
// The bucket holds up to one second of budget so short bursts (a block plus
// its trailer) pass without sleeping, while sustained output converges on
// bytesPerSec. Stall time accumulates in stallNanos for /metrics.
type ioLimiter struct {
	bytesPerSec int64

	mu     sync.Mutex
	tokens float64   // may go negative: the overdraft is slept off
	last   time.Time // last refill

	stallNanos atomic.Int64
}

// newIOLimiter returns a limiter paced at bytesPerSec, or nil when
// bytesPerSec <= 0 (unlimited).
func newIOLimiter(bytesPerSec int64) *ioLimiter {
	if bytesPerSec <= 0 {
		return nil
	}
	return &ioLimiter{bytesPerSec: bytesPerSec, tokens: float64(bytesPerSec), last: time.Now()}
}

// wait charges n bytes against the bucket and sleeps off any overdraft.
// A nil limiter is a no-op, so call sites need no gating.
func (l *ioLimiter) wait(n int) {
	if l == nil || n <= 0 {
		return
	}
	l.mu.Lock()
	now := time.Now()
	l.tokens += now.Sub(l.last).Seconds() * float64(l.bytesPerSec)
	if max := float64(l.bytesPerSec); l.tokens > max {
		l.tokens = max
	}
	l.last = now
	l.tokens -= float64(n)
	var stall time.Duration
	if l.tokens < 0 {
		stall = time.Duration(-l.tokens / float64(l.bytesPerSec) * float64(time.Second))
	}
	l.mu.Unlock()
	if stall > 0 {
		l.stallNanos.Add(int64(stall))
		time.Sleep(stall)
	}
}

// StallNanos reports cumulative nanoseconds background writers spent
// throttled.
func (l *ioLimiter) StallNanos() int64 {
	if l == nil {
		return 0
	}
	return l.stallNanos.Load()
}

// limitFile wraps a background output file so every write pays the token
// bucket. Reads and metadata pass through untouched; foreground I/O never
// goes through this wrapper.
func limitFile(f vfs.File, l *ioLimiter) vfs.File {
	if l == nil {
		return f
	}
	return &limitedFile{File: f, l: l}
}

type limitedFile struct {
	vfs.File
	l *ioLimiter
}

func (f *limitedFile) Write(p []byte) (int, error) {
	f.l.wait(len(p))
	return f.File.Write(p)
}

func (f *limitedFile) WriteAt(p []byte, off int64) (int, error) {
	f.l.wait(len(p))
	return f.File.WriteAt(p, off)
}
