package lsm

import (
	"strings"
	"testing"

	"adcache/internal/metrics"
	"adcache/internal/vfs"
)

// TestMetricsEnginePopulated drives enough traffic to flush and asserts the
// engine's latency histograms and shape gauges carry real observations.
func TestMetricsEnginePopulated(t *testing.T) {
	reg := metrics.NewRegistry()
	opts := testOptions(vfs.NewMem())
	opts.MetricsRegistry = reg
	db := mustOpen(t, opts)
	defer db.Close()

	const n = 2000
	for i := 0; i < n; i++ {
		if err := db.Put(key(i), val(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.Flush(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 200; i++ {
		if _, ok, err := db.Get(key(i)); err != nil || !ok {
			t.Fatalf("Get(%s): ok=%v err=%v", key(i), ok, err)
		}
	}
	if _, err := db.Scan(key(0), 50); err != nil {
		t.Fatal(err)
	}

	hists := make(map[string]metrics.HistogramSnapshot)
	reg.EachHistogram(func(name string, s metrics.HistogramSnapshot) { hists[name] = s })
	if s := hists["lsm_get_nanos"]; s.Count != 200 {
		t.Errorf("lsm_get_nanos count = %d, want 200", s.Count)
	}
	if s := hists["lsm_scan_nanos"]; s.Count != 1 {
		t.Errorf("lsm_scan_nanos count = %d, want 1", s.Count)
	}
	if s := hists["lsm_commit_nanos"]; s.Count != n {
		t.Errorf("lsm_commit_nanos count = %d, want %d", s.Count, n)
	}
	if s := hists["lsm_flush_nanos"]; s.Count == 0 || s.Sum <= 0 {
		t.Errorf("lsm_flush_nanos = %+v, want observations", s)
	}
	if s := hists["lsm_write_group_ops"]; s.Count != n || s.Sum != n {
		t.Errorf("lsm_write_group_ops = %+v, want count=sum=%d", s, n)
	}

	snap := reg.Snapshot()
	m := db.Metrics()
	if got := snap["lsm_flushes_total"].(int64); got != m.Flushes {
		t.Errorf("lsm_flushes_total = %d, engine says %d", got, m.Flushes)
	}
	if got := snap["lsm_user_bytes_total"].(int64); got != m.UserBytes || got == 0 {
		t.Errorf("lsm_user_bytes_total = %d, engine says %d", got, m.UserBytes)
	}
	if got := snap[`lsm_level_files{level="0"}`]; got == nil {
		t.Error("per-level gauge lsm_level_files{level=\"0\"} missing")
	}

	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"# TYPE lsm_get_nanos summary",
		`lsm_get_nanos{quantile="0.99"}`,
		"lsm_get_nanos_count 200",
		"# TYPE lsm_flushes_total counter",
		`lsm_level_files{level="0"}`,
	} {
		if !strings.Contains(sb.String(), want) {
			t.Errorf("Prometheus output missing %q", want)
		}
	}
}

// TestMetricsSubcompactionSeries checks the parallel-compaction series: the
// shard counter and duration histogram, and the per-level write-amplification
// counters, which must reconcile with the engine's aggregate byte counters.
func TestMetricsSubcompactionSeries(t *testing.T) {
	reg := metrics.NewRegistry()
	opts := subcompactOptions(vfs.NewMem(), 2)
	opts.MetricsRegistry = reg
	db := mustOpen(t, opts)
	defer db.Close()

	applySubcompactWorkload(t, db)
	if err := db.Compact(); err != nil {
		t.Fatal(err)
	}

	snap := reg.Snapshot()
	m := db.Metrics()
	compactions := snap["lsm_compactions_total"].(int64)
	shards := snap["lsm_subcompactions_total"].(int64)
	if compactions == 0 {
		t.Fatal("workload did not trigger any compaction")
	}
	if shards <= compactions {
		t.Errorf("lsm_subcompactions_total = %d for %d compactions, want more (splits engaged)",
			shards, compactions)
	}

	hists := make(map[string]metrics.HistogramSnapshot)
	reg.EachHistogram(func(name string, s metrics.HistogramSnapshot) { hists[name] = s })
	if s := hists["lsm_subcompact_nanos"]; s.Count != shards || s.Sum <= 0 {
		t.Errorf("lsm_subcompact_nanos = %+v, want count=%d with positive sum", s, shards)
	}

	var inSum, outSum int64
	for l := 0; l < opts.NumLevels; l++ {
		inSum += snap[`lsm_compaction_input_bytes_total{level="`+string(rune('0'+l))+`"}`].(int64)
		outSum += snap[`lsm_compaction_output_bytes_total{level="`+string(rune('0'+l))+`"}`].(int64)
	}
	if inSum != m.CompactedBytes || inSum == 0 {
		t.Errorf("per-level input bytes sum to %d, aggregate says %d", inSum, m.CompactedBytes)
	}
	if outSum != m.CompactionOutBytes || outSum == 0 {
		t.Errorf("per-level output bytes sum to %d, aggregate says %d", outSum, m.CompactionOutBytes)
	}
	if got := append([]int64(nil), m.LevelCompactionInBytes...); int64sum(got) != inSum {
		t.Errorf("Metrics().LevelCompactionInBytes sums to %d, series say %d", int64sum(got), inSum)
	}
	if got := append([]int64(nil), m.LevelCompactionOutBytes...); int64sum(got) != outSum {
		t.Errorf("Metrics().LevelCompactionOutBytes sums to %d, series say %d", int64sum(got), outSum)
	}
}

func int64sum(xs []int64) int64 {
	var s int64
	for _, x := range xs {
		s += x
	}
	return s
}

// TestMetricsPrivateRegistry checks that a DB opened without a registry gets
// its own, and that two such DBs never share series (no global state).
func TestMetricsPrivateRegistry(t *testing.T) {
	db1 := mustOpen(t, testOptions(vfs.NewMem()))
	defer db1.Close()
	db2 := mustOpen(t, testOptions(vfs.NewMem()))
	defer db2.Close()
	if db1.MetricsRegistry() == db2.MetricsRegistry() {
		t.Fatal("independent DBs share a metrics registry")
	}
	if err := db1.Put(key(1), val(1)); err != nil {
		t.Fatal(err)
	}
	if _, _, err := db1.Get(key(1)); err != nil {
		t.Fatal(err)
	}
	var found bool
	db2.MetricsRegistry().EachHistogram(func(name string, s metrics.HistogramSnapshot) {
		if s.Count > 0 {
			found = true
		}
	})
	if found {
		t.Fatal("db1 traffic observed in db2's registry")
	}
}
