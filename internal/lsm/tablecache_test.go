package lsm

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"adcache/internal/keys"
	"adcache/internal/sstable"
	"adcache/internal/vfs"
)

// writeTestTable builds a minimal valid sstable for fileNum.
func writeTestTable(t *testing.T, fs vfs.FS, dir string, fileNum uint64) {
	t.Helper()
	f, err := fs.Create(sstPath(dir, fileNum))
	if err != nil {
		t.Fatal(err)
	}
	w := sstable.NewWriter(f, sstable.WriterOptions{})
	if err := w.Add(keys.Make([]byte("k"), 1, keys.KindSet), []byte("v")); err != nil {
		t.Fatal(err)
	}
	if _, err := w.Finish(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
}

// stallFS blocks Open of one path until released, counting those opens.
type stallFS struct {
	vfs.FS
	stall string
	gate  chan struct{}
	opens atomic.Int64
}

func (s *stallFS) Open(name string) (vfs.File, error) {
	if name == s.stall {
		s.opens.Add(1)
		<-s.gate
	}
	return s.FS.Open(name)
}

// TestTableCacheColdOpenDoesNotBlockWarmGets verifies that a cold table
// open stalled in the filesystem does not hold the cache lock: gets of
// already-open tables proceed while the open is in flight.
func TestTableCacheColdOpenDoesNotBlockWarmGets(t *testing.T) {
	mem := vfs.NewMem()
	const dir = "tctest"
	writeTestTable(t, mem, dir, 1)
	writeTestTable(t, mem, dir, 2)

	fs := &stallFS{FS: mem, stall: sstPath(dir, 2), gate: make(chan struct{})}
	tc := newTableCache(fs, dir, nil)

	if _, err := tc.get(1); err != nil {
		t.Fatal(err)
	}

	coldDone := make(chan error, 1)
	go func() {
		_, err := tc.get(2)
		coldDone <- err
	}()
	deadline := time.Now().Add(5 * time.Second)
	for fs.opens.Load() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("cold open never reached the filesystem")
		}
		time.Sleep(time.Millisecond)
	}

	warmDone := make(chan error, 1)
	go func() {
		_, err := tc.get(1)
		warmDone <- err
	}()
	select {
	case err := <-warmDone:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("get of an already-open table stalled behind a cold open")
	}

	close(fs.gate)
	if err := <-coldDone; err != nil {
		t.Fatal(err)
	}
}

// TestTableCacheSingleflight verifies that concurrent gets of the same
// cold file share one filesystem open and all receive the same reader.
func TestTableCacheSingleflight(t *testing.T) {
	mem := vfs.NewMem()
	const dir = "tctest"
	writeTestTable(t, mem, dir, 1)

	fs := &stallFS{FS: mem, stall: sstPath(dir, 1), gate: make(chan struct{})}
	tc := newTableCache(fs, dir, nil)

	const goroutines = 16
	readers := make([]*sstable.Reader, goroutines)
	errs := make([]error, goroutines)
	var wg sync.WaitGroup
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			readers[i], errs[i] = tc.get(1)
		}(i)
	}
	deadline := time.Now().Add(5 * time.Second)
	for fs.opens.Load() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("no open reached the filesystem")
		}
		time.Sleep(time.Millisecond)
	}
	// Give the remaining goroutines time to pile up on the entry, then
	// release the single in-flight open.
	time.Sleep(10 * time.Millisecond)
	close(fs.gate)
	wg.Wait()

	if n := fs.opens.Load(); n != 1 {
		t.Fatalf("%d filesystem opens for one file, want 1", n)
	}
	for i := 0; i < goroutines; i++ {
		if errs[i] != nil {
			t.Fatalf("goroutine %d: %v", i, errs[i])
		}
		if readers[i] != readers[0] {
			t.Fatalf("goroutine %d got a different reader", i)
		}
	}
}

// TestTableCacheRetryAfterError verifies that a failed open is not cached:
// once the file exists, a later get succeeds.
func TestTableCacheRetryAfterError(t *testing.T) {
	mem := vfs.NewMem()
	const dir = "tctest"
	tc := newTableCache(mem, dir, nil)

	if _, err := tc.get(7); err == nil {
		t.Fatal("get of missing file succeeded")
	}
	writeTestTable(t, mem, dir, 7)
	r, err := tc.get(7)
	if err != nil {
		t.Fatal(err)
	}
	if r == nil {
		t.Fatal("nil reader after successful retry")
	}
}
