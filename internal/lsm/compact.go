package lsm

import (
	"bytes"
	"errors"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"adcache/internal/compaction"
	"adcache/internal/keys"
	"adcache/internal/manifest"
	"adcache/internal/sstable"
)

// errCompactionAborted marks a subcompaction shard torn down because a
// sibling shard failed first; the sibling's error is the one reported.
var errCompactionAborted = errors.New("lsm: compaction aborted by sibling shard failure")

// compactLoop runs compactions until the tree satisfies its shape
// invariants. Caller holds compactMu — the only lock under which versions
// change — so the version read for each pick stays valid until its install.
func (d *DB) compactLoop() error {
	for {
		d.mu.RLock()
		v := d.version
		d.mu.RUnlock()
		plan := compaction.Pick(v, d.pickerConfig(), d.roundRobin)
		if plan == nil {
			return nil
		}
		if err := d.runCompaction(plan); err != nil {
			return err
		}
	}
}

// runCompaction merges plan's inputs into the output level, as one serial
// merge or as range-partitioned parallel subcompactions (see
// Options.CompactionParallelism). The merges and output writes run without
// d.mu — reads and write groups proceed concurrently — and only the version
// install takes the exclusive lock, so readers and the strategy callback
// observe one atomic compaction regardless of how many shards executed it.
// Input files cannot disappear mid-merge: they belong to the current
// version, version changes are serialised by compactMu (held here), and the
// version GC only deletes files referenced by no live version.
func (d *DB) runCompaction(plan *compaction.Plan) error {
	start := time.Now()
	defer d.metrics.compactNanos.ObserveSince(start)

	ranges := d.splitCompaction(plan)
	var outputs []*manifest.FileMeta
	var err error
	if len(ranges) == 1 {
		outputs, err = d.runSubcompaction(plan, ranges[0], nil)
	} else {
		outputs, err = d.runSubcompactionsParallel(plan, ranges)
	}
	if err != nil {
		return err
	}

	// Install the new version. Obsolete input files are deleted by the
	// version GC once no in-flight read pins them.
	d.mu.Lock()
	nv := d.version.Clone()
	removeFiles(nv, plan.InputLevel, plan.Inputs)
	removeFiles(nv, plan.OutputLevel, plan.Overlaps)
	nv.Levels[plan.OutputLevel] = append(nv.Levels[plan.OutputLevel], outputs...)
	sort.Slice(nv.Levels[plan.OutputLevel], func(i, j int) bool {
		lvl := nv.Levels[plan.OutputLevel]
		return keys.Compare(lvl[i].Smallest, lvl[j].Smallest) < 0
	})
	inputs := plan.Files()
	oldNums := make([]uint64, 0, len(inputs))
	for _, f := range inputs {
		oldNums = append(oldNums, f.FileNum)
		d.compactedBytes += int64(f.Size)
	}
	for _, f := range plan.Inputs {
		d.levelCompactIn[plan.InputLevel] += int64(f.Size)
	}
	for _, f := range plan.Overlaps {
		d.levelCompactIn[plan.OutputLevel] += int64(f.Size)
	}
	d.installVersion(nv, oldNums)
	d.compactions++
	d.subcompactions += int64(len(ranges))
	newNums := make([]uint64, 0, len(outputs))
	for _, f := range outputs {
		newNums = append(newNums, f.FileNum)
		d.compactionOut += int64(f.Size)
		d.levelCompactOut[plan.OutputLevel] += int64(f.Size)
	}
	d.refreshWriteInfoLocked()
	saveErr := d.saveManifestLocked()
	// L0 may have shrunk below the stop trigger: wake stalled writers.
	d.bgCond.Broadcast()
	d.mu.Unlock()
	if saveErr != nil {
		return saveErr
	}

	// Notify the strategy: this is the moment block-cache entries keyed by
	// the old files become dead weight. Outside d.mu — the callback only
	// touches its own (thread-safe) caches, and holding the exclusive lock
	// here would stall readers behind cache eviction.
	d.strategy.OnCompaction(oldNums, newNums)

	if d.opts.PrefetchOnCompaction > 0 && d.strategy.BlockCache() != nil {
		if err := d.prefetchOutputs(outputs); err != nil {
			return err
		}
	}
	return nil
}

// splitCompaction cuts plan's keyspace for parallel execution. Beyond the
// configured parallelism cap, shards are floored at one TargetFileSize of
// input each — a shard that cannot fill a single output file costs more in
// setup than its merge saves.
func (d *DB) splitCompaction(plan *compaction.Plan) []compaction.SubRange {
	k := d.opts.CompactionParallelism
	if k > 1 && d.opts.TargetFileSize > 0 {
		var total int64
		for _, f := range plan.Files() {
			total += int64(f.Size)
		}
		if byBytes := int(total / d.opts.TargetFileSize); byBytes < k {
			k = byBytes
		}
	}
	return compaction.Split(plan, k)
}

// runSubcompactionsParallel executes one merge per shard on a worker pool
// bounded by CompactionParallelism. The first shard failure wins: it flips
// the shared cancel flag, sibling shards abort at their next entry, and
// every shard (plus this function, for shards that had already completed)
// deletes its partial outputs — an aborted compaction leaves no orphan SST
// files. On success the per-shard output lists concatenate in shard order;
// ranges are ascending and disjoint, so the result is sorted and
// key-disjoint without a merge step.
func (d *DB) runSubcompactionsParallel(plan *compaction.Plan, ranges []compaction.SubRange) ([]*manifest.FileMeta, error) {
	var cancel atomic.Bool
	shardOut := make([][]*manifest.FileMeta, len(ranges))
	shardErr := make([]error, len(ranges))

	next := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < min(d.opts.CompactionParallelism, len(ranges)); w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for si := range next {
				if cancel.Load() {
					shardErr[si] = errCompactionAborted
					continue
				}
				shardOut[si], shardErr[si] = d.runSubcompaction(plan, ranges[si], &cancel)
				if shardErr[si] != nil {
					cancel.Store(true)
				}
			}
		}()
	}
	for si := range ranges {
		next <- si
	}
	close(next)
	wg.Wait()

	var firstErr error
	for _, err := range shardErr {
		if err != nil && err != errCompactionAborted {
			firstErr = err
			break
		}
	}
	if firstErr == nil {
		for _, err := range shardErr {
			firstErr = err
			if err != nil {
				break
			}
		}
	}
	if firstErr != nil {
		for _, outs := range shardOut {
			d.removeOutputs(outs)
		}
		return nil, firstErr
	}

	var outputs []*manifest.FileMeta
	for _, outs := range shardOut {
		outputs = append(outputs, outs...)
	}
	return outputs, nil
}

// runSubcompaction merges the plan's inputs restricted to sr and writes the
// shard's output tables. cancel, when non-nil, is polled between entries so
// a failing sibling tears this shard down promptly. With the zero SubRange
// and nil cancel this is exactly the serial compaction path.
func (d *DB) runSubcompaction(plan *compaction.Plan, sr compaction.SubRange, cancel *atomic.Bool) ([]*manifest.FileMeta, error) {
	start := time.Now()
	defer d.metrics.subcompactNanos.ObserveSince(start)

	inputs := plan.Files()
	iters := make([]internalIterator, 0, len(inputs))
	for _, f := range inputs {
		r, err := d.tc.get(f.FileNum)
		if err != nil {
			return nil, err
		}
		// Compaction reads bypass cache fill: RocksDB does not pollute the
		// block cache with compaction I/O, and neither do we. Reads are
		// still counted as file I/O by the vfs layer.
		it, err := r.NewIterNoCache()
		if err != nil {
			return nil, err
		}
		// Each shard reads only the blocks its range covers; the lower
		// bound is applied by the initial Seek in writeCompactionOutputs.
		it.SetUpperBound(sr.End)
		iters = append(iters, it)
	}

	merged := newMergingIter(iters...)
	return d.writeCompactionOutputs(merged, sr, plan.LastLevel, cancel)
}

// prefetchOutputs warms the block cache with the leading blocks of each
// compaction output (Leaper-style re-population). Reads go through the
// normal cached-read path so the cache applies its own admission.
func (d *DB) prefetchOutputs(outputs []*manifest.FileMeta) error {
	for _, f := range outputs {
		if err := d.prefetchFile(f); err != nil {
			return err
		}
	}
	return nil
}

// prefetchIterDone is a test hook observing every prefetch iterator as it
// is released, so the regression test for the close-on-every-path contract
// can see them. Nil outside tests.
var prefetchIterDone func(*sstable.Iter)

// prefetchFile reads up to PrefetchOnCompaction blocks of one output file
// through the cached path. The iterator is closed on every return path: a
// leaked iterator would pin the reader's parsed index and the pooled block
// state beyond the prefetch.
func (d *DB) prefetchFile(f *manifest.FileMeta) error {
	r, err := d.tc.get(f.FileNum)
	if err != nil {
		return err
	}
	var stats sstable.ReadStats
	it, err := r.NewIter(&stats)
	if err != nil {
		return err
	}
	defer func() {
		it.Close()
		if prefetchIterDone != nil {
			prefetchIterDone(it)
		}
	}()
	// One entry per block suffices to pull the block in; stepping a
	// whole block at a time needs only the iterator's block boundary,
	// so walk entries until the misses counter reaches the budget.
	for ok := it.First(); ok; ok = it.Next() {
		if stats.BlockMisses+stats.BlockHits >= int64(d.opts.PrefetchOnCompaction) {
			break
		}
	}
	return it.Err()
}

// writeCompactionOutputs streams the merged shard in [sr.Start, sr.End)
// into output tables, dropping shadowed versions and — when compacting into
// the deepest data level — tombstones. Runs without d.mu. On error (or
// cancellation) every file this call created is deleted before returning,
// so failed compactions never leave orphan SSTs.
func (d *DB) writeCompactionOutputs(merged *mergingIter, sr compaction.SubRange, lastLevel bool, cancel *atomic.Bool) (outputs []*manifest.FileMeta, err error) {
	var w *sstable.Writer
	var f interface {
		Close() error
	}
	var fileNum uint64
	var lastUser []byte

	defer func() {
		if err == nil {
			return
		}
		if f != nil {
			f.Close()
			outputs = append(outputs, &manifest.FileMeta{FileNum: fileNum})
		}
		d.removeOutputs(outputs)
		outputs = nil
	}()

	finish := func() error {
		if w == nil {
			return nil
		}
		meta, err := w.Finish()
		if err != nil {
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		w, f = nil, nil
		fm := &manifest.FileMeta{
			FileNum:    fileNum,
			Size:       meta.Size,
			NumEntries: meta.NumEntries,
			Smallest:   append(keys.InternalKey(nil), meta.Smallest...),
			Largest:    append(keys.InternalKey(nil), meta.Largest...),
		}
		// ParanoidChecks: verify the closed output before it can be
		// installed; a rejected table is deleted and the compaction retried.
		if err := d.paranoidCheck(fm); err != nil {
			return err
		}
		outputs = append(outputs, fm)
		return nil
	}

	// The shard's lower bound is a seek, not a filter: the search key sorts
	// before every version of sr.Start, so the merge starts exactly at the
	// shard's first internal key and reads nothing below it.
	var ok bool
	if sr.Start == nil {
		ok = merged.First()
	} else {
		ok = merged.Seek(keys.MakeSearch(sr.Start, keys.MaxSeq))
	}
	for ; ok; ok = merged.Next() {
		if cancel != nil && cancel.Load() {
			return outputs, errCompactionAborted
		}
		ik := merged.Key()
		uk := ik.UserKey()
		if sr.End != nil && bytes.Compare(uk, sr.End) >= 0 {
			// Defence in depth: the bounded child iterators already stop
			// below sr.End.
			break
		}
		if lastUser != nil && bytes.Equal(uk, lastUser) {
			// Shadowed older version.
			d.obsoleteEntries.Add(1)
			continue
		}
		lastUser = append(lastUser[:0], uk...)
		if lastLevel && ik.Kind() == keys.KindDelete {
			// Tombstone reaching the deepest data level: drop it.
			d.obsoleteEntries.Add(1)
			continue
		}
		if w == nil {
			fileNum = d.nextFileNum.Add(1) - 1
			file, err := d.fs.Create(sstPath(d.opts.Dir, fileNum))
			if err != nil {
				return outputs, err
			}
			// Compaction output pays the background I/O budget.
			file = limitFile(file, d.ioLimit)
			f = file
			w = sstable.NewWriter(file, sstable.WriterOptions{
				BlockSize:   d.opts.BlockSize,
				BitsPerKey:  d.opts.BitsPerKey,
				Compression: d.opts.Compression,
			})
		}
		if err := w.Add(ik, merged.Value()); err != nil {
			return outputs, err
		}
		if w.EstimatedSize() >= uint64(d.opts.TargetFileSize) {
			if err := finish(); err != nil {
				return outputs, err
			}
			// Keys cannot repeat across outputs; reset the dedup anchor is
			// unnecessary (lastUser continues across files by design).
		}
	}
	if err := merged.Err(); err != nil {
		return outputs, err
	}
	if err := finish(); err != nil {
		return outputs, err
	}
	return outputs, nil
}

// removeOutputs best-effort deletes compaction output files that were never
// installed in a version (failed or cancelled shards). The files are
// invisible to readers and the manifest, so deletion needs no locks.
func (d *DB) removeOutputs(outs []*manifest.FileMeta) {
	for _, f := range outs {
		path := sstPath(d.opts.Dir, f.FileNum)
		if d.fs.Exists(path) {
			d.fs.Remove(path)
		}
	}
}

// removeFiles deletes the given files from the version's level in place.
func removeFiles(v *manifest.Version, level int, files []*manifest.FileMeta) {
	if len(files) == 0 {
		return
	}
	dead := make(map[uint64]bool, len(files))
	for _, f := range files {
		dead[f.FileNum] = true
	}
	kept := v.Levels[level][:0:0]
	for _, f := range v.Levels[level] {
		if !dead[f.FileNum] {
			kept = append(kept, f)
		}
	}
	v.Levels[level] = kept
}
