package lsm

import (
	"bytes"
	"sort"
	"time"

	"adcache/internal/compaction"
	"adcache/internal/keys"
	"adcache/internal/manifest"
	"adcache/internal/sstable"
)

// compactLoop runs compactions until the tree satisfies its shape
// invariants. Caller holds compactMu — the only lock under which versions
// change — so the version read for each pick stays valid until its install.
func (d *DB) compactLoop() error {
	for {
		d.mu.RLock()
		v := d.version
		d.mu.RUnlock()
		plan := compaction.Pick(v, d.pickerConfig(), d.roundRobin)
		if plan == nil {
			return nil
		}
		if err := d.runCompaction(plan); err != nil {
			return err
		}
	}
}

// runCompaction merges plan's inputs into the output level. The merge and
// the output writes run without d.mu — reads and write groups proceed
// concurrently — and only the version install takes the exclusive lock.
// Input files cannot disappear mid-merge: they belong to the current
// version, version changes are serialised by compactMu (held here), and the
// version GC only deletes files referenced by no live version.
func (d *DB) runCompaction(plan *compaction.Plan) error {
	start := time.Now()
	defer d.metrics.compactNanos.ObserveSince(start)
	inputs := plan.Files()
	iters := make([]internalIterator, 0, len(inputs))
	for _, f := range inputs {
		r, err := d.tc.get(f.FileNum)
		if err != nil {
			return err
		}
		// Compaction reads bypass cache fill: RocksDB does not pollute the
		// block cache with compaction I/O, and neither do we. Reads are
		// still counted as file I/O by the vfs layer.
		it, err := r.NewIterNoCache()
		if err != nil {
			return err
		}
		iters = append(iters, it)
	}

	merged := newMergingIter(iters...)
	outputs, err := d.writeCompactionOutputs(merged, plan.LastLevel)
	if err != nil {
		return err
	}

	// Install the new version. Obsolete input files are deleted by the
	// version GC once no in-flight read pins them.
	d.mu.Lock()
	nv := d.version.Clone()
	removeFiles(nv, plan.InputLevel, plan.Inputs)
	removeFiles(nv, plan.OutputLevel, plan.Overlaps)
	nv.Levels[plan.OutputLevel] = append(nv.Levels[plan.OutputLevel], outputs...)
	sort.Slice(nv.Levels[plan.OutputLevel], func(i, j int) bool {
		lvl := nv.Levels[plan.OutputLevel]
		return keys.Compare(lvl[i].Smallest, lvl[j].Smallest) < 0
	})
	oldNums := make([]uint64, 0, len(inputs))
	for _, f := range inputs {
		oldNums = append(oldNums, f.FileNum)
		d.compactedBytes += int64(f.Size)
	}
	d.installVersion(nv, oldNums)
	d.compactions++
	newNums := make([]uint64, 0, len(outputs))
	for _, f := range outputs {
		newNums = append(newNums, f.FileNum)
		d.compactionOut += int64(f.Size)
	}
	saveErr := d.saveManifestLocked()
	// L0 may have shrunk below the stop trigger: wake stalled writers.
	d.bgCond.Broadcast()
	d.mu.Unlock()
	if saveErr != nil {
		return saveErr
	}

	// Notify the strategy: this is the moment block-cache entries keyed by
	// the old files become dead weight. Outside d.mu — the callback only
	// touches its own (thread-safe) caches, and holding the exclusive lock
	// here would stall readers behind cache eviction.
	d.strategy.OnCompaction(oldNums, newNums)

	if d.opts.PrefetchOnCompaction > 0 && d.strategy.BlockCache() != nil {
		if err := d.prefetchOutputs(outputs); err != nil {
			return err
		}
	}
	return nil
}

// prefetchOutputs warms the block cache with the leading blocks of each
// compaction output (Leaper-style re-population). Reads go through the
// normal cached-read path so the cache applies its own admission.
func (d *DB) prefetchOutputs(outputs []*manifest.FileMeta) error {
	for _, f := range outputs {
		r, err := d.tc.get(f.FileNum)
		if err != nil {
			return err
		}
		var stats sstable.ReadStats
		it, err := r.NewIter(&stats)
		if err != nil {
			return err
		}
		// One entry per block suffices to pull the block in; stepping a
		// whole block at a time needs only the iterator's block boundary,
		// so walk entries until the misses counter reaches the budget.
		for ok := it.First(); ok; ok = it.Next() {
			if stats.BlockMisses+stats.BlockHits >= int64(d.opts.PrefetchOnCompaction) {
				break
			}
		}
		if err := it.Err(); err != nil {
			return err
		}
	}
	return nil
}

// writeCompactionOutputs streams merged into output tables, dropping
// shadowed versions and — when compacting into the deepest data level —
// tombstones. Runs without d.mu.
func (d *DB) writeCompactionOutputs(merged *mergingIter, lastLevel bool) ([]*manifest.FileMeta, error) {
	var outputs []*manifest.FileMeta
	var w *sstable.Writer
	var f interface {
		Close() error
	}
	var fileNum uint64
	var lastUser []byte

	finish := func() error {
		if w == nil {
			return nil
		}
		meta, err := w.Finish()
		if err != nil {
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		outputs = append(outputs, &manifest.FileMeta{
			FileNum:    fileNum,
			Size:       meta.Size,
			NumEntries: meta.NumEntries,
			Smallest:   append(keys.InternalKey(nil), meta.Smallest...),
			Largest:    append(keys.InternalKey(nil), meta.Largest...),
		})
		w, f = nil, nil
		return nil
	}

	for ok := merged.First(); ok; ok = merged.Next() {
		ik := merged.Key()
		uk := ik.UserKey()
		if lastUser != nil && bytes.Equal(uk, lastUser) {
			// Shadowed older version.
			d.obsoleteEntries.Add(1)
			continue
		}
		lastUser = append(lastUser[:0], uk...)
		if lastLevel && ik.Kind() == keys.KindDelete {
			// Tombstone reaching the deepest data level: drop it.
			d.obsoleteEntries.Add(1)
			continue
		}
		if w == nil {
			fileNum = d.nextFileNum.Add(1) - 1
			file, err := d.fs.Create(sstPath(d.opts.Dir, fileNum))
			if err != nil {
				return nil, err
			}
			f = file
			w = sstable.NewWriter(file, sstable.WriterOptions{
				BlockSize:  d.opts.BlockSize,
				BitsPerKey: d.opts.BitsPerKey,
			})
		}
		if err := w.Add(ik, merged.Value()); err != nil {
			return nil, err
		}
		if w.EstimatedSize() >= uint64(d.opts.TargetFileSize) {
			if err := finish(); err != nil {
				return nil, err
			}
			// Keys cannot repeat across outputs; reset the dedup anchor is
			// unnecessary (lastUser continues across files by design).
		}
	}
	if err := merged.Err(); err != nil {
		return nil, err
	}
	if err := finish(); err != nil {
		return nil, err
	}
	return outputs, nil
}

// removeFiles deletes the given files from the version's level in place.
func removeFiles(v *manifest.Version, level int, files []*manifest.FileMeta) {
	if len(files) == 0 {
		return
	}
	dead := make(map[uint64]bool, len(files))
	for _, f := range files {
		dead[f.FileNum] = true
	}
	kept := v.Levels[level][:0:0]
	for _, f := range v.Levels[level] {
		if !dead[f.FileNum] {
			kept = append(kept, f)
		}
	}
	v.Levels[level] = kept
}
