package lsm

import (
	"bytes"
	"fmt"

	"adcache/internal/keys"
)

// IntegrityReport summarises a VerifyIntegrity pass.
type IntegrityReport struct {
	Files         int
	Entries       uint64
	BlocksChecked int64
}

// VerifyIntegrity reads every table in the current version, validating
// block checksums (every block read re-verifies its CRC), per-file key
// ordering, agreement with the manifest's bounds and entry counts, and the
// level invariants (L1+ files sorted and non-overlapping). It is the
// engine's fsck, exposed through `lsmtool check`.
func (d *DB) VerifyIntegrity() (IntegrityReport, error) {
	d.mu.RLock()
	h := d.acquireVersion()
	d.mu.RUnlock()
	defer d.releaseVersion(h)

	var rep IntegrityReport
	for level, files := range h.v.Levels {
		var prevLargest []byte
		for i, f := range files {
			// Level invariants (L1+ only; L0 may overlap).
			if level > 0 {
				if i > 0 && bytes.Compare(f.Smallest.UserKey(), prevLargest) <= 0 {
					return rep, fmt.Errorf("level %d: file %06d overlaps predecessor (%q <= %q)",
						level, f.FileNum, f.Smallest.UserKey(), prevLargest)
				}
				prevLargest = f.Largest.UserKey()
			}

			r, err := d.tc.get(f.FileNum)
			if err != nil {
				return rep, fmt.Errorf("level %d file %06d: %w", level, f.FileNum, err)
			}
			it, err := r.NewIterNoCache()
			if err != nil {
				return rep, err
			}
			var prev keys.InternalKey
			var count uint64
			for ok := it.First(); ok; ok = it.Next() {
				ik := it.Key()
				if prev != nil && keys.Compare(prev, ik) >= 0 {
					return rep, fmt.Errorf("file %06d: keys out of order (%s >= %s)",
						f.FileNum, prev, ik)
				}
				prev = append(prev[:0], ik...)
				count++
			}
			if err := it.Err(); err != nil {
				return rep, fmt.Errorf("file %06d: %w", f.FileNum, err)
			}
			if count != f.NumEntries {
				return rep, fmt.Errorf("file %06d: %d entries, manifest says %d",
					f.FileNum, count, f.NumEntries)
			}
			if count > 0 {
				if keys.Compare(prev, f.Largest) != 0 {
					return rep, fmt.Errorf("file %06d: largest key %s != manifest %s",
						f.FileNum, prev, f.Largest)
				}
			}
			rep.Files++
			rep.Entries += count
			rep.BlocksChecked += int64(r.Size()) / int64(d.opts.BlockSize)
		}
	}
	return rep, nil
}
