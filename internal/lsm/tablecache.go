package lsm

import (
	"sync"

	"adcache/internal/sstable"
	"adcache/internal/vfs"
)

// tableCache keeps sstable readers open for the DB's lifetime, evicting them
// when their files are deleted by compaction. Index and filter blocks stay
// pinned with the reader, matching RocksDB's default behaviour.
//
// Opens are per-file singleflight: the global lock is only held to look up
// or install a table entry, never across the file open and index/filter
// reads, so one cold table open cannot stall concurrent readers of
// already-open tables. Concurrent openers of the same file share one open.
type tableCache struct {
	fs    vfs.FS
	dir   string
	cache sstable.BlockCache // shared by all readers; may be nil

	mu     sync.RWMutex
	tables map[uint64]*tableEntry
}

// tableEntry is the per-file singleflight slot: the first goroutine through
// once performs the open while later arrivals block only on this entry.
type tableEntry struct {
	once sync.Once
	r    *sstable.Reader
	err  error
}

func newTableCache(fs vfs.FS, dir string, cache sstable.BlockCache) *tableCache {
	return &tableCache{fs: fs, dir: dir, cache: cache, tables: make(map[uint64]*tableEntry)}
}

// get returns the reader for fileNum, opening it on first use.
func (tc *tableCache) get(fileNum uint64) (*sstable.Reader, error) {
	tc.mu.RLock()
	e := tc.tables[fileNum]
	tc.mu.RUnlock()
	if e == nil {
		tc.mu.Lock()
		if e = tc.tables[fileNum]; e == nil {
			e = &tableEntry{}
			tc.tables[fileNum] = e
		}
		tc.mu.Unlock()
	}
	e.once.Do(func() { e.r, e.err = tc.open(fileNum) })
	if e.err != nil {
		// Drop the failed entry (unless already replaced or evicted) so a
		// later lookup can retry instead of caching the failure forever.
		tc.mu.Lock()
		if tc.tables[fileNum] == e {
			delete(tc.tables, fileNum)
		}
		tc.mu.Unlock()
		return nil, e.err
	}
	return e.r, nil
}

// open performs the actual file open and reader construction. It runs
// without tc.mu held.
func (tc *tableCache) open(fileNum uint64) (*sstable.Reader, error) {
	f, err := tc.fs.Open(sstPath(tc.dir, fileNum))
	if err != nil {
		return nil, err
	}
	return sstable.NewReader(f, sstable.ReaderOptions{Cache: tc.cache, FileNum: fileNum})
}

// evict drops the reader for a deleted file.
func (tc *tableCache) evict(fileNum uint64) {
	tc.mu.Lock()
	defer tc.mu.Unlock()
	delete(tc.tables, fileNum)
}
