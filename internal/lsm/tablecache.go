package lsm

import (
	"sync"

	"adcache/internal/sstable"
	"adcache/internal/vfs"
)

// tableCache keeps sstable readers open for the DB's lifetime, evicting them
// when their files are deleted by compaction. Index and filter blocks stay
// pinned with the reader, matching RocksDB's default behaviour.
type tableCache struct {
	fs    vfs.FS
	dir   string
	cache sstable.BlockCache // shared by all readers; may be nil

	mu      sync.RWMutex
	readers map[uint64]*sstable.Reader
}

func newTableCache(fs vfs.FS, dir string, cache sstable.BlockCache) *tableCache {
	return &tableCache{fs: fs, dir: dir, cache: cache, readers: make(map[uint64]*sstable.Reader)}
}

// get returns the reader for fileNum, opening it on first use.
func (tc *tableCache) get(fileNum uint64) (*sstable.Reader, error) {
	tc.mu.RLock()
	r, ok := tc.readers[fileNum]
	tc.mu.RUnlock()
	if ok {
		return r, nil
	}
	tc.mu.Lock()
	defer tc.mu.Unlock()
	if r, ok := tc.readers[fileNum]; ok {
		return r, nil
	}
	f, err := tc.fs.Open(sstPath(tc.dir, fileNum))
	if err != nil {
		return nil, err
	}
	r, err = sstable.NewReader(f, sstable.ReaderOptions{Cache: tc.cache, FileNum: fileNum})
	if err != nil {
		return nil, err
	}
	tc.readers[fileNum] = r
	return r, nil
}

// evict drops the reader for a deleted file.
func (tc *tableCache) evict(fileNum uint64) {
	tc.mu.Lock()
	defer tc.mu.Unlock()
	delete(tc.readers, fileNum)
}
