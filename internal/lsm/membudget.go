package lsm

// Unified memory arbitration, engine side. A cache strategy that also
// arbitrates write-side memory (core.Config.MemtableArbitration) calls
// SetMemTableBudget with its decoded allocation; the commit path sizes the
// active memtable's flush threshold from that budget minus the bytes
// already pinned by the immutable queue. Shrinks are applied lazily: an
// in-flight memtable is never truncated — it simply seals at the next
// write group that observes the smaller target, so a shrink takes effect
// at the next rotation. Backpressure is untouched: the immutable-queue cap
// and L0 triggers in waitForWriteRoom keep operating on counts and files,
// so a moving budget can delay or hasten seals but never bypass stalls.

// WriteSideInfo is a lock-free snapshot of the engine's write-side state,
// refreshed whenever the underlying counters change under d.mu. Cache
// strategies read it from inside engine callbacks (where taking d.mu would
// deadlock) to build RL state features and write-efficiency rewards.
type WriteSideInfo struct {
	// MemBytes is the active memtable's approximate physical size.
	MemBytes int64
	// MemTarget is the flush threshold currently in force for the active
	// memtable (dynamic budget minus immutable bytes when a budget is set,
	// floored at MinMemTableSize; otherwise the static MemTableSize).
	MemTarget int64
	// ImmCount / ImmBytes describe the sealed-memtable queue.
	ImmCount int
	ImmBytes int64
	// MaxImm is Options.MaxImmutableMemTables (the backpressure cap).
	MaxImm int
	// Cumulative counters, for windowed deltas.
	Flushes        int64
	StallSlowdowns int64
	StallStops     int64
	FlushedBytes   int64
	CompactedBytes int64
	// CompactionOutBytes is cumulative compaction output; FlushedBytes +
	// CompactionOutBytes per UserBytes is the engine's write amplification.
	CompactionOutBytes int64
	UserBytes          int64
}

// WriteSideInfo returns the latest write-side snapshot without locking.
func (d *DB) WriteSideInfo() WriteSideInfo {
	v, _ := d.writeInfo.Load().(WriteSideInfo)
	return v
}

// SetMemTableBudget sets the byte budget shared by the active and
// immutable memtables; <= 0 restores the static Options.MemTableSize
// threshold. Safe to call from any goroutine, including cache-strategy
// callbacks running under the engine's locks: the budget is an atomic the
// commit path reads at each write group. A shrink never truncates the
// in-flight memtable — it takes effect at the next rotation.
func (d *DB) SetMemTableBudget(budget int64) {
	if budget < 0 {
		budget = 0
	}
	d.memBudget.Store(budget)
}

// MemTableBudget returns the current dynamic budget (0 = static sizing).
func (d *DB) MemTableBudget() int64 { return d.memBudget.Load() }

// activeMemTargetLocked computes the active memtable's flush threshold:
// the dynamic budget minus bytes pinned by sealed-but-unflushed memtables,
// floored at MinMemTableSize so a tiny or transiently oversubscribed
// budget degrades to small flushes rather than a zero-size livelock.
// Caller holds d.mu.
func (d *DB) activeMemTargetLocked() int64 {
	budget := d.memBudget.Load()
	if budget <= 0 {
		return d.opts.MemTableSize
	}
	target := budget - d.immBytesLocked()
	if target < d.opts.MinMemTableSize {
		target = d.opts.MinMemTableSize
	}
	return target
}

// immBytesLocked sums the sealed queue's cached sizes. Caller holds d.mu.
func (d *DB) immBytesLocked() int64 {
	var total int64
	for _, im := range d.imm {
		total += im.bytes
	}
	return total
}

// refreshWriteInfoLocked republishes the lock-free write-side snapshot.
// Caller holds d.mu exclusively (every call site mutates a counter the
// snapshot carries).
func (d *DB) refreshWriteInfoLocked() {
	d.writeInfo.Store(WriteSideInfo{
		MemBytes:           d.mem.ApproximateSize(),
		MemTarget:          d.activeMemTargetLocked(),
		ImmCount:           len(d.imm),
		ImmBytes:           d.immBytesLocked(),
		MaxImm:             d.opts.MaxImmutableMemTables,
		Flushes:            d.flushes,
		StallSlowdowns:     d.stallSlowdowns,
		StallStops:         d.stallStops,
		FlushedBytes:       d.flushedBytes,
		CompactedBytes:     d.compactedBytes,
		CompactionOutBytes: d.compactionOut,
		UserBytes:          d.userBytes,
	})
}
