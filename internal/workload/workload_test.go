package workload

import (
	"math"
	"testing"
)

func TestZipfianSkewConcentratesMass(t *testing.T) {
	lowSkew := NewZipfian(10_000, 0.5)
	highSkew := NewZipfian(10_000, 0.99)
	countTop := func(z *Zipfian) int {
		gen := NewGenerator(Config{NumKeys: 10_000, Seed: 3})
		top := 0
		for i := 0; i < 20_000; i++ {
			if z.Next(gen.rng.Float64()) < 100 {
				top++
			}
		}
		return top
	}
	low, high := countTop(lowSkew), countTop(highSkew)
	if high <= low {
		t.Fatalf("higher skew should concentrate on hot ranks: low=%d high=%d", low, high)
	}
}

func TestZipfianRange(t *testing.T) {
	z := NewZipfian(100, 0.9)
	gen := NewGenerator(Config{NumKeys: 100, Seed: 5})
	for i := 0; i < 10_000; i++ {
		r := z.Next(gen.rng.Float64())
		if r >= 100 {
			t.Fatalf("rank %d out of range", r)
		}
	}
}

func TestZipfianHighTheta(t *testing.T) {
	// theta >= 1 uses the exact CDF table; Figure 9 sweeps up to 1.2.
	z := NewZipfian(1000, 1.2)
	gen := NewGenerator(Config{NumKeys: 1000, Seed: 9})
	top := 0
	for i := 0; i < 10_000; i++ {
		r := z.Next(gen.rng.Float64())
		if r >= 1000 {
			t.Fatalf("rank %d out of range", r)
		}
		if r < 10 {
			top++
		}
	}
	// At theta=1.2 the top-10 ranks carry well over half the mass.
	if top < 5_000 {
		t.Fatalf("top-10 mass = %d/10000, want heavy concentration", top)
	}
	// Distinct thetas above 1 must differ (no silent clamping).
	z2 := NewZipfian(1000, 1.1)
	diff := false
	for _, u := range []float64{0.3, 0.6, 0.9, 0.97, 0.999} {
		if z.Next(u) != z2.Next(u) {
			diff = true
		}
	}
	if !diff {
		t.Fatal("theta 1.1 and 1.2 behave identically (clamped?)")
	}
	z0 := NewZipfian(0, 0.9)
	if z0.N() != 1 {
		t.Fatal("zero-size domain not clamped")
	}
}

func TestKeyFormat(t *testing.T) {
	k := Key(42)
	if len(k) != 24 {
		t.Fatalf("key length = %d, want 24 (paper's key size)", len(k))
	}
	if string(Key(1)) >= string(Key(2)) || string(Key(9)) >= string(Key(10)) {
		t.Fatal("keys do not sort numerically")
	}
}

func TestGeneratorDeterminism(t *testing.T) {
	a := NewGenerator(Config{NumKeys: 1000, Seed: 7})
	b := NewGenerator(Config{NumKeys: 1000, Seed: 7})
	for i := 0; i < 1000; i++ {
		opA := a.Next(MixBalanced)
		opB := b.Next(MixBalanced)
		if opA.Kind != opB.Kind || string(opA.Key) != string(opB.Key) {
			t.Fatalf("divergence at op %d", i)
		}
	}
}

func TestMixProportions(t *testing.T) {
	g := NewGenerator(Config{NumKeys: 1000, Seed: 11})
	mix := Mix{GetPct: 50, ShortScanPct: 20, LongScanPct: 10, WritePct: 20}
	var gets, shorts, longs, writes int
	const n = 50_000
	for i := 0; i < n; i++ {
		op := g.Next(mix)
		switch {
		case op.Kind == OpGet:
			gets++
		case op.Kind == OpScan && op.ScanLen == ShortScanLen:
			shorts++
		case op.Kind == OpScan && op.ScanLen == LongScanLen:
			longs++
		case op.Kind == OpPut:
			writes++
		}
	}
	check := func(name string, got, wantPct int) {
		t.Helper()
		gotPct := float64(got) / n * 100
		if math.Abs(gotPct-float64(wantPct)) > 2 {
			t.Fatalf("%s = %.1f%%, want ≈%d%%", name, gotPct, wantPct)
		}
	}
	check("gets", gets, 50)
	check("short scans", shorts, 20)
	check("long scans", longs, 10)
	check("writes", writes, 20)
}

func TestWritesCarryValues(t *testing.T) {
	g := NewGenerator(Config{NumKeys: 100, ValueSize: 64, Seed: 13})
	for i := 0; i < 1000; i++ {
		op := g.Next(Mix{WritePct: 100})
		if op.Kind != OpPut || len(op.Value) != 64 {
			t.Fatalf("write op = %+v", op)
		}
	}
	// Consecutive writes to the same key differ (updates, not no-ops).
	v1 := g.Value(5)
	v2 := g.Value(5)
	if string(v1) == string(v2) {
		t.Fatal("repeated values identical")
	}
}

func TestDynamicPhasesMatchTable3(t *testing.T) {
	phases := DynamicPhases()
	if len(phases) != 6 {
		t.Fatalf("phases = %d", len(phases))
	}
	want := map[string][4]int{
		"A": {1, 1, 97, 1},
		"B": {1, 49, 49, 1},
		"C": {49, 49, 1, 1},
		"D": {25, 25, 1, 49},
		"E": {1, 49, 1, 49},
		"F": {1, 12, 12, 75},
	}
	for _, p := range phases {
		w := want[p.Name]
		got := [4]int{p.Mix.GetPct, p.Mix.ShortScanPct, p.Mix.LongScanPct, p.Mix.WritePct}
		if got != w {
			t.Fatalf("phase %s = %v, want %v (Table 3)", p.Name, got, w)
		}
	}
}

func TestStaticMixesSumTo100(t *testing.T) {
	for _, m := range []Mix{MixPointLookup, MixShortScan, MixBalanced, MixLongScan} {
		if sum := m.GetPct + m.ShortScanPct + m.LongScanPct + m.WritePct; sum != 100 {
			t.Fatalf("mix %+v sums to %d", m, sum)
		}
	}
	for _, p := range DynamicPhases() {
		m := p.Mix
		if sum := m.GetPct + m.ShortScanPct + m.LongScanPct + m.WritePct; sum != 100 {
			t.Fatalf("phase %s sums to %d", p.Name, sum)
		}
	}
}

func TestScrambleStableAndInRange(t *testing.T) {
	g := NewGenerator(Config{NumKeys: 500, Seed: 1})
	for rank := uint64(0); rank < 100; rank++ {
		a := g.scramble(rank)
		b := g.scramble(rank)
		if a != b {
			t.Fatal("scramble not deterministic")
		}
		if a < 0 || a >= 500 {
			t.Fatalf("scramble out of range: %d", a)
		}
	}
}
