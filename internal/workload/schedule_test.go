package workload

import (
	"bytes"
	"testing"
)

// TestScheduleDeterministic pins the property every memory-arbitration
// comparison rests on: two schedules over same-seeded generators emit
// byte-identical (op, phase) streams, so unified and static configurations
// see the same load. Runs under -race in CI (the generators are driven
// from separate goroutines) to pin that determinism does not lean on
// shared state.
func TestScheduleDeterministic(t *testing.T) {
	type rec struct {
		phase string
		kind  OpKind
		key   []byte
		slen  int
	}
	run := func(out chan<- []rec) {
		gen := NewGenerator(Config{NumKeys: 5000, ValueSize: 64, Seed: 42})
		s := NewSchedule(gen, MemoryPhases(), 400)
		var got []rec
		for {
			op, ph, ok := s.Next()
			if !ok {
				break
			}
			got = append(got, rec{ph.Name, op.Kind, op.Key, op.ScanLen})
		}
		out <- got
	}
	a, b := make(chan []rec, 1), make(chan []rec, 1)
	go run(a)
	go run(b)
	ra, rb := <-a, <-b

	if len(ra) != 3*400 {
		t.Fatalf("emitted %d ops, want %d", len(ra), 3*400)
	}
	if len(ra) != len(rb) {
		t.Fatalf("stream lengths differ: %d vs %d", len(ra), len(rb))
	}
	for i := range ra {
		if ra[i].phase != rb[i].phase || ra[i].kind != rb[i].kind ||
			!bytes.Equal(ra[i].key, rb[i].key) || ra[i].slen != rb[i].slen {
			t.Fatalf("op %d differs: %+v vs %+v", i, ra[i], rb[i])
		}
	}

	// Phase boundaries land exactly on the per-phase quota.
	for i, want := range []string{"write-heavy", "read-heavy", "scan-heavy"} {
		if got := ra[i*400].phase; got != want {
			t.Fatalf("op %d in phase %q, want %q", i*400, got, want)
		}
		if got := ra[i*400+399].phase; got != want {
			t.Fatalf("op %d in phase %q, want %q", i*400+399, got, want)
		}
	}

	// The mixes actually differ across phases: the write-heavy phase is
	// write-dominated, the read-heavy phase point-dominated, the scan-heavy
	// phase scan-dominated.
	counts := map[string]map[OpKind]int{}
	for _, r := range ra {
		if counts[r.phase] == nil {
			counts[r.phase] = map[OpKind]int{}
		}
		counts[r.phase][r.kind]++
	}
	if w := counts["write-heavy"][OpPut]; w < 400*60/100 {
		t.Fatalf("write-heavy phase only %d/400 puts", w)
	}
	if g := counts["read-heavy"][OpGet]; g < 400*70/100 {
		t.Fatalf("read-heavy phase only %d/400 gets", g)
	}
	if s := counts["scan-heavy"][OpScan]; s < 400*70/100 {
		t.Fatalf("scan-heavy phase only %d/400 scans", s)
	}
}

func TestScheduleExhausts(t *testing.T) {
	gen := NewGenerator(Config{NumKeys: 100, Seed: 7})
	s := NewSchedule(gen, MemoryPhases(), 0)
	if _, _, ok := s.Next(); ok {
		t.Fatal("zero-quota schedule should emit nothing")
	}
	s = NewSchedule(gen, MemoryPhases(), 3)
	for i := 0; i < 9; i++ {
		if _, _, ok := s.Next(); !ok {
			t.Fatalf("schedule exhausted early at op %d", i)
		}
	}
	for i := 0; i < 3; i++ {
		if _, _, ok := s.Next(); ok {
			t.Fatal("schedule should stay exhausted")
		}
	}
}
