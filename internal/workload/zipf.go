package workload

import (
	"math"
	"sort"
)

// Zipfian generates ranks in [0, n) with P(rank k) ∝ 1/(k+1)^theta.
//
// For theta < 1 it uses the Gray et al. rejection-free formula popularised
// by YCSB (math/rand's Zipf requires s > 1 and cannot express the paper's
// 0.9 skew). For theta >= 1 — Figure 9 sweeps skew up to 1.2 — the YCSB
// formula's domain ends, so an exact cumulative-distribution table with
// binary-search sampling is used instead.
type Zipfian struct {
	n     uint64
	theta float64

	// Gray et al. state (theta < 1).
	alpha, zetan, eta float64
	zeta2             float64
	halfPowTheta      float64

	// CDF table (theta >= 1).
	cdf []float64
}

// NewZipfian returns a generator over [0, n) with skew theta > 0.
// theta == 1 exactly is nudged to 1.0001 (the harmonic-series edge case).
func NewZipfian(n uint64, theta float64) *Zipfian {
	if n == 0 {
		n = 1
	}
	if theta <= 0 {
		theta = 0.001
	}
	if theta == 1 {
		theta = 1.0001
	}
	z := &Zipfian{n: n, theta: theta}
	if theta > 1 {
		z.cdf = make([]float64, n)
		var sum float64
		for i := uint64(0); i < n; i++ {
			sum += 1 / math.Pow(float64(i+1), theta)
			z.cdf[i] = sum
		}
		for i := range z.cdf {
			z.cdf[i] /= sum
		}
		return z
	}
	z.zetan = zeta(n, theta)
	z.zeta2 = zeta(2, theta)
	z.alpha = 1 / (1 - theta)
	z.eta = (1 - math.Pow(2/float64(n), 1-theta)) / (1 - z.zeta2/z.zetan)
	z.halfPowTheta = 1 + math.Pow(0.5, theta)
	return z
}

func zeta(n uint64, theta float64) float64 {
	var sum float64
	for i := uint64(1); i <= n; i++ {
		sum += 1 / math.Pow(float64(i), theta)
	}
	return sum
}

// Next maps a uniform sample u ∈ [0,1) to a Zipfian rank (0 = hottest).
func (z *Zipfian) Next(u float64) uint64 {
	if z.cdf != nil {
		return uint64(sort.SearchFloat64s(z.cdf, u))
	}
	uz := u * z.zetan
	if uz < 1 {
		return 0
	}
	if uz < z.halfPowTheta {
		return 1
	}
	rank := uint64(float64(z.n) * math.Pow(z.eta*u-z.eta+1, z.alpha))
	if rank >= z.n {
		rank = z.n - 1
	}
	return rank
}

// N reports the domain size.
func (z *Zipfian) N() uint64 { return z.n }
