// Package workload generates the paper's evaluation workloads: Zipfian
// key-access patterns over a fixed key space, static operation mixes
// (Point Lookup / Short Scan / Balanced / Long Scan, §5.2) and the dynamic
// phase schedule A→F of Table 3 (§5.3). Generators are deterministic under
// a seed so every cache strategy sees the identical operation stream.
package workload

import (
	"fmt"
	"math/rand"

	"adcache/internal/bloom"
)

// Scan lengths used throughout the paper.
const (
	// ShortScanLen is the paper's short scan length.
	ShortScanLen = 16
	// LongScanLen is the paper's long scan length.
	LongScanLen = 64
)

// OpKind tags a generated operation.
type OpKind int

// Operation kinds.
const (
	OpGet OpKind = iota
	OpScan
	OpPut
	// OpDelete is a point deletion. Replay must distinguish deletes from
	// puts — a delete shrinks the hot set where a put refreshes it.
	OpDelete
	// OpScanRange is a bounded range scan [Key, End). ScanLen carries the
	// result limit (0 = unbounded, treated as a long scan by windowing).
	OpScanRange
)

// Op is one generated operation.
type Op struct {
	Kind    OpKind
	Key     []byte
	End     []byte // exclusive upper bound; OpScanRange only (nil = +inf)
	ScanLen int
	Value   []byte
}

// Mix is an operation mixture in percent (must sum to 100).
type Mix struct {
	GetPct       int
	ShortScanPct int
	LongScanPct  int
	WritePct     int
}

// The paper's four static workloads (§5.2).
var (
	// MixPointLookup consists solely of point queries.
	MixPointLookup = Mix{GetPct: 100}
	// MixShortScan performs scans of length 16 only.
	MixShortScan = Mix{ShortScanPct: 100}
	// MixBalanced mixes 33% points, 33% short scans, 33% writes (the
	// remaining 1% is assigned to points).
	MixBalanced = Mix{GetPct: 34, ShortScanPct: 33, WritePct: 33}
	// MixLongScan performs scans of length 64 only.
	MixLongScan = Mix{LongScanPct: 100}
)

// Phase couples a name to a mix for dynamic schedules.
type Phase struct {
	Name string
	Mix  Mix
}

// DynamicPhases is Table 3: the six-phase schedule A→F.
func DynamicPhases() []Phase {
	return []Phase{
		{"A", Mix{GetPct: 1, ShortScanPct: 1, LongScanPct: 97, WritePct: 1}},
		{"B", Mix{GetPct: 1, ShortScanPct: 49, LongScanPct: 49, WritePct: 1}},
		{"C", Mix{GetPct: 49, ShortScanPct: 49, LongScanPct: 1, WritePct: 1}},
		{"D", Mix{GetPct: 25, ShortScanPct: 25, LongScanPct: 1, WritePct: 49}},
		{"E", Mix{GetPct: 1, ShortScanPct: 49, LongScanPct: 1, WritePct: 49}},
		{"F", Mix{GetPct: 1, ShortScanPct: 12, LongScanPct: 12, WritePct: 75}},
	}
}

// MemoryPhases is the unified-memory arbitration schedule: a write-heavy
// phase (memory pays in the memtables — bigger flushes, less write
// amplification), a point-read-heavy phase (memory pays in the caches),
// and a scan-heavy phase with a trickle of writes (memory pays in the
// block cache). `adbench -memory` drives this schedule; each phase is
// long enough for the arbiter to converge before the mix flips.
func MemoryPhases() []Phase {
	return []Phase{
		{"write-heavy", Mix{GetPct: 10, ShortScanPct: 5, WritePct: 85}},
		{"read-heavy", Mix{GetPct: 90, ShortScanPct: 5, WritePct: 5}},
		{"scan-heavy", Mix{GetPct: 5, ShortScanPct: 45, LongScanPct: 45, WritePct: 5}},
	}
}

// Schedule walks a Generator through a phase sequence, a fixed number of
// operations per phase. It is deterministic under the generator's seed:
// two schedules over same-seeded generators yield identical (op, phase)
// streams, so every configuration under comparison sees the same load.
type Schedule struct {
	gen      *Generator
	phases   []Phase
	perPhase int
	emitted  int
}

// NewSchedule returns a schedule emitting opsPerPhase operations for each
// phase in order.
func NewSchedule(gen *Generator, phases []Phase, opsPerPhase int) *Schedule {
	return &Schedule{gen: gen, phases: phases, perPhase: opsPerPhase}
}

// Next draws the next operation and the phase it belongs to. ok is false
// once every phase has emitted its quota.
func (s *Schedule) Next() (op Op, phase Phase, ok bool) {
	idx := 0
	if s.perPhase > 0 {
		idx = s.emitted / s.perPhase
	}
	if s.perPhase <= 0 || idx >= len(s.phases) {
		return Op{}, Phase{}, false
	}
	s.emitted++
	return s.gen.Next(s.phases[idx].Mix), s.phases[idx], true
}

// Config parameterises a Generator.
type Config struct {
	// NumKeys is the key-space size.
	NumKeys int
	// ValueSize is the value payload length in bytes (paper: 1000;
	// scaled-down experiments default to 100).
	ValueSize int
	// PointSkew is the Zipfian theta for point lookups and writes
	// (paper default 0.9).
	PointSkew float64
	// ScanSkew is the Zipfian theta for scan start keys.
	ScanSkew float64
	// Seed drives all randomness.
	Seed int64
}

func (c Config) withDefaults() Config {
	if c.NumKeys <= 0 {
		c.NumKeys = 100_000
	}
	if c.ValueSize <= 0 {
		c.ValueSize = 100
	}
	if c.PointSkew == 0 {
		c.PointSkew = 0.9
	}
	if c.ScanSkew == 0 {
		c.ScanSkew = 0.9
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

// Generator produces deterministic operation streams.
type Generator struct {
	cfg       Config
	rng       *rand.Rand
	pointZipf *Zipfian
	scanZipf  *Zipfian
	valueSeq  int64
}

// NewGenerator returns a generator for cfg.
func NewGenerator(cfg Config) *Generator {
	cfg = cfg.withDefaults()
	return &Generator{
		cfg:       cfg,
		rng:       rand.New(rand.NewSource(cfg.Seed)),
		pointZipf: NewZipfian(uint64(cfg.NumKeys), cfg.PointSkew),
		scanZipf:  NewZipfian(uint64(cfg.NumKeys), cfg.ScanSkew),
	}
}

// Key renders the i-th key: a 24-byte fixed-width format matching the
// paper's key size.
func Key(i int) []byte { return []byte(fmt.Sprintf("user%020d", i)) }

// KeyIndexUpper returns the exclusive upper key for index i (sharding).
func KeyIndexUpper(i int) string { return string(Key(i)) }

// scramble spreads Zipfian ranks across the key space so hot keys are not
// physically adjacent (YCSB's scrambled Zipfian), while scans still cover
// contiguous runs of the key space from their start key.
func (g *Generator) scramble(rank uint64) int {
	var buf [8]byte
	for i := 0; i < 8; i++ {
		buf[i] = byte(rank >> (8 * i))
	}
	return int(bloom.Hash64(buf[:]) % uint64(g.cfg.NumKeys))
}

// Value fabricates a payload for key index i, distinct per write.
func (g *Generator) Value(i int) []byte {
	g.valueSeq++
	v := make([]byte, g.cfg.ValueSize)
	copy(v, fmt.Sprintf("v%016d-%010d-", g.valueSeq, i))
	for j := 30; j < len(v); j++ {
		v[j] = 'x'
	}
	return v
}

// InitialValue fabricates the load-phase payload for key index i.
func (g *Generator) InitialValue(i int) []byte {
	v := make([]byte, g.cfg.ValueSize)
	copy(v, fmt.Sprintf("init%010d-", i))
	for j := 15; j < len(v); j++ {
		v[j] = 'y'
	}
	return v
}

// Next draws one operation from mix.
func (g *Generator) Next(mix Mix) Op {
	r := g.rng.Intn(100)
	switch {
	case r < mix.GetPct:
		idx := g.scramble(g.pointZipf.Next(g.rng.Float64()))
		return Op{Kind: OpGet, Key: Key(idx)}
	case r < mix.GetPct+mix.ShortScanPct:
		idx := g.scramble(g.scanZipf.Next(g.rng.Float64()))
		return Op{Kind: OpScan, Key: Key(idx), ScanLen: ShortScanLen}
	case r < mix.GetPct+mix.ShortScanPct+mix.LongScanPct:
		idx := g.scramble(g.scanZipf.Next(g.rng.Float64()))
		return Op{Kind: OpScan, Key: Key(idx), ScanLen: LongScanLen}
	default:
		idx := g.scramble(g.pointZipf.Next(g.rng.Float64()))
		return Op{Kind: OpPut, Key: Key(idx), Value: g.Value(idx)}
	}
}

// NumKeys reports the configured key-space size.
func (g *Generator) NumKeys() int { return g.cfg.NumKeys }

// ValueSize reports the configured value size.
func (g *Generator) ValueSize() int { return g.cfg.ValueSize }
