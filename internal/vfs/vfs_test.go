package vfs

import (
	"io"
	"testing"
	"testing/quick"
)

func TestMemFSCreateOpenReadWrite(t *testing.T) {
	fs := NewMem()
	f, err := fs.Create("dir/a.txt")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("hello ")); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("world")); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	g, err := fs.Open("dir/a.txt")
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 11)
	if _, err := g.ReadAt(buf, 0); err != nil {
		t.Fatal(err)
	}
	if string(buf) != "hello world" {
		t.Fatalf("read %q", buf)
	}
	if size, _ := g.Size(); size != 11 {
		t.Fatalf("Size = %d", size)
	}
}

func TestMemFSReadAtBounds(t *testing.T) {
	fs := NewMem()
	f, _ := fs.Create("f")
	f.Write([]byte("abc"))
	buf := make([]byte, 2)
	if n, err := f.ReadAt(buf, 2); n != 1 || err != io.EOF {
		t.Fatalf("partial read = %d, %v", n, err)
	}
	if _, err := f.ReadAt(buf, 10); err != io.EOF {
		t.Fatalf("past-end read err = %v", err)
	}
}

func TestMemFSWriteAtGrows(t *testing.T) {
	fs := NewMem()
	f, _ := fs.Create("f")
	if _, err := f.WriteAt([]byte("xy"), 5); err != nil {
		t.Fatal(err)
	}
	if size, _ := f.Size(); size != 7 {
		t.Fatalf("Size = %d, want 7", size)
	}
	buf := make([]byte, 2)
	if _, err := f.ReadAt(buf, 5); err != nil {
		t.Fatal(err)
	}
	if string(buf) != "xy" {
		t.Fatalf("read %q", buf)
	}
}

func TestMemFSRenameRemoveExists(t *testing.T) {
	fs := NewMem()
	fs.Create("a")
	if err := fs.Rename("a", "b"); err != nil {
		t.Fatal(err)
	}
	if fs.Exists("a") || !fs.Exists("b") {
		t.Fatal("rename did not move the file")
	}
	if err := fs.Remove("b"); err != nil {
		t.Fatal(err)
	}
	if fs.Exists("b") {
		t.Fatal("remove left the file")
	}
	if err := fs.Remove("b"); !IsNotExist(err) {
		t.Fatalf("second remove err = %v", err)
	}
	if _, err := fs.Open("nope"); !IsNotExist(err) {
		t.Fatalf("open missing err = %v", err)
	}
}

func TestMemFSList(t *testing.T) {
	fs := NewMem()
	fs.Create("d/b")
	fs.Create("d/a")
	fs.Create("other/c")
	names, err := fs.List("d")
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != 2 || names[0] != "a" || names[1] != "b" {
		t.Fatalf("List = %v", names)
	}
}

func TestCountingFS(t *testing.T) {
	cfs := NewCounting(NewMem())
	f, _ := cfs.Create("f")
	f.Write(make([]byte, 100))
	g, _ := cfs.Open("f")
	buf := make([]byte, 40)
	g.ReadAt(buf, 0)
	g.ReadAt(buf, 40)
	s := cfs.Stats.Snapshot()
	if s.WriteOps != 1 || s.WriteBytes != 100 {
		t.Fatalf("write stats = %+v", s)
	}
	if s.ReadOps != 2 || s.ReadBytes != 80 {
		t.Fatalf("read stats = %+v", s)
	}
	d := cfs.Stats.Snapshot().Sub(s)
	if d.ReadOps != 0 || d.WriteOps != 0 {
		t.Fatalf("delta = %+v", d)
	}
}

func TestFaultFSWriteInjection(t *testing.T) {
	ffs := NewFault(NewMem())
	f, _ := ffs.Create("f")
	ffs.FailAfterWrites(2)
	if _, err := f.Write([]byte("1")); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("2")); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("3")); err != ErrInjected {
		t.Fatalf("third write err = %v, want injected", err)
	}
	ffs.Reset()
	if _, err := f.Write([]byte("4")); err != nil {
		t.Fatalf("write after reset: %v", err)
	}
}

func TestFaultFSCreateAndReadInjection(t *testing.T) {
	ffs := NewFault(NewMem())
	ffs.FailCreates(1)
	if _, err := ffs.Create("x"); err != ErrInjected {
		t.Fatalf("create err = %v", err)
	}
	f, err := ffs.Create("x")
	if err != nil {
		t.Fatal(err)
	}
	f.Write([]byte("data"))
	ffs.SetFailReads(true)
	if _, err := f.ReadAt(make([]byte, 1), 0); err != ErrInjected {
		t.Fatalf("read err = %v", err)
	}
	ffs.SetFailReads(false)
	if _, err := f.ReadAt(make([]byte, 1), 0); err != nil {
		t.Fatalf("read after clear: %v", err)
	}
}

// TestMemFileWriteReadProperty checks Write/ReadAt agreement over random
// chunk sequences.
func TestMemFileWriteReadProperty(t *testing.T) {
	f := func(chunks [][]byte) bool {
		fs := NewMem()
		file, _ := fs.Create("f")
		var all []byte
		for _, c := range chunks {
			file.Write(c)
			all = append(all, c...)
		}
		if len(all) == 0 {
			return true
		}
		got := make([]byte, len(all))
		if _, err := file.ReadAt(got, 0); err != nil && err != io.EOF {
			return false
		}
		return string(got) == string(all)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestFaultFSSyncRemoveRenameInjection(t *testing.T) {
	ffs := NewFault(NewMem())
	f, _ := ffs.Create("f")
	ffs.FailSyncs(1)
	if err := f.Sync(); err != ErrInjected {
		t.Fatalf("sync err = %v, want injected", err)
	}
	if err := f.Sync(); err != nil {
		t.Fatalf("second sync: %v", err)
	}
	ffs.FailRemoves(1)
	if err := ffs.Remove("f"); err != ErrInjected {
		t.Fatalf("remove err = %v, want injected", err)
	}
	if err := ffs.Remove("f"); err != nil {
		t.Fatalf("second remove: %v", err)
	}
	ffs.Create("a")
	ffs.FailRenames(1)
	if err := ffs.Rename("a", "b"); err != ErrInjected {
		t.Fatalf("rename err = %v, want injected", err)
	}
	if err := ffs.Rename("a", "b"); err != nil {
		t.Fatalf("second rename: %v", err)
	}
}

// TestFaultFSTarget checks injection only applies to matching file names.
func TestFaultFSTarget(t *testing.T) {
	ffs := NewFault(NewMem())
	ffs.Target(".sst")
	ffs.FailCreates(1)
	if _, err := ffs.Create("db/000001.log"); err != nil {
		t.Fatalf("non-target create failed: %v", err)
	}
	if _, err := ffs.Create("db/000002.sst"); err != ErrInjected {
		t.Fatalf("target create err = %v, want injected", err)
	}
}

// TestFaultFSProbabilistic checks the seeded probabilistic mode fails an
// expected fraction of operations and is deterministic per seed.
func TestFaultFSProbabilistic(t *testing.T) {
	run := func(seed int64) int {
		ffs := NewFault(NewMem())
		f, _ := ffs.Create("f")
		ffs.FailProbability(seed, 0.3)
		fails := 0
		for i := 0; i < 1000; i++ {
			if _, err := f.Write([]byte("x")); err != nil {
				fails++
			}
		}
		return fails
	}
	n := run(42)
	if n < 200 || n > 400 {
		t.Fatalf("p=0.3 failed %d/1000 ops", n)
	}
	if again := run(42); again != n {
		t.Fatalf("same seed diverged: %d vs %d", n, again)
	}
	if other := run(43); other == n {
		t.Logf("different seeds coincided (possible but unlikely): %d", n)
	}
}

// TestFaultFSInjectedError checks the injected error is swappable (ENOSPC
// simulation for the error-classification tests).
func TestFaultFSInjectedError(t *testing.T) {
	ffs := NewFault(NewMem())
	ffs.SetInjectedError(ErrNoSpace)
	f, _ := ffs.Create("f")
	ffs.FailAfterWrites(0)
	if _, err := f.Write([]byte("x")); err != ErrNoSpace {
		t.Fatalf("err = %v, want ErrNoSpace", err)
	}
	ffs.Reset()
	ffs.FailAfterWrites(0)
	if _, err := f.Write([]byte("x")); err != ErrInjected {
		t.Fatalf("after reset err = %v, want ErrInjected", err)
	}
}

// TestFaultFSCorruptWrites checks silent corruption flips exactly one byte
// and reports success to the writer.
func TestFaultFSCorruptWrites(t *testing.T) {
	ffs := NewFault(NewMem())
	f, _ := ffs.Create("f")
	ffs.CorruptWrites(1)
	data := []byte("hello world")
	if n, err := f.Write(data); n != len(data) || err != nil {
		t.Fatalf("corrupt write reported n=%d err=%v", n, err)
	}
	got := make([]byte, len(data))
	f.ReadAt(got, 0)
	diff := 0
	for i := range data {
		if got[i] != data[i] {
			diff++
		}
	}
	if diff != 1 {
		t.Fatalf("corrupt write changed %d bytes, want 1 (%q)", diff, got)
	}
	if _, err := f.Write(data); err != nil {
		t.Fatalf("second write: %v", err)
	}
	clean := make([]byte, len(data))
	f.ReadAt(clean, int64(len(data)))
	if string(clean) != string(data) {
		t.Fatalf("second write corrupted too: %q", clean)
	}
}
