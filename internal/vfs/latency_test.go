package vfs

import (
	"bytes"
	"testing"
	"time"
)

// TestLatencyFSTransparent checks data round-trips unchanged through the
// latency wrapper.
func TestLatencyFSTransparent(t *testing.T) {
	fs := NewLatency(NewMem(), 0, 0)
	f, err := fs.Create("a")
	if err != nil {
		t.Fatal(err)
	}
	payload := []byte("hello latency")
	if _, err := f.Write(payload); err != nil {
		t.Fatal(err)
	}
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	f.Close()

	g, err := fs.Open("a")
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()
	buf := make([]byte, len(payload))
	if _, err := g.ReadAt(buf, 0); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf, payload) {
		t.Fatalf("read back %q, wrote %q", buf, payload)
	}
	if !fs.Exists("a") {
		t.Fatal("Exists lost the file")
	}
}

// TestLatencyFSCharges checks accumulated debt is actually slept off: a
// burst of charged operations takes at least the modelled simulated time.
func TestLatencyFSCharges(t *testing.T) {
	const access = 500 * time.Microsecond
	const ops = 20 // 10 ms of modelled access time, well past minSleep
	fs := NewLatency(NewMem(), access, 0)
	f, err := fs.Create("a")
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()

	start := time.Now()
	for i := 0; i < ops; i++ {
		if _, err := f.Write([]byte("x")); err != nil {
			t.Fatal(err)
		}
	}
	if err := f.Sync(); err != nil { // settles any residual debt
		t.Fatal(err)
	}
	if got, want := time.Since(start), ops*access; got < want {
		t.Fatalf("charged burst took %v, modelled time is %v", got, want)
	}
}
