// Package vfs provides the file-system abstraction used by the LSM engine.
//
// The engine never touches the OS directly; it goes through an FS value.
// MemFS is the default implementation used by tests, examples and the
// benchmark harness. CountingFS wraps any FS with atomic I/O accounting so
// experiments can report the paper's "SST reads" metric, and FaultFS injects
// failures for robustness tests.
package vfs

import (
	"fmt"
	"io"
	"path"
	"sort"
	"sync"
)

// File is a readable, writable, seek-free file handle. SSTables are written
// sequentially and read with ReadAt, mirroring how LSM engines use files.
type File interface {
	io.WriterAt
	io.ReaderAt
	io.Writer
	io.Closer
	// Sync flushes buffered data to stable storage.
	Sync() error
	// Size reports the current length of the file in bytes.
	Size() (int64, error)
}

// NoCopyReaderAt is an optional File capability: ReadAtNoCopy returns a
// pinned read-only view of n bytes at off that stays valid until the file is
// closed, without copying. OSFS implements it with a lazily established
// memory map; wrapper file systems that do not forward it (crash, fault,
// latency simulation) simply fall back to ReadAt — callers must probe with a
// type assertion and treat absence as "copy".
//
// Callers must not modify the returned slice, and must not use it after
// Close. An implementation may fail (for example an empty or unmappable
// file); callers should fall back to ReadAt on any error.
type NoCopyReaderAt interface {
	ReadAtNoCopy(off, n int64) ([]byte, error)
}

// FS is a minimal file system interface sufficient for an LSM engine.
type FS interface {
	// Create creates or truncates the named file for writing.
	Create(name string) (File, error)
	// Open opens the named file for reading.
	Open(name string) (File, error)
	// Remove deletes the named file.
	Remove(name string) error
	// Rename atomically renames a file.
	Rename(oldname, newname string) error
	// List returns the names (not full paths) of files under dir.
	List(dir string) ([]string, error)
	// MkdirAll creates dir and any missing parents.
	MkdirAll(dir string) error
	// Exists reports whether the named file exists.
	Exists(name string) bool
}

// memFile is an in-memory file. It is safe for concurrent ReadAt once
// writing has finished, and guards growth with a mutex so that concurrent
// writers (WAL appends under DB lock, compaction writers) are safe too.
type memFile struct {
	mu   sync.RWMutex
	name string
	data []byte
}

func (f *memFile) Write(p []byte) (int, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.data = append(f.data, p...)
	return len(p), nil
}

func (f *memFile) WriteAt(p []byte, off int64) (int, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if need := off + int64(len(p)); need > int64(len(f.data)) {
		grown := make([]byte, need)
		copy(grown, f.data)
		f.data = grown
	}
	copy(f.data[off:], p)
	return len(p), nil
}

func (f *memFile) ReadAt(p []byte, off int64) (int, error) {
	f.mu.RLock()
	defer f.mu.RUnlock()
	if off >= int64(len(f.data)) {
		return 0, io.EOF
	}
	n := copy(p, f.data[off:])
	if n < len(p) {
		return n, io.EOF
	}
	return n, nil
}

func (f *memFile) Close() error { return nil }
func (f *memFile) Sync() error  { return nil }
func (f *memFile) Size() (int64, error) {
	f.mu.RLock()
	defer f.mu.RUnlock()
	return int64(len(f.data)), nil
}

// MemFS is an in-memory FS implementation. It is safe for concurrent use.
type MemFS struct {
	mu    sync.Mutex
	files map[string]*memFile
	dirs  map[string]bool
}

// NewMem returns an empty in-memory file system.
func NewMem() *MemFS {
	return &MemFS{files: make(map[string]*memFile), dirs: map[string]bool{"/": true, ".": true}}
}

// Create implements FS.
func (fs *MemFS) Create(name string) (File, error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	f := &memFile{name: name}
	fs.files[clean(name)] = f
	return f, nil
}

// Open implements FS.
func (fs *MemFS) Open(name string) (File, error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	f, ok := fs.files[clean(name)]
	if !ok {
		return nil, &NotExistError{Name: name}
	}
	return f, nil
}

// Remove implements FS.
func (fs *MemFS) Remove(name string) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	name = clean(name)
	if _, ok := fs.files[name]; !ok {
		return &NotExistError{Name: name}
	}
	delete(fs.files, name)
	return nil
}

// Rename implements FS.
func (fs *MemFS) Rename(oldname, newname string) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	oldname, newname = clean(oldname), clean(newname)
	f, ok := fs.files[oldname]
	if !ok {
		return &NotExistError{Name: oldname}
	}
	delete(fs.files, oldname)
	f.name = newname
	fs.files[newname] = f
	return nil
}

// List implements FS.
func (fs *MemFS) List(dir string) ([]string, error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	dir = clean(dir)
	var names []string
	for name := range fs.files {
		if path.Dir(name) == dir {
			names = append(names, path.Base(name))
		}
	}
	sort.Strings(names)
	return names, nil
}

// MkdirAll implements FS.
func (fs *MemFS) MkdirAll(dir string) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	fs.dirs[clean(dir)] = true
	return nil
}

// Exists implements FS.
func (fs *MemFS) Exists(name string) bool {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	_, ok := fs.files[clean(name)]
	return ok
}

// AllFiles returns the full paths of every file, sorted. CrashFS uses it to
// enumerate the disk when materialising a post-crash view.
func (fs *MemFS) AllFiles() []string {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	names := make([]string, 0, len(fs.files))
	for name := range fs.files {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// TotalBytes reports the sum of all file sizes, used by experiments to size
// caches as a fraction of the database.
func (fs *MemFS) TotalBytes() int64 {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	var total int64
	for _, f := range fs.files {
		total += int64(len(f.data))
	}
	return total
}

func clean(name string) string { return path.Clean(name) }

// NotExistError reports that a file does not exist.
type NotExistError struct{ Name string }

func (e *NotExistError) Error() string { return fmt.Sprintf("vfs: file %q does not exist", e.Name) }

// IsNotExist reports whether err indicates a missing file.
func IsNotExist(err error) bool {
	_, ok := err.(*NotExistError)
	return ok
}
