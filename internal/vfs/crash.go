package vfs

import (
	"bytes"
	"errors"
	"io"
	"math/rand"
	"path"
	"sort"
	"sync"
)

// ErrCrashed is returned by every operation on a CrashFS after its armed
// crash point has fired: the simulated device is gone, exactly as if the
// machine lost power mid-operation.
var ErrCrashed = errors.New("vfs: simulated crash")

// CrashFS wraps an FS with a power-failure model. All data flows through to
// the inner FS immediately (readers on the live handle see it), but bytes
// only become *durable* when the file is synced: each path carries a durable
// snapshot that Sync refreshes with the file's full current contents.
//
// A crash can be triggered two ways:
//
//   - ArmCrash(n): the first n durability-relevant operations (Create,
//     Remove, Rename, Write, WriteAt, Sync) succeed; operation n+1 fails
//     with ErrCrashed and the device dies — every later operation also
//     returns ErrCrashed. Sweeping n over a workload's full operation count
//     visits every crash window the engine has.
//   - Calling Crash directly at any quiescent point.
//
// Crash materialises the post-crash disk as a fresh *MemFS: for every file,
// the durable snapshot survives, the unsynced tail is discarded — or,
// per CrashOptions, partially kept at sector granularity (a torn write) or
// kept entirely (the write happened to reach the platter before the cut,
// modelling reordered completion across files). Namespace operations
// (create/remove/rename) are modelled as immediately durable, which matches
// the engine's usage: the manifest syncs file contents before its atomic
// rename, and WAL/SST files are created before any data that matters is
// acknowledged.
//
// Files that already existed on the inner FS before wrapping are treated as
// fully durable.
type CrashFS struct {
	inner FS

	mu      sync.Mutex
	files   map[string]*crashState
	root    string // non-empty: bound the crash-time enumeration to this tree
	opCount int64
	armAt   int64 // fail the (armAt+1)-th op; negative = disarmed
	crashed bool
}

// crashState tracks one path's durable contents. Handles hold a pointer to
// it, so Rename (which re-keys the map) keeps handles attached.
type crashState struct {
	durable []byte
}

// NewCrash wraps inner with crash simulation, disarmed.
func NewCrash(inner FS) *CrashFS {
	return &CrashFS{inner: inner, files: make(map[string]*crashState), armAt: -1}
}

// SetRoot bounds the crash-time file enumeration to the tree under dir.
// Required when the inner FS is the real OS file system: without a root,
// Crash would walk the machine's entire namespace looking for device
// contents. MemFS-backed wrappers don't need it.
func (c *CrashFS) SetRoot(dir string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.root = clean(dir)
}

// ArmCrash schedules the crash: the next n durability-relevant operations
// succeed and the one after fails with ErrCrashed, killing the device.
// ArmCrash(0) fails the very next operation. A negative n disarms.
func (c *CrashFS) ArmCrash(n int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if n < 0 {
		c.armAt = -1
		return
	}
	c.armAt = c.opCount + n
}

// OpCount reports the number of durability-relevant operations performed so
// far; a full workload's count bounds the crash-point sweep.
func (c *CrashFS) OpCount() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.opCount
}

// Crashed reports whether the armed crash point has fired.
func (c *CrashFS) Crashed() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.crashed
}

// op gates one durability-relevant operation: it fails once the device has
// died and trips the armed crash point.
func (c *CrashFS) op() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.crashed {
		return ErrCrashed
	}
	if c.armAt >= 0 && c.opCount >= c.armAt {
		c.crashed = true
		return ErrCrashed
	}
	c.opCount++
	return nil
}

// readGate fails reads on a dead device without counting them as ops.
func (c *CrashFS) readGate() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.crashed {
		return ErrCrashed
	}
	return nil
}

// state returns the tracked durable state for name, creating it if the file
// pre-existed the wrapper (such files are fully durable as of first contact).
func (c *CrashFS) state(name string, preExistingDurable func() []byte) *crashState {
	name = clean(name)
	st, ok := c.files[name]
	if !ok {
		st = &crashState{}
		if preExistingDurable != nil {
			st.durable = preExistingDurable()
		}
		c.files[name] = st
	}
	return st
}

// Create implements FS. The truncation is modelled as immediately durable.
func (c *CrashFS) Create(name string) (File, error) {
	if err := c.op(); err != nil {
		return nil, err
	}
	f, err := c.inner.Create(name)
	if err != nil {
		return nil, err
	}
	c.mu.Lock()
	st := &crashState{}
	c.files[clean(name)] = st
	c.mu.Unlock()
	return &crashFile{File: f, fs: c, st: st}, nil
}

// Open implements FS.
func (c *CrashFS) Open(name string) (File, error) {
	if err := c.readGate(); err != nil {
		return nil, err
	}
	f, err := c.inner.Open(name)
	if err != nil {
		return nil, err
	}
	c.mu.Lock()
	st := c.state(name, func() []byte { return readAll(f) })
	c.mu.Unlock()
	return &crashFile{File: f, fs: c, st: st}, nil
}

// Remove implements FS. Deletion is modelled as immediately durable.
func (c *CrashFS) Remove(name string) error {
	if err := c.op(); err != nil {
		return err
	}
	if err := c.inner.Remove(name); err != nil {
		return err
	}
	c.mu.Lock()
	delete(c.files, clean(name))
	c.mu.Unlock()
	return nil
}

// Rename implements FS. The rename itself is immediately durable (and
// atomic); the renamed file's durable contents are whatever had been synced.
func (c *CrashFS) Rename(oldname, newname string) error {
	if err := c.op(); err != nil {
		return err
	}
	if err := c.inner.Rename(oldname, newname); err != nil {
		return err
	}
	c.mu.Lock()
	oldname, newname = clean(oldname), clean(newname)
	if st, ok := c.files[oldname]; ok {
		delete(c.files, oldname)
		c.files[newname] = st
	} else {
		delete(c.files, newname)
	}
	c.mu.Unlock()
	return nil
}

// List implements FS.
func (c *CrashFS) List(dir string) ([]string, error) {
	if err := c.readGate(); err != nil {
		return nil, err
	}
	return c.inner.List(dir)
}

// MkdirAll implements FS.
func (c *CrashFS) MkdirAll(dir string) error {
	if err := c.readGate(); err != nil {
		return err
	}
	return c.inner.MkdirAll(dir)
}

// Exists implements FS.
func (c *CrashFS) Exists(name string) bool {
	if c.Crashed() {
		return false
	}
	return c.inner.Exists(name)
}

// CrashOptions shapes what survives the power cut.
type CrashOptions struct {
	// Seed drives the torn-tail and keep-all random choices; a fixed seed
	// makes the crash deterministic. The zero seed is a valid seed.
	Seed int64
	// KeepTornTail keeps a random sector-aligned prefix of each file's
	// unsynced tail, modelling a write torn mid-flight. Off, the whole
	// unsynced tail is discarded.
	KeepTornTail bool
	// SectorSize is the torn-write granularity; 0 means 512 bytes.
	SectorSize int
	// KeepAllProb is the per-file probability that the entire unsynced tail
	// survives: the write completed just before the cut even though the
	// sync never happened, modelling reordered completion across files.
	KeepAllProb float64
}

// Crash simulates the power cut and returns the post-crash disk as a fresh
// MemFS: durable snapshots survive, unsynced tails are discarded or torn per
// opt. The CrashFS itself becomes unusable (every operation fails with
// ErrCrashed); reopen the database on the returned FS.
func (c *CrashFS) Crash(opt CrashOptions) *MemFS {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.crashed = true

	sector := opt.SectorSize
	if sector <= 0 {
		sector = 512
	}
	rng := rand.New(rand.NewSource(opt.Seed))

	// Deterministic iteration order: sorted live paths from the inner FS
	// (untracked paths pre-existed the wrapper and are fully durable).
	names := allFiles(c.inner, c.root)
	out := NewMem()
	for _, name := range names {
		f, err := c.inner.Open(name)
		if err != nil {
			continue
		}
		current := readAll(f)
		content := current
		if st, ok := c.files[name]; ok {
			content = st.durable
			// The unsynced tail is the bytes appended past the durable
			// snapshot. Unsynced in-place rewrites of durable bytes (which
			// the engine never does) revert wholesale to the snapshot.
			if len(current) > len(content) && bytes.Equal(current[:len(content)], content) {
				tail := current[len(content):]
				keep := 0
				if rng.Float64() < opt.KeepAllProb {
					keep = len(tail)
				} else if opt.KeepTornTail {
					keep = rng.Intn(len(tail)/sector+1) * sector
					if keep > len(tail) {
						keep = len(tail)
					}
				}
				content = append(append([]byte(nil), content...), tail[:keep]...)
			}
		}
		out.MkdirAll(path.Dir(name))
		nf, err := out.Create(name)
		if err != nil {
			continue
		}
		nf.Write(content)
		nf.Close()
	}
	return out
}

// allFiles enumerates every file path on fs: directly for MemFS, otherwise
// by recursive List from root (when set) or the generic "." and "/" roots.
func allFiles(fs FS, root string) []string {
	if m, ok := fs.(*MemFS); ok {
		return m.AllFiles()
	}
	seen := map[string]bool{}
	var out []string
	var walk func(dir string)
	walk = func(dir string) {
		if seen[dir] {
			return
		}
		seen[dir] = true
		names, err := fs.List(dir)
		if err != nil {
			return
		}
		for _, n := range names {
			full := path.Join(dir, n)
			if fs.Exists(full) {
				out = append(out, full)
			}
			walk(full)
		}
	}
	if root != "" && root != "." {
		walk(root)
	} else {
		walk(".")
		walk("/")
	}
	sort.Strings(out)
	return out
}

// readAll reads a file's entire contents via Size+ReadAt.
func readAll(f File) []byte {
	size, err := f.Size()
	if err != nil || size == 0 {
		return nil
	}
	buf := make([]byte, size)
	if _, err := f.ReadAt(buf, 0); err != nil && err != io.EOF {
		return nil
	}
	return buf
}

// crashFile wraps a live handle, gating operations on device health and
// refreshing the path's durable snapshot on Sync.
type crashFile struct {
	File
	fs *CrashFS
	st *crashState
}

func (f *crashFile) Write(p []byte) (int, error) {
	if err := f.fs.op(); err != nil {
		return 0, err
	}
	return f.File.Write(p)
}

func (f *crashFile) WriteAt(p []byte, off int64) (int, error) {
	if err := f.fs.op(); err != nil {
		return 0, err
	}
	return f.File.WriteAt(p, off)
}

func (f *crashFile) ReadAt(p []byte, off int64) (int, error) {
	if err := f.fs.readGate(); err != nil {
		return 0, err
	}
	return f.File.ReadAt(p, off)
}

func (f *crashFile) Sync() error {
	if err := f.fs.op(); err != nil {
		return err
	}
	if err := f.File.Sync(); err != nil {
		return err
	}
	data := readAll(f.File)
	f.fs.mu.Lock()
	f.st.durable = data
	f.fs.mu.Unlock()
	return nil
}

func (f *crashFile) Close() error {
	if f.fs.Crashed() {
		return ErrCrashed
	}
	return f.File.Close()
}
