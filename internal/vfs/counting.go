package vfs

import "sync/atomic"

// Stats accumulates I/O counts. All fields are manipulated atomically; a
// single Stats value may be shared by many files and goroutines.
//
// ReadOps is the number of ReadAt calls issued against data files, which for
// the LSM engine corresponds one-to-one with block reads ("SST reads" in the
// paper), because the sstable reader fetches exactly one block per ReadAt.
type Stats struct {
	ReadOps    atomic.Int64
	ReadBytes  atomic.Int64
	WriteOps   atomic.Int64
	WriteBytes atomic.Int64
}

// Snapshot returns a point-in-time copy of the counters.
func (s *Stats) Snapshot() StatsSnapshot {
	return StatsSnapshot{
		ReadOps:    s.ReadOps.Load(),
		ReadBytes:  s.ReadBytes.Load(),
		WriteOps:   s.WriteOps.Load(),
		WriteBytes: s.WriteBytes.Load(),
	}
}

// StatsSnapshot is an immutable copy of Stats counters.
type StatsSnapshot struct {
	ReadOps    int64
	ReadBytes  int64
	WriteOps   int64
	WriteBytes int64
}

// Sub returns the delta s - prev, for per-window accounting.
func (s StatsSnapshot) Sub(prev StatsSnapshot) StatsSnapshot {
	return StatsSnapshot{
		ReadOps:    s.ReadOps - prev.ReadOps,
		ReadBytes:  s.ReadBytes - prev.ReadBytes,
		WriteOps:   s.WriteOps - prev.WriteOps,
		WriteBytes: s.WriteBytes - prev.WriteBytes,
	}
}

// CountingFS wraps an FS, counting every read and write issued through files
// it opens or creates.
type CountingFS struct {
	FS
	Stats *Stats
}

// NewCounting wraps fs with a fresh Stats accumulator.
func NewCounting(fs FS) *CountingFS {
	return &CountingFS{FS: fs, Stats: &Stats{}}
}

// Create implements FS.
func (c *CountingFS) Create(name string) (File, error) {
	f, err := c.FS.Create(name)
	if err != nil {
		return nil, err
	}
	return wrapCounting(f, c.Stats), nil
}

// Open implements FS.
func (c *CountingFS) Open(name string) (File, error) {
	f, err := c.FS.Open(name)
	if err != nil {
		return nil, err
	}
	return wrapCounting(f, c.Stats), nil
}

// wrapCounting picks the wrapper type by capability: a file that can serve
// pinned no-copy views keeps that capability through the counting layer
// (the engine wraps every FS in CountingFS, so dropping it here would make
// OSFS memory maps unreachable). Files without it get the plain wrapper, so
// a type assertion on the wrapped file still reports the truth.
func wrapCounting(f File, stats *Stats) File {
	cf := countingFile{File: f, stats: stats}
	if nc, ok := f.(NoCopyReaderAt); ok {
		return &countingFileNoCopy{countingFile: cf, nc: nc}
	}
	return &cf
}

type countingFile struct {
	File
	stats *Stats
}

// countingFileNoCopy additionally forwards ReadAtNoCopy, counting each
// no-copy view served as one read op (it is one block read — the paper's
// "SST reads" metric must not go dark under mmap).
type countingFileNoCopy struct {
	countingFile
	nc NoCopyReaderAt
}

func (f *countingFileNoCopy) ReadAtNoCopy(off, n int64) ([]byte, error) {
	p, err := f.nc.ReadAtNoCopy(off, n)
	if err != nil {
		return nil, err
	}
	f.stats.ReadOps.Add(1)
	f.stats.ReadBytes.Add(int64(len(p)))
	return p, nil
}

func (f *countingFile) ReadAt(p []byte, off int64) (int, error) {
	n, err := f.File.ReadAt(p, off)
	f.stats.ReadOps.Add(1)
	f.stats.ReadBytes.Add(int64(n))
	return n, err
}

func (f *countingFile) Write(p []byte) (int, error) {
	n, err := f.File.Write(p)
	f.stats.WriteOps.Add(1)
	f.stats.WriteBytes.Add(int64(n))
	return n, err
}

func (f *countingFile) WriteAt(p []byte, off int64) (int, error) {
	n, err := f.File.WriteAt(p, off)
	f.stats.WriteOps.Add(1)
	f.stats.WriteBytes.Add(int64(n))
	return n, err
}
