package vfs

import (
	"errors"
	"math/rand"
	"strings"
	"sync"
)

// ErrInjected is returned by FaultFS when a scheduled fault fires.
var ErrInjected = errors.New("vfs: injected fault")

// ErrNoSpace is an injectable out-of-space error; the LSM error handler
// classifies it separately from generic I/O failures.
var ErrNoSpace = errors.New("vfs: no space left on device")

// FaultFS wraps an FS and fails operations according to a programmable
// schedule. It is used by robustness tests (WAL replay after torn writes,
// compaction failure handling, background error recovery, etc.).
//
// Deterministic countdowns (FailAfterWrites, FailCreates, FailSyncs,
// FailRemoves, FailRenames) fire first; independently, FailProbability adds
// a seeded probabilistic failure roll on every interceptable operation so
// stress tests can exercise mixed fault schedules. Target restricts all
// injection to files whose names contain a substring (e.g. ".sst" to fault
// only table I/O while the WAL stays healthy).
type FaultFS struct {
	FS

	mu sync.Mutex
	// failAfterWrites fails every write once the countdown reaches zero.
	// A negative value disables injection.
	failAfterWrites int
	// failCreates fails the next Create calls while positive.
	failCreates int
	// failReads fails every ReadAt while true.
	failReads bool
	// failSyncs / failRemoves / failRenames fail the next n matching calls.
	failSyncs   int
	failRemoves int
	failRenames int
	// corruptWrites silently flips one byte in each of the next n writes:
	// the write "succeeds" but persists damaged bytes, the failure mode
	// ParanoidChecks exists to catch.
	corruptWrites int
	// prob, when positive, fails each operation independently with this
	// probability, drawn from rng.
	prob float64
	rng  *rand.Rand
	// target restricts injection to file names containing this substring;
	// empty matches everything.
	target string
	// err is the error injected faults return.
	err error
}

// NewFault wraps fs with fault injection disabled.
func NewFault(fs FS) *FaultFS {
	return &FaultFS{FS: fs, failAfterWrites: -1, err: ErrInjected}
}

// FailAfterWrites arranges for every write after the next n to fail.
func (f *FaultFS) FailAfterWrites(n int) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.failAfterWrites = n
}

// FailCreates arranges for the next n Create calls to fail.
func (f *FaultFS) FailCreates(n int) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.failCreates = n
}

// FailSyncs arranges for the next n Sync calls to fail.
func (f *FaultFS) FailSyncs(n int) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.failSyncs = n
}

// FailRemoves arranges for the next n Remove calls to fail.
func (f *FaultFS) FailRemoves(n int) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.failRemoves = n
}

// FailRenames arranges for the next n Rename calls to fail.
func (f *FaultFS) FailRenames(n int) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.failRenames = n
}

// CorruptWrites arranges for the next n writes (to targeted files) to
// silently flip one byte: the caller sees success, the medium keeps garbage.
func (f *FaultFS) CorruptWrites(n int) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.corruptWrites = n
}

// SetFailReads toggles failing all reads.
func (f *FaultFS) SetFailReads(fail bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.failReads = fail
}

// FailProbability makes every interceptable operation fail independently
// with probability p, using a deterministic seeded source. p <= 0 disables
// the probabilistic mode.
func (f *FaultFS) FailProbability(seed int64, p float64) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.prob = p
	f.rng = rand.New(rand.NewSource(seed))
}

// Target restricts fault injection to files whose names contain substr.
// The empty string (the default) targets every file.
func (f *FaultFS) Target(substr string) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.target = substr
}

// SetInjectedError changes the error injected faults return (e.g. ErrNoSpace
// to simulate a full disk). Nil restores ErrInjected.
func (f *FaultFS) SetInjectedError(err error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if err == nil {
		err = ErrInjected
	}
	f.err = err
}

// Reset disables all fault injection.
func (f *FaultFS) Reset() {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.failAfterWrites = -1
	f.failCreates = 0
	f.failReads = false
	f.failSyncs = 0
	f.failRemoves = 0
	f.failRenames = 0
	f.corruptWrites = 0
	f.prob = 0
	f.target = ""
	f.err = ErrInjected
}

// matches reports whether name is subject to injection. Caller holds f.mu.
func (f *FaultFS) matchesLocked(name string) bool {
	return f.target == "" || strings.Contains(name, f.target)
}

// roll applies the probabilistic mode. Caller holds f.mu.
func (f *FaultFS) rollLocked() bool {
	return f.prob > 0 && f.rng.Float64() < f.prob
}

// injectErrLocked returns the configured injection error. Caller holds f.mu.
func (f *FaultFS) injectErrLocked() error { return f.err }

func (f *FaultFS) writeFault(name string) (corrupt bool, err error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if !f.matchesLocked(name) {
		return false, nil
	}
	if f.failAfterWrites >= 0 {
		if f.failAfterWrites == 0 {
			return false, f.injectErrLocked()
		}
		f.failAfterWrites--
	}
	if f.corruptWrites > 0 {
		f.corruptWrites--
		return true, nil
	}
	if f.rollLocked() {
		return false, f.injectErrLocked()
	}
	return false, nil
}

func (f *FaultFS) readFault(name string) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if !f.matchesLocked(name) {
		return nil
	}
	if f.failReads || f.rollLocked() {
		return f.injectErrLocked()
	}
	return nil
}

func (f *FaultFS) syncFault(name string) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if !f.matchesLocked(name) {
		return nil
	}
	if f.failSyncs > 0 {
		f.failSyncs--
		return f.injectErrLocked()
	}
	if f.rollLocked() {
		return f.injectErrLocked()
	}
	return nil
}

// Create implements FS.
func (f *FaultFS) Create(name string) (File, error) {
	f.mu.Lock()
	if f.matchesLocked(name) {
		if f.failCreates > 0 {
			f.failCreates--
			err := f.injectErrLocked()
			f.mu.Unlock()
			return nil, err
		}
		if f.rollLocked() {
			err := f.injectErrLocked()
			f.mu.Unlock()
			return nil, err
		}
	}
	f.mu.Unlock()
	file, err := f.FS.Create(name)
	if err != nil {
		return nil, err
	}
	return &faultFile{File: file, fs: f, name: name}, nil
}

// Open implements FS.
func (f *FaultFS) Open(name string) (File, error) {
	file, err := f.FS.Open(name)
	if err != nil {
		return nil, err
	}
	return &faultFile{File: file, fs: f, name: name}, nil
}

// Remove implements FS.
func (f *FaultFS) Remove(name string) error {
	f.mu.Lock()
	if f.matchesLocked(name) {
		if f.failRemoves > 0 {
			f.failRemoves--
			err := f.injectErrLocked()
			f.mu.Unlock()
			return err
		}
		if f.rollLocked() {
			err := f.injectErrLocked()
			f.mu.Unlock()
			return err
		}
	}
	f.mu.Unlock()
	return f.FS.Remove(name)
}

// Rename implements FS.
func (f *FaultFS) Rename(oldname, newname string) error {
	f.mu.Lock()
	if f.matchesLocked(oldname) || f.matchesLocked(newname) {
		if f.failRenames > 0 {
			f.failRenames--
			err := f.injectErrLocked()
			f.mu.Unlock()
			return err
		}
		if f.rollLocked() {
			err := f.injectErrLocked()
			f.mu.Unlock()
			return err
		}
	}
	f.mu.Unlock()
	return f.FS.Rename(oldname, newname)
}

type faultFile struct {
	File
	fs   *FaultFS
	name string
}

// corruptCopy returns p with one byte flipped (empty writes pass through).
func corruptCopy(p []byte) []byte {
	if len(p) == 0 {
		return p
	}
	c := append([]byte(nil), p...)
	c[len(c)/2] ^= 0xFF
	return c
}

func (f *faultFile) Write(p []byte) (int, error) {
	corrupt, err := f.fs.writeFault(f.name)
	if err != nil {
		return 0, err
	}
	if corrupt {
		n, err := f.File.Write(corruptCopy(p))
		if n > len(p) {
			n = len(p)
		}
		return n, err
	}
	return f.File.Write(p)
}

func (f *faultFile) WriteAt(p []byte, off int64) (int, error) {
	corrupt, err := f.fs.writeFault(f.name)
	if err != nil {
		return 0, err
	}
	if corrupt {
		n, err := f.File.WriteAt(corruptCopy(p), off)
		if n > len(p) {
			n = len(p)
		}
		return n, err
	}
	return f.File.WriteAt(p, off)
}

func (f *faultFile) ReadAt(p []byte, off int64) (int, error) {
	if err := f.fs.readFault(f.name); err != nil {
		return 0, err
	}
	return f.File.ReadAt(p, off)
}

func (f *faultFile) Sync() error {
	if err := f.fs.syncFault(f.name); err != nil {
		return err
	}
	return f.File.Sync()
}
