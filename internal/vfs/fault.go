package vfs

import (
	"errors"
	"sync"
)

// ErrInjected is returned by FaultFS when a scheduled fault fires.
var ErrInjected = errors.New("vfs: injected fault")

// FaultFS wraps an FS and fails operations according to a programmable
// schedule. It is used by robustness tests (WAL replay after torn writes,
// compaction failure handling, etc.).
type FaultFS struct {
	FS

	mu sync.Mutex
	// failAfterWrites fails every write once the countdown reaches zero.
	// A negative value disables injection.
	failAfterWrites int
	// failCreates fails the next Create calls while positive.
	failCreates int
	// failReads fails every ReadAt while true.
	failReads bool
}

// NewFault wraps fs with fault injection disabled.
func NewFault(fs FS) *FaultFS {
	return &FaultFS{FS: fs, failAfterWrites: -1}
}

// FailAfterWrites arranges for every write after the next n to fail.
func (f *FaultFS) FailAfterWrites(n int) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.failAfterWrites = n
}

// FailCreates arranges for the next n Create calls to fail.
func (f *FaultFS) FailCreates(n int) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.failCreates = n
}

// SetFailReads toggles failing all reads.
func (f *FaultFS) SetFailReads(fail bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.failReads = fail
}

// Reset disables all fault injection.
func (f *FaultFS) Reset() {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.failAfterWrites = -1
	f.failCreates = 0
	f.failReads = false
}

func (f *FaultFS) writeAllowed() bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.failAfterWrites < 0 {
		return true
	}
	if f.failAfterWrites == 0 {
		return false
	}
	f.failAfterWrites--
	return true
}

func (f *FaultFS) readAllowed() bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return !f.failReads
}

// Create implements FS.
func (f *FaultFS) Create(name string) (File, error) {
	f.mu.Lock()
	if f.failCreates > 0 {
		f.failCreates--
		f.mu.Unlock()
		return nil, ErrInjected
	}
	f.mu.Unlock()
	file, err := f.FS.Create(name)
	if err != nil {
		return nil, err
	}
	return &faultFile{File: file, fs: f}, nil
}

// Open implements FS.
func (f *FaultFS) Open(name string) (File, error) {
	file, err := f.FS.Open(name)
	if err != nil {
		return nil, err
	}
	return &faultFile{File: file, fs: f}, nil
}

type faultFile struct {
	File
	fs *FaultFS
}

func (f *faultFile) Write(p []byte) (int, error) {
	if !f.fs.writeAllowed() {
		return 0, ErrInjected
	}
	return f.File.Write(p)
}

func (f *faultFile) WriteAt(p []byte, off int64) (int, error) {
	if !f.fs.writeAllowed() {
		return 0, ErrInjected
	}
	return f.File.WriteAt(p, off)
}

func (f *faultFile) ReadAt(p []byte, off int64) (int, error) {
	if !f.fs.readAllowed() {
		return 0, ErrInjected
	}
	return f.File.ReadAt(p, off)
}
