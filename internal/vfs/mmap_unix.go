//go:build unix

package vfs

import (
	"errors"
	"os"
	"syscall"
)

// mmapFile maps the whole of f read-only. Empty files are unmappable and
// report an error, which callers treat as "fall back to ReadAt".
func mmapFile(f *os.File) ([]byte, error) {
	info, err := f.Stat()
	if err != nil {
		return nil, err
	}
	size := info.Size()
	if size <= 0 {
		return nil, errors.New("vfs: cannot map empty file")
	}
	if size != int64(int(size)) {
		return nil, errors.New("vfs: file too large to map")
	}
	return syscall.Mmap(int(f.Fd()), 0, int(size), syscall.PROT_READ, syscall.MAP_SHARED)
}

// munmap releases a mapping established by mmapFile. Best effort: the only
// caller is Close, where the descriptor is going away regardless.
func munmap(data []byte) {
	_ = syscall.Munmap(data)
}
