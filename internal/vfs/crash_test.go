package vfs

import (
	"bytes"
	"errors"
	"testing"
)

func crashRead(t *testing.T, fs FS, name string) []byte {
	t.Helper()
	f, err := fs.Open(name)
	if err != nil {
		t.Fatalf("Open(%s): %v", name, err)
	}
	defer f.Close()
	return readAll(f)
}

// TestCrashDiscardsUnsynced checks the core contract: synced bytes survive a
// crash, unsynced bytes do not.
func TestCrashDiscardsUnsynced(t *testing.T) {
	cfs := NewCrash(NewMem())
	f, err := cfs.Create("db/a")
	if err != nil {
		t.Fatal(err)
	}
	f.Write([]byte("durable"))
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	f.Write([]byte("-volatile"))

	g, _ := cfs.Create("db/b")
	g.Write([]byte("never-synced"))

	// The live view sees everything.
	if got := crashRead(t, cfs, "db/a"); string(got) != "durable-volatile" {
		t.Fatalf("live view = %q", got)
	}

	after := cfs.Crash(CrashOptions{})
	if got := crashRead(t, after, "db/a"); string(got) != "durable" {
		t.Fatalf("post-crash a = %q, want synced prefix only", got)
	}
	if got := crashRead(t, after, "db/b"); len(got) != 0 {
		t.Fatalf("post-crash b = %q, want empty (never synced)", got)
	}
}

// TestCrashPreExistingFilesDurable checks files present before wrapping
// survive untouched.
func TestCrashPreExistingFilesDurable(t *testing.T) {
	mem := NewMem()
	f, _ := mem.Create("db/old")
	f.Write([]byte("ancient"))
	f.Close()

	cfs := NewCrash(mem)
	after := cfs.Crash(CrashOptions{})
	if got := crashRead(t, after, "db/old"); string(got) != "ancient" {
		t.Fatalf("pre-existing file = %q", got)
	}
}

// TestCrashTornTailSectorAligned checks torn tails keep a sector-aligned
// prefix of the unsynced suffix, deterministically per seed.
func TestCrashTornTailSectorAligned(t *testing.T) {
	build := func(seed int64) []byte {
		cfs := NewCrash(NewMem())
		f, _ := cfs.Create("db/wal")
		f.Write(bytes.Repeat([]byte{'d'}, 100))
		f.Sync()
		f.Write(bytes.Repeat([]byte{'t'}, 4096))
		return crashRead(t, cfs.Crash(CrashOptions{Seed: seed, KeepTornTail: true, SectorSize: 512}), "db/wal")
	}
	sawTorn := false
	for seed := int64(0); seed < 20; seed++ {
		got := build(seed)
		tail := len(got) - 100
		if tail < 0 || tail > 4096 {
			t.Fatalf("seed %d: post-crash len %d out of range", seed, len(got))
		}
		if tail%512 != 0 {
			t.Fatalf("seed %d: torn tail %d not sector aligned", seed, tail)
		}
		if tail > 0 && tail < 4096 {
			sawTorn = true
		}
		again := build(seed)
		if !bytes.Equal(got, again) {
			t.Fatalf("seed %d: crash not deterministic (%d vs %d bytes)", seed, len(got), len(again))
		}
	}
	if !sawTorn {
		t.Fatal("no seed produced a partial torn tail")
	}
}

// TestCrashKeepAllProbability checks KeepAllProb=1 preserves unsynced tails
// (reordered completion) and KeepAllProb=0 with no torn tails drops them.
func TestCrashKeepAllProbability(t *testing.T) {
	mk := func(p float64) []byte {
		cfs := NewCrash(NewMem())
		f, _ := cfs.Create("db/x")
		f.Write([]byte("base"))
		f.Sync()
		f.Write([]byte("tail"))
		return crashRead(t, cfs.Crash(CrashOptions{Seed: 7, KeepAllProb: p}), "db/x")
	}
	if got := mk(1.0); string(got) != "basetail" {
		t.Fatalf("KeepAllProb=1: %q", got)
	}
	if got := mk(0.0); string(got) != "base" {
		t.Fatalf("KeepAllProb=0: %q", got)
	}
}

// TestCrashArmKillsDevice checks the armed crash point fails the (n+1)-th
// durable operation and every operation after it.
func TestCrashArmKillsDevice(t *testing.T) {
	cfs := NewCrash(NewMem())
	f, err := cfs.Create("db/a") // op 1
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("x")); err != nil { // op 2
		t.Fatal(err)
	}

	cfs.ArmCrash(1)
	if err := f.Sync(); err != nil { // op 3: one more allowed
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("y")); !errors.Is(err, ErrCrashed) {
		t.Fatalf("write past crash point: err=%v, want ErrCrashed", err)
	}
	if !cfs.Crashed() {
		t.Fatal("Crashed() = false after trip")
	}
	// Everything is dead now.
	if _, err := cfs.Create("db/b"); !errors.Is(err, ErrCrashed) {
		t.Fatalf("Create after crash: %v", err)
	}
	if _, err := cfs.Open("db/a"); !errors.Is(err, ErrCrashed) {
		t.Fatalf("Open after crash: %v", err)
	}
	if err := cfs.Remove("db/a"); !errors.Is(err, ErrCrashed) {
		t.Fatalf("Remove after crash: %v", err)
	}
	if cfs.Exists("db/a") {
		t.Fatal("Exists reported true on dead device")
	}
	// The synced byte survives; the post-trip write does not.
	after := cfs.Crash(CrashOptions{})
	if got := crashRead(t, after, "db/a"); string(got) != "x" {
		t.Fatalf("post-crash contents %q, want %q", got, "x")
	}
}

// TestCrashOpCountSweepable checks OpCount counts exactly the gated ops so a
// sweep can arm at every point.
func TestCrashOpCountSweepable(t *testing.T) {
	cfs := NewCrash(NewMem())
	f, _ := cfs.Create("db/a") // 1
	f.Write([]byte("one"))     // 2
	f.Sync()                   // 3
	cfs.Rename("db/a", "db/b") // 4
	cfs.Remove("db/b")         // 5
	if n := cfs.OpCount(); n != 5 {
		t.Fatalf("OpCount = %d, want 5", n)
	}
}

// TestCrashRenameTracksDurable checks the durable snapshot follows a rename
// (the manifest tmp+rename pattern).
func TestCrashRenameTracksDurable(t *testing.T) {
	cfs := NewCrash(NewMem())
	f, _ := cfs.Create("db/MANIFEST.tmp")
	f.Write([]byte("state-v2"))
	f.Sync()
	f.Close()
	if err := cfs.Rename("db/MANIFEST.tmp", "db/MANIFEST"); err != nil {
		t.Fatal(err)
	}
	after := cfs.Crash(CrashOptions{})
	if got := crashRead(t, after, "db/MANIFEST"); string(got) != "state-v2" {
		t.Fatalf("post-crash MANIFEST = %q", got)
	}
	if after.Exists("db/MANIFEST.tmp") {
		t.Fatal("tmp survived its rename")
	}
}
