package vfs

import (
	"sync/atomic"
	"time"
)

// LatencyFS wraps an FS and charges every data operation a simulated device
// cost: a fixed per-operation access latency plus transfer time at a fixed
// bandwidth. Layered over MemFS it turns the in-memory store into a
// machine-independent model of a real drive, which the compaction benchmark
// uses to measure I/O-overlap effects (parallel subcompactions hide device
// waits behind merge compute even on a single core). Metadata operations are
// free: the LSM's data path dominates on real devices too.
//
// Charges accumulate as per-file debt and are slept off in chunks of at
// least minSleep: the OS timer cannot deliver microsecond sleeps, so paying
// per call would overcharge every operation by the timer slack. Debt
// batching keeps the simulated totals accurate while issuing sleeps long
// enough for the timer to honour.
type LatencyFS struct {
	fs          FS
	access      time.Duration
	bytesPerSec int64
}

// minSleep is the smallest sleep actually issued; accumulated debt below it
// is carried forward on the file.
const minSleep = 2 * time.Millisecond

// NewLatency wraps fs with a simulated device: access is charged per read or
// write call, and transfers are paced at bytesPerSec (<= 0 disables pacing).
func NewLatency(fs FS, access time.Duration, bytesPerSec int64) *LatencyFS {
	return &LatencyFS{fs: fs, access: access, bytesPerSec: bytesPerSec}
}

func (l *LatencyFS) Create(name string) (File, error) {
	f, err := l.fs.Create(name)
	if err != nil {
		return nil, err
	}
	return &latencyFile{f: f, fs: l}, nil
}

func (l *LatencyFS) Open(name string) (File, error) {
	f, err := l.fs.Open(name)
	if err != nil {
		return nil, err
	}
	return &latencyFile{f: f, fs: l}, nil
}

func (l *LatencyFS) Remove(name string) error             { return l.fs.Remove(name) }
func (l *LatencyFS) Rename(oldname, newname string) error { return l.fs.Rename(oldname, newname) }
func (l *LatencyFS) List(dir string) ([]string, error)    { return l.fs.List(dir) }
func (l *LatencyFS) MkdirAll(dir string) error            { return l.fs.MkdirAll(dir) }
func (l *LatencyFS) Exists(name string) bool              { return l.fs.Exists(name) }

type latencyFile struct {
	f    File
	fs   *LatencyFS
	debt atomic.Int64 // simulated nanoseconds owed but not yet slept
}

// charge adds the simulated cost of an n-byte transfer to the file's debt
// and sleeps it off once it reaches minSleep. flush forces the sleep (Sync
// settles all outstanding debt, like a real drive draining its queue).
func (f *latencyFile) charge(n int, flush bool) {
	l := f.fs
	d := int64(l.access)
	if l.bytesPerSec > 0 {
		d += int64(n) * int64(time.Second) / l.bytesPerSec
	}
	owed := f.debt.Add(d)
	if owed < int64(minSleep) && !flush {
		return
	}
	if f.debt.CompareAndSwap(owed, 0) {
		time.Sleep(time.Duration(owed))
	}
}

func (f *latencyFile) Write(p []byte) (int, error) {
	f.charge(len(p), false)
	return f.f.Write(p)
}

func (f *latencyFile) WriteAt(p []byte, off int64) (int, error) {
	f.charge(len(p), false)
	return f.f.WriteAt(p, off)
}

func (f *latencyFile) ReadAt(p []byte, off int64) (int, error) {
	f.charge(len(p), false)
	return f.f.ReadAt(p, off)
}

func (f *latencyFile) Sync() error {
	f.charge(0, true)
	return f.f.Sync()
}

func (f *latencyFile) Close() error         { return f.f.Close() }
func (f *latencyFile) Size() (int64, error) { return f.f.Size() }
