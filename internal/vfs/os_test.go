package vfs

import (
	"bytes"
	"errors"
	"path/filepath"
	"testing"
	"time"
)

// writeFile creates name on fs with content, synced and closed.
func writeFile(t *testing.T, fs FS, name string, content []byte) {
	t.Helper()
	f, err := fs.Create(name)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write(content); err != nil {
		t.Fatal(err)
	}
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestOSFSBasicOps(t *testing.T) {
	dir := t.TempDir()
	fs := NewOS()
	name := filepath.Join(dir, "a.txt")
	writeFile(t, fs, name, []byte("hello"))

	if !fs.Exists(name) {
		t.Fatal("created file does not exist")
	}
	f, err := fs.Open(name)
	if err != nil {
		t.Fatal(err)
	}
	if size, err := f.Size(); err != nil || size != 5 {
		t.Fatalf("Size = %d, %v", size, err)
	}
	buf := make([]byte, 5)
	if _, err := f.ReadAt(buf, 0); err != nil || string(buf) != "hello" {
		t.Fatalf("ReadAt = %q, %v", buf, err)
	}
	f.Close()

	names, err := fs.List(dir)
	if err != nil || len(names) != 1 || names[0] != "a.txt" {
		t.Fatalf("List = %v, %v", names, err)
	}

	renamed := filepath.Join(dir, "b.txt")
	if err := fs.Rename(name, renamed); err != nil {
		t.Fatal(err)
	}
	if fs.Exists(name) || !fs.Exists(renamed) {
		t.Fatal("rename did not move the file")
	}
	if err := fs.Remove(renamed); err != nil {
		t.Fatal(err)
	}
	if fs.Exists(renamed) {
		t.Fatal("removed file still exists")
	}
}

func TestOSFSNotExistErrors(t *testing.T) {
	dir := t.TempDir()
	fs := NewOS()
	missing := filepath.Join(dir, "missing")
	var ne *NotExistError
	if _, err := fs.Open(missing); !errors.As(err, &ne) {
		t.Fatalf("Open(missing) = %v, want NotExistError", err)
	}
	if err := fs.Remove(missing); !errors.As(err, &ne) {
		t.Fatalf("Remove(missing) = %v, want NotExistError", err)
	}
}

func TestOSFSReadAtNoCopy(t *testing.T) {
	dir := t.TempDir()
	fs := NewOS()
	content := bytes.Repeat([]byte("0123456789"), 100)
	name := filepath.Join(dir, "t.dat")
	writeFile(t, fs, name, content)

	f, err := fs.Open(name)
	if err != nil {
		t.Fatal(err)
	}
	nc, ok := f.(NoCopyReaderAt)
	if !ok {
		t.Fatal("OSFS read handle does not expose NoCopyReaderAt")
	}
	view, err := nc.ReadAtNoCopy(10, 20)
	if err != nil {
		t.Skipf("mmap unavailable on this platform: %v", err)
	}
	if !bytes.Equal(view, content[10:30]) {
		t.Fatalf("view = %q", view)
	}
	// Out-of-range requests must fail rather than fault.
	for _, c := range [][2]int64{{-1, 4}, {0, -1}, {int64(len(content)), 1}, {0, int64(len(content)) + 1}} {
		if _, err := nc.ReadAtNoCopy(c[0], c[1]); err == nil {
			t.Fatalf("ReadAtNoCopy(%d, %d) out of range accepted", c[0], c[1])
		}
	}
	// Views must survive the file being unlinked (compaction deletes tables
	// that long-lived readers still serve from).
	if err := fs.Remove(name); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(view, content[10:30]) {
		t.Fatal("view corrupted after unlink")
	}
	if v2, err := nc.ReadAtNoCopy(0, 10); err != nil || !bytes.Equal(v2, content[:10]) {
		t.Fatalf("post-unlink view = %q, %v", v2, err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := nc.ReadAtNoCopy(0, 10); err == nil {
		t.Fatal("ReadAtNoCopy succeeded on a closed file")
	}
}

func TestOSFSNoCopyEmptyFile(t *testing.T) {
	dir := t.TempDir()
	fs := NewOS()
	name := filepath.Join(dir, "empty")
	writeFile(t, fs, name, nil)
	f, err := fs.Open(name)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	// An empty file cannot be mapped; the capability must fail cleanly so
	// callers fall back to ReadAt.
	if _, err := f.(NoCopyReaderAt).ReadAtNoCopy(0, 0); err == nil {
		t.Fatal("mapped an empty file")
	}
}

// TestCountingForwardsNoCopy checks the capability-picking wrapper: the
// engine wraps every FS in CountingFS, and no-copy views must both survive
// the wrapping and count as read ops.
func TestCountingForwardsNoCopy(t *testing.T) {
	dir := t.TempDir()
	counting := NewCounting(NewOS())
	content := bytes.Repeat([]byte("x"), 4096)
	name := filepath.Join(dir, "t.dat")
	writeFile(t, counting, name, content)

	f, err := counting.Open(name)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	nc, ok := f.(NoCopyReaderAt)
	if !ok {
		t.Fatal("CountingFS over OSFS dropped NoCopyReaderAt")
	}
	before := counting.Stats.Snapshot()
	view, err := nc.ReadAtNoCopy(0, 1024)
	if err != nil {
		t.Skipf("mmap unavailable: %v", err)
	}
	if len(view) != 1024 {
		t.Fatalf("view length = %d", len(view))
	}
	delta := counting.Stats.Snapshot().Sub(before)
	if delta.ReadOps != 1 || delta.ReadBytes != 1024 {
		t.Fatalf("no-copy read not counted: %+v", delta)
	}
}

// TestWrappersFallBackToReadAt checks that fault, latency and crash wrappers
// over OSFS do not advertise the no-copy capability (their files intercept
// ReadAt, so serving unintercepted views would bypass them) while plain
// reads keep working through the composed stack.
func TestWrappersFallBackToReadAt(t *testing.T) {
	dir := t.TempDir()
	content := []byte("wrapped content")

	wrappers := map[string]FS{
		"fault":               NewFault(NewOS()),
		"latency":             NewLatency(NewOS(), time.Microsecond, 0),
		"crash":               NewCrash(NewOS()),
		"counting-over-fault": NewCounting(NewFault(NewOS())),
	}
	for wname, fs := range wrappers {
		name := filepath.Join(dir, wname+".dat")
		writeFile(t, fs, name, content)
		f, err := fs.Open(name)
		if err != nil {
			t.Fatal(err)
		}
		if _, ok := f.(NoCopyReaderAt); ok {
			t.Errorf("%s wrapper over OSFS leaked NoCopyReaderAt", wname)
		}
		buf := make([]byte, len(content))
		if _, err := f.ReadAt(buf, 0); err != nil || !bytes.Equal(buf, content) {
			t.Errorf("%s: ReadAt = %q, %v", wname, buf, err)
		}
		f.Close()
	}

	// The counting stack still counts through the composition.
	cfs := wrappers["counting-over-fault"].(*CountingFS)
	if ops := cfs.Stats.ReadOps.Load(); ops == 0 {
		t.Error("composed counting stack recorded no reads")
	}
}

// TestCrashFSRootScopedOverOS runs the crash model on the real file system:
// SetRoot bounds the post-crash enumeration to the test directory, synced
// contents survive, unsynced tails are lost.
func TestCrashFSRootScopedOverOS(t *testing.T) {
	dir := t.TempDir()
	crash := NewCrash(NewOS())
	crash.SetRoot(dir)

	durable := filepath.Join(dir, "durable")
	writeFile(t, crash, durable, []byte("synced"))

	torn := filepath.Join(dir, "torn")
	f, err := crash.Create(torn)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("synced-part")); err != nil {
		t.Fatal(err)
	}
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("-unsynced-tail")); err != nil {
		t.Fatal(err)
	}

	disk := crash.Crash(CrashOptions{})
	df, err := disk.Open(durable)
	if err != nil {
		t.Fatalf("durable file lost: %v", err)
	}
	if got := readAll(df); string(got) != "synced" {
		t.Fatalf("durable contents = %q", got)
	}
	tf, err := disk.Open(torn)
	if err != nil {
		t.Fatalf("torn file lost entirely: %v", err)
	}
	if got := readAll(tf); string(got) != "synced-part" {
		t.Fatalf("unsynced tail survived: %q", got)
	}
	if _, err := crash.Open(durable); !errors.Is(err, ErrCrashed) {
		t.Fatalf("post-crash Open = %v, want ErrCrashed", err)
	}
}
