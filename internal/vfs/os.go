package vfs

import (
	"os"
	"path/filepath"
)

// OSFS implements FS over the operating system's file system. It lets the
// engine and tools run against real disks; tests and experiments use MemFS.
type OSFS struct{}

// NewOS returns an OS-backed file system.
func NewOS() OSFS { return OSFS{} }

// Create implements FS.
func (OSFS) Create(name string) (File, error) {
	f, err := os.OpenFile(name, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return nil, err
	}
	return osFile{f}, nil
}

// Open implements FS.
func (OSFS) Open(name string) (File, error) {
	f, err := os.OpenFile(name, os.O_RDWR, 0)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, &NotExistError{Name: name}
		}
		return nil, err
	}
	return osFile{f}, nil
}

// Remove implements FS.
func (OSFS) Remove(name string) error {
	err := os.Remove(name)
	if os.IsNotExist(err) {
		return &NotExistError{Name: name}
	}
	return err
}

// Rename implements FS.
func (OSFS) Rename(oldname, newname string) error { return os.Rename(oldname, newname) }

// List implements FS.
func (OSFS) List(dir string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		if !e.IsDir() {
			names = append(names, e.Name())
		}
	}
	return names, nil
}

// MkdirAll implements FS.
func (OSFS) MkdirAll(dir string) error { return os.MkdirAll(filepath.Clean(dir), 0o755) }

// Exists implements FS.
func (OSFS) Exists(name string) bool {
	_, err := os.Stat(name)
	return err == nil
}

type osFile struct{ f *os.File }

func (o osFile) Write(p []byte) (int, error)              { return o.f.Write(p) }
func (o osFile) WriteAt(p []byte, off int64) (int, error) { return o.f.WriteAt(p, off) }
func (o osFile) ReadAt(p []byte, off int64) (int, error)  { return o.f.ReadAt(p, off) }
func (o osFile) Close() error                             { return o.f.Close() }
func (o osFile) Sync() error                              { return o.f.Sync() }
func (o osFile) Size() (int64, error) {
	info, err := o.f.Stat()
	if err != nil {
		return 0, err
	}
	return info.Size(), nil
}
