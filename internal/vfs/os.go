package vfs

import (
	"os"
	"path/filepath"
	"sync"
)

// OSFS implements FS over the operating system's file system. It lets the
// engine and tools run against real disks; tests and experiments use MemFS.
//
// OSFS honours the engine's durability contract on a real file system:
// Create, Remove and Rename are followed by an fsync of the parent
// directory, so an acked namespace operation (the manifest's atomic
// temp+rename install, WAL creation, obsolete-file deletion) survives a
// power cut — without the parent sync, a crash can roll back the directory
// entry even though the file's own data was fsynced.
//
// Files opened for reading additionally expose the NoCopyReaderAt
// capability, serving pinned zero-copy views from a lazily established
// memory map on platforms that support it.
type OSFS struct{}

// NewOS returns an OS-backed file system.
func NewOS() OSFS { return OSFS{} }

// syncDir fsyncs the directory containing name, making a preceding create,
// remove or rename of name durable.
func syncDir(name string) error {
	d, err := os.Open(filepath.Dir(name))
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}

// Create implements FS. The new directory entry is fsynced before Create
// returns, so the file's existence is as durable as its future contents.
func (OSFS) Create(name string) (File, error) {
	f, err := os.OpenFile(name, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return nil, err
	}
	if err := syncDir(name); err != nil {
		f.Close()
		return nil, err
	}
	return &osFile{f: f}, nil
}

// Open implements FS. Files are opened read-only: every engine open (WAL
// replay, manifest load, SSTable reads) only reads, and a read-only
// descriptor can never corrupt an immutable table.
func (OSFS) Open(name string) (File, error) {
	f, err := os.OpenFile(name, os.O_RDONLY, 0)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, &NotExistError{Name: name}
		}
		return nil, err
	}
	return &osFile{f: f}, nil
}

// Remove implements FS, fsyncing the parent directory so the deletion is
// durable.
func (OSFS) Remove(name string) error {
	err := os.Remove(name)
	if os.IsNotExist(err) {
		return &NotExistError{Name: name}
	}
	if err != nil {
		return err
	}
	return syncDir(name)
}

// Rename implements FS, fsyncing the destination's parent directory (and
// the source's when it differs) so the acked rename survives a crash — the
// durability step the manifest's temp+rename install relies on.
func (OSFS) Rename(oldname, newname string) error {
	if err := os.Rename(oldname, newname); err != nil {
		return err
	}
	if err := syncDir(newname); err != nil {
		return err
	}
	if filepath.Dir(oldname) != filepath.Dir(newname) {
		return syncDir(oldname)
	}
	return nil
}

// List implements FS.
func (OSFS) List(dir string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		if !e.IsDir() {
			names = append(names, e.Name())
		}
	}
	return names, nil
}

// MkdirAll implements FS.
func (OSFS) MkdirAll(dir string) error { return os.MkdirAll(filepath.Clean(dir), 0o755) }

// Exists implements FS.
func (OSFS) Exists(name string) bool {
	_, err := os.Stat(name)
	return err == nil
}

// osFile is an OS-backed file. Read-only handles lazily memory-map the file
// on the first ReadAtNoCopy call (see mmap_unix.go); the mapping covers the
// whole file, which is safe because every no-copy consumer reads immutable,
// fully written tables.
type osFile struct {
	f *os.File

	mu      sync.Mutex
	mapped  []byte // established mapping; nil until first ReadAtNoCopy
	mapErr  error  // sticky mapping failure; don't retry a broken map
	mapDone bool
}

func (o *osFile) Write(p []byte) (int, error)              { return o.f.Write(p) }
func (o *osFile) WriteAt(p []byte, off int64) (int, error) { return o.f.WriteAt(p, off) }
func (o *osFile) ReadAt(p []byte, off int64) (int, error)  { return o.f.ReadAt(p, off) }
func (o *osFile) Sync() error                              { return o.f.Sync() }

func (o *osFile) Close() error {
	o.mu.Lock()
	if o.mapped != nil {
		munmap(o.mapped)
		o.mapped = nil
	}
	o.mapDone = true
	o.mapErr = os.ErrClosed
	o.mu.Unlock()
	return o.f.Close()
}

func (o *osFile) Size() (int64, error) {
	info, err := o.f.Stat()
	if err != nil {
		return 0, err
	}
	return info.Size(), nil
}

// ReadAtNoCopy implements NoCopyReaderAt: it returns a slice of the file's
// memory map, established on first use. The view stays valid until Close —
// on Unix even an unlinked file's pages remain readable while mapped, so
// long-lived table readers survive compaction deleting their file.
func (o *osFile) ReadAtNoCopy(off, n int64) ([]byte, error) {
	o.mu.Lock()
	if !o.mapDone {
		o.mapped, o.mapErr = mmapFile(o.f)
		o.mapDone = true
	}
	data, err := o.mapped, o.mapErr
	o.mu.Unlock()
	if err != nil {
		return nil, err
	}
	if off < 0 || n < 0 || off+n > int64(len(data)) {
		return nil, &outOfRangeError{off: off, n: n, size: int64(len(data))}
	}
	return data[off : off+n : off+n], nil
}

type outOfRangeError struct{ off, n, size int64 }

func (e *outOfRangeError) Error() string {
	return "vfs: no-copy read out of range"
}
