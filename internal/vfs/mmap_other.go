//go:build !unix

package vfs

import (
	"errors"
	"os"
)

// mmapFile reports that memory mapping is unsupported on this platform;
// ReadAtNoCopy then fails and readers fall back to plain ReadAt.
func mmapFile(*os.File) ([]byte, error) {
	return nil, errors.New("vfs: memory mapping unsupported on this platform")
}

func munmap([]byte) {}
