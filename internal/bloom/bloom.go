// Package bloom implements the Bloom filters attached to SSTables.
//
// The filter uses double hashing over a 64-bit FNV-style hash, the standard
// technique from "Less Hashing, Same Performance" (Kirsch & Mitzenmacher),
// with k probes derived from the configured bits-per-key. At the paper's
// default of 10 bits per key the false-positive rate is below 1%, which the
// reward model treats as negligible.
package bloom

import (
	"encoding/binary"
	"math"
)

// Filter is an immutable Bloom filter over a set of keys.
type Filter []byte

// NumProbes derives the optimal probe count for a bits-per-key budget.
func NumProbes(bitsPerKey int) int {
	k := int(float64(bitsPerKey) * math.Ln2)
	if k < 1 {
		k = 1
	}
	if k > 30 {
		k = 30
	}
	return k
}

// Build constructs a filter for keys using bitsPerKey bits per key.
// The returned filter's final byte stores the probe count so readers need no
// out-of-band configuration.
func Build(keys [][]byte, bitsPerKey int) Filter {
	if bitsPerKey < 1 {
		bitsPerKey = 1
	}
	k := NumProbes(bitsPerKey)
	nBits := len(keys) * bitsPerKey
	if nBits < 64 {
		nBits = 64
	}
	nBytes := (nBits + 7) / 8
	nBits = nBytes * 8
	filter := make(Filter, nBytes+1)
	filter[nBytes] = byte(k)
	for _, key := range keys {
		h := hash64(key)
		delta := h>>33 | h<<31
		for i := 0; i < k; i++ {
			bit := h % uint64(nBits)
			filter[bit/8] |= 1 << (bit % 8)
			h += delta
		}
	}
	return filter
}

// MayContain reports whether key may be in the set. False positives are
// possible; false negatives are not.
func (f Filter) MayContain(key []byte) bool {
	if len(f) < 2 {
		return false
	}
	nBits := uint64((len(f) - 1) * 8)
	k := int(f[len(f)-1])
	if k > 30 || k < 1 {
		// Corrupt filter: fail open so correctness is preserved.
		return true
	}
	h := hash64(key)
	delta := h>>33 | h<<31
	for i := 0; i < k; i++ {
		bit := h % nBits
		if f[bit/8]&(1<<(bit%8)) == 0 {
			return false
		}
		h += delta
	}
	return true
}

// FalsePositiveRate estimates the theoretical FPR for a bits-per-key budget.
func FalsePositiveRate(bitsPerKey int) float64 {
	if bitsPerKey <= 0 {
		return 1
	}
	k := float64(NumProbes(bitsPerKey))
	return math.Pow(1-math.Exp(-k/float64(bitsPerKey)), k)
}

// hash64 is a 64-bit FNV-1a hash with an avalanche finalizer. It is fast,
// allocation-free, and good enough for Bloom probing.
func hash64(b []byte) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for len(b) >= 8 {
		h = (h ^ binary.LittleEndian.Uint64(b)) * prime64
		b = b[8:]
	}
	for _, c := range b {
		h = (h ^ uint64(c)) * prime64
	}
	// Finalizer from MurmurHash3 to improve bit diffusion.
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	h *= 0xc4ceb9fe1a85ec53
	h ^= h >> 33
	return h
}

// Hash64 exposes the filter's hash for other packages (sharding, sketches)
// so the whole system uses one well-tested hash function.
func Hash64(b []byte) uint64 { return hash64(b) }
