package bloom

import (
	"fmt"
	"testing"
	"testing/quick"
)

func keys(n int) [][]byte {
	out := make([][]byte, n)
	for i := range out {
		out[i] = []byte(fmt.Sprintf("key%08d", i))
	}
	return out
}

func TestNoFalseNegatives(t *testing.T) {
	ks := keys(10_000)
	f := Build(ks, 10)
	for _, k := range ks {
		if !f.MayContain(k) {
			t.Fatalf("false negative for %q", k)
		}
	}
}

func TestFalsePositiveRateNear1Percent(t *testing.T) {
	ks := keys(10_000)
	f := Build(ks, 10)
	fp := 0
	const probes = 20_000
	for i := 0; i < probes; i++ {
		if f.MayContain([]byte(fmt.Sprintf("absent%08d", i))) {
			fp++
		}
	}
	rate := float64(fp) / probes
	if rate > 0.03 {
		t.Fatalf("FPR = %.4f, want ≈0.01 at 10 bits/key", rate)
	}
}

func TestTheoreticalFPR(t *testing.T) {
	if r := FalsePositiveRate(10); r < 0.005 || r > 0.02 {
		t.Fatalf("theoretical FPR(10) = %f", r)
	}
	if r := FalsePositiveRate(0); r != 1 {
		t.Fatalf("FPR(0) = %f, want 1", r)
	}
	if FalsePositiveRate(2) <= FalsePositiveRate(10) {
		t.Fatal("FPR should fall with more bits per key")
	}
}

func TestEmptyAndTinyFilters(t *testing.T) {
	f := Build(nil, 10)
	if f.MayContain([]byte("anything")) {
		t.Fatal("empty filter claimed containment")
	}
	var zero Filter
	if zero.MayContain([]byte("k")) {
		t.Fatal("zero-length filter claimed containment")
	}
	one := Build([][]byte{[]byte("solo")}, 10)
	if !one.MayContain([]byte("solo")) {
		t.Fatal("single-key filter lost its key")
	}
}

func TestCorruptProbeCountFailsOpen(t *testing.T) {
	f := Build(keys(10), 10)
	f[len(f)-1] = 200 // invalid probe count
	if !f.MayContain([]byte("key00000001")) {
		t.Fatal("corrupt filter must fail open (no false negatives)")
	}
}

func TestNumProbes(t *testing.T) {
	if k := NumProbes(10); k < 5 || k > 8 {
		t.Fatalf("NumProbes(10) = %d", k)
	}
	if k := NumProbes(1); k != 1 {
		t.Fatalf("NumProbes(1) = %d", k)
	}
	if k := NumProbes(1000); k != 30 {
		t.Fatalf("NumProbes(1000) = %d, want cap 30", k)
	}
}

// TestBuildContainsProperty: any built set has no false negatives,
// regardless of key contents.
func TestBuildContainsProperty(t *testing.T) {
	f := func(ks [][]byte) bool {
		if len(ks) == 0 {
			return true
		}
		filter := Build(ks, 10)
		for _, k := range ks {
			if !filter.MayContain(k) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestHash64Spreads(t *testing.T) {
	seen := map[uint64]bool{}
	for i := 0; i < 1000; i++ {
		h := Hash64([]byte(fmt.Sprintf("k%d", i)))
		if seen[h] {
			t.Fatalf("collision at %d", i)
		}
		seen[h] = true
	}
}
