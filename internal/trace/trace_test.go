package trace

import (
	"fmt"
	"io"
	"testing"

	"adcache/internal/vfs"
	"adcache/internal/workload"
)

func sampleOps(n int) []workload.Op {
	ops := make([]workload.Op, n)
	for i := range ops {
		switch i % 3 {
		case 0:
			ops[i] = workload.Op{Kind: workload.OpGet, Key: []byte(fmt.Sprintf("k%05d", i))}
		case 1:
			ops[i] = workload.Op{Kind: workload.OpScan, Key: []byte(fmt.Sprintf("k%05d", i)), ScanLen: 16}
		case 2:
			ops[i] = workload.Op{Kind: workload.OpPut, Key: []byte(fmt.Sprintf("k%05d", i))}
		}
	}
	return ops
}

func TestWriteReadRoundTrip(t *testing.T) {
	fs := vfs.NewMem()
	f, _ := fs.Create("trace")
	w := NewWriter(f)
	ops := sampleOps(100)
	for _, op := range ops {
		if err := w.Record(op); err != nil {
			t.Fatal(err)
		}
	}
	if w.Len() != 100 {
		t.Fatalf("Len = %d", w.Len())
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	g, _ := fs.Open("trace")
	got, err := ReadAll(g)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 100 {
		t.Fatalf("read %d ops", len(got))
	}
	for i := range got {
		if got[i].Kind != ops[i].Kind || string(got[i].Key) != string(ops[i].Key) ||
			got[i].ScanLen != ops[i].ScanLen {
			t.Fatalf("op %d = %+v, want %+v", i, got[i], ops[i])
		}
	}
}

func TestReaderEOF(t *testing.T) {
	fs := vfs.NewMem()
	f, _ := fs.Create("trace")
	NewWriter(f).Close()
	g, _ := fs.Open("trace")
	r, err := NewReader(g)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Next(); err != io.EOF {
		t.Fatalf("empty trace Next err = %v", err)
	}
}

func TestCorruptTraceRejected(t *testing.T) {
	fs := vfs.NewMem()
	f, _ := fs.Create("trace")
	f.Write([]byte{200, 0, 0, 0, 1, 2, 3}) // frame promises 200 bytes
	g, _ := fs.Open("trace")
	if _, err := ReadAll(g); err != ErrCorrupt {
		t.Fatalf("err = %v, want ErrCorrupt", err)
	}
}

func TestWindows(t *testing.T) {
	var ops []workload.Op
	// 1000 gets, then 1000 mixed scans/writes.
	for i := 0; i < 1000; i++ {
		ops = append(ops, workload.Op{Kind: workload.OpGet, Key: []byte("k")})
	}
	for i := 0; i < 500; i++ {
		ops = append(ops, workload.Op{Kind: workload.OpScan, Key: []byte("k"), ScanLen: 64})
		ops = append(ops, workload.Op{Kind: workload.OpPut, Key: []byte("k")})
	}
	ws := Windows(ops, 1000)
	if len(ws) != 2 {
		t.Fatalf("windows = %d", len(ws))
	}
	if ws[0].Points != 1000 || ws[0].Ops() != 1000 {
		t.Fatalf("window 0 = %+v", ws[0])
	}
	if ws[1].LongScans != 500 || ws[1].Writes != 500 {
		t.Fatalf("window 1 = %+v", ws[1])
	}
	if avg := ws[1].AvgScanLen(); avg != 64 {
		t.Fatalf("avg scan len = %f", avg)
	}
}

func TestWindowsKeepsLargePartial(t *testing.T) {
	ops := sampleOps(700)
	ws := Windows(ops, 1000)
	if len(ws) != 1 {
		t.Fatalf("windows = %d (700 ops should form one partial window)", len(ws))
	}
	tiny := Windows(sampleOps(100), 1000)
	if len(tiny) != 0 {
		t.Fatalf("windows = %d (100 ops should be dropped)", len(tiny))
	}
}

func TestShortVsLongScanSplit(t *testing.T) {
	ops := []workload.Op{
		{Kind: workload.OpScan, ScanLen: workload.ShortScanLen, Key: []byte("k")},
		{Kind: workload.OpScan, ScanLen: workload.LongScanLen, Key: []byte("k")},
	}
	ws := Windows(ops, 2)
	if len(ws) != 1 || ws[0].ShortScans != 1 || ws[0].LongScans != 1 {
		t.Fatalf("window = %+v", ws)
	}
}
