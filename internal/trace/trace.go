// Package trace records and replays workload traces. The paper's
// Background Tuning Module collects workload logs for pretraining (§3.1,
// §3.6); this package provides the log format plus readers the pretraining
// pipeline consumes.
//
// Format: length-framed binary records
//
//	kind(1) scanLen(varint) keyLen(varint) key [endLen(varint) end]
//
// The end-bound suffix is present only for OpScanRange records, so traces
// written before bounded scans were recorded parse unchanged. Values are not
// recorded — admission and partitioning decisions depend on access patterns,
// not payloads — which keeps traces small and free of application data.
package trace

import (
	"encoding/binary"
	"errors"
	"io"

	"adcache/internal/vfs"
	"adcache/internal/workload"
)

// ErrCorrupt reports a malformed trace.
var ErrCorrupt = errors.New("trace: corrupt record")

// Writer appends operations to a trace file.
type Writer struct {
	f   vfs.File
	buf []byte
	n   int64
}

// NewWriter starts a trace in f.
func NewWriter(f vfs.File) *Writer { return &Writer{f: f} }

// Record appends one operation.
func (w *Writer) Record(op workload.Op) error {
	buf := w.buf[:0]
	buf = append(buf, byte(op.Kind))
	buf = binary.AppendUvarint(buf, uint64(op.ScanLen))
	buf = binary.AppendUvarint(buf, uint64(len(op.Key)))
	buf = append(buf, op.Key...)
	if op.Kind == workload.OpScanRange {
		buf = binary.AppendUvarint(buf, uint64(len(op.End)))
		buf = append(buf, op.End...)
	}
	w.buf = buf
	var hdr [4]byte
	binary.LittleEndian.PutUint32(hdr[:], uint32(len(buf)))
	if _, err := w.f.Write(hdr[:]); err != nil {
		return err
	}
	if _, err := w.f.Write(buf); err != nil {
		return err
	}
	w.n++
	return nil
}

// Len reports how many operations were recorded.
func (w *Writer) Len() int64 { return w.n }

// Close syncs and closes the trace.
func (w *Writer) Close() error {
	if err := w.f.Sync(); err != nil {
		return err
	}
	return w.f.Close()
}

// Reader iterates a trace file.
type Reader struct {
	f    vfs.File
	off  int64
	size int64
}

// NewReader opens a trace in f.
func NewReader(f vfs.File) (*Reader, error) {
	size, err := f.Size()
	if err != nil {
		return nil, err
	}
	return &Reader{f: f, size: size}, nil
}

// Next returns the next operation; io.EOF ends the trace.
func (r *Reader) Next() (workload.Op, error) {
	var op workload.Op
	if r.off+4 > r.size {
		return op, io.EOF
	}
	var hdr [4]byte
	if _, err := r.f.ReadAt(hdr[:], r.off); err != nil {
		return op, err
	}
	length := int64(binary.LittleEndian.Uint32(hdr[:]))
	if length == 0 || r.off+4+length > r.size {
		return op, ErrCorrupt
	}
	payload := make([]byte, length)
	if _, err := r.f.ReadAt(payload, r.off+4); err != nil {
		return op, err
	}
	r.off += 4 + length

	op.Kind = workload.OpKind(payload[0])
	rest := payload[1:]
	scanLen, n := binary.Uvarint(rest)
	if n <= 0 {
		return op, ErrCorrupt
	}
	rest = rest[n:]
	keyLen, n := binary.Uvarint(rest)
	if n <= 0 || int(keyLen) > len(rest)-n {
		return op, ErrCorrupt
	}
	op.ScanLen = int(scanLen)
	op.Key = append([]byte(nil), rest[n:n+int(keyLen)]...)
	if op.Kind == workload.OpScanRange {
		rest = rest[n+int(keyLen):]
		endLen, n := binary.Uvarint(rest)
		if n <= 0 || int(endLen) > len(rest)-n {
			return op, ErrCorrupt
		}
		if endLen > 0 {
			op.End = append([]byte(nil), rest[n:n+int(endLen)]...)
		}
	}
	return op, nil
}

// ReadAll collects every operation of a trace.
func ReadAll(f vfs.File) ([]workload.Op, error) {
	r, err := NewReader(f)
	if err != nil {
		return nil, err
	}
	var ops []workload.Op
	for {
		op, err := r.Next()
		if err == io.EOF {
			return ops, nil
		}
		if err != nil {
			return ops, err
		}
		ops = append(ops, op)
	}
}

// WindowFeatures summarises one window of a trace: the workload-mix
// features the pretraining pipeline derives states from.
type WindowFeatures struct {
	Points     int
	ShortScans int
	LongScans  int
	Writes     int
	ScanLenSum int
}

// Ops returns the window's total operation count.
func (w WindowFeatures) Ops() int { return w.Points + w.ShortScans + w.LongScans + w.Writes }

// AvgScanLen returns the mean scan length.
func (w WindowFeatures) AvgScanLen() float64 {
	scans := w.ShortScans + w.LongScans
	if scans == 0 {
		return 0
	}
	return float64(w.ScanLenSum) / float64(scans)
}

// Windows splits a trace into consecutive windows of windowSize operations
// and summarises each (the §3.6 pretraining input). A trailing partial
// window of at least windowSize/2 ops is kept.
func Windows(ops []workload.Op, windowSize int) []WindowFeatures {
	if windowSize <= 0 {
		windowSize = 1000
	}
	var out []WindowFeatures
	var cur WindowFeatures
	for _, op := range ops {
		switch op.Kind {
		case workload.OpGet:
			cur.Points++
		case workload.OpScan:
			if op.ScanLen > (workload.ShortScanLen+workload.LongScanLen)/2 {
				cur.LongScans++
			} else {
				cur.ShortScans++
			}
			cur.ScanLenSum += op.ScanLen
		case workload.OpScanRange:
			// A zero ScanLen means the scan was bounded only by its end
			// key; without a count there is no basis to call it short.
			if op.ScanLen == 0 || op.ScanLen > (workload.ShortScanLen+workload.LongScanLen)/2 {
				cur.LongScans++
			} else {
				cur.ShortScans++
			}
			cur.ScanLenSum += op.ScanLen
		case workload.OpPut, workload.OpDelete:
			cur.Writes++
		}
		if cur.Ops() == windowSize {
			out = append(out, cur)
			cur = WindowFeatures{}
		}
	}
	if cur.Ops() >= windowSize/2 {
		out = append(out, cur)
	}
	return out
}
