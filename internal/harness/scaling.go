package harness

import (
	"fmt"
	"strings"

	"adcache"
	"adcache/internal/workload"
)

// ScalingRow is one (database size, strategy) cell of the invalidation
// scaling study.
type ScalingRow struct {
	NumKeys  int
	Strategy string
	// HitBefore is the hit rate on a read mix before write churn;
	// HitAfter is the hit rate on the same reads after compactions.
	HitBefore float64
	HitAfter  float64
}

// Drop reports the absolute hit-rate loss caused by the churn.
func (r ScalingRow) Drop() float64 { return r.HitBefore - r.HitAfter }

// RunScaling probes the scale artifact EXPERIMENTS.md discusses: does write
// churn (compaction invalidation) hurt the block cache at this scale? Each
// cell warms a point-read mix, measures a short window, applies write churn
// over ~40% of the key space, flushes, and measures the same window again.
//
// The measured answer at laptop scale is *no* — and that is the finding:
// rewriting the Zipf-hot keys clusters their newest versions into a handful
// of fresh blocks, so the block cache's effectiveness *improves* after
// churn, outweighing the invalidation penalty the paper's 100 GB testbed
// pays. The result cache stays flat (structural immunity). This is the
// quantified basis for the Table 4 / Figure 1 scale-artifact discussion.
func RunScaling(sizes []int, report func(ScalingRow)) ([]ScalingRow, error) {
	if len(sizes) == 0 {
		sizes = []int{10_000, 50_000, 150_000}
	}
	// Points only: IO_point = 1+FPR is invariant to the tree's run count,
	// so the before/after hit rates compare cleanly (scan estimates shift
	// with the post-churn run count and would contaminate the delta).
	readMix := workload.Mix{GetPct: 100}
	var rows []ScalingRow
	for _, numKeys := range sizes {
		for _, s := range []adcache.Strategy{adcache.StrategyBlock, adcache.StrategyRange} {
			r, err := NewRunner(Config{
				NumKeys: numKeys, ValueSize: 100, CacheFrac: 0.10,
				Strategy: s, Seed: 3,
			})
			if err != nil {
				return nil, err
			}
			warm := numKeys
			if warm < 20_000 {
				warm = 20_000
			}
			if err := r.Warm(readMix, warm); err != nil {
				r.Close()
				return nil, err
			}
			// Short fixed measurement windows: the invalidation penalty is a
			// refill transient, and the point is how long it lasts relative
			// to the traffic — a long window would amortise it away.
			const measureOps = 3000
			before, err := r.Run(readMix, measureOps)
			if err != nil {
				r.Close()
				return nil, err
			}
			// Write churn proportional to the database: rewrite ~40% of it,
			// then flush so the second measurement reads from SSTables like
			// the first (a memtable full of freshly-written hot keys would
			// serve reads for free and mask the effect under test).
			if err := r.Warm(workload.Mix{WritePct: 100}, numKeys*2/5); err != nil {
				r.Close()
				return nil, err
			}
			if err := r.DB.Flush(); err != nil {
				r.Close()
				return nil, err
			}
			after, err := r.Run(readMix, measureOps)
			r.Close()
			if err != nil {
				return nil, err
			}
			row := ScalingRow{
				NumKeys:   numKeys,
				Strategy:  s.String(),
				HitBefore: before.HitRate,
				HitAfter:  after.HitRate,
			}
			rows = append(rows, row)
			if report != nil {
				report(row)
			}
		}
	}
	return rows, nil
}

// FormatScaling renders the study.
func FormatScaling(rows []ScalingRow) string {
	var b strings.Builder
	b.WriteString("Invalidation scaling — hit rate before/after write churn (drop)\n")
	fmt.Fprintf(&b, "  %-10s %22s %22s\n", "keys", "BlockCache", "RangeCache")
	byKeys := map[int]map[string]ScalingRow{}
	var order []int
	for _, r := range rows {
		if byKeys[r.NumKeys] == nil {
			byKeys[r.NumKeys] = map[string]ScalingRow{}
			order = append(order, r.NumKeys)
		}
		byKeys[r.NumKeys][r.Strategy] = r
	}
	for _, keys := range order {
		fmt.Fprintf(&b, "  %-10d", keys)
		for _, s := range []string{"BlockCache", "RangeCache"} {
			r := byKeys[keys][s]
			fmt.Fprintf(&b, "  %.3f→%.3f (%+.3f)", r.HitBefore, r.HitAfter, -r.Drop())
		}
		b.WriteString("\n")
	}
	return b.String()
}
