package harness

import (
	"fmt"
	"strings"

	"adcache"
	"adcache/internal/rl"
	"adcache/internal/workload"
)

// RunFig1 regenerates the motivation figure: block-based vs result-based
// caching across workload patterns — each wins somewhere, neither wins
// everywhere.
func RunFig1(sc Scale) ([]Cell, error) {
	mixes := []struct {
		Name string
		Mix  workload.Mix
	}{
		{"point-heavy", workload.Mix{GetPct: 90, WritePct: 10}},
		{"scan-heavy", workload.Mix{ShortScanPct: 50, LongScanPct: 50}},
		{"update-heavy", workload.Mix{GetPct: 25, ShortScanPct: 25, WritePct: 50}},
	}
	var cells []Cell
	for _, m := range mixes {
		for _, s := range []adcache.Strategy{adcache.StrategyBlock, adcache.StrategyRange} {
			r, err := NewRunner(Config{
				NumKeys: sc.NumKeys, ValueSize: sc.ValueSize,
				CacheFrac: 0.10, Strategy: s, Seed: sc.Seed,
			})
			if err != nil {
				return nil, err
			}
			if err := r.Warm(m.Mix, sc.WarmOps); err != nil {
				r.Close()
				return nil, err
			}
			res, err := r.Run(m.Mix, sc.MeasureOps)
			r.Close()
			if err != nil {
				return nil, err
			}
			cells = append(cells, Cell{Workload: m.Name, Strategy: s.String(), Result: res})
		}
	}
	return cells, nil
}

// FormatFig1 renders the motivation comparison.
func FormatFig1(cells []Cell) string {
	var b strings.Builder
	b.WriteString("Figure 1 — block vs result caching across workload patterns (hit rate)\n")
	fmt.Fprintf(&b, "  %-14s %12s %12s\n", "workload", "BlockCache", "RangeCache")
	for _, w := range []string{"point-heavy", "scan-heavy", "update-heavy"} {
		fmt.Fprintf(&b, "  %-14s", w)
		for _, s := range []string{"BlockCache", "RangeCache"} {
			for _, c := range cells {
				if c.Workload == w && c.Strategy == s {
					fmt.Fprintf(&b, " %12.3f", c.Result.HitRate)
				}
			}
		}
		b.WriteString("\n")
	}
	return b.String()
}

// Fig6Row reports the eviction footprint of a single scan.
type Fig6Row struct {
	Cache       string
	ScanLen     int
	Evictions   int64
	IdealBlocks int
}

// RunFig6 regenerates Figure 6: how many cache entries one scan evicts from
// a warmed block cache vs a warmed range cache. The block cache evicts one
// block per (sorted run × block touched) — more than the "ideal" l/B —
// while the all-or-nothing range cache evicts one entry per scanned key.
func RunFig6(sc Scale) ([]Fig6Row, error) {
	var rows []Fig6Row
	for _, strat := range []adcache.Strategy{adcache.StrategyBlock, adcache.StrategyRange} {
		for _, scanLen := range []int{workload.ShortScanLen, workload.LongScanLen} {
			r, err := NewRunner(Config{
				NumKeys: sc.NumKeys, ValueSize: sc.ValueSize,
				// Small enough to stay full (so every admission evicts),
				// large enough that shards admit 4 KiB blocks.
				CacheFrac: 0.05, Strategy: strat, Seed: sc.Seed,
			})
			if err != nil {
				return nil, err
			}
			// Warm with points plus writes: the writes keep several sorted
			// runs alive, the multi-run layout behind the paper's "one
			// block per overlapping run" scan amplification.
			warmMix := workload.Mix{GetPct: 70, WritePct: 30}
			if err := r.Warm(warmMix, sc.WarmOps/2); err != nil {
				r.Close()
				return nil, err
			}
			before := r.DB.CacheCounters()
			// One scan in an otherwise idle cache.
			if _, err := r.DB.Scan(workload.Key(sc.NumKeys/3), scanLen); err != nil {
				r.Close()
				return nil, err
			}
			after := r.DB.CacheCounters()
			ev := (after.BlockEvictions - before.BlockEvictions) +
				(after.RangeEvictions - before.RangeEvictions)
			shape := r.Shape()
			r.Close()
			rows = append(rows, Fig6Row{
				Cache:       strat.String(),
				ScanLen:     scanLen,
				Evictions:   ev,
				IdealBlocks: int(float64(scanLen)/shape.EntriesPerBlock) + 1,
			})
		}
	}
	return rows, nil
}

// FormatFig6 renders the eviction study.
func FormatFig6(rows []Fig6Row) string {
	var b strings.Builder
	b.WriteString("Figure 6 — entries evicted by a single scan from a warmed cache\n")
	b.WriteString("  cache         scanLen  evictions  ideal(l/B)\n")
	for _, r := range rows {
		fmt.Fprintf(&b, "  %-12s %8d %10d %11d\n", r.Cache, r.ScanLen, r.Evictions, r.IdealBlocks)
	}
	return b.String()
}

// Table2Row is one memory-overhead accounting row.
type Table2Row struct {
	Component string
	Bytes     int
}

// RunTable2 regenerates Table 2 from the live model: parameter memory and
// online-training overhead (gradients + Adam moments ≈ 4× parameters).
func RunTable2() []Table2Row {
	agent := rl.New(rl.DefaultConfig())
	params := agent.MemoryBytes()
	return []Table2Row{
		{"model parameters (actor+critic)", params},
		{"gradients", params},
		{"Adam first moments", params},
		{"Adam second moments", params},
		{"total online training", agent.TrainingMemoryBytes()},
	}
}

// FormatTable2 renders the memory accounting.
func FormatTable2(rows []Table2Row) string {
	var b strings.Builder
	b.WriteString("Table 2 — memory overhead of the RL model\n")
	for _, r := range rows {
		fmt.Fprintf(&b, "  %-34s %8.0f KB\n", r.Component, float64(r.Bytes)/1024)
	}
	return b.String()
}
