package harness

import (
	"runtime"
	"sync"
	"time"

	"adcache"
	"adcache/internal/stats"
	"adcache/internal/workload"
)

// RunConcurrent drives clients goroutines, each executing opsPerClient
// operations from its own deterministic generator, and returns aggregate
// measurements plus the per-client QPS under the simulated-I/O model.
//
// The simulated time assumes the device serves the clients' block reads in
// parallel (the paper's NVMe testbed is I/O-throughput-bound, not
// queue-depth-bound at 32 clients), so per-client simulated time is the
// client's wall time plus its own share of read latency.
func (r *Runner) RunConcurrent(mix workload.Mix, opsPerClient, clients int) (Result, float64, error) {
	readsBefore := r.DB.SSTReads()
	hitsBefore := r.DB.LSM().QueryBlockHits()

	var wg sync.WaitGroup
	counts := make([]opCounts, clients)
	errs := make([]error, clients)
	start := time.Now()
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			gen := workload.NewGenerator(workload.Config{
				NumKeys:   r.Cfg.NumKeys,
				ValueSize: r.Cfg.ValueSize,
				PointSkew: r.Cfg.PointSkew,
				ScanSkew:  r.Cfg.ScanSkew,
				Seed:      r.Cfg.Seed + int64(c)*7919,
			})
			counts[c], errs[c] = driveWith(r.DB, gen, mix, opsPerClient)
		}(c)
	}
	wg.Wait()
	wall := time.Since(start)
	for _, err := range errs {
		if err != nil {
			return Result{}, 0, err
		}
	}

	var total opCounts
	for _, c := range counts {
		total.points += c.points
		total.scans += c.scans
		total.writes += c.writes
		total.scanLen += c.scanLen
	}
	reads := r.DB.SSTReads() - readsBefore
	hits := r.DB.LSM().QueryBlockHits() - hitsBefore
	ops := int64(opsPerClient * clients)

	w := stats.Window{
		Points: total.points, Scans: total.scans, Writes: total.writes,
		ScanLenSum: total.scanLen, BlockReads: reads,
	}
	// Per-client simulated time. The paper's 36-core testbed gives every
	// client a core, so per-client time = per-op CPU + per-op I/O wait.
	// This host has fewer cores than clients, so raw wall time would
	// conflate scheduler contention with the effect under test (training
	// interference, lock contention). Normalise: per-op CPU cost is the
	// measured CPU time (wall × active cores) divided across all ops —
	// contention inside the engine still shows up in it.
	activeCores := clients
	if p := runtime.GOMAXPROCS(0); activeCores > p {
		activeCores = p
	}
	cpuPerOp := wall * time.Duration(activeCores) / time.Duration(ops)
	ioPerOp := time.Duration(reads) * r.Cfg.ReadCost / time.Duration(ops)
	perClientSim := time.Duration(opsPerClient) * (cpuPerOp + ioPerOp)
	res := Result{
		Strategy:   r.DB.Strategy().String(),
		Ops:        ops,
		Points:     total.points,
		Scans:      total.scans,
		Writes:     total.writes,
		ScanLenSum: total.scanLen,
		BlockReads: reads,
		BlockHits:  hits,
		HitRate:    r.Shape().HitRateEstimate(w),
		Wall:       wall,
		Sim:        perClientSim,
	}
	perClientQPS := 0.0
	if perClientSim > 0 {
		perClientQPS = float64(opsPerClient) / perClientSim.Seconds()
		res.QPS = perClientQPS * float64(clients)
	}
	return res, perClientQPS, nil
}

// driveWith executes ops from gen against db (used by concurrent clients).
func driveWith(db *adcache.DB, gen *workload.Generator, mix workload.Mix, ops int) (opCounts, error) {
	var c opCounts
	for i := 0; i < ops; i++ {
		op := gen.Next(mix)
		switch op.Kind {
		case workload.OpGet:
			c.points++
			if _, _, err := db.Get(op.Key); err != nil {
				return c, err
			}
		case workload.OpScan:
			c.scans++
			c.scanLen += int64(op.ScanLen)
			if _, err := db.Scan(op.Key, op.ScanLen); err != nil {
				return c, err
			}
		case workload.OpPut:
			c.writes++
			if err := db.Put(op.Key, op.Value); err != nil {
				return c, err
			}
		}
	}
	return c, nil
}
