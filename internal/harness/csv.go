package harness

import (
	"encoding/csv"
	"fmt"
	"io"
)

// WriteCellsCSV emits measurement cells (Figures 1, 7, 9) as CSV for
// external plotting.
func WriteCellsCSV(w io.Writer, cells []Cell) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{
		"workload", "cache_frac", "skew", "strategy",
		"hit_rate", "block_reads", "reads_per_op", "qps", "ops",
	}); err != nil {
		return err
	}
	for _, c := range cells {
		rec := []string{
			c.Workload,
			fmt.Sprintf("%.4f", c.CacheFrac),
			fmt.Sprintf("%.2f", c.Skew),
			c.Strategy,
			fmt.Sprintf("%.6f", c.Result.HitRate),
			fmt.Sprintf("%d", c.Result.BlockReads),
			fmt.Sprintf("%.4f", c.Result.ReadsPerOp()),
			fmt.Sprintf("%.1f", c.Result.QPS),
			fmt.Sprintf("%d", c.Result.Ops),
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WritePhasesCSV emits Figure 8 phase measurements as CSV.
func WritePhasesCSV(w io.Writer, results []PhaseResult) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{
		"phase", "strategy", "hit_rate", "qps", "block_reads", "ops",
	}); err != nil {
		return err
	}
	for _, pr := range results {
		rec := []string{
			pr.Phase,
			pr.Strategy,
			fmt.Sprintf("%.6f", pr.Result.HitRate),
			fmt.Sprintf("%.1f", pr.Result.QPS),
			fmt.Sprintf("%d", pr.Result.BlockReads),
			fmt.Sprintf("%d", pr.Result.Ops),
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteTraceCSV emits Figure 10 window traces as CSV.
func WriteTraceCSV(w io.Writer, series []Fig10Series) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{
		"series", "window", "h_estimate", "h_smoothed", "reward",
		"range_ratio", "point_threshold", "scan_a", "scan_b", "actor_lr",
	}); err != nil {
		return err
	}
	for _, s := range series {
		for i, tr := range s.Traces {
			rec := []string{
				s.Label,
				fmt.Sprintf("%d", i),
				fmt.Sprintf("%.6f", tr.HEstimate),
				fmt.Sprintf("%.6f", tr.HSmoothed),
				fmt.Sprintf("%.6f", tr.Reward),
				fmt.Sprintf("%.4f", tr.Params.RangeRatio),
				fmt.Sprintf("%.6f", tr.Params.PointThreshold),
				fmt.Sprintf("%d", tr.Params.ScanA),
				fmt.Sprintf("%.4f", tr.Params.ScanB),
				fmt.Sprintf("%.6g", tr.ActorLR),
			}
			if err := cw.Write(rec); err != nil {
				return err
			}
		}
	}
	cw.Flush()
	return cw.Error()
}
