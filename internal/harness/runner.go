// Package harness builds databases, drives workloads against each cache
// strategy, and regenerates every table and figure of the paper's
// evaluation (§5). Throughput is reported against simulated time
// (wall time + blockReads × ReadCost) because the backing store is an
// in-memory file system: block-read counts are exact, and the ReadCost
// model restores the I/O-bound behaviour of the paper's NVMe testbed.
package harness

import (
	"fmt"
	"time"

	"adcache"
	"adcache/internal/bloom"
	"adcache/internal/core"
	"adcache/internal/lsm"
	"adcache/internal/stats"
	"adcache/internal/vfs"
	"adcache/internal/workload"
)

// Config parameterises one experiment run.
type Config struct {
	// NumKeys and ValueSize define the database (defaults 50_000 × 100 B).
	NumKeys   int
	ValueSize int
	// PointSkew and ScanSkew are Zipfian thetas (default 0.9, the paper's
	// default).
	PointSkew float64
	ScanSkew  float64
	// Seed drives workload determinism; all strategies see the same ops.
	Seed int64
	// CacheBytes is the cache budget. CacheFrac, if set, overrides it as a
	// fraction of the loaded database size (the paper sizes caches
	// relative to the 100 GB database).
	CacheBytes int64
	CacheFrac  float64
	// Strategy selects the cache scheme.
	Strategy adcache.Strategy
	// AdCache overrides controller settings (window size, alpha,
	// ablations, pretrained model...).
	AdCache core.Config
	// ReadCost is the simulated per-block-read latency (default 40µs,
	// an NVMe-class 4 KiB random read).
	ReadCost time.Duration
	// RangeShards optionally shards result caches.
	RangeShards []string
	// NoPretrain starts AdCache's agent from scratch instead of from the
	// process-cached pretrained model (Figure 10 compares both).
	NoPretrain bool
	// PrefetchOnCompaction enables Leaper-style cache re-population
	// (ablation experiments).
	PrefetchOnCompaction int
	// AsyncTuning uses the production background tuner instead of the
	// experiments' synchronous mode.
	AsyncTuning bool
}

func (c Config) withDefaults() Config {
	if c.NumKeys <= 0 {
		c.NumKeys = 50_000
	}
	if c.ValueSize <= 0 {
		c.ValueSize = 100
	}
	if c.PointSkew == 0 {
		c.PointSkew = 0.9
	}
	if c.ScanSkew == 0 {
		c.ScanSkew = 0.9
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.ReadCost == 0 {
		c.ReadCost = 40 * time.Microsecond
	}
	return c
}

// Result summarises a measured run.
type Result struct {
	Strategy   string
	Ops        int64
	Points     int64
	Scans      int64
	Writes     int64
	ScanLenSum int64
	BlockReads int64
	BlockHits  int64
	HitRate    float64 // h_estimate from the paper's I/O model
	Wall       time.Duration
	Sim        time.Duration
	QPS        float64 // ops per simulated second
}

// ReadsPerOp reports average block reads per operation.
func (r Result) ReadsPerOp() float64 {
	if r.Ops == 0 {
		return 0
	}
	return float64(r.BlockReads) / float64(r.Ops)
}

// Runner owns a loaded database and a deterministic generator.
type Runner struct {
	Cfg Config
	DB  *adcache.DB
	Gen *workload.Generator
	fs  *vfs.MemFS
}

// NewRunner builds and loads a database under cfg, compacting it into a
// steady tree before measurement.
func NewRunner(cfg Config) (*Runner, error) {
	cfg = cfg.withDefaults()
	fs := vfs.NewMem()
	gen := workload.NewGenerator(workload.Config{
		NumKeys:   cfg.NumKeys,
		ValueSize: cfg.ValueSize,
		PointSkew: cfg.PointSkew,
		ScanSkew:  cfg.ScanSkew,
		Seed:      cfg.Seed,
	})

	// First pass with no cache to size the database, then reopen with the
	// requested strategy. Loading is cheap at this scale and keeps cache
	// sizing honest (CacheFrac of the *loaded* size, like the paper).
	//
	// Flush/compaction pressure is scaled with the database: the paper's
	// update-heavy dynamics (block-cache invalidation by compaction) only
	// appear if writes actually churn the tree during a measurement phase.
	lsmOpts := lsm.DefaultOptions("db")
	lsmOpts.MemTableSize = 256 << 10
	lsmOpts.L1TargetSize = 512 << 10
	lsmOpts.PrefetchOnCompaction = cfg.PrefetchOnCompaction
	// Deterministic experiments flush and compact inline on the writer's
	// goroutine, so every flush point is a pure function of the op stream;
	// AsyncTuning runs opt into the production background write path.
	lsmOpts.InlineCompaction = !cfg.AsyncTuning
	loadDB, err := adcache.Open(adcache.Options{
		FS: fs, Strategy: adcache.StrategyNone, LSM: &lsmOpts,
	})
	if err != nil {
		return nil, err
	}
	for i := 0; i < cfg.NumKeys; i++ {
		if err := loadDB.Put(workload.Key(i), gen.InitialValue(i)); err != nil {
			return nil, err
		}
	}
	if err := loadDB.Flush(); err != nil {
		return nil, err
	}
	if err := loadDB.Compact(); err != nil {
		return nil, err
	}
	dbBytes := int64(loadDB.LSM().Metrics().TotalBytes)
	if err := loadDB.Close(); err != nil {
		return nil, err
	}

	cacheBytes := cfg.CacheBytes
	if cfg.CacheFrac > 0 {
		cacheBytes = int64(cfg.CacheFrac * float64(dbBytes))
	}
	if cacheBytes <= 0 {
		cacheBytes = dbBytes / 4
	}
	cfg.CacheBytes = cacheBytes
	// Experiments tune synchronously: every window is processed and runs
	// are machine-speed independent (see core.Config.SyncTuning).
	cfg.AdCache.SyncTuning = !cfg.AsyncTuning
	if !cfg.NoPretrain && cfg.AdCache.ModelFS == nil {
		cfg.AdCache.ModelFS, cfg.AdCache.ModelPath = PretrainedModel()
	}

	db, err := adcache.Open(adcache.Options{
		FS:          fs,
		CacheBytes:  cacheBytes,
		Strategy:    cfg.Strategy,
		AdCache:     cfg.AdCache,
		RangeShards: cfg.RangeShards,
		LSM:         &lsmOpts,
	})
	if err != nil {
		return nil, err
	}
	return &Runner{Cfg: cfg, DB: db, Gen: gen, fs: fs}, nil
}

// Close releases the runner's database.
func (r *Runner) Close() error { return r.DB.Close() }

// Shape derives the I/O-model parameters from the live tree.
func (r *Runner) Shape() stats.Shape {
	m := r.DB.LSM().Metrics()
	opts := r.DB.LSM().Options()
	shape := stats.Shape{
		Levels:          m.NonEmptyLevels,
		Runs:            m.SortedRuns,
		R0Max:           opts.L0StopTrigger,
		EntriesPerBlock: 16,
		BloomFPR:        bloom.FalsePositiveRate(opts.BitsPerKey),
	}
	if shape.Levels == 0 {
		shape.Levels = 1
	}
	if m.TotalBytes > 0 && m.TotalEntries > 0 {
		blocks := float64(m.TotalBytes) / float64(opts.BlockSize)
		if blocks >= 1 {
			shape.EntriesPerBlock = float64(m.TotalEntries) / blocks
		}
	}
	return shape
}

// Warm drives ops operations without measuring (cache warm-up and, for
// AdCache, controller adaptation).
func (r *Runner) Warm(mix workload.Mix, ops int) error {
	_, err := r.drive(mix, ops)
	return err
}

// Run drives ops operations and returns measurements.
func (r *Runner) Run(mix workload.Mix, ops int) (Result, error) {
	readsBefore := r.DB.SSTReads()
	hitsBefore := r.DB.LSM().QueryBlockHits()
	start := time.Now()
	counts, err := r.drive(mix, ops)
	if err != nil {
		return Result{}, err
	}
	wall := time.Since(start)
	reads := r.DB.SSTReads() - readsBefore
	hits := r.DB.LSM().QueryBlockHits() - hitsBefore

	w := stats.Window{
		Points:     counts.points,
		Scans:      counts.scans,
		Writes:     counts.writes,
		ScanLenSum: counts.scanLen,
		BlockReads: reads,
	}
	sim := wall + time.Duration(reads)*r.Cfg.ReadCost
	res := Result{
		Strategy:   r.DB.Strategy().String(),
		Ops:        int64(ops),
		Points:     counts.points,
		Scans:      counts.scans,
		Writes:     counts.writes,
		ScanLenSum: counts.scanLen,
		BlockReads: reads,
		BlockHits:  hits,
		HitRate:    r.Shape().HitRateEstimate(w),
		Wall:       wall,
		Sim:        sim,
	}
	if sim > 0 {
		res.QPS = float64(ops) / sim.Seconds()
	}
	return res, nil
}

type opCounts struct {
	points, scans, writes, scanLen int64
}

func (r *Runner) drive(mix workload.Mix, ops int) (opCounts, error) {
	c, err := driveWith(r.DB, r.Gen, mix, ops)
	if err != nil {
		return c, fmt.Errorf("drive: %w", err)
	}
	return c, nil
}
