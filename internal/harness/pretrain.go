package harness

import (
	"sync"

	"adcache/internal/core"
	"adcache/internal/rl"
	"adcache/internal/vfs"
)

var (
	pretrainOnce sync.Once
	pretrainFS   *vfs.MemFS
)

// PretrainedModel returns a process-cached pretrained actor-critic model
// (§3.6): the synthetic supervised pretraining runs once, and every AdCache
// runner loads the same weights — matching the paper's "pretrained model can
// be deployed across machines" portability argument.
func PretrainedModel() (vfs.FS, string) {
	pretrainOnce.Do(func() {
		agent := rl.New(rl.DefaultConfig())
		core.PretrainAgent(agent, 128, 7)
		pretrainFS = vfs.NewMem()
		if err := agent.Save(pretrainFS, "pretrained"); err != nil {
			// The in-memory FS cannot fail; a failure here is programmer
			// error worth crashing loudly over.
			panic(err)
		}
	})
	return pretrainFS, "pretrained"
}
