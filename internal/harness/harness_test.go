package harness

import (
	"bytes"
	"strings"
	"testing"

	"adcache"
	"adcache/internal/core"
	"adcache/internal/workload"
)

func smallConfig(s adcache.Strategy) Config {
	return Config{
		NumKeys: 3000, ValueSize: 64, CacheFrac: 0.10,
		Strategy: s, Seed: 17,
	}
}

func TestRunnerBuildsSizedCache(t *testing.T) {
	r, err := NewRunner(smallConfig(adcache.StrategyBlock))
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	dbBytes := int64(r.DB.LSM().Metrics().TotalBytes)
	if dbBytes == 0 {
		t.Fatal("database not loaded")
	}
	want := int64(0.10 * float64(dbBytes))
	if got := r.Cfg.CacheBytes; got < want/2 || got > want*2 {
		t.Fatalf("cache bytes = %d, want ≈%d", got, want)
	}
	// Every loaded key must be readable.
	for _, i := range []int{0, 1500, 2999} {
		if _, ok, err := r.DB.Get(workload.Key(i)); err != nil || !ok {
			t.Fatalf("Get(%d): ok=%v err=%v", i, ok, err)
		}
	}
}

func TestRunMeasuresCounts(t *testing.T) {
	r, err := NewRunner(smallConfig(adcache.StrategyBlock))
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	res, err := r.Run(workload.MixBalanced, 3000)
	if err != nil {
		t.Fatal(err)
	}
	if res.Ops != 3000 {
		t.Fatalf("Ops = %d", res.Ops)
	}
	if res.Points+res.Scans+res.Writes != 3000 {
		t.Fatalf("counts = %d + %d + %d", res.Points, res.Scans, res.Writes)
	}
	if res.HitRate < 0 || res.HitRate > 1 {
		t.Fatalf("HitRate = %f", res.HitRate)
	}
	if res.QPS <= 0 {
		t.Fatalf("QPS = %f", res.QPS)
	}
	if res.Scans > 0 && res.ReadsPerOp() == 0 && res.BlockReads == 0 {
		t.Fatal("no block reads counted for a scan workload")
	}
}

func TestShapeReflectsTree(t *testing.T) {
	r, err := NewRunner(smallConfig(adcache.StrategyBlock))
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	shape := r.Shape()
	if shape.Levels < 1 || shape.Runs < 1 {
		t.Fatalf("shape = %+v", shape)
	}
	if shape.EntriesPerBlock < 2 {
		t.Fatalf("entries/block = %f", shape.EntriesPerBlock)
	}
	if shape.BloomFPR <= 0 || shape.BloomFPR > 0.05 {
		t.Fatalf("FPR = %f", shape.BloomFPR)
	}
}

func TestDeterministicAcrossStrategies(t *testing.T) {
	// Different strategies must see the identical operation stream: equal
	// op-type counts under the same seed.
	counts := map[adcache.Strategy][3]int64{}
	for _, s := range []adcache.Strategy{adcache.StrategyBlock, adcache.StrategyRange} {
		r, err := NewRunner(smallConfig(s))
		if err != nil {
			t.Fatal(err)
		}
		res, err := r.Run(workload.MixBalanced, 2000)
		r.Close()
		if err != nil {
			t.Fatal(err)
		}
		counts[s] = [3]int64{res.Points, res.Scans, res.Writes}
	}
	if counts[adcache.StrategyBlock] != counts[adcache.StrategyRange] {
		t.Fatalf("op streams diverged: %v vs %v",
			counts[adcache.StrategyBlock], counts[adcache.StrategyRange])
	}
}

func TestRunConcurrentAggregates(t *testing.T) {
	r, err := NewRunner(smallConfig(adcache.StrategyAdCache))
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	res, perClient, err := r.RunConcurrent(workload.MixBalanced, 500, 4)
	if err != nil {
		t.Fatal(err)
	}
	if res.Ops != 2000 {
		t.Fatalf("Ops = %d", res.Ops)
	}
	if perClient <= 0 {
		t.Fatalf("per-client QPS = %f", perClient)
	}
}

func TestPretrainedModelIsCachedAndLoadable(t *testing.T) {
	fs1, path1 := PretrainedModel()
	fs2, path2 := PretrainedModel()
	if fs1 != fs2 || path1 != path2 {
		t.Fatal("pretrained model not cached per process")
	}
	if !fs1.Exists(path1 + ".actor") {
		t.Fatal("actor weights missing")
	}
}

func TestTable2Accounting(t *testing.T) {
	rows := RunTable2()
	if len(rows) != 5 {
		t.Fatalf("rows = %d", len(rows))
	}
	weights := rows[0].Bytes
	if weights < 450_000 || weights > 650_000 {
		t.Fatalf("weights = %d bytes, want ≈550KB (paper Table 2)", weights)
	}
	if rows[4].Bytes != 4*weights {
		t.Fatalf("training total = %d, want 4× weights", rows[4].Bytes)
	}
}

func TestCSVExport(t *testing.T) {
	cells := []Cell{
		{Workload: "PointLookup", CacheFrac: 0.1, Strategy: "AdCache",
			Result: Result{HitRate: 0.5, BlockReads: 100, Ops: 1000, QPS: 123}},
	}
	var buf bytes.Buffer
	if err := WriteCellsCSV(&buf, cells); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "workload,cache_frac") || !strings.Contains(out, "AdCache") {
		t.Fatalf("csv = %q", out)
	}
	if lines := strings.Count(out, "\n"); lines != 2 {
		t.Fatalf("csv has %d lines", lines)
	}

	buf.Reset()
	if err := WritePhasesCSV(&buf, []PhaseResult{{Phase: "A", Strategy: "BlockCache"}}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "phase,strategy") {
		t.Fatalf("phase csv = %q", buf.String())
	}

	buf.Reset()
	series := []Fig10Series{{Label: "w=1000", Traces: []core.WindowTrace{{HEstimate: 0.7}}}}
	if err := WriteTraceCSV(&buf, series); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "w=1000") {
		t.Fatalf("trace csv = %q", buf.String())
	}
}
