package harness

import (
	"fmt"
	"strings"
	"time"

	"adcache"
	"adcache/internal/workload"
)

// AblationRow is one design-choice comparison.
type AblationRow struct {
	Study   string
	Variant string
	Result  Result
	Note    string
}

// RunAblations measures the design choices DESIGN.md calls out, beyond the
// paper's own Figure 11(b) ablation:
//
//   - boundary hysteresis: suppressing exploration jitter at the cache
//     boundary vs applying every sampled ratio;
//   - pretraining: §3.6's initialisation vs learning from scratch, under a
//     window budget comparable to the experiments;
//   - Leaper-style prefetch: re-populating the block cache after
//     compactions under a write-heavy mix;
//   - sharded range cache: §4.4's partitioned locking vs a single shard
//     under concurrent clients (wall-clock, not simulated, throughput).
func RunAblations(sc Scale, report func(AblationRow)) ([]AblationRow, error) {
	var rows []AblationRow
	add := func(row AblationRow) {
		rows = append(rows, row)
		if report != nil {
			report(row)
		}
	}

	// Study 1: boundary hysteresis.
	for _, disabled := range []bool{false, true} {
		cfg := Config{
			NumKeys: sc.NumKeys, ValueSize: sc.ValueSize,
			CacheFrac: 0.10, Strategy: adcache.StrategyAdCache, Seed: sc.Seed,
		}
		cfg.AdCache.DisableHysteresis = disabled
		r, err := NewRunner(cfg)
		if err != nil {
			return nil, err
		}
		if err := r.Warm(workload.MixBalanced, sc.WarmOps); err != nil {
			r.Close()
			return nil, err
		}
		res, err := r.Run(workload.MixBalanced, sc.MeasureOps)
		evics := r.DB.CacheCounters().RangeEvictions + r.DB.CacheCounters().BlockEvictions
		r.Close()
		if err != nil {
			return nil, err
		}
		variant := "hysteresis on"
		if disabled {
			variant = "hysteresis off"
		}
		add(AblationRow{
			Study: "boundary-hysteresis", Variant: variant, Result: res,
			Note: fmt.Sprintf("evictions=%d", evics),
		})
	}

	// Study 2: pretraining vs from-scratch.
	for _, noPretrain := range []bool{false, true} {
		r, err := NewRunner(Config{
			NumKeys: sc.NumKeys, ValueSize: sc.ValueSize,
			CacheFrac: 0.10, Strategy: adcache.StrategyAdCache, Seed: sc.Seed,
			NoPretrain: noPretrain,
		})
		if err != nil {
			return nil, err
		}
		if err := r.Warm(workload.MixPointLookup, sc.WarmOps); err != nil {
			r.Close()
			return nil, err
		}
		res, err := r.Run(workload.MixPointLookup, sc.MeasureOps)
		var ratio float64
		if ad := r.DB.AdCache(); ad != nil {
			ratio = ad.CurrentParams().RangeRatio
		}
		r.Close()
		if err != nil {
			return nil, err
		}
		variant := "pretrained"
		if noPretrain {
			variant = "from scratch"
		}
		add(AblationRow{
			Study: "pretraining", Variant: variant, Result: res,
			Note: fmt.Sprintf("final ratio=%.2f", ratio),
		})
	}

	// Study 3: Leaper-style post-compaction prefetch on the block cache.
	writeHeavy := workload.Mix{GetPct: 40, ShortScanPct: 10, WritePct: 50}
	for _, prefetch := range []int{0, 32} {
		r, err := NewRunner(Config{
			NumKeys: sc.NumKeys, ValueSize: sc.ValueSize,
			CacheFrac: 0.10, Strategy: adcache.StrategyBlock, Seed: sc.Seed,
			PrefetchOnCompaction: prefetch,
		})
		if err != nil {
			return nil, err
		}
		if err := r.Warm(writeHeavy, sc.WarmOps); err != nil {
			r.Close()
			return nil, err
		}
		res, err := r.Run(writeHeavy, sc.MeasureOps)
		r.Close()
		if err != nil {
			return nil, err
		}
		variant := "no prefetch"
		if prefetch > 0 {
			variant = fmt.Sprintf("prefetch %d blocks", prefetch)
		}
		add(AblationRow{Study: "compaction-prefetch", Variant: variant, Result: res})
	}

	// Study 4: sharded vs single-lock range cache, concurrent clients.
	for _, sharded := range []bool{true, false} {
		cfg := Config{
			NumKeys: sc.NumKeys, ValueSize: sc.ValueSize,
			CacheFrac: 0.10, Strategy: adcache.StrategyRange, Seed: sc.Seed,
		}
		if sharded {
			cfg.RangeShards = defaultShards(sc.NumKeys)
		}
		r, err := NewRunner(cfg)
		if err != nil {
			return nil, err
		}
		start := time.Now()
		res, _, err := r.RunConcurrent(workload.MixBalanced, sc.MeasureOps/8, 8)
		wall := time.Since(start)
		r.Close()
		if err != nil {
			return nil, err
		}
		variant := "single shard"
		if sharded {
			variant = "8 range shards"
		}
		add(AblationRow{
			Study: "range-cache-sharding", Variant: variant, Result: res,
			Note: fmt.Sprintf("wall=%s", wall.Round(time.Millisecond)),
		})
	}

	return rows, nil
}

// FormatAblations renders the design-choice studies.
func FormatAblations(rows []AblationRow) string {
	var b strings.Builder
	b.WriteString("Design ablations (beyond the paper's Figure 11b)\n")
	last := ""
	for _, r := range rows {
		if r.Study != last {
			fmt.Fprintf(&b, "%s:\n", r.Study)
			last = r.Study
		}
		fmt.Fprintf(&b, "  %-24s hit=%.3f reads/op=%.2f qps=%.0f %s\n",
			r.Variant, r.Result.HitRate, r.Result.ReadsPerOp(), r.Result.QPS, r.Note)
	}
	return b.String()
}
