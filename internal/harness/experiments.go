package harness

import (
	"fmt"
	"sort"
	"strings"

	"adcache"
	"adcache/internal/core"
	"adcache/internal/rl"
	"adcache/internal/workload"
)

// Scale sizes an experiment. The paper runs 100 GB databases and 50M-op
// phases; these defaults reproduce the same cache:database ratios and
// enough control windows for the agent to adapt, at laptop scale.
type Scale struct {
	NumKeys    int
	ValueSize  int
	WarmOps    int
	MeasureOps int
	PhaseOps   int // ops per dynamic phase (Figure 8)
	Seed       int64
}

// DefaultScale is used by cmd/adbench. The warm-up is long enough for the
// controller to converge AND for the winning cache to fill at the largest
// (25 %) size — the paper warms over millions of operations.
func DefaultScale() Scale {
	return Scale{NumKeys: 50_000, ValueSize: 100, WarmOps: 150_000, MeasureOps: 60_000, PhaseOps: 60_000, Seed: 1}
}

// QuickScale is used by tests and testing.B benchmarks.
func QuickScale() Scale {
	return Scale{NumKeys: 10_000, ValueSize: 100, WarmOps: 10_000, MeasureOps: 10_000, PhaseOps: 12_000, Seed: 1}
}

// StaticWorkloads are the §5.2 workloads in paper order.
func StaticWorkloads() []struct {
	Name string
	Mix  workload.Mix
} {
	return []struct {
		Name string
		Mix  workload.Mix
	}{
		{"PointLookup", workload.MixPointLookup},
		{"ShortScan", workload.MixShortScan},
		{"Balanced", workload.MixBalanced},
		{"LongScan", workload.MixLongScan},
	}
}

// CacheFracs are the cache sizes of Figure 7, as fractions of the database.
func CacheFracs() []float64 { return []float64{0.01, 0.02, 0.05, 0.10, 0.25} }

// Cell is one measured configuration.
type Cell struct {
	Workload  string
	CacheFrac float64
	Skew      float64
	Strategy  string
	Result    Result
}

// RunFig7 regenerates Figure 7: hit rate of every strategy across cache
// sizes under the four static workloads.
func RunFig7(sc Scale, report func(Cell)) ([]Cell, error) {
	var cells []Cell
	for _, w := range StaticWorkloads() {
		for _, frac := range CacheFracs() {
			for _, s := range adcache.Strategies() {
				r, err := NewRunner(Config{
					NumKeys: sc.NumKeys, ValueSize: sc.ValueSize,
					CacheFrac: frac, Strategy: s, Seed: sc.Seed,
				})
				if err != nil {
					return nil, err
				}
				if err := r.Warm(w.Mix, sc.WarmOps); err != nil {
					r.Close()
					return nil, err
				}
				res, err := r.Run(w.Mix, sc.MeasureOps)
				r.Close()
				if err != nil {
					return nil, err
				}
				cell := Cell{Workload: w.Name, CacheFrac: frac, Strategy: s.String(), Result: res}
				cells = append(cells, cell)
				if report != nil {
					report(cell)
				}
			}
		}
	}
	return cells, nil
}

// FormatFig7 renders Figure 7 cells as one table per workload.
func FormatFig7(cells []Cell) string {
	var b strings.Builder
	for _, w := range StaticWorkloads() {
		fmt.Fprintf(&b, "Figure 7 — %s: hit rate by cache size\n", w.Name)
		fmt.Fprintf(&b, "%-20s", "strategy\\cache")
		for _, f := range CacheFracs() {
			fmt.Fprintf(&b, "%8.0f%%", f*100)
		}
		b.WriteString("\n")
		for _, s := range adcache.Strategies() {
			fmt.Fprintf(&b, "%-20s", s.String())
			for _, f := range CacheFracs() {
				for _, c := range cells {
					if c.Workload == w.Name && c.CacheFrac == f && c.Strategy == s.String() {
						fmt.Fprintf(&b, "%9.3f", c.Result.HitRate)
					}
				}
			}
			b.WriteString("\n")
		}
		b.WriteString("\n")
	}
	return b.String()
}

// PhaseResult is one (phase, strategy) measurement of Figure 8.
type PhaseResult struct {
	Phase    string
	Strategy string
	Result   Result
}

// Fig8Strategies are the schemes of Figure 8 / Table 4.
func Fig8Strategies() []adcache.Strategy {
	return []adcache.Strategy{
		adcache.StrategyBlock, adcache.StrategyRange,
		adcache.StrategyRangeLeCaR, adcache.StrategyRangeCacheus,
		adcache.StrategyAdCache,
	}
}

// RunFig8 regenerates Figure 8: each strategy runs the dynamic phase
// schedule A→F on one continuously-open database; throughput and hit rate
// are measured per phase.
func RunFig8(sc Scale, report func(PhaseResult)) ([]PhaseResult, error) {
	var out []PhaseResult
	for _, s := range Fig8Strategies() {
		r, err := NewRunner(Config{
			NumKeys: sc.NumKeys, ValueSize: sc.ValueSize,
			CacheFrac: 0.10, Strategy: s, Seed: sc.Seed,
		})
		if err != nil {
			return nil, err
		}
		for _, phase := range workload.DynamicPhases() {
			res, err := r.Run(phase.Mix, sc.PhaseOps)
			if err != nil {
				r.Close()
				return nil, err
			}
			pr := PhaseResult{Phase: phase.Name, Strategy: s.String(), Result: res}
			out = append(out, pr)
			if report != nil {
				report(pr)
			}
		}
		r.Close()
	}
	return out, nil
}

// Rankings computes Table 4 from Figure 8 results: per-phase ranks
// (1 = best) of throughput and hit rate per strategy.
type Rankings struct {
	Phases     []string
	Strategies []string
	// Throughput[phase][strategy] and HitRate[phase][strategy] are ranks.
	Throughput map[string]map[string]int
	HitRate    map[string]map[string]int
}

// RankFig8 derives Table 4 from Figure 8 measurements.
func RankFig8(results []PhaseResult) Rankings {
	rk := Rankings{
		Throughput: map[string]map[string]int{},
		HitRate:    map[string]map[string]int{},
	}
	seenPhase := map[string]bool{}
	seenStrat := map[string]bool{}
	byPhase := map[string][]PhaseResult{}
	for _, pr := range results {
		byPhase[pr.Phase] = append(byPhase[pr.Phase], pr)
		if !seenPhase[pr.Phase] {
			seenPhase[pr.Phase] = true
			rk.Phases = append(rk.Phases, pr.Phase)
		}
		if !seenStrat[pr.Strategy] {
			seenStrat[pr.Strategy] = true
			rk.Strategies = append(rk.Strategies, pr.Strategy)
		}
	}
	for phase, prs := range byPhase {
		rank := func(metric func(PhaseResult) float64) map[string]int {
			sorted := append([]PhaseResult(nil), prs...)
			sort.Slice(sorted, func(i, j int) bool {
				return metric(sorted[i]) > metric(sorted[j])
			})
			m := map[string]int{}
			for i, pr := range sorted {
				m[pr.Strategy] = i + 1
			}
			return m
		}
		rk.Throughput[phase] = rank(func(pr PhaseResult) float64 { return pr.Result.QPS })
		rk.HitRate[phase] = rank(func(pr PhaseResult) float64 { return pr.Result.HitRate })
	}
	return rk
}

// FormatFig8 renders the phase measurements and the Table 4 rankings.
func FormatFig8(results []PhaseResult) string {
	var b strings.Builder
	b.WriteString("Figure 8 — dynamic workload A→F (QPS / hit rate)\n")
	fmt.Fprintf(&b, "%-8s", "phase")
	for _, s := range Fig8Strategies() {
		fmt.Fprintf(&b, "%24s", s.String())
	}
	b.WriteString("\n")
	for _, phase := range workload.DynamicPhases() {
		fmt.Fprintf(&b, "%-8s", phase.Name)
		for _, s := range Fig8Strategies() {
			for _, pr := range results {
				if pr.Phase == phase.Name && pr.Strategy == s.String() {
					fmt.Fprintf(&b, "%15.0f/%7.3f", pr.Result.QPS, pr.Result.HitRate)
				}
			}
		}
		b.WriteString("\n")
	}

	rk := RankFig8(results)
	b.WriteString("\nTable 4 — rankings (throughput/hit rate), lower is better\n")
	fmt.Fprintf(&b, "%-8s", "phase")
	for _, s := range Fig8Strategies() {
		fmt.Fprintf(&b, "%24s", s.String())
	}
	b.WriteString("\n")
	sumT := map[string]int{}
	sumH := map[string]int{}
	for _, phase := range rk.Phases {
		fmt.Fprintf(&b, "%-8s", phase)
		for _, s := range Fig8Strategies() {
			t := rk.Throughput[phase][s.String()]
			h := rk.HitRate[phase][s.String()]
			sumT[s.String()] += t
			sumH[s.String()] += h
			fmt.Fprintf(&b, "%21d/%d", t, h)
		}
		b.WriteString("\n")
	}
	fmt.Fprintf(&b, "%-8s", "avg")
	n := len(rk.Phases)
	for _, s := range Fig8Strategies() {
		fmt.Fprintf(&b, "%19.1f/%.1f", float64(sumT[s.String()])/float64(n), float64(sumH[s.String()])/float64(n))
	}
	b.WriteString("\n")
	return b.String()
}

// Fig9Skews are the Zipfian skews of Figure 9.
func Fig9Skews() []float64 { return []float64{0.6, 0.8, 0.9, 1.0, 1.1, 1.2} }

// Fig9Mix is the §5.4 skewness workload: 50% updates with equal point
// lookups and short scans.
func Fig9Mix() workload.Mix {
	return workload.Mix{GetPct: 25, ShortScanPct: 25, WritePct: 50}
}

// RunFig9 regenerates Figure 9: hit rate across workload skewness.
func RunFig9(sc Scale, report func(Cell)) ([]Cell, error) {
	var cells []Cell
	for _, skew := range Fig9Skews() {
		for _, s := range adcache.Strategies() {
			r, err := NewRunner(Config{
				NumKeys: sc.NumKeys, ValueSize: sc.ValueSize,
				CacheFrac: 0.10, Strategy: s, Seed: sc.Seed,
				PointSkew: skew, ScanSkew: skew,
			})
			if err != nil {
				return nil, err
			}
			mix := Fig9Mix()
			if err := r.Warm(mix, sc.WarmOps); err != nil {
				r.Close()
				return nil, err
			}
			res, err := r.Run(mix, sc.MeasureOps)
			r.Close()
			if err != nil {
				return nil, err
			}
			cell := Cell{Workload: "Skew", Skew: skew, Strategy: s.String(), Result: res}
			cells = append(cells, cell)
			if report != nil {
				report(cell)
			}
		}
	}
	return cells, nil
}

// FormatFig9 renders the skewness sweep.
func FormatFig9(cells []Cell) string {
	var b strings.Builder
	b.WriteString("Figure 9 — hit rate by workload skewness (50% update mix)\n")
	fmt.Fprintf(&b, "%-20s", "strategy\\skew")
	for _, sk := range Fig9Skews() {
		fmt.Fprintf(&b, "%8.1f", sk)
	}
	b.WriteString("\n")
	for _, s := range adcache.Strategies() {
		fmt.Fprintf(&b, "%-20s", s.String())
		for _, sk := range Fig9Skews() {
			for _, c := range cells {
				if c.Skew == sk && c.Strategy == s.String() {
					fmt.Fprintf(&b, "%8.3f", c.Result.HitRate)
				}
			}
		}
		b.WriteString("\n")
	}
	return b.String()
}

// Fig10Series is one convergence curve: per-window estimated hit rate
// around a workload shift, plus the evolving control parameters.
type Fig10Series struct {
	Label  string
	Traces []core.WindowTrace
}

// RunFig10 regenerates Figure 10: the system is warmed on a read-heavy
// (point) workload and shifted to a short-scan-heavy workload. Panel (a)
// varies the window size; panel (b) varies α; panel (c) is the parameter
// evolution of the default configuration. The "pretrained" variant uses a
// frozen pretrained model (no online learning).
func RunFig10(sc Scale) (windowPanel, alphaPanel []Fig10Series, paramPanel Fig10Series, err error) {
	run := func(label string, windowSize int, alpha float64, frozen bool) (Fig10Series, error) {
		cfg := Config{
			NumKeys: sc.NumKeys, ValueSize: sc.ValueSize,
			CacheFrac: 0.10, Strategy: adcache.StrategyAdCache, Seed: sc.Seed,
		}
		cfg.AdCache.WindowSize = windowSize
		cfg.AdCache.Alpha = alpha
		cfg.AdCache.RecordTrace = true
		cfg.AdCache.RL = rl.DefaultConfig()
		cfg.AdCache.RL.Frozen = frozen
		r, err := NewRunner(cfg)
		if err != nil {
			return Fig10Series{}, err
		}
		defer r.Close()
		if err := r.Warm(workload.MixPointLookup, sc.WarmOps); err != nil {
			return Fig10Series{}, err
		}
		if err := r.Warm(workload.MixShortScan, sc.MeasureOps); err != nil {
			return Fig10Series{}, err
		}
		return Fig10Series{Label: label, Traces: r.DB.AdCache().Trace()}, nil
	}

	for _, ws := range []int{100, 1000, 10000} {
		s, err := run(fmt.Sprintf("window=%d", ws), ws, 0.9, false)
		if err != nil {
			return nil, nil, Fig10Series{}, err
		}
		windowPanel = append(windowPanel, s)
	}
	s, err := run("pretrained(frozen)", 1000, 0.9, true)
	if err != nil {
		return nil, nil, Fig10Series{}, err
	}
	windowPanel = append(windowPanel, s)

	for _, alpha := range []float64{0.001, 0.5, 0.9} { // 0.001 ≈ the paper's α=0
		s, err := run(fmt.Sprintf("alpha=%.1f", alpha), 1000, alpha, false)
		if err != nil {
			return nil, nil, Fig10Series{}, err
		}
		alphaPanel = append(alphaPanel, s)
	}

	paramPanel, err = run("params(window=1000,alpha=0.9)", 1000, 0.9, false)
	if err != nil {
		return nil, nil, Fig10Series{}, err
	}
	return windowPanel, alphaPanel, paramPanel, nil
}

// FormatFig10 renders the three panels as series tables.
func FormatFig10(windowPanel, alphaPanel []Fig10Series, paramPanel Fig10Series) string {
	var b strings.Builder
	series := func(title string, panel []Fig10Series) {
		fmt.Fprintf(&b, "Figure 10 — %s (per-window estimated hit rate)\n", title)
		for _, s := range panel {
			fmt.Fprintf(&b, "  %-22s", s.Label)
			step := len(s.Traces)/16 + 1
			for i := 0; i < len(s.Traces); i += step {
				fmt.Fprintf(&b, " %.2f", s.Traces[i].HEstimate)
			}
			b.WriteString("\n")
		}
		b.WriteString("\n")
	}
	series("impact of window size", windowPanel)
	series("impact of smoothing factor α", alphaPanel)

	b.WriteString("Figure 10 — parameter evolution (window=1000, α=0.9)\n")
	b.WriteString("  window  rangeRatio  pointThr  scanA  scanB  hEst\n")
	step := len(paramPanel.Traces)/24 + 1
	for i := 0; i < len(paramPanel.Traces); i += step {
		tr := paramPanel.Traces[i]
		fmt.Fprintf(&b, "  %6d  %10.2f  %8.4f  %5d  %5.2f  %.3f\n",
			i, tr.Params.RangeRatio, tr.Params.PointThreshold, tr.Params.ScanA, tr.Params.ScanB, tr.HEstimate)
	}
	return b.String()
}

// Fig11aPoint is one (clients, per-client QPS) measurement.
type Fig11aPoint struct {
	Clients      int
	PerClientQPS float64
	Result       Result
}

// RunFig11a regenerates Figure 11(a): per-client throughput as the client
// count grows, with online training active (asynchronous, as deployed).
func RunFig11a(sc Scale, report func(Fig11aPoint)) ([]Fig11aPoint, error) {
	var out []Fig11aPoint
	for _, clients := range []int{1, 2, 4, 8, 16, 32} {
		cfg := Config{
			NumKeys: sc.NumKeys, ValueSize: sc.ValueSize,
			CacheFrac: 0.10, Strategy: adcache.StrategyAdCache, Seed: sc.Seed,
			RangeShards: defaultShards(sc.NumKeys),
		}
		r, err := NewRunner(cfg)
		if err != nil {
			return nil, err
		}
		// Multi-client runs use the production asynchronous tuner: the
		// point of the experiment is that training does not interfere.
		opsPerClient := sc.MeasureOps / 4
		res, perClient, err := r.RunConcurrent(workload.MixBalanced, opsPerClient, clients)
		r.Close()
		if err != nil {
			return nil, err
		}
		p := Fig11aPoint{Clients: clients, PerClientQPS: perClient, Result: res}
		out = append(out, p)
		if report != nil {
			report(p)
		}
	}
	return out, nil
}

// defaultShards splits the key space into 8 range shards (§4.4).
func defaultShards(numKeys int) []string {
	var splits []string
	for i := 1; i < 8; i++ {
		splits = append(splits, string(workload.Key(numKeys*i/8)))
	}
	return splits
}

// FormatFig11a renders the scaling table.
func FormatFig11a(points []Fig11aPoint) string {
	var b strings.Builder
	b.WriteString("Figure 11a — per-client QPS vs client count (training overhead)\n")
	b.WriteString("  clients  per-client QPS  total QPS\n")
	for _, p := range points {
		fmt.Fprintf(&b, "  %7d  %14.0f  %9.0f\n", p.Clients, p.PerClientQPS, p.Result.QPS)
	}
	return b.String()
}

// AblationSeries is one Figure 11(b) curve: hit rate measured per segment.
type AblationSeries struct {
	Label    string
	Segments []float64 // estimated hit rate per time segment
}

// RunFig11b regenerates Figure 11(b): Range Cache vs AdCache with only
// admission control, only adaptive partitioning, and both, under a
// long-scan-heavy workload.
func RunFig11b(sc Scale, report func(AblationSeries)) ([]AblationSeries, error) {
	mix := workload.Mix{GetPct: 24, ShortScanPct: 5, LongScanPct: 66, WritePct: 5}
	const segments = 12
	variants := []struct {
		label               string
		strategy            adcache.Strategy
		disableAdmission    bool
		disablePartitioning bool
	}{
		{"RangeCache", adcache.StrategyRange, false, false},
		{"AdCache(admission only)", adcache.StrategyAdCache, false, true},
		{"AdCache(partitioning only)", adcache.StrategyAdCache, true, false},
		{"AdCache(full)", adcache.StrategyAdCache, false, false},
	}
	var out []AblationSeries
	for _, v := range variants {
		cfg := Config{
			NumKeys: sc.NumKeys, ValueSize: sc.ValueSize,
			CacheFrac: 0.10, Strategy: v.strategy, Seed: sc.Seed,
		}
		cfg.AdCache.DisableAdmission = v.disableAdmission
		cfg.AdCache.DisablePartitioning = v.disablePartitioning
		if v.disablePartitioning {
			// The admission-only ablation keeps the whole budget in the
			// range cache, like the baseline it modifies.
			cfg.AdCache.InitialRangeRatio = 0.99
		}
		r, err := NewRunner(cfg)
		if err != nil {
			return nil, err
		}
		series := AblationSeries{Label: v.label}
		segOps := (sc.WarmOps + sc.MeasureOps) / segments
		for seg := 0; seg < segments; seg++ {
			res, err := r.Run(mix, segOps)
			if err != nil {
				r.Close()
				return nil, err
			}
			series.Segments = append(series.Segments, res.HitRate)
		}
		r.Close()
		out = append(out, series)
		if report != nil {
			report(series)
		}
	}
	return out, nil
}

// FormatFig11b renders the ablation curves.
func FormatFig11b(series []AblationSeries) string {
	var b strings.Builder
	b.WriteString("Figure 11b — ablation under long-scan-heavy workload (hit rate per segment)\n")
	for _, s := range series {
		fmt.Fprintf(&b, "  %-28s", s.Label)
		for _, h := range s.Segments {
			fmt.Fprintf(&b, " %.2f", h)
		}
		b.WriteString("\n")
	}
	return b.String()
}
