package compaction

import (
	"bytes"
	"sort"
)

// SubRange is one shard of a compaction's keyspace: the user keys in
// [Start, End). A nil Start means -infinity, a nil End means +infinity, so
// the zero SubRange covers everything. Splitting at user-key granularity
// guarantees every version of a user key lands in exactly one shard, which
// keeps per-shard shadowed-version dedup and tombstone dropping correct.
type SubRange struct {
	Start []byte
	End   []byte
}

// Contains reports whether userKey falls inside the range.
func (r SubRange) Contains(userKey []byte) bool {
	if r.Start != nil && bytes.Compare(userKey, r.Start) < 0 {
		return false
	}
	if r.End != nil && bytes.Compare(userKey, r.End) >= 0 {
		return false
	}
	return true
}

// Split cuts p's keyspace into at most maxShards disjoint, contiguous
// SubRanges that together cover (-inf, +inf): the first range has a nil
// Start, the last a nil End, and each range's End is the next range's
// Start. Cut points are drawn from the input files' boundary user keys —
// the only positions the plan's metadata can place without reading data —
// and chosen so the estimated input bytes per shard are balanced. Shards
// that would receive no bytes are never emitted, so callers may treat a
// single-element result as "do not parallelise".
//
// Split is pure: it reads only the plan and allocates its result.
func Split(p *Plan, maxShards int) []SubRange {
	files := p.Files()
	if maxShards <= 1 || len(files) < 2 {
		return []SubRange{{}}
	}

	// Candidate cut keys: each file's smallest user key (cutting there moves
	// the whole file to the next shard) and the position just past its
	// largest (cutting there keeps the file whole in the current shard).
	// keySucc makes the "just past" position a real key so cuts stay
	// exclusive upper bounds.
	cands := make([][]byte, 0, 2*len(files))
	for _, f := range files {
		cands = append(cands, f.Smallest.UserKey(), keySucc(f.Largest.UserKey()))
	}
	sort.Slice(cands, func(i, j int) bool { return bytes.Compare(cands[i], cands[j]) < 0 })
	cands = dedupKeys(cands)

	// weightBelow(c) estimates the input bytes that a cut at c places in
	// shards below it: whole files ending before c count fully, files
	// straddling c count half (the metadata cannot see inside a file).
	var total int64
	for _, f := range files {
		total += int64(f.Size)
	}
	weightBelow := func(c []byte) int64 {
		var w int64
		for _, f := range files {
			switch {
			case bytes.Compare(f.Largest.UserKey(), c) < 0:
				w += int64(f.Size)
			case bytes.Compare(f.Smallest.UserKey(), c) < 0:
				w += int64(f.Size) / 2
			}
		}
		return w
	}

	target := total / int64(maxShards)
	if target <= 0 {
		return []SubRange{{}}
	}
	var cuts [][]byte
	var lastW int64
	for _, c := range cands {
		if len(cuts) == maxShards-1 {
			break
		}
		w := weightBelow(c)
		// Cut only where at least a shard's worth of bytes accumulated since
		// the previous cut and bytes remain above — empty head or tail
		// shards would burn a worker on nothing.
		if w-lastW >= target && total-w > 0 {
			cuts = append(cuts, append([]byte(nil), c...))
			lastW = w
		}
	}
	if len(cuts) == 0 {
		return []SubRange{{}}
	}

	ranges := make([]SubRange, 0, len(cuts)+1)
	var start []byte
	for _, c := range cuts {
		ranges = append(ranges, SubRange{Start: start, End: c})
		start = c
	}
	return append(ranges, SubRange{Start: start})
}

// keySucc returns the smallest user key strictly greater than k.
func keySucc(k []byte) []byte {
	s := make([]byte, len(k)+1)
	copy(s, k)
	return s
}

// dedupKeys removes adjacent duplicates from a sorted key slice, in place.
func dedupKeys(ks [][]byte) [][]byte {
	out := ks[:0]
	for _, k := range ks {
		if len(out) == 0 || !bytes.Equal(out[len(out)-1], k) {
			out = append(out, k)
		}
	}
	return out
}
