// Package compaction decides what to compact. The picker is pure — it
// inspects an immutable manifest.Version and returns a plan — so it is
// easily unit-tested; the lsm package executes plans.
//
// The policy is the paper's "1-leveling" (RocksDB leveled) scheme: L0→L1
// when L0 accumulates L0Trigger files, and Li→Li+1 when level i exceeds its
// byte target, with targets growing by SizeRatio per level.
package compaction

import (
	"bytes"

	"adcache/internal/manifest"
)

// Config carries the shape parameters the picker needs.
type Config struct {
	// L0Trigger is the L0 file count that triggers an L0→L1 compaction.
	L0Trigger int
	// L1TargetSize is level 1's byte budget.
	L1TargetSize int64
	// SizeRatio multiplies the budget per level (paper: 10).
	SizeRatio int
	// NumLevels is the level count.
	NumLevels int
}

// TargetSize returns level's byte budget (level >= 1).
func (c Config) TargetSize(level int) int64 {
	size := c.L1TargetSize
	for i := 1; i < level; i++ {
		size *= int64(c.SizeRatio)
	}
	return size
}

// Plan describes one compaction: merge Inputs (from InputLevel) and
// Overlaps (from OutputLevel) into OutputLevel.
type Plan struct {
	InputLevel  int
	OutputLevel int
	Inputs      []*manifest.FileMeta
	Overlaps    []*manifest.FileMeta
	// LastLevel reports that OutputLevel is the deepest level containing
	// data after the compaction, so tombstones may be dropped.
	LastLevel bool
}

// Files returns all participating files.
func (p *Plan) Files() []*manifest.FileMeta {
	out := make([]*manifest.FileMeta, 0, len(p.Inputs)+len(p.Overlaps))
	out = append(out, p.Inputs...)
	out = append(out, p.Overlaps...)
	return out
}

// Pick selects the next compaction for v, or nil if none is needed.
// roundRobin holds per-level cursors (user keys) so size-triggered
// compactions rotate through a level instead of hammering its first file;
// Pick updates it.
func Pick(v *manifest.Version, cfg Config, roundRobin map[int][]byte) *Plan {
	// L0 has priority: overlapping runs hurt reads the most.
	if len(v.Levels[0]) >= cfg.L0Trigger {
		return pickL0(v, cfg)
	}
	// Deeper levels: compact the most oversized level first.
	bestLevel, bestScore := -1, 1.0
	for level := 1; level < cfg.NumLevels-1; level++ {
		size := v.SizeOfLevel(level)
		if size == 0 {
			continue
		}
		score := float64(size) / float64(cfg.TargetSize(level))
		if score > bestScore {
			bestLevel, bestScore = level, score
		}
	}
	if bestLevel < 0 {
		return nil
	}
	return pickLevel(v, cfg, bestLevel, roundRobin)
}

func pickL0(v *manifest.Version, cfg Config) *Plan {
	inputs := append([]*manifest.FileMeta(nil), v.Levels[0]...)
	lo, hi := keyBounds(inputs)
	overlaps := v.Overlapping(1, lo, hi)
	return &Plan{
		InputLevel:  0,
		OutputLevel: 1,
		Inputs:      inputs,
		Overlaps:    overlaps,
		LastLevel:   deepestDataLevel(v) <= 1,
	}
}

func pickLevel(v *manifest.Version, cfg Config, level int, roundRobin map[int][]byte) *Plan {
	files := v.Levels[level]
	// Choose the first file past the round-robin cursor.
	var file *manifest.FileMeta
	cursor := roundRobin[level]
	for _, f := range files {
		if cursor == nil || bytes.Compare(f.Smallest.UserKey(), cursor) > 0 {
			file = f
			break
		}
	}
	if file == nil {
		file = files[0]
	}
	roundRobin[level] = append([]byte(nil), file.Largest.UserKey()...)

	inputs := []*manifest.FileMeta{file}
	lo, hi := keyBounds(inputs)
	overlaps := v.Overlapping(level+1, lo, hi)
	return &Plan{
		InputLevel:  level,
		OutputLevel: level + 1,
		Inputs:      inputs,
		Overlaps:    overlaps,
		LastLevel:   deepestDataLevel(v) <= level+1,
	}
}

// keyBounds returns the min smallest and max largest user keys of files.
func keyBounds(files []*manifest.FileMeta) (lo, hi []byte) {
	for _, f := range files {
		if lo == nil || bytes.Compare(f.Smallest.UserKey(), lo) < 0 {
			lo = f.Smallest.UserKey()
		}
		if hi == nil || bytes.Compare(f.Largest.UserKey(), hi) > 0 {
			hi = f.Largest.UserKey()
		}
	}
	return lo, hi
}

// deepestDataLevel returns the index of the deepest non-empty level, or 0.
func deepestDataLevel(v *manifest.Version) int {
	deepest := 0
	for i, level := range v.Levels {
		if len(level) > 0 {
			deepest = i
		}
	}
	return deepest
}
