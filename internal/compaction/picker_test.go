package compaction

import (
	"testing"

	"adcache/internal/keys"
	"adcache/internal/manifest"
)

func fm(num uint64, lo, hi string, size uint64) *manifest.FileMeta {
	return &manifest.FileMeta{
		FileNum:  num,
		Size:     size,
		Smallest: keys.Make([]byte(lo), 1, keys.KindSet),
		Largest:  keys.Make([]byte(hi), 1, keys.KindSet),
	}
}

func testConfig() Config {
	return Config{L0Trigger: 4, L1TargetSize: 1000, SizeRatio: 10, NumLevels: 5}
}

func TestNoCompactionWhenHealthy(t *testing.T) {
	v := manifest.NewVersion(5)
	v.Levels[0] = []*manifest.FileMeta{fm(1, "a", "z", 100)}
	v.Levels[1] = []*manifest.FileMeta{fm(2, "a", "z", 500)}
	if plan := Pick(v, testConfig(), map[int][]byte{}); plan != nil {
		t.Fatalf("unexpected plan: %+v", plan)
	}
}

func TestL0TriggerCompactsAllL0PlusOverlaps(t *testing.T) {
	v := manifest.NewVersion(5)
	for i := 0; i < 4; i++ {
		v.Levels[0] = append(v.Levels[0], fm(uint64(i+1), "c", "m", 100))
	}
	v.Levels[1] = []*manifest.FileMeta{
		fm(10, "a", "b", 100), // no overlap
		fm(11, "d", "f", 100), // overlap
		fm(12, "n", "z", 100), // no overlap
	}
	plan := Pick(v, testConfig(), map[int][]byte{})
	if plan == nil || plan.InputLevel != 0 || plan.OutputLevel != 1 {
		t.Fatalf("plan = %+v", plan)
	}
	if len(plan.Inputs) != 4 {
		t.Fatalf("inputs = %d files", len(plan.Inputs))
	}
	if len(plan.Overlaps) != 1 || plan.Overlaps[0].FileNum != 11 {
		t.Fatalf("overlaps = %+v", plan.Overlaps)
	}
}

func TestSizeTriggeredLevelCompaction(t *testing.T) {
	v := manifest.NewVersion(5)
	// L1 over its 1000-byte target.
	v.Levels[1] = []*manifest.FileMeta{
		fm(1, "a", "f", 800),
		fm(2, "g", "p", 800),
	}
	v.Levels[2] = []*manifest.FileMeta{fm(3, "a", "h", 500), fm(4, "i", "z", 500)}
	plan := Pick(v, testConfig(), map[int][]byte{})
	if plan == nil || plan.InputLevel != 1 || plan.OutputLevel != 2 {
		t.Fatalf("plan = %+v", plan)
	}
	if len(plan.Inputs) != 1 {
		t.Fatalf("inputs = %d", len(plan.Inputs))
	}
}

func TestRoundRobinRotates(t *testing.T) {
	v := manifest.NewVersion(5)
	v.Levels[1] = []*manifest.FileMeta{
		fm(1, "a", "f", 900),
		fm(2, "g", "p", 900),
	}
	rr := map[int][]byte{}
	p1 := Pick(v, testConfig(), rr)
	if p1.Inputs[0].FileNum != 1 {
		t.Fatalf("first pick = %d", p1.Inputs[0].FileNum)
	}
	p2 := Pick(v, testConfig(), rr)
	if p2.Inputs[0].FileNum != 2 {
		t.Fatalf("second pick = %d (cursor did not advance)", p2.Inputs[0].FileNum)
	}
	// Cursor wraps.
	p3 := Pick(v, testConfig(), rr)
	if p3.Inputs[0].FileNum != 1 {
		t.Fatalf("third pick = %d (cursor did not wrap)", p3.Inputs[0].FileNum)
	}
}

func TestLastLevelFlag(t *testing.T) {
	v := manifest.NewVersion(5)
	for i := 0; i < 4; i++ {
		v.Levels[0] = append(v.Levels[0], fm(uint64(i+1), "a", "z", 100))
	}
	plan := Pick(v, testConfig(), map[int][]byte{})
	if !plan.LastLevel {
		t.Fatal("L0→L1 with empty deeper levels must allow tombstone drop")
	}

	v.Levels[3] = []*manifest.FileMeta{fm(9, "a", "z", 100)}
	plan = Pick(v, testConfig(), map[int][]byte{})
	if plan.LastLevel {
		t.Fatal("data below the output level must preserve tombstones")
	}
}

func TestTargetSizes(t *testing.T) {
	cfg := testConfig()
	if cfg.TargetSize(1) != 1000 || cfg.TargetSize(2) != 10000 || cfg.TargetSize(3) != 100000 {
		t.Fatalf("targets = %d %d %d", cfg.TargetSize(1), cfg.TargetSize(2), cfg.TargetSize(3))
	}
}

func TestPlanFiles(t *testing.T) {
	p := &Plan{
		Inputs:   []*manifest.FileMeta{fm(1, "a", "b", 1)},
		Overlaps: []*manifest.FileMeta{fm(2, "a", "b", 1), fm(3, "c", "d", 1)},
	}
	if len(p.Files()) != 3 {
		t.Fatalf("Files = %d", len(p.Files()))
	}
}
