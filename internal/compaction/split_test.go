package compaction

import (
	"bytes"
	"fmt"
	"testing"

	"adcache/internal/manifest"
)

// checkRangeInvariants asserts the structural guarantees Split documents:
// sorted, contiguous, disjoint ranges covering (-inf, +inf), at most
// maxShards of them.
func checkRangeInvariants(t *testing.T, ranges []SubRange, maxShards int) {
	t.Helper()
	if len(ranges) == 0 {
		t.Fatal("no ranges")
	}
	if len(ranges) > maxShards && maxShards >= 1 {
		t.Fatalf("%d ranges exceeds maxShards %d", len(ranges), maxShards)
	}
	if ranges[0].Start != nil {
		t.Fatalf("first range starts at %q, want -inf", ranges[0].Start)
	}
	if ranges[len(ranges)-1].End != nil {
		t.Fatalf("last range ends at %q, want +inf", ranges[len(ranges)-1].End)
	}
	for i := 1; i < len(ranges); i++ {
		if !bytes.Equal(ranges[i-1].End, ranges[i].Start) {
			t.Fatalf("gap between ranges %d and %d: end %q != start %q",
				i-1, i, ranges[i-1].End, ranges[i].Start)
		}
		if bytes.Compare(ranges[i-1].Start, ranges[i].Start) >= 0 && ranges[i-1].Start != nil {
			t.Fatalf("ranges not strictly increasing at %d", i)
		}
	}
}

func levelPlan(inputs, overlaps []*manifest.FileMeta) *Plan {
	return &Plan{InputLevel: 1, OutputLevel: 2, Inputs: inputs, Overlaps: overlaps}
}

func TestSplitSingleShard(t *testing.T) {
	p := levelPlan([]*manifest.FileMeta{fm(1, "a", "m", 100)},
		[]*manifest.FileMeta{fm(2, "a", "z", 100)})
	for _, k := range []int{0, 1} {
		ranges := Split(p, k)
		if len(ranges) != 1 || ranges[0].Start != nil || ranges[0].End != nil {
			t.Fatalf("Split(k=%d) = %+v, want one unbounded range", k, ranges)
		}
	}
}

func TestSplitSingleFileStaysSerial(t *testing.T) {
	p := levelPlan([]*manifest.FileMeta{fm(1, "a", "z", 1<<20)}, nil)
	if ranges := Split(p, 8); len(ranges) != 1 {
		t.Fatalf("single input file split into %d ranges", len(ranges))
	}
}

func TestSplitBalancedUniformFiles(t *testing.T) {
	var overlaps []*manifest.FileMeta
	for i := 0; i < 8; i++ {
		lo := fmt.Sprintf("k%02d0", i)
		hi := fmt.Sprintf("k%02d9", i)
		overlaps = append(overlaps, fm(uint64(10+i), lo, hi, 1<<20))
	}
	p := levelPlan([]*manifest.FileMeta{fm(1, "k000", "k079", 1<<20)}, overlaps)
	ranges := Split(p, 4)
	checkRangeInvariants(t, ranges, 4)
	if len(ranges) < 2 {
		t.Fatalf("expected a real split of 9 MiB across 8 boundary files, got %d ranges", len(ranges))
	}
	// Balance: no shard should hold more than half the whole-file weight.
	var total int64
	for _, f := range p.Files() {
		total += int64(f.Size)
	}
	for i, r := range ranges {
		var w int64
		for _, f := range p.Files() {
			if r.Contains(f.Smallest.UserKey()) {
				w += int64(f.Size)
			}
		}
		if w > total*2/3 {
			t.Fatalf("shard %d holds %d of %d bytes — unbalanced split %+v", i, w, total, ranges)
		}
	}
}

func TestSplitEveryKeyInExactlyOneRange(t *testing.T) {
	var overlaps []*manifest.FileMeta
	for i := 0; i < 12; i++ {
		overlaps = append(overlaps, fm(uint64(10+i),
			fmt.Sprintf("k%03d", i*10), fmt.Sprintf("k%03d", i*10+9), uint64(1+i)<<16))
	}
	p := levelPlan([]*manifest.FileMeta{fm(1, "k000", "k119", 4<<16)}, overlaps)
	for _, k := range []int{2, 3, 8} {
		ranges := Split(p, k)
		checkRangeInvariants(t, ranges, k)
		for probe := 0; probe < 130; probe++ {
			key := []byte(fmt.Sprintf("k%03d", probe))
			n := 0
			for _, r := range ranges {
				if r.Contains(key) {
					n++
				}
			}
			if n != 1 {
				t.Fatalf("k=%d: key %q in %d ranges", k, key, n)
			}
		}
	}
}

func TestSplitSkewedSizes(t *testing.T) {
	// One giant file at the front: the cut should not land such that the
	// tail shard is empty of bytes.
	overlaps := []*manifest.FileMeta{
		fm(10, "a", "c", 8<<20),
		fm(11, "d", "e", 1<<18),
		fm(12, "f", "g", 1<<18),
	}
	p := levelPlan([]*manifest.FileMeta{fm(1, "a", "g", 1<<18)}, overlaps)
	ranges := Split(p, 4)
	checkRangeInvariants(t, ranges, 4)
	for i, r := range ranges {
		hasBytes := false
		for _, f := range p.Files() {
			if r.Contains(f.Smallest.UserKey()) || r.Contains(f.Largest.UserKey()) {
				hasBytes = true
			}
		}
		if !hasBytes {
			t.Fatalf("shard %d of %+v covers no input bytes", i, ranges)
		}
	}
}

func TestSubRangeContains(t *testing.T) {
	r := SubRange{Start: []byte("d"), End: []byte("m")}
	for _, tc := range []struct {
		key  string
		want bool
	}{{"a", false}, {"d", true}, {"h", true}, {"m", false}, {"z", false}} {
		if got := r.Contains([]byte(tc.key)); got != tc.want {
			t.Fatalf("Contains(%q) = %v, want %v", tc.key, got, tc.want)
		}
	}
	all := SubRange{}
	if !all.Contains([]byte("anything")) {
		t.Fatal("zero SubRange must contain every key")
	}
}
