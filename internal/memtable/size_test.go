//go:build !race

// The heap-delta measurement below is meaningless under the race detector,
// which inflates every allocation with shadow memory.

package memtable

import (
	"fmt"
	"math/rand"
	"runtime"
	"testing"

	"adcache/internal/keys"
)

// TestApproximateSizeTracksHeap pins the memtable's physical-byte
// accounting against the Go heap: after inserting many entries, the sum of
// entryBytes charges must land within ±30% of the measured heap growth.
// The unified memory arbiter trades these bytes against the block cache's
// physical charges, so a systematic over- or under-count here would skew
// every budget decision.
func TestApproximateSizeTracksHeap(t *testing.T) {
	const n = 20000
	rng := rand.New(rand.NewSource(42))

	// Source material is allocated before the baseline measurement and
	// stays live throughout, so it cancels out of the heap delta. The
	// measured region contains only the allocations the memtable charges
	// for: internal keys, value copies, and skiplist nodes.
	userKeys := make([][]byte, n)
	vals := make([][]byte, n)
	for i := range userKeys {
		userKeys[i] = []byte(fmt.Sprintf("user%012d", rng.Intn(10*n)))
		vals[i] = make([]byte, 20+rng.Intn(200))
	}

	runtime.GC()
	var before runtime.MemStats
	runtime.ReadMemStats(&before)

	m := New(1)
	for i := range userKeys {
		ik := keys.Make(userKeys[i], uint64(i+1), keys.KindSet)
		v := append([]byte(nil), vals[i]...)
		m.Set(ik, v)
	}

	runtime.GC()
	var after runtime.MemStats
	runtime.ReadMemStats(&after)

	measured := int64(after.HeapAlloc) - int64(before.HeapAlloc)
	charged := m.ApproximateSize()
	if measured <= 0 {
		t.Fatalf("heap delta not measurable: %d", measured)
	}
	ratio := float64(charged) / float64(measured)
	t.Logf("charged=%d measured=%d ratio=%.3f (entries=%d)", charged, measured, ratio, m.Count())
	if ratio < 0.70 || ratio > 1.30 {
		t.Fatalf("ApproximateSize %d vs heap growth %d: ratio %.3f outside [0.70, 1.30]",
			charged, measured, ratio)
	}
	runtime.KeepAlive(m)
	runtime.KeepAlive(userKeys)
	runtime.KeepAlive(vals)
}
