package memtable

import (
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"testing"
	"testing/quick"

	"adcache/internal/keys"
)

func TestSetGet(t *testing.T) {
	m := New(1)
	m.Set(keys.Make([]byte("a"), 1, keys.KindSet), []byte("v1"))
	v, deleted, ok := m.Get([]byte("a"), keys.MaxSeq)
	if !ok || deleted || string(v) != "v1" {
		t.Fatalf("Get = %q deleted=%v ok=%v", v, deleted, ok)
	}
	if _, _, ok := m.Get([]byte("b"), keys.MaxSeq); ok {
		t.Fatal("found absent key")
	}
}

func TestVersionsAndSnapshots(t *testing.T) {
	m := New(1)
	m.Set(keys.Make([]byte("k"), 1, keys.KindSet), []byte("v1"))
	m.Set(keys.Make([]byte("k"), 5, keys.KindSet), []byte("v5"))
	m.Set(keys.Make([]byte("k"), 9, keys.KindDelete), nil)
	if _, deleted, ok := m.Get([]byte("k"), keys.MaxSeq); !ok || !deleted {
		t.Fatal("latest version should be the tombstone")
	}
	if v, _, ok := m.Get([]byte("k"), 7); !ok || string(v) != "v5" {
		t.Fatalf("snapshot 7 = %q", v)
	}
	if v, _, ok := m.Get([]byte("k"), 1); !ok || string(v) != "v1" {
		t.Fatalf("snapshot 1 = %q", v)
	}
	if _, _, ok := m.Get([]byte("k"), 0); ok {
		t.Fatal("snapshot 0 should see nothing")
	}
}

func TestIterOrdered(t *testing.T) {
	m := New(42)
	perm := rand.New(rand.NewSource(1)).Perm(500)
	for _, i := range perm {
		m.Set(keys.Make([]byte(fmt.Sprintf("key%06d", i)), uint64(i+1), keys.KindSet), []byte("v"))
	}
	it := m.NewIter()
	i := 0
	for ok := it.First(); ok; ok = it.Next() {
		want := fmt.Sprintf("key%06d", i)
		if string(it.Key().UserKey()) != want {
			t.Fatalf("entry %d = %s, want %s", i, it.Key().UserKey(), want)
		}
		i++
	}
	if i != 500 {
		t.Fatalf("iterated %d", i)
	}
}

func TestIterSeek(t *testing.T) {
	m := New(1)
	for i := 0; i < 100; i += 2 {
		m.Set(keys.Make([]byte(fmt.Sprintf("key%06d", i)), uint64(i+1), keys.KindSet), []byte("v"))
	}
	it := m.NewIter()
	if !it.Seek(keys.MakeSearch([]byte("key000050"), keys.MaxSeq)) {
		t.Fatal("seek failed")
	}
	if string(it.Key().UserKey()) != "key000050" {
		t.Fatalf("seek landed on %s", it.Key().UserKey())
	}
	// Seek to an absent key lands on the successor.
	it.Seek(keys.MakeSearch([]byte("key000051"), keys.MaxSeq))
	if string(it.Key().UserKey()) != "key000052" {
		t.Fatalf("seek to gap landed on %s", it.Key().UserKey())
	}
}

func TestSizeAndCount(t *testing.T) {
	m := New(1)
	if !m.Empty() {
		t.Fatal("new memtable not empty")
	}
	m.Set(keys.Make([]byte("abc"), 1, keys.KindSet), []byte("defgh"))
	if m.Count() != 1 || m.Empty() {
		t.Fatal("count wrong after insert")
	}
	if m.ApproximateSize() <= 0 {
		t.Fatal("size not tracked")
	}
}

func TestConcurrentReadsDuringWrites(t *testing.T) {
	m := New(1)
	for i := 0; i < 1000; i++ {
		m.Set(keys.Make([]byte(fmt.Sprintf("key%06d", i)), uint64(i+1), keys.KindSet), []byte("v"))
	}
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < 2000; i++ {
				k := []byte(fmt.Sprintf("key%06d", rng.Intn(1000)))
				if _, _, ok := m.Get(k, keys.MaxSeq); !ok {
					t.Errorf("lost key %s", k)
					return
				}
			}
		}(int64(g))
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 1000; i < 2000; i++ {
			m.Set(keys.Make([]byte(fmt.Sprintf("key%06d", i)), uint64(i+1), keys.KindSet), []byte("v"))
		}
	}()
	wg.Wait()
}

// TestModelEquivalence property-checks Get/iteration against a sorted map
// model.
func TestModelEquivalence(t *testing.T) {
	f := func(ops []struct {
		Key byte
		Val byte
		Del bool
	}) bool {
		m := New(7)
		model := map[string]struct {
			val string
			del bool
		}{}
		for i, op := range ops {
			k := fmt.Sprintf("k%03d", op.Key)
			kind := keys.KindSet
			var v []byte
			if op.Del {
				kind = keys.KindDelete
			} else {
				v = []byte{op.Val}
			}
			m.Set(keys.Make([]byte(k), uint64(i+1), kind), v)
			model[k] = struct {
				val string
				del bool
			}{string(v), op.Del}
		}
		for k, want := range model {
			v, deleted, ok := m.Get([]byte(k), keys.MaxSeq)
			if !ok {
				return false
			}
			if deleted != want.del {
				return false
			}
			if !deleted && string(v) != want.val {
				return false
			}
		}
		// Iteration yields user keys in sorted order.
		var got []string
		it := m.NewIter()
		for ok := it.First(); ok; ok = it.Next() {
			got = append(got, string(it.Key().UserKey()))
		}
		return sort.StringsAreSorted(got)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
