// Package memtable implements the in-memory write buffer of the LSM engine
// as a skiplist over internal keys.
//
// Writers are serialised by the DB's write path; readers take a shared lock,
// so concurrent lookups and scans from many client goroutines are safe.
package memtable

import (
	"math/rand"
	"sync"

	"adcache/internal/keys"
)

const maxHeight = 12

type node struct {
	ikey  keys.InternalKey
	value []byte
	next  []*node
}

// nodeStructBytes is the resident size of one node struct: three slice
// headers (72 bytes) rounded up to the allocator's 80-byte size class.
const nodeStructBytes = 80

// allocSize approximates the heap-resident footprint of an n-byte
// allocation: Go's allocator hands out the next small-object size class,
// not the requested length, so charging raw lengths undercounts what the
// memtable actually pins in memory.
func allocSize(n int) int64 {
	switch {
	case n == 0:
		return 0
	case n <= 8:
		return 8
	case n <= 16:
		return 16
	case n <= 32:
		return 32
	case n <= 1024:
		return (int64(n) + 15) &^ 15
	default:
		return (int64(n) + 511) &^ 511
	}
}

// entryBytes is the approximate physical footprint of one inserted entry:
// the node struct, its height-h next array, and the key and value backing
// arrays it pins. This is what ApproximateSize sums, so the memtable's
// ledger charges the same physical currency as the block cache's
// physical-byte accounting.
func entryBytes(ikeyLen, valueLen, h int) int64 {
	return nodeStructBytes + allocSize(8*h) + allocSize(ikeyLen) + allocSize(valueLen)
}

// MemTable is a sorted in-memory buffer of internal keys.
type MemTable struct {
	mu     sync.RWMutex
	head   *node
	height int
	rnd    *rand.Rand
	size   int64
	count  int
}

// New returns an empty memtable. seed makes skiplist heights deterministic
// for reproducible tests; use any value in production.
func New(seed int64) *MemTable {
	return &MemTable{
		head:   &node{next: make([]*node, maxHeight)},
		height: 1,
		rnd:    rand.New(rand.NewSource(seed)),
	}
}

func (m *MemTable) randomHeight() int {
	h := 1
	for h < maxHeight && m.rnd.Intn(4) == 0 {
		h++
	}
	return h
}

// findGE returns the first node with ikey >= target, filling prev[] with the
// rightmost node before target at each level if prev is non-nil.
func (m *MemTable) findGE(target keys.InternalKey, prev []*node) *node {
	n := m.head
	for level := m.height - 1; level >= 0; level-- {
		for n.next[level] != nil && keys.Compare(n.next[level].ikey, target) < 0 {
			n = n.next[level]
		}
		if prev != nil {
			prev[level] = n
		}
	}
	return n.next[0]
}

// Set inserts an entry. Internal keys are unique (sequence numbers differ),
// so Set never overwrites.
func (m *MemTable) Set(ikey keys.InternalKey, value []byte) {
	m.mu.Lock()
	defer m.mu.Unlock()
	prev := make([]*node, maxHeight)
	m.findGE(ikey, prev)
	h := m.randomHeight()
	if h > m.height {
		for level := m.height; level < h; level++ {
			prev[level] = m.head
		}
		m.height = h
	}
	n := &node{ikey: ikey, value: value, next: make([]*node, h)}
	for level := 0; level < h; level++ {
		n.next[level] = prev[level].next[level]
		prev[level].next[level] = n
	}
	m.size += entryBytes(len(ikey), len(value), h)
	m.count++
}

// Get returns the newest version of userKey visible at snapshot seq.
// deleted reports a tombstone; ok reports whether any visible version exists.
func (m *MemTable) Get(userKey []byte, seq uint64) (value []byte, deleted, ok bool) {
	return m.GetSeek(keys.MakeSearch(userKey, seq), userKey)
}

// GetSeek is Get with a caller-built search key (keys.MakeSearch(userKey,
// seq) or equivalent), letting hot paths reuse one search buffer across the
// memtable queue instead of allocating per probe.
func (m *MemTable) GetSeek(search keys.InternalKey, userKey []byte) (value []byte, deleted, ok bool) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	n := m.findGE(search, nil)
	if n == nil || string(n.ikey.UserKey()) != string(userKey) {
		return nil, false, false
	}
	if n.ikey.Kind() == keys.KindDelete {
		return nil, true, true
	}
	return n.value, false, true
}

// ApproximateSize reports the approximate physical memory footprint in
// bytes: skiplist node structs, next arrays, and key/value backing arrays
// with allocator size-class rounding (see entryBytes). TestApproximateSize-
// TracksHeap pins this within ±30% of measured heap growth.
func (m *MemTable) ApproximateSize() int64 {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return m.size
}

// Count reports the number of entries (including tombstones and shadowed
// versions).
func (m *MemTable) Count() int {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return m.count
}

// Empty reports whether the memtable holds no entries.
func (m *MemTable) Empty() bool { return m.Count() == 0 }

// Iter is a forward iterator over the memtable. It holds no lock between
// positioning calls; the skiplist is append-only (nodes are never removed or
// relinked below existing nodes' nexts at level 0 past the iterator), and
// reads of next pointers race benignly only if writers run concurrently —
// the DB freezes a memtable before iterating it during flush, and live scan
// iterators take the read lock per step.
type Iter struct {
	m *MemTable
	n *node
}

// NewIter returns an iterator positioned before the first entry.
func (m *MemTable) NewIter() *Iter { return &Iter{m: m} }

// First positions at the first entry.
func (i *Iter) First() bool {
	i.m.mu.RLock()
	defer i.m.mu.RUnlock()
	i.n = i.m.head.next[0]
	return i.n != nil
}

// Seek positions at the first entry with internal key >= target.
func (i *Iter) Seek(target keys.InternalKey) bool {
	i.m.mu.RLock()
	defer i.m.mu.RUnlock()
	i.n = i.m.findGE(target, nil)
	return i.n != nil
}

// Next advances the iterator.
func (i *Iter) Next() bool {
	if i.n == nil {
		return false
	}
	i.m.mu.RLock()
	defer i.m.mu.RUnlock()
	i.n = i.n.next[0]
	return i.n != nil
}

// Valid reports whether the iterator is positioned at an entry.
func (i *Iter) Valid() bool { return i.n != nil }

// Key returns the current internal key.
func (i *Iter) Key() keys.InternalKey { return i.n.ikey }

// Value returns the current value.
func (i *Iter) Value() []byte { return i.n.value }

// Err always returns nil; memtable iteration cannot fail.
func (i *Iter) Err() error { return nil }
