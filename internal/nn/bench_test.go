package nn

import (
	"math/rand"
	"testing"
)

// The paper-sized networks: these benchmarks back the §4.2 claim that a
// control step is negligible against a 1000-operation window.
func paperMLP() *MLP {
	return NewMLP([]int{12, 256, 256, 4}, ReLU, Sigmoid, rand.New(rand.NewSource(1)))
}

func BenchmarkForward(b *testing.B) {
	m := paperMLP()
	x := make([]float32, 12)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Forward(x)
	}
}

func BenchmarkBackward(b *testing.B) {
	m := paperMLP()
	m.Forward(make([]float32, 12))
	grad := []float32{1, 0, 0, 0}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Backward(grad)
	}
}

func BenchmarkStepAdam(b *testing.B) {
	m := paperMLP()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.StepAdam(1e-3)
	}
}

// BenchmarkControlStep measures a full window's training work: two critic
// forwards, critic backward+Adam, actor forward, actor backward+Adam.
func BenchmarkControlStep(b *testing.B) {
	actor := paperMLP()
	critic := NewMLP([]int{12, 256, 256, 1}, ReLU, Linear, rand.New(rand.NewSource(2)))
	x := make([]float32, 12)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		critic.Forward(x)
		critic.Forward(x)
		critic.Backward([]float32{0.1})
		critic.StepAdam(1e-3)
		actor.Forward(x)
		actor.Backward([]float32{0.01, 0.01, 0.01, 0.01})
		actor.StepAdam(1e-3)
	}
}
