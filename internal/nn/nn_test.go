package nn

import (
	"math"
	"math/rand"
	"testing"

	"adcache/internal/vfs"
)

func TestForwardShapes(t *testing.T) {
	m := NewMLP([]int{3, 8, 2}, ReLU, Sigmoid, rand.New(rand.NewSource(1)))
	out := m.Forward([]float32{0.1, 0.2, 0.3})
	if len(out) != 2 {
		t.Fatalf("output dim = %d, want 2", len(out))
	}
	for _, v := range out {
		if v < 0 || v > 1 {
			t.Fatalf("sigmoid output %f outside [0,1]", v)
		}
	}
}

// TestGradientNumerically verifies backprop against finite differences for
// every parameter of a small network.
func TestGradientNumerically(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	m := NewMLP([]int{2, 4, 3, 1}, Tanh, Linear, rng)
	x := []float32{0.3, -0.7}

	loss := func() float64 {
		out := m.Forward(x)
		return float64(out[0]) * float64(out[0]) / 2 // L = y^2/2, dL/dy = y
	}

	// Analytic gradients.
	out := m.Forward(x)
	m.ZeroGrad()
	m.Backward([]float32{out[0]})

	const eps = 1e-3
	for l := range m.w {
		for i := range m.w[l] {
			orig := m.w[l][i]
			m.w[l][i] = orig + eps
			lp := loss()
			m.w[l][i] = orig - eps
			lm := loss()
			m.w[l][i] = orig
			numeric := (lp - lm) / (2 * eps)
			analytic := float64(m.gw[l][i])
			if math.Abs(numeric-analytic) > 1e-2*(1+math.Abs(numeric)) {
				t.Fatalf("layer %d w[%d]: numeric %f vs analytic %f", l, i, numeric, analytic)
			}
		}
		for j := range m.b[l] {
			orig := m.b[l][j]
			m.b[l][j] = orig + eps
			lp := loss()
			m.b[l][j] = orig - eps
			lm := loss()
			m.b[l][j] = orig
			numeric := (lp - lm) / (2 * eps)
			analytic := float64(m.gb[l][j])
			if math.Abs(numeric-analytic) > 1e-2*(1+math.Abs(numeric)) {
				t.Fatalf("layer %d b[%d]: numeric %f vs analytic %f", l, j, numeric, analytic)
			}
		}
	}
}

// TestInputGradientNumerically verifies the dLoss/dInput path used by
// policy-gradient updates.
func TestInputGradientNumerically(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	m := NewMLP([]int{3, 5, 1}, ReLU, Linear, rng)
	x := []float32{0.5, -0.2, 0.9}
	out := m.Forward(x)
	m.ZeroGrad()
	dIn := m.Backward([]float32{out[0]})

	const eps = 1e-3
	for i := range x {
		xp := append([]float32(nil), x...)
		xp[i] += eps
		op := m.Forward(xp)
		lp := float64(op[0]) * float64(op[0]) / 2
		xm := append([]float32(nil), x...)
		xm[i] -= eps
		om := m.Forward(xm)
		lm := float64(om[0]) * float64(om[0]) / 2
		numeric := (lp - lm) / (2 * eps)
		if math.Abs(numeric-float64(dIn[i])) > 1e-2*(1+math.Abs(numeric)) {
			t.Fatalf("dInput[%d]: numeric %f vs analytic %f", i, numeric, dIn[i])
		}
	}
}

func TestAdamLearnsRegression(t *testing.T) {
	// Fit y = 2a - b on random points; loss must drop substantially.
	rng := rand.New(rand.NewSource(4))
	m := NewMLP([]int{2, 16, 1}, Tanh, Linear, rng)
	target := func(a, b float32) float32 { return 2*a - b }
	var first, last float64
	for step := 0; step < 2000; step++ {
		a := float32(rng.Float64()*2 - 1)
		b := float32(rng.Float64()*2 - 1)
		out := m.Forward([]float32{a, b})
		diff := out[0] - target(a, b)
		if step == 0 {
			first = math.Abs(float64(diff))
		}
		last = math.Abs(float64(diff))
		m.Backward([]float32{diff})
		m.StepAdam(0.01)
	}
	if last > first/4 && last > 0.1 {
		t.Fatalf("Adam failed to learn: first err %f, last err %f", first, last)
	}
}

func TestParamAccountingMatchesPaper(t *testing.T) {
	// The paper's topology: input, two hidden layers of 256, small output.
	// Total across actor+critic ≈ 140K params ≈ 550 KB.
	actor := NewMLP([]int{12, 256, 256, 4}, ReLU, Sigmoid, rand.New(rand.NewSource(1)))
	critic := NewMLP([]int{12, 256, 256, 1}, ReLU, Linear, rand.New(rand.NewSource(2)))
	total := actor.NumParams() + critic.NumParams()
	if total < 120_000 || total > 160_000 {
		t.Fatalf("total params = %d, want ≈140K", total)
	}
	bytes := actor.MemoryBytes() + critic.MemoryBytes()
	if bytes < 450_000 || bytes > 650_000 {
		t.Fatalf("weight bytes = %d, want ≈550KB", bytes)
	}
	training := actor.TrainingMemoryBytes() + critic.TrainingMemoryBytes()
	if training < 3*bytes || training > 5*bytes {
		t.Fatalf("training bytes = %d, want ≈4× weights", training)
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	fs := vfs.NewMem()
	rng := rand.New(rand.NewSource(5))
	m := NewMLP([]int{4, 8, 2}, ReLU, Sigmoid, rng)
	x := []float32{0.1, 0.2, 0.3, 0.4}
	want := append([]float32(nil), m.Forward(x)...)
	if err := m.Save(fs, "model.gob"); err != nil {
		t.Fatalf("Save: %v", err)
	}
	m2 := NewMLP([]int{4, 8, 2}, ReLU, Sigmoid, rand.New(rand.NewSource(99)))
	if err := m2.Load(fs, "model.gob"); err != nil {
		t.Fatalf("Load: %v", err)
	}
	got := m2.Forward(x)
	for i := range want {
		if math.Abs(float64(want[i]-got[i])) > 1e-6 {
			t.Fatalf("output %d: %f vs %f after round trip", i, want[i], got[i])
		}
	}
	// Architecture mismatch must fail.
	m3 := NewMLP([]int{4, 9, 2}, ReLU, Sigmoid, rng)
	if err := m3.Load(fs, "model.gob"); err == nil {
		t.Fatal("Load with mismatched architecture succeeded")
	}
}
