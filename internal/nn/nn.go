// Package nn implements the small fully-connected networks behind AdCache's
// actor-critic controller: float32 MLPs with two hidden layers of 256 units
// (the paper's topology, ~140K parameters ≈ 550 KB of weights), manual
// backprop, and Adam.
//
// Networks are not safe for concurrent use; the RL agent owns them from a
// single background goroutine.
package nn

import (
	"encoding/gob"
	"errors"
	"fmt"
	"math"
	"math/rand"

	"adcache/internal/vfs"
)

// ErrArchitectureMismatch is returned (wrapped) by Load when the saved
// snapshot's layer sizes differ from the receiver's — e.g. a pretrained
// agent serialized before the state/action space grew. Callers reject such
// models cleanly instead of silently misindexing features.
var ErrArchitectureMismatch = errors.New("nn: architecture mismatch")

// Act selects a layer activation.
type Act int

// Supported activations.
const (
	Linear Act = iota
	ReLU
	Sigmoid
	Tanh
)

func (a Act) apply(z float32) float32 {
	switch a {
	case ReLU:
		if z < 0 {
			return 0
		}
		return z
	case Sigmoid:
		return float32(1 / (1 + math.Exp(-float64(z))))
	case Tanh:
		return float32(math.Tanh(float64(z)))
	default:
		return z
	}
}

// derivFromOutput returns dact/dz given the activation output y (all
// supported activations admit this form).
func (a Act) derivFromOutput(y float32) float32 {
	switch a {
	case ReLU:
		if y > 0 {
			return 1
		}
		return 0
	case Sigmoid:
		return y * (1 - y)
	case Tanh:
		return 1 - y*y
	default:
		return 1
	}
}

// MLP is a feed-forward network. Layer l maps sizes[l] → sizes[l+1].
type MLP struct {
	sizes  []int
	acts   []Act // one per layer
	w      [][]float32
	b      [][]float32
	gw, gb [][]float32

	// Adam state.
	mw, vw, mb, vb [][]float32
	step           int

	// Forward scratch (inputs and activations per layer).
	as [][]float32
}

// NewMLP builds a network with the given layer sizes. hidden is applied to
// every layer except the last, which uses out. Weights use He/Xavier-style
// scaled initialisation from rng.
func NewMLP(sizes []int, hidden, out Act, rng *rand.Rand) *MLP {
	if len(sizes) < 2 {
		panic("nn: MLP needs at least input and output sizes")
	}
	n := len(sizes) - 1
	m := &MLP{sizes: sizes, acts: make([]Act, n)}
	for l := 0; l < n; l++ {
		if l == n-1 {
			m.acts[l] = out
		} else {
			m.acts[l] = hidden
		}
		in, outDim := sizes[l], sizes[l+1]
		scale := float32(math.Sqrt(2 / float64(in)))
		w := make([]float32, in*outDim)
		for i := range w {
			w[i] = float32(rng.NormFloat64()) * scale
		}
		m.w = append(m.w, w)
		m.b = append(m.b, make([]float32, outDim))
		m.gw = append(m.gw, make([]float32, in*outDim))
		m.gb = append(m.gb, make([]float32, outDim))
		m.mw = append(m.mw, make([]float32, in*outDim))
		m.vw = append(m.vw, make([]float32, in*outDim))
		m.mb = append(m.mb, make([]float32, outDim))
		m.vb = append(m.vb, make([]float32, outDim))
	}
	m.as = make([][]float32, n+1)
	return m
}

// Forward runs the network on x and returns the output activations. The
// returned slice is owned by the network and valid until the next Forward.
func (m *MLP) Forward(x []float32) []float32 {
	if len(x) != m.sizes[0] {
		panic(fmt.Sprintf("nn: input size %d, want %d", len(x), m.sizes[0]))
	}
	m.as[0] = append(m.as[0][:0], x...)
	cur := m.as[0]
	for l := range m.w {
		in, out := m.sizes[l], m.sizes[l+1]
		if cap(m.as[l+1]) < out {
			m.as[l+1] = make([]float32, out)
		}
		next := m.as[l+1][:out]
		w := m.w[l]
		for j := 0; j < out; j++ {
			sum := m.b[l][j]
			row := w[j*in : (j+1)*in]
			for i, xi := range cur {
				sum += row[i] * xi
			}
			next[j] = m.acts[l].apply(sum)
		}
		m.as[l+1] = next
		cur = next
	}
	return cur
}

// Backward back-propagates dLoss/dOutput from the most recent Forward,
// accumulating parameter gradients, and returns dLoss/dInput.
func (m *MLP) Backward(dOut []float32) []float32 {
	n := len(m.w)
	delta := append([]float32(nil), dOut...)
	for l := n - 1; l >= 0; l-- {
		in, out := m.sizes[l], m.sizes[l+1]
		act := m.as[l+1]
		for j := 0; j < out; j++ {
			delta[j] *= m.acts[l].derivFromOutput(act[j])
		}
		prev := m.as[l]
		w := m.w[l]
		gw := m.gw[l]
		gb := m.gb[l]
		dPrev := make([]float32, in)
		for j := 0; j < out; j++ {
			dj := delta[j]
			gb[j] += dj
			row := w[j*in : (j+1)*in]
			grow := gw[j*in : (j+1)*in]
			for i := 0; i < in; i++ {
				grow[i] += dj * prev[i]
				dPrev[i] += dj * row[i]
			}
		}
		delta = dPrev
	}
	return delta
}

// ZeroGrad clears accumulated gradients.
func (m *MLP) ZeroGrad() {
	for l := range m.gw {
		clear32(m.gw[l])
		clear32(m.gb[l])
	}
}

func clear32(s []float32) {
	for i := range s {
		s[i] = 0
	}
}

// Adam hyperparameters (standard defaults).
const (
	adamBeta1 = 0.9
	adamBeta2 = 0.999
	adamEps   = 1e-8
)

// StepAdam applies one Adam update with learning rate lr using the
// accumulated gradients, then zeroes them. The inner loop stays in float32
// (the tuner runs inline with serving in synchronous mode, so this is on a
// measured path).
func (m *MLP) StepAdam(lr float64) {
	m.step++
	invBC1 := float32(1 / (1 - math.Pow(adamBeta1, float64(m.step))))
	invBC2 := float32(1 / (1 - math.Pow(adamBeta2, float64(m.step))))
	const (
		b1  = float32(adamBeta1)
		b2  = float32(adamBeta2)
		eps = float32(adamEps)
	)
	lr32 := float32(lr)
	// tiny flushes would-be denormal moments to zero: once gradients get
	// small, persistent denormals in mo/vo otherwise cost x86 microcode
	// traps on every subsequent step (a measured 20× slowdown).
	const tiny = 1e-30
	update := func(w, g, mo, vo []float32) {
		for i := range w {
			gi := g[i]
			m1 := b1*mo[i] + (1-b1)*gi
			if m1 < tiny && m1 > -tiny {
				m1 = 0
			}
			mo[i] = m1
			v1 := b2*vo[i] + (1-b2)*gi*gi
			if v1 < tiny {
				v1 = 0
			}
			vo[i] = v1
			w[i] -= lr32 * (m1 * invBC1) / (sqrt32(v1*invBC2) + eps)
		}
	}
	for l := range m.w {
		update(m.w[l], m.gw[l], m.mw[l], m.vw[l])
		update(m.b[l], m.gb[l], m.mb[l], m.vb[l])
	}
	m.ZeroGrad()
}

func sqrt32(v float32) float32 { return float32(math.Sqrt(float64(v))) }

// NumParams reports the parameter count (weights + biases).
func (m *MLP) NumParams() int {
	n := 0
	for l := range m.w {
		n += len(m.w[l]) + len(m.b[l])
	}
	return n
}

// MemoryBytes reports bytes held by parameters alone (float32), the
// quantity in the paper's Table 2 "model parameters" row.
func (m *MLP) MemoryBytes() int { return 4 * m.NumParams() }

// TrainingMemoryBytes adds gradient and Adam moment buffers: parameters ×4
// (params + grads + first/second moments), the paper's "~4× parameters"
// accounting.
func (m *MLP) TrainingMemoryBytes() int { return 4 * m.MemoryBytes() }

// snapshot is the gob-serialisable form of an MLP.
type snapshot struct {
	Sizes []int
	Acts  []Act
	W     [][]float32
	B     [][]float32
}

// Save writes the network weights to path on fs (pretraining artifacts).
func (m *MLP) Save(fs vfs.FS, path string) error {
	f, err := fs.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	enc := gob.NewEncoder(writerAdapter{f})
	return enc.Encode(snapshot{Sizes: m.sizes, Acts: m.acts, W: m.w, B: m.b})
}

// Load reads network weights from path on fs. The architecture must match.
func (m *MLP) Load(fs vfs.FS, path string) error {
	f, err := fs.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	size, err := f.Size()
	if err != nil {
		return err
	}
	data := make([]byte, size)
	if _, err := f.ReadAt(data, 0); err != nil {
		return err
	}
	var snap snapshot
	if err := gob.NewDecoder(newByteReader(data)).Decode(&snap); err != nil {
		return err
	}
	if len(snap.Sizes) != len(m.sizes) {
		return fmt.Errorf("%w: %v vs %v", ErrArchitectureMismatch, snap.Sizes, m.sizes)
	}
	for i := range snap.Sizes {
		if snap.Sizes[i] != m.sizes[i] {
			return fmt.Errorf("%w: %v vs %v", ErrArchitectureMismatch, snap.Sizes, m.sizes)
		}
	}
	m.acts = snap.Acts
	m.w = snap.W
	m.b = snap.B
	return nil
}

type writerAdapter struct{ f vfs.File }

func (w writerAdapter) Write(p []byte) (int, error) { return w.f.Write(p) }

type byteReader struct {
	data []byte
	off  int
}

func newByteReader(data []byte) *byteReader { return &byteReader{data: data} }

func (r *byteReader) Read(p []byte) (int, error) {
	if r.off >= len(r.data) {
		return 0, fmt.Errorf("EOF")
	}
	n := copy(p, r.data[r.off:])
	r.off += n
	return n, nil
}
