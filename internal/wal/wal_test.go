package wal

import (
	"fmt"
	"testing"

	"adcache/internal/keys"
	"adcache/internal/vfs"
)

func TestAppendReplay(t *testing.T) {
	fs := vfs.NewMem()
	f, _ := fs.Create("wal")
	w := NewWriter(f)
	for i := 0; i < 100; i++ {
		rec := Record{
			Seq:   uint64(i + 1),
			Kind:  keys.KindSet,
			Key:   []byte(fmt.Sprintf("key%03d", i)),
			Value: []byte(fmt.Sprintf("val%03d", i)),
		}
		if err := w.Append(rec); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	g, _ := fs.Open("wal")
	var got []Record
	maxSeq, err := Replay(g, func(r Record) error {
		got = append(got, r)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if maxSeq != 100 {
		t.Fatalf("maxSeq = %d", maxSeq)
	}
	if len(got) != 100 {
		t.Fatalf("replayed %d records", len(got))
	}
	for i, r := range got {
		if r.Seq != uint64(i+1) || string(r.Key) != fmt.Sprintf("key%03d", i) ||
			string(r.Value) != fmt.Sprintf("val%03d", i) {
			t.Fatalf("record %d = %+v", i, r)
		}
	}
}

func TestDeleteRecords(t *testing.T) {
	fs := vfs.NewMem()
	f, _ := fs.Create("wal")
	w := NewWriter(f)
	w.Append(Record{Seq: 1, Kind: keys.KindDelete, Key: []byte("k")})
	w.Close()
	g, _ := fs.Open("wal")
	Replay(g, func(r Record) error {
		if r.Kind != keys.KindDelete || len(r.Value) != 0 {
			t.Fatalf("record = %+v", r)
		}
		return nil
	})
}

func TestTornTailStopsCleanly(t *testing.T) {
	fs := vfs.NewMem()
	f, _ := fs.Create("wal")
	w := NewWriter(f)
	for i := 0; i < 10; i++ {
		w.Append(Record{Seq: uint64(i + 1), Kind: keys.KindSet, Key: []byte("k"), Value: []byte("v")})
	}
	w.Sync()
	// Simulate a torn write: append garbage that looks like a frame header
	// promising more bytes than exist.
	f.Write([]byte{0xde, 0xad, 0xbe, 0xef, 0xff, 0x00, 0x00, 0x00})
	g, _ := fs.Open("wal")
	count := 0
	maxSeq, err := Replay(g, func(Record) error { count++; return nil })
	if err != nil {
		t.Fatal(err)
	}
	if count != 10 || maxSeq != 10 {
		t.Fatalf("replayed %d records, maxSeq %d", count, maxSeq)
	}
}

func TestCorruptPayloadStopsCleanly(t *testing.T) {
	fs := vfs.NewMem()
	f, _ := fs.Create("wal")
	w := NewWriter(f)
	w.Append(Record{Seq: 1, Kind: keys.KindSet, Key: []byte("good"), Value: []byte("v")})
	sizeAfterFirst, _ := f.Size()
	w.Append(Record{Seq: 2, Kind: keys.KindSet, Key: []byte("bad"), Value: []byte("v")})
	// Corrupt one payload byte of the second record.
	f.WriteAt([]byte{0xFF}, sizeAfterFirst+9)
	g, _ := fs.Open("wal")
	count := 0
	Replay(g, func(Record) error { count++; return nil })
	if count != 1 {
		t.Fatalf("replayed %d records, want 1 (stop at corruption)", count)
	}
}

func TestAppendAfterClose(t *testing.T) {
	fs := vfs.NewMem()
	f, _ := fs.Create("wal")
	w := NewWriter(f)
	w.Close()
	if err := w.Append(Record{Seq: 1}); err != ErrClosed {
		t.Fatalf("err = %v, want ErrClosed", err)
	}
	if err := w.Close(); err != nil {
		t.Fatalf("double close: %v", err)
	}
}

func TestEmptyLog(t *testing.T) {
	fs := vfs.NewMem()
	f, _ := fs.Create("wal")
	maxSeq, err := Replay(f, func(Record) error { t.Fatal("callback on empty log"); return nil })
	if err != nil || maxSeq != 0 {
		t.Fatalf("maxSeq=%d err=%v", maxSeq, err)
	}
}

func TestLargeValues(t *testing.T) {
	fs := vfs.NewMem()
	f, _ := fs.Create("wal")
	w := NewWriter(f)
	big := make([]byte, 1<<16)
	for i := range big {
		big[i] = byte(i)
	}
	w.Append(Record{Seq: 1, Kind: keys.KindSet, Key: []byte("k"), Value: big})
	w.Close()
	g, _ := fs.Open("wal")
	Replay(g, func(r Record) error {
		if len(r.Value) != len(big) || r.Value[1000] != big[1000] {
			t.Fatal("large value mangled")
		}
		return nil
	})
}
