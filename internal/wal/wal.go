// Package wal implements the write-ahead log. Each write is framed as
//
//	crc32(4) length(4) payload
//
// where the payload encodes seq, kind, key and value. Replay stops cleanly
// at the first torn or corrupt frame, so a crash mid-append loses at most
// the unsynced tail — the standard LSM durability contract.
package wal

import (
	"encoding/binary"
	"errors"
	"hash/crc32"
	"io"

	"adcache/internal/keys"
	"adcache/internal/vfs"
)

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// ErrClosed is returned by Append after Close.
var ErrClosed = errors.New("wal: closed")

// Record is one logical write.
type Record struct {
	Seq   uint64
	Kind  keys.Kind
	Key   []byte
	Value []byte
}

// Writer appends records to a log file.
type Writer struct {
	f      vfs.File
	buf    []byte
	closed bool
}

// NewWriter wraps f, which should be empty or freshly created.
func NewWriter(f vfs.File) *Writer { return &Writer{f: f} }

// Append writes one record. It does not sync; call Sync for durability.
func (w *Writer) Append(rec Record) error {
	if w.closed {
		return ErrClosed
	}
	payload := w.buf[:0]
	payload = binary.AppendUvarint(payload, rec.Seq)
	payload = append(payload, byte(rec.Kind))
	payload = binary.AppendUvarint(payload, uint64(len(rec.Key)))
	payload = append(payload, rec.Key...)
	payload = binary.AppendUvarint(payload, uint64(len(rec.Value)))
	payload = append(payload, rec.Value...)
	w.buf = payload

	var hdr [8]byte
	binary.LittleEndian.PutUint32(hdr[:4], crc32.Checksum(payload, crcTable))
	binary.LittleEndian.PutUint32(hdr[4:], uint32(len(payload)))
	if _, err := w.f.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.f.Write(payload)
	return err
}

// Sync flushes the log to stable storage.
func (w *Writer) Sync() error { return w.f.Sync() }

// Close syncs and closes the underlying file.
func (w *Writer) Close() error {
	if w.closed {
		return nil
	}
	w.closed = true
	if err := w.f.Sync(); err != nil {
		return err
	}
	return w.f.Close()
}

// Replay reads all intact records from f in order, invoking fn for each.
// It returns the highest sequence number seen. Corrupt or truncated tails
// terminate replay without error.
func Replay(f vfs.File, fn func(Record) error) (maxSeq uint64, err error) {
	size, err := f.Size()
	if err != nil {
		return 0, err
	}
	var off int64
	var hdr [8]byte
	for off+8 <= size {
		if _, err := f.ReadAt(hdr[:], off); err != nil {
			if err == io.EOF {
				return maxSeq, nil
			}
			return maxSeq, err
		}
		wantCRC := binary.LittleEndian.Uint32(hdr[:4])
		length := int64(binary.LittleEndian.Uint32(hdr[4:]))
		if off+8+length > size {
			return maxSeq, nil // torn tail
		}
		payload := make([]byte, length)
		if _, err := f.ReadAt(payload, off+8); err != nil {
			return maxSeq, nil
		}
		if crc32.Checksum(payload, crcTable) != wantCRC {
			return maxSeq, nil // corrupt tail
		}
		rec, ok := decode(payload)
		if !ok {
			return maxSeq, nil
		}
		if rec.Seq > maxSeq {
			maxSeq = rec.Seq
		}
		if err := fn(rec); err != nil {
			return maxSeq, err
		}
		off += 8 + length
	}
	return maxSeq, nil
}

func decode(p []byte) (Record, bool) {
	var rec Record
	seq, n := binary.Uvarint(p)
	if n <= 0 || n >= len(p) {
		return rec, false
	}
	rec.Seq = seq
	p = p[n:]
	rec.Kind = keys.Kind(p[0])
	p = p[1:]
	klen, n := binary.Uvarint(p)
	if n <= 0 || int(klen) > len(p)-n {
		return rec, false
	}
	p = p[n:]
	rec.Key = append([]byte(nil), p[:klen]...)
	p = p[klen:]
	vlen, n := binary.Uvarint(p)
	if n <= 0 || int(vlen) > len(p)-n {
		return rec, false
	}
	p = p[n:]
	rec.Value = append([]byte(nil), p[:vlen]...)
	return rec, true
}
