package wal

import (
	"fmt"
	"testing"

	"adcache/internal/keys"
	"adcache/internal/vfs"
)

func crashRec(i int) Record {
	return Record{
		Seq:   uint64(i + 1),
		Kind:  keys.KindSet,
		Key:   []byte(fmt.Sprintf("key%03d", i)),
		Value: []byte(fmt.Sprintf("val%03d", i)),
	}
}

// TestCrashTornTailReplay writes a log through the crash-simulating FS,
// syncing part-way, then crashes with a torn (sector-truncated) unsynced
// tail. Replay must recover every synced record, may recover a prefix of the
// complete unsynced ones, and must stop cleanly at the tear — never error,
// never produce a record that was not appended.
func TestCrashTornTailReplay(t *testing.T) {
	const total, synced = 120, 50
	for seed := int64(0); seed < 16; seed++ {
		cfs := vfs.NewCrash(vfs.NewMem())
		f, err := cfs.Create("wal")
		if err != nil {
			t.Fatal(err)
		}
		w := NewWriter(f)
		for i := 0; i < total; i++ {
			if err := w.Append(crashRec(i)); err != nil {
				t.Fatalf("seed %d: append %d: %v", seed, i, err)
			}
			if i == synced-1 {
				if err := w.Sync(); err != nil {
					t.Fatalf("seed %d: sync: %v", seed, err)
				}
			}
		}
		recovered := cfs.Crash(vfs.CrashOptions{Seed: seed, KeepTornTail: true, SectorSize: 512})

		g, err := recovered.Open("wal")
		if err != nil {
			t.Fatalf("seed %d: open recovered wal: %v", seed, err)
		}
		var got []Record
		maxSeq, err := Replay(g, func(r Record) error {
			got = append(got, r)
			return nil
		})
		if err != nil {
			t.Fatalf("seed %d: replay after torn crash: %v", seed, err)
		}
		if len(got) < synced {
			t.Fatalf("seed %d: replayed %d records, %d were synced", seed, len(got), synced)
		}
		if len(got) > total {
			t.Fatalf("seed %d: replayed %d records, only %d appended", seed, len(got), total)
		}
		// The replayed stream must be an exact prefix of what was appended.
		for i, r := range got {
			want := crashRec(i)
			if r.Seq != want.Seq || string(r.Key) != string(want.Key) || string(r.Value) != string(want.Value) {
				t.Fatalf("seed %d: record %d = %+v, want %+v", seed, i, r, want)
			}
		}
		if maxSeq != uint64(len(got)) {
			t.Fatalf("seed %d: maxSeq %d != %d records", seed, maxSeq, len(got))
		}
	}
}

// TestCrashDiscardsUnsyncedTail is the no-torn-tail variant: with the whole
// unsynced suffix discarded, replay recovers exactly the synced prefix.
func TestCrashDiscardsUnsyncedTail(t *testing.T) {
	const total, synced = 80, 30
	cfs := vfs.NewCrash(vfs.NewMem())
	f, err := cfs.Create("wal")
	if err != nil {
		t.Fatal(err)
	}
	w := NewWriter(f)
	for i := 0; i < total; i++ {
		if err := w.Append(crashRec(i)); err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
		if i == synced-1 {
			if err := w.Sync(); err != nil {
				t.Fatalf("sync: %v", err)
			}
		}
	}
	recovered := cfs.Crash(vfs.CrashOptions{})

	g, err := recovered.Open("wal")
	if err != nil {
		t.Fatalf("open recovered wal: %v", err)
	}
	n := 0
	maxSeq, err := Replay(g, func(r Record) error {
		n++
		return nil
	})
	if err != nil {
		t.Fatalf("replay: %v", err)
	}
	if n != synced || maxSeq != synced {
		t.Fatalf("replayed %d records (maxSeq %d), want exactly the %d synced", n, maxSeq, synced)
	}
}
