package manifest

import (
	"testing"

	"adcache/internal/vfs"
)

// crashState builds a distinguishable State for the crash-window sweep.
func crashState(gen uint64) State {
	v := NewVersion(7)
	for i := uint64(0); i < 3; i++ {
		f := fm(gen*100+i, "a", "z")
		v.Levels[1] = append(v.Levels[1], f)
	}
	return State{NextFileNum: gen * 1000, LastSeq: gen * 7, WALNum: gen, Version: v}
}

// TestSaveCrashWindow crashes inside every FS operation of Store.Save — the
// tmp create, payload writes, sync and rename — and checks atomicity: Load
// must always succeed and return either the previous state or the new one,
// never an error or a hybrid, whether or not the crash tears unsynced bytes.
func TestSaveCrashWindow(t *testing.T) {
	// Count the ops one Save performs on a dirty directory (tmp file from a
	// previous save already present) by doing two probe saves.
	probe := vfs.NewCrash(vfs.NewMem())
	probe.MkdirAll("db")
	st := NewStore(probe, "db")
	if err := st.Save(crashState(1)); err != nil {
		t.Fatalf("probe save 1: %v", err)
	}
	before := probe.OpCount()
	if err := st.Save(crashState(2)); err != nil {
		t.Fatalf("probe save 2: %v", err)
	}
	saveOps := probe.OpCount() - before
	if saveOps < 3 {
		t.Fatalf("Save performed only %d FS ops", saveOps)
	}

	for torn := 0; torn < 2; torn++ {
		for p := int64(0); p <= saveOps; p++ {
			cfs := vfs.NewCrash(vfs.NewMem())
			cfs.MkdirAll("db")
			store := NewStore(cfs, "db")
			if err := store.Save(crashState(1)); err != nil {
				t.Fatalf("save 1: %v", err)
			}
			cfs.ArmCrash(p) // relative: p more ops succeed, then the device dies
			saveErr := store.Save(crashState(2))
			if p < saveOps && saveErr == nil {
				t.Fatalf("crash point %d: second save did not observe the crash", p)
			}
			recovered := cfs.Crash(vfs.CrashOptions{
				Seed:         p,
				KeepTornTail: torn == 1,
				SectorSize:   512,
			})

			got, found, err := NewStore(recovered, "db").Load()
			if err != nil {
				t.Fatalf("crash point %d (torn=%d): Load after crash: %v", p, torn, err)
			}
			if !found {
				t.Fatalf("crash point %d (torn=%d): manifest vanished", p, torn)
			}
			switch got.WALNum {
			case 1:
				if saveErr == nil {
					t.Fatalf("crash point %d (torn=%d): save acked but old state survived", p, torn)
				}
				if got.LastSeq != 7 || len(got.Version.Levels[1]) != 3 || got.Version.Levels[1][0].FileNum != 100 {
					t.Fatalf("crash point %d (torn=%d): old state mangled: %+v", p, torn, got)
				}
			case 2:
				if got.LastSeq != 14 || len(got.Version.Levels[1]) != 3 || got.Version.Levels[1][0].FileNum != 200 {
					t.Fatalf("crash point %d (torn=%d): new state mangled: %+v", p, torn, got)
				}
			default:
				t.Fatalf("crash point %d (torn=%d): hybrid state: %+v", p, torn, got)
			}
		}
	}
}
