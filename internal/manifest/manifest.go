// Package manifest tracks the LSM tree's file-level metadata: which
// SSTables live at which level, the next file number, and the last committed
// sequence number.
//
// Persistence uses snapshot manifests: the full state is serialised to a
// temporary file and atomically renamed over MANIFEST. At this engine's
// scale a snapshot per version change is cheaper and simpler than a
// version-edit log, and the atomic rename gives the same crash-consistency
// guarantee.
package manifest

import (
	"bytes"
	"encoding/json"
	"fmt"
	"sync"

	"adcache/internal/keys"
	"adcache/internal/vfs"
)

// FileMeta describes one SSTable.
type FileMeta struct {
	FileNum    uint64
	Size       uint64
	NumEntries uint64
	Smallest   keys.InternalKey
	Largest    keys.InternalKey
}

// OverlapsUser reports whether the file's user-key range intersects
// [lo, hi]. A nil hi means +infinity.
func (f *FileMeta) OverlapsUser(lo, hi []byte) bool {
	if hi != nil && bytes.Compare(f.Smallest.UserKey(), hi) > 0 {
		return false
	}
	if lo != nil && bytes.Compare(f.Largest.UserKey(), lo) < 0 {
		return false
	}
	return true
}

// ContainsUser reports whether userKey falls within the file's range.
func (f *FileMeta) ContainsUser(userKey []byte) bool {
	return bytes.Compare(f.Smallest.UserKey(), userKey) <= 0 &&
		bytes.Compare(userKey, f.Largest.UserKey()) <= 0
}

// Version is an immutable snapshot of the tree's file layout.
// Levels[0] may contain overlapping files ordered newest-first; deeper
// levels hold non-overlapping files sorted by smallest key.
type Version struct {
	Levels [][]*FileMeta
}

// NewVersion returns an empty version with numLevels levels.
func NewVersion(numLevels int) *Version {
	return &Version{Levels: make([][]*FileMeta, numLevels)}
}

// Clone deep-copies the level structure (FileMeta values are shared; they
// are immutable once created).
func (v *Version) Clone() *Version {
	nv := NewVersion(len(v.Levels))
	for i, level := range v.Levels {
		nv.Levels[i] = append([]*FileMeta(nil), level...)
	}
	return nv
}

// NumFiles reports the total file count.
func (v *Version) NumFiles() int {
	n := 0
	for _, level := range v.Levels {
		n += len(level)
	}
	return n
}

// SizeOfLevel reports the byte size of one level.
func (v *Version) SizeOfLevel(level int) uint64 {
	var total uint64
	for _, f := range v.Levels[level] {
		total += f.Size
	}
	return total
}

// TotalSize reports the byte size of all levels.
func (v *Version) TotalSize() uint64 {
	var total uint64
	for i := range v.Levels {
		total += v.SizeOfLevel(i)
	}
	return total
}

// NumSortedRuns reports the number of sorted runs: each L0 file is its own
// run, each non-empty deeper level is one run. This feeds the paper's
// IO_estimate model.
func (v *Version) NumSortedRuns() int {
	runs := len(v.Levels[0])
	for _, level := range v.Levels[1:] {
		if len(level) > 0 {
			runs++
		}
	}
	return runs
}

// NumNonEmptyLevels reports L, the number of levels holding data.
func (v *Version) NumNonEmptyLevels() int {
	n := 0
	for _, level := range v.Levels {
		if len(level) > 0 {
			n++
		}
	}
	return n
}

// Overlapping returns the files in level whose user-key ranges intersect
// [lo, hi] (hi nil = +inf), in level order.
func (v *Version) Overlapping(level int, lo, hi []byte) []*FileMeta {
	var out []*FileMeta
	for _, f := range v.Levels[level] {
		if f.OverlapsUser(lo, hi) {
			out = append(out, f)
		}
	}
	return out
}

// State is everything the manifest persists.
type State struct {
	NextFileNum uint64
	LastSeq     uint64
	// WALNum is the active log. Kept alongside WALNums for compatibility
	// with manifests written before background flushing existed.
	WALNum uint64
	// WALNums lists every live log oldest-first: one per sealed memtable
	// still awaiting flush, then the active log. Recovery replays them in
	// order. Empty in pre-background manifests (fall back to WALNum).
	WALNums []uint64
	Version *Version
}

type fileMetaJSON struct {
	FileNum    uint64 `json:"file_num"`
	Size       uint64 `json:"size"`
	NumEntries uint64 `json:"num_entries"`
	Smallest   []byte `json:"smallest"`
	Largest    []byte `json:"largest"`
}

type stateJSON struct {
	NextFileNum uint64           `json:"next_file_num"`
	LastSeq     uint64           `json:"last_seq"`
	WALNum      uint64           `json:"wal_num"`
	WALNums     []uint64         `json:"wal_nums,omitempty"`
	Levels      [][]fileMetaJSON `json:"levels"`
}

// Store saves and loads manifest state under a directory.
type Store struct {
	mu  sync.Mutex
	fs  vfs.FS
	dir string
}

// NewStore returns a Store for dir on fs.
func NewStore(fs vfs.FS, dir string) *Store { return &Store{fs: fs, dir: dir} }

// Path returns the manifest file path.
func (s *Store) Path() string { return s.dir + "/MANIFEST" }

// Save atomically persists st.
func (s *Store) Save(st State) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	js := stateJSON{
		NextFileNum: st.NextFileNum,
		LastSeq:     st.LastSeq,
		WALNum:      st.WALNum,
		WALNums:     st.WALNums,
		Levels:      make([][]fileMetaJSON, len(st.Version.Levels)),
	}
	for i, level := range st.Version.Levels {
		js.Levels[i] = make([]fileMetaJSON, len(level))
		for j, f := range level {
			js.Levels[i][j] = fileMetaJSON{
				FileNum: f.FileNum, Size: f.Size, NumEntries: f.NumEntries,
				Smallest: f.Smallest, Largest: f.Largest,
			}
		}
	}
	data, err := json.Marshal(js)
	if err != nil {
		return err
	}
	tmp := s.Path() + ".tmp"
	f, err := s.fs.Create(tmp)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	return s.fs.Rename(tmp, s.Path())
}

// Load reads the persisted state. ok is false when no manifest exists.
func (s *Store) Load() (State, bool, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.fs.Exists(s.Path()) {
		return State{}, false, nil
	}
	f, err := s.fs.Open(s.Path())
	if err != nil {
		return State{}, false, err
	}
	defer f.Close()
	size, err := f.Size()
	if err != nil {
		return State{}, false, err
	}
	data := make([]byte, size)
	if _, err := f.ReadAt(data, 0); err != nil {
		return State{}, false, err
	}
	var js stateJSON
	if err := json.Unmarshal(data, &js); err != nil {
		return State{}, false, fmt.Errorf("manifest: corrupt: %w", err)
	}
	st := State{
		NextFileNum: js.NextFileNum,
		LastSeq:     js.LastSeq,
		WALNum:      js.WALNum,
		WALNums:     js.WALNums,
		Version:     NewVersion(len(js.Levels)),
	}
	if len(st.WALNums) == 0 && st.WALNum != 0 {
		st.WALNums = []uint64{st.WALNum}
	}
	for i, level := range js.Levels {
		for _, fm := range level {
			st.Version.Levels[i] = append(st.Version.Levels[i], &FileMeta{
				FileNum: fm.FileNum, Size: fm.Size, NumEntries: fm.NumEntries,
				Smallest: fm.Smallest, Largest: fm.Largest,
			})
		}
	}
	return st, true, nil
}
