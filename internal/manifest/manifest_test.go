package manifest

import (
	"fmt"
	"testing"

	"adcache/internal/keys"
	"adcache/internal/vfs"
)

func fm(num uint64, lo, hi string) *FileMeta {
	return &FileMeta{
		FileNum:  num,
		Size:     100,
		Smallest: keys.Make([]byte(lo), 1, keys.KindSet),
		Largest:  keys.Make([]byte(hi), 1, keys.KindSet),
	}
}

func TestOverlapsAndContains(t *testing.T) {
	f := fm(1, "c", "g")
	cases := []struct {
		lo, hi string
		want   bool
	}{
		{"a", "b", false},
		{"a", "c", true},
		{"d", "e", true},
		{"g", "z", true},
		{"h", "z", false},
	}
	for _, c := range cases {
		if got := f.OverlapsUser([]byte(c.lo), []byte(c.hi)); got != c.want {
			t.Fatalf("Overlaps(%q,%q) = %v", c.lo, c.hi, got)
		}
	}
	// Open-ended ranges.
	if !f.OverlapsUser([]byte("a"), nil) {
		t.Fatal("nil hi must mean +inf")
	}
	if f.OverlapsUser([]byte("z"), nil) {
		t.Fatal("range after file must not overlap")
	}
	if !f.ContainsUser([]byte("c")) || !f.ContainsUser([]byte("g")) || f.ContainsUser([]byte("b")) {
		t.Fatal("ContainsUser boundaries wrong")
	}
}

func TestVersionAccounting(t *testing.T) {
	v := NewVersion(4)
	v.Levels[0] = []*FileMeta{fm(1, "a", "c"), fm(2, "b", "d")}
	v.Levels[1] = []*FileMeta{fm(3, "a", "m"), fm(4, "n", "z")}
	v.Levels[2] = []*FileMeta{fm(5, "a", "z")}

	if v.NumFiles() != 5 {
		t.Fatalf("NumFiles = %d", v.NumFiles())
	}
	// Runs: 2 L0 files + 2 non-empty deeper levels.
	if v.NumSortedRuns() != 4 {
		t.Fatalf("NumSortedRuns = %d", v.NumSortedRuns())
	}
	if v.NumNonEmptyLevels() != 3 {
		t.Fatalf("NumNonEmptyLevels = %d", v.NumNonEmptyLevels())
	}
	if v.SizeOfLevel(1) != 200 {
		t.Fatalf("SizeOfLevel(1) = %d", v.SizeOfLevel(1))
	}
	if v.TotalSize() != 500 {
		t.Fatalf("TotalSize = %d", v.TotalSize())
	}
	over := v.Overlapping(1, []byte("p"), nil)
	if len(over) != 1 || over[0].FileNum != 4 {
		t.Fatalf("Overlapping = %v", over)
	}
}

func TestCloneIsolation(t *testing.T) {
	v := NewVersion(2)
	v.Levels[0] = []*FileMeta{fm(1, "a", "b")}
	c := v.Clone()
	c.Levels[0] = append(c.Levels[0], fm(2, "c", "d"))
	if len(v.Levels[0]) != 1 {
		t.Fatal("Clone shares level slices")
	}
}

func TestStoreSaveLoadRoundTrip(t *testing.T) {
	fs := vfs.NewMem()
	fs.MkdirAll("db")
	store := NewStore(fs, "db")

	if _, found, err := store.Load(); err != nil || found {
		t.Fatalf("initial Load: found=%v err=%v", found, err)
	}

	v := NewVersion(7)
	for i := 0; i < 3; i++ {
		v.Levels[1] = append(v.Levels[1], fm(uint64(i+10), fmt.Sprintf("k%d0", i), fmt.Sprintf("k%d9", i)))
	}
	st := State{NextFileNum: 42, LastSeq: 999, WALNum: 13, Version: v}
	if err := store.Save(st); err != nil {
		t.Fatal(err)
	}

	got, found, err := store.Load()
	if err != nil || !found {
		t.Fatalf("Load: found=%v err=%v", found, err)
	}
	if got.NextFileNum != 42 || got.LastSeq != 999 || got.WALNum != 13 {
		t.Fatalf("scalar state = %+v", got)
	}
	if len(got.Version.Levels) != 7 || len(got.Version.Levels[1]) != 3 {
		t.Fatalf("levels = %v", got.Version.Levels)
	}
	f := got.Version.Levels[1][0]
	if f.FileNum != 10 || string(f.Smallest.UserKey()) != "k00" {
		t.Fatalf("file meta = %+v", f)
	}
}

func TestSaveOverwritesAtomically(t *testing.T) {
	fs := vfs.NewMem()
	fs.MkdirAll("db")
	store := NewStore(fs, "db")
	v := NewVersion(2)
	store.Save(State{NextFileNum: 1, Version: v})
	v2 := NewVersion(2)
	v2.Levels[0] = []*FileMeta{fm(5, "a", "b")}
	store.Save(State{NextFileNum: 2, Version: v2})
	got, _, err := store.Load()
	if err != nil {
		t.Fatal(err)
	}
	if got.NextFileNum != 2 || len(got.Version.Levels[0]) != 1 {
		t.Fatalf("second save not visible: %+v", got)
	}
	if fs.Exists("db/MANIFEST.tmp") {
		t.Fatal("temp file left behind")
	}
}

func TestCorruptManifestRejected(t *testing.T) {
	fs := vfs.NewMem()
	fs.MkdirAll("db")
	f, _ := fs.Create("db/MANIFEST")
	f.Write([]byte("{not json"))
	store := NewStore(fs, "db")
	if _, _, err := store.Load(); err == nil {
		t.Fatal("corrupt manifest accepted")
	}
}
