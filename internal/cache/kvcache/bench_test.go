package kvcache

import (
	"fmt"
	"math/rand"
	"sync/atomic"
	"testing"
)

func benchKeys(n int) [][]byte {
	keys := make([][]byte, n)
	for i := range keys {
		keys[i] = []byte(fmt.Sprintf("key%08d", i))
	}
	return keys
}

func BenchmarkGetHit(b *testing.B) {
	c := New(16 << 20)
	keys := benchKeys(10_000)
	v := make([]byte, 100)
	for _, k := range keys {
		c.Put(k, v)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Get(keys[i%len(keys)])
	}
}

func BenchmarkPutEvict(b *testing.B) {
	c := New(1 << 20) // small enough to evict constantly
	keys := benchKeys(10_000)
	v := make([]byte, 100)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Put(keys[i%len(keys)], v)
	}
}

// benchParallel measures shard contention: many goroutines (at least four —
// SetParallelism(4) gives 4×GOMAXPROCS workers) hammering a mixed Get/Put
// workload. numShards=0 selects the adaptive shard count (16 at this
// capacity); numShards=1 approximates the pre-sharding single-lock cache.
func benchParallel(b *testing.B, numShards int) {
	var c *Cache
	if numShards == 0 {
		c = New(16 << 20)
	} else {
		c = NewShards(16<<20, numShards)
	}
	keys := benchKeys(10_000)
	v := make([]byte, 100)
	for _, k := range keys {
		c.Put(k, v)
	}
	var seed atomic.Int64
	b.SetParallelism(4)
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		rng := rand.New(rand.NewSource(seed.Add(1)))
		for pb.Next() {
			k := keys[rng.Intn(len(keys))]
			if rng.Intn(100) < 25 {
				c.Put(k, v)
			} else {
				c.Get(k)
			}
		}
	})
}

func BenchmarkParallelSharded(b *testing.B) { benchParallel(b, 0) }

func BenchmarkParallelSingleShard(b *testing.B) { benchParallel(b, 1) }
