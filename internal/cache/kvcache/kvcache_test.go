package kvcache

import (
	"fmt"
	"sync"
	"testing"
)

func TestPutGetInvalidate(t *testing.T) {
	c := New(1 << 20)
	c.Put([]byte("k"), []byte("v"))
	if v, ok := c.Get([]byte("k")); !ok || string(v) != "v" {
		t.Fatalf("Get = %q, %v", v, ok)
	}
	c.Invalidate([]byte("k"))
	if _, ok := c.Get([]byte("k")); ok {
		t.Fatal("hit after invalidate")
	}
	c.Invalidate([]byte("absent")) // must not panic
}

func TestUpdateAdjustsUsed(t *testing.T) {
	c := New(1 << 20)
	c.Put([]byte("k"), make([]byte, 100))
	used1 := c.Stats().Used
	c.Put([]byte("k"), make([]byte, 10))
	used2 := c.Stats().Used
	if used2 >= used1 {
		t.Fatalf("used did not shrink: %d -> %d", used1, used2)
	}
	if c.Len() != 1 {
		t.Fatalf("Len = %d", c.Len())
	}
}

func TestLRUEviction(t *testing.T) {
	c := New(3 * (int64(2+10) + entryOverhead))
	for i := 0; i < 5; i++ {
		c.Put([]byte(fmt.Sprintf("k%d", i)), make([]byte, 10))
	}
	if _, ok := c.Get([]byte("k0")); ok {
		t.Fatal("oldest entry survived")
	}
	if _, ok := c.Get([]byte("k4")); !ok {
		t.Fatal("newest entry evicted")
	}
	if c.Stats().Evictions == 0 {
		t.Fatal("evictions not counted")
	}
}

func TestGetRefreshesRecency(t *testing.T) {
	c := New(2 * (int64(2+4) + entryOverhead))
	c.Put([]byte("k0"), make([]byte, 4))
	c.Put([]byte("k1"), make([]byte, 4))
	c.Get([]byte("k0"))
	c.Put([]byte("k2"), make([]byte, 4))
	if _, ok := c.Get([]byte("k0")); !ok {
		t.Fatal("refreshed entry evicted")
	}
	if _, ok := c.Get([]byte("k1")); ok {
		t.Fatal("LRU victim survived")
	}
}

func TestOversizedRejected(t *testing.T) {
	c := New(50)
	c.Put([]byte("k"), make([]byte, 100))
	if c.Len() != 0 {
		t.Fatal("oversized entry admitted")
	}
}

func TestResize(t *testing.T) {
	c := New(1 << 20)
	for i := 0; i < 100; i++ {
		c.Put([]byte(fmt.Sprintf("key%03d", i)), make([]byte, 50))
	}
	c.Resize(500)
	if c.Stats().Used > 500 {
		t.Fatalf("used %d after shrink", c.Stats().Used)
	}
}

func TestStats(t *testing.T) {
	c := New(1 << 20)
	c.Put([]byte("k"), []byte("v"))
	c.Get([]byte("k"))
	c.Get([]byte("nope"))
	st := c.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Entries != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestConcurrent(t *testing.T) {
	c := New(64 << 10)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 2000; i++ {
				k := []byte(fmt.Sprintf("key%03d", (g*31+i)%200))
				switch i % 3 {
				case 0:
					c.Put(k, make([]byte, 20))
				case 1:
					c.Get(k)
				case 2:
					c.Invalidate(k)
				}
			}
		}(g)
	}
	wg.Wait()
	if c.Stats().Used > 64<<10 {
		t.Fatal("capacity exceeded")
	}
}
