// Package kvcache implements the paper's "KV Cache" baseline: a byte-
// budgeted LRU of point-lookup results (key → value). Scans bypass it
// entirely, which is exactly why the baseline flatlines on scan-heavy
// workloads (Figure 7b/7d).
package kvcache

import (
	"container/list"
	"hash/maphash"
	"sync"
)

// DefaultShards balances lock contention against shard-budget fragmentation,
// matching the block cache's shard ceiling.
const DefaultShards = 16

// Cache is a sharded LRU key-value cache. It is safe for concurrent use:
// each shard has its own mutex, so point lookups on different shards never
// contend. Counters live on the shards (counted under the shard lock);
// Stats aggregates them and ShardStats exposes the per-shard view.
type Cache struct {
	shards []*shard
	mask   uint64
	seed   maphash.Seed
}

type shard struct {
	mu       sync.Mutex
	capacity int64
	used     int64
	ll       *list.List // front = most recent
	items    map[string]*list.Element

	hits      int64
	misses    int64
	evictions int64
}

type entry struct {
	key   string
	value []byte
}

// entryOverhead matches the range cache's per-entry bookkeeping charge so
// the two result caches compare under equal effective capacity (the paper
// treats them as "identical" pure KV caches in point-only workloads).
const entryOverhead = 64

func (e *entry) size() int64 { return int64(len(e.key)+len(e.value)) + entryOverhead }

// New returns a cache with the given byte capacity. The shard count adapts
// to the budget (one shard per 64 KiB, capped at DefaultShards), so small
// caches stay single-sharded and keep exact global LRU order.
func New(capacity int64) *Cache {
	shards := int(capacity / (64 << 10))
	if shards > DefaultShards {
		shards = DefaultShards
	}
	if shards < 1 {
		shards = 1
	}
	return NewShards(capacity, shards)
}

// NewShards returns a cache with an explicit power-of-two shard count.
func NewShards(capacity int64, numShards int) *Cache {
	if numShards < 1 {
		numShards = 1
	}
	// Round up to a power of two for mask indexing.
	n := 1
	for n < numShards {
		n *= 2
	}
	c := &Cache{shards: make([]*shard, n), mask: uint64(n - 1), seed: maphash.MakeSeed()}
	for i := range c.shards {
		c.shards[i] = &shard{
			capacity: capacity / int64(n),
			ll:       list.New(),
			items:    make(map[string]*list.Element),
		}
	}
	return c
}

func (c *Cache) shardFor(key []byte) *shard {
	if len(c.shards) == 1 {
		return c.shards[0]
	}
	return c.shards[maphash.Bytes(c.seed, key)&c.mask]
}

// Get returns the cached value for key.
func (c *Cache) Get(key []byte) ([]byte, bool) {
	s := c.shardFor(key)
	s.mu.Lock()
	defer s.mu.Unlock()
	if e, ok := s.items[string(key)]; ok {
		s.ll.MoveToFront(e)
		s.hits++
		return e.Value.(*entry).value, true
	}
	s.misses++
	return nil, false
}

// Put inserts or updates key.
func (c *Cache) Put(key, value []byte) {
	s := c.shardFor(key)
	s.mu.Lock()
	defer s.mu.Unlock()
	k := string(key)
	if e, ok := s.items[k]; ok {
		old := e.Value.(*entry)
		s.used += int64(len(value)) - int64(len(old.value))
		old.value = value
		s.ll.MoveToFront(e)
	} else {
		e := &entry{key: k, value: value}
		if e.size() > s.capacity {
			return
		}
		s.items[k] = s.ll.PushFront(e)
		s.used += e.size()
	}
	s.evictLocked()
}

// Invalidate removes key (writes and deletes).
func (c *Cache) Invalidate(key []byte) {
	s := c.shardFor(key)
	s.mu.Lock()
	defer s.mu.Unlock()
	if e, ok := s.items[string(key)]; ok {
		ent := e.Value.(*entry)
		s.used -= ent.size()
		s.ll.Remove(e)
		delete(s.items, ent.key)
	}
}

func (s *shard) evictLocked() {
	for s.used > s.capacity {
		back := s.ll.Back()
		if back == nil {
			return
		}
		ent := back.Value.(*entry)
		s.ll.Remove(back)
		delete(s.items, ent.key)
		s.used -= ent.size()
		s.evictions++
	}
}

// Resize changes the total byte capacity, splitting it evenly across the
// existing shards and evicting as needed.
func (c *Cache) Resize(capacity int64) {
	per := capacity / int64(len(c.shards))
	for _, s := range c.shards {
		s.mu.Lock()
		s.capacity = per
		s.evictLocked()
		s.mu.Unlock()
	}
}

// Stats reports counters.
type Stats struct {
	Hits, Misses, Evictions int64
	Used, Capacity          int64
	Entries                 int
}

// Stats returns a snapshot of counters, aggregated over shards.
func (c *Cache) Stats() Stats {
	var st Stats
	for _, s := range c.ShardStats() {
		st.Hits += s.Hits
		st.Misses += s.Misses
		st.Evictions += s.Evictions
		st.Used += s.Used
		st.Capacity += s.Capacity
		st.Entries += s.Entries
	}
	return st
}

// ShardStats returns one counter snapshot per shard, in shard order.
func (c *Cache) ShardStats() []Stats {
	out := make([]Stats, len(c.shards))
	for i, s := range c.shards {
		s.mu.Lock()
		out[i] = Stats{
			Hits:      s.hits,
			Misses:    s.misses,
			Evictions: s.evictions,
			Used:      s.used,
			Capacity:  s.capacity,
			Entries:   len(s.items),
		}
		s.mu.Unlock()
	}
	return out
}

// Len reports the entry count.
func (c *Cache) Len() int {
	n := 0
	for _, s := range c.shards {
		s.mu.Lock()
		n += len(s.items)
		s.mu.Unlock()
	}
	return n
}
