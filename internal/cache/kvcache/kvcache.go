// Package kvcache implements the paper's "KV Cache" baseline: a byte-
// budgeted LRU of point-lookup results (key → value). Scans bypass it
// entirely, which is exactly why the baseline flatlines on scan-heavy
// workloads (Figure 7b/7d).
package kvcache

import (
	"container/list"
	"sync"
)

// Cache is an LRU key-value cache. It is safe for concurrent use.
type Cache struct {
	mu       sync.Mutex
	capacity int64
	used     int64
	ll       *list.List
	items    map[string]*list.Element

	hits, misses, evictions int64
}

type entry struct {
	key   string
	value []byte
}

// entryOverhead matches the range cache's per-entry bookkeeping charge so
// the two result caches compare under equal effective capacity (the paper
// treats them as "identical" pure KV caches in point-only workloads).
const entryOverhead = 64

func (e *entry) size() int64 { return int64(len(e.key)+len(e.value)) + entryOverhead }

// New returns a cache with the given byte capacity.
func New(capacity int64) *Cache {
	return &Cache{capacity: capacity, ll: list.New(), items: make(map[string]*list.Element)}
}

// Get returns the cached value for key.
func (c *Cache) Get(key []byte) ([]byte, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if e, ok := c.items[string(key)]; ok {
		c.ll.MoveToFront(e)
		c.hits++
		return e.Value.(*entry).value, true
	}
	c.misses++
	return nil, false
}

// Put inserts or updates key.
func (c *Cache) Put(key, value []byte) {
	c.mu.Lock()
	defer c.mu.Unlock()
	k := string(key)
	if e, ok := c.items[k]; ok {
		old := e.Value.(*entry)
		c.used += int64(len(value)) - int64(len(old.value))
		old.value = value
		c.ll.MoveToFront(e)
	} else {
		e := &entry{key: k, value: value}
		if e.size() > c.capacity {
			return
		}
		c.items[k] = c.ll.PushFront(e)
		c.used += e.size()
	}
	c.evictLocked()
}

// Invalidate removes key (writes and deletes).
func (c *Cache) Invalidate(key []byte) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if e, ok := c.items[string(key)]; ok {
		ent := e.Value.(*entry)
		c.used -= ent.size()
		c.ll.Remove(e)
		delete(c.items, ent.key)
	}
}

func (c *Cache) evictLocked() {
	for c.used > c.capacity {
		back := c.ll.Back()
		if back == nil {
			return
		}
		ent := back.Value.(*entry)
		c.ll.Remove(back)
		delete(c.items, ent.key)
		c.used -= ent.size()
		c.evictions++
	}
}

// Resize changes the byte capacity.
func (c *Cache) Resize(capacity int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.capacity = capacity
	c.evictLocked()
}

// Stats reports counters.
type Stats struct {
	Hits, Misses, Evictions int64
	Used, Capacity          int64
	Entries                 int
}

// Stats returns a snapshot of counters.
func (c *Cache) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return Stats{
		Hits: c.hits, Misses: c.misses, Evictions: c.evictions,
		Used: c.used, Capacity: c.capacity, Entries: len(c.items),
	}
}

// Len reports the entry count.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.items)
}
