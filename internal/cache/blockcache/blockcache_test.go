package blockcache

import (
	"fmt"
	"sync"
	"testing"
)

func block(size int, fill byte) []byte {
	b := make([]byte, size)
	for i := range b {
		b[i] = fill
	}
	return b
}

func TestInsertGet(t *testing.T) {
	c := NewShards(1<<20, 4)
	c.Insert(1, 0, block(100, 'a'), 0, false)
	got, ok := c.Get(1, 0)
	if !ok || got[0] != 'a' {
		t.Fatalf("Get = %v, %v", got, ok)
	}
	if _, ok := c.Get(1, 4096); ok {
		t.Fatal("hit on absent block")
	}
	if _, ok := c.Get(2, 0); ok {
		t.Fatal("hit on wrong file")
	}
}

func TestLRUEvictionUnderPressure(t *testing.T) {
	c := NewShards(1000, 1)
	for i := 0; i < 20; i++ {
		c.Insert(1, uint64(i*100), block(100, byte(i)), 0, false)
	}
	if used := c.Used(); used > 1000 {
		t.Fatalf("used %d exceeds capacity", used)
	}
	st := c.Stats()
	if st.Evictions == 0 {
		t.Fatal("no evictions under pressure")
	}
	// Oldest entries must be gone, newest present.
	if _, ok := c.Get(1, 0); ok {
		t.Fatal("oldest block survived")
	}
	if _, ok := c.Get(1, 1900); !ok {
		t.Fatal("newest block evicted")
	}
}

func TestGetRefreshesRecency(t *testing.T) {
	c := NewShards(300, 1)
	c.Insert(1, 0, block(100, 'a'), 0, false)
	c.Insert(1, 100, block(100, 'b'), 0, false)
	c.Insert(1, 200, block(100, 'c'), 0, false)
	c.Get(1, 0) // refresh 'a'
	c.Insert(1, 300, block(100, 'd'), 0, false)
	if _, ok := c.Get(1, 0); !ok {
		t.Fatal("refreshed block evicted")
	}
	if _, ok := c.Get(1, 100); ok {
		t.Fatal("LRU victim survived")
	}
}

func TestUpdateInPlace(t *testing.T) {
	c := New(1 << 20)
	c.Insert(1, 0, block(100, 'a'), 0, false)
	c.Insert(1, 0, block(50, 'b'), 0, false)
	got, ok := c.Get(1, 0)
	if !ok || len(got) != 50 || got[0] != 'b' {
		t.Fatalf("updated block = %d bytes %q", len(got), got[:1])
	}
	if c.Len() != 1 {
		t.Fatalf("Len = %d", c.Len())
	}
}

func TestOversizedBlockRejected(t *testing.T) {
	c := NewShards(100, 1)
	c.Insert(1, 0, block(200, 'x'), 0, false)
	if _, ok := c.Get(1, 0); ok {
		t.Fatal("oversized block admitted")
	}
}

func TestResizeEvictsDown(t *testing.T) {
	c := NewShards(10_000, 1)
	for i := 0; i < 50; i++ {
		c.Insert(1, uint64(i)*100, block(100, 'x'), 0, false)
	}
	c.Resize(500)
	if used := c.Used(); used > 500 {
		t.Fatalf("used %d after shrink", used)
	}
	c.Resize(10_000)
	if c.Capacity() != 10_000 {
		t.Fatalf("capacity = %d after grow", c.Capacity())
	}
}

func TestZeroCapacityAdmitsNothing(t *testing.T) {
	c := NewShards(0, 1)
	c.Insert(1, 0, block(10, 'x'), 0, false)
	if c.Len() != 0 {
		t.Fatal("zero-capacity cache admitted a block")
	}
}

func TestEvictFile(t *testing.T) {
	c := New(1 << 20)
	for i := 0; i < 10; i++ {
		c.Insert(1, uint64(i*4096), block(100, 'a'), 0, false)
		c.Insert(2, uint64(i*4096), block(100, 'b'), 0, false)
	}
	c.EvictFile(1)
	for i := 0; i < 10; i++ {
		if _, ok := c.Get(1, uint64(i*4096)); ok {
			t.Fatal("file-1 block survived EvictFile")
		}
		if _, ok := c.Get(2, uint64(i*4096)); !ok {
			t.Fatal("file-2 block wrongly evicted")
		}
	}
}

func TestStatsCounters(t *testing.T) {
	c := New(1 << 20)
	c.Insert(1, 0, block(10, 'a'), 0, false)
	c.Get(1, 0)
	c.Get(1, 999)
	st := c.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Inserts != 1 {
		t.Fatalf("stats = %+v", st)
	}
	c.ResetCounters()
	if st := c.Stats(); st.Hits != 0 || st.Misses != 0 {
		t.Fatalf("counters not reset: %+v", st)
	}
}

func TestAdaptiveShardCount(t *testing.T) {
	small := New(10 << 10) // 10 KiB: one shard, so a 4 KiB block fits
	small.Insert(1, 0, block(4096, 'x'), 0, false)
	if _, ok := small.Get(1, 0); !ok {
		t.Fatal("small cache cannot admit a 4 KiB block (shard too small)")
	}
	big := New(64 << 20)
	if len(big.shards) != DefaultShards {
		t.Fatalf("big cache shards = %d", len(big.shards))
	}
}

func TestConcurrentAccess(t *testing.T) {
	c := New(1 << 20)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				off := uint64((g*1000 + i) % 500 * 128)
				if i%3 == 0 {
					c.Insert(uint64(g%3), off, block(64, byte(i)), 0, false)
				} else {
					c.Get(uint64(g%3), off)
				}
			}
		}(g)
	}
	wg.Wait()
	if c.Used() > c.Capacity() {
		t.Fatalf("used %d > capacity %d", c.Used(), c.Capacity())
	}
}

func TestManyFilesDistribution(t *testing.T) {
	c := NewShards(1<<20, 8)
	for f := uint64(0); f < 100; f++ {
		for o := uint64(0); o < 4; o++ {
			c.Insert(f, o*4096, block(64, 'z'), 0, false)
		}
	}
	if c.Len() != 400 {
		t.Fatalf("Len = %d", c.Len())
	}
	// Every shard should hold something (hash spreads keys).
	for i, s := range c.shards {
		s.mu.Lock()
		n := len(s.items)
		s.mu.Unlock()
		if n == 0 {
			t.Fatalf("shard %d empty: poor key distribution", i)
		}
	}
}

func TestScanFlagIgnoredByPlainCache(t *testing.T) {
	c := New(1 << 20)
	c.Insert(1, 0, block(10, 'a'), 0, true) // scan-tagged
	if _, ok := c.Get(1, 0); !ok {
		t.Fatal("plain cache must admit scan-tagged blocks (RocksDB default)")
	}
}

func ExampleCache() {
	c := New(1 << 20)
	c.Insert(7, 0, []byte("block-bytes"), 0, false)
	if data, ok := c.Get(7, 0); ok {
		fmt.Println(string(data))
	}
	// Output: block-bytes
}
