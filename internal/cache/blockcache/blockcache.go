// Package blockcache implements the RocksDB-style block cache: a sharded,
// byte-budgeted LRU over SSTable data blocks keyed by (file number, offset).
//
// Entries are bound to physical file identity, so compactions leave dead
// entries behind — the invalidation weakness the paper's range cache
// addresses. Capacity can be resized at runtime; AdCache moves the boundary
// between block and range cache by resizing both.
package blockcache

import (
	"container/list"
	"sync"
)

// DefaultShards balances lock contention against shard-budget fragmentation.
const DefaultShards = 16

// Cache is a sharded LRU block cache. It is safe for concurrent use.
// Counters live on the shards (counted under each shard's lock, so they
// cost nothing extra on the hot path); Stats aggregates them and
// ShardStats exposes the per-shard view for metrics.
type Cache struct {
	shards []*shard
	mask   uint64
}

type shard struct {
	mu       sync.Mutex
	capacity int64
	used     int64      // physical bytes held (what the budget charges)
	logical  int64      // decoded bytes the held blocks expand to
	ll       *list.List // front = most recent
	items    map[blockKey]*list.Element

	hits      int64
	misses    int64
	inserts   int64
	evictions int64
}

type blockKey struct {
	fileNum uint64
	offset  uint64
}

// entry holds one cached physical block image. logical is its decoded size:
// equal to len(data) for uncompressed blocks, larger for compressed ones.
// The byte budget charges physical bytes — the memory actually resident —
// while the logical total feeds the physical/logical ratio the RL state
// vector observes.
type entry struct {
	key     blockKey
	data    []byte
	logical int64
}

// New returns a cache with the given total byte capacity. The shard count
// adapts to the budget (one shard per 64 KiB, capped at DefaultShards) so
// that small caches keep shards large enough to admit 4 KiB blocks.
func New(capacity int64) *Cache {
	shards := int(capacity / (64 << 10))
	if shards > DefaultShards {
		shards = DefaultShards
	}
	if shards < 1 {
		shards = 1
	}
	return NewShards(capacity, shards)
}

// NewShards returns a cache with an explicit power-of-two shard count.
func NewShards(capacity int64, numShards int) *Cache {
	if numShards < 1 {
		numShards = 1
	}
	// Round up to a power of two for mask indexing.
	n := 1
	for n < numShards {
		n *= 2
	}
	c := &Cache{shards: make([]*shard, n), mask: uint64(n - 1)}
	for i := range c.shards {
		c.shards[i] = &shard{
			capacity: capacity / int64(n),
			ll:       list.New(),
			items:    make(map[blockKey]*list.Element),
		}
	}
	return c
}

func (c *Cache) shardFor(k blockKey) *shard {
	h := k.fileNum*0x9e3779b97f4a7c15 ^ k.offset*0xc2b2ae3d27d4eb4f
	h ^= h >> 29
	return c.shards[h&c.mask]
}

// Get implements sstable.BlockCache.
func (c *Cache) Get(fileNum, offset uint64) ([]byte, bool) {
	k := blockKey{fileNum, offset}
	s := c.shardFor(k)
	s.mu.Lock()
	defer s.mu.Unlock()
	if e, ok := s.items[k]; ok {
		s.ll.MoveToFront(e)
		s.hits++
		return e.Value.(*entry).data, true
	}
	s.misses++
	return nil, false
}

// Insert implements sstable.BlockCache. data is the block's physical image
// and logical its decoded size; the budget charges physical bytes. The scan
// flag is accepted for interface compatibility; the plain block cache admits
// everything, like RocksDB's default.
func (c *Cache) Insert(fileNum, offset uint64, data []byte, logical int, scan bool) {
	c.insert(fileNum, offset, data, int64(logical))
}

func (c *Cache) insert(fileNum, offset uint64, data []byte, logical int64) {
	if logical < int64(len(data)) {
		logical = int64(len(data))
	}
	k := blockKey{fileNum, offset}
	s := c.shardFor(k)
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.capacity <= 0 {
		return
	}
	if e, ok := s.items[k]; ok {
		old := e.Value.(*entry)
		s.used += int64(len(data)) - int64(len(old.data))
		s.logical += logical - old.logical
		old.data = data
		old.logical = logical
		s.ll.MoveToFront(e)
	} else {
		if int64(len(data)) > s.capacity {
			return // larger than the whole shard: never admit
		}
		s.items[k] = s.ll.PushFront(&entry{key: k, data: data, logical: logical})
		s.used += int64(len(data))
		s.logical += logical
		s.inserts++
	}
	s.evictLocked()
}

func (s *shard) evictLocked() {
	for s.used > s.capacity {
		back := s.ll.Back()
		if back == nil {
			return
		}
		e := back.Value.(*entry)
		s.ll.Remove(back)
		delete(s.items, e.key)
		s.used -= int64(len(e.data))
		s.logical -= e.logical
		s.evictions++
	}
}

// Resize changes the total capacity, evicting as needed. AdCache calls this
// when the RL agent moves the cache boundary.
func (c *Cache) Resize(capacity int64) {
	per := capacity / int64(len(c.shards))
	for _, s := range c.shards {
		s.mu.Lock()
		s.capacity = per
		s.evictLocked()
		s.mu.Unlock()
	}
}

// EvictFile drops all blocks of fileNum (tooling; the engine does not call
// this on compaction so that invalidation costs stay realistic).
func (c *Cache) EvictFile(fileNum uint64) {
	for _, s := range c.shards {
		s.mu.Lock()
		for k, e := range s.items {
			if k.fileNum == fileNum {
				ent := e.Value.(*entry)
				s.used -= int64(len(ent.data))
				s.logical -= ent.logical
				s.ll.Remove(e)
				delete(s.items, k)
			}
		}
		s.mu.Unlock()
	}
}

// Used reports the cached physical byte total — the resident memory the
// cache's budget charges.
func (c *Cache) Used() int64 {
	var used int64
	for _, s := range c.shards {
		s.mu.Lock()
		used += s.used
		s.mu.Unlock()
	}
	return used
}

// LogicalUsed reports the decoded byte total of the cached blocks. With
// compression off it equals Used; the Used/LogicalUsed ratio is the cache's
// effective compression factor.
func (c *Cache) LogicalUsed() int64 {
	var logical int64
	for _, s := range c.shards {
		s.mu.Lock()
		logical += s.logical
		s.mu.Unlock()
	}
	return logical
}

// Capacity reports the configured byte budget.
func (c *Cache) Capacity() int64 {
	var capacity int64
	for _, s := range c.shards {
		s.mu.Lock()
		capacity += s.capacity
		s.mu.Unlock()
	}
	return capacity
}

// Len reports the number of cached blocks.
func (c *Cache) Len() int {
	n := 0
	for _, s := range c.shards {
		s.mu.Lock()
		n += len(s.items)
		s.mu.Unlock()
	}
	return n
}

// Stats is a snapshot of cache counters. Used counts physical (resident)
// bytes; LogicalUsed counts what those blocks decode to.
type Stats struct {
	Hits        int64
	Misses      int64
	Inserts     int64
	Evictions   int64
	Used        int64
	LogicalUsed int64
	Capacity    int64
	Blocks      int
}

// Stats returns a snapshot of the cache counters, aggregated over shards.
func (c *Cache) Stats() Stats {
	var st Stats
	for _, s := range c.ShardStats() {
		st.Hits += s.Hits
		st.Misses += s.Misses
		st.Inserts += s.Inserts
		st.Evictions += s.Evictions
		st.Used += s.Used
		st.LogicalUsed += s.LogicalUsed
		st.Capacity += s.Capacity
		st.Blocks += s.Blocks
	}
	return st
}

// ShardStats returns one counter snapshot per shard, in shard order — the
// per-shard observability view (shard imbalance shows up here first).
func (c *Cache) ShardStats() []Stats {
	out := make([]Stats, len(c.shards))
	for i, s := range c.shards {
		s.mu.Lock()
		out[i] = Stats{
			Hits:        s.hits,
			Misses:      s.misses,
			Inserts:     s.inserts,
			Evictions:   s.evictions,
			Used:        s.used,
			LogicalUsed: s.logical,
			Capacity:    s.capacity,
			Blocks:      len(s.items),
		}
		s.mu.Unlock()
	}
	return out
}

// ResetCounters zeroes hit/miss/insert/eviction counters (per-window stats).
func (c *Cache) ResetCounters() {
	for _, s := range c.shards {
		s.mu.Lock()
		s.hits, s.misses, s.inserts, s.evictions = 0, 0, 0, 0
		s.mu.Unlock()
	}
}
