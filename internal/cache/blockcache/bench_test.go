package blockcache

import (
	"math/rand"
	"sync/atomic"
	"testing"
)

// benchParallel measures shard contention on the block cache: at least four
// goroutines (SetParallelism(4) gives 4×GOMAXPROCS workers) running a
// read-mostly block workload. numShards=1 approximates a single-lock cache;
// numShards=0 selects the default shard count.
func benchParallel(b *testing.B, numShards int) {
	var c *Cache
	if numShards == 0 {
		c = New(16 << 20)
	} else {
		c = NewShards(16<<20, numShards)
	}
	const files, blocks = 8, 256
	data := make([]byte, 4096)
	for f := uint64(0); f < files; f++ {
		for off := uint64(0); off < blocks; off++ {
			c.Insert(f, off*4096, data, 0, false)
		}
	}
	var seed atomic.Int64
	b.SetParallelism(4)
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		rng := rand.New(rand.NewSource(seed.Add(1)))
		for pb.Next() {
			f := uint64(rng.Intn(files))
			off := uint64(rng.Intn(blocks)) * 4096
			if rng.Intn(100) < 10 {
				c.Insert(f, off, data, 0, false)
			} else {
				c.Get(f, off)
			}
		}
	})
}

func BenchmarkParallelSharded(b *testing.B) { benchParallel(b, 0) }

func BenchmarkParallelSingleShard(b *testing.B) { benchParallel(b, 1) }
