// Package policy provides pluggable eviction policies for the result caches:
// LRU, LFU, LeCaR (Vietri et al., HotStorage'18) and Cacheus (Rodriguez et
// al., FAST'21). The paper evaluates Range Cache variants that swap LRU for
// LeCaR or Cacheus, so the range cache accepts any Policy.
//
// Policies track key identity only; the owning cache stores the bytes and
// enforces the capacity, asking the policy for victims. Implementations are
// not safe for concurrent use — the owning cache shards and locks.
package policy

// Policy decides evictions for a capacity-bounded cache.
type Policy interface {
	// OnInsert records that key entered the cache.
	OnInsert(key string)
	// OnAccess records a cache hit on key.
	OnAccess(key string)
	// OnMiss records a lookup miss (some policies learn from ghost hits).
	OnMiss(key string)
	// OnRemove records that key left the cache for a non-eviction reason
	// (invalidation by a write, shrink, etc.).
	OnRemove(key string)
	// Evict selects a victim, removes it from the policy's bookkeeping and
	// returns it. ok is false when the policy tracks nothing.
	Evict() (key string, ok bool)
	// Len reports how many keys the policy tracks.
	Len() int
	// Name identifies the policy in metrics and experiment output.
	Name() string
}

// New constructs a policy by name: "lru", "lfu", "arc", "lecar" or
// "cacheus". Unknown names fall back to LRU.
func New(name string, capacityHint int) Policy {
	switch name {
	case "lfu":
		return NewLFU()
	case "arc":
		return NewARC(capacityHint)
	case "lecar":
		return NewLeCaR(capacityHint)
	case "cacheus":
		return NewCacheus(capacityHint)
	default:
		return NewLRU()
	}
}
