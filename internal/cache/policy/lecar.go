package policy

import (
	"container/list"
	"math"
	"math/rand"
)

// LeCaR implements the learning cache replacement policy of Vietri et al.
// (HotStorage'18): it maintains LRU and LFU views of the cached set and a
// weight per expert, samples the eviction expert by weight, and performs
// regret updates when a missed key is found in an expert's ghost history
// (the expert that evicted it is penalised, discounted by how long ago the
// eviction happened).
type LeCaR struct {
	lru *LRU
	lfu *LFU

	wLRU, wLFU   float64
	learningRate float64
	discount     float64

	histLRU *ghostList
	histLFU *ghostList

	clock int64
	rng   *rand.Rand
}

// NewLeCaR returns a LeCaR policy. capacityHint sizes the ghost histories
// and sets the regret discount rate, per the original paper
// (d = 0.005^(1/N)).
func NewLeCaR(capacityHint int) *LeCaR {
	if capacityHint < 1 {
		capacityHint = 1
	}
	return &LeCaR{
		lru:          NewLRU(),
		lfu:          NewLFU(),
		wLRU:         0.5,
		wLFU:         0.5,
		learningRate: 0.45,
		discount:     math.Pow(0.005, 1/float64(capacityHint)),
		histLRU:      newGhostList(capacityHint),
		histLFU:      newGhostList(capacityHint),
		rng:          rand.New(rand.NewSource(1)),
	}
}

// OnInsert implements Policy.
func (p *LeCaR) OnInsert(key string) {
	p.clock++
	p.lru.OnInsert(key)
	p.lfu.OnInsert(key)
	// A key re-entering the cache leaves the histories.
	p.histLRU.remove(key)
	p.histLFU.remove(key)
}

// OnAccess implements Policy.
func (p *LeCaR) OnAccess(key string) {
	p.clock++
	p.lru.OnAccess(key)
	p.lfu.OnAccess(key)
}

// OnMiss implements Policy: regret update against ghost histories.
func (p *LeCaR) OnMiss(key string) {
	p.clock++
	if t, ok := p.histLRU.get(key); ok {
		// LRU evicted a key that came back: penalise LRU.
		regret := math.Pow(p.discount, float64(p.clock-t))
		p.wLFU *= math.Exp(p.learningRate * regret)
		p.normalize()
		p.histLRU.remove(key)
	} else if t, ok := p.histLFU.get(key); ok {
		regret := math.Pow(p.discount, float64(p.clock-t))
		p.wLRU *= math.Exp(p.learningRate * regret)
		p.normalize()
		p.histLFU.remove(key)
	}
}

func (p *LeCaR) normalize() {
	sum := p.wLRU + p.wLFU
	p.wLRU /= sum
	p.wLFU /= sum
}

// OnRemove implements Policy.
func (p *LeCaR) OnRemove(key string) {
	p.lru.OnRemove(key)
	p.lfu.OnRemove(key)
}

// Evict implements Policy: sample an expert by weight and evict its victim.
func (p *LeCaR) Evict() (string, bool) {
	if p.lru.Len() == 0 {
		return "", false
	}
	var victim string
	var ok bool
	if p.rng.Float64() < p.wLRU {
		victim, ok = p.lru.Evict()
		if ok {
			p.lfu.OnRemove(victim)
			p.histLRU.add(victim, p.clock)
		}
	} else {
		victim, ok = p.lfu.Evict()
		if ok {
			p.lru.OnRemove(victim)
			p.histLFU.add(victim, p.clock)
		}
	}
	return victim, ok
}

// Len implements Policy.
func (p *LeCaR) Len() int { return p.lru.Len() }

// Name implements Policy.
func (p *LeCaR) Name() string { return "lecar" }

// Weights reports the current expert weights (wLRU, wLFU) for tests and
// experiment traces.
func (p *LeCaR) Weights() (float64, float64) { return p.wLRU, p.wLFU }

// ghostList is a bounded FIFO of evicted keys with their eviction times.
type ghostList struct {
	cap   int
	ll    *list.List // front = newest
	items map[string]*list.Element
}

type ghostEntry struct {
	key  string
	time int64
}

func newGhostList(capacity int) *ghostList {
	return &ghostList{cap: capacity, ll: list.New(), items: make(map[string]*list.Element)}
}

func (g *ghostList) add(key string, t int64) {
	if e, ok := g.items[key]; ok {
		e.Value.(*ghostEntry).time = t
		g.ll.MoveToFront(e)
		return
	}
	g.items[key] = g.ll.PushFront(&ghostEntry{key: key, time: t})
	for g.ll.Len() > g.cap {
		back := g.ll.Back()
		delete(g.items, back.Value.(*ghostEntry).key)
		g.ll.Remove(back)
	}
}

func (g *ghostList) get(key string) (int64, bool) {
	if e, ok := g.items[key]; ok {
		return e.Value.(*ghostEntry).time, true
	}
	return 0, false
}

func (g *ghostList) remove(key string) {
	if e, ok := g.items[key]; ok {
		g.ll.Remove(e)
		delete(g.items, key)
	}
}

func (g *ghostList) contains(key string) bool {
	_, ok := g.items[key]
	return ok
}

func (g *ghostList) len() int { return g.ll.Len() }
