package policy

import (
	"container/list"
	"math"
	"math/rand"
)

// Cacheus implements the policy of Rodriguez et al. (FAST'21): the LeCaR
// weighting framework with two stronger experts — a scan-resistant LRU
// (SR-LRU) and a churn-resistant LFU (CR-LFU) — and an adaptive learning
// rate driven by recent performance instead of LeCaR's fixed rate.
//
// The experts follow the published designs; partition adaptation inside
// SR-LRU uses ARC-style ±1 target adjustment on history hits, a documented
// simplification of the original's demotion bookkeeping.
type Cacheus struct {
	srlru *srLRU
	crlfu *crLFU

	wSR, wCR float64
	lr       float64
	clock    int64
	rng      *rand.Rand

	// Adaptive learning rate state: hit counts over fixed windows.
	windowSize   int64
	windowHits   int64
	windowOps    int64
	prevHitRate  float64
	prevLRChange float64
}

// NewCacheus returns a Cacheus policy sized for capacityHint entries.
func NewCacheus(capacityHint int) *Cacheus {
	if capacityHint < 1 {
		capacityHint = 1
	}
	return &Cacheus{
		srlru:      newSRLRU(capacityHint),
		crlfu:      newCRLFU(capacityHint),
		wSR:        0.5,
		wCR:        0.5,
		lr:         math.Sqrt(2 * math.Ln2 / float64(capacityHint)),
		rng:        rand.New(rand.NewSource(1)),
		windowSize: int64(capacityHint),
	}
}

// OnInsert implements Policy.
func (p *Cacheus) OnInsert(key string) {
	p.clock++
	p.srlru.insert(key)
	p.crlfu.OnInsert(key)
}

// OnAccess implements Policy.
func (p *Cacheus) OnAccess(key string) {
	p.clock++
	p.windowHits++
	p.tickWindow()
	p.srlru.access(key)
	p.crlfu.OnAccess(key)
}

// OnMiss implements Policy.
func (p *Cacheus) OnMiss(key string) {
	p.clock++
	p.tickWindow()
	// Regret updates against each expert's ghost history.
	if p.srlru.hist.contains(key) {
		p.wCR *= math.Exp(p.lr)
		p.normalize()
	}
	if p.crlfu.hist.contains(key) {
		p.wSR *= math.Exp(p.lr)
		p.normalize()
	}
	p.srlru.onMiss(key)
}

// tickWindow adapts the learning rate once per window: if the hit rate
// improved since the last window, keep the direction of the last change;
// otherwise reverse and shrink, per the Cacheus gradient heuristic.
func (p *Cacheus) tickWindow() {
	p.windowOps++
	if p.windowOps < p.windowSize {
		return
	}
	hitRate := float64(p.windowHits) / float64(p.windowOps)
	delta := hitRate - p.prevHitRate
	change := p.prevLRChange
	if change == 0 {
		change = p.lr * 0.1
	}
	if delta < 0 {
		change = -change * 0.5
	}
	p.lr = clamp(p.lr+change, 0.001, 1)
	p.prevLRChange = change
	p.prevHitRate = hitRate
	p.windowHits, p.windowOps = 0, 0
}

func clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

func (p *Cacheus) normalize() {
	sum := p.wSR + p.wCR
	p.wSR /= sum
	p.wCR /= sum
}

// OnRemove implements Policy.
func (p *Cacheus) OnRemove(key string) {
	p.srlru.remove(key)
	p.crlfu.OnRemove(key)
}

// Evict implements Policy.
func (p *Cacheus) Evict() (string, bool) {
	if p.Len() == 0 {
		return "", false
	}
	var victim string
	var ok bool
	if p.rng.Float64() < p.wSR {
		victim, ok = p.srlru.evict()
		if ok {
			p.crlfu.OnRemove(victim)
		}
	} else {
		victim, ok = p.crlfu.evictToHistory()
		if ok {
			p.srlru.remove(victim)
		}
	}
	return victim, ok
}

// Len implements Policy.
func (p *Cacheus) Len() int { return p.srlru.len() }

// Name implements Policy.
func (p *Cacheus) Name() string { return "cacheus" }

// Weights reports (wSR-LRU, wCR-LFU).
func (p *Cacheus) Weights() (float64, float64) { return p.wSR, p.wCR }

// srLRU is the scan-resistant LRU expert. The cache is split into a scan
// segment S (new, never-reused keys) and a reused segment R; evictions come
// from S so one-shot scan traffic cannot flush reused data. A ghost history
// recognises prematurely evicted keys, and an ARC-style target steers the
// S/R split.
type srLRU struct {
	cap     int
	s       *list.List // front = MRU
	r       *list.List
	where   map[string]*srEntry
	hist    *ghostList
	targetS int
}

type srEntry struct {
	key  string
	inS  bool
	elem *list.Element
}

func newSRLRU(capacity int) *srLRU {
	return &srLRU{
		cap:     capacity,
		s:       list.New(),
		r:       list.New(),
		where:   make(map[string]*srEntry),
		hist:    newGhostList(capacity),
		targetS: capacity / 2,
	}
}

func (p *srLRU) insert(key string) {
	if e, ok := p.where[key]; ok {
		p.touch(e)
		return
	}
	e := &srEntry{key: key}
	if p.hist.contains(key) {
		// Returning key: it has proven reuse, admit straight to R.
		p.hist.remove(key)
		e.inS = false
		e.elem = p.r.PushFront(e)
	} else {
		e.inS = true
		e.elem = p.s.PushFront(e)
	}
	p.where[key] = e
	p.rebalance()
}

func (p *srLRU) access(key string) {
	if e, ok := p.where[key]; ok {
		p.touch(e)
	}
}

// touch promotes a hit: S hits graduate to R, R hits refresh recency.
func (p *srLRU) touch(e *srEntry) {
	if e.inS {
		p.s.Remove(e.elem)
		e.inS = false
		e.elem = p.r.PushFront(e)
		p.rebalance()
	} else {
		p.r.MoveToFront(e.elem)
	}
}

// onMiss adapts the split: a ghost hit means eviction from S was premature,
// so give S more room.
func (p *srLRU) onMiss(key string) {
	if p.hist.contains(key) && p.targetS < p.cap-1 {
		p.targetS++
	}
}

// rebalance demotes R's LRU tail into S when R outgrows its share.
func (p *srLRU) rebalance() {
	for p.r.Len() > p.cap-p.targetS && p.r.Len() > 1 {
		back := p.r.Back()
		e := back.Value.(*srEntry)
		p.r.Remove(back)
		e.inS = true
		e.elem = p.s.PushFront(e)
	}
}

func (p *srLRU) remove(key string) {
	e, ok := p.where[key]
	if !ok {
		return
	}
	if e.inS {
		p.s.Remove(e.elem)
	} else {
		p.r.Remove(e.elem)
	}
	delete(p.where, key)
}

func (p *srLRU) evict() (string, bool) {
	var back *list.Element
	if p.s.Len() > 0 {
		back = p.s.Back()
		p.s.Remove(back)
	} else if p.r.Len() > 0 {
		back = p.r.Back()
		p.r.Remove(back)
		// Evicting from R means S starved; shrink the S target.
		if p.targetS > 1 {
			p.targetS--
		}
	} else {
		return "", false
	}
	e := back.Value.(*srEntry)
	delete(p.where, e.key)
	p.hist.add(e.key, 0)
	return e.key, true
}

func (p *srLRU) len() int { return len(p.where) }

// crLFU is the churn-resistant LFU expert: LFU with LRU tie-breaking (the
// base LFU provides it), plus frequency inheritance under churn — when
// evictions keep removing frequency-1 keys, newly admitted keys inherit the
// victims' effective frequency so the cache stops cycling the same cohort.
type crLFU struct {
	lfu        *LFU
	hist       *ghostList
	churnRun   int
	churnLimit int
	churnMode  bool
}

func newCRLFU(capacity int) *crLFU {
	limit := capacity / 2
	if limit < 4 {
		limit = 4
	}
	return &crLFU{lfu: NewLFU(), hist: newGhostList(capacity), churnLimit: limit}
}

func (p *crLFU) OnInsert(key string) {
	p.lfu.OnInsert(key)
	if p.churnMode {
		// Inherit the churn cohort's effective frequency so the newcomer is
		// not the automatic next victim.
		p.lfu.SetFreq(key, 2)
	}
	p.hist.remove(key)
}

func (p *crLFU) OnAccess(key string) { p.lfu.OnAccess(key) }

func (p *crLFU) OnRemove(key string) { p.lfu.OnRemove(key) }

func (p *crLFU) evictToHistory() (string, bool) {
	victimFreq := int64(0)
	if front := p.lfu.buckets.Front(); front != nil {
		victimFreq = front.Value.(*freqBucket).freq
	}
	victim, ok := p.lfu.Evict()
	if !ok {
		return "", false
	}
	if victimFreq <= 1 {
		p.churnRun++
	} else {
		p.churnRun = 0
	}
	p.churnMode = p.churnRun >= p.churnLimit
	p.hist.add(victim, 0)
	return victim, true
}
