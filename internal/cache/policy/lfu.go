package policy

import "container/list"

// LFU is an O(1) least-frequently-used policy using frequency buckets, with
// LRU tie-breaking inside a bucket (the oldest of the least-used keys goes
// first).
type LFU struct {
	buckets *list.List // ascending frequency; each element is *freqBucket
	items   map[string]*lfuEntry
}

type freqBucket struct {
	freq    int64
	entries *list.List // front = most recent; evict from back
}

type lfuEntry struct {
	key    string
	bucket *list.Element // into LFU.buckets
	elem   *list.Element // into freqBucket.entries
}

// NewLFU returns an empty LFU policy.
func NewLFU() *LFU {
	return &LFU{buckets: list.New(), items: make(map[string]*lfuEntry)}
}

// OnInsert implements Policy.
func (p *LFU) OnInsert(key string) {
	if e, ok := p.items[key]; ok {
		p.promote(e)
		return
	}
	front := p.buckets.Front()
	var b *freqBucket
	if front == nil || front.Value.(*freqBucket).freq != 1 {
		b = &freqBucket{freq: 1, entries: list.New()}
		front = p.buckets.PushFront(b)
	} else {
		b = front.Value.(*freqBucket)
	}
	ent := &lfuEntry{key: key, bucket: front}
	ent.elem = b.entries.PushFront(ent)
	p.items[key] = ent
}

// OnAccess implements Policy.
func (p *LFU) OnAccess(key string) {
	if e, ok := p.items[key]; ok {
		p.promote(e)
	}
}

// promote moves e to the next-higher frequency bucket.
func (p *LFU) promote(e *lfuEntry) {
	cur := e.bucket
	b := cur.Value.(*freqBucket)
	next := cur.Next()
	var nb *freqBucket
	if next == nil || next.Value.(*freqBucket).freq != b.freq+1 {
		nb = &freqBucket{freq: b.freq + 1, entries: list.New()}
		next = p.buckets.InsertAfter(nb, cur)
	} else {
		nb = next.Value.(*freqBucket)
	}
	b.entries.Remove(e.elem)
	if b.entries.Len() == 0 {
		p.buckets.Remove(cur)
	}
	e.bucket = next
	e.elem = nb.entries.PushFront(e)
}

// OnMiss implements Policy.
func (p *LFU) OnMiss(string) {}

// OnRemove implements Policy.
func (p *LFU) OnRemove(key string) {
	e, ok := p.items[key]
	if !ok {
		return
	}
	p.removeEntry(e)
}

func (p *LFU) removeEntry(e *lfuEntry) {
	b := e.bucket.Value.(*freqBucket)
	b.entries.Remove(e.elem)
	if b.entries.Len() == 0 {
		p.buckets.Remove(e.bucket)
	}
	delete(p.items, e.key)
}

// Evict implements Policy: removes the least-recently-used key of the
// lowest-frequency bucket.
func (p *LFU) Evict() (string, bool) {
	front := p.buckets.Front()
	if front == nil {
		return "", false
	}
	b := front.Value.(*freqBucket)
	victim := b.entries.Back().Value.(*lfuEntry)
	p.removeEntry(victim)
	return victim.key, true
}

// Len implements Policy.
func (p *LFU) Len() int { return len(p.items) }

// Name implements Policy.
func (p *LFU) Name() string { return "lfu" }

// Freq reports key's frequency counter (tests and Cacheus's CR-LFU).
func (p *LFU) Freq(key string) int64 {
	if e, ok := p.items[key]; ok {
		return e.bucket.Value.(*freqBucket).freq
	}
	return 0
}

// SetFreq reinserts key at an explicit frequency (CR-LFU churn handling).
func (p *LFU) SetFreq(key string, freq int64) {
	if e, ok := p.items[key]; ok {
		p.removeEntry(e)
	}
	if freq < 1 {
		freq = 1
	}
	// Find or create the bucket with the requested frequency.
	var at *list.Element
	for el := p.buckets.Front(); el != nil; el = el.Next() {
		f := el.Value.(*freqBucket).freq
		if f == freq {
			at = el
			break
		}
		if f > freq {
			at = p.buckets.InsertBefore(&freqBucket{freq: freq, entries: list.New()}, el)
			break
		}
	}
	if at == nil {
		at = p.buckets.PushBack(&freqBucket{freq: freq, entries: list.New()})
	}
	b := at.Value.(*freqBucket)
	ent := &lfuEntry{key: key, bucket: at}
	ent.elem = b.entries.PushFront(ent)
	p.items[key] = ent
}
