package policy

import "container/list"

// ARC implements the Adaptive Replacement Cache of Megiddo & Modha
// (FAST'03): two live lists — T1 (seen once, recency) and T2 (seen at least
// twice, frequency) — and two ghost lists (B1, B2) whose hits steer the
// adaptive target p for T1's share. AC-Key (ATC'20), one of the paper's
// related systems, drives its hierarchical caches with ARC; it is provided
// here as an additional pluggable policy ("arc").
type ARC struct {
	capacity int
	p        int // target size of T1

	t1, t2 *list.List // front = MRU
	b1, b2 *list.List
	where  map[string]*arcEntry
}

type arcList int

const (
	inT1 arcList = iota
	inT2
	inB1
	inB2
)

type arcEntry struct {
	key  string
	list arcList
	elem *list.Element
}

// NewARC returns an ARC policy sized for capacity entries. ARC needs the
// entry capacity up front (its lists balance against it); the owning cache
// passes its capacity hint.
func NewARC(capacity int) *ARC {
	if capacity < 1 {
		capacity = 1
	}
	return &ARC{
		capacity: capacity,
		t1:       list.New(), t2: list.New(),
		b1: list.New(), b2: list.New(),
		where: make(map[string]*arcEntry),
	}
}

func (p *ARC) listOf(l arcList) *list.List {
	switch l {
	case inT1:
		return p.t1
	case inT2:
		return p.t2
	case inB1:
		return p.b1
	default:
		return p.b2
	}
}

func (p *ARC) moveTo(e *arcEntry, dst arcList) {
	p.listOf(e.list).Remove(e.elem)
	e.list = dst
	e.elem = p.listOf(dst).PushFront(e)
}

func (p *ARC) dropFrom(e *arcEntry) {
	p.listOf(e.list).Remove(e.elem)
	delete(p.where, e.key)
}

// OnInsert implements Policy.
func (p *ARC) OnInsert(key string) {
	if e, ok := p.where[key]; ok {
		switch e.list {
		case inT1, inT2:
			p.OnAccess(key)
		case inB1:
			// Ghost hit on the recency side: grow T1's target.
			p.p = minInt(p.p+maxInt(1, p.b2.Len()/maxInt(1, p.b1.Len())), p.capacity)
			p.moveTo(e, inT2)
		case inB2:
			// Ghost hit on the frequency side: shrink T1's target.
			p.p = maxInt(p.p-maxInt(1, p.b1.Len()/maxInt(1, p.b2.Len())), 0)
			p.moveTo(e, inT2)
		}
		return
	}
	e := &arcEntry{key: key, list: inT1}
	e.elem = p.t1.PushFront(e)
	p.where[key] = e
	p.truncateGhosts()
}

// OnAccess implements Policy: a second touch promotes T1 → T2.
func (p *ARC) OnAccess(key string) {
	e, ok := p.where[key]
	if !ok {
		return
	}
	switch e.list {
	case inT1, inT2:
		p.moveTo(e, inT2)
	}
}

// OnMiss implements Policy. Ghost-hit adaptation happens on reinsertion
// (OnInsert), where ARC's original formulation puts it.
func (p *ARC) OnMiss(string) {}

// OnRemove implements Policy.
func (p *ARC) OnRemove(key string) {
	if e, ok := p.where[key]; ok {
		p.dropFrom(e)
	}
}

// Evict implements Policy: replace per ARC — evict T1's LRU into B1 when T1
// exceeds its target, else T2's LRU into B2.
func (p *ARC) Evict() (string, bool) {
	var victim *arcEntry
	if p.t1.Len() > 0 && (p.t1.Len() > p.p || p.t2.Len() == 0) {
		victim = p.t1.Back().Value.(*arcEntry)
		p.moveTo(victim, inB1)
	} else if p.t2.Len() > 0 {
		victim = p.t2.Back().Value.(*arcEntry)
		p.moveTo(victim, inB2)
	} else {
		return "", false
	}
	p.truncateGhosts()
	return victim.key, true
}

// truncateGhosts bounds B1+B2 to the cache capacity.
func (p *ARC) truncateGhosts() {
	for p.b1.Len()+p.b2.Len() > p.capacity {
		var back *list.Element
		if p.b1.Len() > p.b2.Len() {
			back = p.b1.Back()
		} else {
			back = p.b2.Back()
		}
		if back == nil {
			return
		}
		p.dropFrom(back.Value.(*arcEntry))
	}
}

// Len implements Policy: only live entries count.
func (p *ARC) Len() int { return p.t1.Len() + p.t2.Len() }

// Name implements Policy.
func (p *ARC) Name() string { return "arc" }

// Target reports the adaptive T1 target (tests).
func (p *ARC) Target() int { return p.p }

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
