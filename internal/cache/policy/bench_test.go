package policy

import (
	"fmt"
	"math/rand"
	"testing"
)

// benchWorkload exercises a policy with a zipf-ish access stream over a
// bounded cache, the dominant cost profile inside the range cache.
func benchWorkload(b *testing.B, name string) {
	const capacity = 1024
	p := New(name, capacity)
	cached := make(map[string]bool, capacity)
	rng := rand.New(rand.NewSource(1))
	keys := make([]string, 16_384)
	for i := range keys {
		keys[i] = fmt.Sprintf("key%08d", i)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// Roughly zipf: low indices far more often.
		idx := int(float64(len(keys)-1) * rng.Float64() * rng.Float64() * rng.Float64())
		key := keys[idx]
		if cached[key] {
			p.OnAccess(key)
			continue
		}
		p.OnMiss(key)
		if len(cached) >= capacity {
			if v, ok := p.Evict(); ok {
				delete(cached, v)
			}
		}
		p.OnInsert(key)
		cached[key] = true
	}
}

func BenchmarkPolicyLRU(b *testing.B)     { benchWorkload(b, "lru") }
func BenchmarkPolicyLFU(b *testing.B)     { benchWorkload(b, "lfu") }
func BenchmarkPolicyARC(b *testing.B)     { benchWorkload(b, "arc") }
func BenchmarkPolicyLeCaR(b *testing.B)   { benchWorkload(b, "lecar") }
func BenchmarkPolicyCacheus(b *testing.B) { benchWorkload(b, "cacheus") }
