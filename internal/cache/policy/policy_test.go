package policy

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestLRUOrder(t *testing.T) {
	p := NewLRU()
	p.OnInsert("a")
	p.OnInsert("b")
	p.OnInsert("c")
	p.OnAccess("a") // order: a, c, b (most→least recent)
	if v, _ := p.Evict(); v != "b" {
		t.Fatalf("first victim = %q, want b", v)
	}
	if v, _ := p.Evict(); v != "c" {
		t.Fatalf("second victim = %q, want c", v)
	}
	if v, _ := p.Evict(); v != "a" {
		t.Fatalf("third victim = %q, want a", v)
	}
	if _, ok := p.Evict(); ok {
		t.Fatal("Evict on empty policy returned ok")
	}
}

func TestLRUReinsertRefreshes(t *testing.T) {
	p := NewLRU()
	p.OnInsert("a")
	p.OnInsert("b")
	p.OnInsert("a") // refresh
	if v, _ := p.Evict(); v != "b" {
		t.Fatalf("victim = %q, want b", v)
	}
}

func TestLRURemove(t *testing.T) {
	p := NewLRU()
	p.OnInsert("a")
	p.OnInsert("b")
	p.OnRemove("b")
	if p.Len() != 1 {
		t.Fatalf("Len = %d, want 1", p.Len())
	}
	if v, _ := p.Evict(); v != "a" {
		t.Fatalf("victim = %q, want a", v)
	}
}

func TestLFUEvictsLeastFrequent(t *testing.T) {
	p := NewLFU()
	p.OnInsert("hot")
	p.OnInsert("cold")
	for i := 0; i < 5; i++ {
		p.OnAccess("hot")
	}
	if v, _ := p.Evict(); v != "cold" {
		t.Fatalf("victim = %q, want cold", v)
	}
	if v, _ := p.Evict(); v != "hot" {
		t.Fatalf("victim = %q, want hot", v)
	}
}

func TestLFUTieBreaksLRU(t *testing.T) {
	p := NewLFU()
	p.OnInsert("a")
	p.OnInsert("b")
	p.OnInsert("c")
	p.OnAccess("a") // a:2, b:1, c:1; oldest freq-1 is b
	if v, _ := p.Evict(); v != "b" {
		t.Fatalf("victim = %q, want b", v)
	}
}

func TestLFUFreqTracking(t *testing.T) {
	p := NewLFU()
	p.OnInsert("k")
	p.OnAccess("k")
	p.OnAccess("k")
	if f := p.Freq("k"); f != 3 {
		t.Fatalf("Freq = %d, want 3", f)
	}
	p.SetFreq("k", 7)
	if f := p.Freq("k"); f != 7 {
		t.Fatalf("Freq after SetFreq = %d, want 7", f)
	}
	if f := p.Freq("absent"); f != 0 {
		t.Fatalf("Freq(absent) = %d, want 0", f)
	}
}

func TestLeCaRLearnsAgainstLRUOnScanWorkload(t *testing.T) {
	// A hot set plus a one-shot scan: LRU would evict the hot keys; LeCaR
	// should shift weight toward LFU after seeing hot keys in LRU's ghost
	// history.
	const capacity = 32
	p := NewLeCaR(capacity)
	cached := map[string]bool{}
	access := func(key string) {
		if cached[key] {
			p.OnAccess(key)
			return
		}
		p.OnMiss(key)
		if len(cached) >= capacity {
			if v, ok := p.Evict(); ok {
				delete(cached, v)
			}
		}
		p.OnInsert(key)
		cached[key] = true
	}
	rng := rand.New(rand.NewSource(7))
	for round := 0; round < 200; round++ {
		// Hot keys (frequent).
		for i := 0; i < 16; i++ {
			access(fmt.Sprintf("hot%02d", rng.Intn(16)))
		}
		// Scan burst (one-shot cold keys).
		for i := 0; i < 16; i++ {
			access(fmt.Sprintf("cold%06d", round*16+i))
		}
	}
	wLRU, wLFU := p.Weights()
	if wLFU <= wLRU {
		t.Fatalf("LeCaR weights (lru=%.3f, lfu=%.3f): expected LFU to dominate under scan pollution", wLRU, wLFU)
	}
}

func TestLeCaRWeightsNormalized(t *testing.T) {
	p := NewLeCaR(8)
	for i := 0; i < 100; i++ {
		k := fmt.Sprintf("k%d", i%12)
		p.OnMiss(k)
		p.OnInsert(k)
		if p.Len() > 8 {
			p.Evict()
		}
	}
	wLRU, wLFU := p.Weights()
	if sum := wLRU + wLFU; sum < 0.999 || sum > 1.001 {
		t.Fatalf("weights sum to %f, want 1", sum)
	}
}

func TestCacheusScanResistance(t *testing.T) {
	// SR-LRU should keep reused keys through a long one-shot scan better
	// than plain LRU would.
	const capacity = 32
	p := NewCacheus(capacity)
	cached := map[string]bool{}
	hits := 0
	access := func(key string) {
		if cached[key] {
			p.OnAccess(key)
			hits++
			return
		}
		p.OnMiss(key)
		if len(cached) >= capacity {
			if v, ok := p.Evict(); ok {
				delete(cached, v)
			}
		}
		p.OnInsert(key)
		cached[key] = true
	}
	// Establish a reused working set.
	for round := 0; round < 10; round++ {
		for i := 0; i < 16; i++ {
			access(fmt.Sprintf("hot%02d", i))
		}
	}
	// One-shot scan of 200 cold keys.
	for i := 0; i < 200; i++ {
		access(fmt.Sprintf("scan%06d", i))
	}
	// The hot set should still be partially resident.
	survived := 0
	for i := 0; i < 16; i++ {
		if cached[fmt.Sprintf("hot%02d", i)] {
			survived++
		}
	}
	if survived == 0 {
		t.Fatal("Cacheus lost the entire reused set to a scan")
	}
}

func TestPolicyFactory(t *testing.T) {
	for _, name := range []string{"lru", "lfu", "lecar", "cacheus", "bogus"} {
		p := New(name, 16)
		if p == nil {
			t.Fatalf("New(%q) returned nil", name)
		}
		p.OnInsert("x")
		if p.Len() != 1 {
			t.Fatalf("%s: Len = %d, want 1", name, p.Len())
		}
		if v, ok := p.Evict(); !ok || v != "x" {
			t.Fatalf("%s: Evict = %q, %v", name, v, ok)
		}
	}
}

// TestPolicyInvariants property-tests every policy: after any operation
// sequence, Len matches the live-key set and eviction drains exactly the
// inserted keys.
func TestPolicyInvariants(t *testing.T) {
	for _, name := range []string{"lru", "lfu", "lecar", "cacheus"} {
		name := name
		t.Run(name, func(t *testing.T) {
			f := func(ops []uint8) bool {
				p := New(name, 8)
				live := map[string]bool{}
				for _, op := range ops {
					key := fmt.Sprintf("k%d", op%16)
					switch op % 4 {
					case 0:
						p.OnInsert(key)
						live[key] = true
					case 1:
						if live[key] {
							p.OnAccess(key)
						} else {
							p.OnMiss(key)
						}
					case 2:
						p.OnRemove(key)
						delete(live, key)
					case 3:
						if v, ok := p.Evict(); ok {
							if !live[v] {
								return false // evicted a key not inserted
							}
							delete(live, v)
						} else if len(live) != 0 {
							return false // refused to evict though non-empty
						}
					}
					if p.Len() != len(live) {
						return false
					}
				}
				// Drain.
				for range live {
					if _, ok := p.Evict(); !ok {
						return false
					}
				}
				_, ok := p.Evict()
				return !ok && p.Len() == 0
			}
			if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestARCPromotesRepeatedKeys(t *testing.T) {
	p := NewARC(4)
	p.OnInsert("a")
	p.OnInsert("b")
	p.OnAccess("a") // a graduates to T2
	p.OnInsert("c")
	p.OnInsert("d")
	// Evictions should prefer T1 (one-hit wonders) over T2 residents.
	v1, ok := p.Evict()
	if !ok || v1 == "a" {
		t.Fatalf("first victim = %q (the reused key must survive)", v1)
	}
	v2, _ := p.Evict()
	if v2 == "a" {
		t.Fatalf("second victim = %q (the reused key must survive)", v2)
	}
}

func TestARCGhostHitAdaptsTarget(t *testing.T) {
	p := NewARC(4)
	for _, k := range []string{"a", "b", "c", "d"} {
		p.OnInsert(k)
	}
	v, ok := p.Evict() // T1 LRU ("a") moves to ghost B1
	if !ok || v != "a" {
		t.Fatalf("victim = %q, want a", v)
	}
	before := p.Target()
	p.OnInsert("a") // ghost hit in B1 grows the T1 target
	if p.Target() <= before {
		t.Fatalf("target did not grow on B1 ghost hit: %d -> %d", before, p.Target())
	}
	// The returning key is live again, in T2.
	if p.Len() != 4 {
		t.Fatalf("Len = %d, want 4", p.Len())
	}
}

func TestARCRemoveAndDrain(t *testing.T) {
	p := NewARC(8)
	for i := 0; i < 8; i++ {
		p.OnInsert(fmt.Sprintf("k%d", i))
	}
	p.OnRemove("k3")
	if p.Len() != 7 {
		t.Fatalf("Len = %d", p.Len())
	}
	seen := map[string]bool{}
	for {
		v, ok := p.Evict()
		if !ok {
			break
		}
		if seen[v] || v == "k3" {
			t.Fatalf("bad eviction %q", v)
		}
		seen[v] = true
	}
	if len(seen) != 7 {
		t.Fatalf("drained %d keys", len(seen))
	}
}

func TestARCInPolicyInvariantSuite(t *testing.T) {
	// Reuse the generic invariant check for ARC.
	f := func(ops []uint8) bool {
		p := New("arc", 8)
		live := map[string]bool{}
		for _, op := range ops {
			key := fmt.Sprintf("k%d", op%16)
			switch op % 4 {
			case 0:
				p.OnInsert(key)
				live[key] = true
			case 1:
				if live[key] {
					p.OnAccess(key)
				} else {
					p.OnMiss(key)
				}
			case 2:
				p.OnRemove(key)
				delete(live, key)
			case 3:
				if v, ok := p.Evict(); ok {
					if !live[v] {
						return false
					}
					delete(live, v)
				} else if len(live) != 0 {
					return false
				}
			}
			if p.Len() != len(live) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
