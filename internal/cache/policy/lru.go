package policy

import "container/list"

// LRU is the classic least-recently-used policy.
type LRU struct {
	ll    *list.List // front = most recent
	items map[string]*list.Element
}

// NewLRU returns an empty LRU policy.
func NewLRU() *LRU {
	return &LRU{ll: list.New(), items: make(map[string]*list.Element)}
}

// OnInsert implements Policy.
func (p *LRU) OnInsert(key string) {
	if e, ok := p.items[key]; ok {
		p.ll.MoveToFront(e)
		return
	}
	p.items[key] = p.ll.PushFront(key)
}

// OnAccess implements Policy.
func (p *LRU) OnAccess(key string) {
	if e, ok := p.items[key]; ok {
		p.ll.MoveToFront(e)
	}
}

// OnMiss implements Policy.
func (p *LRU) OnMiss(string) {}

// OnRemove implements Policy.
func (p *LRU) OnRemove(key string) {
	if e, ok := p.items[key]; ok {
		p.ll.Remove(e)
		delete(p.items, key)
	}
}

// Evict implements Policy.
func (p *LRU) Evict() (string, bool) {
	e := p.ll.Back()
	if e == nil {
		return "", false
	}
	key := e.Value.(string)
	p.ll.Remove(e)
	delete(p.items, key)
	return key, true
}

// Len implements Policy.
func (p *LRU) Len() int { return len(p.items) }

// Name implements Policy.
func (p *LRU) Name() string { return "lru" }

// Oldest returns the current victim candidate without removing it.
func (p *LRU) Oldest() (string, bool) {
	e := p.ll.Back()
	if e == nil {
		return "", false
	}
	return e.Value.(string), true
}
