package rangecache

import (
	"fmt"
	"math/rand"
	"testing"
)

func benchCache(b *testing.B, policy string) *Cache {
	b.Helper()
	c := New(Options{Capacity: 16 << 20, Policy: policy})
	c.InsertScan(k(0), kvs(0, 10_000))
	return c
}

func BenchmarkGetHit(b *testing.B) {
	c := benchCache(b, "lru")
	rng := rand.New(rand.NewSource(1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Get(k(rng.Intn(10_000)))
	}
}

func BenchmarkGetMiss(b *testing.B) {
	c := benchCache(b, "lru")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Get([]byte(fmt.Sprintf("zz%08d", i)))
	}
}

func BenchmarkScanHit16(b *testing.B) {
	c := benchCache(b, "lru")
	rng := rand.New(rand.NewSource(1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Scan(k(rng.Intn(9_000)), 16)
	}
}

func BenchmarkInsertScan16(b *testing.B) {
	c := New(Options{Capacity: 16 << 20, Policy: "lru"})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		start := (i * 16) % 100_000
		c.InsertScan(k(start), kvs(start, 16))
	}
}

func BenchmarkPutWriteThrough(b *testing.B) {
	c := benchCache(b, "lru")
	rng := rand.New(rand.NewSource(1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Put(k(rng.Intn(10_000)), v(i))
	}
}

func BenchmarkEvictionPressure(b *testing.B) {
	for _, policy := range []string{"lru", "lfu", "arc", "lecar", "cacheus"} {
		b.Run(policy, func(b *testing.B) {
			// Capacity for ~1000 entries; constant insertion pressure.
			c := New(Options{Capacity: 1000 * 160, Policy: policy})
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				c.InsertPoint(k(i%50_000), v(i))
			}
		})
	}
}
