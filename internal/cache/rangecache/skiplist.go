package rangecache

import "math/rand"

// skiplist is an ordered map of user keys to cache entries supporting
// predecessor queries and deletion — the "sorted structure" of the Range
// Cache design. Not safe for concurrent use; the shard locks around it.
type skiplist struct {
	head   *slNode
	height int
	rnd    *rand.Rand
	count  int
}

const slMaxHeight = 12

type slNode struct {
	entry *entry
	next  []*slNode
}

// entry is one cached key-value pair with coverage metadata.
//
// contigNext claims that the next cache entry (in key order, same shard) is
// this key's immediate successor in the database: a scan passing through
// this entry may continue to the next without missing keys. lowerBound,
// when non-empty, claims the database holds no keys in [lowerBound, key) —
// it extends coverage below the entry so scans starting in that gap can
// anchor here.
type entry struct {
	key        string
	value      []byte
	contigNext bool
	lowerBound string // "" means none
}

func (e *entry) size() int64 { return int64(len(e.key)+len(e.value)) + entryOverhead }

// entryOverhead approximates per-entry bookkeeping bytes (skiplist node,
// policy node, flags), charged against the cache budget.
const entryOverhead = 64

func newSkiplist(seed int64) *skiplist {
	return &skiplist{
		head:   &slNode{next: make([]*slNode, slMaxHeight)},
		height: 1,
		rnd:    rand.New(rand.NewSource(seed)),
	}
}

func (s *skiplist) randomHeight() int {
	h := 1
	for h < slMaxHeight && s.rnd.Intn(4) == 0 {
		h++
	}
	return h
}

// findGE returns the first node with key >= target and fills prev with the
// search path when non-nil.
func (s *skiplist) findGE(target string, prev []*slNode) *slNode {
	n := s.head
	for level := s.height - 1; level >= 0; level-- {
		for n.next[level] != nil && n.next[level].entry.key < target {
			n = n.next[level]
		}
		if prev != nil {
			prev[level] = n
		}
	}
	return n.next[0]
}

// findLT returns the last node with key < target, or nil.
func (s *skiplist) findLT(target string) *slNode {
	n := s.head
	for level := s.height - 1; level >= 0; level-- {
		for n.next[level] != nil && n.next[level].entry.key < target {
			n = n.next[level]
		}
	}
	if n == s.head {
		return nil
	}
	return n
}

// get returns the node with exactly key, or nil.
func (s *skiplist) get(key string) *slNode {
	n := s.findGE(key, nil)
	if n != nil && n.entry.key == key {
		return n
	}
	return nil
}

// insert adds a new entry (key must not be present) and returns its node.
func (s *skiplist) insert(e *entry) *slNode {
	prev := make([]*slNode, slMaxHeight)
	s.findGE(e.key, prev)
	h := s.randomHeight()
	if h > s.height {
		for level := s.height; level < h; level++ {
			prev[level] = s.head
		}
		s.height = h
	}
	n := &slNode{entry: e, next: make([]*slNode, h)}
	for level := 0; level < h; level++ {
		n.next[level] = prev[level].next[level]
		prev[level].next[level] = n
	}
	s.count++
	return n
}

// remove unlinks the node with key, returning its entry (nil if absent).
func (s *skiplist) remove(key string) *entry {
	prev := make([]*slNode, slMaxHeight)
	n := s.findGE(key, prev)
	if n == nil || n.entry.key != key {
		return nil
	}
	for level := 0; level < len(n.next); level++ {
		if prev[level].next[level] == n {
			prev[level].next[level] = n.next[level]
		}
	}
	s.count--
	return n.entry
}

// first returns the lowest-keyed node, or nil.
func (s *skiplist) first() *slNode { return s.head.next[0] }

// len reports the entry count.
func (s *skiplist) len() int { return s.count }
