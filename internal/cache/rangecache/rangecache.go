// Package rangecache implements the result-based cache of Wang et al.
// (ICDE'24) that the paper builds on: query results are stored as sorted
// key-value entries decoupled from the physical SSTable layout, so the cache
// survives compactions. Contiguity metadata lets fully-covered range scans
// be answered without touching the LSM tree.
//
// Coherence: the owning strategy routes every write through Put/Delete, so
// the cache is always a subset of the live database — contiguity claims stay
// truthful across updates (in-place), inserts into covered gaps (admitted
// with the known value) and deletes (neighbouring claims merge).
//
// Concurrency (§4.4 of the paper): the key space is range-partitioned into
// shards, each with its own lock. A scan is served entirely by the shard
// owning its start key; chains that would cross a shard boundary count as
// misses, a small, documented fidelity cost of partitioned locking.
package rangecache

import (
	"sort"
	"sync"

	"adcache/internal/cache/policy"
)

// KV mirrors lsm.KV without importing it (the strategy layer converts).
type KV struct {
	Key   []byte
	Value []byte
}

// Options configures a Cache.
type Options struct {
	// Capacity is the byte budget across all shards.
	Capacity int64
	// Policy names the eviction policy: "lru" (default), "lfu", "lecar",
	// "cacheus".
	Policy string
	// PolicyCapacityHint estimates the entry count for policies that size
	// ghost lists (defaults to Capacity/128).
	PolicyCapacityHint int
	// SplitKeys are the shard boundaries; len(SplitKeys)+1 shards are
	// created. Empty means a single shard.
	SplitKeys []string
	// Seed makes skiplist shapes deterministic.
	Seed int64
}

// Stats aggregates cache counters.
type Stats struct {
	GetHits, GetMisses   int64
	ScanHits, ScanMisses int64
	// ScanPartials counts scans that matched a covered prefix but could not
	// prove full coverage — they fall through to the LSM tree (the paper's
	// "partial hits still incur the full cost of an LSM-tree seek").
	ScanPartials int64
	Evictions    int64
	Used         int64
	Capacity     int64
	Entries      int
}

// Cache is a sharded result cache. It is safe for concurrent use.
type Cache struct {
	shards []*shard
	splits []string
}

type shard struct {
	mu       sync.Mutex
	list     *skiplist
	pol      policy.Policy
	capacity int64
	used     int64

	getHits, getMisses   int64
	scanHits, scanMisses int64
	scanPartials         int64
	evictions            int64
}

// New returns a Cache configured by opts.
func New(opts Options) *Cache {
	numShards := len(opts.SplitKeys) + 1
	hint := opts.PolicyCapacityHint
	if hint <= 0 {
		hint = int(opts.Capacity / 128)
		if hint < 16 {
			hint = 16
		}
	}
	c := &Cache{splits: opts.SplitKeys}
	seed := opts.Seed
	if seed == 0 {
		seed = 1
	}
	for i := 0; i < numShards; i++ {
		c.shards = append(c.shards, &shard{
			list:     newSkiplist(seed + int64(i)),
			pol:      policy.New(opts.Policy, hint/numShards+1),
			capacity: opts.Capacity / int64(numShards),
		})
	}
	return c
}

// shardFor returns the shard owning key.
func (c *Cache) shardFor(key string) *shard {
	i := sort.SearchStrings(c.splits, key)
	// splits[i-1] <= key < splits[i] → shard i... SearchStrings returns the
	// first split >= key; keys below splits[0] belong to shard 0.
	if i < len(c.splits) && c.splits[i] == key {
		i++
	}
	return c.shards[i]
}

// shardUpper returns the exclusive upper boundary of the shard owning key,
// or "" when unbounded.
func (c *Cache) shardUpper(key string) string {
	i := sort.SearchStrings(c.splits, key)
	if i < len(c.splits) && c.splits[i] == key {
		i++
	}
	if i < len(c.splits) {
		return c.splits[i]
	}
	return ""
}

// Get returns the cached value for key.
func (c *Cache) Get(key []byte) ([]byte, bool) {
	s := c.shardFor(string(key))
	s.mu.Lock()
	defer s.mu.Unlock()
	if n := s.list.get(string(key)); n != nil {
		s.pol.OnAccess(n.entry.key)
		s.getHits++
		return n.entry.value, true
	}
	s.pol.OnMiss(string(key))
	s.getMisses++
	return nil, false
}

// Scan returns the first n pairs at or after start if the cache can prove
// it holds the full contiguous prefix; ok=false otherwise.
func (c *Cache) Scan(start []byte, n int) ([]KV, bool) {
	startKey := string(start)
	s := c.shardFor(startKey)
	s.mu.Lock()
	defer s.mu.Unlock()

	node := s.list.findGE(startKey, nil)
	if node == nil {
		s.scanMisses++
		s.pol.OnMiss(startKey)
		return nil, false
	}
	e := node.entry
	// Anchor check: is e provably the first database key >= start?
	covered := e.key == startKey ||
		(e.lowerBound != "" && e.lowerBound <= startKey)
	if !covered {
		if p := s.list.findLT(startKey); p != nil && p.entry.contigNext {
			covered = true
		}
	}
	if !covered {
		s.scanMisses++
		s.pol.OnMiss(startKey)
		return nil, false
	}

	out := make([]KV, 0, n)
	for {
		out = append(out, KV{Key: []byte(node.entry.key), Value: node.entry.value})
		if len(out) == n {
			break
		}
		if !node.entry.contigNext || node.next[0] == nil {
			s.scanPartials++
			s.pol.OnMiss(startKey)
			return nil, false
		}
		node = node.next[0]
	}
	for _, kv := range out {
		s.pol.OnAccess(string(kv.Key))
	}
	s.scanHits++
	return out, true
}

// CoveredLen reports how many consecutive result entries starting at start
// the cache could already serve — the length of the anchored contiguous
// chain, capped at max. AdCache's partial admission uses it to extend
// coverage incrementally: each repetition of a long scan admits b·(l−a)
// entries past what is already covered (§3.4, "overlapping scans naturally
// accelerate this process").
func (c *Cache) CoveredLen(start []byte, max int) int {
	startKey := string(start)
	s := c.shardFor(startKey)
	s.mu.Lock()
	defer s.mu.Unlock()

	node := s.list.findGE(startKey, nil)
	if node == nil {
		return 0
	}
	e := node.entry
	covered := e.key == startKey || (e.lowerBound != "" && e.lowerBound <= startKey)
	if !covered {
		if p := s.list.findLT(startKey); p != nil && p.entry.contigNext {
			covered = true
		}
	}
	if !covered {
		return 0
	}
	n := 0
	for node != nil && n < max {
		n++
		if !node.entry.contigNext {
			break
		}
		node = node.next[0]
	}
	return n
}

// InsertPoint admits a point-lookup result (no contiguity claims).
func (c *Cache) InsertPoint(key, value []byte) {
	s := c.shardFor(string(key))
	s.mu.Lock()
	defer s.mu.Unlock()
	s.upsertLocked(string(key), value, false, "")
	s.enforceCapacityLocked()
}

// InsertScan admits a scan result: entries are consecutive database keys
// starting at the first key >= start. Callers may pass a truncated prefix
// (partial admission); the contiguity claims remain truthful for any prefix.
func (c *Cache) InsertScan(start []byte, entries []KV) {
	if len(entries) == 0 {
		return
	}
	startKey := string(start)
	i := 0
	for i < len(entries) {
		key0 := string(entries[i].Key)
		s := c.shardFor(key0)
		upper := c.shardUpper(key0)
		s.mu.Lock()
		// Collect this shard's slice of the result.
		j := i
		for j < len(entries) && (upper == "" || string(entries[j].Key) < upper) {
			j++
		}
		// Insert in reverse so that when an entry's contiguity claim is
		// recorded, its successor is already present as its cache neighbour.
		for k := j - 1; k >= i; k-- {
			key := string(entries[k].Key)
			contig := k < j-1 // contiguity only within the shard slice
			lb := ""
			if k == 0 && startKey < key {
				lb = startKey
			}
			s.upsertLocked(key, entries[k].Value, contig, lb)
		}
		s.enforceCapacityLocked()
		s.mu.Unlock()
		i = j
	}
}

// upsertLocked inserts or updates an entry. contig only ever strengthens
// when the caller proves adjacency; updates preserve an existing stronger
// claim. lb likewise only widens coverage.
func (s *shard) upsertLocked(key string, value []byte, contig bool, lb string) {
	if n := s.list.get(key); n != nil {
		e := n.entry
		s.used += int64(len(value)) - int64(len(e.value))
		e.value = value
		if contig {
			// The caller proved the DB successor is cached (reverse-order
			// insertion guarantees it is already this entry's neighbour).
			e.contigNext = true
		}
		if lb != "" && (e.lowerBound == "" || lb < e.lowerBound) {
			e.lowerBound = lb
		}
		s.pol.OnAccess(key)
		return
	}
	// contigNext is truthful because the cache is a subset of the database:
	// the scan saw every DB key between this entry and its successor, so no
	// cached key can sit between them.
	e := &entry{key: key, value: value, lowerBound: lb, contigNext: contig}
	s.list.insert(e)
	s.used += e.size()
	s.pol.OnInsert(key)
}

// Put applies a write: update in place, or admit into a covered gap to keep
// coverage claims truthful. Writes outside covered regions are not admitted
// (result caches store query results, not write traffic).
func (c *Cache) Put(key, value []byte) {
	keyStr := string(key)
	s := c.shardFor(keyStr)
	s.mu.Lock()
	defer s.mu.Unlock()

	if n := s.list.get(keyStr); n != nil {
		s.used += int64(len(value)) - int64(len(n.entry.value))
		n.entry.value = append([]byte(nil), value...)
		s.pol.OnAccess(keyStr)
		s.enforceCapacityLocked()
		return
	}

	p := s.list.findLT(keyStr)
	q := s.list.findGE(keyStr, nil)

	switch {
	case p != nil && p.entry.contigNext && q != nil:
		// New DB key inside a covered gap (p.key, q.key): admit it so the
		// chain stays truthful.
		e := &entry{key: keyStr, value: append([]byte(nil), value...), contigNext: true}
		s.list.insert(e)
		s.used += e.size()
		s.pol.OnInsert(keyStr)
	case q != nil && q.entry.lowerBound != "" && q.entry.lowerBound <= keyStr:
		// New DB key inside q's lower-bound gap [lb, q.key): split the gap.
		e := &entry{key: keyStr, value: append([]byte(nil), value...), contigNext: true,
			lowerBound: q.entry.lowerBound}
		q.entry.lowerBound = ""
		s.list.insert(e)
		s.used += e.size()
		s.pol.OnInsert(keyStr)
	}
	s.enforceCapacityLocked()
}

// Delete applies a database delete: the key leaves the cache, and because it
// also left the database, neighbouring coverage claims merge.
func (c *Cache) Delete(key []byte) {
	keyStr := string(key)
	s := c.shardFor(keyStr)
	s.mu.Lock()
	defer s.mu.Unlock()

	n := s.list.get(keyStr)
	if n == nil {
		return // covered-gap keys cannot exist in the DB; nothing to fix
	}
	p := s.list.findLT(keyStr)
	next := n.next[0]
	e := s.list.remove(keyStr)
	s.used -= e.size()
	s.pol.OnRemove(keyStr)

	// Merge coverage across the removed key. The deleted key no longer
	// exists in the DB, so emptiness claims on both sides compose.
	if p != nil {
		p.entry.contigNext = p.entry.contigNext && e.contigNext && next != nil
	}
	if next != nil && e.contigNext && e.lowerBound != "" {
		if next.entry.lowerBound == "" || e.lowerBound < next.entry.lowerBound {
			next.entry.lowerBound = e.lowerBound
		}
	}
}

// evictLocked removes a policy-chosen victim. Unlike Delete, the key still
// exists in the database, so claims through it must break.
func (s *shard) evictLocked() bool {
	victim, ok := s.pol.Evict()
	if !ok {
		return false
	}
	p := s.list.findLT(victim)
	e := s.list.remove(victim)
	if e == nil {
		return true // policy tracked a key the list lost; counters move on
	}
	s.used -= e.size()
	s.evictions++
	if p != nil {
		p.entry.contigNext = false
	}
	return true
}

func (s *shard) enforceCapacityLocked() {
	for s.used > s.capacity {
		if !s.evictLocked() {
			return
		}
	}
}

// Resize changes the byte budget, evicting as needed.
func (c *Cache) Resize(capacity int64) {
	per := capacity / int64(len(c.shards))
	for _, s := range c.shards {
		s.mu.Lock()
		s.capacity = per
		s.enforceCapacityLocked()
		s.mu.Unlock()
	}
}

// Stats returns aggregated counters.
func (c *Cache) Stats() Stats {
	var st Stats
	for _, s := range c.shards {
		s.mu.Lock()
		st.GetHits += s.getHits
		st.GetMisses += s.getMisses
		st.ScanHits += s.scanHits
		st.ScanMisses += s.scanMisses
		st.ScanPartials += s.scanPartials
		st.Evictions += s.evictions
		st.Used += s.used
		st.Capacity += s.capacity
		st.Entries += s.list.len()
		s.mu.Unlock()
	}
	return st
}

// ShardStats returns one counter snapshot per shard, in shard order.
// Shards map to key ranges (§4.4), so a hot range shows up as one shard's
// hit and eviction counters running away from its siblings'.
func (c *Cache) ShardStats() []Stats {
	out := make([]Stats, len(c.shards))
	for i, s := range c.shards {
		s.mu.Lock()
		out[i] = Stats{
			GetHits:      s.getHits,
			GetMisses:    s.getMisses,
			ScanHits:     s.scanHits,
			ScanMisses:   s.scanMisses,
			ScanPartials: s.scanPartials,
			Evictions:    s.evictions,
			Used:         s.used,
			Capacity:     s.capacity,
			Entries:      s.list.len(),
		}
		s.mu.Unlock()
	}
	return out
}

// Len reports the total entry count.
func (c *Cache) Len() int {
	n := 0
	for _, s := range c.shards {
		s.mu.Lock()
		n += s.list.len()
		s.mu.Unlock()
	}
	return n
}

// Used reports cached bytes.
func (c *Cache) Used() int64 {
	var used int64
	for _, s := range c.shards {
		s.mu.Lock()
		used += s.used
		s.mu.Unlock()
	}
	return used
}

// Capacity reports the configured byte budget.
func (c *Cache) Capacity() int64 {
	var capacity int64
	for _, s := range c.shards {
		s.mu.Lock()
		capacity += s.capacity
		s.mu.Unlock()
	}
	return capacity
}
