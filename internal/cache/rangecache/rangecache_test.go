package rangecache

import (
	"bytes"
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"testing"
	"testing/quick"
)

func k(i int) []byte { return []byte(fmt.Sprintf("key%06d", i)) }
func v(i int) []byte { return []byte(fmt.Sprintf("val%06d", i)) }

func kvs(from, n int) []KV {
	out := make([]KV, n)
	for i := range out {
		out[i] = KV{Key: k(from + i), Value: v(from + i)}
	}
	return out
}

func newTest(capacity int64) *Cache {
	return New(Options{Capacity: capacity, Policy: "lru"})
}

func TestPointInsertAndGet(t *testing.T) {
	c := newTest(1 << 20)
	c.InsertPoint(k(1), v(1))
	got, ok := c.Get(k(1))
	if !ok || !bytes.Equal(got, v(1)) {
		t.Fatalf("Get = %q, %v", got, ok)
	}
	if _, ok := c.Get(k(2)); ok {
		t.Fatal("Get(absent) hit")
	}
}

func TestScanHitAfterInsertScan(t *testing.T) {
	c := newTest(1 << 20)
	c.InsertScan(k(10), kvs(10, 16))
	got, ok := c.Scan(k(10), 16)
	if !ok {
		t.Fatal("full scan missed")
	}
	for i, kv := range got {
		if !bytes.Equal(kv.Key, k(10+i)) || !bytes.Equal(kv.Value, v(10+i)) {
			t.Fatalf("entry %d = %q/%q", i, kv.Key, kv.Value)
		}
	}
	// Prefix scans hit too.
	if _, ok := c.Scan(k(12), 8); !ok {
		t.Fatal("interior prefix scan missed")
	}
	// Longer than cached: miss.
	if _, ok := c.Scan(k(10), 17); ok {
		t.Fatal("over-long scan hit")
	}
}

func TestScanAnchorsOnLowerBound(t *testing.T) {
	c := newTest(1 << 20)
	// Scan started below the first returned key: [start, k1) proven empty.
	start := []byte("key000005x")
	c.InsertScan(start, kvs(6, 4))
	if _, ok := c.Scan(start, 4); !ok {
		t.Fatal("scan from original start missed")
	}
	// A start inside the proven-empty gap also anchors.
	if _, ok := c.Scan([]byte("key000005zz"), 4); !ok {
		t.Fatal("scan from inside lower-bound gap missed")
	}
	// A start below the proven gap must miss (unknown coverage).
	if _, ok := c.Scan(k(5), 4); ok {
		t.Fatal("scan below lower bound hit")
	}
}

func TestScanAnchorsMidChain(t *testing.T) {
	c := newTest(1 << 20)
	c.InsertScan(k(10), kvs(10, 8))
	// Start between cached keys 12 and 13: contiguity of 12 proves the
	// first DB key >= start is 13.
	start := []byte("key000012zzz")
	got, ok := c.Scan(start, 4)
	if !ok {
		t.Fatal("mid-chain scan missed")
	}
	if !bytes.Equal(got[0].Key, k(13)) {
		t.Fatalf("first key = %q, want %q", got[0].Key, k(13))
	}
}

func TestPointEntriesDoNotFakeContiguity(t *testing.T) {
	c := newTest(1 << 20)
	c.InsertPoint(k(1), v(1))
	c.InsertPoint(k(2), v(2))
	// Keys 1 and 2 are cached individually; the cache cannot prove there is
	// no DB key between them.
	if _, ok := c.Scan(k(1), 2); ok {
		t.Fatal("scan across point entries hit without contiguity proof")
	}
	if _, ok := c.Scan(k(1), 1); !ok {
		t.Fatal("single-entry scan anchored at exact key missed")
	}
}

func TestPutUpdatesInPlace(t *testing.T) {
	c := newTest(1 << 20)
	c.InsertScan(k(0), kvs(0, 4))
	c.Put(k(2), []byte("new"))
	got, ok := c.Scan(k(0), 4)
	if !ok {
		t.Fatal("scan missed after in-place update")
	}
	if string(got[2].Value) != "new" {
		t.Fatalf("updated value = %q", got[2].Value)
	}
}

func TestPutIntoCoveredGapPreservesCoverage(t *testing.T) {
	c := newTest(1 << 20)
	// Cache keys 0,2,4,... as one scan result (they are DB-consecutive).
	entries := []KV{
		{Key: k(0), Value: v(0)},
		{Key: k(2), Value: v(2)},
		{Key: k(4), Value: v(4)},
	}
	c.InsertScan(k(0), entries)
	// A new DB key 1 lands inside the covered gap; the cache must admit it
	// to keep the chain truthful.
	c.Put(k(1), v(1))
	got, ok := c.Scan(k(0), 4)
	if !ok {
		t.Fatal("scan missed after covered-gap insert")
	}
	want := [][]byte{k(0), k(1), k(2), k(4)}
	for i, kv := range got {
		if !bytes.Equal(kv.Key, want[i]) {
			t.Fatalf("entry %d = %q, want %q", i, kv.Key, want[i])
		}
	}
}

func TestPutOutsideCoverageNotAdmitted(t *testing.T) {
	c := newTest(1 << 20)
	c.InsertPoint(k(5), v(5))
	c.Put(k(100), v(100)) // no coverage near key 100
	if _, ok := c.Get(k(100)); ok {
		t.Fatal("write outside coverage was admitted")
	}
}

func TestDeleteMergesCoverage(t *testing.T) {
	c := newTest(1 << 20)
	c.InsertScan(k(0), kvs(0, 5))
	c.Delete(k(2))
	// Keys 0,1,3,4 remain DB-consecutive (2 is gone from the DB too).
	got, ok := c.Scan(k(0), 4)
	if !ok {
		t.Fatal("scan missed after delete merge")
	}
	want := [][]byte{k(0), k(1), k(3), k(4)}
	for i, kv := range got {
		if !bytes.Equal(kv.Key, want[i]) {
			t.Fatalf("entry %d = %q, want %q", i, kv.Key, want[i])
		}
	}
	if _, ok := c.Get(k(2)); ok {
		t.Fatal("deleted key still cached")
	}
}

func TestDeleteAtChainEndBreaksCleanly(t *testing.T) {
	c := newTest(1 << 20)
	c.InsertScan(k(0), kvs(0, 3))
	c.Delete(k(2))
	if _, ok := c.Scan(k(0), 2); !ok {
		t.Fatal("scan of surviving prefix missed")
	}
	if _, ok := c.Scan(k(0), 3); ok {
		t.Fatal("scan past deleted tail hit")
	}
}

func TestEvictionBreaksContiguity(t *testing.T) {
	// Tiny capacity: inserting a second scan evicts entries of the first.
	c := newTest(6 * (int64(len(k(0))+len(v(0))) + entryOverhead))
	c.InsertScan(k(0), kvs(0, 6))
	if _, ok := c.Scan(k(0), 6); !ok {
		t.Fatal("initial scan missed")
	}
	c.InsertScan(k(100), kvs(100, 4))
	// Some prefix of the first chain is gone; a full rescan must miss.
	if _, ok := c.Scan(k(0), 6); ok {
		t.Fatal("scan hit although part of the chain was evicted")
	}
	used, capacity := c.Used(), c.Capacity()
	if used > capacity {
		t.Fatalf("used %d exceeds capacity %d", used, capacity)
	}
}

func TestResizeEvicts(t *testing.T) {
	c := newTest(1 << 20)
	c.InsertScan(k(0), kvs(0, 100))
	c.Resize(10 * (int64(len(k(0))+len(v(0))) + entryOverhead))
	if c.Len() > 10 {
		t.Fatalf("Len after shrink = %d", c.Len())
	}
	if c.Used() > c.Capacity() {
		t.Fatalf("used %d > capacity %d after resize", c.Used(), c.Capacity())
	}
}

func TestShardedScansRouteByStart(t *testing.T) {
	c := New(Options{
		Capacity:  1 << 20,
		Policy:    "lru",
		SplitKeys: []string{string(k(50))},
	})
	c.InsertScan(k(10), kvs(10, 8))
	c.InsertScan(k(60), kvs(60, 8))
	if _, ok := c.Scan(k(10), 8); !ok {
		t.Fatal("scan in shard 0 missed")
	}
	if _, ok := c.Scan(k(60), 8); !ok {
		t.Fatal("scan in shard 1 missed")
	}
	// A result straddling the boundary is split; the chain cannot cross.
	c.InsertScan(k(46), kvs(46, 8))
	if _, ok := c.Scan(k(46), 4); !ok {
		t.Fatal("scan within shard 0 slice missed")
	}
	if _, ok := c.Scan(k(46), 8); ok {
		t.Fatal("cross-shard scan reported a hit")
	}
}

func TestStatsCounters(t *testing.T) {
	c := newTest(1 << 20)
	c.InsertScan(k(0), kvs(0, 4))
	c.Scan(k(0), 4)  // hit
	c.Scan(k(0), 10) // partial (chain too short)
	c.Scan(k(90), 3) // miss
	c.Get(k(1))      // hit
	c.Get(k(99))     // miss
	st := c.Stats()
	if st.ScanHits != 1 || st.ScanPartials != 1 || st.ScanMisses != 1 {
		t.Fatalf("scan counters = %+v", st)
	}
	if st.GetHits != 1 || st.GetMisses != 1 {
		t.Fatalf("get counters = %+v", st)
	}
}

// TestCoherenceAgainstModel property-tests the cache against a model
// database: after random interleavings of scans (admitted to the cache),
// writes and deletes, every cache-served scan must equal the model's answer.
func TestCoherenceAgainstModel(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		c := newTest(1 << 20)
		model := map[string]string{}
		for i := 0; i < 200; i++ {
			model[string(k(rng.Intn(100)))] = string(v(rng.Intn(1000)))
		}
		modelScan := func(start string, n int) []KV {
			var keysList []string
			for key := range model {
				if key >= start {
					keysList = append(keysList, key)
				}
			}
			sort.Strings(keysList)
			if len(keysList) > n {
				keysList = keysList[:n]
			}
			out := make([]KV, len(keysList))
			for i, key := range keysList {
				out[i] = KV{Key: []byte(key), Value: []byte(model[key])}
			}
			return out
		}
		for op := 0; op < 400; op++ {
			switch rng.Intn(4) {
			case 0: // scan through "DB", admit result
				start := string(k(rng.Intn(100)))
				n := 1 + rng.Intn(20)
				res := modelScan(start, n)
				if len(res) == n { // only full results are admitted (like the DB path)
					c.InsertScan([]byte(start), res)
				}
			case 1: // cached scan must match the model
				start := string(k(rng.Intn(100)))
				n := 1 + rng.Intn(20)
				if got, ok := c.Scan([]byte(start), n); ok {
					want := modelScan(start, n)
					if len(got) != len(want) {
						return false
					}
					for i := range got {
						if string(got[i].Key) != string(want[i].Key) ||
							string(got[i].Value) != string(want[i].Value) {
							return false
						}
					}
				}
			case 2: // write
				key := string(k(rng.Intn(100)))
				val := string(v(rng.Intn(1000)))
				model[key] = val
				c.Put([]byte(key), []byte(val))
			case 3: // delete
				key := string(k(rng.Intn(100)))
				delete(model, key)
				c.Delete([]byte(key))
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestConcurrentShardsRemainCoherent(t *testing.T) {
	// Writers continuously update a fixed key set while readers Get/Scan;
	// under -race this validates the sharded locking, and values read must
	// always be ones some writer wrote for that exact key.
	c := New(Options{
		Capacity:  1 << 20,
		Policy:    "lru",
		SplitKeys: []string{string(k(250)), string(k(500)), string(k(750))},
	})
	c.InsertScan(k(0), kvs(0, 1000))
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < 3; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				idx := rng.Intn(1000)
				// Values always encode their key index.
				c.Put(k(idx), v(idx))
			}
		}(w)
	}
	for r := 0; r < 3; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(100 + r)))
			for i := 0; i < 20_000; i++ {
				idx := rng.Intn(1000)
				if got, ok := c.Get(k(idx)); ok {
					want1, want2 := string(v(idx)), "val"
					if string(got) != want1 && string(got[:3]) != want2 {
						t.Errorf("Get(%d) = %q", idx, got)
						return
					}
				}
				if res, ok := c.Scan(k(idx), 4); ok {
					for j := 1; j < len(res); j++ {
						if string(res[j].Key) <= string(res[j-1].Key) {
							t.Errorf("scan out of order")
							return
						}
					}
				}
			}
		}(r)
	}
	// Readers finish, then writers stop.
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	// Close stop once the reader goroutines have likely finished; simplest
	// robust ordering: wait for all via a second WaitGroup arrangement is
	// overkill — just stop writers after readers complete their loops.
	close(stop)
	<-done
	if c.Used() > c.Capacity() {
		t.Fatalf("capacity invariant violated: %d > %d", c.Used(), c.Capacity())
	}
}
