// Package block implements the on-disk block format shared by SSTable data
// and index blocks.
//
// A block is a sequence of entries followed by a restart-point array and a
// trailing count:
//
//	entry:   shared(varint) unshared(varint) valueLen(varint)
//	         keyDelta[unshared] value[valueLen]
//	...
//	restarts: uint32 × numRestarts   (offsets of entries with shared == 0)
//	numRestarts: uint32
//
// Keys within a block share prefixes with their predecessor except at
// restart points, which anchor binary search. This is the classic
// LevelDB/RocksDB layout.
package block

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
)

// DefaultRestartInterval is how many entries share one restart point.
const DefaultRestartInterval = 16

// ErrCorrupt reports a malformed block.
var ErrCorrupt = errors.New("block: corrupt block")

// Builder accumulates sorted entries into the block wire format.
type Builder struct {
	buf             []byte
	restarts        []uint32
	restartInterval int
	counter         int
	lastKey         []byte
	numEntries      int
}

// NewBuilder returns a Builder with the given restart interval
// (DefaultRestartInterval if restartInterval <= 0).
func NewBuilder(restartInterval int) *Builder {
	if restartInterval <= 0 {
		restartInterval = DefaultRestartInterval
	}
	return &Builder{restartInterval: restartInterval}
}

// Add appends an entry. Keys must be added in strictly increasing order as
// seen by the caller's comparator; Builder does not re-check ordering.
func (b *Builder) Add(key, value []byte) {
	shared := 0
	if b.counter < b.restartInterval {
		shared = sharedPrefixLen(b.lastKey, key)
	} else {
		b.restarts = append(b.restarts, uint32(len(b.buf)))
		b.counter = 0
	}
	if len(b.restarts) == 0 {
		b.restarts = append(b.restarts, 0)
	}
	b.buf = binary.AppendUvarint(b.buf, uint64(shared))
	b.buf = binary.AppendUvarint(b.buf, uint64(len(key)-shared))
	b.buf = binary.AppendUvarint(b.buf, uint64(len(value)))
	b.buf = append(b.buf, key[shared:]...)
	b.buf = append(b.buf, value...)
	b.lastKey = append(b.lastKey[:0], key...)
	b.counter++
	b.numEntries++
}

// EstimatedSize reports the block size if Finish were called now.
func (b *Builder) EstimatedSize() int {
	return len(b.buf) + 4*len(b.restarts) + 4
}

// Empty reports whether no entries have been added.
func (b *Builder) Empty() bool { return b.numEntries == 0 }

// NumEntries reports how many entries have been added.
func (b *Builder) NumEntries() int { return b.numEntries }

// Finish serializes the block and returns its bytes. The Builder must be
// Reset before reuse.
func (b *Builder) Finish() []byte {
	if len(b.restarts) == 0 {
		b.restarts = append(b.restarts, 0)
	}
	out := b.buf
	for _, r := range b.restarts {
		out = binary.LittleEndian.AppendUint32(out, r)
	}
	out = binary.LittleEndian.AppendUint32(out, uint32(len(b.restarts)))
	return out
}

// Reset clears the builder for reuse.
func (b *Builder) Reset() {
	b.buf = b.buf[:0]
	b.restarts = b.restarts[:0]
	b.counter = 0
	b.lastKey = b.lastKey[:0]
	b.numEntries = 0
}

func sharedPrefixLen(a, b []byte) int {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	i := 0
	for i < n && a[i] == b[i] {
		i++
	}
	return i
}

// Compare is the key ordering used by Iter.Seek.
type Compare func(a, b []byte) int

// Iter iterates over a serialized block. A zero Iter must be initialised
// with Init before use; an Iter may be re-initialised any number of times,
// retaining its internal key buffer across blocks so steady-state iteration
// allocates nothing. Iter is not safe for concurrent use.
type Iter struct {
	data        []byte // entries region only
	restarts    []byte // serialized restart array, 4 bytes per restart
	numRestarts int
	cmp         Compare

	offset     int // offset of current entry within data
	nextOffset int
	key        []byte
	value      []byte
	valid      bool
	err        error
}

// NewIter parses a serialized block. cmp must match the order the block was
// built with. Callers on hot paths should hold an Iter and call Init
// instead, which performs no allocation.
func NewIter(data []byte, cmp Compare) (*Iter, error) {
	it := new(Iter)
	if err := it.Init(data, cmp); err != nil {
		return nil, err
	}
	return it, nil
}

// Init points the iterator at a serialized block, replacing any previous
// state. The restart array is indexed directly out of the serialized
// trailing bytes — no per-block slice is materialized — and the iterator's
// key buffer is retained, so re-initialising a warm Iter allocates nothing.
func (i *Iter) Init(data []byte, cmp Compare) error {
	if len(data) < 4 {
		return ErrCorrupt
	}
	numRestarts := int(binary.LittleEndian.Uint32(data[len(data)-4:]))
	restartsEnd := len(data) - 4
	restartsStart := restartsEnd - 4*numRestarts
	if numRestarts <= 0 || restartsStart < 0 {
		return ErrCorrupt
	}
	i.data = data[:restartsStart]
	i.restarts = data[restartsStart:restartsEnd]
	i.numRestarts = numRestarts
	i.cmp = cmp
	i.offset, i.nextOffset = 0, 0
	i.key = i.key[:0]
	i.value = nil
	i.valid = false
	i.err = nil
	return nil
}

// Reset returns the iterator to an empty state, retaining the key buffer so
// a later Init stays allocation-free. Valid reports false and Err reports
// nil until the next Init.
func (i *Iter) Reset() {
	key := i.key[:0]
	*i = Iter{key: key}
}

// restart returns the entry offset of restart point n. Offsets are decoded
// on demand from the serialized array; a malformed offset is reported by the
// bounds checks in decodeAt/restartKey.
func (i *Iter) restart(n int) int {
	return int(binary.LittleEndian.Uint32(i.restarts[4*n:]))
}

// decodeAt decodes the entry at off, extending i.key from the shared prefix
// already present in it. Returns the offset past the entry, or -1 on error.
func (i *Iter) decodeAt(off int) int {
	data := i.data
	if off >= len(data) {
		return -1
	}
	shared, n1 := binary.Uvarint(data[off:])
	if n1 <= 0 {
		i.err = ErrCorrupt
		return -1
	}
	unshared, n2 := binary.Uvarint(data[off+n1:])
	if n2 <= 0 {
		i.err = ErrCorrupt
		return -1
	}
	valLen, n3 := binary.Uvarint(data[off+n1+n2:])
	if n3 <= 0 {
		i.err = ErrCorrupt
		return -1
	}
	keyStart := off + n1 + n2 + n3
	valStart := keyStart + int(unshared)
	end := valStart + int(valLen)
	if int(shared) > len(i.key) || end > len(data) {
		i.err = ErrCorrupt
		return -1
	}
	i.key = append(i.key[:shared], data[keyStart:valStart]...)
	i.value = data[valStart:end]
	return end
}

// First positions the iterator at the first entry.
func (i *Iter) First() bool {
	i.key = i.key[:0]
	i.offset = 0
	end := i.decodeAt(0)
	if end < 0 {
		i.valid = false
		return false
	}
	i.nextOffset = end
	i.valid = true
	return true
}

// Next advances to the following entry.
func (i *Iter) Next() bool {
	if !i.valid {
		return false
	}
	if i.nextOffset >= len(i.data) {
		i.valid = false
		return false
	}
	i.offset = i.nextOffset
	end := i.decodeAt(i.offset)
	if end < 0 {
		i.valid = false
		return false
	}
	i.nextOffset = end
	return true
}

// restartKey returns the key stored inline at entry offset off without
// touching i.key. Restart entries have shared == 0, so the full key is
// present in the serialized bytes and can be compared in place.
func (i *Iter) restartKey(off int) ([]byte, bool) {
	data := i.data
	if off >= len(data) {
		i.err = ErrCorrupt
		return nil, false
	}
	shared, n1 := binary.Uvarint(data[off:])
	if n1 <= 0 || shared != 0 {
		i.err = ErrCorrupt
		return nil, false
	}
	unshared, n2 := binary.Uvarint(data[off+n1:])
	if n2 <= 0 {
		i.err = ErrCorrupt
		return nil, false
	}
	_, n3 := binary.Uvarint(data[off+n1+n2:])
	if n3 <= 0 {
		i.err = ErrCorrupt
		return nil, false
	}
	keyStart := off + n1 + n2 + n3
	keyEnd := keyStart + int(unshared)
	if keyEnd > len(data) {
		i.err = ErrCorrupt
		return nil, false
	}
	return data[keyStart:keyEnd], true
}

// Seek positions the iterator at the first entry with key >= target.
func (i *Iter) Seek(target []byte) bool {
	// Binary search restart points for the last restart whose key <= target.
	// Restart keys are compared in place out of the serialized block, so the
	// search neither copies key bytes nor disturbs i.key.
	lo, hi := 0, i.numRestarts-1
	for lo < hi {
		mid := (lo + hi + 1) / 2
		rk, ok := i.restartKey(i.restart(mid))
		if !ok {
			i.valid = false
			return false
		}
		if i.cmp(rk, target) <= 0 {
			lo = mid
		} else {
			hi = mid - 1
		}
	}
	// Linear scan from the chosen restart.
	i.key = i.key[:0]
	off := i.restart(lo)
	end := i.decodeAt(off)
	if end < 0 {
		i.valid = false
		return false
	}
	i.offset, i.nextOffset, i.valid = off, end, true
	for i.cmp(i.key, target) < 0 {
		if !i.Next() {
			return false
		}
	}
	return true
}

// Valid reports whether the iterator is positioned at an entry.
func (i *Iter) Valid() bool { return i.valid }

// Key returns the current key. The slice is only valid until the next
// positioning call.
func (i *Iter) Key() []byte { return i.key }

// Value returns the current value, aliasing the block's backing array.
func (i *Iter) Value() []byte { return i.value }

// Err returns the first corruption error encountered, if any.
func (i *Iter) Err() error { return i.err }

// NumEntries counts the entries in a serialized block (for tools/tests).
func NumEntries(data []byte, cmp Compare) (int, error) {
	it, err := NewIter(data, cmp)
	if err != nil {
		return 0, err
	}
	n := 0
	for ok := it.First(); ok; ok = it.Next() {
		n++
	}
	if it.Err() != nil {
		return n, it.Err()
	}
	return n, nil
}

// BytesCompare adapts bytes.Compare to the Compare type.
func BytesCompare(a, b []byte) int { return bytes.Compare(a, b) }

// DebugString renders a block's entries for tooling.
func DebugString(data []byte, cmp Compare) string {
	it, err := NewIter(data, cmp)
	if err != nil {
		return fmt.Sprintf("corrupt block: %v", err)
	}
	var buf bytes.Buffer
	for ok := it.First(); ok; ok = it.Next() {
		fmt.Fprintf(&buf, "%q=%q\n", it.Key(), it.Value())
	}
	return buf.String()
}
