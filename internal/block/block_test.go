package block

import (
	"bytes"
	"fmt"
	"sort"
	"testing"
	"testing/quick"
)

func buildBlock(t *testing.T, n int) []byte {
	t.Helper()
	b := NewBuilder(4)
	for i := 0; i < n; i++ {
		b.Add([]byte(fmt.Sprintf("key%06d", i)), []byte(fmt.Sprintf("val%06d", i)))
	}
	return b.Finish()
}

func TestBuildAndIterate(t *testing.T) {
	data := buildBlock(t, 100)
	it, err := NewIter(data, BytesCompare)
	if err != nil {
		t.Fatal(err)
	}
	i := 0
	for ok := it.First(); ok; ok = it.Next() {
		wantK := fmt.Sprintf("key%06d", i)
		wantV := fmt.Sprintf("val%06d", i)
		if string(it.Key()) != wantK || string(it.Value()) != wantV {
			t.Fatalf("entry %d = %q/%q", i, it.Key(), it.Value())
		}
		i++
	}
	if i != 100 {
		t.Fatalf("iterated %d entries", i)
	}
	if it.Err() != nil {
		t.Fatal(it.Err())
	}
}

func TestSeek(t *testing.T) {
	data := buildBlock(t, 100)
	it, _ := NewIter(data, BytesCompare)
	for _, i := range []int{0, 1, 15, 16, 17, 50, 99} {
		target := []byte(fmt.Sprintf("key%06d", i))
		if !it.Seek(target) {
			t.Fatalf("Seek(%s) failed", target)
		}
		if !bytes.Equal(it.Key(), target) {
			t.Fatalf("Seek(%s) landed on %s", target, it.Key())
		}
	}
	// Seek between keys lands on the next one.
	if !it.Seek([]byte("key000010x")) {
		t.Fatal("between-keys seek failed")
	}
	if string(it.Key()) != "key000011" {
		t.Fatalf("between-keys seek landed on %s", it.Key())
	}
	// Seek past the end is invalid.
	if it.Seek([]byte("zzz")) {
		t.Fatal("past-end seek succeeded")
	}
	// Seek before the start lands on the first key.
	if !it.Seek([]byte("a")) || string(it.Key()) != "key000000" {
		t.Fatalf("before-start seek landed on %s", it.Key())
	}
}

func TestPrefixCompressionShrinks(t *testing.T) {
	shared := NewBuilder(16)
	for i := 0; i < 100; i++ {
		shared.Add([]byte(fmt.Sprintf("verylongsharedprefix%06d", i)), []byte("v"))
	}
	compressed := len(shared.Finish())
	raw := 100 * (len("verylongsharedprefix000000") + 1 + 3)
	if compressed >= raw {
		t.Fatalf("no compression: %d >= %d", compressed, raw)
	}
}

func TestEmptyValuesAndSingleEntry(t *testing.T) {
	b := NewBuilder(0)
	b.Add([]byte("k"), nil)
	data := b.Finish()
	it, err := NewIter(data, BytesCompare)
	if err != nil {
		t.Fatal(err)
	}
	if !it.First() || string(it.Key()) != "k" || len(it.Value()) != 0 {
		t.Fatal("single empty-value entry mangled")
	}
	if it.Next() {
		t.Fatal("phantom second entry")
	}
}

func TestCorruptBlocks(t *testing.T) {
	if _, err := NewIter(nil, BytesCompare); err == nil {
		t.Fatal("nil block accepted")
	}
	if _, err := NewIter([]byte{1, 2, 3}, BytesCompare); err == nil {
		t.Fatal("tiny block accepted")
	}
	// A restart count larger than the block must be rejected.
	bad := []byte{0, 0, 0, 0, 255, 255, 0, 0}
	if _, err := NewIter(bad, BytesCompare); err == nil {
		t.Fatal("bogus restart count accepted")
	}
}

func TestNumEntries(t *testing.T) {
	data := buildBlock(t, 37)
	n, err := NumEntries(data, BytesCompare)
	if err != nil || n != 37 {
		t.Fatalf("NumEntries = %d, %v", n, err)
	}
}

func TestBuilderReset(t *testing.T) {
	b := NewBuilder(4)
	b.Add([]byte("a"), []byte("1"))
	b.Finish()
	b.Reset()
	if !b.Empty() || b.NumEntries() != 0 {
		t.Fatal("Reset did not clear the builder")
	}
	b.Add([]byte("b"), []byte("2"))
	it, err := NewIter(b.Finish(), BytesCompare)
	if err != nil {
		t.Fatal(err)
	}
	if !it.First() || string(it.Key()) != "b" {
		t.Fatal("reused builder produced wrong block")
	}
}

// TestRoundTripProperty: arbitrary sorted key sets survive the round trip
// and Seek finds exactly the right entries.
func TestRoundTripProperty(t *testing.T) {
	f := func(raw map[string]string) bool {
		if len(raw) == 0 {
			return true
		}
		keys := make([]string, 0, len(raw))
		for k := range raw {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		b := NewBuilder(3)
		for _, k := range keys {
			b.Add([]byte(k), []byte(raw[k]))
		}
		it, err := NewIter(b.Finish(), BytesCompare)
		if err != nil {
			return false
		}
		for _, k := range keys {
			if !it.Seek([]byte(k)) || string(it.Key()) != k || string(it.Value()) != raw[k] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestIterInitReuse(t *testing.T) {
	a := buildBlock(t, 50)
	b := func() []byte {
		bld := NewBuilder(4)
		for i := 0; i < 30; i++ {
			bld.Add([]byte(fmt.Sprintf("other%04d", i)), []byte(fmt.Sprintf("v%04d", i)))
		}
		return bld.Finish()
	}()

	var it Iter
	if err := it.Init(a, BytesCompare); err != nil {
		t.Fatal(err)
	}
	n := 0
	for ok := it.First(); ok; ok = it.Next() {
		n++
	}
	if n != 50 || it.Err() != nil {
		t.Fatalf("first block: n=%d err=%v", n, it.Err())
	}

	// Re-Init over a different block must fully replace the state.
	if err := it.Init(b, BytesCompare); err != nil {
		t.Fatal(err)
	}
	if it.Valid() {
		t.Fatal("valid before positioning")
	}
	if !it.Seek([]byte("other0015")) || string(it.Key()) != "other0015" {
		t.Fatalf("Seek after re-Init: valid=%v key=%q", it.Valid(), it.Key())
	}
	n = 0
	for ok := it.First(); ok; ok = it.Next() {
		n++
	}
	if n != 30 || it.Err() != nil {
		t.Fatalf("second block: n=%d err=%v", n, it.Err())
	}
}

func TestIterInitRejectsCorrupt(t *testing.T) {
	var it Iter
	if err := it.Init(nil, BytesCompare); err == nil {
		t.Fatal("nil block accepted")
	}
	if err := it.Init([]byte{1, 2, 3}, BytesCompare); err == nil {
		t.Fatal("tiny block accepted")
	}
	bad := []byte{0, 0, 0, 0, 255, 255, 0, 0}
	if err := it.Init(bad, BytesCompare); err == nil {
		t.Fatal("bogus restart count accepted")
	}
}

func TestIterReset(t *testing.T) {
	data := buildBlock(t, 10)
	var it Iter
	if err := it.Init(data, BytesCompare); err != nil {
		t.Fatal(err)
	}
	it.First()
	it.Reset()
	if it.Valid() || it.Err() != nil {
		t.Fatal("Reset did not clear state")
	}
	if err := it.Init(data, BytesCompare); err != nil {
		t.Fatal(err)
	}
	if !it.First() {
		t.Fatal("iterator unusable after Reset+Init")
	}
}

// TestSeekMatchesLinearScan cross-checks the in-place restart binary search
// against a linear scan for every possible target, including between-key
// and out-of-range probes, across restart intervals.
func TestSeekMatchesLinearScan(t *testing.T) {
	for _, interval := range []int{1, 2, 3, 4, 16, 64} {
		bld := NewBuilder(interval)
		const n = 137
		for i := 0; i < n; i++ {
			bld.Add([]byte(fmt.Sprintf("key%06d", i)), []byte(fmt.Sprintf("val%06d", i)))
		}
		data := bld.Finish()
		it, err := NewIter(data, BytesCompare)
		if err != nil {
			t.Fatal(err)
		}
		probe := func(target string, wantIdx int) {
			t.Helper()
			ok := it.Seek([]byte(target))
			if it.Err() != nil {
				t.Fatalf("interval %d Seek(%q): %v", interval, target, it.Err())
			}
			if (wantIdx < n) != ok {
				t.Fatalf("interval %d Seek(%q) = %v, want positioned=%v", interval, target, ok, wantIdx < n)
			}
			if ok {
				want := fmt.Sprintf("key%06d", wantIdx)
				if string(it.Key()) != want {
					t.Fatalf("interval %d Seek(%q) → %q, want %q", interval, target, it.Key(), want)
				}
			}
		}
		probe("", 0)
		probe("aaa", 0)
		for i := 0; i < n; i++ {
			probe(fmt.Sprintf("key%06d", i), i)
			probe(fmt.Sprintf("key%06d!", i), i+1)
		}
		probe("zzz", n)
	}
}

// TestIterSeekWarmAllocs locks in the allocation-free seek: once the key
// buffer has grown, Init+Seek on a warm iterator allocates nothing.
func TestIterSeekWarmAllocs(t *testing.T) {
	data := buildBlock(t, 200)
	var it Iter
	if err := it.Init(data, BytesCompare); err != nil {
		t.Fatal(err)
	}
	target := []byte("key000150")
	it.Seek(target) // grow the key buffer
	allocs := testing.AllocsPerRun(200, func() {
		if err := it.Init(data, BytesCompare); err != nil {
			t.Fatal(err)
		}
		if !it.Seek(target) {
			t.Fatal("seek failed")
		}
	})
	if allocs != 0 {
		t.Fatalf("warm Init+Seek allocates %.1f objects/op, want 0", allocs)
	}
}
