package keys

import (
	"bytes"
	"sort"
	"testing"
	"testing/quick"
)

func TestRoundTrip(t *testing.T) {
	ik := Make([]byte("user42"), 12345, KindSet)
	if !ik.Valid() {
		t.Fatal("not valid")
	}
	if string(ik.UserKey()) != "user42" {
		t.Fatalf("UserKey = %q", ik.UserKey())
	}
	if ik.Seq() != 12345 {
		t.Fatalf("Seq = %d", ik.Seq())
	}
	if ik.Kind() != KindSet {
		t.Fatalf("Kind = %d", ik.Kind())
	}
}

func TestTombstone(t *testing.T) {
	ik := Make([]byte("k"), 7, KindDelete)
	if ik.Kind() != KindDelete {
		t.Fatalf("Kind = %d", ik.Kind())
	}
}

func TestOrderingUserKeyAscSeqDesc(t *testing.T) {
	ks := []InternalKey{
		Make([]byte("a"), 5, KindSet),
		Make([]byte("a"), 9, KindSet),
		Make([]byte("a"), 9, KindDelete),
		Make([]byte("b"), 1, KindSet),
		Make([]byte("ab"), 100, KindSet),
	}
	sort.Slice(ks, func(i, j int) bool { return Compare(ks[i], ks[j]) < 0 })
	// Expected: a#9,Set > a#9,Delete? Kind set(1) > delete(0), and higher
	// trailer sorts FIRST. So order: a#9Set, a#9Del, a#5Set, ab, b.
	want := []struct {
		user string
		seq  uint64
		kind Kind
	}{
		{"a", 9, KindSet}, {"a", 9, KindDelete}, {"a", 5, KindSet},
		{"ab", 100, KindSet}, {"b", 1, KindSet},
	}
	for i, w := range want {
		if string(ks[i].UserKey()) != w.user || ks[i].Seq() != w.seq || ks[i].Kind() != w.kind {
			t.Fatalf("position %d = %s, want %q#%d,%d", i, ks[i], w.user, w.seq, w.kind)
		}
	}
}

func TestMakeSearchFindsNewestVisible(t *testing.T) {
	// Searching at snapshot 10 must sort at-or-before version 10 and after
	// version 11.
	search := MakeSearch([]byte("k"), 10)
	v10 := Make([]byte("k"), 10, KindSet)
	v11 := Make([]byte("k"), 11, KindSet)
	if Compare(search, v10) > 0 {
		t.Fatal("search sorts after the visible version")
	}
	if Compare(search, v11) < 0 {
		t.Fatal("search sorts before an invisible newer version")
	}
}

func TestMaxSeqRoundTrip(t *testing.T) {
	ik := Make([]byte("k"), MaxSeq, KindSet)
	if ik.Seq() != MaxSeq {
		t.Fatalf("Seq = %d, want MaxSeq", ik.Seq())
	}
}

// TestCompareConsistentWithParts property-checks that Compare agrees with
// comparing (userKey asc, seq desc, kind desc).
func TestCompareConsistentWithParts(t *testing.T) {
	f := func(ka, kb []byte, sa, sb uint16, da, db bool) bool {
		kindA, kindB := KindSet, KindSet
		if da {
			kindA = KindDelete
		}
		if db {
			kindB = KindDelete
		}
		a := Make(ka, uint64(sa), kindA)
		b := Make(kb, uint64(sb), kindB)
		got := Compare(a, b)
		want := bytes.Compare(ka, kb)
		if want == 0 {
			switch {
			case uint64(sa) > uint64(sb):
				want = -1
			case uint64(sa) < uint64(sb):
				want = 1
			case kindA > kindB:
				want = -1
			case kindA < kindB:
				want = 1
			}
		}
		return got == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestStringRendering(t *testing.T) {
	ik := Make([]byte("k"), 3, KindSet)
	if s := ik.String(); s == "" {
		t.Fatal("empty String()")
	}
	if s := InternalKey([]byte{1}).String(); s == "" {
		t.Fatal("invalid key String() empty")
	}
}
