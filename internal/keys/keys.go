// Package keys defines the internal key encoding shared by the MemTable,
// SSTables and merging iterators.
//
// An internal key is a user key followed by an 8-byte little-endian trailer
// packing a 56-bit sequence number and an 8-bit kind. Internal keys sort by
// user key ascending, then by sequence number descending (newer first), then
// by kind descending. This matches the RocksDB/LevelDB convention and lets a
// reader find the newest visible version of a key with a single seek.
package keys

import (
	"bytes"
	"encoding/binary"
	"fmt"
)

// Kind describes what an internal key represents.
type Kind uint8

const (
	// KindDelete marks a tombstone.
	KindDelete Kind = 0
	// KindSet marks a normal value.
	KindSet Kind = 1
)

// MaxSeq is the largest representable sequence number.
const MaxSeq uint64 = (1 << 56) - 1

// TrailerLen is the number of bytes appended to a user key.
const TrailerLen = 8

// InternalKey is an encoded internal key: user key + trailer.
type InternalKey []byte

// Make encodes an internal key from its parts.
func Make(userKey []byte, seq uint64, kind Kind) InternalKey {
	ik := make([]byte, len(userKey)+TrailerLen)
	copy(ik, userKey)
	binary.LittleEndian.PutUint64(ik[len(userKey):], (seq<<8)|uint64(kind))
	return ik
}

// MakeSearch returns the internal key that sorts before every version of
// userKey visible at snapshot seq; seeking to it finds the newest visible
// version.
func MakeSearch(userKey []byte, seq uint64) InternalKey {
	return Make(userKey, seq, KindSet)
}

// AppendSearch appends the search key for (userKey, seq) to dst and returns
// the extended slice. Passing dst[:0] of a retained buffer makes repeated
// seeks allocation-free once the buffer has grown to the working key size.
func AppendSearch(dst, userKey []byte, seq uint64) []byte {
	dst = append(dst, userKey...)
	return binary.LittleEndian.AppendUint64(dst, (seq<<8)|uint64(KindSet))
}

// UserKey returns the user-key prefix of ik.
func (ik InternalKey) UserKey() []byte { return ik[:len(ik)-TrailerLen] }

// Seq returns the sequence number.
func (ik InternalKey) Seq() uint64 {
	return binary.LittleEndian.Uint64(ik[len(ik)-TrailerLen:]) >> 8
}

// Kind returns the kind.
func (ik InternalKey) Kind() Kind {
	return Kind(binary.LittleEndian.Uint64(ik[len(ik)-TrailerLen:]) & 0xff)
}

// Valid reports whether ik is long enough to carry a trailer.
func (ik InternalKey) Valid() bool { return len(ik) >= TrailerLen }

// String renders the key for debugging.
func (ik InternalKey) String() string {
	if !ik.Valid() {
		return fmt.Sprintf("invalid:%x", []byte(ik))
	}
	return fmt.Sprintf("%q#%d,%d", ik.UserKey(), ik.Seq(), ik.Kind())
}

// Compare orders internal keys: user key ascending, then trailer descending
// (higher sequence numbers — newer entries — sort first).
func Compare(a, b InternalKey) int {
	if c := bytes.Compare(a.UserKey(), b.UserKey()); c != 0 {
		return c
	}
	ta := binary.LittleEndian.Uint64(a[len(a)-TrailerLen:])
	tb := binary.LittleEndian.Uint64(b[len(b)-TrailerLen:])
	switch {
	case ta > tb:
		return -1
	case ta < tb:
		return 1
	default:
		return 0
	}
}
