package cluster

import (
	"context"
	"strings"
	"testing"
	"time"

	"adcache/internal/api"
)

// TestMoveShardAbortsOnDeadDestination: a move toward a node failing its
// health probe must abort before the fence — a free abort that consumes
// no epoch, touches no node, and needs no revert.
func TestMoveShardAbortsOnDeadDestination(t *testing.T) {
	log := &callLog{}
	a := newFakeNode(t, "a", log)
	b := newFakeNode(t, "b", log)
	b.notReady = true

	m := &ShardMap{
		Epoch:  1,
		Shards: 4,
		Nodes:  []Node{{ID: "a", Addr: a.addr()}, {ID: "b", Addr: b.addr()}},
		Owner:  []string{"a", "a", "a", "b"},
	}
	mgr, err := NewManager(m, ManagerOptions{})
	if err != nil {
		t.Fatal(err)
	}
	err = mgr.MoveShard(context.Background(), 0, "b")
	if err == nil || !strings.Contains(err.Error(), "not ready") {
		t.Fatalf("move to unready destination = %v, want 'not ready' abort", err)
	}
	if got := mgr.Current().Epoch; got != 1 {
		t.Fatalf("aborted move consumed an epoch: %d, want 1", got)
	}
	if mgr.Reverts() != 0 {
		t.Fatalf("aborted move counted as revert: %d", mgr.Reverts())
	}
	if calls := log.all(); len(calls) != 0 {
		t.Fatalf("aborted move made control calls: %v", calls)
	}

	// A dead source aborts identically — nothing to fence means nothing
	// fenced.
	b.mu.Lock()
	b.notReady = false
	b.mu.Unlock()
	a.srv.Close()
	err = mgr.MoveShard(context.Background(), 0, "b")
	if err == nil || !strings.Contains(err.Error(), "not ready") {
		t.Fatalf("move from dead source = %v, want 'not ready' abort", err)
	}
	if got := mgr.Current().Epoch; got != 1 {
		t.Fatalf("aborted move consumed an epoch: %d, want 1", got)
	}
}

// TestMoveShardCopyDeadlineReverts: a copy stalled past CopyDeadline must
// abort the move and publish a revert map instead of holding the slot
// fenced for as long as the source cares to stall.
func TestMoveShardCopyDeadlineReverts(t *testing.T) {
	log := &callLog{}
	a := newFakeNode(t, "a", log)
	b := newFakeNode(t, "b", log)
	a.data = []api.MigrateEntry{{Key: []byte("k1"), Value: []byte("v1")}}
	a.exportDelay = 5 * time.Second

	m := &ShardMap{
		Epoch:  1,
		Shards: 4,
		Nodes:  []Node{{ID: "a", Addr: a.addr()}, {ID: "b", Addr: b.addr()}},
		Owner:  []string{"a", "a", "a", "b"},
	}
	a.view, b.view = m, m
	mgr, err := NewManager(m, ManagerOptions{CopyDeadline: 100 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	err = mgr.MoveShard(context.Background(), 0, "b")
	if err == nil || !strings.Contains(err.Error(), "fetch shard") {
		t.Fatalf("stalled copy = %v, want fetch failure", err)
	}
	if elapsed := time.Since(start); elapsed > 3*time.Second {
		t.Fatalf("move took %s; copy deadline did not bound the stall", elapsed)
	}
	if mgr.Reverts() != 1 {
		t.Fatalf("reverts = %d, want 1", mgr.Reverts())
	}
	cur := mgr.Current()
	if cur.Epoch != 3 || cur.Owner[0] != "a" {
		t.Fatalf("map after deadline revert = epoch %d owner[0]=%q, want epoch 3 owned by a", cur.Epoch, cur.Owner[0])
	}
	// Fence at e2, then the revert publishes e3 to both nodes — no load,
	// no purge, and the consumed epoch is never re-minted.
	want := []string{"map:a:e2", "map:a:e3", "map:b:e3"}
	got := log.all()
	if len(got) != len(want) {
		t.Fatalf("calls = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("call %d = %q, want %q (all: %v)", i, got[i], want[i], got)
		}
	}
}

// TestRevertTicksCooldownOnce: a failed-and-reverted move must charge the
// cooldown window exactly once, so a persistently failing move paces
// itself like a successful one instead of burning an epoch every poll.
func TestRevertTicksCooldownOnce(t *testing.T) {
	log := &callLog{}
	a := newFakeNode(t, "a", log)
	b := newFakeNode(t, "b", log)
	a.failExport = true
	a.data = []api.MigrateEntry{{Key: []byte("k1"), Value: []byte("v1")}}

	m := &ShardMap{
		Epoch:  1,
		Shards: 4,
		Nodes:  []Node{{ID: "a", Addr: a.addr()}, {ID: "b", Addr: b.addr()}},
		Owner:  []string{"a", "a", "a", "b"},
	}
	a.view, b.view = m, m
	mgr, err := NewManager(m, ManagerOptions{
		MinWindowOps: 10,
		Cooldown:     time.Hour, // any second move within this test is a bug
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()

	if err := mgr.MoveShard(ctx, 0, "b"); err == nil {
		t.Fatal("move with failing export reported success")
	}
	if mgr.Reverts() != 1 {
		t.Fatalf("reverts = %d, want 1", mgr.Reverts())
	}
	epochAfterRevert := mgr.Current().Epoch

	// The fleet still looks wildly imbalanced — but the revert started the
	// cooldown clock, so the next cycles must not re-attempt the move (and
	// must not burn another fence+revert epoch pair).
	a.setStats(1, 4, nil)
	b.setStats(1, 4, nil)
	mgr.RebalanceOnce(ctx) // baseline
	a.setStats(1, 4, map[int][2]int64{0: {200, 120e6}})
	b.setStats(1, 4, map[int][2]int64{3: {20, 10e6}})
	for i := 0; i < 3; i++ {
		if moved, err := mgr.RebalanceOnce(ctx); err != nil || moved {
			t.Fatalf("cycle %d after revert: moved=%v err=%v, want cooldown hold", i, moved, err)
		}
	}
	if got := mgr.Current().Epoch; got != epochAfterRevert {
		t.Fatalf("epoch crept from %d to %d during cooldown", epochAfterRevert, got)
	}
	if mgr.Reverts() != 1 {
		t.Fatalf("reverts after cooldown cycles = %d, want still 1", mgr.Reverts())
	}
}

// TestRebalanceSkipsDeadNode: one unreachable node must not halt
// rebalancing between the live ones, and its stale baseline must be
// dropped so a restart re-baselines instead of diffing against pre-crash
// counters.
func TestRebalanceSkipsDeadNode(t *testing.T) {
	log := &callLog{}
	a := newFakeNode(t, "a", log)
	b := newFakeNode(t, "b", log)
	c := newFakeNode(t, "c", log)
	a.data = []api.MigrateEntry{{Key: []byte("k1"), Value: []byte("v1")}}

	m := &ShardMap{
		Epoch:  1,
		Shards: 6,
		Nodes:  []Node{{ID: "a", Addr: a.addr()}, {ID: "b", Addr: b.addr()}, {ID: "c", Addr: c.addr()}},
		Owner:  []string{"a", "a", "a", "b", "b", "c"},
	}
	a.view, b.view = m, m
	mgr, err := NewManager(m, ManagerOptions{
		MinWindowOps:   10,
		ImbalanceRatio: 1.5,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()

	c.srv.Close() // node c is down for the whole test

	a.setStats(1, 6, nil)
	b.setStats(1, 6, nil)
	if moved, err := mgr.RebalanceOnce(ctx); err != nil || moved {
		t.Fatalf("baseline with dead node: moved=%v err=%v", moved, err)
	}
	a.setStats(1, 6, map[int][2]int64{0: {100, 60e6}, 1: {100, 40e6}})
	b.setStats(1, 6, map[int][2]int64{3: {20, 10e6}})
	moved, err := mgr.RebalanceOnce(ctx)
	if err != nil {
		t.Fatalf("rebalance with dead node: %v", err)
	}
	if !moved {
		t.Fatal("dead node halted rebalancing between live nodes")
	}
	cur := mgr.Current()
	if cur.Owner[1] != "b" {
		t.Fatalf("map after move = %+v, want shard 1 on b", cur)
	}
	// The dead node never had a baseline retained.
	mgr.mu.Lock()
	_, hasDead := mgr.prev["c"]
	mgr.mu.Unlock()
	if hasDead {
		t.Fatal("dead node's baseline retained; restart would diff against pre-crash counters")
	}
}
