// Package cluster is the scale-out layer: a versioned shard map assigning
// hash-partitioned key ownership to engine nodes, the per-node view a
// server enforces requests against, and a latency-driven shard manager
// that polls per-shard read/write histograms and rebalances hot shards by
// publishing new map epochs.
//
// The partitioning model is fixed hash slots: every key hashes (FNV-1a)
// into one of ShardMap.Shards slots, and the map assigns each slot to
// exactly one node. Rebalancing never changes the slot count — slots are
// deliberately finer-grained than nodes (default 16 slots across 3 nodes)
// so "splitting" a hot range means the hot slots are already separable and
// a move redistributes them. Every map carries a monotonically increasing
// Epoch; nodes and clients treat a higher epoch as strictly newer and
// reject regressions, which is the entire consistency story: a shard move
// fences the old owner on epoch E+1 before the new owner accepts a single
// key, so two nodes never both claim a slot.
package cluster

import (
	"encoding/json"
	"fmt"
	"hash/fnv"
	"sort"
	"strings"
)

// DefaultShards is the default hash-slot count. It only needs to exceed
// the node count by enough that load differences are expressible as slot
// moves; 16 slots over a handful of nodes keeps per-slot histograms cheap.
const DefaultShards = 16

// Node identifies one engine node in the cluster.
type Node struct {
	// ID is the node's stable name (unique within the map).
	ID string `json:"id"`
	// Addr is the node's HTTP address, host:port (no scheme).
	Addr string `json:"addr"`
}

// ShardMap is the versioned ownership table: shard slot i belongs to the
// node named Owner[i]. Maps are immutable once published — rebalancing
// clones, edits, bumps Epoch, and republishes.
type ShardMap struct {
	// Epoch orders maps; nodes and clients only ever move forward.
	Epoch uint64 `json:"epoch"`
	// Shards is the fixed hash-slot count (len(Owner)); it never changes
	// across epochs of one cluster.
	Shards int `json:"shards"`
	// Nodes lists the cluster members, sorted by ID.
	Nodes []Node `json:"nodes"`
	// Owner maps shard slot → node ID.
	Owner []string `json:"owner"`
}

// ShardOf returns the hash slot for key under a map with shards slots.
func ShardOf(key []byte, shards int) int {
	h := fnv.New32a()
	h.Write(key)
	return int(h.Sum32() % uint32(shards))
}

// Shard returns the slot owning key under this map.
func (m *ShardMap) Shard(key []byte) int { return ShardOf(key, m.Shards) }

// OwnerOf returns the node ID owning key under this map.
func (m *ShardMap) OwnerOf(key []byte) string { return m.Owner[m.Shard(key)] }

// NodeByID returns the node with the given ID, or false.
func (m *ShardMap) NodeByID(id string) (Node, bool) {
	for _, n := range m.Nodes {
		if n.ID == id {
			return n, true
		}
	}
	return Node{}, false
}

// OwnedBy returns the slots assigned to node id, in ascending order.
func (m *ShardMap) OwnedBy(id string) []int {
	var out []int
	for s, owner := range m.Owner {
		if owner == id {
			out = append(out, s)
		}
	}
	return out
}

// Validate checks the map's internal consistency: positive slot count,
// owner table of matching length, unique node IDs, and every owner a
// known node.
func (m *ShardMap) Validate() error {
	if m.Shards <= 0 {
		return fmt.Errorf("cluster: map has %d shards", m.Shards)
	}
	if len(m.Owner) != m.Shards {
		return fmt.Errorf("cluster: owner table has %d entries for %d shards", len(m.Owner), m.Shards)
	}
	if len(m.Nodes) == 0 {
		return fmt.Errorf("cluster: map has no nodes")
	}
	ids := make(map[string]bool, len(m.Nodes))
	for _, n := range m.Nodes {
		if n.ID == "" {
			return fmt.Errorf("cluster: node with empty ID")
		}
		if ids[n.ID] {
			return fmt.Errorf("cluster: duplicate node ID %q", n.ID)
		}
		ids[n.ID] = true
	}
	for s, owner := range m.Owner {
		if !ids[owner] {
			return fmt.Errorf("cluster: shard %d owned by unknown node %q", s, owner)
		}
	}
	return nil
}

// Equal reports whether two maps are identical in epoch, slot count,
// membership, and ownership — the test that distinguishes an idempotent
// republish from a divergent map minted twice at the same epoch.
func (m *ShardMap) Equal(o *ShardMap) bool {
	if m.Epoch != o.Epoch || m.Shards != o.Shards ||
		len(m.Nodes) != len(o.Nodes) || len(m.Owner) != len(o.Owner) {
		return false
	}
	for i := range m.Nodes {
		if m.Nodes[i] != o.Nodes[i] {
			return false
		}
	}
	for i := range m.Owner {
		if m.Owner[i] != o.Owner[i] {
			return false
		}
	}
	return true
}

// Clone returns a deep copy (safe to edit before republishing).
func (m *ShardMap) Clone() *ShardMap {
	c := &ShardMap{Epoch: m.Epoch, Shards: m.Shards}
	c.Nodes = append([]Node(nil), m.Nodes...)
	c.Owner = append([]string(nil), m.Owner...)
	return c
}

// WithMove returns a new map at Epoch+1 with shard moved to node to.
func (m *ShardMap) WithMove(shard int, to string) (*ShardMap, error) {
	if shard < 0 || shard >= m.Shards {
		return nil, fmt.Errorf("cluster: shard %d out of range [0,%d)", shard, m.Shards)
	}
	if _, ok := m.NodeByID(to); !ok {
		return nil, fmt.Errorf("cluster: move to unknown node %q", to)
	}
	c := m.Clone()
	c.Epoch++
	c.Owner[shard] = to
	return c, nil
}

// InitialMap builds the epoch-1 round-robin map over nodes with the given
// slot count (DefaultShards when shards <= 0). Nodes are sorted by ID
// first so every process computing the map from the same member list gets
// the identical assignment.
func InitialMap(nodes []Node, shards int) (*ShardMap, error) {
	if shards <= 0 {
		shards = DefaultShards
	}
	if len(nodes) == 0 {
		return nil, fmt.Errorf("cluster: no nodes")
	}
	sorted := append([]Node(nil), nodes...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].ID < sorted[j].ID })
	m := &ShardMap{Epoch: 1, Shards: shards, Nodes: sorted, Owner: make([]string, shards)}
	for s := range m.Owner {
		m.Owner[s] = sorted[s%len(sorted)].ID
	}
	return m, m.Validate()
}

// ParsePeers parses the adcached -peers flag syntax
// "id=host:port,id=host:port" into a node list.
func ParsePeers(spec string) ([]Node, error) {
	var nodes []Node
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		id, addr, ok := strings.Cut(part, "=")
		if !ok || id == "" || addr == "" {
			return nil, fmt.Errorf("cluster: bad peer %q (want id=host:port)", part)
		}
		nodes = append(nodes, Node{ID: id, Addr: addr})
	}
	if len(nodes) == 0 {
		return nil, fmt.Errorf("cluster: empty peer list")
	}
	return nodes, nil
}

// MarshalJSON/UnmarshalJSON use the plain struct shape; declared only to
// keep the wire format an explicit, documented surface (API.md).
func (m *ShardMap) MarshalJSON() ([]byte, error) {
	type plain ShardMap
	return json.Marshal((*plain)(m))
}

// UnmarshalJSON parses and validates a wire-format map.
func (m *ShardMap) UnmarshalJSON(b []byte) error {
	type plain ShardMap
	if err := json.Unmarshal(b, (*plain)(m)); err != nil {
		return err
	}
	return m.Validate()
}
