package cluster

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"adcache/internal/api"
	"adcache/internal/metrics"
)

// fakeNode is a scripted cluster member: it serves canned shard stats and
// records every control-plane call the manager makes, in global order.
type fakeNode struct {
	id  string
	srv *httptest.Server

	mu          sync.Mutex
	stats       api.ShardStats
	view        *ShardMap
	log         *callLog
	data        []api.MigrateEntry
	failExport  bool
	notReady    bool          // answer /v1/health with 503, like a draining node
	exportDelay time.Duration // stall /v1/migrate exports, like a browning-out source
}

type callLog struct {
	mu    sync.Mutex
	calls []string
}

func (l *callLog) add(s string) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.calls = append(l.calls, s)
}

func (l *callLog) all() []string {
	l.mu.Lock()
	defer l.mu.Unlock()
	return append([]string(nil), l.calls...)
}

func newFakeNode(t *testing.T, id string, log *callLog) *fakeNode {
	f := &fakeNode{id: id, log: log}
	f.srv = httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/v1/migrate" && r.Method == http.MethodGet {
			f.mu.Lock()
			d := f.exportDelay
			f.mu.Unlock()
			if d > 0 {
				select {
				case <-time.After(d):
				case <-r.Context().Done():
					return // caller gave up (copy deadline)
				}
			}
		}
		f.mu.Lock()
		defer f.mu.Unlock()
		switch {
		case r.URL.Path == "/v1/health":
			if f.notReady {
				http.Error(w, `{"status":"draining"}`, http.StatusServiceUnavailable)
				return
			}
			fmt.Fprint(w, `{"status":"ok"}`)
		case r.URL.Path == "/v1/shardstats":
			json.NewEncoder(w).Encode(f.stats)
		case r.URL.Path == "/v1/shardmap" && r.Method == http.MethodGet:
			if f.view == nil {
				http.Error(w, `{"code":"NOT_FOUND","message":"x"}`, 404)
				return
			}
			json.NewEncoder(w).Encode(f.view)
		case r.URL.Path == "/v1/shardmap" && r.Method == http.MethodPost:
			var m ShardMap
			json.NewDecoder(r.Body).Decode(&m)
			f.view = &m
			f.log.add(fmt.Sprintf("map:%s:e%d", f.id, m.Epoch))
			w.WriteHeader(204)
		case r.URL.Path == "/v1/migrate" && r.Method == http.MethodGet:
			if f.failExport {
				f.log.add("export-fail:" + f.id)
				http.Error(w, `{"code":"INTERNAL","message":"injected export failure"}`, 500)
				return
			}
			f.log.add("export:" + f.id)
			json.NewEncoder(w).Encode(f.data)
		case r.URL.Path == "/v1/migrate" && r.Method == http.MethodPost:
			var entries []api.MigrateEntry
			json.NewDecoder(r.Body).Decode(&entries)
			f.data = append(f.data, entries...)
			f.log.add(fmt.Sprintf("load:%s:%d", f.id, len(entries)))
			w.WriteHeader(204)
		case r.URL.Path == "/v1/migrate" && r.Method == http.MethodDelete:
			f.data = nil
			f.log.add("purge:" + f.id)
			w.WriteHeader(204)
		default:
			http.NotFound(w, r)
		}
	}))
	t.Cleanup(f.srv.Close)
	return f
}

func (f *fakeNode) addr() string { return strings.TrimPrefix(f.srv.URL, "http://") }

func (f *fakeNode) currentView() *ShardMap {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.view
}

// setStats installs cumulative per-slot histograms: slot → (ops, sumNanos).
func (f *fakeNode) setStats(epoch uint64, shards int, load map[int][2]int64) {
	f.mu.Lock()
	defer f.mu.Unlock()
	st := api.ShardStats{Node: f.id, Epoch: epoch, Shards: make([]api.ShardStat, shards)}
	for s := 0; s < shards; s++ {
		st.Shards[s] = api.ShardStat{Shard: s}
		if l, ok := load[s]; ok {
			st.Shards[s].Reads = metrics.HistogramSnapshot{Count: l[0], Sum: l[1], Max: l[1]}
		}
	}
	f.stats = st
}

// TestManagerMovesHottestShard scripts a 2-node imbalance and checks the
// full fence → copy → publish → purge sequence and the resulting map.
func TestManagerMovesHottestShard(t *testing.T) {
	log := &callLog{}
	a := newFakeNode(t, "a", log)
	b := newFakeNode(t, "b", log)
	a.data = []api.MigrateEntry{{Key: []byte("k1"), Value: []byte("v1")}, {Key: []byte("k2"), Value: []byte("v2")}}

	m := &ShardMap{
		Epoch:  1,
		Shards: 4,
		Nodes:  []Node{{ID: "a", Addr: a.addr()}, {ID: "b", Addr: b.addr()}},
		Owner:  []string{"a", "a", "a", "b"},
	}
	a.view, b.view = m, m

	mgr, err := NewManager(m, ManagerOptions{
		MinWindowOps:   10,
		ImbalanceRatio: 1.5,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()

	// Poll 1: all zeros — establishes baselines, no move.
	a.setStats(1, 4, nil)
	b.setStats(1, 4, nil)
	if moved, err := mgr.RebalanceOnce(ctx); err != nil || moved {
		t.Fatalf("baseline poll: moved=%v err=%v", moved, err)
	}

	// Poll 2: node a is hot — slot 0 carries 60ms, slot 1 carries 40ms;
	// node b idles at 10ms on slot 3. Gap = 90ms; moving slot 1 (2×40
	// vs gap → score 10) narrows it best.
	a.setStats(1, 4, map[int][2]int64{0: {100, 60e6}, 1: {100, 40e6}})
	b.setStats(1, 4, map[int][2]int64{3: {20, 10e6}})
	moved, err := mgr.RebalanceOnce(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if !moved {
		t.Fatal("manager did not move a shard")
	}

	cur := mgr.Current()
	if cur.Epoch != 2 || cur.Owner[1] != "b" || cur.Owner[0] != "a" {
		t.Fatalf("map after move = %+v", cur)
	}
	if mgr.Moves() != 1 {
		t.Fatalf("moves = %d", mgr.Moves())
	}

	// The protocol order is the consistency contract: fence old owner,
	// export from it, load into the new owner, publish, purge.
	want := []string{"map:a:e2", "export:a", "load:b:2", "map:b:e2", "purge:a"}
	got := log.all()
	if len(got) != len(want) {
		t.Fatalf("calls = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("call %d = %q, want %q (all: %v)", i, got[i], want[i], got)
		}
	}
	// The moved data landed on b.
	if len(b.data) != 2 || string(b.data[0].Key) != "k1" {
		t.Fatalf("b.data = %+v", b.data)
	}

	// Cooldown: an immediate further imbalance is ignored.
	a.setStats(1, 4, map[int][2]int64{0: {200, 120e6}})
	b.setStats(1, 4, map[int][2]int64{3: {40, 20e6}})
	if moved, _ := mgr.RebalanceOnce(ctx); moved {
		t.Fatal("moved during cooldown")
	}
}

// TestManagerRevertsFailedMove: a move failing after its fence has
// consumed an epoch. The manager must not leave the slot fenced or ever
// re-mint that epoch with different contents — it publishes a revert map
// at the following epoch restoring the old owner, which still holds all
// the data because the purge runs strictly last.
func TestManagerRevertsFailedMove(t *testing.T) {
	log := &callLog{}
	a := newFakeNode(t, "a", log)
	b := newFakeNode(t, "b", log)
	a.failExport = true
	a.data = []api.MigrateEntry{{Key: []byte("k1"), Value: []byte("v1")}}

	m := &ShardMap{
		Epoch:  1,
		Shards: 4,
		Nodes:  []Node{{ID: "a", Addr: a.addr()}, {ID: "b", Addr: b.addr()}},
		Owner:  []string{"a", "a", "a", "b"},
	}
	a.view, b.view = m, m
	mgr, err := NewManager(m, ManagerOptions{})
	if err != nil {
		t.Fatal(err)
	}

	if err := mgr.MoveShard(context.Background(), 0, "b"); err == nil {
		t.Fatal("move with failing export reported success")
	}
	cur := mgr.Current()
	if cur.Epoch != 3 || cur.Owner[0] != "a" {
		t.Fatalf("manager map after failed move = epoch %d owner[0]=%q, want epoch 3 owned by a", cur.Epoch, cur.Owner[0])
	}
	// The whole fleet — including the fenced node — converged on the
	// revert map, so the slot is servable again.
	for _, f := range []*fakeNode{a, b} {
		v := f.currentView()
		if v.Epoch != 3 || v.Owner[0] != "a" {
			t.Fatalf("node %s map = epoch %d owner[0]=%q, want revert epoch 3 owned by a", f.id, v.Epoch, v.Owner[0])
		}
	}
	// Fence, failed export, then revert publishes — no purge, no load.
	want := []string{"map:a:e2", "export-fail:a", "map:a:e3", "map:b:e3"}
	got := log.all()
	if len(got) != len(want) {
		t.Fatalf("calls = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("call %d = %q, want %q (all: %v)", i, got[i], want[i], got)
		}
	}
	if len(a.data) != 1 {
		t.Fatalf("old owner's data disturbed by failed move: %+v", a.data)
	}
	// The next move mints a fresh epoch past the revert.
	a.failExport = false
	if err := mgr.MoveShard(context.Background(), 0, "b"); err != nil {
		t.Fatal(err)
	}
	if got := mgr.Current().Epoch; got != 4 {
		t.Fatalf("epoch after retried move = %d, want 4", got)
	}
}

// TestManagerBalancedNoMove: near-even load must not trigger churn.
func TestManagerBalancedNoMove(t *testing.T) {
	log := &callLog{}
	a := newFakeNode(t, "a", log)
	b := newFakeNode(t, "b", log)
	m := &ShardMap{
		Epoch:  1,
		Shards: 4,
		Nodes:  []Node{{ID: "a", Addr: a.addr()}, {ID: "b", Addr: b.addr()}},
		Owner:  []string{"a", "a", "b", "b"},
	}
	mgr, err := NewManager(m, ManagerOptions{MinWindowOps: 10})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	a.setStats(1, 4, nil)
	b.setStats(1, 4, nil)
	mgr.RebalanceOnce(ctx)
	a.setStats(1, 4, map[int][2]int64{0: {100, 50e6}, 1: {100, 45e6}})
	b.setStats(1, 4, map[int][2]int64{2: {100, 48e6}, 3: {100, 40e6}})
	if moved, err := mgr.RebalanceOnce(ctx); err != nil || moved {
		t.Fatalf("balanced fleet: moved=%v err=%v", moved, err)
	}
	if len(log.all()) != 0 {
		t.Fatalf("control calls on balanced fleet: %v", log.all())
	}
}

// TestManagerSyncMap: a restarted manager adopts the highest epoch any
// node holds before publishing.
func TestManagerSyncMap(t *testing.T) {
	log := &callLog{}
	a := newFakeNode(t, "a", log)
	b := newFakeNode(t, "b", log)
	m := &ShardMap{
		Epoch:  1,
		Shards: 4,
		Nodes:  []Node{{ID: "a", Addr: a.addr()}, {ID: "b", Addr: b.addr()}},
		Owner:  []string{"a", "a", "b", "b"},
	}
	newer, _ := m.WithMove(0, "b")
	newer2, _ := newer.WithMove(1, "b")
	a.view = newer
	b.view = newer2
	mgr, err := NewManager(m, ManagerOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if err := mgr.SyncMap(context.Background()); err != nil {
		t.Fatal(err)
	}
	if got := mgr.Current().Epoch; got != 3 {
		t.Fatalf("synced epoch = %d, want 3", got)
	}
	if mgr.Current().Owner[1] != "b" {
		t.Fatalf("synced map = %+v", mgr.Current())
	}
}

// TestManagerMinWindowOps: thin windows never trigger moves.
func TestManagerMinWindowOps(t *testing.T) {
	log := &callLog{}
	a := newFakeNode(t, "a", log)
	b := newFakeNode(t, "b", log)
	m := &ShardMap{
		Epoch:  1,
		Shards: 2,
		Nodes:  []Node{{ID: "a", Addr: a.addr()}, {ID: "b", Addr: b.addr()}},
		Owner:  []string{"a", "b"},
	}
	mgr, err := NewManager(m, ManagerOptions{MinWindowOps: 1000})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	a.setStats(1, 2, nil)
	b.setStats(1, 2, nil)
	mgr.RebalanceOnce(ctx)
	a.setStats(1, 2, map[int][2]int64{0: {50, 100e6}})
	b.setStats(1, 2, nil)
	if moved, _ := mgr.RebalanceOnce(ctx); moved {
		t.Fatal("moved on a thin window")
	}
}
