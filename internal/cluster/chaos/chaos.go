// Package chaos is the cluster's deterministic network-fault injector —
// the network analogue of vfs.CrashFS/FaultFS. Where the storage harness
// kills a node's disk at a chosen write, this package kills, slows, and
// partitions the *wire* between nodes at chosen moments, so the sharded
// service's consistency contract (no acked write is ever lost) can be
// swept under adversarial network conditions exactly as the single-node
// durability contract is swept under crash points.
//
// Two injection surfaces compose:
//
//   - Transport wraps an http.RoundTripper (the client's, or the shard
//     manager's) and consults a shared fault Table keyed by destination
//     address before and after each round trip. It injects full and
//     one-way partitions (the request never leaves), added latency with
//     seeded jitter, connection resets before the request is sent
//     (request lost, server never saw it), and dropped responses after
//     the server committed (the ack is lost but the write happened — the
//     fault that distinguishes at-most-once from at-least-once).
//
//   - Listener wraps a node's net.Listener and models node kill/restart:
//     while killed, accepted connections are closed immediately —
//     connection-refused from the caller's point of view — without
//     tearing down the HTTP server or the DB underneath, so a "restart"
//     is instant and the node returns with its data intact. (Process
//     crash + recovery is the storage harness's job; this layer models
//     the network symptom.)
//
// Every probabilistic decision draws from one seeded PRNG guarded by the
// Table's mutex, so a given seed and request order replays the same fault
// sequence — chaos runs are debuggable, not flaky.
package chaos

import (
	"fmt"
	"math/rand"
	"net"
	"net/http"
	"sync"
	"time"
)

// Rule is the fault configuration for traffic to one destination address
// (or, via Table.SetPair, one src→dst direction). The zero Rule injects
// nothing. Faults are applied in order: partition, then latency, then
// reset/drop — a partitioned destination never sees latency.
type Rule struct {
	// Partition drops every request before it is sent: the caller sees a
	// connection error immediately and the destination never sees the
	// request.
	Partition bool
	// Latency delays every request by Latency plus a uniform random
	// extra in [0, Jitter) before it is sent.
	Latency time.Duration
	// Jitter is the upper bound of per-request extra delay.
	Jitter time.Duration
	// SlowProb applies Latency/Jitter only to this fraction of requests
	// (0 or 1 means every request) — the brownout model: a node whose
	// p99 collapses while its p50 stays healthy.
	SlowProb float64
	// ResetProb is the probability a request is dropped *before* the
	// destination sees it (connection reset mid-send): the operation
	// did not happen.
	ResetProb float64
	// DropResponseProb is the probability the *response* is dropped
	// after the destination processed the request: for a write, the
	// server committed but the ack is lost. The caller cannot
	// distinguish this from ResetProb — that asymmetry is the point.
	DropResponseProb float64
}

// active reports whether the rule injects anything at all.
func (r Rule) active() bool {
	return r.Partition || r.Latency > 0 || r.Jitter > 0 || r.ResetProb > 0 || r.DropResponseProb > 0
}

// Table is the shared, mutable fault configuration: rules per destination
// address and per (src, dst) pair, plus the seeded PRNG every random
// decision draws from. One Table is typically shared by every Transport
// in a test so a scripted scenario flips faults for the whole fleet at
// once. Safe for concurrent use.
type Table struct {
	mu     sync.Mutex
	rng    *rand.Rand
	byDst  map[string]Rule
	byPair map[pairKey]Rule
}

type pairKey struct{ src, dst string }

// NewTable returns an empty fault table whose random decisions are driven
// by seed.
func NewTable(seed int64) *Table {
	return &Table{
		rng:    rand.New(rand.NewSource(seed)),
		byDst:  map[string]Rule{},
		byPair: map[pairKey]Rule{},
	}
}

// Set installs the rule for all traffic to dst (any source). A zero Rule
// clears it.
func (t *Table) Set(dst string, r Rule) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if r.active() {
		t.byDst[dst] = r
	} else {
		delete(t.byDst, dst)
	}
}

// SetPair installs the rule for traffic from src to dst only — the
// one-way partition primitive. Pair rules take precedence over Set rules
// for matching sources.
func (t *Table) SetPair(src, dst string, r Rule) {
	t.mu.Lock()
	defer t.mu.Unlock()
	k := pairKey{src, dst}
	if r.active() {
		t.byPair[k] = r
	} else {
		delete(t.byPair, k)
	}
}

// Partition installs a full bidirectional partition between a and b (as
// seen by Transports with matching Source names).
func (t *Table) Partition(a, b string) {
	t.SetPair(a, b, Rule{Partition: true})
	t.SetPair(b, a, Rule{Partition: true})
}

// Heal removes every rule — the network is whole again.
func (t *Table) Heal() {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.byDst = map[string]Rule{}
	t.byPair = map[pairKey]Rule{}
}

// decision is one request's resolved fate, drawn under the table lock so
// concurrent requests consume the seeded stream in arrival order.
type decision struct {
	partition bool
	delay     time.Duration
	reset     bool
	dropResp  bool
}

// decide resolves the fault decision for one src→dst request.
func (t *Table) decide(src, dst string) decision {
	t.mu.Lock()
	defer t.mu.Unlock()
	r, ok := t.byPair[pairKey{src, dst}]
	if !ok {
		r, ok = t.byDst[dst]
	}
	if !ok || !r.active() {
		return decision{}
	}
	var d decision
	if r.Partition {
		d.partition = true
		return d
	}
	slow := true
	if r.SlowProb > 0 && r.SlowProb < 1 {
		slow = t.rng.Float64() < r.SlowProb
	}
	if slow {
		d.delay = r.Latency
		if r.Jitter > 0 {
			d.delay += time.Duration(t.rng.Int63n(int64(r.Jitter)))
		}
	}
	if r.ResetProb > 0 && t.rng.Float64() < r.ResetProb {
		d.reset = true
		return d
	}
	if r.DropResponseProb > 0 && t.rng.Float64() < r.DropResponseProb {
		d.dropResp = true
	}
	return d
}

// ErrInjected is the error type every injected network failure carries,
// so tests can tell injected faults from real ones.
type ErrInjected struct {
	Kind string // "partition", "reset", "drop-response"
	Dst  string
}

func (e *ErrInjected) Error() string {
	return fmt.Sprintf("chaos: injected %s to %s", e.Kind, e.Dst)
}

// Timeout marks injected faults as retryable to net-aware callers
// (net.Error's Timeout contract): a partitioned or reset destination
// looks like any other unreachable node.
func (e *ErrInjected) Timeout() bool   { return true }
func (e *ErrInjected) Temporary() bool { return true }

// Transport is the fault-injecting http.RoundTripper. It consults the
// Table for every request (keyed by the request URL's host) and otherwise
// delegates to Base.
type Transport struct {
	// Base is the real transport (http.DefaultTransport when nil).
	Base http.RoundTripper
	// Table is the shared fault configuration (no faults when nil).
	Table *Table
	// Source names this transport's end for pair rules ("" matches only
	// Set rules).
	Source string
}

// RoundTrip applies the destination's fault rule around one request.
func (t *Transport) RoundTrip(req *http.Request) (*http.Response, error) {
	base := t.Base
	if base == nil {
		base = http.DefaultTransport
	}
	if t.Table == nil {
		return base.RoundTrip(req)
	}
	dst := req.URL.Host
	d := t.Table.decide(t.Source, dst)
	if d.partition {
		return nil, &ErrInjected{Kind: "partition", Dst: dst}
	}
	if d.delay > 0 {
		timer := time.NewTimer(d.delay)
		select {
		case <-req.Context().Done():
			timer.Stop()
			return nil, req.Context().Err()
		case <-timer.C:
		}
	}
	if d.reset {
		// Reset before send: the server never saw the request.
		return nil, &ErrInjected{Kind: "reset", Dst: dst}
	}
	resp, err := base.RoundTrip(req)
	if err != nil {
		return nil, err
	}
	if d.dropResp {
		// The server processed the request — for a mutation, it is
		// committed — but the ack never arrives.
		resp.Body.Close()
		return nil, &ErrInjected{Kind: "drop-response", Dst: dst}
	}
	return resp, nil
}

// Listener wraps a node's net.Listener with a kill switch: Kill refuses
// all new connections AND severs every established one (pooled
// keep-alive connections must die too, or a "killed" node would keep
// serving clients that dialed earlier), so callers see connection resets
// — the node is "down" — while the HTTP server and DB behind it stay
// intact for an instant "restart" with data intact.
type Listener struct {
	net.Listener
	mu     sync.Mutex
	killed bool
	conns  map[net.Conn]struct{}
}

// NewListener wraps ln.
func NewListener(ln net.Listener) *Listener {
	return &Listener{Listener: ln, conns: map[net.Conn]struct{}{}}
}

// Kill makes the node refuse new connections and closes every live one.
func (l *Listener) Kill() {
	l.mu.Lock()
	l.killed = true
	for c := range l.conns {
		c.Close()
	}
	l.conns = map[net.Conn]struct{}{}
	l.mu.Unlock()
}

// Restart lets the node accept connections again.
func (l *Listener) Restart() {
	l.mu.Lock()
	l.killed = false
	l.mu.Unlock()
}

// Killed reports the node's current state.
func (l *Listener) Killed() bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.killed
}

// Accept closes incoming connections while killed (callers see an
// immediate reset) and otherwise passes them through, tracked so Kill
// can sever them later.
func (l *Listener) Accept() (net.Conn, error) {
	for {
		c, err := l.Listener.Accept()
		if err != nil {
			return nil, err
		}
		l.mu.Lock()
		if l.killed {
			l.mu.Unlock()
			c.Close()
			continue
		}
		tc := &trackedConn{Conn: c, l: l}
		l.conns[c] = struct{}{}
		l.mu.Unlock()
		return tc, nil
	}
}

// trackedConn untracks itself on Close so the conn set stays bounded.
type trackedConn struct {
	net.Conn
	l    *Listener
	once sync.Once
}

func (c *trackedConn) Close() error {
	c.once.Do(func() {
		c.l.mu.Lock()
		delete(c.l.conns, c.Conn)
		c.l.mu.Unlock()
	})
	return c.Conn.Close()
}
