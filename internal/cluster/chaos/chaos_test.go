package chaos

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"sync/atomic"
	"testing"
	"time"
)

// startServer serves a counting handler on a chaos Listener and returns
// the listener, its address, and the served-request counter.
func startServer(t *testing.T) (*Listener, string, *atomic.Int64) {
	t.Helper()
	raw, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ln := NewListener(raw)
	var served atomic.Int64
	srv := &http.Server{Handler: http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		served.Add(1)
		io.WriteString(w, "ok")
	})}
	go srv.Serve(ln)
	t.Cleanup(func() { srv.Close() })
	return ln, raw.Addr().String(), &served
}

func newClient(table *Table, source string) *http.Client {
	tr := http.DefaultTransport.(*http.Transport).Clone()
	return &http.Client{
		Transport: &Transport{Base: tr, Table: table, Source: source},
		Timeout:   5 * time.Second,
	}
}

func get(c *http.Client, addr string) error {
	resp, err := c.Get("http://" + addr + "/")
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	_, err = io.Copy(io.Discard, resp.Body)
	return err
}

func TestPartitionBlocksAndHeals(t *testing.T) {
	_, addr, served := startServer(t)
	table := NewTable(1)
	c := newClient(table, "cli")

	if err := get(c, addr); err != nil {
		t.Fatalf("healthy get: %v", err)
	}
	table.Set(addr, Rule{Partition: true})
	err := get(c, addr)
	var inj *ErrInjected
	if !errors.As(err, &inj) || inj.Kind != "partition" {
		t.Fatalf("partitioned get: %v, want injected partition", err)
	}
	if served.Load() != 1 {
		t.Fatalf("server saw %d requests during partition, want 1", served.Load())
	}
	table.Heal()
	if err := get(c, addr); err != nil {
		t.Fatalf("healed get: %v", err)
	}
}

func TestOneWayPartition(t *testing.T) {
	_, addr, _ := startServer(t)
	table := NewTable(2)
	table.SetPair("a", addr, Rule{Partition: true})
	ca, cb := newClient(table, "a"), newClient(table, "b")

	if err := get(ca, addr); err == nil {
		t.Fatal("a→server should be partitioned")
	}
	if err := get(cb, addr); err != nil {
		t.Fatalf("b→server should pass: %v", err)
	}
}

func TestLatencyInjection(t *testing.T) {
	_, addr, _ := startServer(t)
	table := NewTable(3)
	table.Set(addr, Rule{Latency: 50 * time.Millisecond})
	c := newClient(table, "cli")

	t0 := time.Now()
	if err := get(c, addr); err != nil {
		t.Fatal(err)
	}
	if d := time.Since(t0); d < 50*time.Millisecond {
		t.Fatalf("request took %v, want >= 50ms of injected latency", d)
	}
}

// TestLatencyRespectsContext: a delayed request must abort at its
// context deadline, not sleep the full injected latency.
func TestLatencyRespectsContext(t *testing.T) {
	_, addr, _ := startServer(t)
	table := NewTable(4)
	table.Set(addr, Rule{Latency: 10 * time.Second})
	c := newClient(table, "cli")

	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	req, _ := http.NewRequestWithContext(ctx, http.MethodGet, "http://"+addr+"/", nil)
	t0 := time.Now()
	_, err := c.Do(req)
	if err == nil {
		t.Fatal("expected context deadline error")
	}
	if d := time.Since(t0); d > 5*time.Second {
		t.Fatalf("request held %v past its deadline", d)
	}
}

// TestDropResponseAfterCommit: the server must process the request (the
// write committed) while the caller sees a failure — the fault that
// separates "request lost" from "ack lost".
func TestDropResponseAfterCommit(t *testing.T) {
	_, addr, served := startServer(t)
	table := NewTable(5)
	table.Set(addr, Rule{DropResponseProb: 1})
	c := newClient(table, "cli")

	err := get(c, addr)
	var inj *ErrInjected
	if !errors.As(err, &inj) || inj.Kind != "drop-response" {
		t.Fatalf("got %v, want injected drop-response", err)
	}
	if served.Load() != 1 {
		t.Fatalf("server served %d, want 1 (request must reach it)", served.Load())
	}
}

// TestResetBeforeSend: the server must NOT see a reset request.
func TestResetBeforeSend(t *testing.T) {
	_, addr, served := startServer(t)
	table := NewTable(6)
	table.Set(addr, Rule{ResetProb: 1})
	c := newClient(table, "cli")

	err := get(c, addr)
	var inj *ErrInjected
	if !errors.As(err, &inj) || inj.Kind != "reset" {
		t.Fatalf("got %v, want injected reset", err)
	}
	if served.Load() != 0 {
		t.Fatalf("server served %d, want 0 (reset drops the request)", served.Load())
	}
}

// TestDeterministicDecisions: same seed and decision order → same fault
// sequence.
func TestDeterministicDecisions(t *testing.T) {
	draw := func(seed int64) []bool {
		table := NewTable(seed)
		table.Set("x", Rule{ResetProb: 0.5})
		out := make([]bool, 64)
		for i := range out {
			out[i] = table.decide("", "x").reset
		}
		return out
	}
	a, b := draw(42), draw(42)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("decision %d diverged under identical seeds", i)
		}
	}
	c := draw(43)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical 64-decision sequences")
	}
}

// TestKillRestart: killed nodes refuse new connections and sever pooled
// keep-alives; restart brings the same server (and its data) back.
func TestKillRestart(t *testing.T) {
	ln, addr, served := startServer(t)
	c := newClient(nil, "cli")

	if err := get(c, addr); err != nil {
		t.Fatalf("before kill: %v", err)
	}
	ln.Kill()
	if err := get(c, addr); err == nil {
		t.Fatal("get succeeded against a killed node (pooled conn survived?)")
	}
	ln.Restart()
	// The transport may need a retry to evict a stale pooled conn.
	var err error
	for i := 0; i < 3; i++ {
		if err = get(c, addr); err == nil {
			break
		}
	}
	if err != nil {
		t.Fatalf("after restart: %v", err)
	}
	if served.Load() < 2 {
		t.Fatalf("served %d, want >= 2", served.Load())
	}
}

func TestScriptRunsPhasesInOrder(t *testing.T) {
	var phases []string
	var entered []string
	s := &Script{
		Steps: []Step{
			{Name: "healthy", Duration: time.Millisecond, Enter: func() { entered = append(entered, "healthy") }},
			{Name: "partition", Duration: time.Millisecond, Enter: func() { entered = append(entered, "partition") }},
			{Name: "heal"},
		},
		OnPhase: func(n string) { phases = append(phases, n) },
	}
	s.Run(context.Background())
	want := []string{"healthy", "partition", "heal"}
	if fmt.Sprint(phases) != fmt.Sprint(want) {
		t.Fatalf("phases = %v, want %v", phases, want)
	}
	if fmt.Sprint(entered) != fmt.Sprint(want[:2]) {
		t.Fatalf("entered = %v, want %v", entered, want[:2])
	}
}

func TestScriptStopsOnCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	ran := 0
	s := &Script{Steps: []Step{
		{Name: "one", Duration: time.Hour, Enter: func() { ran++ }},
		{Name: "two", Enter: func() { ran++ }},
	}}
	done := make(chan struct{})
	go func() { s.Run(ctx); close(done) }()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("script did not stop on cancelled context")
	}
	if ran != 1 {
		t.Fatalf("ran %d steps, want 1 (cancel lands during the first hold)", ran)
	}
}
