package chaos

import (
	"context"
	"time"
)

// Step is one phase of a scripted chaos scenario: Enter flips fault rules
// (table rules, listener kills) and the phase holds for Duration before
// the next step's Enter runs. Steps run strictly in order, so a scenario
// reads top-to-bottom like a timeline.
type Step struct {
	// Name labels the phase in logs and phase-tagged measurements.
	Name string
	// Duration is how long the phase holds (0 = apply and move on).
	Duration time.Duration
	// Enter applies this phase's faults. May be nil (a pure wait).
	Enter func()
}

// Script is an ordered fault timeline over a shared Table and any number
// of Listeners. It does not itself know about either — each Step's Enter
// closure flips whatever state the scenario needs — the script only owns
// sequencing, timing, and phase visibility.
type Script struct {
	Steps []Step
	// Logf, when set, receives one line per phase transition.
	Logf func(format string, args ...any)
	// OnPhase, when set, is called with each phase's name as it starts —
	// the hook measurement loops use to tag samples by phase.
	OnPhase func(name string)
}

// Run plays the script: for each step, Enter then hold Duration. Returns
// early (after completing the current step's Enter) if ctx is cancelled
// during a hold. Total wall time is the sum of durations, so a seeded
// scenario is time-shaped the same on every run.
func (s *Script) Run(ctx context.Context) {
	for _, st := range s.Steps {
		if s.Logf != nil {
			s.Logf("chaos: phase %q (%s)", st.Name, st.Duration)
		}
		if st.Enter != nil {
			st.Enter()
		}
		if s.OnPhase != nil {
			s.OnPhase(st.Name)
		}
		if st.Duration <= 0 {
			continue
		}
		t := time.NewTimer(st.Duration)
		select {
		case <-ctx.Done():
			t.Stop()
			return
		case <-t.C:
		}
	}
}
