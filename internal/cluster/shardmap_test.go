package cluster

import (
	"encoding/json"
	"testing"
)

func threeNodes() []Node {
	return []Node{
		{ID: "c", Addr: "127.0.0.1:3"},
		{ID: "a", Addr: "127.0.0.1:1"},
		{ID: "b", Addr: "127.0.0.1:2"},
	}
}

func TestInitialMapDeterministic(t *testing.T) {
	m1, err := InitialMap(threeNodes(), 6)
	if err != nil {
		t.Fatal(err)
	}
	// A permuted member list produces the identical assignment.
	perm := []Node{threeNodes()[1], threeNodes()[2], threeNodes()[0]}
	m2, err := InitialMap(perm, 6)
	if err != nil {
		t.Fatal(err)
	}
	for s := range m1.Owner {
		if m1.Owner[s] != m2.Owner[s] {
			t.Fatalf("slot %d: %q vs %q", s, m1.Owner[s], m2.Owner[s])
		}
	}
	if m1.Epoch != 1 || m1.Shards != 6 {
		t.Fatalf("map = %+v", m1)
	}
	// Round-robin over sorted IDs: a,b,c,a,b,c.
	want := []string{"a", "b", "c", "a", "b", "c"}
	for s, w := range want {
		if m1.Owner[s] != w {
			t.Fatalf("slot %d owner %q, want %q", s, m1.Owner[s], w)
		}
	}
}

func TestInitialMapDefaults(t *testing.T) {
	m, err := InitialMap(threeNodes(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if m.Shards != DefaultShards {
		t.Fatalf("shards = %d", m.Shards)
	}
	if _, err := InitialMap(nil, 4); err == nil {
		t.Fatal("empty node list accepted")
	}
}

func TestShardOfStable(t *testing.T) {
	// The hash placement is part of the wire contract: a client and a
	// server must agree. Pin a few values so accidental hash changes fail.
	for _, tc := range []struct {
		key    string
		shards int
		want   int
	}{
		{"user00000000", 16, ShardOf([]byte("user00000000"), 16)}, // self-consistency
		{"", 16, ShardOf([]byte{}, 16)},
	} {
		if got := ShardOf([]byte(tc.key), tc.shards); got != tc.want {
			t.Fatalf("ShardOf(%q) = %d, want %d", tc.key, got, tc.want)
		}
		if got := ShardOf([]byte(tc.key), tc.shards); got < 0 || got >= tc.shards {
			t.Fatalf("ShardOf(%q) = %d out of range", tc.key, got)
		}
	}
}

func TestValidate(t *testing.T) {
	m, _ := InitialMap(threeNodes(), 4)
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := m.Clone()
	bad.Owner[2] = "nope"
	if err := bad.Validate(); err == nil {
		t.Fatal("unknown owner accepted")
	}
	bad = m.Clone()
	bad.Owner = bad.Owner[:3]
	if err := bad.Validate(); err == nil {
		t.Fatal("short owner table accepted")
	}
	bad = m.Clone()
	bad.Nodes = append(bad.Nodes, Node{ID: "a", Addr: "x"})
	if err := bad.Validate(); err == nil {
		t.Fatal("duplicate node ID accepted")
	}
}

func TestWithMove(t *testing.T) {
	m, _ := InitialMap(threeNodes(), 4)
	next, err := m.WithMove(0, "b")
	if err != nil {
		t.Fatal(err)
	}
	if next.Epoch != 2 || next.Owner[0] != "b" {
		t.Fatalf("next = %+v", next)
	}
	if m.Owner[0] != "a" || m.Epoch != 1 {
		t.Fatal("WithMove mutated the source map")
	}
	if _, err := m.WithMove(9, "b"); err == nil {
		t.Fatal("out-of-range shard accepted")
	}
	if _, err := m.WithMove(0, "zz"); err == nil {
		t.Fatal("unknown destination accepted")
	}
}

func TestParsePeers(t *testing.T) {
	nodes, err := ParsePeers("a=127.0.0.1:8081, b=127.0.0.1:8082,c=127.0.0.1:8083")
	if err != nil {
		t.Fatal(err)
	}
	if len(nodes) != 3 || nodes[1].ID != "b" || nodes[1].Addr != "127.0.0.1:8082" {
		t.Fatalf("nodes = %+v", nodes)
	}
	for _, bad := range []string{"", "a=", "=addr", "justaname"} {
		if _, err := ParsePeers(bad); err == nil {
			t.Fatalf("ParsePeers(%q) accepted", bad)
		}
	}
}

func TestMapJSONRoundTrip(t *testing.T) {
	m, _ := InitialMap(threeNodes(), 4)
	b, err := json.Marshal(m)
	if err != nil {
		t.Fatal(err)
	}
	var back ShardMap
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatal(err)
	}
	if back.Epoch != m.Epoch || back.Owner[3] != m.Owner[3] {
		t.Fatalf("round trip = %+v", back)
	}
	// Unmarshal validates: a corrupt map is rejected at decode time.
	if err := json.Unmarshal([]byte(`{"epoch":1,"shards":2,"nodes":[],"owner":["a","a"]}`), &back); err == nil {
		t.Fatal("invalid wire map accepted")
	}
}

func TestNodeViewApply(t *testing.T) {
	m, _ := InitialMap(threeNodes(), 4)
	v, err := NewNodeView("a", m)
	if err != nil {
		t.Fatal(err)
	}
	if v.Epoch() != 1 || !v.OwnsShard(0) || v.OwnsShard(1) {
		t.Fatalf("initial view: epoch %d owns0=%v owns1=%v", v.Epoch(), v.OwnsShard(0), v.OwnsShard(1))
	}
	next, _ := m.WithMove(0, "b")
	if err := v.Apply(next); err != nil {
		t.Fatal(err)
	}
	if v.Epoch() != 2 || v.OwnsShard(0) {
		t.Fatal("newer map not applied")
	}
	// Idempotent republish of the same epoch.
	if err := v.Apply(next.Clone()); err != nil {
		t.Fatalf("same-epoch republish: %v", err)
	}
	// A same-epoch map with different contents is divergence, not a
	// republish: silently ignoring it would leave the fleet split on one
	// epoch. It must be rejected, and the view must keep its own map.
	diverged := next.Clone()
	diverged.Owner[1] = "c"
	if err := v.Apply(diverged); err == nil {
		t.Fatal("divergent same-epoch map accepted")
	}
	if v.Current().Owner[1] == "c" {
		t.Fatal("divergent map installed")
	}
	// Stale epoch rejected.
	if err := v.Apply(m); err == nil {
		t.Fatal("stale map accepted")
	}
	// Shard-count change rejected.
	resized, _ := InitialMap(threeNodes(), 8)
	resized.Epoch = 99
	if err := v.Apply(resized); err == nil {
		t.Fatal("resized map accepted")
	}
	// Ownership helper.
	key := []byte("k")
	owns := v.Current().OwnerOf(key) == "a"
	if v.Owns(key) != owns {
		t.Fatal("Owns disagrees with map")
	}
	if _, err := NewNodeView("ghost", m); err == nil {
		t.Fatal("view for unknown node accepted")
	}
}
