package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"sync"
	"time"

	"adcache/internal/api"
	"adcache/internal/metrics"
)

// ManagerOptions tunes the shard manager's control loop.
type ManagerOptions struct {
	// Interval is the poll period (default 2s).
	Interval time.Duration
	// ImbalanceRatio triggers a move when the busiest node's window load
	// exceeds this multiple of the least busy node's (default 1.5).
	ImbalanceRatio float64
	// OpsImbalanceRatio is the op-count imbalance that must corroborate
	// the latency imbalance before a move (default 1.3). Sojourn-time
	// sums are queue-amplified — near saturation a small load asymmetry
	// reads as a large busy asymmetry, and a draining backlog keeps a
	// node reading hot after the cause is gone — while raw op counts are
	// low-variance. Requiring both keeps queue noise from causing churn.
	OpsImbalanceRatio float64
	// MinWindowOps is the fleet-wide op count a poll window must contain
	// before the manager acts — avoids rebalancing on noise (default 200).
	MinWindowOps int64
	// Cooldown is the minimum gap between moves (default 2×Interval), so
	// the next window reflects the previous move before another is made.
	Cooldown time.Duration
	// HTTPTimeout bounds each control RPC (default 10s).
	HTTPTimeout time.Duration
	// ProbeTimeout bounds a node health probe (default 2s — probes must
	// answer fast or the node counts as dead for this cycle).
	ProbeTimeout time.Duration
	// CopyDeadline bounds a move's whole copy phase (fetch + chunk loads
	// + destination publish; default 60s). A copy stalled past it — a
	// browning-out source trickling data, a destination hanging — aborts
	// the move and reverts, instead of fencing the slot indefinitely.
	CopyDeadline time.Duration
	// MigrateChunk is the number of entries per bulk-load request during a
	// shard copy (default 1024).
	MigrateChunk int
	// InternalToken is the shared secret sent in api.HeaderInternal on
	// migration requests; it must match the token every node was started
	// with (adcached -cluster-token). Without it nodes reject the
	// manager's migration traffic and moves fail.
	InternalToken string
	// Logf, when set, receives one line per decision and move.
	Logf func(format string, args ...any)
}

func (o *ManagerOptions) defaults() {
	if o.Interval <= 0 {
		o.Interval = 2 * time.Second
	}
	if o.ImbalanceRatio <= 1 {
		o.ImbalanceRatio = 1.5
	}
	if o.OpsImbalanceRatio <= 1 {
		o.OpsImbalanceRatio = 1.3
	}
	if o.MinWindowOps <= 0 {
		o.MinWindowOps = 200
	}
	if o.Cooldown <= 0 {
		o.Cooldown = 2 * o.Interval
	}
	if o.HTTPTimeout <= 0 {
		o.HTTPTimeout = 10 * time.Second
	}
	if o.ProbeTimeout <= 0 {
		o.ProbeTimeout = 2 * time.Second
	}
	if o.CopyDeadline <= 0 {
		o.CopyDeadline = 60 * time.Second
	}
	if o.MigrateChunk <= 0 {
		o.MigrateChunk = 1024
	}
}

// Manager is the latency-driven rebalancer: it polls every node's
// per-shard read/write histograms, diffs successive polls into load
// windows, and when one node is carrying disproportionate load it moves a
// hash slot to the least-loaded node by fencing the old owner on a new
// epoch, copying the slot's data, and publishing the map fleet-wide.
//
// The manager is the cluster's only map publisher; nodes accept any map
// with a higher epoch, so a restarted manager first adopts the highest
// epoch any node holds (SyncMap) before publishing again.
type Manager struct {
	opts  ManagerOptions
	httpc *http.Client

	mu       sync.Mutex
	cur      *ShardMap
	prev     map[string][]api.ShardStat // node ID → last cumulative poll
	lastMove time.Time
	moves    int
	reverts  int
}

// NewManager returns a manager starting from m (typically InitialMap).
func NewManager(m *ShardMap, opts ManagerOptions) (*Manager, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	opts.defaults()
	return &Manager{
		opts:  opts,
		httpc: &http.Client{Timeout: opts.HTTPTimeout},
		cur:   m,
		prev:  make(map[string][]api.ShardStat),
	}, nil
}

// Current returns the manager's current map (MapSource).
func (mg *Manager) Current() *ShardMap {
	mg.mu.Lock()
	defer mg.mu.Unlock()
	return mg.cur
}

// Moves returns the number of shard moves executed so far.
func (mg *Manager) Moves() int {
	mg.mu.Lock()
	defer mg.mu.Unlock()
	return mg.moves
}

// Reverts returns the number of moves that failed after their fence and
// were rolled forward to a revert map.
func (mg *Manager) Reverts() int {
	mg.mu.Lock()
	defer mg.mu.Unlock()
	return mg.reverts
}

func (mg *Manager) logf(format string, args ...any) {
	if mg.opts.Logf != nil {
		mg.opts.Logf(format, args...)
	}
}

// Run drives the control loop until ctx is cancelled: sync once, then
// poll/decide/move every Interval. Poll errors are logged and skipped —
// an unreachable node pauses rebalancing rather than crashing the loop.
func (mg *Manager) Run(ctx context.Context) {
	if err := mg.SyncMap(ctx); err != nil {
		mg.logf("cluster-manager: initial sync: %v", err)
	}
	t := time.NewTicker(mg.opts.Interval)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
			if moved, err := mg.RebalanceOnce(ctx); err != nil {
				mg.logf("cluster-manager: rebalance: %v", err)
			} else if moved {
				mg.logf("cluster-manager: epoch now %d", mg.Current().Epoch)
			}
		}
	}
}

// SyncMap fetches /v1/shardmap from every node and adopts the highest
// epoch seen — the recovery path after a manager restart.
func (mg *Manager) SyncMap(ctx context.Context) error {
	mg.mu.Lock()
	nodes := mg.cur.Nodes
	mg.mu.Unlock()
	var firstErr error
	for _, n := range nodes {
		var m ShardMap
		if err := mg.getJSON(ctx, n.Addr, "/v1/shardmap", &m); err != nil {
			if firstErr == nil {
				firstErr = fmt.Errorf("node %s: %w", n.ID, err)
			}
			continue
		}
		mg.mu.Lock()
		if m.Epoch > mg.cur.Epoch && m.Shards == mg.cur.Shards {
			mg.cur = &m
		}
		mg.mu.Unlock()
	}
	return firstErr
}

// nodeWindow is one node's load over the last poll window.
type nodeWindow struct {
	node  Node
	busy  int64           // Σ read+write latency nanos over owned shards
	ops   int64           // Σ read+write ops
	shard map[int]int64   // per-slot busy nanos
	p99r  map[int]float64 // per-slot window read p99
}

// subSnap returns cur − prev bucket-wise: the observations recorded in
// the window between two cumulative polls.
func subSnap(cur, prev metrics.HistogramSnapshot) metrics.HistogramSnapshot {
	out := cur
	out.Count -= prev.Count
	out.Sum -= prev.Sum
	for i := range out.Buckets {
		out.Buckets[i] -= prev.Buckets[i]
	}
	if out.Count < 0 { // node restarted; treat as fresh
		return cur
	}
	return out
}

// RebalanceOnce performs one poll-decide-move cycle. It returns whether a
// shard was moved. The first poll after start (or after a node restart)
// only establishes baselines.
//
// An unreachable node does not halt the cycle: it is dropped from this
// window (its baseline is discarded so a restarted node re-baselines
// instead of diffing against pre-crash counters), and no move can select
// it as source or destination — a dead node pauses migrations touching
// it while the rest of the fleet keeps rebalancing.
func (mg *Manager) RebalanceOnce(ctx context.Context) (bool, error) {
	mg.mu.Lock()
	cur := mg.cur
	lastMove := mg.lastMove
	mg.mu.Unlock()

	windows := make([]*nodeWindow, 0, len(cur.Nodes))
	var fleetOps int64
	baseline := false
	for _, n := range cur.Nodes {
		var st api.ShardStats
		if err := mg.getJSON(ctx, n.Addr, "/v1/shardstats", &st); err != nil {
			mg.logf("cluster-manager: poll %s: %v (skipping this window)", n.ID, err)
			mg.mu.Lock()
			delete(mg.prev, n.ID)
			mg.mu.Unlock()
			continue
		}
		w := &nodeWindow{node: n, shard: map[int]int64{}, p99r: map[int]float64{}}
		mg.mu.Lock()
		prev, havePrev := mg.prev[n.ID]
		mg.prev[n.ID] = st.Shards
		mg.mu.Unlock()
		if !havePrev {
			baseline = true
			continue
		}
		prevBy := make(map[int]api.ShardStat, len(prev))
		for _, s := range prev {
			prevBy[s.Shard] = s
		}
		for _, s := range st.Shards {
			p := prevBy[s.Shard]
			r := subSnap(s.Reads, p.Reads)
			wr := subSnap(s.Writes, p.Writes)
			busy := r.Sum + wr.Sum
			w.shard[s.Shard] = busy
			w.p99r[s.Shard] = r.Quantile(0.99)
			w.busy += busy
			w.ops += r.Count + wr.Count
		}
		fleetOps += w.ops
		windows = append(windows, w)
	}
	if baseline || len(windows) < 2 {
		return false, nil
	}
	if fleetOps < mg.opts.MinWindowOps {
		return false, nil
	}
	if !lastMove.IsZero() && time.Since(lastMove) < mg.opts.Cooldown {
		return false, nil
	}

	sort.Slice(windows, func(i, j int) bool { return windows[i].busy > windows[j].busy })
	hot, cold := windows[0], windows[len(windows)-1]
	if hot.busy == 0 {
		return false, nil
	}
	if cold.busy > 0 && float64(hot.busy) < mg.opts.ImbalanceRatio*float64(cold.busy) {
		return false, nil
	}
	if cold.ops > 0 && float64(hot.ops) < mg.opts.OpsImbalanceRatio*float64(cold.ops) {
		return false, nil
	}

	// Pick the slot on the hot node whose move best narrows the gap:
	// minimize |(hot−s) − (cold+s)| over owned, non-idle slots.
	gap := hot.busy - cold.busy
	best, bestScore := -1, int64(1)<<62
	for _, s := range cur.OwnedBy(hot.node.ID) {
		b := hot.shard[s]
		if b <= 0 {
			continue
		}
		score := gap - 2*b
		if score < 0 {
			score = -score
		}
		if score < bestScore {
			best, bestScore = s, score
		}
	}
	if best < 0 || bestScore >= gap {
		return false, nil // no move improves the imbalance
	}
	mg.logf("cluster-manager: hot node %s (busy %dms, shard %d p99 %.1fms) → moving shard %d to %s",
		hot.node.ID, hot.busy/1e6, best, hot.p99r[best]/1e6, best, cold.node.ID)
	if err := mg.MoveShard(ctx, best, cold.node.ID); err != nil {
		return false, err
	}
	return true, nil
}

// probeReady reports whether the node at addr answers /v1/health with
// 200 within ProbeTimeout — alive, not draining, not degraded.
func (mg *Manager) probeReady(ctx context.Context, addr string) error {
	pctx, cancel := context.WithTimeout(ctx, mg.opts.ProbeTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(pctx, http.MethodGet, "http://"+addr+"/v1/health", nil)
	if err != nil {
		return err
	}
	resp, err := mg.httpc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	io.Copy(io.Discard, io.LimitReader(resp.Body, 512))
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("health: %s", resp.Status)
	}
	return nil
}

// MoveShard migrates one slot to node to and publishes the new epoch
// fleet-wide. The ordering is the consistency contract:
//
//  1. fence — the old owner accepts the new map first, so it starts
//     rejecting the slot's keys with WRONG_SHARD before any data moves;
//  2. copy — the slot's entries stream from the old owner into the new
//     owner over the binary-safe migration endpoints;
//  3. publish — every other node (the new owner first) accepts the map;
//  4. purge — the old owner deletes its now-foreign copy of the slot.
//
// The fence is also a drain: the old owner installs the map under its
// flight write lock, so every mutation that passed an ownership check
// under the old epoch has committed before the fence's 204 — and is
// therefore in the copy. A write issued after the fence answers
// WRONG_SHARD until the new owner holds both the map and the data, so
// acked writes survive the move by construction. If the manager dies
// between fence and publish the slot is unavailable (clients retry
// WRONG_SHARD) but no data is lost — the purge runs strictly last.
//
// Posting the fence consumes the new epoch: the fenced node holds that
// map, and nodes reject a same-epoch map with different contents. A
// failure after the fence therefore rolls forward to a revert map at the
// following epoch restoring the old owner (which still has every entry),
// rather than leaving the slot fenced or re-minting the epoch.
func (mg *Manager) MoveShard(ctx context.Context, shard int, to string) error {
	mg.mu.Lock()
	cur := mg.cur
	mg.mu.Unlock()
	if shard < 0 || shard >= cur.Shards {
		return fmt.Errorf("cluster: shard %d out of range", shard)
	}
	fromID := cur.Owner[shard]
	if fromID == to {
		return nil
	}
	from, _ := cur.NodeByID(fromID)
	dest, ok := cur.NodeByID(to)
	if !ok {
		return fmt.Errorf("cluster: unknown destination node %q", to)
	}
	next, err := cur.WithMove(shard, to)
	if err != nil {
		return err
	}

	// 0. Probe both ends before fencing anything: a dead or draining
	// destination would doom the copy *after* the fence made the slot
	// unavailable, forcing a revert epoch. Probing first turns that into
	// a free abort — nothing has changed fleet-wide yet.
	if err := mg.probeReady(ctx, dest.Addr); err != nil {
		return fmt.Errorf("destination %s not ready, move aborted: %w", dest.ID, err)
	}
	if err := mg.probeReady(ctx, from.Addr); err != nil {
		return fmt.Errorf("source %s not ready, move aborted: %w", from.ID, err)
	}

	// 1. Fence the old owner. Until this succeeds nothing has changed
	// fleet-wide, so a failure simply aborts the move.
	if err := mg.postMap(ctx, from.Addr, next); err != nil {
		return fmt.Errorf("fence %s: %w", from.ID, err)
	}
	// The fence consumed next.Epoch — any failure below must advance past
	// it via a revert map, never reuse it.
	fail := func(cause error) error {
		mg.revertMove(ctx, next, shard, from.ID)
		return cause
	}
	// 2. Copy the slot, the whole phase (fetch, chunk loads, destination
	// publish) bounded by CopyDeadline: a copy that stalls past it — the
	// source browning out mid-stream, the destination hanging on a load —
	// aborts and reverts instead of holding the slot fenced indefinitely.
	cctx, cancelCopy := context.WithTimeout(ctx, mg.opts.CopyDeadline)
	defer cancelCopy()
	entries, err := mg.fetchShard(cctx, from.Addr, shard)
	if err != nil {
		return fail(fmt.Errorf("fetch shard %d from %s: %w", shard, from.ID, err))
	}
	for off := 0; off < len(entries); off += mg.opts.MigrateChunk {
		end := off + mg.opts.MigrateChunk
		if end > len(entries) {
			end = len(entries)
		}
		if err := mg.postChunk(cctx, dest.Addr, shard, entries[off:end]); err != nil {
			return fail(fmt.Errorf("load shard %d into %s: %w", shard, dest.ID, err))
		}
	}
	// 3. Publish fleet-wide, destination first so retried client requests
	// land on a node that already owns the slot.
	if err := mg.postMap(cctx, dest.Addr, next); err != nil {
		return fail(fmt.Errorf("publish to %s: %w", dest.ID, err))
	}
	for _, n := range next.Nodes {
		if n.ID == from.ID || n.ID == dest.ID {
			continue
		}
		if err := mg.postMap(ctx, n.Addr, next); err != nil {
			mg.logf("cluster-manager: publish to %s: %v (will converge via headers)", n.ID, err)
		}
	}
	// 4. Purge the old owner's copy. Best-effort: servers filter scans by
	// ownership, so a leftover copy is invisible, just disk weight.
	if err := mg.purgeShard(ctx, from.Addr, shard); err != nil {
		mg.logf("cluster-manager: purge shard %d on %s: %v", shard, from.ID, err)
	}

	mg.mu.Lock()
	mg.cur = next
	mg.lastMove = time.Now()
	mg.moves++
	mg.mu.Unlock()
	mg.logf("cluster-manager: shard %d moved %s → %s (%d entries, epoch %d)",
		shard, from.ID, dest.ID, len(entries), next.Epoch)
	return nil
}

// revertMove recovers from a move that failed after its fence was
// posted: it publishes a map at the epoch after failed (so the consumed
// epoch is never re-minted with different contents) that restores shard
// to owner fromID — who still holds every entry, because the purge runs
// strictly last. Publishing is best-effort per node; stragglers converge
// on the next publish or via response headers. The manager's own map
// always advances, so its next move uses a fresh epoch.
//
// A reverted move ticks the cooldown clock exactly once, here — the
// success path ticks it in MoveShard, never both. Without this, a
// persistently failing move would retry every poll interval, burning an
// epoch (fence + revert) each time; with it, failed moves pace
// themselves exactly like successful ones.
func (mg *Manager) revertMove(ctx context.Context, failed *ShardMap, shard int, fromID string) {
	revert, err := failed.WithMove(shard, fromID)
	if err != nil {
		mg.logf("cluster-manager: building revert map: %v", err)
		return
	}
	for _, n := range revert.Nodes {
		if err := mg.postMap(ctx, n.Addr, revert); err != nil {
			mg.logf("cluster-manager: revert publish to %s: %v", n.ID, err)
		}
	}
	mg.mu.Lock()
	mg.cur = revert
	mg.lastMove = time.Now()
	mg.reverts++
	mg.mu.Unlock()
	mg.logf("cluster-manager: move of shard %d aborted; reverted to %s at epoch %d",
		shard, fromID, revert.Epoch)
}

func (mg *Manager) getJSON(ctx context.Context, addr, path string, out any) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, "http://"+addr+path, nil)
	if err != nil {
		return err
	}
	resp, err := mg.httpc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		b, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return fmt.Errorf("GET %s: %s: %s", path, resp.Status, bytes.TrimSpace(b))
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

func (mg *Manager) postMap(ctx context.Context, addr string, m *ShardMap) error {
	body, err := json.Marshal(m)
	if err != nil {
		return err
	}
	return mg.post(ctx, addr, "/v1/shardmap", body, false)
}

func (mg *Manager) fetchShard(ctx context.Context, addr string, shard int) ([]api.MigrateEntry, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet,
		fmt.Sprintf("http://%s/v1/migrate?shard=%d", addr, shard), nil)
	if err != nil {
		return nil, err
	}
	req.Header.Set(api.HeaderInternal, mg.opts.InternalToken)
	resp, err := mg.httpc.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		b, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return nil, fmt.Errorf("GET /v1/migrate: %s: %s", resp.Status, bytes.TrimSpace(b))
	}
	var entries []api.MigrateEntry
	if err := json.NewDecoder(resp.Body).Decode(&entries); err != nil {
		return nil, err
	}
	return entries, nil
}

func (mg *Manager) postChunk(ctx context.Context, addr string, shard int, entries []api.MigrateEntry) error {
	body, err := json.Marshal(entries)
	if err != nil {
		return err
	}
	return mg.post(ctx, addr, fmt.Sprintf("/v1/migrate?shard=%d", shard), body, true)
}

func (mg *Manager) purgeShard(ctx context.Context, addr string, shard int) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodDelete,
		fmt.Sprintf("http://%s/v1/migrate?shard=%d", addr, shard), nil)
	if err != nil {
		return err
	}
	req.Header.Set(api.HeaderInternal, mg.opts.InternalToken)
	resp, err := mg.httpc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		b, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return fmt.Errorf("DELETE /v1/migrate: %s: %s", resp.Status, bytes.TrimSpace(b))
	}
	return nil
}

func (mg *Manager) post(ctx context.Context, addr, path string, body []byte, internal bool) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, "http://"+addr+path, bytes.NewReader(body))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	if internal {
		req.Header.Set(api.HeaderInternal, mg.opts.InternalToken)
	}
	resp, err := mg.httpc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		b, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return fmt.Errorf("POST %s: %s: %s", path, resp.Status, bytes.TrimSpace(b))
	}
	return nil
}
