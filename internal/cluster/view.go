package cluster

import (
	"fmt"
	"sync/atomic"
)

// MapSource is anything that can produce the current shard map; the server
// and client both consume ownership through it. Implementations must be
// safe for concurrent use. A nil map means "no cluster configured" and the
// consumer owns every key.
type MapSource interface {
	Current() *ShardMap
}

// NodeView is one node's live view of the cluster: its own identity plus
// the newest shard map it has accepted. The server enforces ownership
// against it and serves/accepts /v1/shardmap through it; the shard manager
// advances it by publishing higher epochs.
type NodeView struct {
	id  string
	cur atomic.Pointer[ShardMap]
}

// NewNodeView returns a view for node id starting at map m (which must
// validate and must assign at least one... may assign zero slots to id —
// a node can legitimately start empty and receive shards later).
func NewNodeView(id string, m *ShardMap) (*NodeView, error) {
	if id == "" {
		return nil, fmt.Errorf("cluster: empty node ID")
	}
	if err := m.Validate(); err != nil {
		return nil, err
	}
	if _, ok := m.NodeByID(id); !ok {
		return nil, fmt.Errorf("cluster: node %q not in map", id)
	}
	v := &NodeView{id: id}
	v.cur.Store(m)
	return v, nil
}

// ID returns this node's identity.
func (v *NodeView) ID() string { return v.id }

// Current returns the newest accepted map (never nil).
func (v *NodeView) Current() *ShardMap { return v.cur.Load() }

// Epoch returns the current map epoch.
func (v *NodeView) Epoch() uint64 { return v.cur.Load().Epoch }

// Owns reports whether this node owns key under the current map.
func (v *NodeView) Owns(key []byte) bool {
	return v.cur.Load().OwnerOf(key) == v.id
}

// OwnsShard reports whether this node owns slot shard currently.
func (v *NodeView) OwnsShard(shard int) bool {
	m := v.cur.Load()
	return shard >= 0 && shard < m.Shards && m.Owner[shard] == v.id
}

// Apply installs m as the current map. The epoch must strictly increase
// and the slot count must match — a cluster's slot count is fixed for its
// lifetime. Re-applying the current epoch is an idempotent no-op only if
// the contents match; a same-epoch map with different contents is
// rejected, because silently ignoring it would hide two maps minted at
// one epoch (e.g. a manager reusing an epoch after a failed move) and
// leave the fleet divergent.
func (v *NodeView) Apply(m *ShardMap) error {
	if err := m.Validate(); err != nil {
		return err
	}
	for {
		cur := v.cur.Load()
		if m.Epoch == cur.Epoch {
			if m.Equal(cur) {
				return nil // idempotent republish
			}
			return fmt.Errorf("cluster: divergent map at epoch %d (same epoch, different contents)", m.Epoch)
		}
		if m.Epoch < cur.Epoch {
			return fmt.Errorf("cluster: stale map epoch %d (have %d)", m.Epoch, cur.Epoch)
		}
		if m.Shards != cur.Shards {
			return fmt.Errorf("cluster: map changes shard count %d → %d", cur.Shards, m.Shards)
		}
		if v.cur.CompareAndSwap(cur, m) {
			return nil
		}
	}
}

// StaticSource adapts a fixed map (or nil) into a MapSource — the
// single-node and test configuration.
type StaticSource struct{ Map *ShardMap }

// Current returns the fixed map.
func (s StaticSource) Current() *ShardMap { return s.Map }
