// Package sketch implements the Count-Min Sketch with saturating decay that
// backs AdCache's frequency-based point admission (§3.4): missed keys are
// counted, and a key is admitted only when its frequency relative to the
// global missed-key total clears the RL-tuned threshold. When any counter
// saturates (default 8), all counters and the global sum halve, so stale hot
// keys fade — the TinyLFU aging scheme.
package sketch

import (
	"sync"

	"adcache/internal/bloom"
)

// DefaultSaturation is the paper's example saturation point.
const DefaultSaturation = 8

// CMS is a Count-Min Sketch with decay. It is safe for concurrent use.
type CMS struct {
	mu     sync.Mutex
	rows   int
	width  uint64
	counts [][]uint8
	sum    uint64 // total increments since last decay (halved with counters)
	sat    uint8
	decays int64
}

// New returns a sketch with the given depth (rows) and width (counters per
// row). Width should be a few times the hot-set size; rows of 4 gives a
// good collision bound.
func New(rows, width int) *CMS {
	if rows < 1 {
		rows = 4
	}
	if width < 16 {
		width = 16
	}
	c := &CMS{rows: rows, width: uint64(width), sat: DefaultSaturation}
	c.counts = make([][]uint8, rows)
	for i := range c.counts {
		c.counts[i] = make([]uint8, width)
	}
	return c
}

// SetSaturation overrides the decay trigger (tests).
func (c *CMS) SetSaturation(sat uint8) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if sat > 0 {
		c.sat = sat
	}
}

// hashes derives row positions via double hashing.
func (c *CMS) position(h uint64, row int) uint64 {
	h2 := h>>32 | h<<32
	return (h + uint64(row)*h2) % c.width
}

// Increment counts one occurrence of key and returns its updated estimate.
func (c *CMS) Increment(key []byte) uint64 {
	h := bloom.Hash64(key)
	c.mu.Lock()
	defer c.mu.Unlock()
	est := uint8(255)
	for row := 0; row < c.rows; row++ {
		p := c.position(h, row)
		if c.counts[row][p] < 255 {
			c.counts[row][p]++
		}
		if c.counts[row][p] < est {
			est = c.counts[row][p]
		}
	}
	c.sum++
	if est >= c.sat {
		c.decayLocked()
		est /= 2
	}
	return uint64(est)
}

// Estimate returns the approximate count for key.
func (c *CMS) Estimate(key []byte) uint64 {
	h := bloom.Hash64(key)
	c.mu.Lock()
	defer c.mu.Unlock()
	est := uint8(255)
	for row := 0; row < c.rows; row++ {
		p := c.position(h, row)
		if c.counts[row][p] < est {
			est = c.counts[row][p]
		}
	}
	return uint64(est)
}

// Sum returns the decayed global increment total.
func (c *CMS) Sum() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.sum
}

// Score returns key's normalized importance: estimate / sum, in [0, 1].
// This is the quantity compared against the RL-tuned admission threshold.
func (c *CMS) Score(key []byte) float64 {
	h := bloom.Hash64(key)
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.sum == 0 {
		return 0
	}
	est := uint8(255)
	for row := 0; row < c.rows; row++ {
		p := c.position(h, row)
		if c.counts[row][p] < est {
			est = c.counts[row][p]
		}
	}
	return float64(est) / float64(c.sum)
}

// decayLocked halves every counter and the global sum.
func (c *CMS) decayLocked() {
	for row := range c.counts {
		for i := range c.counts[row] {
			c.counts[row][i] /= 2
		}
	}
	c.sum /= 2
	c.decays++
}

// Decays reports how many halvings have occurred.
func (c *CMS) Decays() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.decays
}

// Reset zeroes the sketch.
func (c *CMS) Reset() {
	c.mu.Lock()
	defer c.mu.Unlock()
	for row := range c.counts {
		for i := range c.counts[row] {
			c.counts[row][i] = 0
		}
	}
	c.sum = 0
}
