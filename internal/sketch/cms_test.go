package sketch

import (
	"fmt"
	"sync"
	"testing"
)

func TestIncrementEstimate(t *testing.T) {
	c := New(4, 1024)
	k := []byte("hot")
	for i := 0; i < 5; i++ {
		c.Increment(k)
	}
	if est := c.Estimate(k); est != 5 {
		t.Fatalf("Estimate = %d, want 5", est)
	}
	if est := c.Estimate([]byte("cold")); est != 0 {
		t.Fatalf("Estimate(cold) = %d", est)
	}
	if c.Sum() != 5 {
		t.Fatalf("Sum = %d", c.Sum())
	}
}

func TestSaturationDecayHalves(t *testing.T) {
	c := New(4, 1024)
	c.SetSaturation(8)
	k := []byte("hot")
	for i := 0; i < 8; i++ {
		c.Increment(k)
	}
	// The 8th increment hits saturation and halves everything.
	if c.Decays() != 1 {
		t.Fatalf("Decays = %d", c.Decays())
	}
	if est := c.Estimate(k); est != 4 {
		t.Fatalf("post-decay Estimate = %d, want 4", est)
	}
	if c.Sum() != 4 {
		t.Fatalf("post-decay Sum = %d, want 4", c.Sum())
	}
}

func TestDecayFadesOldKeys(t *testing.T) {
	c := New(4, 4096)
	c.SetSaturation(8)
	old := []byte("old")
	for i := 0; i < 4; i++ {
		c.Increment(old)
	}
	// A new hot key decays the sketch repeatedly; "old" should fade.
	hot := []byte("hot")
	for i := 0; i < 64; i++ {
		c.Increment(hot)
	}
	if est := c.Estimate(old); est > 1 {
		t.Fatalf("old key estimate = %d, should have faded", est)
	}
}

func TestScoreNormalisation(t *testing.T) {
	c := New(4, 4096)
	if s := c.Score([]byte("any")); s != 0 {
		t.Fatalf("empty-sketch Score = %f", s)
	}
	hot := []byte("hot")
	for i := 0; i < 6; i++ {
		c.Increment(hot)
	}
	for i := 0; i < 94; i++ {
		c.Increment([]byte(fmt.Sprintf("one-off-%d", i)))
	}
	hotScore := c.Score(hot)
	coldScore := c.Score([]byte("one-off-3"))
	if hotScore <= coldScore {
		t.Fatalf("hot %f <= cold %f", hotScore, coldScore)
	}
	if hotScore < 0.04 || hotScore > 0.08 {
		t.Fatalf("hot score = %f, want ≈6/100", hotScore)
	}
}

func TestOverestimateOnlyProperty(t *testing.T) {
	// A Count-Min Sketch may overestimate but never underestimate (before
	// decay fires).
	c := New(4, 64) // small width forces collisions
	c.SetSaturation(200)
	truth := map[string]int{}
	for i := 0; i < 500; i++ {
		k := fmt.Sprintf("k%d", i%50)
		c.Increment([]byte(k))
		truth[k]++
	}
	for k, want := range truth {
		if got := int(c.Estimate([]byte(k))); got < want {
			t.Fatalf("underestimate for %s: got %d, want >= %d", k, got, want)
		}
	}
}

func TestReset(t *testing.T) {
	c := New(4, 256)
	c.Increment([]byte("k"))
	c.Reset()
	if c.Estimate([]byte("k")) != 0 || c.Sum() != 0 {
		t.Fatal("Reset left state behind")
	}
}

func TestConcurrent(t *testing.T) {
	c := New(4, 4096)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 5000; i++ {
				c.Increment([]byte(fmt.Sprintf("k%d", i%64)))
				c.Score([]byte(fmt.Sprintf("k%d", i%64)))
			}
		}(g)
	}
	wg.Wait()
}
