package core

import (
	"errors"
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"adcache/internal/lsm"
	"adcache/internal/nn"
	"adcache/internal/rl"
	"adcache/internal/vfs"
)

// TestOldDimModelRejected pins the agent-dimension migration contract: a
// serialized agent from before the unified-memory dims (13-dim state,
// 4-dim action) must be rejected with nn.ErrArchitectureMismatch, never
// silently misindexed into the grown networks.
func TestOldDimModelRejected(t *testing.T) {
	fs := vfs.NewMem()
	rng := rand.New(rand.NewSource(1))
	oldActor := nn.NewMLP([]int{13, rl.HiddenDim, rl.HiddenDim, 4}, nn.ReLU, nn.Sigmoid, rng)
	oldCritic := nn.NewMLP([]int{13, rl.HiddenDim, rl.HiddenDim, 1}, nn.ReLU, nn.Linear, rng)
	if err := oldActor.Save(fs, "model.actor"); err != nil {
		t.Fatal(err)
	}
	if err := oldCritic.Save(fs, "model.critic"); err != nil {
		t.Fatal(err)
	}

	_, err := New(Config{Capacity: 1 << 20, ModelFS: fs, ModelPath: "model"})
	if err == nil {
		t.Fatal("loading a 13/4-dim model into an 18/5-dim agent succeeded")
	}
	if !errors.Is(err, nn.ErrArchitectureMismatch) {
		t.Fatalf("err = %v, want nn.ErrArchitectureMismatch", err)
	}
}

// TestCurrentDimModelRoundTrips: an agent serialized at the current dims
// loads back cleanly (the rejection above is about dims, not loading).
func TestCurrentDimModelRoundTrips(t *testing.T) {
	fs := vfs.NewMem()
	agent := rl.New(rl.Config{Seed: 7})
	if err := agent.Save(fs, "model"); err != nil {
		t.Fatal(err)
	}
	a, err := New(Config{Capacity: 1 << 20, ModelFS: fs, ModelPath: "model"})
	if err != nil {
		t.Fatalf("round trip failed: %v", err)
	}
	a.Close()
}

// unifiedParamsTrace opens a deterministic unified-memory stack (seeded
// memtables, InlineCompaction, SyncTuning) and returns the per-window
// Params trace of a fixed mixed workload.
func unifiedParamsTrace(t *testing.T) []Params {
	t.Helper()
	a, err := New(Config{
		Capacity:            1 << 20,
		WindowSize:          200,
		SyncTuning:          true,
		MemtableArbitration: true,
		RecordTrace:         true,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(a.Close)

	opts := lsm.DefaultOptions("db")
	opts.FS = vfs.NewMem()
	opts.InlineCompaction = true
	opts.MemTableSize = 64 << 10
	opts.Strategy = a
	db, err := lsm.Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	a.Bind(db)

	val := make([]byte, 256)
	for i := 0; i < 3000; i++ {
		key := []byte(fmt.Sprintf("key%06d", i%500))
		if i%3 == 0 {
			if err := db.Put(key, val); err != nil {
				t.Fatal(err)
			}
		} else {
			if _, _, err := db.Get(key); err != nil {
				t.Fatal(err)
			}
		}
	}

	trace := a.Trace()
	params := make([]Params, len(trace))
	for i, w := range trace {
		params[i] = w.Params
	}
	return params
}

// TestUnifiedDecodeDeterministic: under InlineCompaction + SyncTuning two
// identically-seeded stacks produce identical per-window Params traces —
// including the new MemRatio dimension — and every decoded MemRatio stays
// inside the configured band.
func TestUnifiedDecodeDeterministic(t *testing.T) {
	p1 := unifiedParamsTrace(t)
	p2 := unifiedParamsTrace(t)
	if len(p1) == 0 {
		t.Fatal("no windows closed")
	}
	if !reflect.DeepEqual(p1, p2) {
		t.Fatalf("param traces diverge:\n%+v\nvs\n%+v", p1, p2)
	}
	for i, p := range p1 {
		if p.MemRatio < 0.05-1e-9 || p.MemRatio > 0.6+1e-9 {
			t.Fatalf("window %d MemRatio %f outside [MemRatioMin, MemRatioMax]", i, p.MemRatio)
		}
	}
}

// TestMemRatioHysteresisPublishing pins the satellite fix: the MemRatio
// dimension gets the same post-hysteresis publishing as the cache params —
// a sub-deadband move is not applied AND not published, so dashboards
// never show a pre-clamp target.
func TestMemRatioHysteresisPublishing(t *testing.T) {
	a := newTestAdCache(t, Config{MemtableArbitration: true, InitialMemRatio: 0.3})
	base := a.CurrentParams()
	if base.MemRatio != 0.3 {
		t.Fatalf("initial MemRatio = %f, want 0.3", base.MemRatio)
	}

	p := base
	p.MemRatio = 0.315 // inside the ±0.02 deadband
	applied := a.applyParams(p)
	if applied.MemRatio != base.MemRatio {
		t.Fatalf("sub-deadband move applied: %f", applied.MemRatio)
	}
	if got := a.CurrentParams().MemRatio; got != base.MemRatio {
		t.Fatalf("published MemRatio %f is the pre-clamp target", got)
	}

	p.MemRatio = 0.4 // beyond the deadband: applies and publishes
	applied = a.applyParams(p)
	if applied.MemRatio != 0.4 {
		t.Fatalf("real move suppressed: %f", applied.MemRatio)
	}
	if got := a.CurrentParams().MemRatio; got != 0.4 {
		t.Fatalf("published MemRatio = %f, want 0.4", got)
	}
}

// TestBudgetsPartitionCapacity: the three-component ledger always
// partitions the configured capacity (targets sum to Capacity, modulo
// integer truncation at the two splits).
func TestBudgetsPartitionCapacity(t *testing.T) {
	a := newTestAdCache(t, Config{Capacity: 1 << 20, MemtableArbitration: true, InitialMemRatio: 0.25})
	var sum int64
	for _, b := range a.Budgets() {
		if b.Component == "memtable" {
			sum += b.TargetBytes
		}
	}
	sum += a.Block().Capacity() + a.Range().Capacity()
	if diff := (int64(1) << 20) - sum; diff < 0 || diff > 2 {
		t.Fatalf("budget targets sum to %d, want %d (±2 truncation)", sum, int64(1)<<20)
	}
}
