// Observability for the cache strategies: every strategy answers the
// engine's unified Counters() query (so nothing above this package ever
// type-switches on concrete strategies), and registers its Prometheus
// series — aggregate and per-shard — on a metrics.Registry. AdCache
// additionally exposes its controller state: the RL reward, losses, and
// the tuned parameters of the latest window.
package core

import (
	"fmt"

	"adcache/internal/cache/blockcache"
	"adcache/internal/cache/kvcache"
	"adcache/internal/cache/rangecache"
	"adcache/internal/lsm"
	"adcache/internal/metrics"
)

// blockCounters fills the block-cache fields of an lsm.CacheCounters.
func blockCounters(c *lsm.CacheCounters, st blockcache.Stats) {
	c.BlockHits, c.BlockMisses, c.BlockEvictions = st.Hits, st.Misses, st.Evictions
	c.BlockUsed, c.BlockLogicalUsed, c.BlockCapacity = st.Used, st.LogicalUsed, st.Capacity
}

// rangeCounters fills the range-cache fields of an lsm.CacheCounters.
func rangeCounters(c *lsm.CacheCounters, st rangecache.Stats) {
	c.RangeGetHits, c.RangeGetMisses = st.GetHits, st.GetMisses
	c.RangeScanHits, c.RangeScanMisses = st.ScanHits, st.ScanMisses
	c.RangePartials, c.RangeEvictions = st.ScanPartials, st.Evictions
	c.RangeUsed, c.RangeCapacity, c.RangeEntries = st.Used, st.Capacity, st.Entries
}

// Counters implements lsm.CacheStrategy.
func (b *BlockOnly) Counters() lsm.CacheCounters {
	var c lsm.CacheCounters
	blockCounters(&c, b.cache.Stats())
	return c
}

// Counters implements lsm.CacheStrategy.
func (k *KVOnly) Counters() lsm.CacheCounters {
	st := k.cache.Stats()
	return lsm.CacheCounters{KVHits: st.Hits, KVMisses: st.Misses, KVEvictions: st.Evictions}
}

// Counters implements lsm.CacheStrategy.
func (r *RangeOnly) Counters() lsm.CacheCounters {
	var c lsm.CacheCounters
	rangeCounters(&c, r.cache.Stats())
	return c
}

// Counters implements lsm.CacheStrategy.
func (a *AdCache) Counters() lsm.CacheCounters {
	var c lsm.CacheCounters
	blockCounters(&c, a.block.Stats())
	rangeCounters(&c, a.rng.Stats())
	return c
}

// shardSeries registers one labeled per-shard series: value(i) reads shard
// i's scalar at exposition time.
func shardSeries(reg *metrics.Registry, name, help string, shards int, counter bool, value func(i int) int64) {
	for i := 0; i < shards; i++ {
		i := i
		series := fmt.Sprintf("%s{shard=%q}", name, fmt.Sprint(i))
		if counter {
			reg.CounterFunc(series, help, func() int64 { return value(i) })
		} else {
			reg.GaugeFunc(series, help, func() float64 { return float64(value(i)) })
		}
	}
}

// registerBlockCacheMetrics exports a block cache's aggregate and per-shard
// counters under the cache_block_* prefix.
func registerBlockCacheMetrics(reg *metrics.Registry, c *blockcache.Cache) {
	reg.CounterFunc("cache_block_hits_total", "Block cache hits.",
		func() int64 { return c.Stats().Hits })
	reg.CounterFunc("cache_block_misses_total", "Block cache misses.",
		func() int64 { return c.Stats().Misses })
	reg.CounterFunc("cache_block_inserts_total", "Blocks admitted into the block cache.",
		func() int64 { return c.Stats().Inserts })
	reg.CounterFunc("cache_block_evictions_total", "Blocks evicted from the block cache.",
		func() int64 { return c.Stats().Evictions })
	reg.GaugeFunc("cache_block_used_bytes", "Physical (resident) bytes held by the block cache.",
		func() float64 { return float64(c.Stats().Used) })
	reg.GaugeFunc("cache_block_logical_bytes", "Decoded size of the blocks held by the block cache.",
		func() float64 { return float64(c.Stats().LogicalUsed) })
	reg.GaugeFunc("cache_block_capacity_bytes", "Block cache byte budget (charges physical bytes).",
		func() float64 { return float64(c.Stats().Capacity) })
	reg.GaugeFunc("cache_block_entries", "Blocks held by the block cache.",
		func() float64 { return float64(c.Stats().Blocks) })

	shards := len(c.ShardStats())
	shardSeries(reg, "cache_block_shard_hits_total", "Block cache hits by shard.",
		shards, true, func(i int) int64 { return c.ShardStats()[i].Hits })
	shardSeries(reg, "cache_block_shard_misses_total", "Block cache misses by shard.",
		shards, true, func(i int) int64 { return c.ShardStats()[i].Misses })
	shardSeries(reg, "cache_block_shard_evictions_total", "Block cache evictions by shard.",
		shards, true, func(i int) int64 { return c.ShardStats()[i].Evictions })
	shardSeries(reg, "cache_block_shard_used_bytes", "Bytes held, by shard.",
		shards, false, func(i int) int64 { return c.ShardStats()[i].Used })
}

// registerRangeCacheMetrics exports a range cache's aggregate and per-shard
// counters under the cache_range_* prefix. With split keys configured,
// shard i covers the i-th key range in split order.
func registerRangeCacheMetrics(reg *metrics.Registry, c *rangecache.Cache) {
	reg.CounterFunc("cache_range_get_hits_total", "Range cache point-lookup hits.",
		func() int64 { return c.Stats().GetHits })
	reg.CounterFunc("cache_range_get_misses_total", "Range cache point-lookup misses.",
		func() int64 { return c.Stats().GetMisses })
	reg.CounterFunc("cache_range_scan_hits_total", "Range cache full scan hits.",
		func() int64 { return c.Stats().ScanHits })
	reg.CounterFunc("cache_range_scan_misses_total", "Range cache scan misses.",
		func() int64 { return c.Stats().ScanMisses })
	reg.CounterFunc("cache_range_scan_partials_total", "Scans with a covered prefix but incomplete coverage.",
		func() int64 { return c.Stats().ScanPartials })
	reg.CounterFunc("cache_range_evictions_total", "Entries evicted from the range cache.",
		func() int64 { return c.Stats().Evictions })
	reg.GaugeFunc("cache_range_used_bytes", "Bytes held by the range cache.",
		func() float64 { return float64(c.Stats().Used) })
	reg.GaugeFunc("cache_range_capacity_bytes", "Range cache byte budget.",
		func() float64 { return float64(c.Stats().Capacity) })
	reg.GaugeFunc("cache_range_entries", "Entries held by the range cache.",
		func() float64 { return float64(c.Stats().Entries) })

	shards := len(c.ShardStats())
	shardSeries(reg, "cache_range_shard_get_hits_total", "Range cache point hits by key-range shard.",
		shards, true, func(i int) int64 { return c.ShardStats()[i].GetHits })
	shardSeries(reg, "cache_range_shard_scan_hits_total", "Range cache scan hits by key-range shard.",
		shards, true, func(i int) int64 { return c.ShardStats()[i].ScanHits })
	shardSeries(reg, "cache_range_shard_evictions_total", "Range cache evictions by key-range shard.",
		shards, true, func(i int) int64 { return c.ShardStats()[i].Evictions })
	shardSeries(reg, "cache_range_shard_used_bytes", "Bytes held, by key-range shard.",
		shards, false, func(i int) int64 { return c.ShardStats()[i].Used })
}

// registerKVCacheMetrics exports a KV cache's aggregate and per-shard
// counters under the cache_kv_* prefix.
func registerKVCacheMetrics(reg *metrics.Registry, c *kvcache.Cache) {
	reg.CounterFunc("cache_kv_hits_total", "KV cache hits.",
		func() int64 { return c.Stats().Hits })
	reg.CounterFunc("cache_kv_misses_total", "KV cache misses.",
		func() int64 { return c.Stats().Misses })
	reg.CounterFunc("cache_kv_evictions_total", "Entries evicted from the KV cache.",
		func() int64 { return c.Stats().Evictions })
	reg.GaugeFunc("cache_kv_used_bytes", "Bytes held by the KV cache.",
		func() float64 { return float64(c.Stats().Used) })
	reg.GaugeFunc("cache_kv_capacity_bytes", "KV cache byte budget.",
		func() float64 { return float64(c.Stats().Capacity) })
	reg.GaugeFunc("cache_kv_entries", "Entries held by the KV cache.",
		func() float64 { return float64(c.Stats().Entries) })

	shards := len(c.ShardStats())
	shardSeries(reg, "cache_kv_shard_hits_total", "KV cache hits by shard.",
		shards, true, func(i int) int64 { return c.ShardStats()[i].Hits })
	shardSeries(reg, "cache_kv_shard_misses_total", "KV cache misses by shard.",
		shards, true, func(i int) int64 { return c.ShardStats()[i].Misses })
	shardSeries(reg, "cache_kv_shard_evictions_total", "KV cache evictions by shard.",
		shards, true, func(i int) int64 { return c.ShardStats()[i].Evictions })
}

// RegisterMetrics exports the strategy's series on reg.
func (b *BlockOnly) RegisterMetrics(reg *metrics.Registry) {
	registerBlockCacheMetrics(reg, b.cache)
}

// RegisterMetrics exports the strategy's series on reg.
func (k *KVOnly) RegisterMetrics(reg *metrics.Registry) {
	registerKVCacheMetrics(reg, k.cache)
}

// RegisterMetrics exports the strategy's series on reg.
func (r *RangeOnly) RegisterMetrics(reg *metrics.Registry) {
	registerRangeCacheMetrics(reg, r.cache)
}

// TuningState is the controller's view of the most recently closed window:
// the learning signal (reward, losses, adaptive learning rate) next to the
// parameters it produced. Served under /stats and as adcache_* gauges.
type TuningState struct {
	Windows    int64   `json:"windows"`
	AgentSteps int64   `json:"agent_steps"`
	HEstimate  float64 `json:"h_estimate"`
	HSmoothed  float64 `json:"h_smoothed"`
	// WriteEff is the last window's write efficiency (user bytes per
	// SSTable byte written, the reciprocal of windowed write
	// amplification). Zero unless memtable arbitration is enabled.
	WriteEff   float64 `json:"write_eff,omitempty"`
	Reward     float64 `json:"reward"`
	ActorLR    float64 `json:"actor_lr"`
	ActorLoss  float64 `json:"actor_loss"`
	CriticLoss float64 `json:"critic_loss"`
	Params     Params  `json:"params"`
}

// Budget is one component of the unified memory ledger: the arbiter's
// byte target for it and what it actually holds. Components are
// "memtable" (target = Capacity × MemRatio, actual = active + immutable
// physical bytes), "blockcache" and "rangecache" (targets are the
// post-split cache capacities, actuals the resident bytes).
type Budget struct {
	Component   string `json:"component"`
	TargetBytes int64  `json:"target_bytes"`
	ActualBytes int64  `json:"actual_bytes"`
}

// Budgets reports the unified ledger's per-component targets and actuals.
// The memtable row is all-zero when no DB is bound or arbitration is off.
// Safe for concurrent use (scrape-time).
func (a *AdCache) Budgets() []Budget {
	p := a.CurrentParams()
	info := a.dbWriteInfo()
	bs := a.block.Stats()
	rs := a.rng.Stats()
	return []Budget{
		{Component: "memtable",
			TargetBytes: int64(float64(a.cfg.Capacity) * p.MemRatio),
			ActualBytes: info.MemBytes + info.ImmBytes},
		{Component: "blockcache", TargetBytes: bs.Capacity, ActualBytes: bs.Used},
		{Component: "rangecache", TargetBytes: rs.Capacity, ActualBytes: rs.Used},
	}
}

// budgetFor returns the named component's Budget row (zero value when
// unknown).
func (a *AdCache) budgetFor(component string) Budget {
	for _, b := range a.Budgets() {
		if b.Component == component {
			return b
		}
	}
	return Budget{}
}

// TuningState returns the controller state of the last closed window. Before
// the first window closes it is the zero value.
func (a *AdCache) TuningState() TuningState {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.tuning
}

// RegisterMetrics exports the component caches' series plus the controller
// gauges. Scrapes never touch the tuner-owned agent: every adcache_* value
// reads either the atomic params or the mu-guarded TuningState copy that
// tuneOnce writes at each window boundary.
func (a *AdCache) RegisterMetrics(reg *metrics.Registry) {
	registerBlockCacheMetrics(reg, a.block)
	registerRangeCacheMetrics(reg, a.rng)

	reg.GaugeFunc("adcache_range_ratio", "Fraction of the cache budget held by the range cache.",
		func() float64 { return a.CurrentParams().RangeRatio })
	reg.GaugeFunc("adcache_mem_ratio", "Fraction of the unified budget allotted to memtables (0 without arbitration).",
		func() float64 { return a.CurrentParams().MemRatio })
	for _, comp := range []string{"memtable", "blockcache", "rangecache"} {
		comp := comp
		reg.GaugeFunc(fmt.Sprintf("adcache_budget_target_bytes{component=%q}", comp),
			"Unified-ledger byte target for the component.",
			func() float64 { return float64(a.budgetFor(comp).TargetBytes) })
		reg.GaugeFunc(fmt.Sprintf("adcache_budget_actual_bytes{component=%q}", comp),
			"Bytes the component actually holds.",
			func() float64 { return float64(a.budgetFor(comp).ActualBytes) })
	}
	reg.GaugeFunc("adcache_write_eff", "Last window's write efficiency (1/write-amplification; unified arbitration only).",
		func() float64 { return a.TuningState().WriteEff })
	reg.GaugeFunc("adcache_point_threshold", "Frequency-score threshold for point admission.",
		func() float64 { return a.CurrentParams().PointThreshold })
	reg.GaugeFunc("adcache_scan_a", "Full-admission scan length threshold a, in keys.",
		func() float64 { return float64(a.CurrentParams().ScanA) })
	reg.GaugeFunc("adcache_scan_b", "Partial-admission aggressiveness b.",
		func() float64 { return a.CurrentParams().ScanB })

	reg.CounterFunc("adcache_windows_total", "Control windows processed by the tuner.",
		func() int64 { return a.Windows() })
	reg.CounterFunc("adcache_agent_steps_total", "Actor-critic updates performed.",
		func() int64 { return a.TuningState().AgentSteps })
	reg.GaugeFunc("adcache_reward", "Last window's learning-rate signal Δh/h.",
		func() float64 { return a.TuningState().Reward })
	reg.GaugeFunc("adcache_h_estimate", "Last window's I/O-model hit-rate estimate.",
		func() float64 { return a.TuningState().HEstimate })
	reg.GaugeFunc("adcache_h_smoothed", "Smoothed hit-rate estimate (the critic target).",
		func() float64 { return a.TuningState().HSmoothed })
	reg.GaugeFunc("adcache_actor_lr", "Adaptive actor learning rate.",
		func() float64 { return a.TuningState().ActorLR })
	reg.GaugeFunc("adcache_actor_loss", "Actor policy-gradient surrogate loss, last update.",
		func() float64 { return a.TuningState().ActorLoss })
	reg.GaugeFunc("adcache_critic_loss", "Critic TD squared error, last update.",
		func() float64 { return a.TuningState().CriticLoss })
}
