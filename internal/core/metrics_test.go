package core

import (
	"fmt"
	"strings"
	"testing"

	"adcache/internal/lsm"
	"adcache/internal/metrics"
)

// driveWindows pushes enough point traffic through the strategy callbacks
// to close n control windows (SyncTuning runs the controller inline).
func driveWindows(a *AdCache, n int) {
	ops := n * a.cfg.WindowSize
	for i := 0; i < ops; i++ {
		k := []byte(fmt.Sprintf("k%06d", i%64))
		if _, _, ok := a.GetCached(k); !ok {
			a.OnPointResult(k, []byte("value"), 2)
		}
	}
}

// TestMetricsRLTuningState checks that closing windows publishes the
// controller view: reward, losses, learning rate, and the applied params.
func TestMetricsRLTuningState(t *testing.T) {
	a := newTestAdCache(t, Config{WindowSize: 100})
	if ts := a.TuningState(); ts.Windows != 0 {
		t.Fatalf("tuning state before first window = %+v", ts)
	}
	driveWindows(a, 5)

	ts := a.TuningState()
	if ts.Windows != a.Windows() || ts.Windows < 5 {
		t.Fatalf("windows = %d (counter %d), want >= 5", ts.Windows, a.Windows())
	}
	// Agent updates start one window late (it needs a previous action).
	if ts.AgentSteps < ts.Windows-1 || ts.AgentSteps > ts.Windows {
		t.Errorf("agent steps = %d for %d windows", ts.AgentSteps, ts.Windows)
	}
	if ts.HEstimate <= 0 || ts.HSmoothed <= 0 {
		t.Errorf("hit-rate estimates not published: %+v", ts)
	}
	if ts.ActorLR <= 0 {
		t.Errorf("actor lr = %v", ts.ActorLR)
	}
	if ts.CriticLoss == 0 {
		t.Errorf("critic loss never published")
	}
	if ts.Params != a.CurrentParams() {
		t.Errorf("tuning params %+v diverge from applied %+v", ts.Params, a.CurrentParams())
	}
}

// TestMetricsRLGauges checks the adcache_* series end to end: registered
// via the same RegisterMetrics upgrade the engine uses, scraped from the
// registry, matching the mu-guarded state.
func TestMetricsRLGauges(t *testing.T) {
	a := newTestAdCache(t, Config{WindowSize: 100})
	reg := metrics.NewRegistry()
	var s lsm.CacheStrategy = a
	s.(interface{ RegisterMetrics(*metrics.Registry) }).RegisterMetrics(reg)
	driveWindows(a, 3)

	snap := reg.Snapshot()
	if got := snap["adcache_windows_total"].(int64); got != a.Windows() {
		t.Errorf("adcache_windows_total = %v, want %d", got, a.Windows())
	}
	ts := a.TuningState()
	for name, want := range map[string]float64{
		"adcache_range_ratio":     a.CurrentParams().RangeRatio,
		"adcache_point_threshold": a.CurrentParams().PointThreshold,
		"adcache_scan_b":          a.CurrentParams().ScanB,
		"adcache_reward":          ts.Reward,
		"adcache_h_estimate":      ts.HEstimate,
		"adcache_h_smoothed":      ts.HSmoothed,
		"adcache_actor_lr":        ts.ActorLR,
		"adcache_actor_loss":      ts.ActorLoss,
		"adcache_critic_loss":     ts.CriticLoss,
	} {
		got, ok := snap[name].(float64)
		if !ok || got != want {
			t.Errorf("%s = %v (ok=%v), want %v", name, got, ok, want)
		}
	}
	// Cache traffic shows up in the aggregate and per-shard series.
	if hits := snap["cache_range_get_hits_total"].(int64); hits == 0 {
		t.Error("cache_range_get_hits_total = 0 after repeated lookups")
	}
	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), `cache_block_shard_hits_total{shard="0"}`) {
		t.Error("per-shard block series missing from Prometheus output")
	}
}

// TestMetricsCountersUnified checks every strategy answers Counters() with
// the fields its caches own — the interface that replaced the type-switch.
func TestMetricsCountersUnified(t *testing.T) {
	key, val := []byte("k"), []byte("v")

	b := NewBlockOnly(1 << 20)
	b.BlockCache().Insert(7, 0, []byte("block"), 0, false)
	if _, ok := b.BlockCache().Get(7, 0); !ok {
		t.Fatal("block cache miss after insert")
	}
	if c := b.Counters(); c.BlockHits != 1 || c.BlockCapacity != 1<<20 || c.KVHits != 0 {
		t.Errorf("BlockOnly counters = %+v", c)
	}

	k := NewKVOnly(1 << 20)
	k.OnPointResult(key, val, 1)
	k.GetCached(key)
	k.GetCached([]byte("missing"))
	if c := k.Counters(); c.KVHits != 1 || c.KVMisses != 1 || c.BlockHits != 0 {
		t.Errorf("KVOnly counters = %+v", c)
	}

	r := NewRangeOnly(1<<20, "lru", nil)
	r.OnPointResult(key, val, 1)
	r.GetCached(key)
	if c := r.Counters(); c.RangeGetHits != 1 || c.RangeEntries != 1 {
		t.Errorf("RangeOnly counters = %+v", c)
	}

	a := newTestAdCache(t, Config{DisableAdmission: true})
	a.OnPointResult(key, val, 1)
	a.GetCached(key)
	if c := a.Counters(); c.RangeGetHits != 1 || c.BlockCapacity == 0 {
		t.Errorf("AdCache counters = %+v", c)
	}
}
