// Package core implements AdCache — the paper's contribution — and the
// baseline cache strategies it is evaluated against. Every strategy
// satisfies lsm.CacheStrategy and manages a fixed byte budget:
//
//	BlockOnly           RocksDB's default block cache
//	KVOnly              point-result LRU cache ("KV Cache")
//	RangeOnly           Range Cache (ICDE'24), pluggable eviction
//	                    (LRU / LeCaR / Cacheus)
//	AdCache             RL-partitioned block+range caches with admission
//	                    control
package core

import (
	"adcache/internal/cache/blockcache"
	"adcache/internal/cache/kvcache"
	"adcache/internal/cache/rangecache"
	"adcache/internal/lsm"
	"adcache/internal/sstable"
)

// BlockOnly is the RocksDB-default strategy: all memory to a sharded LRU
// block cache; no result caching.
type BlockOnly struct {
	cache *blockcache.Cache
}

// NewBlockOnly returns a BlockOnly strategy with the given byte budget.
func NewBlockOnly(capacity int64) *BlockOnly {
	return &BlockOnly{cache: blockcache.New(capacity)}
}

// GetCached implements lsm.CacheStrategy.
func (*BlockOnly) GetCached([]byte) ([]byte, bool, bool) { return nil, false, false }

// ScanCached implements lsm.CacheStrategy.
func (*BlockOnly) ScanCached([]byte, int) ([]lsm.KV, bool) { return nil, false }

// OnPointResult implements lsm.CacheStrategy.
func (*BlockOnly) OnPointResult([]byte, []byte, int) {}

// OnScanResult implements lsm.CacheStrategy.
func (*BlockOnly) OnScanResult([]byte, []lsm.ScanEntry, int) {}

// OnWrite implements lsm.CacheStrategy.
func (*BlockOnly) OnWrite([]byte, []byte, bool) {}

// BlockCache implements lsm.CacheStrategy.
func (b *BlockOnly) BlockCache() sstable.BlockCache { return b.cache }

// ScanBlockFillQuota implements lsm.CacheStrategy.
func (*BlockOnly) ScanBlockFillQuota(int) (int64, bool) { return 0, false }

// OnCompaction implements lsm.CacheStrategy.
func (*BlockOnly) OnCompaction([]uint64, []uint64) {}

// Block exposes the underlying cache for metrics.
func (b *BlockOnly) Block() *blockcache.Cache { return b.cache }

// KVOnly is the paper's "KV Cache" baseline: an LRU over point-lookup
// results. Scans receive no caching at all.
type KVOnly struct {
	cache *kvcache.Cache
}

// NewKVOnly returns a KVOnly strategy with the given byte budget.
func NewKVOnly(capacity int64) *KVOnly {
	return &KVOnly{cache: kvcache.New(capacity)}
}

// GetCached implements lsm.CacheStrategy.
func (k *KVOnly) GetCached(key []byte) ([]byte, bool, bool) {
	if v, ok := k.cache.Get(key); ok {
		return v, true, true
	}
	return nil, false, false
}

// ScanCached implements lsm.CacheStrategy.
func (*KVOnly) ScanCached([]byte, int) ([]lsm.KV, bool) { return nil, false }

// OnPointResult implements lsm.CacheStrategy.
func (k *KVOnly) OnPointResult(key, value []byte, _ int) {
	if value != nil {
		k.cache.Put(key, value)
	}
}

// OnScanResult implements lsm.CacheStrategy.
func (*KVOnly) OnScanResult([]byte, []lsm.ScanEntry, int) {}

// OnWrite implements lsm.CacheStrategy: writes invalidate, matching
// RocksDB's row cache — the cache stores lookup results, not write traffic,
// so a written key re-enters only when it is read again.
func (k *KVOnly) OnWrite(key, value []byte, deleted bool) {
	k.cache.Invalidate(key)
}

// BlockCache implements lsm.CacheStrategy.
func (*KVOnly) BlockCache() sstable.BlockCache { return nil }

// ScanBlockFillQuota implements lsm.CacheStrategy.
func (*KVOnly) ScanBlockFillQuota(int) (int64, bool) { return 0, false }

// OnCompaction implements lsm.CacheStrategy.
func (*KVOnly) OnCompaction([]uint64, []uint64) {}

// KV exposes the underlying cache for metrics.
func (k *KVOnly) KV() *kvcache.Cache { return k.cache }

// RangeOnly is the Range Cache baseline (ICDE'24): all memory to a
// result cache; the eviction policy is pluggable, yielding the paper's
// "Range Cache", "Range Cache with LeCaR" and "Range Cache with Cacheus"
// configurations.
type RangeOnly struct {
	cache *rangecache.Cache
}

// NewRangeOnly returns a RangeOnly strategy. policy is "lru", "lecar" or
// "cacheus"; splitKeys optionally shard the cache (§4.4).
func NewRangeOnly(capacity int64, policy string, splitKeys []string) *RangeOnly {
	return &RangeOnly{cache: rangecache.New(rangecache.Options{
		Capacity:  capacity,
		Policy:    policy,
		SplitKeys: splitKeys,
	})}
}

// GetCached implements lsm.CacheStrategy.
func (r *RangeOnly) GetCached(key []byte) ([]byte, bool, bool) {
	if v, ok := r.cache.Get(key); ok {
		return v, true, true
	}
	return nil, false, false
}

// ScanCached implements lsm.CacheStrategy.
func (r *RangeOnly) ScanCached(start []byte, n int) ([]lsm.KV, bool) {
	kvs, ok := r.cache.Scan(start, n)
	if !ok {
		return nil, false
	}
	out := make([]lsm.KV, len(kvs))
	for i, kv := range kvs {
		out[i] = lsm.KV{Key: kv.Key, Value: kv.Value}
	}
	return out, true
}

// OnPointResult implements lsm.CacheStrategy: all found results are
// admitted (the baseline has no admission control).
func (r *RangeOnly) OnPointResult(key, value []byte, _ int) {
	if value != nil {
		r.cache.InsertPoint(key, value)
	}
}

// OnScanResult implements lsm.CacheStrategy: the whole result is admitted
// (all-or-nothing caching, the behaviour AdCache's partial admission fixes).
func (r *RangeOnly) OnScanResult(start []byte, entries []lsm.ScanEntry, _ int) {
	r.cache.InsertScan(start, toRangeKVs(entries))
}

// OnWrite implements lsm.CacheStrategy.
func (r *RangeOnly) OnWrite(key, value []byte, deleted bool) {
	if deleted {
		r.cache.Delete(key)
	} else {
		r.cache.Put(key, value)
	}
}

// BlockCache implements lsm.CacheStrategy: the pure baseline has none.
func (*RangeOnly) BlockCache() sstable.BlockCache { return nil }

// ScanBlockFillQuota implements lsm.CacheStrategy.
func (*RangeOnly) ScanBlockFillQuota(int) (int64, bool) { return 0, false }

// OnCompaction implements lsm.CacheStrategy: result caches are immune.
func (*RangeOnly) OnCompaction([]uint64, []uint64) {}

// Range exposes the underlying cache for metrics.
func (r *RangeOnly) Range() *rangecache.Cache { return r.cache }

func toRangeKVs(entries []lsm.ScanEntry) []rangecache.KV {
	out := make([]rangecache.KV, len(entries))
	for i, e := range entries {
		out[i] = rangecache.KV{Key: e.Key, Value: e.Value}
	}
	return out
}
