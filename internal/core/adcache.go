package core

import (
	"sync"
	"sync/atomic"

	"adcache/internal/cache/blockcache"
	"adcache/internal/cache/rangecache"
	"adcache/internal/lsm"
	"adcache/internal/rl"
	"adcache/internal/sketch"
	"adcache/internal/sstable"
	"adcache/internal/stats"
	"adcache/internal/vfs"
)

// Params are the applied cache-control parameters for the current window:
// the actor's decoded output (one window behind the latest statistics,
// §4.2).
type Params struct {
	// RangeRatio is the fraction of the cache budget held by the range
	// cache (the block cache holds the rest). With memtable arbitration the
	// cache budget is Capacity minus the memtable share.
	RangeRatio float64
	// PointThreshold is the absolute normalized-frequency score a missed
	// key must reach to be admitted (§3.4).
	PointThreshold float64
	// ScanA is the full-admission scan length threshold a, in keys.
	ScanA int
	// ScanB is the partial-admission aggressiveness b ∈ [0,1].
	ScanB float64
	// MemRatio is the fraction of the unified budget allotted to the
	// active + immutable memtables. Always 0 unless
	// Config.MemtableArbitration is set.
	MemRatio float64
}

// Config configures an AdCache instance.
type Config struct {
	// Capacity is the total byte budget shared by block and range caches —
	// and, with MemtableArbitration, by the memtables too: one unified
	// ledger the agent moves bytes across as the read/write mix drifts.
	Capacity int64

	// MemtableArbitration extends the arbiter across the write side:
	// the action space gains a memtable-share dimension, the state vector
	// gains write-side features, and the bound DB's flush threshold tracks
	// the agent's allocation (via lsm.DB.SetMemTableBudget; shrinks apply
	// at the next memtable rotation). The reward becomes mix-weighted
	// between read hit rate and write efficiency (1/write-amplification).
	MemtableArbitration bool
	// InitialMemRatio seeds the memtable share before the agent's first
	// decision (default 0.25; meaningful only with MemtableArbitration,
	// and pinned there by DisablePartitioning).
	InitialMemRatio float64
	// MemRatioMin and MemRatioMax bound the decoded memtable share
	// (defaults 0.05 and 0.6): the engine always keeps a working write
	// buffer, and the caches are never starved below 40% of the budget.
	MemRatioMin float64
	MemRatioMax float64
	// WindowSize is the operations-per-window control interval
	// (paper default: 1000).
	WindowSize int
	// Alpha is the reward smoothing factor (paper default: 0.9).
	Alpha float64
	// InitialRangeRatio seeds the boundary before the agent's first
	// decision (and fixes it when DisablePartitioning is set).
	InitialRangeRatio float64
	// MaxScanLen normalises the ScanA action (default 128).
	MaxScanLen int
	// PointThresholdScale maps the actor's [0,1] threshold action onto
	// normalized-frequency scores, which concentrate near zero
	// (default 0.01).
	PointThresholdScale float64
	// EvictionPolicy selects the range cache's eviction policy
	// (default "lru").
	EvictionPolicy string
	// SplitKeys optionally shard the range cache (§4.4).
	SplitKeys []string

	// DisableAdmission turns off both point and scan admission control
	// (Figure 11b's "partitioning only" ablation).
	DisableAdmission bool
	// DisablePartitioning freezes the boundary at InitialRangeRatio
	// (Figure 11b's "admission only" ablation).
	DisablePartitioning bool

	// RL configures the agent; zero value uses the paper's defaults.
	RL rl.Config
	// ModelFS/ModelPath optionally load pretrained weights (§3.6).
	ModelFS   vfs.FS
	ModelPath string
	// PretrainSynthetic, when no model is loaded, runs the synthetic
	// supervised pretraining at construction (§3.6's "manually crafted"
	// representative workloads).
	PretrainSynthetic bool

	// RecordTrace keeps a per-window trace of rewards and parameters
	// (used to regenerate Figure 10).
	RecordTrace bool

	// DisableHysteresis applies every ratio action to the boundary verbatim,
	// including exploration jitter (ablation: quantifies the eviction churn
	// §3.5 warns about).
	DisableHysteresis bool

	// SyncTuning runs the control step inline on the operation that closes
	// each window instead of on the background goroutine. Production mode
	// is asynchronous (§4.2: learning never blocks serving, late windows
	// are skipped); experiments use synchronous tuning so every window is
	// processed and runs are machine-speed independent.
	SyncTuning bool

	// Shape provides the I/O model parameters when no DB is bound.
	Shape stats.Shape
}

func (c Config) withDefaults() Config {
	if c.WindowSize <= 0 {
		c.WindowSize = 1000
	}
	if c.Alpha <= 0 {
		c.Alpha = 0.9
	}
	if c.InitialRangeRatio <= 0 {
		c.InitialRangeRatio = 0.5
	}
	if c.MaxScanLen <= 0 {
		c.MaxScanLen = 128
	}
	if c.PointThresholdScale <= 0 {
		c.PointThresholdScale = 0.01
	}
	if c.EvictionPolicy == "" {
		c.EvictionPolicy = "lru"
	}
	if c.InitialMemRatio <= 0 {
		c.InitialMemRatio = 0.25
	}
	if c.MemRatioMin <= 0 {
		c.MemRatioMin = 0.05
	}
	if c.MemRatioMax <= 0 {
		c.MemRatioMax = 0.6
	}
	if c.RL.ActorLR == 0 && c.RL.CriticLR == 0 && c.RL.Seed == 0 {
		frozen := c.RL.Frozen
		c.RL = rl.DefaultConfig()
		c.RL.Frozen = frozen
	}
	if c.Shape.Levels == 0 {
		c.Shape = stats.Shape{Levels: 3, R0Max: 8, EntriesPerBlock: 16, BloomFPR: 0.008}
	}
	return c
}

// WindowTrace records one control window for experiment plots.
type WindowTrace struct {
	Window    stats.Window
	HEstimate float64
	HSmoothed float64
	Reward    float64
	Params    Params
	ActorLR   float64
}

// AdCache is the paper's contribution: block and range caches under one
// budget with an RL-driven boundary and admission control. It implements
// lsm.CacheStrategy and is safe for concurrent use; learning runs on a
// background goroutine decoupled from the serving path (§4.2).
type AdCache struct {
	cfg Config

	block     *blockcache.Cache
	rng       *rangecache.Cache
	cms       *sketch.CMS
	collector *stats.Collector
	agent     *rl.Agent

	params atomic.Value // Params

	opCount atomic.Int64
	tuneCh  chan struct{}
	done    chan struct{}
	stopped sync.Once
	tuneMu  sync.Mutex // serialises tuneOnce in SyncTuning mode

	// Bound DB (optional): provides live LSM shape for the I/O model.
	mu       sync.Mutex
	db       *lsm.DB
	smoothed float64
	haveInit bool
	trace    []WindowTrace
	tuning   TuningState // last closed window's controller view (metrics)

	lastBlockStats blockcache.Stats
	// lastWriteInfo is the previous window's write-side snapshot, owned by
	// the tuner (like lastBlockStats) for per-window deltas.
	lastWriteInfo lsm.WriteSideInfo
	windowsClosed atomic.Int64
}

// New returns a started AdCache. Call Close to stop its tuning goroutine.
func New(cfg Config) (*AdCache, error) {
	cfg = cfg.withDefaults()
	a := &AdCache{
		cfg:       cfg,
		cms:       sketch.New(4, 1<<14),
		collector: &stats.Collector{},
		agent:     rl.New(cfg.RL),
		tuneCh:    make(chan struct{}, 1),
		done:      make(chan struct{}),
	}
	if cfg.ModelFS != nil && cfg.ModelPath != "" {
		if err := a.agent.Load(cfg.ModelFS, cfg.ModelPath); err != nil {
			return nil, err
		}
	} else if cfg.PretrainSynthetic {
		PretrainAgent(a.agent, cfg.MaxScanLen, 7)
	}
	initialMemRatio := 0.0
	if cfg.MemtableArbitration {
		initialMemRatio = cfg.InitialMemRatio
	}
	cacheBytes := cfg.Capacity - int64(float64(cfg.Capacity)*initialMemRatio)
	rangeBytes := int64(float64(cacheBytes) * cfg.InitialRangeRatio)
	// Shard sizing uses the full budget (the boundary may move the whole
	// budget to the block side later); the initial split applies via Resize.
	a.block = blockcache.New(cfg.Capacity)
	a.block.Resize(cacheBytes - rangeBytes)
	a.rng = rangecache.New(rangecache.Options{
		Capacity:  rangeBytes,
		Policy:    cfg.EvictionPolicy,
		SplitKeys: cfg.SplitKeys,
	})
	a.params.Store(Params{
		RangeRatio:     cfg.InitialRangeRatio,
		PointThreshold: 0,
		ScanA:          16, // paper: initialised to the short-scan length
		ScanB:          0.5,
		MemRatio:       initialMemRatio,
	})
	if !cfg.SyncTuning {
		go a.tuneLoop()
	}
	return a, nil
}

// Bind attaches the DB so the tuner can read live LSM shape (levels, runs,
// entries per block) for the I/O-estimate reward — and, with memtable
// arbitration, pushes the current memtable allocation into the engine's
// dynamic flush threshold. Optional but recommended (required for
// MemtableArbitration to have any effect).
func (a *AdCache) Bind(db *lsm.DB) {
	a.mu.Lock()
	a.db = db
	a.mu.Unlock()
	if a.cfg.MemtableArbitration && db != nil {
		db.SetMemTableBudget(int64(float64(a.cfg.Capacity) * a.CurrentParams().MemRatio))
	}
}

// Close stops the background tuner.
func (a *AdCache) Close() {
	a.stopped.Do(func() { close(a.done) })
}

// CurrentParams returns the parameters in force for the current window.
func (a *AdCache) CurrentParams() Params { return a.params.Load().(Params) }

// Agent exposes the RL agent (pretraining tools).
func (a *AdCache) Agent() *rl.Agent { return a.agent }

// Trace returns the recorded per-window trace (RecordTrace must be set).
func (a *AdCache) Trace() []WindowTrace {
	a.mu.Lock()
	defer a.mu.Unlock()
	return append([]WindowTrace(nil), a.trace...)
}

// Windows reports how many control windows have been processed.
func (a *AdCache) Windows() int64 { return a.windowsClosed.Load() }

// Block and Range expose the component caches for metrics.
func (a *AdCache) Block() *blockcache.Cache    { return a.block }
func (a *AdCache) Range() *rangecache.Cache    { return a.rng }
func (a *AdCache) Collector() *stats.Collector { return a.collector }

// countOp advances the window clock and pokes the tuner at boundaries.
//
// Under concurrent traffic the callbacks invoking this run simultaneously
// (reads share the engine's read lock), so the window counter is atomic and
// exactly one goroutine observes each boundary. In SyncTuning mode that
// goroutine runs the control step inline under tuneMu while its peers keep
// serving — resizes are safe mid-flight because both component caches are
// sharded and internally synchronised. Deterministic windows additionally
// require a single-threaded op stream (and lsm.Options.InlineCompaction),
// which is how the experiment harness runs.
func (a *AdCache) countOp() {
	n := a.opCount.Add(1)
	if n%int64(a.cfg.WindowSize) != 0 {
		return
	}
	if a.cfg.SyncTuning {
		a.tuneMu.Lock()
		a.tuneOnce()
		a.tuneMu.Unlock()
		return
	}
	select {
	case a.tuneCh <- struct{}{}:
	default: // tuner busy; the next boundary will retrigger
	}
}

// GetCached implements lsm.CacheStrategy.
func (a *AdCache) GetCached(key []byte) ([]byte, bool, bool) {
	a.countOp()
	if v, ok := a.rng.Get(key); ok {
		a.collector.RecordPoint(true)
		return v, true, true
	}
	a.collector.RecordPoint(false)
	return nil, false, false
}

// ScanCached implements lsm.CacheStrategy.
func (a *AdCache) ScanCached(start []byte, n int) ([]lsm.KV, bool) {
	a.countOp()
	kvs, ok := a.rng.Scan(start, n)
	a.collector.RecordScan(n, ok)
	if !ok {
		return nil, false
	}
	out := make([]lsm.KV, len(kvs))
	for i, kv := range kvs {
		out[i] = lsm.KV{Key: kv.Key, Value: kv.Value}
	}
	return out, true
}

// OnPointResult implements lsm.CacheStrategy: frequency-based admission.
// Every disk-served miss increments the key's sketch counter; the key is
// admitted only when its normalized score clears the RL-tuned threshold.
func (a *AdCache) OnPointResult(key, value []byte, blockReads int) {
	a.collector.RecordBlockReads(blockReads)
	if value == nil {
		return
	}
	if a.rangeCapacityTiny() {
		return
	}
	if a.cfg.DisableAdmission {
		a.rng.InsertPoint(key, value)
		a.collector.RecordPointAdmission(true)
		return
	}
	a.cms.Increment(key)
	score := a.cms.Score(key)
	p := a.CurrentParams()
	admit := score >= p.PointThreshold
	a.collector.RecordPointAdmission(admit)
	if admit {
		a.rng.InsertPoint(key, value)
	}
}

// OnScanResult implements lsm.CacheStrategy: partial admission (§3.4).
// Scans of length l ≤ a are cached whole. Longer scans contribute b·(l−a)
// entries *beyond the already-covered prefix*, so repeated or overlapping
// scans extend coverage step by step — after roughly 1/b repetitions the
// full range is cached — while one-off long scans stay bounded.
func (a *AdCache) OnScanResult(start []byte, entries []lsm.ScanEntry, blockReads int) {
	a.collector.RecordBlockReads(blockReads)
	if len(entries) == 0 || a.rangeCapacityTiny() {
		return
	}
	covered := a.rng.CoveredLen(start, len(entries))
	admit := a.scanAdmitCount(len(entries), covered)
	a.collector.RecordScanAdmission(admit, len(entries))
	if admit <= 0 {
		return
	}
	a.rng.InsertScan(start, toRangeKVs(entries[:admit]))
}

// scanAdmitCount decides how many result entries to admit for a scan of
// length l whose first covered entries are already cached.
func (a *AdCache) scanAdmitCount(l, covered int) int {
	if a.cfg.DisableAdmission {
		return l
	}
	p := a.CurrentParams()
	if l <= p.ScanA {
		return l
	}
	grow := int(p.ScanB * float64(l-p.ScanA))
	if grow < 1 {
		grow = 1
	}
	admit := covered + grow
	if admit > l {
		admit = l
	}
	return admit
}

// rangeCapacityTiny reports whether the range cache is too small to hold
// even one typical entry (the boundary has been pushed to the block side).
func (a *AdCache) rangeCapacityTiny() bool { return a.rng.Capacity() < 256 }

// OnWrite implements lsm.CacheStrategy: write-through coherence for the
// range cache.
func (a *AdCache) OnWrite(key, value []byte, deleted bool) {
	a.countOp()
	a.collector.RecordWrite()
	if deleted {
		a.rng.Delete(key)
	} else {
		a.rng.Put(key, value)
	}
}

// BlockCache implements lsm.CacheStrategy.
func (a *AdCache) BlockCache() sstable.BlockCache { return a.block }

// ScanBlockFillQuota implements lsm.CacheStrategy: block-level partial
// admission. Short scans fill freely; long scans may insert only the blocks
// corresponding to their admitted key prefix.
func (a *AdCache) ScanBlockFillQuota(scanLen int) (int64, bool) {
	if a.cfg.DisableAdmission {
		return 0, false
	}
	p := a.CurrentParams()
	if scanLen <= p.ScanA {
		return 0, false // full admission
	}
	// Block-level admission has no per-range coverage notion; budget the
	// first-pass admission count (covered = 0).
	admitKeys := a.scanAdmitCount(scanLen, 0)
	b := a.shape().EntriesPerBlock
	if b < 1 {
		b = 1
	}
	return int64(float64(admitKeys)/b) + 1, true
}

// OnCompaction implements lsm.CacheStrategy. Block entries of dead files
// age out of the LRU naturally (the realistic invalidation cost); the range
// cache is immune by construction.
func (a *AdCache) OnCompaction([]uint64, []uint64) {}

// dbWriteInfo returns the bound DB's lock-free write-side snapshot (zero
// value when no DB is bound). Like shape it is safe from inside engine
// callbacks: the snapshot is an atomic load, never d.mu.
func (a *AdCache) dbWriteInfo() lsm.WriteSideInfo {
	a.mu.Lock()
	db := a.db
	a.mu.Unlock()
	if db == nil {
		return lsm.WriteSideInfo{}
	}
	return db.WriteSideInfo()
}

// shape returns the live LSM shape when a DB is bound, else the configured
// static shape. It reads only lock-free snapshots so it is safe from inside
// engine callbacks (synchronous tuning).
func (a *AdCache) shape() stats.Shape {
	a.mu.Lock()
	db := a.db
	a.mu.Unlock()
	if db == nil {
		return a.cfg.Shape
	}
	info := db.ShapeInfo()
	shape := a.cfg.Shape
	if info.NonEmptyLevels > 0 {
		shape.Levels = info.NonEmptyLevels
	}
	shape.Runs = info.SortedRuns
	shape.R0Max = db.Options().L0StopTrigger
	if info.TotalBytes > 0 && info.TotalEntries > 0 {
		blocks := float64(info.TotalBytes) / float64(db.Options().BlockSize)
		if blocks >= 1 {
			shape.EntriesPerBlock = float64(info.TotalEntries) / blocks
		}
	}
	return shape
}
