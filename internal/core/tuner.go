package core

import (
	"adcache/internal/lsm"
	"adcache/internal/rl"
	"adcache/internal/stats"
)

// tuneLoop is the Background Tuning Module (§3.1): it wakes at window
// boundaries, computes the smoothed I/O-estimate reward, updates the agent
// for its previous decision, asks for the next action, and applies it. The
// serving path never blocks on this goroutine — parameter updates land one
// window behind the statistics that produced them (§4.2).
func (a *AdCache) tuneLoop() {
	for {
		select {
		case <-a.done:
			return
		case <-a.tuneCh:
			a.tuneOnce()
		}
	}
}

// writeDeltas are the per-window changes of the engine's cumulative
// write-side counters, computed by tuneOnce from successive WriteSideInfo
// snapshots.
type writeDeltas struct {
	flushes   int64
	stalls    int64
	userBytes int64
	outBytes  int64 // flush + compaction output bytes
}

func (a *AdCache) tuneOnce() {
	w := a.collector.EndWindow()
	if w.Ops() == 0 {
		return
	}
	shape := a.shape()
	hEst := shape.HitRateEstimate(w)

	// Write-side deltas for this window (zero when no DB is bound).
	info := a.dbWriteInfo()
	wd := writeDeltas{
		flushes:   info.Flushes - a.lastWriteInfo.Flushes,
		stalls:    (info.StallSlowdowns + info.StallStops) - (a.lastWriteInfo.StallSlowdowns + a.lastWriteInfo.StallStops),
		userBytes: info.UserBytes - a.lastWriteInfo.UserBytes,
		outBytes: (info.FlushedBytes + info.CompactionOutBytes) -
			(a.lastWriteInfo.FlushedBytes + a.lastWriteInfo.CompactionOutBytes),
	}
	a.lastWriteInfo = info

	// Reward. Cache-only arbitration optimises the estimated hit rate
	// alone. Unified memory arbitration mixes in write efficiency — user
	// bytes per SSTable byte written this window, i.e. the reciprocal of
	// windowed write amplification, in (0, 1] — weighted by the window's
	// write share, so the composite degenerates to hEst exactly on
	// read-only windows and the cache-only behaviour is unchanged.
	reward := hEst
	var writeEff float64
	if a.cfg.MemtableArbitration {
		ops := float64(w.Ops())
		writeShare := float64(w.Writes) / ops
		writeEff = 1.0
		if wd.userBytes > 0 && wd.outBytes > wd.userBytes {
			writeEff = float64(wd.userBytes) / float64(wd.outBytes)
		}
		reward = (1-writeShare)*hEst + writeShare*writeEff
	}

	// Reward smoothing (§3.5): h ← α·h + (1−α)·h_est. The relative change
	// Δh/h drives the adaptive learning rate exactly as published; the
	// smoothed level itself is the critic's return signal (see the
	// deviation note on rl.Agent.Update).
	a.mu.Lock()
	var lrDelta float64
	if !a.haveInit {
		a.smoothed = reward
		a.haveInit = true
	} else {
		next := a.cfg.Alpha*a.smoothed + (1-a.cfg.Alpha)*reward
		if next > 1e-9 {
			lrDelta = (next - a.smoothed) / next
		}
		a.smoothed = next
	}
	smoothed := a.smoothed
	a.mu.Unlock()

	state := a.buildState(w, shape, hEst, info, wd)
	a.agent.Update(smoothed, lrDelta, state)
	action := a.agent.Act(state)
	params := a.applyParams(a.decodeAction(action))

	windows := a.windowsClosed.Add(1)

	// Publish the controller view for metrics scrapes. The agent is owned by
	// this goroutine, so its accessors are read here and copied under the
	// lock — GaugeFuncs read the copy, never the agent.
	actorLoss, criticLoss := a.agent.Losses()
	a.mu.Lock()
	a.tuning = TuningState{
		Windows:    windows,
		AgentSteps: a.agent.Steps(),
		HEstimate:  hEst,
		HSmoothed:  smoothed,
		WriteEff:   writeEff,
		Reward:     lrDelta,
		ActorLR:    a.agent.ActorLR(),
		ActorLoss:  actorLoss,
		CriticLoss: criticLoss,
		Params:     params,
	}
	if a.cfg.RecordTrace {
		a.trace = append(a.trace, WindowTrace{
			Window:    w,
			HEstimate: hEst,
			HSmoothed: smoothed,
			Reward:    lrDelta,
			Params:    params,
			ActorLR:   a.agent.ActorLR(),
		})
	}
	a.mu.Unlock()
}

// decodeAction maps the actor's [0,1] outputs onto concrete parameters.
func (a *AdCache) decodeAction(act rl.Action) Params {
	p := Params{
		RangeRatio:     act.RangeRatio,
		PointThreshold: act.PointThreshold * a.cfg.PointThresholdScale,
		ScanA:          int(act.ScanA*float64(a.cfg.MaxScanLen)) + 1,
		ScanB:          act.ScanB,
	}
	if a.cfg.MemtableArbitration {
		// The [0,1] action maps onto the configured band: the engine always
		// keeps a working write buffer and the caches are never starved.
		p.MemRatio = a.cfg.MemRatioMin + act.MemRatio*(a.cfg.MemRatioMax-a.cfg.MemRatioMin)
	}
	if a.cfg.DisablePartitioning {
		p.RangeRatio = a.cfg.InitialRangeRatio
		if a.cfg.MemtableArbitration {
			p.MemRatio = a.cfg.InitialMemRatio
		}
	}
	if a.cfg.DisableAdmission {
		p.PointThreshold = 0
		p.ScanA = a.cfg.MaxScanLen
		p.ScanB = 1
	}
	return p
}

// applyParams publishes params and moves the budget boundaries, returning
// what it actually applied. Small ratio jitters (exploration noise) are not
// applied: every downward cache resize evicts entries, every memtable-share
// move forces or delays flushes, and §3.5 warns that frequent boundary
// adjustments degrade performance — so both budget ratios carry a ±0.02
// hysteresis deadband, and the POST-hysteresis values are what gets stored
// (dashboards and the trace never see a pre-clamp target). Admission
// parameters always apply.
func (a *AdCache) applyParams(p Params) Params {
	prev := a.CurrentParams()
	if !a.cfg.DisableHysteresis {
		if diff := p.RangeRatio - prev.RangeRatio; diff < 0.02 && diff > -0.02 {
			p.RangeRatio = prev.RangeRatio
		}
		if diff := p.MemRatio - prev.MemRatio; diff < 0.02 && diff > -0.02 {
			p.MemRatio = prev.MemRatio
		}
	}
	a.params.Store(p)
	// Unified ledger: memtables take their share off the top, the caches
	// split the remainder at the range/block boundary. With arbitration off
	// MemRatio is always 0 and this is the original two-way split.
	memBytes := int64(float64(a.cfg.Capacity) * p.MemRatio)
	cacheBytes := a.cfg.Capacity - memBytes
	rangeBytes := int64(float64(cacheBytes) * p.RangeRatio)
	a.block.Resize(cacheBytes - rangeBytes)
	a.rng.Resize(rangeBytes)
	if a.cfg.MemtableArbitration {
		a.mu.Lock()
		db := a.db
		a.mu.Unlock()
		if db != nil {
			// Lock-free atomic store: safe even when this runs inside an
			// engine callback holding the DB's locks (SyncTuning). A shrink
			// takes effect at the engine's next memtable rotation.
			db.SetMemTableBudget(memBytes)
		}
	}
	return p
}

// buildState assembles the agent's observation: workload composition, scan
// shape, cache effectiveness and occupancy, tree state — the features §3.5
// lists — plus the write-side features of the unified memory arbiter.
func (a *AdCache) buildState(w stats.Window, shape stats.Shape, hEst float64, info lsm.WriteSideInfo, wd writeDeltas) []float32 {
	ops := float64(w.Ops())
	if ops == 0 {
		ops = 1
	}
	state := make([]float32, rl.StateDim)
	state[0] = float32(float64(w.Points) / ops)
	state[1] = float32(float64(w.Scans) / ops)
	state[2] = float32(float64(w.Writes) / ops)
	state[3] = float32(clamp01f(w.AvgScanLen() / float64(a.cfg.MaxScanLen)))
	if w.Points > 0 {
		state[4] = float32(float64(w.RangeGetHits) / float64(w.Points))
	}
	if w.Scans > 0 {
		state[5] = float32(float64(w.RangeScanHits) / float64(w.Scans))
	}
	state[6] = float32(hEst)

	bs := a.block.Stats()
	dHits := bs.Hits - a.lastBlockStats.Hits
	dMisses := bs.Misses - a.lastBlockStats.Misses
	a.lastBlockStats = bs
	if total := dHits + dMisses; total > 0 {
		state[7] = float32(float64(dHits) / float64(total))
	}
	p := a.CurrentParams()
	state[8] = float32(p.RangeRatio)
	if c := a.rng.Capacity(); c > 0 {
		state[9] = float32(clamp01f(float64(a.rng.Used()) / float64(c)))
	}
	state[10] = float32(clamp01f(float64(shape.Levels) / 7))
	state[11] = float32(clamp01f(shape.IOScan(w.AvgScanLen()) / 32))
	// Physical/logical byte ratio of the block cache: 1.0 when uncompressed
	// (or empty), below 1 when compressed images stretch the byte budget —
	// the agent sees how much decoded data its budget is actually buying.
	state[12] = 1
	if bs.LogicalUsed > 0 {
		state[12] = float32(clamp01f(float64(bs.Used) / float64(bs.LogicalUsed)))
	}

	// Write-side features (unified memory arbitration; all zero when no DB
	// is bound): the in-force memtable share, how full the active memtable
	// is against its target, immutable-queue pressure, this window's
	// flush + stall events, and this window's write amplification.
	state[13] = float32(p.MemRatio)
	if info.MemTarget > 0 {
		state[14] = float32(clamp01f(float64(info.MemBytes) / float64(info.MemTarget)))
	}
	if info.MaxImm > 0 {
		state[15] = float32(clamp01f(float64(info.ImmCount) / float64(info.MaxImm)))
	}
	state[16] = float32(clamp01f(float64(wd.flushes+wd.stalls) / 8))
	if wd.userBytes > 0 && wd.outBytes > 0 {
		wa := float64(wd.outBytes) / float64(wd.userBytes)
		state[17] = float32(clamp01f(wa / 8))
	}
	return state
}

func clamp01f(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}
