package core

import (
	"adcache/internal/rl"
	"adcache/internal/stats"
)

// tuneLoop is the Background Tuning Module (§3.1): it wakes at window
// boundaries, computes the smoothed I/O-estimate reward, updates the agent
// for its previous decision, asks for the next action, and applies it. The
// serving path never blocks on this goroutine — parameter updates land one
// window behind the statistics that produced them (§4.2).
func (a *AdCache) tuneLoop() {
	for {
		select {
		case <-a.done:
			return
		case <-a.tuneCh:
			a.tuneOnce()
		}
	}
}

func (a *AdCache) tuneOnce() {
	w := a.collector.EndWindow()
	if w.Ops() == 0 {
		return
	}
	shape := a.shape()
	hEst := shape.HitRateEstimate(w)

	// Reward smoothing (§3.5): h ← α·h + (1−α)·h_est. The relative change
	// Δh/h drives the adaptive learning rate exactly as published; the
	// smoothed level itself is the critic's return signal (see the
	// deviation note on rl.Agent.Update).
	a.mu.Lock()
	var lrDelta float64
	if !a.haveInit {
		a.smoothed = hEst
		a.haveInit = true
	} else {
		next := a.cfg.Alpha*a.smoothed + (1-a.cfg.Alpha)*hEst
		if next > 1e-9 {
			lrDelta = (next - a.smoothed) / next
		}
		a.smoothed = next
	}
	smoothed := a.smoothed
	a.mu.Unlock()

	state := a.buildState(w, shape, hEst)
	a.agent.Update(smoothed, lrDelta, state)
	action := a.agent.Act(state)
	params := a.applyParams(a.decodeAction(action))

	windows := a.windowsClosed.Add(1)

	// Publish the controller view for metrics scrapes. The agent is owned by
	// this goroutine, so its accessors are read here and copied under the
	// lock — GaugeFuncs read the copy, never the agent.
	actorLoss, criticLoss := a.agent.Losses()
	a.mu.Lock()
	a.tuning = TuningState{
		Windows:    windows,
		AgentSteps: a.agent.Steps(),
		HEstimate:  hEst,
		HSmoothed:  smoothed,
		Reward:     lrDelta,
		ActorLR:    a.agent.ActorLR(),
		ActorLoss:  actorLoss,
		CriticLoss: criticLoss,
		Params:     params,
	}
	if a.cfg.RecordTrace {
		a.trace = append(a.trace, WindowTrace{
			Window:    w,
			HEstimate: hEst,
			HSmoothed: smoothed,
			Reward:    lrDelta,
			Params:    params,
			ActorLR:   a.agent.ActorLR(),
		})
	}
	a.mu.Unlock()
}

// decodeAction maps the actor's [0,1] outputs onto concrete parameters.
func (a *AdCache) decodeAction(act rl.Action) Params {
	p := Params{
		RangeRatio:     act.RangeRatio,
		PointThreshold: act.PointThreshold * a.cfg.PointThresholdScale,
		ScanA:          int(act.ScanA*float64(a.cfg.MaxScanLen)) + 1,
		ScanB:          act.ScanB,
	}
	if a.cfg.DisablePartitioning {
		p.RangeRatio = a.cfg.InitialRangeRatio
	}
	if a.cfg.DisableAdmission {
		p.PointThreshold = 0
		p.ScanA = a.cfg.MaxScanLen
		p.ScanB = 1
	}
	return p
}

// applyParams publishes params and moves the cache boundary, returning what
// it actually applied. Small ratio jitters (exploration noise) are not
// applied to the boundary: every downward resize evicts entries, and §3.5
// warns that frequent boundary adjustments degrade performance. Admission
// parameters always apply.
func (a *AdCache) applyParams(p Params) Params {
	prev := a.CurrentParams()
	if diff := p.RangeRatio - prev.RangeRatio; !a.cfg.DisableHysteresis && diff < 0.02 && diff > -0.02 {
		p.RangeRatio = prev.RangeRatio
	}
	a.params.Store(p)
	rangeBytes := int64(float64(a.cfg.Capacity) * p.RangeRatio)
	a.block.Resize(a.cfg.Capacity - rangeBytes)
	a.rng.Resize(rangeBytes)
	return p
}

// buildState assembles the agent's observation: workload composition, scan
// shape, cache effectiveness and occupancy, and tree state — the features
// §3.5 lists.
func (a *AdCache) buildState(w stats.Window, shape stats.Shape, hEst float64) []float32 {
	ops := float64(w.Ops())
	if ops == 0 {
		ops = 1
	}
	state := make([]float32, rl.StateDim)
	state[0] = float32(float64(w.Points) / ops)
	state[1] = float32(float64(w.Scans) / ops)
	state[2] = float32(float64(w.Writes) / ops)
	state[3] = float32(clamp01f(w.AvgScanLen() / float64(a.cfg.MaxScanLen)))
	if w.Points > 0 {
		state[4] = float32(float64(w.RangeGetHits) / float64(w.Points))
	}
	if w.Scans > 0 {
		state[5] = float32(float64(w.RangeScanHits) / float64(w.Scans))
	}
	state[6] = float32(hEst)

	bs := a.block.Stats()
	dHits := bs.Hits - a.lastBlockStats.Hits
	dMisses := bs.Misses - a.lastBlockStats.Misses
	a.lastBlockStats = bs
	if total := dHits + dMisses; total > 0 {
		state[7] = float32(float64(dHits) / float64(total))
	}
	state[8] = float32(a.CurrentParams().RangeRatio)
	if c := a.rng.Capacity(); c > 0 {
		state[9] = float32(clamp01f(float64(a.rng.Used()) / float64(c)))
	}
	state[10] = float32(clamp01f(float64(shape.Levels) / 7))
	state[11] = float32(clamp01f(shape.IOScan(w.AvgScanLen()) / 32))
	// Physical/logical byte ratio of the block cache: 1.0 when uncompressed
	// (or empty), below 1 when compressed images stretch the byte budget —
	// the agent sees how much decoded data its budget is actually buying.
	state[12] = 1
	if bs.LogicalUsed > 0 {
		state[12] = float32(clamp01f(float64(bs.Used) / float64(bs.LogicalUsed)))
	}
	return state
}

func clamp01f(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}
