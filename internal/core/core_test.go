package core

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"adcache/internal/lsm"
	"adcache/internal/rl"
)

func newTestAdCache(t *testing.T, cfg Config) *AdCache {
	t.Helper()
	if cfg.Capacity == 0 {
		cfg.Capacity = 1 << 20
	}
	cfg.SyncTuning = true
	a, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(a.Close)
	return a
}

func TestDefaultsApplied(t *testing.T) {
	a := newTestAdCache(t, Config{})
	p := a.CurrentParams()
	if p.RangeRatio != 0.5 {
		t.Fatalf("initial ratio = %f", p.RangeRatio)
	}
	if p.ScanA != 16 {
		t.Fatalf("initial scan a = %d (paper: short-scan length)", p.ScanA)
	}
	if a.Block().Capacity()+a.Range().Capacity() != 1<<20 {
		t.Fatalf("budget split = %d + %d", a.Block().Capacity(), a.Range().Capacity())
	}
}

func TestPointResultAdmissionRoundTrip(t *testing.T) {
	a := newTestAdCache(t, Config{DisableAdmission: true})
	key, val := []byte("k"), []byte("v")
	if _, _, ok := a.GetCached(key); ok {
		t.Fatal("hit before insert")
	}
	a.OnPointResult(key, val, 1)
	v, found, ok := a.GetCached(key)
	if !ok || !found || string(v) != "v" {
		t.Fatalf("GetCached = %q found=%v ok=%v", v, found, ok)
	}
}

func TestNotFoundResultsNotCached(t *testing.T) {
	a := newTestAdCache(t, Config{DisableAdmission: true})
	a.OnPointResult([]byte("absent"), nil, 1)
	if _, _, ok := a.GetCached([]byte("absent")); ok {
		t.Fatal("cached a not-found result")
	}
}

func TestFrequencyAdmissionFiltersColdKeys(t *testing.T) {
	a := newTestAdCache(t, Config{})
	// Force a strict threshold.
	a.params.Store(Params{RangeRatio: 0.5, PointThreshold: 0.5, ScanA: 16, ScanB: 0.5})
	// Establish missed-key mass first: with an empty sketch the first key's
	// normalized score is trivially 1, and admit-all during cold start is
	// intended behaviour.
	for i := 0; i < 200; i++ {
		a.cms.Increment([]byte(fmt.Sprintf("bg%03d", i)))
	}
	a.OnPointResult([]byte("one-off"), []byte("v"), 1)
	if _, _, ok := a.GetCached([]byte("one-off")); ok {
		t.Fatal("cold key admitted past a strict threshold")
	}
	// A hot key eventually clears even a strict threshold (score → 1 as it
	// dominates the missed-key mass).
	for i := 0; i < 50; i++ {
		a.OnPointResult([]byte("hot"), []byte("v"), 1)
	}
	if _, _, ok := a.GetCached([]byte("hot")); !ok {
		t.Fatal("hot key never admitted")
	}
}

func TestScanPartialAdmission(t *testing.T) {
	a := newTestAdCache(t, Config{})
	a.params.Store(Params{RangeRatio: 0.5, PointThreshold: 0, ScanA: 16, ScanB: 0.5})
	if got := a.scanAdmitCount(10, 0); got != 10 {
		t.Fatalf("short scan admit = %d, want full", got)
	}
	if got := a.scanAdmitCount(16, 0); got != 16 {
		t.Fatalf("boundary scan admit = %d, want full", got)
	}
	// l=64 > a=16, nothing covered yet: admit b(l-a) = 24.
	if got := a.scanAdmitCount(64, 0); got != 24 {
		t.Fatalf("first long-scan admit = %d, want 24", got)
	}
	// A repetition extends coverage by another b(l-a).
	if got := a.scanAdmitCount(64, 24); got != 48 {
		t.Fatalf("second long-scan admit = %d, want 48", got)
	}
	// A third repetition caps at the scan length — fully cached after
	// ≈1/b repetitions, as §3.4 describes.
	if got := a.scanAdmitCount(64, 48); got != 64 {
		t.Fatalf("third long-scan admit = %d, want 64", got)
	}
	a2 := newTestAdCache(t, Config{DisableAdmission: true})
	if got := a2.scanAdmitCount(64, 0); got != 64 {
		t.Fatalf("ablation admit = %d, want all", got)
	}
}

func TestScanResultIncrementalAdmission(t *testing.T) {
	a := newTestAdCache(t, Config{})
	a.params.Store(Params{RangeRatio: 0.9, PointThreshold: 0, ScanA: 4, ScanB: 0.5})
	entries := make([]lsm.ScanEntry, 8)
	for i := range entries {
		entries[i] = lsm.ScanEntry{
			Key:   []byte(fmt.Sprintf("k%02d", i)),
			Value: []byte("v"),
		}
	}
	// First pass admits b(l-a) = 2 entries; the full scan still misses.
	a.OnScanResult([]byte("k00"), entries, 3)
	if _, ok := a.ScanCached([]byte("k00"), 2); !ok {
		t.Fatal("admitted prefix not served")
	}
	if _, ok := a.ScanCached([]byte("k00"), 8); ok {
		t.Fatal("served beyond the admitted prefix")
	}
	// Repetitions extend coverage until the whole scan is cached.
	for i := 0; i < 3; i++ {
		a.OnScanResult([]byte("k00"), entries, 3)
	}
	if _, ok := a.ScanCached([]byte("k00"), 8); !ok {
		t.Fatal("repeated scan never became fully cached")
	}
}

func TestWriteCoherence(t *testing.T) {
	a := newTestAdCache(t, Config{DisableAdmission: true})
	a.OnPointResult([]byte("k"), []byte("old"), 1)
	a.OnWrite([]byte("k"), []byte("new"), false)
	if v, _, ok := a.GetCached([]byte("k")); !ok || string(v) != "new" {
		t.Fatalf("after update = %q ok=%v", v, ok)
	}
	a.OnWrite([]byte("k"), nil, true)
	if _, _, ok := a.GetCached([]byte("k")); ok {
		t.Fatal("deleted key still cached")
	}
}

func TestWindowTuningAppliesParams(t *testing.T) {
	a := newTestAdCache(t, Config{WindowSize: 50})
	before := a.Windows()
	for i := 0; i < 200; i++ {
		a.GetCached([]byte(fmt.Sprintf("k%d", i%10)))
		a.OnPointResult([]byte(fmt.Sprintf("k%d", i%10)), []byte("v"), 1)
	}
	if a.Windows() <= before {
		t.Fatal("synchronous tuning processed no windows")
	}
	// Budget invariant must hold after boundary moves.
	total := a.Block().Capacity() + a.Range().Capacity()
	if total < (1<<20)-1024 || total > (1<<20)+1024 {
		t.Fatalf("budget drifted to %d", total)
	}
}

func TestDisablePartitioningFixesBoundary(t *testing.T) {
	a := newTestAdCache(t, Config{WindowSize: 50, DisablePartitioning: true, InitialRangeRatio: 0.7})
	for i := 0; i < 500; i++ {
		a.GetCached([]byte(fmt.Sprintf("k%d", i)))
		a.OnPointResult([]byte(fmt.Sprintf("k%d", i)), []byte("v"), 1)
	}
	if r := a.CurrentParams().RangeRatio; r != 0.7 {
		t.Fatalf("ratio moved to %f despite ablation", r)
	}
}

func TestScanBlockFillQuota(t *testing.T) {
	a := newTestAdCache(t, Config{})
	a.params.Store(Params{RangeRatio: 0.5, PointThreshold: 0, ScanA: 16, ScanB: 0.5})
	if _, limited := a.ScanBlockFillQuota(10); limited {
		t.Fatal("short scans must fill freely")
	}
	quota, limited := a.ScanBlockFillQuota(64)
	if !limited || quota < 1 {
		t.Fatalf("long-scan quota = %d limited=%v", quota, limited)
	}
	a2 := newTestAdCache(t, Config{DisableAdmission: true})
	if _, limited := a2.ScanBlockFillQuota(64); limited {
		t.Fatal("ablation must not limit fills")
	}
}

func TestTraceRecording(t *testing.T) {
	a := newTestAdCache(t, Config{WindowSize: 20, RecordTrace: true})
	for i := 0; i < 100; i++ {
		a.GetCached([]byte(fmt.Sprintf("k%d", i%5)))
		a.OnPointResult([]byte(fmt.Sprintf("k%d", i%5)), []byte("v"), 1)
	}
	trace := a.Trace()
	if len(trace) == 0 {
		t.Fatal("no trace recorded")
	}
	for _, tr := range trace {
		if tr.HEstimate < 0 || tr.HEstimate > 1 {
			t.Fatalf("hEst out of range: %f", tr.HEstimate)
		}
		if tr.Params.RangeRatio < 0 || tr.Params.RangeRatio > 1 {
			t.Fatalf("ratio out of range: %f", tr.Params.RangeRatio)
		}
	}
}

func TestTinyRangeCapacitySkipsInserts(t *testing.T) {
	a := newTestAdCache(t, Config{InitialRangeRatio: 0.0001, DisableAdmission: true})
	a.OnPointResult([]byte("k"), []byte("v"), 1)
	if a.Range().Len() != 0 {
		t.Fatal("inserted into a boundary-starved range cache")
	}
}

func TestPretrainDataSanity(t *testing.T) {
	states, targets := SyntheticPretrainData(128, 1)
	if len(states) != len(targets) || len(states) == 0 {
		t.Fatalf("data sizes: %d states, %d targets", len(states), len(targets))
	}
	for i, s := range states {
		if len(s) != rl.StateDim {
			t.Fatalf("state %d has dim %d", i, len(s))
		}
		tg := targets[i]
		for _, v := range []float64{tg.RangeRatio, tg.PointThreshold, tg.ScanA, tg.ScanB} {
			if v < 0 || v > 1 {
				t.Fatalf("target %d out of range: %+v", i, tg)
			}
		}
		// Encoded domain knowledge: pure-point states want the range
		// cache, pure-scan low-write states want the block cache.
		point, scan, write := float64(s[0]), float64(s[1]), float64(s[2])
		if point > 0.99 && tg.RangeRatio < 0.9 {
			t.Fatalf("pure-point target ratio = %f", tg.RangeRatio)
		}
		if scan > 0.99 && write < 0.01 && tg.RangeRatio > 0.2 {
			t.Fatalf("pure-scan target ratio = %f", tg.RangeRatio)
		}
	}
}

func TestPretrainedModelLoads(t *testing.T) {
	agent := rl.New(rl.DefaultConfig())
	loss := PretrainAgent(agent, 128, 1)
	if loss > 0.02 {
		t.Fatalf("pretraining loss = %f", loss)
	}
	// Pretrained policy: a pure-point state asks for more range cache than
	// a pure-scan state.
	pointState := make([]float32, rl.StateDim)
	pointState[0] = 1
	scanState := make([]float32, rl.StateDim)
	scanState[1] = 1
	scanState[3] = 0.125
	if agent.Mean(pointState).RangeRatio <= agent.Mean(scanState).RangeRatio {
		t.Fatal("pretrained policy not workload-aware")
	}
}

func TestAsyncTuningMode(t *testing.T) {
	// Production mode: the tuner runs on its own goroutine; Close stops it.
	a, err := New(Config{Capacity: 1 << 20}) // SyncTuning off
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5000; i++ {
		a.GetCached([]byte(fmt.Sprintf("k%d", i%50)))
		a.OnPointResult([]byte(fmt.Sprintf("k%d", i%50)), []byte("v"), 1)
	}
	// The async tuner may lag but must make some progress under load with
	// brief pauses.
	deadline := time.Now().Add(5 * time.Second)
	for a.Windows() == 0 && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
		a.GetCached([]byte("poke"))
	}
	if a.Windows() == 0 {
		t.Fatal("async tuner processed no windows")
	}
	a.Close()
	a.Close() // idempotent
}

func TestConcurrentStrategyUse(t *testing.T) {
	a := newTestAdCache(t, Config{WindowSize: 100})
	var wg sync.WaitGroup
	for g := 0; g < 6; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 3000; i++ {
				key := []byte(fmt.Sprintf("k%04d", (g*131+i)%500))
				switch i % 4 {
				case 0:
					if _, _, ok := a.GetCached(key); !ok {
						a.OnPointResult(key, []byte("v"), 1)
					}
				case 1:
					a.ScanCached(key, 8)
				case 2:
					a.OnWrite(key, []byte("w"), false)
				case 3:
					a.OnWrite(key, nil, true)
				}
			}
		}(g)
	}
	wg.Wait()
	if total := a.Block().Capacity() + a.Range().Capacity(); total <= 0 {
		t.Fatal("budget lost under concurrency")
	}
}
