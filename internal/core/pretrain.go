package core

import (
	"math/rand"

	"adcache/internal/rl"
	"adcache/internal/trace"
)

// SyntheticPretrainData generates (state, target action) pairs for the
// supervised pretraining of §3.6. The paper obtains targets "through
// controlled experiments" over representative workloads; the targets here
// encode the controlled findings its static-workload study (Figure 7)
// establishes:
//
//   - point-lookup-dominated, low-write phases want the budget in the
//     result cache (block caches waste memory on cold keys sharing blocks
//     with hot ones);
//   - scan-dominated, low-write phases want the block cache (result caches
//     pay full LSM seeks on partial hits);
//   - write-heavy phases shift back toward the range cache, which survives
//     compaction invalidation;
//   - scan admission should fully admit short scans (a ≈ the short-scan
//     length) and partially admit long ones.
func SyntheticPretrainData(maxScanLen int, seed int64) ([][]float32, []rl.Action) {
	rng := rand.New(rand.NewSource(seed))
	var states [][]float32
	var targets []rl.Action

	mixes := [][4]float64{} // point, shortScan, longScan, write
	for _, p := range []float64{0, 0.25, 0.5, 0.75, 1} {
		for _, ss := range []float64{0, 0.25, 0.5, 0.75, 1} {
			for _, ls := range []float64{0, 0.25, 0.5, 1} {
				for _, w := range []float64{0, 0.25, 0.5, 0.75, 1} {
					sum := p + ss + ls + w
					if sum == 0 {
						continue
					}
					mixes = append(mixes, [4]float64{p / sum, ss / sum, ls / sum, w / sum})
				}
			}
		}
	}

	for _, m := range mixes {
		point, short, long, write := m[0], m[1], m[2], m[3]
		scan := short + long
		var avgScanLen float64
		if scan > 0 {
			avgScanLen = (short*16 + long*64) / scan
		}
		target := TargetForMix(point, short, long, write, avgScanLen, maxScanLen)

		// Secondary features vary so the actor keys on workload mix, not
		// incidental state.
		for i := 0; i < 2; i++ {
			states = append(states, syntheticState(point, scan, write, avgScanLen, maxScanLen, rng))
			targets = append(targets, target)
		}
	}
	return states, targets
}

// TargetForMix maps a workload mix onto the pretraining target action,
// encoding the Figure 7 findings (see SyntheticPretrainData).
func TargetForMix(point, short, long, write, avgScanLen float64, maxScanLen int) rl.Action {
	// Target boundary: results-cache share by workload role.
	ratio := point*1.0 + short*0.05 + long*0.10 + write*0.85
	// Admission: filter aggressively only when point lookups dominate.
	threshold := 0.05 + 0.15*point
	// Scan a: admit short scans whole, cap so long scans go partial.
	aKeys := 1.2 * avgScanLen
	if aKeys > 20 {
		aKeys = 20
	}
	if short+long == 0 {
		aKeys = 16
	}
	// Memtable share (unified arbitration; Luo's memory-walls finding):
	// write-heavy mixes want large memtables — fewer, bigger flushes cut
	// write amplification — while read/scan-heavy mixes should hand the
	// memory to the caches. The normalised action maps onto the strategy's
	// [MemRatioMin, MemRatioMax] band, so write-dominated mixes saturate
	// near the top of the band and read-only mixes sit at the bottom.
	memAct := clamp01(0.05 + 1.1*write)
	return rl.Action{
		RangeRatio:     clamp01(ratio),
		PointThreshold: clamp01(threshold),
		ScanA:          clamp01(aKeys / float64(maxScanLen)),
		ScanB:          0.4,
		MemRatio:       memAct,
	}
}

// syntheticState builds a state vector for a mix, randomising the features
// that vary at runtime.
func syntheticState(point, scan, write, avgScanLen float64, maxScanLen int, rng *rand.Rand) []float32 {
	s := make([]float32, rl.StateDim)
	s[0] = float32(point)
	s[1] = float32(scan)
	s[2] = float32(write)
	s[3] = float32(clamp01(avgScanLen / float64(maxScanLen)))
	s[4] = float32(rng.Float64() * 0.8)
	s[5] = float32(rng.Float64() * 0.8)
	s[6] = float32(0.2 + rng.Float64()*0.6)
	s[7] = float32(rng.Float64() * 0.9)
	s[8] = float32(rng.Float64())
	s[9] = float32(0.4 + rng.Float64()*0.6)
	s[10] = float32(0.3 + rng.Float64()*0.3)
	s[11] = float32(clamp01((avgScanLen/16 + 2) / 32))
	s[12] = float32(0.5 + rng.Float64()*0.5)
	// Write-side features: the in-force memtable share and memtable fill
	// vary freely; queue depth, flush/stall rate and write amplification
	// correlate with the write share (a write-heavy window keeps the
	// flush pipeline busy), with noise so the actor keys on the mix.
	s[13] = float32(rng.Float64())
	s[14] = float32(rng.Float64())
	s[15] = float32(clamp01(write * rng.Float64()))
	s[16] = float32(clamp01(write * (0.2 + rng.Float64()*0.8)))
	s[17] = float32(clamp01(write * (0.2 + rng.Float64()*0.6)))
	return s
}

// PretrainDataFromWindows converts recorded trace windows (§3.6's
// "workloads gathered from deployed databases") into supervised pretraining
// pairs, using the same target mapping as the synthetic data.
func PretrainDataFromWindows(ws []trace.WindowFeatures, maxScanLen int, seed int64) ([][]float32, []rl.Action) {
	rng := rand.New(rand.NewSource(seed))
	var states [][]float32
	var targets []rl.Action
	for _, w := range ws {
		ops := float64(w.Ops())
		if ops == 0 {
			continue
		}
		point := float64(w.Points) / ops
		short := float64(w.ShortScans) / ops
		long := float64(w.LongScans) / ops
		write := float64(w.Writes) / ops
		avg := w.AvgScanLen()
		states = append(states, syntheticState(point, short+long, write, avg, maxScanLen, rng))
		targets = append(targets, TargetForMix(point, short, long, write, avg, maxScanLen))
	}
	return states, targets
}

// PretrainAgent runs the synthetic supervised pretraining and returns the
// final loss.
func PretrainAgent(agent *rl.Agent, maxScanLen int, seed int64) float64 {
	states, targets := SyntheticPretrainData(maxScanLen, seed)
	return agent.PretrainSupervised(states, targets, 15, 1e-3)
}

func clamp01(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}
